// Golden (fault-free) RAM simulator with 1, 2 or 4 ports.
#pragma once

#include <array>
#include <cassert>
#include <vector>

#include "mem/memory.hpp"

namespace prt::mem {

/// Behavioural SRAM model: an array of n cells of m bits each.  All
/// ports address the same storage; simultaneous-access hazards
/// (write/write to the same cell in one cycle) are the schedulers'
/// responsibility and are checked by the PRT engines, not here.
class SimRam final : public Memory {
 public:
  /// Throws std::invalid_argument unless cells >= 1, 1 <= width_bits
  /// <= 32 and port_count is 1, 2 or 4.
  SimRam(Addr cells, unsigned width_bits, unsigned port_count = 1);

  [[nodiscard]] Addr size() const override { return size_; }
  [[nodiscard]] unsigned width() const override { return width_; }
  [[nodiscard]] unsigned ports() const override { return ports_; }

  Word read(Addr addr, unsigned port) override;
  void write(Addr addr, Word value, unsigned port) override;

  [[nodiscard]] AccessStats stats(unsigned port) const override {
    assert(port < ports_);
    return stats_[port];
  }
  void reset_stats() override { stats_.fill({}); }

  /// Direct (non-counting) access for assertions and fault wrappers.
  [[nodiscard]] Word peek(Addr addr) const {
    assert(addr < size_);
    return data_[addr];
  }
  void poke(Addr addr, Word value) {
    assert(addr < size_);
    data_[addr] = value & word_mask();
  }

  /// Fills every cell with the given value (no stats impact).
  void fill(Word value);

  /// Returns the array to its just-constructed state (every cell
  /// `fill_value`, counters zero) without releasing storage — the
  /// fast path campaign workers use instead of re-constructing a RAM
  /// per fault.
  void reset(Word fill_value = 0) {
    fill(fill_value);
    stats_.fill({});
  }

  /// Whole-array snapshot, for golden comparisons in tests.
  [[nodiscard]] const std::vector<Word>& image() const { return data_; }

 private:
  Addr size_;
  unsigned width_;
  unsigned ports_;
  std::vector<Word> data_;
  std::array<AccessStats, 4> stats_{};
};

}  // namespace prt::mem
