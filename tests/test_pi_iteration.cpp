// Tests for the pi-test iteration engine (core/pi_iteration) — Eq. (1)
// of the paper and Figures 1a/1b.
#include "core/pi_iteration.hpp"

#include <gtest/gtest.h>

#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

namespace prt::core {
namespace {

using gf::Elem;

PiTester bom_tester() {
  return PiTester(gf::GF2m(0b11), {1, 1, 1});  // Fig. 1a
}

PiTester wom_tester() {
  return PiTester(gf::GF2m(0b10011), {1, 2, 2});  // Fig. 1b
}

TEST(PiIteration, Fig1aMemoryImage) {
  // After the iteration the BOM holds the period-3 LFSR sequence.
  mem::SimRam ram(9, 1);
  PiConfig cfg;
  cfg.init = {1, 1};
  const PiResult r = bom_tester().run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(ram.image(),
            (std::vector<mem::Word>{1, 1, 0, 1, 1, 0, 1, 1, 0}));
}

TEST(PiIteration, Fig1bMemoryImage) {
  // The WOM traces 0, 1, 2, 6, 8, F, ... (paper Fig. 1b).
  mem::SimRam ram(8, 4);
  PiConfig cfg;
  cfg.init = {0, 1};
  const PiResult r = wom_tester().run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(ram.peek(0), 0x0u);
  EXPECT_EQ(ram.peek(1), 0x1u);
  EXPECT_EQ(ram.peek(2), 0x2u);
  EXPECT_EQ(ram.peek(3), 0x6u);
  EXPECT_EQ(ram.peek(4), 0x8u);
  EXPECT_EQ(ram.peek(5), 0xFu);
}

TEST(PiIteration, PassesOnFaultFreeMemoryEveryTrajectory) {
  for (auto traj : {TrajectoryKind::kAscending, TrajectoryKind::kDescending,
                    TrajectoryKind::kRandom}) {
    mem::SimRam ram(200, 4);
    PiConfig cfg;
    cfg.init = {3, 7};
    cfg.trajectory = traj;
    cfg.seed = 11;
    EXPECT_TRUE(wom_tester().run(ram, cfg).pass)
        << to_string(traj);
  }
}

TEST(PiIteration, OpCountIsExactly3n) {
  // k=2: 2 init writes + (n-2)*3 sweep ops + 2 Fin reads + 2 Init
  // re-reads = 3n (§3: O(3n)).
  mem::SimRam ram(100, 1);
  PiConfig cfg;
  cfg.init = {1, 0};
  const PiResult r = bom_tester().run(ram, cfg);
  EXPECT_EQ(r.reads + r.writes, 3u * 100);
  EXPECT_EQ(r.writes, 100u);        // every cell written exactly once
  EXPECT_EQ(r.reads, 2u * 100);     // window reads + Init/Fin read-back
  EXPECT_EQ(ram.total_stats().total(), r.reads + r.writes);
}

TEST(PiIteration, VerifyPassAddsNReads) {
  mem::SimRam ram(100, 1);
  PiConfig cfg;
  cfg.init = {1, 0};
  cfg.verify_pass = true;
  const PiResult r = bom_tester().run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.verify_mismatches, 0u);
  EXPECT_EQ(r.reads + r.writes, 4u * 100);
}

TEST(PiIteration, VerifyPassFlagsLastingCorruption) {
  // The late-corruption escape of the plain iteration is exactly what
  // the verify pass closes.
  mem::FaultyRam ram(32, 1);
  ram.inject(mem::Fault::cf_id({4, 0}, {30, 0}, /*up=*/true, /*forced=*/0));
  PiConfig cfg;
  cfg.init = {1, 1};
  cfg.verify_pass = true;
  const PiResult r = bom_tester().run(ram, cfg);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.verify_mismatches, 0u);
}

TEST(PiIteration, ExpectedFinMatchesRun) {
  mem::SimRam ram(77, 4);
  PiConfig cfg;
  cfg.init = {5, 9};
  const PiTester t = wom_tester();
  const PiResult r = t.run(ram, cfg);
  EXPECT_EQ(r.fin, t.expected_fin(77, cfg.init));
  EXPECT_EQ(r.fin, r.fin_expected);
}

TEST(PiIteration, RingClosureFig1b) {
  // (n - k) multiple of 255: Fin == Init — the closed pseudo-ring.
  const PiTester t = wom_tester();
  EXPECT_EQ(t.period(), 255u);
  EXPECT_TRUE(t.ring_closes(257));   // 255 + k
  EXPECT_FALSE(t.ring_closes(255));
  EXPECT_TRUE(t.ring_closes(512));   // 2*255 + 2
  mem::SimRam ram(257, 4);
  PiConfig cfg;
  cfg.init = {0, 1};
  const PiResult r = t.run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.fin, cfg.init);  // the ring closed
}

TEST(PiIteration, RingClosureFig1a) {
  const PiTester t = bom_tester();
  EXPECT_EQ(t.period(), 3u);
  EXPECT_TRUE(t.ring_closes(5));  // 3 + 2
  mem::SimRam ram(5, 1);
  PiConfig cfg;
  cfg.init = {0, 1};
  const PiResult r = t.run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.fin, cfg.init);
}

TEST(PiIteration, NonClosingSizeHasDifferentFin) {
  const PiTester t = bom_tester();
  mem::SimRam ram(6, 1);
  PiConfig cfg;
  cfg.init = {0, 1};
  const PiResult r = t.run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_NE(r.fin, cfg.init);
}

TEST(PiIteration, ExpectedImageMatchesMemory) {
  for (auto traj : {TrajectoryKind::kAscending, TrajectoryKind::kDescending,
                    TrajectoryKind::kRandom}) {
    mem::SimRam ram(64, 4);
    PiConfig cfg;
    cfg.init = {1, 2};
    cfg.trajectory = traj;
    cfg.seed = 77;
    const PiTester t = wom_tester();
    t.run(ram, cfg);
    const auto image = t.expected_image(64, cfg);
    for (mem::Addr a = 0; a < 64; ++a) {
      EXPECT_EQ(ram.peek(a), image[a]) << "addr " << a;
    }
  }
}

TEST(PiIteration, DetectsSafAnywhere) {
  // §3: single-cell faults have high per-iteration resolution.  A SAF
  // disturbing the traced sequence must corrupt Fin deterministically
  // (linear error propagation never cancels a single fault).
  for (mem::Addr cell = 0; cell < 32; ++cell) {
    mem::FaultyRam ram(32, 1);
    ram.inject(mem::Fault::saf({cell, 0}, 0));
    PiConfig cfg;
    cfg.init = {1, 1};
    const PiResult r = bom_tester().run(ram, cfg);
    // The period-3 pattern 1,1,0 holds a 1 in 2/3 of cells; stuck-at-0
    // activates there.
    const unsigned pos = cell % 3;
    const bool should_activate = pos != 2;
    EXPECT_EQ(!r.pass, should_activate) << "cell " << cell;
  }
}

TEST(PiIteration, DetectsRdfEverywhere) {
  for (mem::Addr cell = 1; cell < 31; ++cell) {
    mem::FaultyRam ram(32, 1);
    ram.inject(mem::Fault::rdf({cell, 0}));
    PiConfig cfg;
    cfg.init = {1, 1};
    EXPECT_FALSE(bom_tester().run(ram, cfg).pass) << "cell " << cell;
  }
}

TEST(PiIteration, DetectsAdjacentCouplingAscending) {
  // Aggressor visited exactly one position after the victim is the
  // within-iteration detectable case (see prt_engine.hpp).
  mem::FaultyRam ram(32, 1);
  ram.inject(mem::Fault::cf_in({11, 0}, {12, 0}));
  PiConfig cfg;
  cfg.init = {1, 1};
  // Aggressor 12 transitions when written (pattern value 1 over the
  // zero-initialized cell -> up transition) right between the victim's
  // two window reads, so the flipped victim value propagates to Fin.
  const PiResult r = bom_tester().run(ram, cfg);
  EXPECT_FALSE(r.pass);
}

TEST(PiIteration, LateCorruptionEscapesOneIterationBothVerdicts) {
  // A victim corrupted *after* its last sweep read is invisible to both
  // the Fin comparison and the MISR (they observe the same reads).
  // This documents the single-iteration escape channel that motivates
  // the multi-iteration TDB of §3.
  mem::FaultyRam ram(32, 1);
  ram.inject(mem::Fault::cf_id({4, 0}, {30, 0}, /*up=*/true, /*forced=*/0));
  PiTester t = bom_tester();
  t.enable_misr(0b1000011);  // degree 6
  PiConfig cfg;
  cfg.init = {1, 1};
  const PiResult r = t.run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_TRUE(r.misr_pass);
  // Victim 4 expects pattern value 1; the corruption to 0 is present in
  // memory (activation happened) but after its last read.
  EXPECT_EQ(ram.peek(4), 0u);
}

TEST(PiIteration, MisrMatchesFinVerdictOnCleanRun) {
  mem::SimRam ram(64, 4);
  PiTester t = wom_tester();
  t.enable_misr(0b10011);
  PiConfig cfg;
  cfg.init = {0, 1};
  const PiResult r = t.run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_TRUE(r.misr_pass);
  EXPECT_EQ(r.misr, r.misr_expected);
}

TEST(PiIteration, RandomTrajectoryStillDetectsSaf) {
  mem::FaultyRam ram(64, 1);
  ram.inject(mem::Fault::saf({20, 0}, 1));
  PiConfig cfg;
  cfg.init = {1, 0};
  cfg.trajectory = TrajectoryKind::kRandom;
  cfg.seed = 4;
  // Stuck-at-1: activates wherever the pattern expects 0 (1/3 of
  // positions).  Sweep a few seeds; at least one must place the cell
  // on an activating position.
  bool detected = false;
  for (std::uint64_t s = 0; s < 6; ++s) {
    mem::FaultyRam fresh(64, 1);
    fresh.inject(mem::Fault::saf({20, 0}, 1));
    cfg.seed = s;
    detected |= !bom_tester().run(fresh, cfg).pass;
  }
  EXPECT_TRUE(detected);
}

TEST(PiIteration, DegreeThreeGenerator) {
  // k = 3 generalization: g = 1 + x + x^3 over GF(2), ops 4(n-3)+6.
  PiTester t(gf::GF2m(0b11), {1, 1, 0, 1});
  mem::SimRam ram(20, 1);
  PiConfig cfg;
  cfg.init = {1, 0, 0};
  const PiResult r = t.run(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.writes, 20u);
  EXPECT_EQ(r.reads, 3u * (20 - 3) + 3 + 3);  // window + Fin + Init
}

TEST(PiIteration, WomChecksWidthInvariant) {
  // Memory of matching width runs fine; the image stays within mask.
  mem::SimRam ram(300, 4);
  PiConfig cfg;
  cfg.init = {0xF, 0xF};
  const PiResult r = wom_tester().run(ram, cfg);
  EXPECT_TRUE(r.pass);
  for (mem::Addr a = 0; a < 300; ++a) EXPECT_LE(ram.peek(a), 0xFu);
}

}  // namespace
}  // namespace prt::core
