// Intra-word fault testing for word-oriented memories (paper §2).
//
// "For the WOM there are intra-word faults that can be tested by
//  parallel application of a pi-testing for BOM.  In this case it is
//  supposed that there are m independent bit-oriented linear automatons.
//  For all automatons the read and write operations are executed
//  simultaneously.  To detect the intra-word faults two different
//  pi-testing can be performed: (1) with parallel or (2) with random
//  trajectories."
//
// Mode (1) — parallel trajectories: all m bit-plane automata share the
// address trajectory, so each sub-iteration is one word-wide access;
// the per-plane GF(2) feedbacks combine into a single word operation.
// Per-plane diversity comes from per-plane initial values (the
// heuristically derived d of §2, here: plane b starts at phase b of the
// plane LFSR cycle).
//
// Mode (2) — random (independent) trajectories: every plane is swept
// along its own pseudo-random address permutation, which breaks the
// word-alignment of aggressor/victim bit pairs.  In hardware this is
// the externally programmable trajectory block the paper mentions; in
// simulation each plane performs masked read-modify-write accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pi_iteration.hpp"

namespace prt::core {

enum class IntraWordMode : std::uint8_t {
  kParallelTrajectories,
  kRandomTrajectories,
};

struct IntraWordConfig {
  /// GF(2) generator of each bit-plane automaton (g0..gk, bits).
  std::vector<gf::Elem> plane_g{1, 1, 1};
  /// Per-plane seed pair; plane b uses init_of_plane(b).
  IntraWordMode mode = IntraWordMode::kParallelTrajectories;
  TrajectoryKind trajectory = TrajectoryKind::kAscending;
  std::uint64_t seed = 0;
};

struct IntraWordResult {
  bool pass = false;
  /// Per-plane observed and expected Fin states (k bits each, packed
  /// little-endian into one word per plane).
  std::vector<std::uint32_t> fin;
  std::vector<std::uint32_t> fin_expected;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// The per-plane initial values: plane b's bit automaton starts from
/// the state of the plane LFSR advanced by b steps, so neighbouring
/// planes always carry distinct local backgrounds (this is the
/// concrete heuristic standing in for the paper's "values d derive
/// heuristically").
[[nodiscard]] std::vector<gf::Elem> plane_init(
    const std::vector<gf::Elem>& plane_g, unsigned plane);

/// Runs one intra-word pi-test over an m-bit memory.  Preconditions:
/// memory.width() == m >= 2, memory.size() > deg(plane_g).
[[nodiscard]] IntraWordResult run_intra_word(mem::Memory& memory,
                                             const IntraWordConfig& config);

}  // namespace prt::core
