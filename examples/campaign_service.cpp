// Campaign-as-a-service: concurrent fault-injection requests on one
// shared worker pool, with cancellation, deadlines and checkpointed
// resume — the long-running-qualification workflow the synchronous
// engines (see fault_campaign.cpp) cannot express.
//
// The program drives one CampaignService through synthetic traffic:
//
//   1. a mixed batch of PRT and March requests running to completion,
//   2. a request cancelled mid-flight (resolves to an exact partial
//      result over the shards that finished),
//   3. a request with a deliberately tight deadline,
//   4. a checkpointed request that is cancelled, then resumed from its
//      checkpoint file — the resumed result is bit-identical to an
//      uninterrupted run.
//
//   $ ./campaign_service [n]        (default n = 96)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "analysis/campaign_service.hpp"
#include "core/prt_engine.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"

namespace {

prt::analysis::CampaignRequest prt_request(prt::mem::Addr n) {
  prt::analysis::CampaignRequest req;
  req.scheme = prt::core::extended_scheme_bom(n);
  req.options.n = n;
  req.universe = prt::mem::classical_universe(n);
  return req;
}

prt::analysis::CampaignRequest march_request(prt::mem::Addr n) {
  prt::analysis::CampaignRequest req;
  req.march_test = prt::march::march_c_minus();
  req.options.n = n;
  req.universe = prt::mem::classical_universe(n);
  return req;
}

void report(const char* label, const prt::analysis::RequestOutcome& out) {
  std::printf("%-22s %-19s shards %zu/%zu (resumed %zu)  coverage %llu/%llu\n",
              label, prt::analysis::to_string(out.status).c_str(),
              out.shards_done, out.shards_total, out.shards_resumed,
              static_cast<unsigned long long>(out.result.overall.detected),
              static_cast<unsigned long long>(out.result.overall.total));
  if (!out.error.empty()) std::printf("%-22s   error: %s\n", "", out.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prt;
  const mem::Addr n =
      argc > 1 ? static_cast<mem::Addr>(std::strtoul(argv[1], nullptr, 10))
               : 96;
  if (n < 4 || n > (1u << 20)) {
    std::fprintf(stderr, "usage: %s [n]   (4 <= n <= 2^20)\n", argv[0]);
    return 2;
  }

  // A small running window with a stall watchdog: requests past the
  // window wait in their class queue; a shard attempt wedged for more
  // than a second is cancelled and retried.
  analysis::CampaignService service(
      {.max_running = 8, .stall_budget = std::chrono::seconds(1)});

  // 1. A batch of concurrent requests — PRT and March interleaved on
  //    the one pool; each ticket resolves independently.  The March
  //    request is admitted high-priority: were the window full, it
  //    would dispatch ahead of every queued normal/batch request.
  std::vector<analysis::CampaignService::Ticket> batch;
  batch.push_back(service.submit(prt_request(n)));
  {
    analysis::CampaignRequest req = march_request(n);
    req.priority = analysis::RequestPriority::kHigh;
    batch.push_back(service.submit(std::move(req)));
  }
  {
    analysis::CampaignRequest req = prt_request(n / 2);
    req.priority = analysis::RequestPriority::kBatch;
    batch.push_back(service.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    char label[32];
    std::snprintf(label, sizeof label, "batch[%zu]", i);
    report(label, batch[i].wait());
  }

  // 2. Cancellation: the shard loops observe the token at the next
  //    fault boundary and the outcome is an exact merge of whatever
  //    shards completed — possibly all of them on a fast machine.
  {
    analysis::CampaignRequest req = prt_request(n);
    req.shards = 64;  // fine partition so the cancel lands mid-run
    analysis::CampaignService::Ticket ticket = service.submit(std::move(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ticket.cancel();
    report("cancelled", ticket.wait());
  }

  // 3. Deadline: same mechanism, triggered by the wall clock.
  {
    analysis::CampaignRequest req = march_request(n);
    req.shards = 64;
    req.deadline = std::chrono::milliseconds(1);
    report("deadline 1ms", service.submit(std::move(req)).wait());
  }

  // 4. Checkpoint + resume: interrupt a checkpointed request, then
  //    resubmit it with resume=true.  The resumed run adopts the
  //    checkpointed shards and its final result is bit-identical to an
  //    uninterrupted run (asserted exhaustively in
  //    tests/test_campaign_service.cpp; printed here for inspection).
  {
    const std::string path = "campaign_service_example.ckpt";
    analysis::CampaignRequest req = prt_request(n);
    req.shards = 64;
    req.checkpoint_path = path;
    analysis::CampaignService::Ticket ticket = service.submit(req);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ticket.cancel();
    report("interrupted", ticket.wait());

    req.resume = true;
    report("resumed", service.submit(std::move(req)).wait());
    std::remove(path.c_str());
  }

  const analysis::CampaignService::Stats stats = service.stats();
  std::printf(
      "\nservice stats: accepted %llu, completed %llu, partial %llu, "
      "failed %llu, rejected %llu, shedded %llu, checkpoint writes %llu, "
      "shards resumed %llu, shard stalls %llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.partial),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.shedded),
      static_cast<unsigned long long>(stats.checkpoint_writes),
      static_cast<unsigned long long>(stats.shards_resumed),
      static_cast<unsigned long long>(stats.shard_stalls));
  std::printf(
      "oracle cache: hits %llu, misses %llu, evictions %llu, resident "
      "%llu entries / %llu bytes\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.cache_entries),
      static_cast<unsigned long long>(stats.cache_bytes));
  return 0;
}
