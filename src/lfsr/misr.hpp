// Multiple-input signature register (MISR) for BIST response
// compaction.  The paper compacts the response into the memory's own
// final automaton state; this classic MISR is provided as the optional
// *second* signature over the read stream (DESIGN.md §6) and for the
// aliasing comparison in the Markov analysis.
#pragma once

#include <cstdint>
#include <span>

#include "gf/gf2_poly.hpp"

namespace prt::lfsr {

/// A w-bit type-2 (internal-XOR) MISR with characteristic polynomial
/// p(z) over GF(2), deg p = w <= 63.  Each shift folds one w-bit input
/// word into the state.
class Misr {
 public:
  /// Precondition: deg(poly) in [1, 63]; poly is normally primitive so
  /// the aliasing probability is 2^-w.
  explicit Misr(gf::Poly2 poly);

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] std::uint64_t state() const { return state_; }
  void reset(std::uint64_t seed = 0) { state_ = seed & mask_; }

  /// Folds one input word into the signature.
  void shift(std::uint64_t input);

  /// Folds a whole response stream.
  void absorb(std::span<const std::uint64_t> words) {
    for (std::uint64_t w : words) shift(w);
  }

 private:
  gf::Poly2 poly_;
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t state_ = 0;
};

}  // namespace prt::lfsr
