// The lane-word abstraction (mem/lane_word.hpp) and its wide
// instantiations.
//
// Everything the packed fault paths assume about a lane word is pinned
// here, per width: the helper identities (broadcast, single-lane bit,
// test/assign round trips, popcount, low masks, ascending set-lane
// iteration), the WideWord limb layout (lane L = limb L/64, bit L%64,
// limb 0 bit-compatible with the uint64 word), the width-generic
// PackedVerdictT accessors, and — the tentpole property — that a
// WideWord<K> PRT replay is lane-for-lane identical to K independent
// 64-lane replays over the same faults, full-run and early-abort.
#include "mem/lane_word.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/op_transcript.hpp"
#include "core/prt_engine.hpp"
#include "core/prt_packed.hpp"
#include "mem/fault_universe.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt {
namespace {

template <typename W>
class LaneWordTyped : public ::testing::Test {};

using LaneWidths =
    ::testing::Types<mem::LaneWord, mem::WideWord<4>, mem::WideWord<8>>;
TYPED_TEST_SUITE(LaneWordTyped, LaneWidths);

/// Deterministic per-lane bit pattern, width-independent: lane L of
/// word(seed) is the same bit at every width that has a lane L.
bool reference_bit(std::uint64_t seed, unsigned lane) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + lane * 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 31;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 29;
  return (x & 1U) != 0;
}

template <typename W>
W reference_word(std::uint64_t seed) {
  W w{};
  for (unsigned lane = 0; lane < mem::LaneTraits<W>::kLanes; ++lane) {
    mem::lane_assign(w, lane, reference_bit(seed, lane));
  }
  return w;
}

TYPED_TEST(LaneWordTyped, BroadcastAndLowMaskIdentities) {
  using W = TypeParam;
  constexpr unsigned kLanes = mem::LaneTraits<W>::kLanes;
  const W zeros = mem::lane_broadcast<W>(0);
  const W ones = mem::lane_broadcast<W>(1);
  EXPECT_FALSE(mem::lane_any(zeros));
  EXPECT_EQ(mem::lane_popcount(zeros), 0u);
  EXPECT_EQ(mem::lane_popcount(ones), kLanes);
  EXPECT_EQ(zeros, W{});
  EXPECT_EQ(~ones, W{});
  EXPECT_EQ(mem::lane_mask_low<W>(0), W{});
  EXPECT_EQ(mem::lane_mask_low<W>(kLanes), ones);
  for (const unsigned count : {1u, 7u, 63u, std::min(64u, kLanes),
                               std::min(65u, kLanes), kLanes - 1, kLanes}) {
    const W mask = mem::lane_mask_low<W>(count);
    EXPECT_EQ(mem::lane_popcount(mask), count);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      EXPECT_EQ(mem::lane_test(mask, lane), lane < count)
          << "count=" << count << " lane=" << lane;
    }
  }
}

TYPED_TEST(LaneWordTyped, LaneBitTestAssignRoundTrip) {
  using W = TypeParam;
  constexpr unsigned kLanes = mem::LaneTraits<W>::kLanes;
  W acc{};
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    const W bit = mem::lane_bit<W>(lane);
    EXPECT_EQ(mem::lane_popcount(bit), 1u);
    EXPECT_TRUE(mem::lane_any(bit));
    for (unsigned other = 0; other < kLanes; ++other) {
      EXPECT_EQ(mem::lane_test(bit, other), other == lane);
    }
    W assigned{};
    mem::lane_assign(assigned, lane, true);
    EXPECT_EQ(assigned, bit);
    mem::lane_assign(assigned, lane, false);
    EXPECT_EQ(assigned, W{});
    acc |= bit;
  }
  EXPECT_EQ(acc, mem::lane_broadcast<W>(1));
}

TYPED_TEST(LaneWordTyped, BitwiseOpsMatchPerLaneReference) {
  using W = TypeParam;
  constexpr unsigned kLanes = mem::LaneTraits<W>::kLanes;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const W a = reference_word<W>(seed);
    const W b = reference_word<W>(seed + 100);
    const W land = a & b;
    const W lor = a | b;
    const W lxor = a ^ b;
    const W lnot = ~a;
    unsigned expect_pop = 0;
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      const bool av = reference_bit(seed, lane);
      const bool bv = reference_bit(seed + 100, lane);
      EXPECT_EQ(mem::lane_test(a, lane), av);
      EXPECT_EQ(mem::lane_test(land, lane), av && bv);
      EXPECT_EQ(mem::lane_test(lor, lane), av || bv);
      EXPECT_EQ(mem::lane_test(lxor, lane), av != bv);
      EXPECT_EQ(mem::lane_test(lnot, lane), !av);
      expect_pop += av ? 1U : 0U;
    }
    EXPECT_EQ(mem::lane_popcount(a), expect_pop);
    // Compound assignment agrees with the binary forms.
    W c = a;
    c &= b;
    EXPECT_EQ(c, land);
    c = a;
    c |= b;
    EXPECT_EQ(c, lor);
    c = a;
    c ^= b;
    EXPECT_EQ(c, lxor);
    // De Morgan at full lane width.
    EXPECT_EQ(~(a & b), ~a | ~b);
    EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
  }
}

TYPED_TEST(LaneWordTyped, ForEachSetLaneVisitsSetLanesAscending) {
  using W = TypeParam;
  constexpr unsigned kLanes = mem::LaneTraits<W>::kLanes;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const W w = reference_word<W>(seed);
    std::vector<unsigned> visited;
    mem::for_each_set_lane(w, [&](unsigned lane) { visited.push_back(lane); });
    EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
    EXPECT_EQ(visited.size(), mem::lane_popcount(w));
    std::size_t i = 0;
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      if (!mem::lane_test(w, lane)) continue;
      ASSERT_LT(i, visited.size());
      EXPECT_EQ(visited[i++], lane);
    }
  }
  // The empty word visits nothing.
  bool called = false;
  mem::for_each_set_lane(W{}, [&](unsigned) { called = true; });
  EXPECT_FALSE(called);
}

// Lane L of a WideWord lives in limb L/64, bit L%64, so limb 0 is
// bit-compatible with the 64-lane uint64 word — the layout every
// lane-indexed side structure (fault metadata, batch maps) assumes.
TEST(LaneWord, WideLimbLayoutMatchesUint64LowLanes) {
  for (const unsigned lane : {0u, 1u, 5u, 63u}) {
    EXPECT_EQ(mem::lane_bit<mem::WideWord<4>>(lane).limb[0],
              mem::lane_bit<mem::LaneWord>(lane));
    EXPECT_EQ(mem::lane_bit<mem::WideWord<8>>(lane).limb[0],
              mem::lane_bit<mem::LaneWord>(lane));
  }
  for (const unsigned lane : {64u, 100u, 191u, 255u}) {
    const mem::WideWord<4> bit = mem::lane_bit<mem::WideWord<4>>(lane);
    for (unsigned k = 0; k < 4; ++k) {
      EXPECT_EQ(bit.limb[k],
                k == lane / 64 ? std::uint64_t{1} << (lane % 64) : 0u)
          << "lane " << lane << " limb " << k;
    }
  }
  EXPECT_EQ(mem::LaneTraits<mem::LaneWord>::kLanes, 64u);
  EXPECT_EQ(mem::LaneTraits<mem::WideWord<4>>::kLanes, 256u);
  EXPECT_EQ(mem::LaneTraits<mem::WideWord<8>>::kLanes, 512u);
  static_assert(!mem::is_wide_lane_word_v<mem::LaneWord>);
  static_assert(mem::is_wide_lane_word_v<mem::WideWord<4>>);
}

/// RAII save/restore of one environment variable around a test body.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~ScopedEnv() {
    if (saved_.empty()) {
      ::unsetenv(name_);
    } else {
      ::setenv(name_, saved_.c_str(), 1);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::string saved_;
};

TEST(LaneWord, DefaultLaneWidthHonoursEnvOverride) {
  ScopedEnv env("PRT_LANES");
  env.set("512");
  EXPECT_EQ(mem::default_lane_width(), 512u);
  env.set("256");
  EXPECT_EQ(mem::default_lane_width(), 256u);
  env.set("64");
  EXPECT_EQ(mem::default_lane_width(), 64u);
#if defined(PRT_SIMD)
  constexpr unsigned kCompiledDefault = 256;
#else
  constexpr unsigned kCompiledDefault = 64;
#endif
  // Widths the dispatch layer has no instantiation for, and garbage,
  // fall back to the compiled default rather than half-applying.
  env.set("128");
  EXPECT_EQ(mem::default_lane_width(), kCompiledDefault);
  env.set("potato");
  EXPECT_EQ(mem::default_lane_width(), kCompiledDefault);
  env.unset();
  EXPECT_EQ(mem::default_lane_width(), kCompiledDefault);
}

// --- width-generic PackedVerdictT accessors (satellite) -----------------

TYPED_TEST(LaneWordTyped, PackedVerdictAccessorsAreWidthGeneric) {
  using W = TypeParam;
  constexpr unsigned kLanes = mem::LaneTraits<W>::kLanes;
  core::PackedVerdictT<W> verdict;
  EXPECT_EQ(verdict.detected_count(), 0u);
  const unsigned lanes[] = {0u, 3u, kLanes / 2, kLanes - 1};
  for (const unsigned lane : lanes) mem::lane_assign(verdict.detected, lane, true);
  EXPECT_EQ(verdict.detected_count(), 4u);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    const bool expect =
        std::find(std::begin(lanes), std::end(lanes), lane) != std::end(lanes);
    EXPECT_EQ(verdict.lane_detected(lane), expect) << "lane " << lane;
  }
  mem::lane_assign(verdict.detected, 3, false);
  EXPECT_EQ(verdict.detected_count(), 3u);
  EXPECT_FALSE(verdict.lane_detected(3));
}

// --- wide replay parity (tentpole) --------------------------------------

/// > 64 lane-compatible faults: the full single-cell kind mix plus the
/// coupling pairs, enough to occupy several 64-lane groups.
std::vector<mem::Fault> multi_group_universe(mem::Addr n) {
  std::vector<mem::Fault> u = mem::single_cell_universe(n, 1,
                                                        /*read_logic=*/true);
  std::vector<std::pair<mem::Addr, mem::Addr>> pairs;
  for (mem::Addr c = 0; c < 8 && c + 1 < n; ++c) pairs.emplace_back(c, c + 1);
  const auto coupling = mem::coupling_universe(pairs, /*bit=*/0);
  u.insert(u.end(), coupling.begin(), coupling.end());
  return u;
}

/// One WideWord<K> replay over `universe` must reproduce, lane for
/// lane, the verdicts of ceil(|universe| / 64) independent 64-lane
/// replays over the same faults in the same order (each 64-lane group
/// is pinned to the scalar oracle by the RunPrtPacked suite, so this
/// transitively anchors the wide word to the scalar reference), and
/// the scalar-equivalent op accounting must agree group by group.
template <unsigned K>
void check_wide_replay_parity(bool early_abort) {
  const mem::Addr n = 16;
  const core::PrtScheme scheme = core::extended_scheme_bom(n);
  const auto oracle = core::make_prt_oracle(scheme, n);
  const core::OpTranscript transcript = core::make_op_transcript(scheme, oracle);
  const std::vector<mem::Fault> universe = multi_group_universe(n);
  ASSERT_GT(universe.size(), 64u);
  ASSERT_LE(universe.size(), mem::PackedFaultRamT<mem::WideWord<K>>::kLanes);

  mem::PackedFaultRamT<mem::WideWord<K>> wide(n);
  for (const mem::Fault& f : universe) wide.add_fault(f);
  core::PackedScratchT<mem::WideWord<K>> wide_scratch;
  const core::PackedRunOptions opt{.early_abort = early_abort};
  const auto wide_verdict = core::run_prt_packed(wide, transcript, opt,
                                                 wide_scratch);

  std::uint64_t narrow_scalar_ops = 0;
  core::PackedScratchT<mem::LaneWord> narrow_scratch;
  for (std::size_t base = 0; base < universe.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, universe.size() - base);
    mem::PackedFaultRam narrow(n);
    for (std::size_t j = 0; j < count; ++j) narrow.add_fault(universe[base + j]);
    const auto narrow_verdict =
        core::run_prt_packed(narrow, transcript, opt, narrow_scratch);
    narrow_scalar_ops += narrow_verdict.scalar_ops;
    for (unsigned lane = 0; lane < count; ++lane) {
      EXPECT_EQ(wide_verdict.lane_detected(static_cast<unsigned>(base) + lane),
                narrow_verdict.lane_detected(lane))
          << "K=" << K << " early_abort=" << early_abort << " fault "
          << (base + lane) << " (" << universe[base + lane].describe() << ")";
    }
  }
  const auto active = wide_verdict.detected & wide.active_mask();
  EXPECT_EQ(mem::lane_popcount(active),
            core::PackedVerdictT<mem::WideWord<K>>{.detected = active}
                .detected_count());
  EXPECT_EQ(wide_verdict.scalar_ops, narrow_scalar_ops)
      << "K=" << K << " early_abort=" << early_abort;
}

TEST(LaneWord, WideReplayMatchesNarrowGroupsFullRun) {
  check_wide_replay_parity<4>(/*early_abort=*/false);
  check_wide_replay_parity<8>(/*early_abort=*/false);
}

TEST(LaneWord, WideReplayMatchesNarrowGroupsEarlyAbort) {
  check_wide_replay_parity<4>(/*early_abort=*/true);
  check_wide_replay_parity<8>(/*early_abort=*/true);
}

}  // namespace
}  // namespace prt
