// Executes March tests against a Memory and reports detection.
//
// A March test detects a fault when any read returns a value different
// from the expected data.  For word-oriented memories the classic {0,1}
// data indices are expanded over a set of data backgrounds; the
// standard log2(m)+1 backgrounds (solid, checkerboard, double-stripe,
// ...) are provided.
#pragma once

#include <cstdint>
#include <vector>

#include "march/march_test.hpp"
#include "mem/memory.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt::march {

/// Outcome of one March run.
struct MarchResult {
  bool fail = false;          // any read mismatched
  std::uint64_t mismatches = 0;
  std::uint64_t ops = 0;      // reads + writes actually issued
  // First mismatch, valid when fail:
  mem::Addr first_addr = 0;
  mem::Word first_expected = 0;
  mem::Word first_actual = 0;
};

/// Runs `test` over the whole address space of `memory` with data
/// index 0 = `background`, index 1 = ~background.  Each "Del" element
/// advances the memory's virtual time by `delay_ticks` (data-retention
/// faults decay against that clock).
[[nodiscard]] MarchResult run_march(const MarchTest& test,
                                    mem::Memory& memory,
                                    mem::Word background = 0,
                                    std::uint64_t delay_ticks = 100'000);

/// Runs the test once per background and merges the results (a fault is
/// detected if any background run fails).
[[nodiscard]] MarchResult run_march_backgrounds(
    const MarchTest& test, mem::Memory& memory,
    const std::vector<mem::Word>& backgrounds);

/// Runs one March sweep bit-parallel over a mem::PackedFaultRam (a
/// packed one-bit-wide memory, up to 64 independent single-fault
/// lanes): each write broadcasts the element's data bit to every lane
/// and each read compares every lane against the expected background
/// bit at once.  Returns the mask of lanes whose reads deviated — bit
/// L set means lane L's fault is detected, with per-lane semantics
/// identical to run_march(test, FaultyRam-with-that-fault,
/// background).fail for background bit `background`.  Lanes beyond
/// ram.lanes_used() never deviate, but callers should still AND with
/// ram.active_mask().  "Del" elements advance the ram's virtual time
/// (a no-op: no lane-compatible fault is clock-dependent).
[[nodiscard]] std::uint64_t run_march_packed(
    const MarchTest& test, mem::PackedFaultRam& ram,
    bool background = false, std::uint64_t delay_ticks = 100'000);

/// The standard data backgrounds for an m-bit word: solid 0,
/// checkerboard 0101.., double stripe 0011.., quad stripe 00001111..,
/// etc — ceil(log2(m)) + 1 words.  m = 1 yields just {0}.
[[nodiscard]] std::vector<mem::Word> standard_backgrounds(unsigned m);

}  // namespace prt::march
