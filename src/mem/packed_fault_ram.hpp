// Word-packed SIMD fault lanes.
//
// PackedFaultRam simulates up to 64 *independent* single-fault faulty
// memories in one pass: each cell stores a 64-bit word whose bit lane L
// is the cell's value in lane L's memory, and each lane carries exactly
// one injected fault.  One sweep over the array therefore evaluates up
// to 64 faults simultaneously — the SIMD unit is the ordinary 64-bit
// ALU, and every fault effect below is a handful of bitwise ops.
//
// Lane-compatible faults (lane_compatible()) are those whose behaviour
// is a pure function of bit-plane-0 state reachable from inside one
// lane: the single-cell kinds (stuck-at, transition, write-disturb, the
// read-logic kinds) and — because a lane is a whole memory, so an
// aggressor/victim *pair* fits in one lane — the two-cell coupling
// kinds (CFin, CFid, CFst) and bridges.  Decoder faults remap whole
// accesses, NPSF needs a 4-cell neighbourhood pattern, and retention
// faults need the global clock — those stay on the scalar FaultyRam
// path (analysis/campaign_engine does the partitioning).
//
// Semantics are bit-exact per lane with a FaultyRam holding the same
// single fault (tests/test_packed_campaign.cpp runs the differential
// check), including the injection-time stuck-at clamp, the
// injection-time enforcement of state conditions (CFst, bridge) and the
// per-port sense-amp history of SOF (the PRT engines drive port 0
// only).  Because every lane holds exactly one fault, the scalar
// model's cascade machinery (a victim flip re-triggering other faults)
// degenerates to a single direct effect per lane.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/fault.hpp"

namespace prt::mem {

/// One bit per lane across the 64 packed memories.
using LaneWord = std::uint64_t;

/// True when `fault` can ride a bit lane: a fault on bit plane 0 (the
/// packed array models a 1-bit-wide memory) whose effect never
/// references the decoder, a neighbourhood pattern or the clock.
/// Single-cell kinds and the two-cell coupling/bridge kinds qualify.
[[nodiscard]] bool lane_compatible(const Fault& fault);

class PackedFaultRam {
 public:
  static constexpr unsigned kLanes = 64;

  /// A packed array of `cells` one-bit cells, all lanes zero-filled,
  /// no faults.  Throws std::invalid_argument when cells < 1.
  explicit PackedFaultRam(Addr cells);

  [[nodiscard]] Addr size() const { return size_; }
  [[nodiscard]] unsigned lanes_used() const { return lanes_used_; }
  /// Mask with one bit set per occupied lane (low lanes_used() bits).
  [[nodiscard]] LaneWord active_mask() const {
    return lanes_used_ == kLanes ? ~LaneWord{0}
                                 : (LaneWord{1} << lanes_used_) - 1;
  }

  /// Returns to the just-constructed state (all lanes zero, no faults,
  /// counters zero) without releasing storage.  Only the cells dirtied
  /// by faults pay a per-cell cost; the data array is one memset.
  void reset();

  /// Assigns `fault` to the next free lane and returns its index.
  /// State conditions (CFst, bridge) are enforced against the lane's
  /// current contents immediately, matching FaultyRam::inject.  Throws
  /// std::invalid_argument when the fault is not lane_compatible(), a
  /// referenced cell is out of range, or a two-cell fault has aggressor
  /// == victim; std::length_error when all 64 lanes are taken.
  unsigned add_fault(const Fault& fault);

  /// Reads every lane's bit of `addr` at once, applying each lane's
  /// read-logic fault.  Precondition: addr < size().
  LaneWord read(Addr addr);

  /// Writes bit lane L of `value` to cell `addr` in lane L's memory,
  /// applying each lane's write fault and firing each lane's coupling
  /// effects (this cell as aggressor, victim or bridge endpoint).
  /// Precondition: addr < size().
  void write(Addr addr, LaneWord value);

  /// Idle time: no lane-compatible fault is clock-dependent, so this
  /// only keeps the operation counters honest (no-op otherwise).
  void advance_time(std::uint64_t ticks) { (void)ticks; }

  /// Packed operations issued since the last reset().  Each packed
  /// read/write counts once; a scalar campaign issues the same count
  /// *per fault*, so the per-fault op cost is reads() + writes().
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t ops() const { return reads_ + writes_; }

  /// Direct state access for tests (bypasses faults and counters).
  [[nodiscard]] LaneWord peek(Addr addr) const { return data_[addr]; }

 private:
  /// Per-kind lane masks for one faulty cell; a lane's bit is set in
  /// the masks of at most the two cells its single fault references.
  struct CellFaults {
    // Single-cell kinds (this cell is the victim).
    LaneWord saf0 = 0, saf1 = 0;
    LaneWord tf_up = 0, tf_down = 0, wdf = 0;
    LaneWord rdf = 0, drdf = 0, irf = 0, sof = 0;
    // Two-cell kinds.  cfin/cfid_*/cfst_agg are registered on the
    // *aggressor* cell, cfst_vic on the *victim* cell (its writes must
    // re-enforce the condition), bridge on *both* endpoints.
    LaneWord cfin = 0;
    LaneWord cfid_up = 0, cfid_down = 0;
    LaneWord cfst_agg = 0, cfst_vic = 0;
    LaneWord bridge = 0;

    [[nodiscard]] LaneWord coupling_any() const {
      return cfin | cfid_up | cfid_down | cfst_agg | cfst_vic | bridge;
    }
  };

  CellFaults& slot_for(Addr cell);

  /// Fires the two-cell effects of a write to `addr` that landed
  /// `now` over `old` (per-lane scatter over the few coupled lanes).
  void apply_coupling(Addr addr, LaneWord old, LaneWord now,
                      const CellFaults& f);

  Addr size_;
  std::vector<LaneWord> data_;
  /// Cell -> index into slots_, -1 for fault-free cells — the hot path
  /// pays one branch per access and only faulty cells (<= 128 of them,
  /// two per two-cell lane) touch a CellFaults record.
  std::vector<std::int16_t> slot_of_cell_;
  std::vector<CellFaults> slots_;
  std::vector<Addr> dirty_cells_;
  /// Per-lane two-cell metadata, only read for lanes registered in a
  /// coupling/bridge mask.
  std::array<Addr, kLanes> lane_victim_{};
  std::array<Addr, kLanes> lane_aggressor_{};
  /// Lanes whose CFid/CFst forces the victim to 1 (clear = forces 0).
  LaneWord forced1_ = 0;
  /// CFst lanes triggered while the aggressor holds 1 (clear = 0).
  LaneWord cfst_state1_ = 0;
  /// Bridge lanes with wired-OR semantics (clear = wired-AND).
  LaneWord bridge_or_ = 0;
  unsigned lanes_used_ = 0;
  LaneWord last_read_ = 0;  // packed sense-amp history (port 0)
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace prt::mem
