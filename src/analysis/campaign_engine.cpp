#include "analysis/campaign_engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <thread>
#include <vector>

#include "core/prt_packed.hpp"
#include "mem/fault_injector.hpp"
#include "mem/packed_fault_ram.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis {

CampaignEngine::CampaignEngine(core::PrtScheme scheme,
                               const CampaignOptions& opt,
                               const EngineOptions& engine)
    : scheme_(std::move(scheme)),
      opt_(opt),
      engine_(engine),
      oracle_(core::make_prt_oracle(scheme_, opt.n)),
      scheme_packable_(opt.m == 1 && core::prt_scheme_packable(scheme_)) {}

CampaignEngine::~CampaignEngine() = default;

bool CampaignEngine::packed_enabled() const {
  return engine_.packed && engine_.use_oracle && !engine_.early_abort &&
         scheme_packable_;
}

void CampaignEngine::run_shard(std::span<const mem::Fault> universe,
                               std::size_t begin, std::size_t end,
                               CampaignResult& out) const {
  mem::FaultyRam ram(opt_.n, opt_.m, opt_.ports);
  const core::PrtRunOptions run_opts{.early_abort = engine_.early_abort,
                                     .record_iterations = false};
  auto tally = [&](std::size_t i, bool detected) {
    auto& cls = out.by_class[mem::fault_class(universe[i].kind)];
    ++cls.total;
    ++out.overall.total;
    if (detected) {
      ++cls.detected;
      ++out.overall.detected;
    } else {
      out.escapes.push_back(i);
    }
  };
  auto run_scalar = [&](std::size_t i) {
    ram.reset(universe[i]);
    const bool detected =
        engine_.use_oracle
            ? core::run_prt(ram, scheme_, oracle_, run_opts).detected()
            : core::run_prt(ram, scheme_).detected();
    out.ops += ram.total_stats().total();
    tally(i, detected);
  };

  if (!packed_enabled()) {
    for (std::size_t i = begin; i < end; ++i) run_scalar(i);
    return;
  }

  // Lane-batched path: compatible faults ride the packed ram 64 at a
  // time, the rest run scalar in place.  Escapes are gathered out of
  // order and sorted once — counts and op sums are order-independent,
  // so the shard output is bit-identical to the all-scalar loop.
  mem::PackedFaultRam packed(opt_.n);
  std::array<std::size_t, mem::PackedFaultRam::kLanes> batch_index{};
  auto flush = [&]() {
    const unsigned lanes = packed.lanes_used();
    if (lanes == 0) return;
    const std::uint64_t detected =
        core::run_prt_packed(packed, scheme_, oracle_) & packed.active_mask();
    // Every lane's fault "ran" the complete scheme: the packed op count
    // equals the scalar per-fault op count of a full run.
    out.ops += packed.ops() * lanes;
    for (unsigned lane = 0; lane < lanes; ++lane) {
      tally(batch_index[lane], ((detected >> lane) & 1U) != 0);
    }
    packed.reset();
  };
  for (std::size_t i = begin; i < end; ++i) {
    if (mem::lane_compatible(universe[i])) {
      batch_index[packed.add_fault(universe[i])] = i;
      if (packed.lanes_used() == mem::PackedFaultRam::kLanes) flush();
    } else {
      run_scalar(i);
    }
  }
  flush();
  std::sort(out.escapes.begin(), out.escapes.end());
}

CampaignResult CampaignEngine::run(
    std::span<const mem::Fault> universe) const {
  unsigned workers = engine_.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (!engine_.parallel || workers == 1 || universe.size() < 2) {
    CampaignResult result;
    run_shard(universe, 0, universe.size(), result);
    return result;
  }
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(workers);
  const auto shard_count =
      std::min<std::size_t>(pool_->workers(), universe.size());
  std::vector<CampaignResult> shards(shard_count);
  pool_->parallel_for_chunks(
      universe.size(),
      [&](unsigned chunk, std::size_t begin, std::size_t end) {
        run_shard(universe, begin, end, shards[chunk]);
      });
  return merge_results(shards);
}

CampaignResult merge_results(std::span<const CampaignResult> shards) {
  CampaignResult merged;
  for (const CampaignResult& shard : shards) {
    for (const auto& [cls, cov] : shard.by_class) {
      auto& acc = merged.by_class[cls];
      acc.detected += cov.detected;
      acc.total += cov.total;
    }
    merged.overall.detected += shard.overall.detected;
    merged.overall.total += shard.overall.total;
    merged.ops += shard.ops;
    merged.escapes.insert(merged.escapes.end(), shard.escapes.begin(),
                          shard.escapes.end());
  }
  return merged;
}

CampaignResult run_prt_campaign(std::span<const mem::Fault> universe,
                                const core::PrtScheme& scheme,
                                const CampaignOptions& opt,
                                const EngineOptions& engine) {
  return CampaignEngine(scheme, opt, engine).run(universe);
}

}  // namespace prt::analysis
