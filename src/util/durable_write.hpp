// Durable atomic file replacement.
//
// The checkpoint story (analysis/campaign_service) rests on "a crash
// never loses an already-written checkpoint".  tmp + rename alone does
// not deliver that: POSIX makes the rename atomic in the namespace but
// says nothing about when the tmp file's *data* reaches the platter —
// a crash shortly after the rename can leave the new name pointing at
// a zero-length or partially-written inode, destroying the previous
// checkpoint in the process.  durable_replace_file closes that hole
// with the canonical sequence: write tmp, fsync(tmp), rename, then
// fsync the containing directory so the rename itself is durable.
//
// This is the ONE sanctioned rename path in src/ — the project lint
// (scripts/run_lint.py) rejects bare rename()/std::filesystem::rename
// anywhere else, so every future at-rest artifact inherits the same
// durability by construction.
#pragma once

#include <string>

namespace prt::util {

/// Atomically and durably replaces `path` with `contents`: writes
/// `path + ".tmp"`, fsyncs it, renames it over `path`, and fsyncs the
/// containing directory.  Throws std::runtime_error naming the failing
/// step and path on any error; on failure `path` still holds its
/// previous contents (the tmp file may be left behind).
void durable_replace_file(const std::string& path,
                          const std::string& contents);

}  // namespace prt::util
