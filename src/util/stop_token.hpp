// Cooperative cancellation with deadlines for long-running campaigns.
//
// A StopSource owns the stop state; the StopTokens it hands out are
// cheap shared views polled from worker loops.  Three stop causes
// exist and are distinguished so callers can report *why* a run ended
// early: an explicit request_stop() (user cancellation, or the shard
// watchdog passing kStalled), a wall-clock deadline
// (set_deadline_after), and — via parent linking — any cause inherited
// from an upstream source.  A stop is sticky: once observed the reason
// latches, and every later poll is a single atomic load.
//
// Parent linking: StopSource(parent_token) creates a *child* source
// whose tokens also trip when the parent does, with the parent's
// reason.  The campaign service gives every shard attempt its own
// child source so the watchdog can cancel one stalled attempt
// (kStalled on the child) without touching the request-level token,
// while a request-level cancel/deadline still reaches the shard loop
// through the same child token.  Chains are expected to be one link
// deep; the poll recurses up them.
//
// A default-constructed StopToken has no state and never stops — the
// shape every pre-existing call site uses, so threading tokens through
// the campaign shard loops costs non-cancellable runs one null check
// per fault.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

namespace prt::util {

enum class StopReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,
  kDeadline = 2,
  /// A supervisor (util/watchdog.hpp) judged the work stalled past its
  /// budget and cancelled this attempt.
  kStalled = 3,
};

namespace detail {
// Invariant (lock-free latch, invisible to thread-safety analysis —
// see util/annotations.hpp): `reason` transitions 0 -> nonzero exactly
// once, via compare_exchange with expected = 0, and is never written
// again; every writer (request_stop, the deadline poll and the parent
// propagation in stop_requested) races through that one CAS, so
// concurrent cancel, deadline expiry and parent stops latch a single
// winner and all observers agree on it forever after (pinned by
// StopToken.ConcurrentObserversAgreeOnOneReason).  `deadline` is
// monotonic-clock plumbing only: readers re-check `reason` before
// trusting it, so a racy deadline store can at worst delay — never
// un-latch — a stop.  `parent` is set once at construction and never
// reassigned, so following it is data-race-free.
struct StopState {
  std::atomic<std::uint8_t> reason{0};
  /// steady_clock time_since_epoch in its native rep; 0 = no deadline.
  std::atomic<std::int64_t> deadline{0};
  /// Upstream state this one inherits stops from; null for roots.
  std::shared_ptr<StopState> parent;
};
}  // namespace detail

class StopToken {
 public:
  /// Stateless token: stop_requested() is always false.
  StopToken() = default;

  /// True once the source requested a stop, the deadline passed, or a
  /// linked parent stopped.  Latches: the first deadline or parent
  /// observation stores the reason locally so subsequent polls are one
  /// atomic load.
  [[nodiscard]] bool stop_requested() const {
    return state_ != nullptr && state_stopped(*state_);
  }

  /// Why the stop happened; kNone while still running.  Polls the
  /// deadline and parent chain like stop_requested() so the reported
  /// reason cannot lag an expired deadline or a stopped parent.
  [[nodiscard]] StopReason reason() const {
    if (!state_ || !state_stopped(*state_)) return StopReason::kNone;
    return static_cast<StopReason>(
        state_->reason.load(std::memory_order_acquire));
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<detail::StopState> state)
      : state_(std::move(state)) {}

  static bool state_stopped(detail::StopState& state) {
    if (state.reason.load(std::memory_order_acquire) != 0) return true;
    const std::int64_t deadline =
        state.deadline.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      std::uint8_t expected = 0;
      state.reason.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(StopReason::kDeadline),
          std::memory_order_acq_rel);
      return true;
    }
    if (state.parent != nullptr && state_stopped(*state.parent)) {
      // Latch the parent's reason locally so observers of this state
      // agree with observers of the parent (first local cause wins if
      // a direct stop raced in between the two loads).
      std::uint8_t expected = 0;
      state.reason.compare_exchange_strong(
          expected, state.parent->reason.load(std::memory_order_acquire),
          std::memory_order_acq_rel);
      return true;
    }
    return false;
  }

  std::shared_ptr<detail::StopState> state_;
};

class StopSource {
 public:
  StopSource() : state_(std::make_shared<detail::StopState>()) {}

  /// Child source: tokens stop when either this source is stopped
  /// directly or `parent` stops (inheriting the parent's reason).
  /// A stateless parent token yields an ordinary root source.
  explicit StopSource(const StopToken& parent)
      : state_(std::make_shared<detail::StopState>()) {
    state_->parent = parent.state_;
  }

  /// Requests a stop with the given cause (default: user
  /// cancellation).  First cause wins: a cancel after the deadline
  /// already latched keeps reporting kDeadline (and vice versa).
  /// kNone is not a cause and is promoted to kCancelled.
  void request_stop(StopReason reason = StopReason::kCancelled) const {
    if (reason == StopReason::kNone) reason = StopReason::kCancelled;
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel);
  }

  /// Arms a wall-clock deadline `after` from now; tokens trip it
  /// lazily on their next poll.
  void set_deadline_after(std::chrono::nanoseconds after) const {
    const auto when = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(after);
    std::int64_t rep = when.time_since_epoch().count();
    if (rep == 0) rep = 1;  // 0 means "no deadline"
    state_->deadline.store(rep, std::memory_order_relaxed);
  }

  [[nodiscard]] StopToken token() const { return StopToken(state_); }
  [[nodiscard]] bool stop_requested() const {
    return token().stop_requested();
  }

 private:
  std::shared_ptr<detail::StopState> state_;
};

}  // namespace prt::util
