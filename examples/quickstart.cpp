// Quickstart: pseudo-ring testing in ~40 lines.
//
// Builds a simulated 1K x 1 bit-oriented RAM, runs the standard
// 3-iteration PRT scheme on the healthy part, then injects a stuck-at
// fault and shows the test flagging it — the minimal end-to-end use of
// the library.
//
//   $ ./quickstart
#include <cstdio>

#include "core/prt_engine.hpp"
#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

int main() {
  using namespace prt;
  constexpr mem::Addr kCells = 1024;

  // 1. A healthy memory passes.
  {
    mem::SimRam ram(kCells, /*width_bits=*/1);
    const core::PrtScheme scheme = core::standard_scheme_bom(kCells);
    const core::PrtVerdict verdict = core::run_prt(ram, scheme);
    std::printf("healthy RAM:  %s  (%llu reads, %llu writes = %llu ops "
                "~ 9n)\n",
                verdict.detected() ? "FAULTY" : "OK",
                static_cast<unsigned long long>(verdict.reads),
                static_cast<unsigned long long>(verdict.writes),
                static_cast<unsigned long long>(verdict.ops()));
  }

  // 2. A stuck-at-0 cell is caught: its wrong value corrupts the
  // pseudo-ring state, which no longer matches the LFSR-predicted Fin*.
  {
    mem::FaultyRam ram(kCells, /*width_bits=*/1);
    ram.inject(mem::Fault::saf({/*cell=*/517, /*bit=*/0}, /*value=*/0));
    const core::PrtScheme scheme = core::standard_scheme_bom(kCells);
    const core::PrtVerdict verdict = core::run_prt(ram, scheme);
    std::printf("stuck-at-0 @517:  %s", verdict.detected() ? "FAULTY" : "OK");
    for (std::size_t i = 0; i < verdict.iterations.size(); ++i) {
      std::printf("  iter%zu=%s", i + 1,
                  verdict.iterations[i].pass ? "pass" : "FAIL");
    }
    std::printf("\n");
  }

  // 3. The same memory under a coupling fault, extended scheme.
  {
    mem::FaultyRam ram(kCells, 1);
    ram.inject(mem::Fault::cf_id({/*victim*/ 300, 0}, {/*aggressor*/ 299, 0},
                                 /*up=*/true, /*forced=*/0));
    const core::PrtVerdict verdict =
        core::run_prt(ram, core::extended_scheme_bom(kCells));
    std::printf("CFid<up,0> 299->300:  %s\n",
                verdict.detected() ? "FAULTY" : "OK");
  }
  return 0;
}
