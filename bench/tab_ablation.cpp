// Ablation study for the reconstructed extended scheme's design
// choices (DESIGN.md §6):
//  * verify passes — with the full edge schedule in place their
//    remaining load-bearing role is decoder multi-access aliasing
//    (self-healing within a sweep, visible only to a read-only pass);
//  * random-trajectory iterations — decorrelate aliasing distances
//    that resonate with the short background periods;
//  * MISR read-stream compaction on the plain 3-iteration scheme —
//    closes the RDF gap (it absorbs the window read the two-term
//    feedback discards) and nothing else: lasting corruptions are
//    never read, so no compaction can observe them.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/coverage.hpp"
#include "analysis/fault_sim.hpp"
#include "mem/fault_universe.hpp"

namespace {

using namespace prt;
using analysis::CampaignOptions;
using analysis::run_campaign;

core::PrtScheme without_verify(core::PrtScheme s) {
  for (auto& it : s.iterations) it.config.verify_pass = false;
  s.name += " -verify";
  return s;
}

core::PrtScheme without_random(core::PrtScheme s) {
  std::erase_if(s.iterations, [](const core::SchemeIteration& it) {
    return it.config.trajectory == core::TrajectoryKind::kRandom;
  });
  s.name += " -random";
  return s;
}

void print_tables() {
  const mem::Addr n = 64;
  const auto universe = mem::van_de_goor_universe(n);
  CampaignOptions opt;
  opt.n = n;

  std::printf("== extended-scheme ablation (full model, n = %u) ==\n", n);
  std::vector<analysis::NamedResult> rows;
  const core::PrtScheme full = core::extended_scheme_bom(n);
  rows.push_back(
      {"full", run_campaign(universe, analysis::prt_algorithm(full), opt)});
  rows.push_back({"-verify",
                  run_campaign(universe,
                               analysis::prt_algorithm(without_verify(full)),
                               opt)});
  rows.push_back({"-random",
                  run_campaign(universe,
                               analysis::prt_algorithm(without_random(full)),
                               opt)});
  rows.push_back(
      {"-both",
       run_campaign(universe,
                    analysis::prt_algorithm(
                        without_random(without_verify(full))),
                    opt)});
  std::printf("%s\n", analysis::coverage_table(rows).str().c_str());

  std::printf("== MISR vs Init/Fin observation (3-iteration scheme) ==\n");
  core::PrtScheme misr_scheme = core::standard_scheme_bom(n);
  misr_scheme.misr_poly = 0b1000011;  // degree-6 primitive
  std::vector<analysis::NamedResult> rows2;
  rows2.push_back(
      {"Fin only",
       run_campaign(universe,
                    analysis::prt_algorithm(core::standard_scheme_bom(n)),
                    opt)});
  rows2.push_back({"Fin + MISR",
                   run_campaign(universe,
                                analysis::prt_algorithm(misr_scheme), opt)});
  std::printf("%s", analysis::coverage_table(rows2).str().c_str());
  std::printf(
      "\nthe MISR closes exactly one gap: read-logic faults (RDF) whose\n"
      "flipped read value the two-term feedback discards — the MISR\n"
      "absorbs every read, including the discarded one.  Lasting\n"
      "corruptions (CFid windows, AF-multi, CFst residue) move not at\n"
      "all: they were never read, so no compaction can see them; those\n"
      "need the read-only verify pass.\n\n");
}

void BM_ExtendedScheme(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 1);
  const core::PrtScheme scheme = core::extended_scheme_bom(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_prt(ram, scheme));
  }
}
BENCHMARK(BM_ExtendedScheme)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
