// The paper's Fig. 1b + Fig. 2 configuration end to end: a word-
// oriented dual-port RAM (m = 4, p(z) = 1+z+z^4) tested by the virtual
// LFSR g(x) = 1 + 2x + 2x^2, with the two-port schedule issuing both
// window reads in one cycle (2n cycles instead of 3n).
//
//   $ ./wom_dualport [n]
#include <cstdio>
#include <cstdlib>

#include "core/prt_multiport.hpp"
#include "gf/gf2m_poly.hpp"
#include "mem/fault_injector.hpp"

int main(int argc, char** argv) {
  using namespace prt;
  const mem::Addr n =
      argc > 1 ? static_cast<mem::Addr>(std::atoi(argv[1])) : 257;

  const gf::GF2m field(0b10011);  // p(z) = 1 + z + z^4
  const gf::PolyGF2m g({1, 2, 2});
  std::printf("field: GF(2^4) / %s\n",
              gf::poly_to_string(0b10011).c_str());
  std::printf("generator: g(x) = %s, period %llu, %s\n",
              gf::poly_to_string(field, g).c_str(),
              static_cast<unsigned long long>(gf::order_of_x(field, g)),
              gf::is_primitive(field, g) ? "primitive" : "non-primitive");

  const core::PiTester tester(field, {1, 2, 2});
  core::PiConfig cfg;
  cfg.init = {0, 1};

  // Healthy dual-port run.
  mem::FaultyRam ram(n, /*width=*/4, /*ports=*/2);
  const core::MultiPortResult healthy =
      core::run_pi_dualport(ram, tester, cfg);
  std::printf("\nn = %u cells: %llu cycles (2n = %u), verdict %s\n", n,
              static_cast<unsigned long long>(healthy.cycles), 2 * n,
              healthy.pass ? "OK" : "FAULTY");
  if (tester.ring_closes(n)) {
    std::printf("ring closes: Fin = (%X, %X) equals Init (0, 1)\n",
                healthy.fin[0], healthy.fin[1]);
  }

  // Inject an intra-word bridge and retest.
  ram.inject(
      mem::Fault::bridge({n / 2, 1}, {n / 2, 2}, /*wired_and=*/true));
  const core::MultiPortResult faulty =
      core::run_pi_dualport(ram, tester, cfg);
  std::printf("after intra-word bridge @%u: verdict %s\n", n / 2,
              faulty.pass ? "OK (escaped)" : "FAULTY");

  // Quad-port variants on a fresh memory.
  mem::FaultyRam quad(n, 4, 4);
  const auto q = core::run_pi_quadport(quad, tester, cfg);
  const auto m2 = core::run_pi_multilfsr(quad, tester, cfg);
  std::printf("quad-port single-LFSR: %llu cycles; dual-LFSR: %llu "
              "cycles (n = %u)\n",
              static_cast<unsigned long long>(q.cycles),
              static_cast<unsigned long long>(m2.cycles), n);
  return 0;
}
