#include "analysis/march_campaign.hpp"

#include <utility>

#include "analysis/campaign_shard.hpp"
#include "mem/fault_injector.hpp"
#include "mem/packed_fault_ram.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis {

MarchCampaign::MarchCampaign(march::MarchTest test,
                             const CampaignOptions& opt,
                             const MarchEngineOptions& engine)
    : test_(std::move(test)),
      opt_(opt),
      engine_(engine),
      backgrounds_(march::standard_backgrounds(opt.m)) {}

MarchCampaign::~MarchCampaign() = default;

void MarchCampaign::run_shard(std::span<const mem::Fault> universe,
                              std::size_t begin, std::size_t end,
                              CampaignResult& out) const {
  mem::FaultyRam ram(opt_.n, opt_.m, opt_.ports);
  auto run_scalar = [&](std::size_t i) {
    ram.reset(universe[i]);
    const bool detected =
        march::run_march_backgrounds(test_, ram, backgrounds_).fail;
    out.ops += ram.total_stats().total();
    return detected;
  };

  if (!packed_enabled()) {
    detail::scalar_shard(universe, begin, end, out, run_scalar);
    return;
  }

  // m = 1 has the single background 0, so one packed sweep covers the
  // whole background set march_algorithm runs.
  mem::PackedFaultRam packed(opt_.n);
  auto run_batch = [&](mem::PackedFaultRam& batch) {
    const std::uint64_t detected =
        march::run_march_packed(test_, batch, /*background=*/false) &
        batch.active_mask();
    // run_march always completes, so every lane's scalar-equivalent op
    // cost is the packed op count of the sweep.
    return std::pair{detected, batch.ops() * batch.lanes_used()};
  };
  detail::lane_batched_shard(universe, begin, end, packed, out, run_batch,
                             run_scalar);
}

CampaignResult MarchCampaign::run(
    std::span<const mem::Fault> universe) const {
  const unsigned workers =
      engine_.threads != 0 ? engine_.threads : util::default_worker_count();
  return detail::run_sharded(
      universe.size(), workers, engine_.parallel, pool_,
      [&](std::size_t begin, std::size_t end, CampaignResult& out) {
        run_shard(universe, begin, end, out);
      });
}

CampaignResult run_march_campaign(std::span<const mem::Fault> universe,
                                  march::MarchTest test,
                                  const CampaignOptions& opt,
                                  const MarchEngineOptions& engine) {
  return MarchCampaign(std::move(test), opt, engine).run(universe);
}

}  // namespace prt::analysis
