// Tests for the greedy TDB designer (analysis/tdb_search).
#include "analysis/tdb_search.hpp"

#include <gtest/gtest.h>

#include "mem/fault_universe.hpp"

namespace prt::analysis {
namespace {

TEST(DefaultCandidates, PoolShape) {
  const gf::GF2m f(0b11);
  const auto pool = default_candidates(f, {1, 1, 1});
  EXPECT_GT(pool.size(), 8u);
  bool has_solid0 = false;
  for (const Candidate& c : pool) {
    EXPECT_EQ(c.config.init.size(), 2u);
    has_solid0 |= c.config.init[0] == 0 && c.config.init[1] == 0;
  }
  // Solid-0 must be present: it activates WDF and preloads
  // down-transitions.
  EXPECT_TRUE(has_solid0);
}

TEST(Search, CoverageMonotoneInIterations) {
  const gf::GF2m f(0b11);
  const auto pool = default_candidates(f, {1, 1, 1});
  const auto universe = mem::single_cell_universe(16, 1, true);
  CampaignOptions opt;
  opt.n = 16;
  const SearchResult r = search_tdb(f, pool, universe, opt, 3);
  ASSERT_EQ(r.coverage_by_iterations.size(), 3u);
  EXPECT_LE(r.coverage_by_iterations[0], r.coverage_by_iterations[1] + 1e-9);
  EXPECT_LE(r.coverage_by_iterations[1], r.coverage_by_iterations[2] + 1e-9);
}

TEST(Search, FourIterationsCoverSingleCellUniverse) {
  // {TF-down, WDF, SOF} cannot all be activated-and-read in 3 pure
  // pi-iterations (EXPERIMENTS.md); a 4th iteration closes the gap.
  const gf::GF2m f(0b11);
  const auto pool = default_candidates(f, {1, 1, 1});
  const auto universe = mem::single_cell_universe(16, 1, true);
  CampaignOptions opt;
  opt.n = 16;
  const SearchResult four = search_tdb(f, pool, universe, opt, 4);
  EXPECT_DOUBLE_EQ(four.coverage_by_iterations.back(), 100.0);
  EXPECT_TRUE(four.escapes.empty());
  const SearchResult three = search_tdb(f, pool, universe, opt, 3);
  EXPECT_GE(three.coverage_by_iterations.back(), 85.0);
}

TEST(Search, SchemeHasRequestedIterationCount) {
  const gf::GF2m f(0b11);
  const auto pool = default_candidates(f, {1, 1, 1});
  const auto universe = mem::single_cell_universe(8, 1, false);
  CampaignOptions opt;
  opt.n = 8;
  const SearchResult r = search_tdb(f, pool, universe, opt, 2);
  EXPECT_EQ(r.scheme.iterations.size(), 2u);
}

TEST(Search, BeatsOrMatchesSingleFixedIteration) {
  const gf::GF2m f(0b11);
  const auto pool = default_candidates(f, {1, 1, 1});
  mem::UniverseOptions uopt;
  uopt.address_decoder = false;
  uopt.bridges = false;
  uopt.coupling = false;
  const auto universe = mem::make_universe(16, 1, uopt);
  CampaignOptions opt;
  opt.n = 16;
  const SearchResult three = search_tdb(f, pool, universe, opt, 3);
  const SearchResult one = search_tdb(f, pool, universe, opt, 1);
  EXPECT_GE(three.coverage_by_iterations.back(),
            one.coverage_by_iterations.back());
}

TEST(Search, WomFieldWorks) {
  const gf::GF2m f(0b10011);
  const auto pool = default_candidates(f, {1, 2, 2});
  const auto universe = mem::single_cell_universe(12, 4, false);
  CampaignOptions opt;
  opt.n = 12;
  opt.m = 4;
  const SearchResult r = search_tdb(f, pool, universe, opt, 4);
  EXPECT_DOUBLE_EQ(r.coverage_by_iterations.back(), 100.0);
}

}  // namespace
}  // namespace prt::analysis
