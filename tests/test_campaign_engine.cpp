// Tests for the oracle-backed, parallel campaign engine
// (analysis/campaign_engine): the parallel path must be bit-identical
// to the serial reference, and early-abort must change costs only,
// never verdicts.
#include "analysis/campaign_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/prt_engine.hpp"
#include "mem/fault_universe.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis {
namespace {

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

TEST(CampaignEngine, MatchesSerialReferenceOnClassicalUniverse) {
  const mem::Addr n = 48;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  CampaignOptions opt;
  opt.n = n;
  const CampaignResult reference =
      run_campaign(universe, prt_algorithm(scheme), opt);
  for (unsigned threads : {1u, 2u, 4u}) {
    EngineOptions eng;
    eng.threads = threads;
    const CampaignResult engine =
        run_prt_campaign(universe, scheme, opt, eng);
    expect_identical(reference, engine);
  }
}

TEST(CampaignEngine, MatchesSerialReferenceOnFullVanDeGoorUniverse) {
  const mem::Addr n = 32;
  const auto universe = mem::van_de_goor_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  CampaignOptions opt;
  opt.n = n;
  const CampaignResult reference =
      run_campaign(universe, prt_algorithm(scheme), opt);
  EngineOptions eng;
  eng.threads = 3;  // uneven shards exercise the ordered merge
  const CampaignResult engine = run_prt_campaign(universe, scheme, opt, eng);
  expect_identical(reference, engine);
  // The extended scheme covers the whole model (§3 claim, extended):
  EXPECT_DOUBLE_EQ(engine.overall.percent(), 100.0);
}

TEST(CampaignEngine, ReusedEngineGivesIdenticalResultsAcrossRuns) {
  const mem::Addr n = 32;
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  EngineOptions eng;
  eng.threads = 2;
  // One engine, several runs: the lazily created worker pool and the
  // oracle are reused, and every run must match the first bit-for-bit.
  const CampaignEngine engine(core::standard_scheme_bom(n), opt, eng);
  const CampaignResult first = engine.run(universe);
  for (int round = 0; round < 3; ++round) {
    expect_identical(first, engine.run(universe));
  }
}

TEST(CampaignEngine, OracleAndNonOraclePathsAgree) {
  const mem::Addr n = 24;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::standard_scheme_bom(n);
  CampaignOptions opt;
  opt.n = n;
  EngineOptions with_oracle;
  EngineOptions without_oracle;
  without_oracle.use_oracle = false;
  expect_identical(run_prt_campaign(universe, scheme, opt, with_oracle),
                   run_prt_campaign(universe, scheme, opt, without_oracle));
}

TEST(CampaignEngine, EarlyAbortKeepsVerdictsAndCutsOps) {
  const mem::Addr n = 48;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  CampaignOptions opt;
  opt.n = n;
  EngineOptions full;
  EngineOptions abort_early;
  abort_early.early_abort = true;
  const CampaignResult complete =
      run_prt_campaign(universe, scheme, opt, full);
  const CampaignResult aborted =
      run_prt_campaign(universe, scheme, opt, abort_early);
  EXPECT_EQ(complete.overall, aborted.overall);
  EXPECT_EQ(complete.by_class, aborted.by_class);
  EXPECT_EQ(complete.escapes, aborted.escapes);
  // Most classical faults fail within the first iterations, so the
  // 18-iteration scheme skips real work.
  EXPECT_LT(aborted.ops, complete.ops);
}

TEST(CampaignEngine, OracleRunPrtMatchesPlainRunPrt) {
  const mem::Addr n = 32;
  const auto scheme = core::extended_scheme_bom(n);
  const auto oracle = core::make_prt_oracle(scheme, n);
  const auto fault = mem::Fault::cf_in({5, 0}, {6, 0});
  mem::FaultyRam plain(n, 1);
  plain.inject(fault);
  const auto expected = core::run_prt(plain, scheme);
  mem::FaultyRam reused(n, 1);
  reused.reset(fault);
  const auto actual = core::run_prt(reused, scheme, oracle);
  EXPECT_EQ(expected.pass, actual.pass);
  EXPECT_EQ(expected.misr_pass, actual.misr_pass);
  EXPECT_EQ(expected.reads, actual.reads);
  EXPECT_EQ(expected.writes, actual.writes);
  ASSERT_EQ(expected.iterations.size(), actual.iterations.size());
  for (std::size_t i = 0; i < expected.iterations.size(); ++i) {
    EXPECT_EQ(expected.iterations[i].pass, actual.iterations[i].pass);
    EXPECT_EQ(expected.iterations[i].fin, actual.iterations[i].fin);
    EXPECT_EQ(expected.iterations[i].fin_expected,
              actual.iterations[i].fin_expected);
    EXPECT_EQ(expected.iterations[i].verify_mismatches,
              actual.iterations[i].verify_mismatches);
  }
}

TEST(CampaignEngine, FaultyRamResetRestoresPristineState) {
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::saf({3, 0}, 1));
  ram.write(2, 1, 0);
  (void)ram.read(3, 0);
  ram.advance_time(1000);
  ram.reset(mem::Fault::tf({1, 0}, true));
  EXPECT_EQ(ram.faults().size(), 1u);
  EXPECT_EQ(ram.faults()[0].kind, mem::FaultKind::kTfUp);
  EXPECT_EQ(ram.total_stats().total(), 0u);
  for (mem::Addr a = 0; a < 8; ++a) EXPECT_EQ(ram.peek(a), 0u);
}

TEST(CampaignEngine, ReusedRamMatchesFreshAcrossFaultFamilies) {
  // Regression guard for the reset(fault) fast-path gates
  // (has_address_fault_ / has_retention_fault_ / last_read_): running
  // an address fault, then a retention fault, then a SOF fault on the
  // *same* reused RAM must produce the verdicts of fresh-RAM runs —
  // no family may leave state that leaks into the next fault's run.
  const mem::Addr n = 32;
  const std::vector<core::PrtScheme> schemes = {
      core::extended_scheme_bom(n),
      core::retention_scheme(n, 1, /*pause_ticks=*/64)};
  const std::vector<mem::Fault> sequence = {
      mem::Fault::af_wrong_access(3, 5),
      mem::Fault::retention({4, 0}, /*decays_to=*/1, /*delay_ticks=*/8),
      mem::Fault::sof({6, 0}),
      mem::Fault::af_multi_access(2, 9),
      mem::Fault::retention({7, 0}, /*decays_to=*/0, /*delay_ticks=*/16),
      mem::Fault::sof({1, 0})};
  for (const auto& scheme : schemes) {
    const auto oracle = core::make_prt_oracle(scheme, n);
    mem::FaultyRam reused(n, 1);
    for (const mem::Fault& fault : sequence) {
      reused.reset(fault);
      const auto got = core::run_prt(reused, scheme, oracle);
      mem::FaultyRam fresh(n, 1);
      fresh.inject(fault);
      const auto want = core::run_prt(fresh, scheme, oracle);
      EXPECT_EQ(got.pass, want.pass) << fault.describe();
      EXPECT_EQ(got.misr_pass, want.misr_pass) << fault.describe();
      EXPECT_EQ(got.reads, want.reads) << fault.describe();
      EXPECT_EQ(got.writes, want.writes) << fault.describe();
    }
  }
}

TEST(PrtAlgorithmPrefix, RejectsOutOfRangeIterationCounts) {
  const auto scheme = core::standard_scheme_bom(16);
  EXPECT_THROW((void)prt_algorithm_prefix(scheme, 0), std::invalid_argument);
  EXPECT_THROW(
      (void)prt_algorithm_prefix(scheme, scheme.iterations.size() + 1),
      std::invalid_argument);
  EXPECT_NO_THROW(
      (void)prt_algorithm_prefix(scheme, scheme.iterations.size()));
}

TEST(CampaignEngine, MalformedUniverseThrowsOnEveryPath) {
  // inject()'s std::invalid_argument contract must survive the
  // parallel fan-out (worker exceptions are rethrown on the caller,
  // not left to std::terminate) and the packed lane path.
  const mem::Addr n = 16;
  auto universe = mem::classical_universe(n);
  universe.push_back(mem::Fault::saf({n + 10, 0}, 1));  // out of range
  const auto scheme = core::standard_scheme_bom(n);
  CampaignOptions opt;
  opt.n = n;
  for (bool packed : {false, true}) {
    for (unsigned threads : {1u, 3u}) {
      EngineOptions eng;
      eng.threads = threads;
      eng.packed = packed;
      EXPECT_THROW((void)run_prt_campaign(universe, scheme, opt, eng),
                   std::invalid_argument);
    }
  }
}

TEST(ThreadPool, ParallelForChunksRethrowsWorkerExceptions) {
  util::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_chunks(
          100,
          [](unsigned, std::size_t begin, std::size_t) {
            if (begin > 0) throw std::runtime_error("boom");
          }),
      std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for_chunks(hits.size(),
                           [&](unsigned, std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               ++hits[i];
                             }
                           });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksCoverEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for_chunks(hits.size(),
                           [&](unsigned, std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               ++hits[i];
                             }
                           });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdleRunsEverything) {
  util::ThreadPool pool(2);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i) {
    pool.submit([&sum, i] { sum += i; });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, PrtThreadsEnvOverridesDefaultWorkerCount) {
  ASSERT_EQ(setenv("PRT_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(util::default_worker_count(), 3u);
  // An explicit request always wins over the environment.
  EXPECT_EQ(util::ThreadPool(2).workers(), 2u);
  // Pools sized 0 pick up the override.
  EXPECT_EQ(util::ThreadPool(0).workers(), 3u);
  // Garbage and out-of-range values fall back to the hardware default.
  ASSERT_EQ(setenv("PRT_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(util::default_worker_count(), 1u);
  ASSERT_EQ(setenv("PRT_THREADS", "0", 1), 0);
  EXPECT_GE(util::default_worker_count(), 1u);
  ASSERT_EQ(unsetenv("PRT_THREADS"), 0);
  EXPECT_GE(util::default_worker_count(), 1u);
}

}  // namespace
}  // namespace prt::analysis
