// Word-packed SIMD fault lanes.
//
// PackedFaultRam simulates up to 64 *independent* single-fault faulty
// memories in one pass: each cell stores a 64-bit word whose bit lane L
// is the cell's value in lane L's memory, and each lane carries exactly
// one injected fault.  One sweep over the array therefore evaluates up
// to 64 faults simultaneously — the SIMD unit is the ordinary 64-bit
// ALU, and every fault effect below is a handful of bitwise ops.
//
// Lane-compatible faults (lane_compatible()) are those whose behaviour
// is a pure function of bit-plane-0 state reachable from inside one
// lane: the single-cell kinds (stuck-at, transition, write-disturb, the
// read-logic kinds), the two-cell coupling kinds (CFin, CFid, CFst)
// and bridges — a lane is a whole memory, so an aggressor/victim
// *pair* fits in one lane — and the decoder faults: because each lane
// holds exactly one fault, a decoder fault's remap touches exactly one
// address (no-access drops it, wrong-access redirects it to the alias
// cell, multi-access opens both and wires reads AND), which is a
// per-lane scatter on that one cell, just like the coupling kinds.
// NPSF needs a 4-cell neighbourhood pattern and retention faults need
// the global clock — those stay on the scalar FaultyRam path
// (analysis/campaign_engine does the partitioning).
//
// Semantics are bit-exact per lane with a FaultyRam holding the same
// single fault (tests/test_packed_campaign.cpp runs the differential
// check), including the injection-time stuck-at clamp, the
// injection-time enforcement of state conditions (CFst, bridge) and the
// per-port sense-amp history of SOF (the PRT engines drive port 0
// only).  Because every lane holds exactly one fault, the scalar
// model's cascade machinery (a victim flip re-triggering other faults)
// degenerates to a single direct effect per lane.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/fault.hpp"

namespace prt::mem {

/// One bit per lane across the 64 packed memories.
using LaneWord = std::uint64_t;

/// Broadcasts one data/golden bit to every lane — the bridge between
/// scalar golden values and lane-parallel compares/writes, shared by
/// every packed replay.
[[nodiscard]] constexpr LaneWord lane_broadcast(unsigned bit) {
  return bit != 0 ? ~LaneWord{0} : LaneWord{0};
}

/// True when `fault` can ride a bit lane: a fault on bit plane 0 (the
/// packed array models a 1-bit-wide memory) whose effect never
/// references a neighbourhood pattern or the clock.  Single-cell
/// kinds, the two-cell coupling/bridge kinds and the decoder (AF)
/// kinds qualify.
[[nodiscard]] bool lane_compatible(const Fault& fault);

class PackedFaultRam {
 public:
  static constexpr unsigned kLanes = 64;

  /// A packed array of `cells` one-bit cells, all lanes zero-filled,
  /// no faults.  Throws std::invalid_argument when cells < 1.
  explicit PackedFaultRam(Addr cells);

  [[nodiscard]] Addr size() const { return size_; }
  [[nodiscard]] unsigned lanes_used() const { return lanes_used_; }
  /// Mask with one bit set per occupied lane (low lanes_used() bits).
  [[nodiscard]] LaneWord active_mask() const {
    return lanes_used_ == kLanes ? ~LaneWord{0}
                                 : (LaneWord{1} << lanes_used_) - 1;
  }

  /// Returns to the just-constructed state (all lanes zero, no faults,
  /// counters zero) without releasing storage.  Only the cells dirtied
  /// by faults pay a per-cell cost; the data array is one memset.
  void reset();

  /// Assigns `fault` to the next free lane and returns its index.
  /// State conditions (CFst, bridge) are enforced against the lane's
  /// current contents immediately, matching FaultyRam::inject.  Throws
  /// std::invalid_argument when the fault is not lane_compatible(), a
  /// referenced cell is out of range, or a two-cell fault has aggressor
  /// == victim; std::length_error when all 64 lanes are taken.
  unsigned add_fault(const Fault& fault);

  /// Reads every lane's bit of `addr` at once, applying each lane's
  /// read-logic fault.  Precondition: addr < size().  Defined inline
  /// below: the campaign replay loops issue millions of these per
  /// batch, so the fault-free-cell fast path must inline into them.
  LaneWord read(Addr addr);

  /// Writes bit lane L of `value` to cell `addr` in lane L's memory,
  /// applying each lane's write fault and firing each lane's coupling
  /// effects (this cell as aggressor, victim or bridge endpoint).
  /// Precondition: addr < size().  Defined inline below; batches with
  /// only single-cell faults skip the two-cell fire step entirely
  /// (has_two_cell_).
  void write(Addr addr, LaneWord value);

  /// Idle time: no lane-compatible fault is clock-dependent, so this
  /// only keeps the operation counters honest (no-op otherwise).
  void advance_time(std::uint64_t ticks) { (void)ticks; }

  /// Packed operations issued since the last reset().  Each packed
  /// read/write counts once; a scalar campaign issues the same count
  /// *per fault*, so the per-fault op cost is reads() + writes().
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t ops() const { return reads_ + writes_; }

  /// Direct state access for tests (bypasses faults and counters).
  [[nodiscard]] LaneWord peek(Addr addr) const { return data_[addr]; }

 private:
  /// Per-kind lane masks for one faulty cell; a lane's bit is set in
  /// the masks of at most the two cells its single fault references.
  struct CellFaults {
    // Single-cell kinds (this cell is the victim).
    LaneWord saf0 = 0, saf1 = 0;
    LaneWord tf_up = 0, tf_down = 0, wdf = 0;
    LaneWord rdf = 0, drdf = 0, irf = 0, sof = 0;
    // Two-cell kinds.  cfin/cfid_*/cfst_agg are registered on the
    // *aggressor* cell, cfst_vic on the *victim* cell (its writes must
    // re-enforce the condition), bridge on *both* endpoints.
    LaneWord cfin = 0;
    LaneWord cfid_up = 0, cfid_down = 0;
    LaneWord cfst_agg = 0, cfst_vic = 0;
    LaneWord bridge = 0;
    // Decoder kinds, registered on the *faulty address* (accesses to
    // any other address behave normally — one fault per lane).  The
    // wrong/multi alias cell lives in lane_victim_.
    LaneWord af_no = 0;      // address opens no cell: reads 0, writes lost
    LaneWord af_wrong = 0;   // address opens the alias cell instead
    LaneWord af_multi = 0;   // address opens its own cell and the alias

    [[nodiscard]] LaneWord coupling_any() const {
      return cfin | cfid_up | cfid_down | cfst_agg | cfst_vic | bridge;
    }
  };

  CellFaults& slot_for(Addr cell);

  /// Fires the two-cell effects of a write to `addr` that landed
  /// `now` over `old` (per-lane scatter over the few coupled lanes).
  void apply_coupling(Addr addr, LaneWord old, LaneWord now,
                      const CellFaults& f);

  /// Patches a read of `addr` for the decoder lanes registered on it:
  /// wrong-access lanes read their alias cell, multi-access lanes read
  /// the wired-AND of both opened cells.
  [[nodiscard]] LaneWord apply_af_read(LaneWord value, const CellFaults& f);

  /// Lands a write of `value` to `addr` in the alias cells of the
  /// wrong/multi decoder lanes registered on `addr` (the write to the
  /// addressed cell itself was already suppressed for wrong-access
  /// lanes by the caller).
  void apply_af_write(LaneWord value, const CellFaults& f);

  Addr size_;
  std::vector<LaneWord> data_;
  /// Cell -> index into slots_, -1 for fault-free cells — the hot path
  /// pays one branch per access and only faulty cells (<= 128 of them,
  /// two per two-cell lane) touch a CellFaults record.
  std::vector<std::int16_t> slot_of_cell_;
  std::vector<CellFaults> slots_;
  std::vector<Addr> dirty_cells_;
  /// Per-lane second-cell metadata, only read for lanes registered in
  /// a coupling/bridge/decoder mask (the AF kinds keep their alias
  /// cell in lane_victim_).
  std::array<Addr, kLanes> lane_victim_{};
  std::array<Addr, kLanes> lane_aggressor_{};
  /// Lanes whose CFid/CFst forces the victim to 1 (clear = forces 0).
  LaneWord forced1_ = 0;
  /// CFst lanes triggered while the aggressor holds 1 (clear = 0).
  LaneWord cfst_state1_ = 0;
  /// Bridge lanes with wired-OR semantics (clear = wired-AND).
  LaneWord bridge_or_ = 0;
  unsigned lanes_used_ = 0;
  /// True once any lane holds a two-cell (coupling/bridge) fault —
  /// single-cell-only batches skip the coupling fire step on every
  /// write without even loading the per-cell coupling masks.
  bool has_two_cell_ = false;
  /// True once any lane holds a decoder fault — batches without one
  /// skip the remap patches on every access.
  bool has_af_ = false;
  LaneWord last_read_ = 0;  // packed sense-amp history (port 0)
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

inline LaneWord PackedFaultRam::read(Addr addr) {
  assert(addr < size_);
  ++reads_;
  LaneWord value = data_[addr];
  const std::int16_t slot = slot_of_cell_[addr];
  if (slot >= 0) {
    const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
    // RDF: the cell flips and the sense amp sees the flipped value.
    value ^= f.rdf;
    // DRDF: the correct value is returned, the cell flips behind the
    // reader's back.
    data_[addr] = value ^ f.drdf;
    // IRF: inverted data on the bus, cell untouched.
    value ^= f.irf;
    // SOF: the open cell echoes the sense amp's previous read.
    value = (value & ~f.sof) | (last_read_ & f.sof);
    // Decoder lanes: a no-access read floats the bus (reads zeros), a
    // wrong/multi access reads the alias cell (wired-AND for multi).
    // Pure bus-level patches — the addressed cell keeps its state.
    if (has_af_) {
      value &= ~f.af_no;
      if ((f.af_wrong | f.af_multi) != 0) value = apply_af_read(value, f);
    }
    // Coupling lanes are untouched by reads: their lane has no
    // read-logic fault, and a read never changes the bits a condition
    // watches (FaultyRam likewise only enforces conditions on writes).
  }
  last_read_ = value;
  return value;
}

inline void PackedFaultRam::write(Addr addr, LaneWord value) {
  assert(addr < size_);
  ++writes_;
  const LaneWord old = data_[addr];
  LaneWord nb = value;
  const std::int16_t slot = slot_of_cell_[addr];
  if (slot < 0) {
    data_[addr] = nb;
    return;
  }
  // A lane holds exactly one fault, so the per-kind masks are
  // lane-disjoint and the sequential updates below never interact
  // across kinds.
  const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
  nb ^= f.wdf & ~(old ^ nb);   // WDF: non-transition write disturbs
  nb &= ~(f.tf_up & ~old);     // TF up: 0 -> 1 writes fail
  nb |= f.tf_down & old;       // TF down: 1 -> 0 writes fail
  nb = (nb & ~f.saf0) | f.saf1;
  if (has_af_) {
    // Decoder lanes: a no-access or wrong-access write never reaches
    // the addressed cell; wrong/multi lanes land the raw value in
    // their alias cell instead (no other fault lives in those lanes).
    const LaneWord suppressed = f.af_no | f.af_wrong;
    nb = (nb & ~suppressed) | (old & suppressed);
    data_[addr] = nb;
    if ((f.af_wrong | f.af_multi) != 0) apply_af_write(value, f);
  } else {
    data_[addr] = nb;
  }
  if (has_two_cell_ && f.coupling_any() != 0) apply_coupling(addr, old, nb, f);
}

}  // namespace prt::mem
