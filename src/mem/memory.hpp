// Abstract memory-under-test interface.
//
// PRT and March engines drive this interface only, so the same test
// code runs against the golden SimRam and against a FaultyRam wrapper
// with injected defects.  Ports are explicit because the multi-port
// schemes of the paper (Fig. 2, QuadPort) issue simultaneous accesses.
#pragma once

#include <cstdint>

namespace prt::mem {

/// Cell address within the array.
using Addr = std::uint32_t;
/// Cell content; only the low `width()` bits are meaningful.
using Word = std::uint32_t;

/// Per-port access counters, the raw material for the paper's time
/// complexity measurements (3n single-port vs 2n dual-port).
struct AccessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  [[nodiscard]] std::uint64_t total() const { return reads + writes; }

  AccessStats& operator+=(const AccessStats& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

class Memory {
 public:
  virtual ~Memory() = default;

  /// Number of addressable cells n.
  [[nodiscard]] virtual Addr size() const = 0;
  /// Cell width m in bits (1 for a BOM, >1 for a WOM).
  [[nodiscard]] virtual unsigned width() const = 0;
  /// Number of independent ports (1, 2, or 4).
  [[nodiscard]] virtual unsigned ports() const = 0;

  /// Reads cell `addr` through `port`.  Precondition: addr < size(),
  /// port < ports().
  virtual Word read(Addr addr, unsigned port) = 0;
  /// Writes the low width() bits of `value` to cell `addr` through
  /// `port`.
  virtual void write(Addr addr, Word value, unsigned port) = 0;

  /// Single-port convenience overloads.
  Word read(Addr addr) { return read(addr, 0); }
  void write(Addr addr, Word value) { write(addr, value, 0); }

  /// Advances virtual time by `ticks` operation-equivalents without
  /// touching any cell — models idle/pause phases between test passes
  /// (data-retention faults decay against this clock; the golden model
  /// ignores it).
  virtual void advance_time(std::uint64_t ticks) { (void)ticks; }

  /// Access counters accumulated since the last reset_stats().
  [[nodiscard]] virtual AccessStats stats(unsigned port) const = 0;
  [[nodiscard]] AccessStats total_stats() const {
    AccessStats acc;
    for (unsigned p = 0; p < ports(); ++p) acc += stats(p);
    return acc;
  }
  virtual void reset_stats() = 0;

  /// Mask of meaningful word bits.
  [[nodiscard]] Word word_mask() const {
    return width() >= 32 ? ~Word{0}
                         : static_cast<Word>((Word{1} << width()) - 1);
  }
};

}  // namespace prt::mem
