// Deterministic infrastructure fault injection for tests.
//
// This codebase simulates faults in memories; FailPoint injects faults
// into the *infrastructure itself* — the oracle cache builds, the
// worker pool tasks, the campaign service's checkpoint writes — so the
// recovery paths around them (entry eviction, bounded shard retry,
// partial-result statuses, checkpoint resume) are exercised by
// deterministic tests instead of trusted.  The shape follows the MINIX
// faultinjector / ARCHIE controller idea referenced in ROADMAP.md:
// named injection points compiled into the production code, armed by
// name from a test with an exact skip/fire schedule.
//
// Instrumented code calls `FailPoint::hit("name")` at the site; the
// disarmed fast path is one relaxed atomic load (no lock, no lookup),
// so the hooks stay compiled in everywhere.  A test arms a point:
//
//   util::FailPoint::arm("oracle_cache.build", {.skip = 2});
//   // third hit of that site throws util::FailPointError
//
// Actions: kThrow (throw FailPointError at the site), kDelay (sleep —
// for widening cancellation races deterministically, and for driving
// the campaign service's stall watchdog), and kPartialWrite (truncate
// a write at N bytes, then fail — for torn-checkpoint tests; only
// meaningful at sites that call poll() and implement the truncation).
// A config fires `fires` times after skipping `skip` hits (fires < 0 =
// every hit after the skips).  Arming is process-global and
// thread-safe; tests disarm in teardown (FailPointScope).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace prt::util {

/// The exception a kThrow fail point raises — distinct from any real
/// error type so tests can assert the injected failure (and only it)
/// travelled the recovery path under test.
struct FailPointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FailPoint {
 public:
  enum class Action { kThrow, kDelay, kPartialWrite };

  struct Config {
    Action action = Action::kThrow;
    /// Hits to let pass before the point starts firing.
    int skip = 0;
    /// Number of hits that fire once past `skip`; negative = unbounded.
    int fires = 1;
    /// Sleep length for kDelay.
    std::chrono::milliseconds delay{0};
    /// Truncation point (bytes kept) for kPartialWrite.
    std::size_t bytes = 0;
  };

  /// Arms (or re-arms, resetting the hit count of) the named point.
  static void arm(const std::string& name, const Config& config);

  /// Arms a point from a compact spec string — the form scripts and
  /// env-driven harnesses use (`PRT_FAILPOINTS`-style wiring):
  ///
  ///   <name>=<action>[:skip=<n>][:fires=<m>]
  ///
  /// where <action> is `throw`, `delay(<ms>)` or `partial_write(<n>)`
  /// (truncate the write to n bytes then fail); `fires=-1` (any
  /// negative) fires on every hit past the skips.  Modifiers may
  /// appear in either order, at most once each.  Throws
  /// std::invalid_argument on an empty name, a missing '=', an
  /// unknown action or modifier, or a malformed count — the spec is
  /// test configuration, so a typo must fail loudly, not arm nothing.
  static void arm_spec(const std::string& spec);

  static void disarm(const std::string& name);
  static void disarm_all();

  /// Total hits observed at the named point since it was armed.
  [[nodiscard]] static std::uint64_t hits(const std::string& name);

  /// The instrumentation call.  No-op (one relaxed atomic load) unless
  /// some point is armed; throws FailPointError when the named point's
  /// schedule says this hit fires a kThrow.  A kPartialWrite config at
  /// a plain hit() site degrades to kThrow — only poll() sites can
  /// honour the truncation.
  static void hit(const char* name);

  /// Rich-action variant of hit(): advances the named point's schedule
  /// exactly like hit() but returns the firing Config to the caller
  /// instead of acting on it (nullopt when disarmed or not scheduled
  /// to fire).  Sites with site-specific failure modes — the
  /// checkpoint writer's torn-write simulation — use this to implement
  /// actions hit() cannot, and remain responsible for throwing
  /// FailPointError themselves.
  [[nodiscard]] static std::optional<Config> poll(const char* name);
};

/// Test scaffolding: disarms every fail point on scope exit so one
/// failed test cannot leak armed points into the next.
struct FailPointScope {
  FailPointScope() = default;
  FailPointScope(const FailPointScope&) = delete;
  FailPointScope& operator=(const FailPointScope&) = delete;
  ~FailPointScope() { FailPoint::disarm_all(); }
};

}  // namespace prt::util
