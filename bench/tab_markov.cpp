// Reproduces the §3 analysis claim: "Applying Markov chain analysis it
// was shown that pi-test iteration has a high resolution for most
// memory faults."  The analytic per-iteration detection probabilities
// (analysis/markov, derived under random-TDB / random-trajectory
// assumptions) are compared against an empirical campaign that runs
// randomized pi-iterations — the model and the simulator must agree in
// shape: near-certain static faults, 1/4-rate transition conditions,
// O(1/n) windows for idempotent/inversion coupling.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "analysis/fault_sim.hpp"
#include "analysis/markov.hpp"
#include "mem/fault_universe.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;
using analysis::CampaignOptions;

constexpr mem::Addr kN = 64;
constexpr unsigned kTrials = 8;

/// One randomized pi-iteration scheme with `iters` iterations.
core::PrtScheme random_scheme(unsigned iters, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  core::PrtScheme s;
  s.field_modulus = 0b11;
  for (unsigned i = 0; i < iters; ++i) {
    core::SchemeIteration it;
    it.g = {1, 1, 1};
    it.config.init = {static_cast<gf::Elem>(rng.below(2)),
                      static_cast<gf::Elem>(rng.below(2))};
    if (it.config.init[0] == 0 && it.config.init[1] == 0) {
      it.config.init[1] = 1;
    }
    it.config.trajectory = core::TrajectoryKind::kRandom;
    it.config.seed = rng();
    s.iterations.push_back(std::move(it));
  }
  return s;
}

std::vector<mem::Fault> markov_universe() {
  std::vector<mem::Fault> u = mem::single_cell_universe(kN, 1, true);
  const auto pairs = mem::select_pairs(kN, 256, /*seed=*/0xbeef);
  auto cf = mem::coupling_universe(pairs, 0);
  u.insert(u.end(), cf.begin(), cf.end());
  for (std::size_t i = 0; i + 1 < pairs.size(); i += 4) {
    u.push_back(mem::Fault::bridge({pairs[i].first, 0},
                                   {pairs[i].second, 0}, true));
  }
  for (mem::Addr a = 0; a < kN; ++a) {
    u.push_back(mem::Fault::af_wrong_access(a, a + 1 < kN ? a + 1 : kN - 2));
  }
  return u;
}

void print_table() {
  std::printf(
      "== §3 Markov model vs empirical detection (n = %u, %u random "
      "trials) ==\n",
      kN, kTrials);
  const auto universe = markov_universe();
  CampaignOptions opt;
  opt.n = kN;
  analysis::MarkovParams params;
  params.n = kN;
  params.m = 1;

  Table t({"fault class", "model p1", "emp p1", "model P3", "emp P3"});
  t.set_align(0, Align::kLeft);

  // Empirical per-class detection frequency for 1 and 3 iterations.
  std::map<mem::FaultClass, std::pair<double, double>> empirical;
  for (unsigned iters : {1u, 3u}) {
    std::map<mem::FaultClass, std::pair<std::uint64_t, std::uint64_t>> acc;
    for (unsigned trial = 0; trial < kTrials; ++trial) {
      const auto scheme = random_scheme(iters, 1000 + trial);
      const auto r = analysis::run_campaign(
          universe, analysis::prt_algorithm(scheme), opt);
      for (const auto& [cls, cov] : r.by_class) {
        acc[cls].first += cov.detected;
        acc[cls].second += cov.total;
      }
    }
    for (const auto& [cls, pair] : acc) {
      const double rate = static_cast<double>(pair.first) /
                          static_cast<double>(pair.second);
      if (iters == 1) {
        empirical[cls].first = rate;
      } else {
        empirical[cls].second = rate;
      }
    }
  }

  for (const auto& [cls, rates] : empirical) {
    t.add(to_string(cls),
          format_fixed(analysis::per_iteration_detection(cls, params), 4),
          format_fixed(rates.first, 4),
          format_fixed(analysis::cumulative_detection(cls, params, 3), 4),
          format_fixed(rates.second, 4));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "model assumptions: independent fair-coin backgrounds and fresh\n"
      "random trajectories per iteration; the designed (non-random) TDB\n"
      "of tab_fault_coverage strictly dominates these rates.\n\n");
}

void BM_RandomizedCampaign(benchmark::State& state) {
  const auto universe = markov_universe();
  CampaignOptions opt;
  opt.n = kN;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto scheme = random_scheme(3, seed++);
    benchmark::DoNotOptimize(analysis::run_campaign(
        universe, analysis::prt_algorithm(scheme), opt));
  }
  state.SetItemsProcessed(state.iterations() * universe.size());
}
BENCHMARK(BM_RandomizedCampaign);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
