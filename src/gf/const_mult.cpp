#include "gf/const_mult.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace prt::gf {

unsigned XorNetwork::depth() const {
  std::vector<unsigned> level(inputs + gates.size(), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto& g = gates[i];
    const unsigned la = g.a == kGroundSignal ? 0 : level[g.a];
    const unsigned lb = g.b == kGroundSignal ? 0 : level[g.b];
    level[inputs + i] = std::max(la, lb) + 1;
  }
  unsigned d = 0;
  for (std::uint32_t s : outputs) {
    if (s != kGroundSignal) d = std::max(d, level[s]);
  }
  return d;
}

std::uint64_t XorNetwork::eval(std::uint64_t in) const {
  std::vector<std::uint32_t> value(inputs + gates.size(), 0);
  for (std::uint32_t i = 0; i < inputs; ++i) {
    value[i] = static_cast<std::uint32_t>((in >> i) & 1U);
  }
  auto sig = [&](std::uint32_t s) -> std::uint32_t {
    return s == kGroundSignal ? 0U : value[s];
  };
  for (std::size_t i = 0; i < gates.size(); ++i) {
    value[inputs + i] = sig(gates[i].a) ^ sig(gates[i].b);
  }
  std::uint64_t out = 0;
  for (std::size_t r = 0; r < outputs.size(); ++r) {
    out |= std::uint64_t{sig(outputs[r])} << r;
  }
  return out;
}

MatrixGF2 multiplier_matrix(const GF2m& field, Elem c) {
  const unsigned m = field.m();
  MatrixGF2 mat(m, m);
  for (unsigned j = 0; j < m; ++j) {
    const Elem col = field.mul(c, Elem{1} << j);
    for (unsigned r = 0; r < m; ++r) {
      if ((col >> r) & 1U) mat.set(r, j, true);
    }
  }
  return mat;
}

namespace {

/// XORs the given signals together with a balanced tree, appending gates
/// to `net`; returns the signal holding the result (ground if empty).
std::uint32_t build_tree(XorNetwork& net, std::vector<std::uint32_t> sigs) {
  if (sigs.empty()) return XorNetwork::kGroundSignal;
  while (sigs.size() > 1) {
    std::vector<std::uint32_t> next;
    next.reserve((sigs.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < sigs.size(); i += 2) {
      net.gates.push_back({sigs[i], sigs[i + 1]});
      next.push_back(net.inputs + static_cast<std::uint32_t>(
                                      net.gates.size() - 1));
    }
    if (sigs.size() % 2 == 1) next.push_back(sigs.back());
    sigs = std::move(next);
  }
  return sigs[0];
}

}  // namespace

XorNetwork synthesize_naive(const MatrixGF2& matrix) {
  XorNetwork net;
  net.inputs = static_cast<std::uint32_t>(matrix.cols());
  net.outputs.resize(matrix.rows(), XorNetwork::kGroundSignal);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    std::vector<std::uint32_t> sigs;
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      if (matrix.get(r, c)) sigs.push_back(static_cast<std::uint32_t>(c));
    }
    net.outputs[r] = build_tree(net, std::move(sigs));
  }
  return net;
}

XorNetwork synthesize_cse(const MatrixGF2& matrix) {
  XorNetwork net;
  net.inputs = static_cast<std::uint32_t>(matrix.cols());
  net.outputs.resize(matrix.rows(), XorNetwork::kGroundSignal);

  // Each row is the set of signals still to be XORed for that output.
  std::vector<std::vector<std::uint32_t>> rows(matrix.rows());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      if (matrix.get(r, c)) rows[r].push_back(static_cast<std::uint32_t>(c));
    }
  }

  // Paar's greedy CSE: while some signal pair appears in >= 2 rows,
  // materialize the most frequent pair as a gate and substitute it.
  while (true) {
    std::uint32_t best_a = 0;
    std::uint32_t best_b = 0;
    int best_count = 1;
    for (const auto& row : rows) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        for (std::size_t j = i + 1; j < row.size(); ++j) {
          const std::uint32_t a = row[i];
          const std::uint32_t b = row[j];
          int count = 0;
          for (const auto& other : rows) {
            const bool has_a =
                std::find(other.begin(), other.end(), a) != other.end();
            const bool has_b =
                std::find(other.begin(), other.end(), b) != other.end();
            if (has_a && has_b) ++count;
          }
          if (count > best_count) {
            best_count = count;
            best_a = a;
            best_b = b;
          }
        }
      }
    }
    if (best_count < 2) break;
    net.gates.push_back({best_a, best_b});
    const std::uint32_t fresh =
        net.inputs + static_cast<std::uint32_t>(net.gates.size() - 1);
    for (auto& row : rows) {
      auto ia = std::find(row.begin(), row.end(), best_a);
      auto ib = std::find(row.begin(), row.end(), best_b);
      if (ia != row.end() && ib != row.end()) {
        // Remove the larger iterator first to keep the other valid.
        if (ia < ib) std::swap(ia, ib);
        row.erase(ia);
        row.erase(ib);
        row.push_back(fresh);
      }
    }
  }

  for (std::size_t r = 0; r < rows.size(); ++r) {
    net.outputs[r] = build_tree(net, std::move(rows[r]));
  }
  return net;
}

FeedbackCost feedback_cost(const GF2m& field, const std::vector<Elem>& coeffs) {
  // coeffs holds g0..gk; g0 is the output tap of the generator
  // polynomial, not part of the feedback sum w = sum_{j>=1} g_j * r_j.
  FeedbackCost cost;
  std::size_t active_terms = 0;
  for (std::size_t j = 1; j < coeffs.size(); ++j) {
    const Elem c = coeffs[j];
    if (c == 0) continue;
    ++active_terms;
    if (c == 1) continue;  // identity needs no gates
    const XorNetwork net = synthesize_cse(multiplier_matrix(field, c));
    cost.multiplier_gates += net.gate_count();
  }
  if (active_terms > 1) {
    cost.adder_gates = (active_terms - 1) * field.m();
  }
  return cost;
}

}  // namespace prt::gf
