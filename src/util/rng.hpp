// Deterministic pseudo-random number generation for reproducible
// experiments.  xoshiro256** (Blackman & Vigna) — fast, high quality,
// and fully specified here so results do not depend on the standard
// library implementation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace prt {

/// xoshiro256** 1.0 generator.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via splitmix64,
  /// which guarantees a non-zero state for every seed.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  constexpr std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle of [first, last) using the supplied generator.
template <typename It>
void shuffle(It first, It last, Xoshiro256& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    auto tmp = first[i - 1];
    first[i - 1] = first[j];
    first[j] = tmp;
  }
}

}  // namespace prt
