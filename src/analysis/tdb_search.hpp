// Greedy TDB (test data background) designer.
//
// §3 lists three controllable factors — LFSR structure, initial values
// and trajectory.  This module searches that space for a scheme of S
// iterations maximizing fault coverage on a given universe, by greedy
// forward selection: each added iteration maximizes the number of
// *additional* faults detected.  It both reconstructs the paper's
// "specific TDB" result (3 iterations reaching full coverage of the
// targeted universe) and powers the bist_designer example.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "core/prt_engine.hpp"

namespace prt::analysis {

/// One candidate iteration (structure + TDB).
using Candidate = core::SchemeIteration;

/// The default candidate pool for degree-2 generators over the field:
/// the two-term g = 1+x^2 with solid/checkerboard seeds and the given
/// primitive g with phase seeds, each in ascending and descending
/// trajectories.  Candidates may be selected repeatedly (a repeated
/// solid pass is how write-disturb faults get activated).
[[nodiscard]] std::vector<Candidate> default_candidates(
    const gf::GF2m& field, std::vector<gf::Elem> primitive_g);

struct SearchResult {
  core::PrtScheme scheme;
  /// Coverage (overall percent) after 1, 2, ..., S iterations.
  std::vector<double> coverage_by_iterations;
  /// Escapes remaining after the full scheme (universe indices).
  std::vector<std::size_t> escapes;
};

/// Greedy forward selection of `iterations` scheme steps from the
/// candidate pool, evaluated against `universe` on an (n, m) memory.
[[nodiscard]] SearchResult search_tdb(
    const gf::GF2m& field, const std::vector<Candidate>& pool,
    std::span<const mem::Fault> universe, const CampaignOptions& opt,
    unsigned iterations);

}  // namespace prt::analysis
