#include "analysis/tdb_search.hpp"

#include <cassert>

namespace prt::analysis {

namespace {

Candidate make_candidate(std::vector<gf::Elem> g, std::vector<gf::Elem> init,
                         core::TrajectoryKind traj) {
  Candidate c;
  c.g = std::move(g);
  c.config.init = std::move(init);
  c.config.trajectory = traj;
  return c;
}

/// Per-fault detection bitmap of a (partial) scheme, evaluated by true
/// sequential campaign — iteration order matters for transition and
/// disturb faults, so candidates are always scored in context.
std::vector<bool> detection_map(const core::PrtScheme& scheme,
                                std::span<const mem::Fault> universe,
                                const CampaignOptions& opt) {
  const TestAlgorithm algo = prt_algorithm(scheme);
  std::vector<bool> detected(universe.size(), false);
  mem::FaultyRam ram(opt.n, opt.m, opt.ports);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    ram.reset(universe[i]);
    detected[i] = algo(ram);
  }
  return detected;
}

std::uint64_t count(const std::vector<bool>& v) {
  std::uint64_t c = 0;
  for (bool b : v) c += b ? 1 : 0;
  return c;
}

}  // namespace

std::vector<Candidate> default_candidates(const gf::GF2m& field,
                                          std::vector<gf::Elem> primitive_g) {
  const gf::Elem mask = field.size() - 1;
  const std::vector<std::vector<gf::Elem>> generators{
      {1, 0, 1},  // two-term: solid / checkerboard backgrounds
      primitive_g,
  };
  std::vector<Candidate> pool;
  for (const auto& g : generators) {
    // Solid and striped seeds for the two-term generator; phase seeds
    // for the maximal-length one.  (0,0) is included deliberately: a
    // solid-0 pass activates write-disturb faults and provides the
    // "previous value" for down-transitions.
    const std::vector<std::vector<gf::Elem>> seeds =
        g == generators[0]
            ? std::vector<std::vector<gf::Elem>>{{0, mask},
                                                 {mask, 0},
                                                 {mask, mask},
                                                 {0, 0}}
            : std::vector<std::vector<gf::Elem>>{{0, 1}, {1, 0}, {1, 1}};
    for (const auto& seed : seeds) {
      for (auto traj : {core::TrajectoryKind::kAscending,
                        core::TrajectoryKind::kDescending}) {
        pool.push_back(make_candidate(g, seed, traj));
      }
    }
  }
  return pool;
}

SearchResult search_tdb(const gf::GF2m& field,
                        const std::vector<Candidate>& pool,
                        std::span<const mem::Fault> universe,
                        const CampaignOptions& opt, unsigned iterations) {
  assert(!pool.empty() && iterations >= 1);

  SearchResult result;
  result.scheme.field_modulus = field.modulus();
  std::vector<bool> covered(universe.size(), false);

  for (unsigned step = 0; step < iterations; ++step) {
    std::size_t best = pool.size();
    std::uint64_t best_total = 0;
    std::vector<bool> best_map;
    for (std::size_t c = 0; c < pool.size(); ++c) {
      core::PrtScheme trial = result.scheme;
      trial.iterations.push_back(pool[c]);
      std::vector<bool> map = detection_map(trial, universe, opt);
      const std::uint64_t total = count(map);
      if (best == pool.size() || total > best_total) {
        best = c;
        best_total = total;
        best_map = std::move(map);
      }
    }
    result.scheme.iterations.push_back(pool[best]);
    covered = std::move(best_map);
    result.coverage_by_iterations.push_back(
        universe.empty() ? 100.0
                         : 100.0 * static_cast<double>(best_total) /
                               static_cast<double>(universe.size()));
  }

  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (!covered[i]) result.escapes.push_back(i);
  }
  return result;
}

}  // namespace prt::analysis
