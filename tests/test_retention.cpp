// Tests for data-retention faults (mem fault model kDrf) and the
// pause-aware pi-iteration that detects them — the write/pause/verify
// pattern classic retention testing requires.
#include <gtest/gtest.h>

#include "core/pi_iteration.hpp"
#include "core/prt_engine.hpp"
#include "march/march_library.hpp"
#include "march/march_runner.hpp"
#include "mem/fault_injector.hpp"

namespace prt {
namespace {

TEST(Retention, CellDecaysAfterDelay) {
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::retention({3, 0}, /*decays_to=*/0,
                                   /*delay_ticks=*/100));
  ram.write(3, 1, 0);
  EXPECT_EQ(ram.read(3, 0), 1u);  // fresh: still 1
  ram.advance_time(99);
  EXPECT_EQ(ram.read(3, 0), 0u);  // decayed
  EXPECT_EQ(ram.peek(3), 0u);     // decay is persistent
}

TEST(Retention, WriteRefreshesTheCharge) {
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::retention({3, 0}, 0, 100));
  ram.write(3, 1, 0);
  ram.advance_time(80);
  ram.write(3, 1, 0);  // refresh
  ram.advance_time(80);
  EXPECT_EQ(ram.read(3, 0), 1u);  // each interval below the delay
  ram.advance_time(200);
  EXPECT_EQ(ram.read(3, 0), 0u);
}

TEST(Retention, DecayToOne) {
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::retention({5, 0}, /*decays_to=*/1, 50));
  ram.write(5, 0, 0);
  ram.advance_time(60);
  EXPECT_EQ(ram.read(5, 0), 1u);
}

TEST(Retention, HoldingTheDecayValueIsUnaffected) {
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::retention({5, 0}, 0, 50));
  ram.write(5, 0, 0);
  ram.advance_time(500);
  EXPECT_EQ(ram.read(5, 0), 0u);
}

TEST(Retention, OperationsTickTheClock) {
  // Every read/write counts one tick; enough traffic alone can exceed
  // the delay without any explicit pause.
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::retention({0, 0}, 0, 10));
  ram.write(0, 1, 0);
  for (int i = 0; i < 12; ++i) ram.read(7, 0);
  EXPECT_EQ(ram.read(0, 0), 0u);
}

TEST(Retention, OnlyTheFaultyBitDecays) {
  mem::FaultyRam ram(8, 4);
  ram.inject(mem::Fault::retention({2, 1}, 0, 20));
  ram.write(2, 0xF, 0);
  ram.advance_time(40);
  EXPECT_EQ(ram.read(2, 0), 0xDu);  // bit 1 dropped
}

TEST(Retention, PiIterationWithoutPauseEscapes) {
  // The sweep reads every cell ~2 ops after writing it: a realistic
  // retention delay never trips inside a pause-less iteration.
  mem::FaultyRam ram(32, 1);
  ram.inject(mem::Fault::retention({10, 0}, 0, 1000));
  core::PiTester tester(gf::GF2m(0b11), {1, 1, 1});
  core::PiConfig cfg;
  cfg.init = {1, 1};
  cfg.verify_pass = true;  // even with the verify pass, no pause
  const core::PiResult r = tester.run(ram, cfg);
  EXPECT_TRUE(r.pass);
}

TEST(Retention, PauseBeforeVerifyDetects) {
  mem::FaultyRam ram(32, 1);
  // Cell 10 expects pattern value 1 (10 mod 3 = 1 in the 1,1,0
  // pattern); decay to 0 is observable.
  ram.inject(mem::Fault::retention({10, 0}, 0, 1000));
  core::PiTester tester(gf::GF2m(0b11), {1, 1, 1});
  core::PiConfig cfg;
  cfg.init = {1, 1};
  cfg.verify_pass = true;
  cfg.pause_ticks = 5000;
  const core::PiResult r = tester.run(ram, cfg);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.verify_mismatches, 0u);
}

TEST(Retention, PauseSweepOverEveryCell) {
  // Both decay polarities, every cell: the paused verify iteration
  // pair (solid-1 then solid-0 backgrounds) catches all of them.
  core::PiTester tester(gf::GF2m(0b11), {1, 0, 1});
  for (mem::Addr cell = 0; cell < 16; ++cell) {
    for (unsigned decays_to : {0u, 1u}) {
      mem::FaultyRam ram(16, 1);
      ram.inject(mem::Fault::retention({cell, 0}, decays_to, 500));
      bool detected = false;
      for (gf::Elem background : {1u, 0u}) {
        core::PiConfig cfg;
        cfg.init = {background, background};
        cfg.verify_pass = true;
        cfg.pause_ticks = 1000;
        detected |= !tester.run(ram, cfg).pass;
      }
      EXPECT_TRUE(detected) << "cell " << cell << " to " << decays_to;
    }
  }
}

TEST(Retention, RetentionSchemeCoversWholeUniverse) {
  // The packaged scheme: every cell, both decay polarities, BOM + WOM.
  for (unsigned m : {1u, 4u}) {
    const core::PrtScheme scheme = core::retention_scheme(16, m, 1000);
    for (mem::Addr cell = 0; cell < 16; ++cell) {
      for (unsigned decays_to : {0u, 1u}) {
        mem::FaultyRam ram(16, m);
        ram.inject(mem::Fault::retention({cell, m - 1}, decays_to, 500));
        EXPECT_TRUE(core::run_prt(ram, scheme).detected())
            << "m " << m << " cell " << cell << " to " << decays_to;
      }
    }
  }
}

TEST(Retention, RetentionSchemeNoFalsePositives) {
  mem::SimRam ram(64, 4);
  EXPECT_FALSE(
      core::run_prt(ram, core::retention_scheme(64, 4, 10'000)).detected());
}

TEST(Retention, MarchGDelayElementsDetectDrf) {
  mem::FaultyRam ram(16, 1);
  ram.inject(mem::Fault::retention({7, 0}, 0, 50'000));
  const auto r =
      march::run_march(march::march_g(), ram, 0, /*delay_ticks=*/100'000);
  EXPECT_TRUE(r.fail);
}

TEST(Retention, MarchGWithoutEnoughDelayMisses) {
  mem::FaultyRam ram(16, 1);
  ram.inject(mem::Fault::retention({7, 0}, 0, 50'000));
  const auto r =
      march::run_march(march::march_g(), ram, 0, /*delay_ticks=*/10);
  EXPECT_FALSE(r.fail);
}

TEST(Retention, GoldenMemoryIgnoresTime) {
  mem::SimRam ram(4, 1);
  ram.write(0, 1, 0);
  ram.advance_time(1U << 20);
  EXPECT_EQ(ram.read(0, 0), 1u);
}

TEST(Retention, DescribeMentionsDelay) {
  const mem::Fault f = mem::Fault::retention({1, 0}, 0, 42);
  const std::string d = f.describe();
  EXPECT_NE(d.find("DRF"), std::string::npos);
  EXPECT_NE(d.find("42"), std::string::npos);
}

}  // namespace
}  // namespace prt
