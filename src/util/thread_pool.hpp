// Small fixed-size worker pool for fan-out/fan-in workloads.
//
// The fault-simulation campaigns (analysis/campaign_engine) shard a
// fault universe over a hardware-concurrency-sized pool and merge the
// per-worker partial results in shard order, so parallel output is
// bit-identical to the serial path.  The pool is deliberately minimal:
// fixed worker count, a mutex-guarded task queue, and two blocking
// fan-out helpers — `parallel_for_chunks` (N items as W contiguous
// chunks, one per worker) and `parallel_for_batches` (N items as
// fixed-size batches idle workers *steal* from each other's home
// ranges, for workloads whose per-item cost varies enough that a
// static split leaves cores idle).  Determinism is the caller's merge
// discipline, not the schedule: both helpers hand out dense index
// ranges, so folding per-index results in index order is bit-identical
// at any worker count regardless of which worker ran what.
//
// Lock discipline is machine-checked: every shared field is
// GUARDED_BY the pool mutex and CI's clang lane compiles this header
// with -Wthread-safety -Werror (see util/annotations.hpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/fail_point.hpp"

namespace prt::util {

/// First-exception collector for task fan-outs: workers run their
/// bodies through guard(), the submitting thread rethrows after the
/// fan-out drains.  An exception escaping a worker thread would
/// otherwise std::terminate the process.  Shared by
/// ThreadPool::parallel_for_chunks and the campaign suite's flattened
/// schedule (analysis/campaign_suite).
class ErrorCollector {
 public:
  /// Runs fn, capturing the first exception (in completion order).
  template <typename Fn>
  void guard(Fn&& fn) noexcept {
    try {
      fn();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  /// Rethrows the captured exception, if any.  Safe to call while
  /// guarded tasks may still be running, but only a call that
  /// happens-after every guard() (e.g. after wait_idle()) is
  /// guaranteed to observe their exceptions.
  void rethrow_if_any() {
    std::exception_ptr error;
    {
      MutexLock lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mutex_;
  std::exception_ptr error_ PRT_GUARDED_BY(mutex_);
};

/// Splits [0, total) into `parts` contiguous ascending chunks — dense
/// chunk indices, sizes differing by at most one — and calls
/// fn(chunk, begin, end) for each, synchronously.  This is THE
/// partition shape every campaign merge relies on (contiguous
/// ascending ranges folded in chunk order are what make parallel
/// results bit-identical to serial ones); keep every fan-out on this
/// one splitter.  parts is clamped to [1, total]; total = 0 calls
/// nothing.
template <typename Fn>
void for_each_chunk(std::size_t total, std::size_t parts, Fn&& fn) {
  if (total == 0) return;
  const std::size_t w = std::min(std::max<std::size_t>(parts, 1), total);
  const std::size_t base = total / w;
  const std::size_t extra = total % w;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t end = begin + base + (i < extra ? 1 : 0);
    fn(static_cast<unsigned>(i), begin, end);
    begin = end;
  }
}

/// Telemetry of one parallel_for_batches fan-out.  Pure observability
/// — which worker ran which batch never changes merged output — but
/// the bench records it per section so the scaling curves show whether
/// stealing actually happened (a perfectly uniform workload steals ~0
/// batches; early-abort universes steal plenty).
struct StealCounters {
  /// Batches executed (== the batch count of the fan-out when no batch
  /// threw).
  std::uint64_t batches = 0;
  /// Batches executed by a worker other than the one whose home range
  /// contained them.
  std::uint64_t steals = 0;
};

/// Default worker count for pools and campaign fan-out: the
/// PRT_THREADS environment variable when set to a positive integer
/// (benches and CI pin it for reproducible runs), else the hardware
/// concurrency, minimum 1.
[[nodiscard]] inline unsigned default_worker_count() {
  if (const char* env = std::getenv("PRT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class ThreadPool {
 public:
  /// `workers == 0` sizes the pool to default_worker_count() (the
  /// PRT_THREADS override, else the hardware concurrency, minimum 1).
  explicit ThreadPool(unsigned workers = 0) {
    if (workers == 0) workers = default_worker_count();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues a task.  Tasks must not themselves block on the pool.
  /// A task that throws does not kill the worker or wedge wait_idle():
  /// the first escaped exception is captured (take_unhandled_error())
  /// and the worker keeps draining — structured fan-outs that need
  /// their errors rethrown on the submitter wrap tasks in an
  /// ErrorCollector instead (parallel_for_chunks does).
  void submit(std::function<void()> task) PRT_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      tasks_.push(std::move(task));
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void wait_idle() PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!tasks_.empty() || active_ != 0) idle_.wait(lock);
  }

  /// Returns (and clears) the first exception that escaped a raw
  /// submit() task, if any.  Call after wait_idle() when the caller
  /// wants to surface unguarded task failures instead of dropping
  /// them.
  //
  // Invariant (exchange-under-lock, beyond what GUARDED_BY states):
  // `unhandled_` is first-write-wins (workers only store into a null
  // slot) and exactly-once on the way out — concurrent takers race
  // through this one exchange, so one of them receives the exception
  // and the rest see nullptr; the error is never duplicated or
  // dropped (pinned by ThreadPool.
  // ConcurrentTakeUnhandledErrorHandsOutExactlyOnce).
  [[nodiscard]] std::exception_ptr take_unhandled_error()
      PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return std::exchange(unhandled_, nullptr);
  }

  /// Splits [0, total) into one contiguous chunk per worker and runs
  /// `fn(chunk_index, begin, end)` on the pool, blocking until all
  /// chunks are done.  Chunk `i` covers a contiguous, ascending index
  /// range, and chunk indices are dense in [0, chunks), so callers can
  /// merge per-chunk results deterministically regardless of which
  /// worker ran them or in which order they finished.  If any chunk
  /// throws, the first exception (in completion order) is rethrown on
  /// the calling thread after every chunk has finished — an exception
  /// escaping a worker thread would otherwise std::terminate the
  /// process.
  void parallel_for_chunks(
      std::size_t total,
      const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
    ErrorCollector errors;
    for_each_chunk(total, workers(),
                   [&](unsigned i, std::size_t begin, std::size_t end) {
                     submit([&fn, &errors, i, begin, end] {
                       errors.guard([&] { fn(i, begin, end); });
                     });
                   });
    wait_idle();
    errors.rethrow_if_any();
  }

  /// Work-stealing fan-out: splits [0, total) into ceil(total /
  /// batch_size) fixed-size batches, assigns each worker a contiguous
  /// *home range* of batch indices, and runs
  /// `fn(batch_index, begin, end)` for every batch, blocking until all
  /// are done.  A worker drains its own range first, then steals
  /// batches from the other ranges in ring order — so a worker whose
  /// batches finish early (early-abort universes, cheap fault classes)
  /// keeps the cores busy instead of idling at the static-chunk
  /// barrier.
  ///
  /// Determinism contract: batch indices are dense, batch `b` always
  /// covers exactly [b * batch_size, min((b+1) * batch_size, total)),
  /// and every batch runs exactly once — the schedule (who ran it,
  /// when) is the ONLY nondeterminism.  Callers that merge per-batch
  /// results in batch-index order therefore produce output
  /// bit-identical to a serial loop at any worker count (the campaign
  /// layer's run_sharded does exactly this).
  ///
  /// Claim protocol: each home range has one atomic cursor; claiming —
  /// own or stolen — is a fetch_add on that cursor, so every batch
  /// index below the range end is returned to exactly one claimant and
  /// overshoot past the end claims nothing.  If a batch throws, its
  /// claimant abandons the rest of its draining (thieves still pick up
  /// the unclaimed remainder) and the first exception is rethrown here
  /// after the fan-out drains, like parallel_for_chunks.
  ///
  /// Returns the executed/stolen batch counters (telemetry only;
  /// meaningless when an exception was rethrown).  batch_size is
  /// clamped to >= 1; total == 0 runs nothing.
  StealCounters parallel_for_batches(
      std::size_t total, std::size_t batch_size,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    StealCounters counters;
    if (total == 0) return counters;
    if (batch_size == 0) batch_size = 1;
    const std::size_t nbatches = (total + batch_size - 1) / batch_size;
    const std::size_t ntasks =
        std::min<std::size_t>(std::max(workers(), 1U), nbatches);
    // Home ranges come from the same splitter every contiguous fan-out
    // uses; range ends are immutable, so only the cursors need atomics.
    std::vector<std::size_t> home_end(ntasks, 0);
    struct alignas(64) Cursor {
      std::atomic<std::size_t> next{0};
    };
    const std::unique_ptr<Cursor[]> cursor(new Cursor[ntasks]);
    for_each_chunk(nbatches, ntasks,
                   [&](unsigned i, std::size_t begin, std::size_t end) {
                     cursor[i].next.store(begin, std::memory_order_relaxed);
                     home_end[i] = end;
                   });
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    ErrorCollector errors;
    auto run_batch = [&](std::size_t b) {
      const std::size_t begin = b * batch_size;
      const std::size_t end = std::min(begin + batch_size, total);
      fn(b, begin, end);
      executed.fetch_add(1, std::memory_order_relaxed);
    };
    for (std::size_t t = 0; t < ntasks; ++t) {
      submit([&, t] {
        errors.guard([&] {
          // Drain the home range, then sweep the other ranges in ring
          // order starting past our own (spreads thieves across
          // victims instead of mobbing range 0).
          for (std::size_t b;
               (b = cursor[t].next.fetch_add(1, std::memory_order_relaxed)) <
               home_end[t];) {
            run_batch(b);
          }
          for (std::size_t v = t + 1; v < t + ntasks; ++v) {
            const std::size_t victim = v % ntasks;
            for (std::size_t b;
                 (b = cursor[victim].next.fetch_add(
                      1, std::memory_order_relaxed)) < home_end[victim];) {
              run_batch(b);
              stolen.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      });
    }
    wait_idle();
    errors.rethrow_if_any();
    counters.batches = executed.load(std::memory_order_relaxed);
    counters.steals = stolen.load(std::memory_order_relaxed);
    return counters;
  }

 private:
  void worker_loop() PRT_EXCLUDES(mutex_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!stopping_ && tasks_.empty()) wake_.wait(lock);
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
        ++active_;
      }
      // A throwing task must neither std::terminate the worker nor
      // skip the active_ decrement (which would deadlock wait_idle()
      // and the destructor with tasks still queued).  The "fail point"
      // hook lets tests inject exactly that throw into an otherwise
      // well-behaved task stream.
      try {
        FailPoint::hit("thread_pool.task");
        task();
      } catch (...) {
        MutexLock lock(mutex_);
        if (!unhandled_) unhandled_ = std::current_exception();
      }
      {
        MutexLock lock(mutex_);
        --active_;
      }
      idle_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar wake_;
  CondVar idle_;
  std::queue<std::function<void()>> tasks_ PRT_GUARDED_BY(mutex_);
  std::size_t active_ PRT_GUARDED_BY(mutex_) = 0;
  bool stopping_ PRT_GUARDED_BY(mutex_) = false;
  std::exception_ptr unhandled_ PRT_GUARDED_BY(mutex_);
};

}  // namespace prt::util
