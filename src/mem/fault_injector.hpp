// Fault-injecting memory wrapper.
//
// FaultyRam presents the Memory interface while perturbing reads and
// writes according to a list of injected functional faults (fault.hpp).
// Test algorithms (March, PRT) run unchanged against it; a test detects
// the fault when its observable behaviour (read values / final
// signature) deviates from the golden run.
#pragma once

#include <array>
#include <vector>

#include "mem/fault.hpp"
#include "mem/memory.hpp"
#include "mem/sram.hpp"

namespace prt::mem {

/// Behaviour of an address under decoder faults: the set of physical
/// cells the address actually opens.
struct DecodedAccess {
  std::array<Addr, 2> cells{};
  unsigned count = 0;  // 0 (no access), 1, or 2
};

class FaultyRam final : public Memory {
 public:
  /// Throws std::invalid_argument unless cells >= 1, 1 <= width_bits
  /// <= 32 and port_count is 1, 2 or 4 (the stats/sense-amp arrays are
  /// sized for 4 ports; anything else would index out of bounds).
  FaultyRam(Addr cells, unsigned width_bits, unsigned port_count = 1);

  /// Injects a fault.  Throws std::invalid_argument when a referenced
  /// cell/bit/alias is out of range, a coupling fault has victim ==
  /// aggressor, or a retention fault has delay == 0 — malformed
  /// universes must not silently corrupt release-build campaigns.
  /// Stuck-at victims are clamped to their stuck value immediately.
  void inject(const Fault& fault);
  void clear_faults() {
    faults_.clear();
    refreshed_at_.clear();
    has_address_fault_ = false;
    has_retention_fault_ = false;
  }

  /// Returns the wrapper to its just-constructed state (cells filled
  /// with `fill_value`, no faults, counters/clock/sense-amp history
  /// zero) without releasing storage.  Campaign workers reuse one
  /// FaultyRam across a whole fault shard through this instead of
  /// constructing and prefilling a fresh one per fault.
  void reset(Word fill_value = 0) {
    ram_.reset(fill_value);
    clear_faults();
    stats_.fill({});
    last_read_.fill(0);
    clock_ = 0;
  }

  /// reset() followed by injecting exactly `fault` — one fault universe
  /// entry per campaign run.
  void reset(const Fault& fault, Word fill_value = 0) {
    reset(fill_value);
    inject(fault);
  }
  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }

  [[nodiscard]] Addr size() const override { return ram_.size(); }
  [[nodiscard]] unsigned width() const override { return ram_.width(); }
  [[nodiscard]] unsigned ports() const override { return ram_.ports(); }

  Word read(Addr addr, unsigned port) override;
  void write(Addr addr, Word value, unsigned port) override;
  void advance_time(std::uint64_t ticks) override { clock_ += ticks; }

  [[nodiscard]] AccessStats stats(unsigned port) const override {
    return stats_[port];
  }
  void reset_stats() override { stats_.fill({}); }

  /// Direct state access for tests (bypasses every fault and counter).
  [[nodiscard]] Word peek(Addr addr) const { return ram_.peek(addr); }
  void poke(Addr addr, Word value) { ram_.poke(addr, value); }

 private:
  /// Resolves decoder faults for an address.
  [[nodiscard]] DecodedAccess decode(Addr addr) const;

  /// Writes `value` into the physical cell, honouring TF/WDF/SAF and
  /// firing coupling effects for every actual bit transition.
  void physical_write(Addr cell, Word value);

  /// Reads the physical cell, honouring read-logic faults (may modify
  /// the cell, e.g. RDF/DRDF) and SOF history for `port`.
  Word physical_read(Addr cell, unsigned port);

  /// Sets one stored bit and, if it changed, propagates coupling
  /// effects (CFin/CFid where it is the aggressor), bridge ties, CFst
  /// conditions and NPSF patterns.  `depth` caps cascades so mutually
  /// coupled multi-fault configurations terminate.
  void set_bit(Addr cell, unsigned bit, unsigned value, int depth);

  /// Fires the coupling faults whose aggressor is (cell, bit) after it
  /// made a transition in direction `up`, then re-evaluates the
  /// conditional faults touching `cell`.
  void fire_transition(Addr cell, unsigned bit, bool up, int depth);

  /// Forces stuck-at victims of `cell` to their stuck value.  Called at
  /// injection time so the stuck value holds before any write; the
  /// write path (physical_write) and bit cascades (set_bit) clamp
  /// inline, so no per-access call is needed.
  void enforce_saf(Addr cell);
  /// Applies CFst / bridge / NPSF conditions affected by `cell`.
  void enforce_conditions(Addr cell, int depth);

  [[nodiscard]] unsigned stored_bit(Addr cell, unsigned bit) const {
    return (ram_.peek(cell) >> bit) & 1U;
  }

  /// Applies decay to retention victims of `cell` that have gone
  /// unrefreshed longer than their delay.
  void apply_retention(Addr cell);

  SimRam ram_;
  std::vector<Fault> faults_;
  // Fast-path gates: campaigns inject exactly one fault per run, so
  // the per-access decoder and retention scans are skipped outright
  // unless a fault of that family is present.
  bool has_address_fault_ = false;
  bool has_retention_fault_ = false;
  std::array<AccessStats, 4> stats_{};
  std::array<Word, 4> last_read_{};  // SOF sense-amp history per port
  std::uint64_t clock_ = 0;          // one tick per logical operation
  std::vector<std::uint64_t> refreshed_at_;  // per fault (kDrf only)
};

}  // namespace prt::mem
