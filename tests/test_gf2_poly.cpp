// Unit tests for GF(2) polynomial arithmetic (gf/gf2_poly).
#include "gf/gf2_poly.hpp"

#include <gtest/gtest.h>

#include "util/bitops.hpp"

namespace prt::gf {
namespace {

TEST(Clmul, ZeroAnnihilates) {
  EXPECT_EQ(clmul(0, 0x1234), 0u);
  EXPECT_EQ(clmul(0x1234, 0), 0u);
}

TEST(Clmul, OneIsIdentity) {
  EXPECT_EQ(clmul(1, 0xabcd), 0xabcdu);
  EXPECT_EQ(clmul(0xabcd, 1), 0xabcdu);
}

TEST(Clmul, XTimesXIsXSquared) { EXPECT_EQ(clmul(0b10, 0b10), 0b100u); }

TEST(Clmul, KnownProduct) {
  // (z+1)(z+1) = z^2 + 1 over GF(2) (cross terms cancel).
  EXPECT_EQ(clmul(0b11, 0b11), 0b101u);
  // (z^2+z+1)(z+1) = z^3 + 1.
  EXPECT_EQ(clmul(0b111, 0b11), 0b1001u);
}

TEST(Clmul, Commutative) {
  for (Poly2 a = 0; a < 32; ++a) {
    for (Poly2 b = 0; b < 32; ++b) {
      EXPECT_EQ(clmul(a, b), clmul(b, a));
    }
  }
}

TEST(Clmul, DistributesOverXor) {
  for (Poly2 a = 1; a < 16; ++a) {
    for (Poly2 b = 1; b < 16; ++b) {
      for (Poly2 c = 1; c < 16; ++c) {
        EXPECT_EQ(clmul(a, b ^ c), clmul(a, b) ^ clmul(a, c));
      }
    }
  }
}

TEST(PolyMod, DegreeReduced) {
  const Poly2 p = 0b10011;  // z^4 + z + 1
  for (Poly2 a = 0; a < 1024; ++a) {
    EXPECT_LT(poly_degree(poly_mod(a, p)), 4);
  }
}

TEST(PolyMod, ExactDivision) {
  // z^4 + z + 1 divides (z^4+z+1) * (z^3+1) exactly.
  const Poly2 p = 0b10011;
  const Poly2 q = 0b1001;
  EXPECT_EQ(poly_mod(clmul(p, q), p), 0u);
}

TEST(PolyDiv, QuotientTimesDivisorPlusRemainder) {
  for (Poly2 a = 0; a < 256; ++a) {
    for (Poly2 p = 1; p < 32; ++p) {
      const Poly2 q = poly_div(a, p);
      const Poly2 r = poly_mod(a, p);
      EXPECT_EQ(clmul(q, p) ^ r, a) << "a=" << a << " p=" << p;
    }
  }
}

TEST(PolyGcd, WithSelf) { EXPECT_EQ(poly_gcd(0b10011, 0b10011), 0b10011u); }

TEST(PolyGcd, CoprimePolynomials) {
  // z^4+z+1 and z^4+z^3+1 are distinct irreducibles -> gcd 1.
  EXPECT_EQ(poly_gcd(0b10011, 0b11001), 1u);
}

TEST(PolyGcd, CommonFactor) {
  // (z+1)(z^2+z+1) and (z+1)(z^3+z+1): gcd = z+1.
  const Poly2 a = clmul(0b11, 0b111);
  const Poly2 b = clmul(0b11, 0b1011);
  EXPECT_EQ(poly_gcd(a, b), 0b11u);
}

TEST(Powmod, XToGroupOrderIsOne) {
  const Poly2 p = 0b10011;  // primitive, order 15
  EXPECT_EQ(powmod(2, 15, p), 1u);
  EXPECT_NE(powmod(2, 5, p), 1u);
  EXPECT_NE(powmod(2, 3, p), 1u);
}

TEST(Powmod, ZeroExponent) { EXPECT_EQ(powmod(0b101, 0, 0b10011), 1u); }

TEST(PowXPow2, MatchesRepeatedSquaring) {
  const Poly2 p = 0b10011;
  EXPECT_EQ(pow_x_pow2(0, p), 2u);
  EXPECT_EQ(pow_x_pow2(1, p), powmod(2, 2, p));
  EXPECT_EQ(pow_x_pow2(2, p), powmod(2, 4, p));
  EXPECT_EQ(pow_x_pow2(4, p), powmod(2, 16, p));
}

TEST(IsIrreducible, DegreeOnePolynomialsAre) {
  EXPECT_TRUE(is_irreducible(0b10));  // z
  EXPECT_TRUE(is_irreducible(0b11));  // z + 1
}

TEST(IsIrreducible, KnownIrreducibles) {
  EXPECT_TRUE(is_irreducible(0b111));     // z^2+z+1
  EXPECT_TRUE(is_irreducible(0b1011));    // z^3+z+1
  EXPECT_TRUE(is_irreducible(0b1101));    // z^3+z^2+1
  EXPECT_TRUE(is_irreducible(0b10011));   // z^4+z+1 (paper's p(z))
  EXPECT_TRUE(is_irreducible(0b11111));   // z^4+z^3+z^2+z+1
  EXPECT_TRUE(is_irreducible(0x11b));     // AES polynomial z^8+z^4+z^3+z+1
  EXPECT_TRUE(is_irreducible(0x1002b));   // z^16+z^5+z^3+z+1
}

TEST(IsIrreducible, KnownReducibles) {
  EXPECT_FALSE(is_irreducible(0b101));    // z^2+1 = (z+1)^2
  EXPECT_FALSE(is_irreducible(0b110));    // z^2+z = z(z+1)
  EXPECT_FALSE(is_irreducible(0b1001));   // z^3+1 = (z+1)(z^2+z+1)
  EXPECT_FALSE(is_irreducible(0b10101));  // z^4+z^2+1 = (z^2+z+1)^2
  EXPECT_FALSE(is_irreducible(1));        // constants are not
  EXPECT_FALSE(is_irreducible(0));
}

TEST(IsIrreducible, BruteForceCrossCheckDegree5) {
  // Compare Rabin's verdict against explicit trial division by all
  // lower-degree polynomials.
  for (Poly2 p = 0b100000; p < 0b1000000; ++p) {
    bool has_factor = false;
    for (Poly2 d = 2; poly_degree(d) <= 2; ++d) {
      if (poly_mod(p, d) == 0) {
        has_factor = true;
        break;
      }
    }
    EXPECT_EQ(is_irreducible(p), !has_factor) << "p=" << p;
  }
}

// The number of monic irreducible polynomials of degree m over GF(2) is
// given by Gauss's necklace formula; spot-check the enumeration.
struct DegreeCount {
  unsigned degree;
  std::size_t count;
};

class IrreducibleCountTest : public ::testing::TestWithParam<DegreeCount> {};

TEST_P(IrreducibleCountTest, MatchesNecklaceFormula) {
  const auto [m, expected] = GetParam();
  EXPECT_EQ(irreducibles_of_degree(m).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Gauss, IrreducibleCountTest,
    ::testing::Values(DegreeCount{1, 2}, DegreeCount{2, 1},
                      DegreeCount{3, 2}, DegreeCount{4, 3},
                      DegreeCount{5, 6}, DegreeCount{6, 9},
                      DegreeCount{7, 18}, DegreeCount{8, 30},
                      DegreeCount{10, 99}));

TEST(IsPrimitive, KnownPrimitives) {
  EXPECT_TRUE(is_primitive(0b111));     // z^2+z+1
  EXPECT_TRUE(is_primitive(0b1011));    // z^3+z+1
  EXPECT_TRUE(is_primitive(0b10011));   // z^4+z+1
  EXPECT_TRUE(is_primitive(0b100101));  // z^5+z^2+1
}

TEST(IsPrimitive, IrreducibleButNotPrimitive) {
  // z^4+z^3+z^2+z+1 is irreducible with order 5 (divides 15).
  EXPECT_TRUE(is_irreducible(0b11111));
  EXPECT_FALSE(is_primitive(0b11111));
  EXPECT_EQ(order_of_x(0b11111), 5u);
}

TEST(OrderOfX, PrimitiveHasFullOrder) {
  EXPECT_EQ(order_of_x(0b111), 3u);
  EXPECT_EQ(order_of_x(0b1011), 7u);
  EXPECT_EQ(order_of_x(0b10011), 15u);
}

TEST(OrderOfX, OrderDividesGroupOrder) {
  for (Poly2 p : irreducibles_of_degree(6)) {
    EXPECT_EQ(63 % order_of_x(p), 0u) << "p=" << p;
  }
}

TEST(OrderOfX, MatchesBruteForce) {
  for (Poly2 p : irreducibles_of_degree(4)) {
    Poly2 cur = 2;
    std::uint64_t t = 1;
    while (cur != 1) {
      cur = mulmod(cur, 2, p);
      ++t;
    }
    EXPECT_EQ(order_of_x(p), t) << "p=" << p;
  }
}

TEST(DistinctPrimeFactors, SmallValues) {
  EXPECT_EQ(distinct_prime_factors(1), (std::vector<std::uint64_t>{}));
  EXPECT_EQ(distinct_prime_factors(2), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(distinct_prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(distinct_prime_factors(255),
            (std::vector<std::uint64_t>{3, 5, 17}));
  EXPECT_EQ(distinct_prime_factors(65535),
            (std::vector<std::uint64_t>{3, 5, 17, 257}));
  EXPECT_EQ(distinct_prime_factors(97), (std::vector<std::uint64_t>{97}));
}

TEST(FirstIrreducible, MatchesEnumeration) {
  for (unsigned m = 1; m <= 10; ++m) {
    EXPECT_EQ(first_irreducible(m), irreducibles_of_degree(m).front());
  }
}

TEST(FirstPrimitive, IsPrimitiveAndIrreducible) {
  for (unsigned m = 1; m <= 12; ++m) {
    const Poly2 p = first_primitive(m);
    EXPECT_TRUE(is_primitive(p)) << "m=" << m;
    EXPECT_EQ(poly_degree(p), static_cast<int>(m));
  }
}

TEST(FirstPrimitive, KnownValues) {
  EXPECT_EQ(first_primitive(4), 0b10011u);   // z^4+z+1, the paper's p(z)
  EXPECT_EQ(first_primitive(8), 0b100011101u);  // z^8+z^4+z^3+z^2+1
}

TEST(PolyToString, Formats) {
  EXPECT_EQ(poly_to_string(0), "0");
  EXPECT_EQ(poly_to_string(1), "1");
  EXPECT_EQ(poly_to_string(0b10), "z");
  EXPECT_EQ(poly_to_string(0b10011), "z^4 + z + 1");
  EXPECT_EQ(poly_to_string(0b111, 'x'), "x^2 + x + 1");
}

TEST(PolyFromString, ParsesBothTermOrders) {
  EXPECT_EQ(poly_from_string("z^4+z+1"), Poly2{0b10011});
  EXPECT_EQ(poly_from_string("1+z+z^4"), Poly2{0b10011});
  EXPECT_EQ(poly_from_string(" z^2 + z + 1 "), Poly2{0b111});
  EXPECT_EQ(poly_from_string("1"), Poly2{1});
  EXPECT_EQ(poly_from_string("z"), Poly2{0b10});
}

TEST(PolyFromString, RoundTripsToString) {
  for (Poly2 p = 1; p < 64; ++p) {
    EXPECT_EQ(poly_from_string(poly_to_string(p)), p);
  }
}

TEST(PolyFromString, RejectsMalformed) {
  EXPECT_FALSE(poly_from_string(""));
  EXPECT_FALSE(poly_from_string("+"));
  EXPECT_FALSE(poly_from_string("z^"));
  EXPECT_FALSE(poly_from_string("z+"));
  EXPECT_FALSE(poly_from_string("q^2"));
  EXPECT_FALSE(poly_from_string("z^99"));
  EXPECT_FALSE(poly_from_string("2z"));
}

TEST(PolyFromString, DuplicateTermsCancel) {
  // GF(2): z + z = 0.
  EXPECT_EQ(poly_from_string("z+z"), Poly2{0});
  EXPECT_EQ(poly_from_string("z^2+z+z"), Poly2{0b100});
}

}  // namespace
}  // namespace prt::gf
