#!/usr/bin/env python3
"""Compare a fresh BENCH_campaign.json against a committed baseline.

Timings are machine-dependent, but every other field of the report is
deterministic: the universes, the per-config coverage percentages and
the op counts (including the shrunk early-abort counts) must reproduce
exactly run over run.  The bench binary itself aborts on intra-run
parity violations; this checker catches *cross-commit* regressions —
a scheme change that silently drops coverage, or an accounting change
that breaks the packed/scalar op identity — by diffing the fresh
report against the baseline generated with the same flags
(`bench_campaign --quick`, threads pinned via PRT_THREADS).

Usage: check_bench_baseline.py FRESH.json BASELINE.json
           [--expect UNIVERSE ...] [--packed-full UNIVERSE ...]
           [--require-scaling]

--expect pins the universe names the fresh report must contain.  The
section diff below only sees sections present in at least one file, so
without it, a bench binary that crashed mid-sweep (or a baseline that
was regenerated from a truncated run) could drop a whole universe from
*both* files and pass silently.  The CI invocation lists every
universe the quick sweep is supposed to produce.

--packed-full pins universal packing: the named sections of the fresh
report must have packed_fraction == 1.0, i.e. every fault of that
universe rode a 64-lane batch and zero fell back to the scalar
per-fault path.  A lane-compatibility regression (a fault family
silently dropping off the packed path) changes no op count and no
coverage number, so only this fraction catches it.  packed_fraction is
also diffed fresh-vs-baseline for every section, like ops/coverage.

--require-scaling pins the measured-scaling grid: the fresh report
must contain a section whose universe starts with "scaling", covering
every threads {1, 2, 4, 8} x lane width {64, 256} cell (config names
"wW/tT"), with per-config steals / wide_faults / max_lanes telemetry
present and max_lanes matching the config's lane width.  The timings
themselves are machine-dependent and not checked — presence and
completeness of the grid are.

Exit status 0 when everything matches, 1 with a diff report otherwise,
2 on malformed input.
"""

import argparse
import json
import sys


def section_key(section):
    return (
        section.get("universe"),
        section.get("scheme"),
        section.get("n"),
    )


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    sections = report.get("sections")
    if not isinstance(sections, list):
        raise ValueError(f"{path}: no 'sections' array (malformed report)")
    return sections


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("fresh", help="freshly generated BENCH_campaign.json")
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument(
        "--expect",
        nargs="+",
        default=[],
        metavar="UNIVERSE",
        help="universe names the fresh report must contain; a missing "
        "one fails the check even when both files agree",
    )
    parser.add_argument(
        "--packed-full",
        nargs="+",
        default=[],
        metavar="UNIVERSE",
        help="universe names whose fresh sections must report "
        "packed_fraction == 1.0 (every fault on the 64-lane path, "
        "zero scalar fallbacks)",
    )
    parser.add_argument(
        "--require-scaling",
        action="store_true",
        help="fail unless the fresh report has a complete scaling "
        "section (threads {1,2,4,8} x lane width {64,256} with "
        "scheduler telemetry per config)",
    )
    args = parser.parse_args()

    try:
        fresh = load_report(args.fresh)
        baseline = load_report(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench baseline check ERROR: {e}", file=sys.stderr)
        return 2

    errors = []

    # Pinned section list: both reports must cover every expected
    # universe — catching a sweep that silently lost a section from
    # both sides of the diff.
    fresh_universes = {s.get("universe") for s in fresh}
    baseline_universes = {s.get("universe") for s in baseline}
    for name in args.expect:
        if name not in fresh_universes:
            errors.append(
                f"expected universe '{name}' missing from fresh report "
                "(bench sweep incomplete?)"
            )
        if name not in baseline_universes:
            errors.append(
                f"expected universe '{name}' missing from baseline "
                "(baseline generated from a truncated run?)"
            )

    # Universal-packing pin: every fresh section of a --packed-full
    # universe must have routed its whole universe onto the lanes.
    packed_full = set(args.packed_full)
    for name in packed_full - fresh_universes:
        errors.append(
            f"--packed-full universe '{name}' missing from fresh report"
        )
    for s in fresh:
        if s.get("universe") in packed_full:
            fraction = s.get("packed_fraction")
            if fraction != 1.0:
                errors.append(
                    f"section {section_key(s)}: packed_fraction "
                    f"{fraction} != 1.0 (scalar fallbacks on a "
                    "universe that must pack fully)"
                )

    # Scaling-grid pin: the threads x lane-width sweep must be present
    # and complete, with the scheduler telemetry the wide-SIMD PR
    # promises per config.
    if args.require_scaling:
        scaling = [
            s for s in fresh if str(s.get("universe", "")).startswith("scaling")
        ]
        if not scaling:
            errors.append(
                "--require-scaling: no 'scaling' section in fresh report"
            )
        for s in scaling:
            configs = {c.get("name"): c for c in s.get("configs", [])}
            for width in (64, 256):
                for threads in (1, 2, 4, 8):
                    name = f"w{width}/t{threads}"
                    c = configs.get(name)
                    if c is None:
                        errors.append(
                            f"scaling section {section_key(s)}: missing "
                            f"grid cell '{name}'"
                        )
                        continue
                    for field in ("steals", "wide_faults", "max_lanes"):
                        if field not in c:
                            errors.append(
                                f"scaling config '{name}': missing "
                                f"'{field}' telemetry"
                            )
                    if c.get("max_lanes") not in (width, 64):
                        errors.append(
                            f"scaling config '{name}': max_lanes "
                            f"{c.get('max_lanes')} matches neither the "
                            f"requested width {width} nor the narrow "
                            "fallback 64"
                        )
                    if width == 64 and c.get("wide_faults", 0) != 0:
                        errors.append(
                            f"scaling config '{name}': wide_faults "
                            f"{c.get('wide_faults')} != 0 at width 64"
                        )

    fresh_sections = {section_key(s): s for s in fresh}
    baseline_sections = {section_key(s): s for s in baseline}
    # Both directions: a section/config present on only one side means
    # either a regression (dropped from the fresh run) or a bench
    # change whose baseline was not regenerated — both must fail so
    # nothing ships unchecked.
    for key in fresh_sections.keys() - baseline_sections.keys():
        errors.append(
            f"section {key} not in baseline (regenerate the baseline)"
        )
    for key, base in baseline_sections.items():
        got = fresh_sections.get(key)
        if got is None:
            errors.append(f"section {key} missing from fresh report")
            continue
        if got.get("faults") != base.get("faults"):
            errors.append(
                f"section {key}: faults {got.get('faults')} != "
                f"baseline {base.get('faults')}"
            )
            continue
        # Suite sections: the wall-clock ratio itself is machine
        # dependent, but the field must survive (the bench computed a
        # real suite run) and stay positive; a 0 would mean the suite
        # config silently dropped out of the comparison.
        if base.get("suite_vs_sequential", 0) > 0:
            if got.get("suite_vs_sequential", 0) <= 0:
                errors.append(
                    f"section {key}: suite_vs_sequential missing or 0 "
                    "(suite config dropped out of the sweep?)"
                )
        # The dispatch split is deterministic (it depends only on the
        # universe and the engine options), so the packed share must
        # reproduce exactly run over run.
        if got.get("packed_fraction") != base.get("packed_fraction"):
            errors.append(
                f"section {key}: packed_fraction "
                f"{got.get('packed_fraction')} != baseline "
                f"{base.get('packed_fraction')}"
            )
        base_configs = {c.get("name"): c for c in base.get("configs", [])}
        got_configs = {c.get("name"): c for c in got.get("configs", [])}
        for name in got_configs.keys() - base_configs.keys():
            errors.append(
                f"section {key}: config '{name}' not in baseline "
                "(regenerate the baseline)"
            )
        for name, bc in base_configs.items():
            gc = got_configs.get(name)
            if gc is None:
                errors.append(f"section {key}: config '{name}' missing")
                continue
            for field in ("ops", "coverage"):
                if gc.get(field) != bc.get(field):
                    errors.append(
                        f"section {key} config '{name}': {field} "
                        f"{gc.get(field)} != baseline {bc.get(field)}"
                    )

    if errors:
        print("bench baseline check FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    expected = (
        f", all {len(args.expect)} expected universes present"
        if args.expect
        else ""
    )
    print(
        f"bench baseline check OK: {len(baseline)} sections, "
        f"ops and coverage match{expected}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
