// Dense matrices over GF(2), rows packed into 64-bit words.  Used for
// constant-multiplier synthesis (an m x m multiplier matrix), LFSR
// transition matrices and jump-ahead (matrix powers), and the linear
// error-propagation analysis of the pi-test.
#pragma once

#include <cstdint>
#include <vector>

namespace prt::gf {

/// A rows x cols matrix over GF(2).  Bit j of words_[r * wpr + j/64]
/// holds entry (r, j).
class MatrixGF2 {
 public:
  MatrixGF2() = default;
  MatrixGF2(std::size_t rows, std::size_t cols);

  static MatrixGF2 identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool v);

  /// XORs row `src` into row `dst` (elementary row operation).
  void xor_row(std::size_t dst, std::size_t src);

  /// Matrix product; precondition cols() == rhs.rows().
  [[nodiscard]] MatrixGF2 mul(const MatrixGF2& rhs) const;

  /// Matrix-vector product over GF(2); the vector is packed into words
  /// (bit i = component i) and must have cols() meaningful bits.
  [[nodiscard]] std::vector<std::uint64_t> mul_vec(
      const std::vector<std::uint64_t>& v) const;

  /// Convenience for cols() <= 64: y = M x with x packed into one word.
  [[nodiscard]] std::uint64_t mul_vec64(std::uint64_t x) const;

  /// M^e by binary exponentiation; precondition square.
  [[nodiscard]] MatrixGF2 pow(std::uint64_t e) const;

  [[nodiscard]] MatrixGF2 transpose() const;

  /// Rank by Gaussian elimination (on a copy).
  [[nodiscard]] std::size_t rank() const;

  /// Inverse; returns an empty (0x0) matrix if singular.  Precondition:
  /// square.
  [[nodiscard]] MatrixGF2 inverse() const;

  [[nodiscard]] bool is_identity() const;

  bool operator==(const MatrixGF2&) const = default;

 private:
  [[nodiscard]] std::size_t wpr() const { return (cols_ + 63) / 64; }
  [[nodiscard]] const std::uint64_t* row(std::size_t r) const {
    return words_.data() + r * wpr();
  }
  [[nodiscard]] std::uint64_t* row(std::size_t r) {
    return words_.data() + r * wpr();
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace prt::gf
