#include "gf/gf2m_poly.hpp"

#include <cassert>

namespace prt::gf {

PolyGF2m poly_add(const GF2m& f, const PolyGF2m& a, const PolyGF2m& b) {
  std::vector<Elem> out(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = f.add(a.at(i), b.at(i));
  }
  return PolyGF2m(std::move(out));
}

PolyGF2m poly_mul(const GF2m& f, const PolyGF2m& a, const PolyGF2m& b) {
  if (a.is_zero() || b.is_zero()) return {};
  std::vector<Elem> out(a.coeffs.size() + b.coeffs.size() - 1, 0);
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    if (a.coeffs[i] == 0) continue;
    for (std::size_t j = 0; j < b.coeffs.size(); ++j) {
      out[i + j] = f.add(out[i + j], f.mul(a.coeffs[i], b.coeffs[j]));
    }
  }
  return PolyGF2m(std::move(out));
}

PolyGF2m poly_mod(const GF2m& f, PolyGF2m a, const PolyGF2m& g) {
  assert(!g.is_zero());
  const int dg = g.degree();
  const Elem lead_inv = f.inv(g.coeffs.back());
  while (a.degree() >= dg) {
    const int shift = a.degree() - dg;
    const Elem factor = f.mul(a.coeffs.back(), lead_inv);
    for (int i = 0; i <= dg; ++i) {
      a.coeffs[static_cast<std::size_t>(i + shift)] =
          f.add(a.coeffs[static_cast<std::size_t>(i + shift)],
                f.mul(factor, g.coeffs[static_cast<std::size_t>(i)]));
    }
    a.normalize();
  }
  return a;
}

PolyGF2m poly_gcd(const GF2m& f, PolyGF2m a, PolyGF2m b) {
  while (!b.is_zero()) {
    PolyGF2m r = poly_mod(f, std::move(a), b);
    a = std::move(b);
    b = std::move(r);
  }
  if (!a.is_zero()) a = poly_make_monic(f, a);
  return a;
}

PolyGF2m poly_mulmod(const GF2m& f, const PolyGF2m& a, const PolyGF2m& b,
                     const PolyGF2m& g) {
  return poly_mod(f, poly_mul(f, a, b), g);
}

PolyGF2m poly_powmod(const GF2m& f, PolyGF2m a, std::uint64_t e,
                     const PolyGF2m& g) {
  PolyGF2m result(std::vector<Elem>{1});
  result = poly_mod(f, std::move(result), g);
  a = poly_mod(f, std::move(a), g);
  while (e != 0) {
    if (e & 1) result = poly_mulmod(f, result, a, g);
    a = poly_mulmod(f, a, a, g);
    e >>= 1;
  }
  return result;
}

PolyGF2m poly_scale(const GF2m& f, const PolyGF2m& a, Elem c) {
  assert(c != 0);
  std::vector<Elem> out(a.coeffs.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = f.mul(a.coeffs[i], c);
  }
  return PolyGF2m(std::move(out));
}

PolyGF2m poly_make_monic(const GF2m& f, const PolyGF2m& a) {
  assert(!a.is_zero());
  if (a.coeffs.back() == 1) return a;
  return poly_scale(f, a, f.inv(a.coeffs.back()));
}

Elem poly_eval(const GF2m& f, const PolyGF2m& a, Elem x0) {
  Elem acc = 0;
  for (std::size_t i = a.coeffs.size(); i-- > 0;) {
    acc = f.add(f.mul(acc, x0), a.coeffs[i]);
  }
  return acc;
}

namespace {

/// x as a polynomial.
PolyGF2m poly_x() { return PolyGF2m(std::vector<Elem>{0, 1}); }

/// h(x)^q mod g where q = field size (one Frobenius step applied to the
/// residue class of h).
PolyGF2m frobenius(const GF2m& f, const PolyGF2m& h, const PolyGF2m& g) {
  return poly_powmod(f, h, f.size(), g);
}

}  // namespace

bool is_irreducible(const GF2m& f, const PolyGF2m& g) {
  const int deg = g.degree();
  if (deg < 1) return false;
  if (deg == 1) return true;
  const auto k = static_cast<unsigned>(deg);
  // Rabin over GF(q): x^(q^k) == x mod g, and for each prime r | k,
  // gcd(x^(q^(k/r)) - x, g) == 1.
  const PolyGF2m x = poly_mod(f, poly_x(), g);
  PolyGF2m frob = x;  // x^(q^j), starting at j = 0
  std::vector<PolyGF2m> powers(k + 1);
  powers[0] = x;
  for (unsigned j = 1; j <= k; ++j) {
    frob = frobenius(f, frob, g);
    powers[j] = frob;
  }
  if (powers[k] != x) return false;
  for (std::uint64_t r : distinct_prime_factors(k)) {
    const PolyGF2m diff = poly_add(f, powers[k / r], x);
    if (poly_gcd(f, diff, g).degree() != 0) return false;
  }
  return true;
}

std::uint64_t order_of_x(const GF2m& f, const PolyGF2m& g,
                         std::uint64_t brute_force_cap) {
  assert(g.degree() >= 1);
  if (g.at(0) == 0) return 0;  // x not invertible modulo g
  const auto k = static_cast<unsigned>(g.degree());
  const PolyGF2m monic = poly_make_monic(f, g);
  if (is_irreducible(f, monic)) {
    // Order divides q^k - 1.
    std::uint64_t t = 1;
    for (unsigned i = 0; i < k; ++i) t *= f.size();
    t -= 1;
    for (std::uint64_t r : distinct_prime_factors(t)) {
      while (t % r == 0) {
        const PolyGF2m p = poly_powmod(f, poly_x(), t / r, monic);
        if (p.degree() == 0 && p.at(0) == 1) {
          t /= r;
        } else {
          break;
        }
      }
    }
    return t;
  }
  // Reducible modulus: bounded brute force on successive powers of x.
  PolyGF2m cur = poly_mod(f, poly_x(), monic);
  const PolyGF2m one(std::vector<Elem>{1});
  const PolyGF2m x = cur;
  for (std::uint64_t t = 1; t <= brute_force_cap; ++t) {
    if (cur == one) return t;
    cur = poly_mulmod(f, cur, x, monic);
  }
  return 0;
}

bool is_primitive(const GF2m& f, const PolyGF2m& g) {
  if (g.degree() < 1 || g.at(0) == 0) return false;
  const PolyGF2m monic = poly_make_monic(f, g);
  if (!is_irreducible(f, monic)) return false;
  std::uint64_t full = 1;
  for (int i = 0; i < g.degree(); ++i) full *= f.size();
  return order_of_x(f, monic) == full - 1;
}

std::optional<PolyGF2m> find_irreducible(const GF2m& f, unsigned k,
                                         bool primitive) {
  assert(k >= 1);
  // Enumerate monic degree-k polynomials by counting in base q over the
  // low k coefficients, requiring a non-zero constant term.
  const std::uint64_t q = f.size();
  std::uint64_t total = 1;
  for (unsigned i = 0; i < k; ++i) total *= q;
  for (std::uint64_t code = 1; code < total; ++code) {
    std::vector<Elem> c(k + 1, 0);
    std::uint64_t rest = code;
    for (unsigned i = 0; i < k; ++i) {
      c[i] = static_cast<Elem>(rest % q);
      rest /= q;
    }
    c[k] = 1;
    if (c[0] == 0) continue;
    PolyGF2m g(std::move(c));
    if (primitive ? is_primitive(f, g) : is_irreducible(f, g)) return g;
  }
  return std::nullopt;
}

std::string poly_to_string(const GF2m& f, const PolyGF2m& g, char var) {
  if (g.is_zero()) return "0";
  std::string out;
  for (std::size_t i = 0; i < g.coeffs.size(); ++i) {
    if (g.coeffs[i] == 0) continue;
    if (!out.empty()) out += " + ";
    const bool unit = g.coeffs[i] == 1;
    if (i == 0) {
      out += f.to_hex(g.coeffs[i]);
    } else {
      if (!unit) out += f.to_hex(g.coeffs[i]);
      out += var;
      if (i > 1) {
        out += '^';
        out += std::to_string(i);
      }
    }
  }
  return out;
}

}  // namespace prt::gf
