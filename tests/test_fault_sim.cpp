// Tests for the fault-simulation campaign driver (analysis/fault_sim).
#include "analysis/fault_sim.hpp"

#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"

namespace prt::analysis {
namespace {

TEST(Campaign, TalliesByClass) {
  std::vector<mem::Fault> universe;
  universe.push_back(mem::Fault::saf({0, 0}, 0));
  universe.push_back(mem::Fault::saf({1, 0}, 1));
  universe.push_back(mem::Fault::tf({2, 0}, true));
  CampaignOptions opt;
  opt.n = 8;
  // A "test" that detects everything.
  const CampaignResult r =
      run_campaign(universe, [](mem::Memory&) { return true; }, opt);
  EXPECT_EQ(r.overall.total, 3u);
  EXPECT_EQ(r.overall.detected, 3u);
  EXPECT_EQ(r.by_class.at(mem::FaultClass::kSaf).total, 2u);
  EXPECT_EQ(r.by_class.at(mem::FaultClass::kTf).total, 1u);
  EXPECT_TRUE(r.escapes.empty());
}

TEST(Campaign, RecordsEscapes) {
  std::vector<mem::Fault> universe;
  universe.push_back(mem::Fault::saf({0, 0}, 0));
  universe.push_back(mem::Fault::saf({1, 0}, 1));
  CampaignOptions opt;
  opt.n = 8;
  const CampaignResult r =
      run_campaign(universe, [](mem::Memory&) { return false; }, opt);
  EXPECT_EQ(r.overall.detected, 0u);
  EXPECT_EQ(r.escapes, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(r.overall.percent(), 0.0);
}

TEST(Campaign, EachRunGetsFreshMemory) {
  std::vector<mem::Fault> universe;
  universe.push_back(mem::Fault::saf({0, 0}, 1));
  universe.push_back(mem::Fault::saf({0, 0}, 1));
  CampaignOptions opt;
  opt.n = 4;
  int calls = 0;
  const CampaignResult r = run_campaign(
      universe,
      [&](mem::Memory& m) {
        ++calls;
        // Fresh memory: cell 1 must read 0 (prefilled), not whatever a
        // previous run wrote.
        EXPECT_EQ(m.read(1, 0), 0u);
        m.write(1, 1, 0);
        return true;
      },
      opt);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(r.overall.detected, 2u);
}

TEST(MarchAdapter, DetectsSafMissesNothingObvious) {
  const auto universe = mem::single_cell_universe(16, 1, false);
  CampaignOptions opt;
  opt.n = 16;
  const CampaignResult r =
      run_campaign(universe, march_algorithm(march::march_c_minus()), opt);
  // March C- covers SAF/TF/WDF-free... SAF and TF fully:
  EXPECT_DOUBLE_EQ(r.by_class.at(mem::FaultClass::kSaf).percent(), 100.0);
  EXPECT_DOUBLE_EQ(r.by_class.at(mem::FaultClass::kTf).percent(), 100.0);
}

TEST(PrtAdapter, StandardSchemeDetectsAllSafAndTf) {
  const auto universe = mem::single_cell_universe(24, 1, false);
  CampaignOptions opt;
  opt.n = 24;
  const CampaignResult r = run_campaign(
      universe, prt_algorithm(core::standard_scheme_bom(24)), opt);
  EXPECT_DOUBLE_EQ(r.by_class.at(mem::FaultClass::kSaf).percent(), 100.0);
  EXPECT_DOUBLE_EQ(r.by_class.at(mem::FaultClass::kTf).percent(), 100.0);
}

TEST(PrtAdapter, ExtendedSchemeDetectsWholeSingleCellUniverse) {
  const auto universe = mem::single_cell_universe(24, 1, true);
  CampaignOptions opt;
  opt.n = 24;
  const CampaignResult r = run_campaign(
      universe, prt_algorithm(core::extended_scheme_bom(24)), opt);
  EXPECT_DOUBLE_EQ(r.overall.percent(), 100.0);
}

TEST(PrtAdapter, PrefixTruncatesIterations) {
  const auto universe = mem::single_cell_universe(24, 1, false);
  CampaignOptions opt;
  opt.n = 24;
  const auto full = run_campaign(
      universe, prt_algorithm_prefix(core::standard_scheme_bom(24), 3), opt);
  const auto one = run_campaign(
      universe, prt_algorithm_prefix(core::standard_scheme_bom(24), 1), opt);
  EXPECT_GE(full.overall.detected, one.overall.detected);
  EXPECT_GT(one.overall.detected, 0u);
}

TEST(Coverage, PercentOfEmptyClassIs100) {
  ClassCoverage c;
  EXPECT_DOUBLE_EQ(c.percent(), 100.0);
}

TEST(CoverageTable, RendersAllAlgorithms) {
  const auto universe = mem::single_cell_universe(8, 1, false);
  CampaignOptions opt;
  opt.n = 8;
  std::vector<NamedResult> results;
  results.push_back(
      {"MATS+",
       run_campaign(universe, march_algorithm(march::mats_plus()), opt)});
  results.push_back(
      {"PRT-3",
       run_campaign(universe, prt_algorithm(core::standard_scheme_bom(8)),
                    opt)});
  const Table t = coverage_table(results);
  const std::string s = t.str();
  EXPECT_NE(s.find("MATS+"), std::string::npos);
  EXPECT_NE(s.find("PRT-3"), std::string::npos);
  EXPECT_NE(s.find("SAF"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  EXPECT_EQ(t.cols(), 4u);
}

}  // namespace
}  // namespace prt::analysis
