// Executes March tests against a Memory and reports detection.
//
// A March test detects a fault when any read returns a value different
// from the expected data.  For word-oriented memories the classic {0,1}
// data indices are expanded over a set of data backgrounds; the
// standard log2(m)+1 backgrounds (solid, checkerboard, double-stripe,
// ...) are provided.
//
// Campaign hot loops do not re-derive the element/address/op nesting
// per fault: make_march_transcript compiles one (test, n, background)
// golden run into a flat core::OpTranscript, and the replays —
// run_march_transcript (scalar, templated so the memory type
// devirtualizes) and the transcript run_march_packed (64 lanes) —
// stream through it.  Both are bit-identical to run_march, including
// the early-abort op accounting (stop at the first mismatching read,
// ops = everything issued up to and including it), which is what lets
// the packed path report per-lane abort ops analytically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/op_transcript.hpp"
#include "march/march_test.hpp"
#include "mem/memory.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt::march {

/// Virtual-time ticks a "Del" element advances by default — long
/// enough to out-wait every retention fault the universes inject.
/// Shared by every runner/compiler so the scalar, transcript and
/// background-sweep paths stay bit-identical.
inline constexpr std::uint64_t kDefaultDelayTicks = 100'000;

/// Outcome of one March run.
struct MarchResult {
  bool fail = false;          // any read mismatched
  std::uint64_t mismatches = 0;
  std::uint64_t ops = 0;      // reads + writes actually issued
  // First mismatch, valid when fail:
  mem::Addr first_addr = 0;
  mem::Word first_expected = 0;
  mem::Word first_actual = 0;
};

struct MarchRunOptions {
  /// Stop at the first mismatching read.  The fail verdict is
  /// unchanged (a March test detects iff any read deviates) but ops
  /// counts only what was actually issued — the abort-aware scalar
  /// reference the packed per-lane op accounting reproduces exactly.
  /// run_march_backgrounds additionally skips the remaining
  /// backgrounds after the first failing run.
  bool early_abort = false;
};

/// Runs `test` over the whole address space of `memory` with data
/// index 0 = `background`, index 1 = ~background.  Each "Del" element
/// advances the memory's virtual time by `delay_ticks` (data-retention
/// faults decay against that clock).
[[nodiscard]] MarchResult run_march(const MarchTest& test,
                                    mem::Memory& memory,
                                    mem::Word background = 0,
                                    std::uint64_t delay_ticks = kDefaultDelayTicks,
                                    const MarchRunOptions& options = {});

/// Runs the test once per background and merges the results (a fault is
/// detected if any background run fails).
[[nodiscard]] MarchResult run_march_backgrounds(
    const MarchTest& test, mem::Memory& memory,
    const std::vector<mem::Word>& backgrounds,
    const MarchRunOptions& options = {});

/// Compiles one (test, n, background-bit) March run into a flat op
/// transcript: one core::MarchSegment per element, records flattened
/// in traversal order with the data bit resolved against the
/// background.  Built once per campaign and replayed per fault.
[[nodiscard]] core::OpTranscript make_march_transcript(
    const MarchTest& test, mem::Addr n, bool background,
    std::uint64_t delay_ticks = kDefaultDelayTicks);

/// Verdict of a packed transcript March run at lane width
/// LaneTraits<W>::kLanes (mirrors core::PackedVerdictT).
template <typename W>
struct MarchPackedVerdictT {
  /// Lane L set means lane L's fault is detected.  Inspect single
  /// lanes through lane_detected() / mem::lane_test rather than
  /// shifting the raw word — the mask is width-generic.
  W detected{};
  /// Sum over the ram's active lanes of the ops a scalar
  /// run_march(FaultyRam, ..., {.early_abort}) would have issued for
  /// that lane's fault: everything up to and including the first
  /// mismatching read under early_abort, the full test otherwise.
  std::uint64_t scalar_ops = 0;

  /// Width-generic per-lane accessor: lane `lane`'s verdict.
  [[nodiscard]] bool lane_detected(unsigned lane) const {
    return mem::lane_test(detected, lane);
  }
  /// Number of detected lanes.
  [[nodiscard]] unsigned detected_count() const {
    return mem::lane_popcount(detected);
  }
};

using MarchPackedVerdict = MarchPackedVerdictT<mem::LaneWord>;

/// Replays a compiled March transcript bit-parallel over a
/// mem::PackedFaultRamT (one independent single-fault lane per word
/// bit): each write broadcasts the record's data bit to every lane and
/// each read compares every lane against the expected bit at once.
/// Per-lane semantics are identical to run_march(test,
/// FaultyRam-with-that-fault, background, delay, options) at every
/// lane width.  With early_abort, lanes retire as their mismatch
/// latches and the replay stops once every active lane is retired,
/// with per-lane op accounting identical to the scalar abort path.
/// Lanes beyond ram.lanes_used() never deviate, but callers should
/// still AND with ram.active_mask().
template <typename W>
[[nodiscard]] MarchPackedVerdictT<W> run_march_packed(
    mem::PackedFaultRamT<W>& ram, const core::OpTranscript& transcript,
    const MarchRunOptions& options = {});

extern template MarchPackedVerdictT<mem::LaneWord> run_march_packed(
    mem::PackedFaultRamT<mem::LaneWord>&, const core::OpTranscript&,
    const MarchRunOptions&);
extern template MarchPackedVerdictT<mem::WideWord<4>> run_march_packed(
    mem::PackedFaultRamT<mem::WideWord<4>>&, const core::OpTranscript&,
    const MarchRunOptions&);
extern template MarchPackedVerdictT<mem::WideWord<8>> run_march_packed(
    mem::PackedFaultRamT<mem::WideWord<8>>&, const core::OpTranscript&,
    const MarchRunOptions&);

/// Convenience overload compiling the transcript on the fly (one-shot
/// callers, tests): the detected mask of a full run without early
/// abort.
[[nodiscard]] std::uint64_t run_march_packed(
    const MarchTest& test, mem::PackedFaultRam& ram,
    bool background = false, std::uint64_t delay_ticks = kDefaultDelayTicks);

/// Scalar transcript replay: issues the exact operation stream of
/// run_march(memory, ...) for the compiled (test, n, background) and
/// returns an identical MarchResult — including mismatch counts,
/// first-mismatch bookkeeping and early-abort op accounting.  A
/// template so the concrete memory type's read/write devirtualize in
/// the campaign hot loop.
template <typename MemoryT>
[[nodiscard]] MarchResult run_march_transcript(
    MemoryT& memory, const core::OpTranscript& t,
    const MarchRunOptions& options = {}) {
  MarchResult result;
  for (const core::MarchSegment& seg : t.march) {
    if (seg.is_delay) {
      memory.advance_time(t.delay_ticks);
      continue;
    }
    const core::OpRec* r = t.recs.data() + seg.begin;
    const core::OpRec* const end = t.recs.data() + seg.end;
    const std::uint32_t period = seg.period;
    const std::uint32_t read_mask = seg.read_mask;
    while (r != end) {
      for (std::uint32_t j = 0; j < period; ++j, ++r) {
        if ((read_mask >> j) & 1U) {
          const mem::Word got = memory.read(r->addr, 0);
          ++result.ops;
          if (got != r->golden) {
            if (!result.fail) {
              result.first_addr = r->addr;
              result.first_expected = r->golden;
              result.first_actual = got;
            }
            result.fail = true;
            ++result.mismatches;
            if (options.early_abort) return result;
          }
        } else {
          memory.write(r->addr, r->golden, 0);
          ++result.ops;
        }
      }
    }
  }
  return result;
}

/// The standard data backgrounds for an m-bit word: solid 0,
/// checkerboard 0101.., double stripe 0011.., quad stripe 00001111..,
/// etc — ceil(log2(m)) + 1 words.  m = 1 yields just {0}.
[[nodiscard]] std::vector<mem::Word> standard_backgrounds(unsigned m);

}  // namespace prt::march
