// Reproduces Fig. 2 / §4 of the paper: the two-port PRT scheme issues
// both window reads simultaneously, cutting a pi-iteration from 3n
// single-port cycles to 2n ("the time complexity of a pi-test iteration
// for the analyzed schemes is equal 2n"), with quad-port variants
// reaching ~n.  Prints the measured cycle counts and benchmarks the
// schedulers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/prt_multiport.hpp"
#include "mem/sram.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;

core::PiTester wom_tester() {
  return core::PiTester(gf::GF2m(0b10011), {1, 2, 2});
}

void print_table() {
  std::printf("== Fig. 2 / §4: multi-port pi-iteration cycle counts ==\n");
  Table t({"n", "1P cycles", "2P cycles", "4P cycles", "4P 2xLFSR",
           "1P/2P", "1P/4P"});
  const core::PiTester tester = wom_tester();
  core::PiConfig cfg;
  cfg.init = {0, 1};
  for (mem::Addr n : {256u, 1024u, 4096u, 16384u}) {
    mem::SimRam r1(n, 4, 1);
    mem::SimRam r2(n, 4, 2);
    mem::SimRam r4(n, 4, 4);
    mem::SimRam r4b(n, 4, 4);
    const auto single = tester.run(r1, cfg);
    const auto dual = core::run_pi_dualport(r2, tester, cfg);
    const auto quad = core::run_pi_quadport(r4, tester, cfg);
    const auto multi = core::run_pi_multilfsr(r4b, tester, cfg);
    t.add(n, single.cycles(), dual.cycles, quad.cycles, multi.cycles,
          format_fixed(static_cast<double>(single.cycles()) /
                           static_cast<double>(dual.cycles),
                       3),
          format_fixed(static_cast<double>(single.cycles()) /
                           static_cast<double>(quad.cycles),
                       3));
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "\npaper: 1P = O(3n), 2P = 2n -> expected 1P/2P ratio 1.5; the\n"
      "quad-port single-LFSR scheme folds the write into the read cycle\n"
      "(ratio 3), the dual-LFSR variant halves the array per engine.\n\n");
}

void BM_DualPortIteration(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 4, 2);
  const core::PiTester tester = wom_tester();
  core::PiConfig cfg;
  cfg.init = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pi_dualport(ram, tester, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);  // cycles
}
BENCHMARK(BM_DualPortIteration)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_QuadPortIteration(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 4, 4);
  const core::PiTester tester = wom_tester();
  core::PiConfig cfg;
  cfg.init = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pi_quadport(ram, tester, cfg));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuadPortIteration)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_MultiLfsrIteration(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 4, 4);
  const core::PiTester tester = wom_tester();
  core::PiConfig cfg;
  cfg.init = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pi_multilfsr(ram, tester, cfg));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultiLfsrIteration)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
