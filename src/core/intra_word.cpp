#include "core/intra_word.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace prt::core {

namespace {

gf::GF2m gf2() { return gf::GF2m(0b11); }

}  // namespace

std::vector<gf::Elem> plane_init(const std::vector<gf::Elem>& plane_g,
                                 unsigned plane) {
  lfsr::WordLfsr model(gf2(), plane_g);
  const unsigned k = model.k();
  // Non-degenerate base state 0...01 advanced by `plane` steps.
  std::vector<gf::Elem> base(k, 0);
  base.back() = 1;
  model.seed(base);
  for (unsigned s = 0; s < plane; ++s) model.step();
  return {model.state().begin(), model.state().end()};
}

IntraWordResult run_intra_word(mem::Memory& memory,
                               const IntraWordConfig& config) {
  const unsigned m = memory.width();
  assert(m >= 2);
  const mem::Addr n = memory.size();
  lfsr::WordLfsr plane_model(gf2(), config.plane_g);
  const unsigned k = plane_model.k();
  assert(n > k);

  IntraWordResult result;
  result.fin.assign(m, 0);
  result.fin_expected.assign(m, 0);

  // Expected per-plane Fin: plane automaton advanced n - k steps.
  for (unsigned b = 0; b < m; ++b) {
    lfsr::WordLfsr model(gf2(), config.plane_g);
    const auto init = plane_init(config.plane_g, b);
    model.seed(init);
    model.jump(n - k);
    std::uint32_t packed = 0;
    for (unsigned j = 0; j < k; ++j) {
      packed |= static_cast<std::uint32_t>(model.state()[j]) << j;
    }
    result.fin_expected[b] = packed;
  }

  if (config.mode == IntraWordMode::kParallelTrajectories) {
    // One shared trajectory; each access is word-wide, feedback applied
    // bitwise (all plane automatons share g, so the word feedback is
    // just the GF(2) combination applied per bit-plane in parallel).
    const Trajectory traj =
        Trajectory::make(config.trajectory, n, config.seed);
    // Word-wide init values: bit b of word j is plane b's init[j].
    for (unsigned j = 0; j < k; ++j) {
      mem::Word w = 0;
      for (unsigned b = 0; b < m; ++b) {
        w |= static_cast<mem::Word>(plane_init(config.plane_g, b)[j]) << b;
      }
      memory.write(traj.at(j), w, 0);
      ++result.writes;
    }
    std::vector<mem::Word> window(k);
    for (mem::Addr q = 0; q + k < n; ++q) {
      for (unsigned j = 0; j < k; ++j) {
        window[j] = memory.read(traj.at(q + j), 0);
        ++result.reads;
      }
      mem::Word fb = 0;
      for (unsigned j = 1; j <= k; ++j) {
        if (config.plane_g[j]) fb ^= window[k - j];
      }
      memory.write(traj.at(q + k), fb, 0);
      ++result.writes;
    }
    for (unsigned j = 0; j < k; ++j) {
      const mem::Word w = memory.read(traj.at(n - k + j), 0);
      ++result.reads;
      for (unsigned b = 0; b < m; ++b) {
        result.fin[b] |= static_cast<std::uint32_t>((w >> b) & 1U) << j;
      }
    }
  } else {
    // Independent trajectories: plane b sweeps its own permutation with
    // masked read-modify-write accesses (the programmable-trajectory
    // hardware of §2).
    for (unsigned b = 0; b < m; ++b) {
      const Trajectory traj = Trajectory::make(
          TrajectoryKind::kRandom, n,
          config.seed + 0x9e3779b97f4a7c15ULL * (b + 1));
      const auto init = plane_init(config.plane_g, b);
      const mem::Word mask = mem::Word{1} << b;
      auto write_bit = [&](mem::Addr a, unsigned bit) {
        const mem::Word old = memory.read(a, 0);
        ++result.reads;
        memory.write(a, bit ? (old | mask) : (old & ~mask), 0);
        ++result.writes;
      };
      auto read_bit = [&](mem::Addr a) -> unsigned {
        const mem::Word w = memory.read(a, 0);
        ++result.reads;
        return (w >> b) & 1U;
      };
      for (unsigned j = 0; j < k; ++j) write_bit(traj.at(j), init[j]);
      std::vector<unsigned> window(k);
      for (mem::Addr q = 0; q + k < n; ++q) {
        for (unsigned j = 0; j < k; ++j) window[j] = read_bit(traj.at(q + j));
        unsigned fb = 0;
        for (unsigned j = 1; j <= k; ++j) {
          if (config.plane_g[j]) fb ^= window[k - j];
        }
        write_bit(traj.at(q + k), fb);
      }
      std::uint32_t packed = 0;
      for (unsigned j = 0; j < k; ++j) {
        packed |= static_cast<std::uint32_t>(read_bit(traj.at(n - k + j)))
                  << j;
      }
      result.fin[b] = packed;
    }
  }

  result.pass = result.fin == result.fin_expected;
  return result;
}

}  // namespace prt::core
