// Fault-simulation campaign driver.
//
// A campaign instantiates one FaultyRam per fault in a universe, runs a
// test algorithm against it, and tallies detection per fault class.
// This is the empirical machinery behind the paper's §3 coverage claim
// and behind every coverage table in bench/.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/prt_engine.hpp"
#include "march/march_runner.hpp"
#include "mem/fault_injector.hpp"
#include "util/stop_token.hpp"

namespace prt::analysis {

/// A test algorithm under evaluation: runs against the (faulty) memory
/// and returns true when it flags the memory as bad.
using TestAlgorithm = std::function<bool(mem::Memory&)>;

struct ClassCoverage {
  std::uint64_t detected = 0;
  std::uint64_t total = 0;
  [[nodiscard]] double percent() const {
    return total == 0 ? 100.0 : 100.0 * static_cast<double>(detected) /
                                    static_cast<double>(total);
  }
  bool operator==(const ClassCoverage&) const = default;
};

/// Scheduling/width telemetry of one campaign run — how the work was
/// *executed*, never what it computed.  Unlike the dispatch tallies
/// below, these fields depend on the partition, the thread count and
/// timing (steals), so they are excluded from CampaignResult's
/// equality: the parity suites compare whole results across widths and
/// thread counts, and the guarantee is that everything *else* is
/// bit-identical.
struct SchedTelemetry {
  /// Scheduler batches that completed (1 for an inline run).
  std::uint64_t batches = 0;
  /// Batches executed by a worker outside its home range
  /// (util::StealCounters::steals); 0 for inline runs.
  std::uint64_t steals = 0;
  /// Packed faults that rode a wider-than-64 lane word.  <=
  /// packed_faults; 0 when wide dispatch never engaged (narrow build,
  /// lane_width = 64, or every batch fell back).
  std::uint64_t wide_faults = 0;
  /// Widest lane word any batch of the run used (64 when packing never
  /// went wide; 0 when nothing ran packed).
  unsigned max_lanes = 0;
};

struct CampaignResult {
  std::map<mem::FaultClass, ClassCoverage> by_class;
  ClassCoverage overall;
  /// Indices (into the universe) of undetected faults, for debugging
  /// and for the TDB search.
  std::vector<std::size_t> escapes;
  /// Memory operations (reads + writes) the test issued summed over
  /// every fault's run — the campaign-level cost figure early-abort
  /// shrinks (analysis/campaign_engine).
  std::uint64_t ops = 0;
  /// Dispatch tallies: faults that rode a packed lane batch vs the
  /// scalar per-fault path.  packed_faults + scalar_faults ==
  /// overall.total; a fully lane-compatible universe on a packed
  /// engine has scalar_faults == 0 (the bench asserts exactly that via
  /// its packed_fraction field).  Verdict-neutral telemetry — the
  /// parity suites compare verdict fields only, since the whole point
  /// of packing is that the split never changes the result.
  std::uint64_t packed_faults = 0;
  std::uint64_t scalar_faults = 0;
  /// Execution telemetry (batches, steals, lane widths) — NOT part of
  /// equality, see SchedTelemetry.
  SchedTelemetry sched;

  /// Everything except `sched`: the fields the bit-identical-at-any-
  /// thread-count-and-lane-width guarantee covers.
  bool operator==(const CampaignResult& o) const {
    return by_class == o.by_class && overall == o.overall &&
           escapes == o.escapes && ops == o.ops &&
           packed_faults == o.packed_faults &&
           scalar_faults == o.scalar_faults;
  }
};

struct CampaignOptions {
  mem::Addr n = 64;
  unsigned m = 1;
  unsigned ports = 1;
  // Every run starts from an all-zero array (deterministic start; a
  // real power-up state is unknown, but every algorithm under test
  // writes each cell before reading it back, so the fill only pins
  // down the "previous value" seen by first-write transitions).
};

/// How a stoppable campaign run ended.  kComplete means every shard
/// ran to completion — even if a stop arrived after the last shard
/// finished, the result covers the whole universe and is bit-identical
/// to an uninterrupted run.
enum class RunStatus : std::uint8_t {
  kComplete,
  kCancelled,
  kDeadlineExpired,
};

[[nodiscard]] constexpr RunStatus status_from(util::StopReason reason) {
  switch (reason) {
    case util::StopReason::kCancelled:
      return RunStatus::kCancelled;
    case util::StopReason::kStalled:
      // From the run's perspective a watchdog-stalled attempt is a
      // cancellation — the distinction (who pulled the token and why)
      // lives at the service layer, which retries the attempt.
      return RunStatus::kCancelled;
    case util::StopReason::kDeadline:
      return RunStatus::kDeadlineExpired;
    case util::StopReason::kNone:
      break;
  }
  return RunStatus::kComplete;
}

/// Outcome of a stoppable campaign run: the merge of every shard that
/// completed before the stop was observed.  Interrupted shards are
/// discarded whole — `result` is always an exact tally over the union
/// of the completed shards' (contiguous, ascending) index ranges, so a
/// partial result is trustworthy for the faults it covers and
/// `escapes` stays ascending.
struct CampaignOutcome {
  RunStatus status = RunStatus::kComplete;
  CampaignResult result;
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  [[nodiscard]] bool complete() const {
    return status == RunStatus::kComplete;
  }
};

/// Central geometry validation, shared by every campaign entry point
/// (the unified driver behind CampaignEngine / MarchCampaign /
/// CampaignSuite, and run_campaign below).  Throws
/// std::invalid_argument — before any worker thread or memory is
/// constructed — unless n >= 1, 1 <= m <= 32 (the SimRam word width)
/// and ports is 1, 2 or 4 (the per-port state arrays).
void validate_campaign_options(const CampaignOptions& opt);

/// Folds shard results produced over contiguous ascending fault-index
/// ranges back into one CampaignResult, in shard order — the merge
/// that makes every parallel campaign path bit-identical to the serial
/// one (campaign drivers and CampaignSuite both fold through this).
[[nodiscard]] CampaignResult merge_results(
    std::span<const CampaignResult> shards);

/// Runs `test` once per fault; each run sees a freshly reset memory
/// with exactly that fault injected.  Serial by construction (the
/// TestAlgorithm may capture mutable state); PRT-scheme campaigns
/// should prefer the oracle-backed, parallel CampaignEngine
/// (analysis/campaign_engine.hpp), which produces identical results.
[[nodiscard]] CampaignResult run_campaign(
    std::span<const mem::Fault> universe, const TestAlgorithm& test,
    const CampaignOptions& opt);

// --- adapters -------------------------------------------------------

/// March test with the standard backgrounds for the memory width.
[[nodiscard]] TestAlgorithm march_algorithm(march::MarchTest test);

/// PRT scheme (all iterations).  The returned algorithm memoizes a
/// PrtOracle per memory size, so even legacy run_campaign call sites
/// derive each scheme's trajectories/golden sequences once per
/// campaign instead of once per fault.
[[nodiscard]] TestAlgorithm prt_algorithm(core::PrtScheme scheme);

/// PRT scheme truncated to its first `iterations` iterations — the
/// coverage-vs-iterations sweep of the §3 claim.  Throws
/// std::invalid_argument unless 1 <= iterations <= the scheme's
/// iteration count.
[[nodiscard]] TestAlgorithm prt_algorithm_prefix(core::PrtScheme scheme,
                                                 std::size_t iterations);

}  // namespace prt::analysis
