// Reproduces the §4 hardware-overhead claim: "The ponder of the
// hardware overhead in comparison with the memory capacity is of an
// order < 2^-20."  The transistor-count model (core/hw_overhead)
// counts the address-register-to-counter conversion, window registers,
// the synthesized XOR feedback network, the Init/Fin comparator and a
// small control FSM against the 6T cell array.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/hw_overhead.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;

void print_tables() {
  std::printf("== §4 overhead ratio vs memory capacity ==\n");
  Table t({"capacity (bits)", "m", "g(x)", "BIST transistors",
           "cell transistors", "ratio", "< 2^-20"});
  t.set_align(2, Align::kLeft);

  struct Config {
    unsigned m;
    gf::Poly2 p;
    std::vector<gf::Elem> g;
    const char* gname;
  };
  const std::vector<Config> configs{
      {1, 0b11, {1, 1, 1}, "1+x+x^2"},
      {4, 0b10011, {1, 2, 2}, "1+2x+2x^2 (paper)"},
      {8, 0, {1, 2, 3}, "1+2x+3x^2"},
      {16, 0, {1, 2, 3}, "1+2x+3x^2"},
  };
  for (const Config& cfg : configs) {
    const gf::GF2m field(cfg.p != 0 ? cfg.p : gf::first_primitive(cfg.m));
    for (unsigned log_bits : {20u, 24u, 28u, 30u}) {
      const std::uint64_t bits = std::uint64_t{1} << log_bits;
      const std::uint64_t n = bits / cfg.m;
      const core::OverheadReport r =
          core::estimate_overhead(field, cfg.g, n, /*ports=*/2);
      t.add("2^" + std::to_string(log_bits), cfg.m, cfg.gname,
            r.bist_total(), r.memory_transistors,
            format_pow2_ratio(r.ratio()),
            r.ratio() < std::pow(2.0, -20.0));
    }
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("== overhead breakdown (m = 4, paper generator, 256Mb) ==\n");
  const gf::GF2m f4(0b10011);
  const core::OverheadReport r =
      core::estimate_overhead(f4, {1, 2, 2}, (std::uint64_t{1} << 28) / 4,
                              /*ports=*/2);
  Table b({"component", "transistors"});
  b.set_align(0, Align::kLeft);
  b.add("address counters (2 ports)", r.counter_transistors);
  b.add("window registers (k*m DFF)", r.window_transistors);
  b.add("feedback XOR network", r.feedback_transistors);
  b.add("Init/Fin comparator", r.comparator_transistors);
  b.add("control FSM", r.control_transistors);
  b.add("TOTAL BIST", r.bist_total());
  std::printf("%s\n", b.str().c_str());
}

void BM_OverheadEstimate(benchmark::State& state) {
  const gf::GF2m field(0b10011);
  const std::vector<gf::Elem> g{1, 2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_overhead(field, g, 1 << 26, 2));
  }
}
BENCHMARK(BM_OverheadEstimate);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
