// Synthesis of multiplication-by-a-constant circuits in GF(2^m).
//
// Multiplying a field element x by a fixed constant c is a GF(2)-linear
// map, so it is described by an m x m binary matrix and realizable with
// XOR gates only.  The paper relies on exactly this ("Multiplier by a
// constant contains only XOR-gates and can be implemented inherently in
// the memory circuit") and proposes an algorithm for an optimal scheme;
// we provide a naive row-by-row synthesis and a greedy
// common-subexpression-elimination optimizer (Paar's algorithm), plus
// an evaluator so synthesized networks are verified against field
// arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/matrix_gf2.hpp"

namespace prt::gf {

/// A combinational XOR network.  Signals 0..inputs-1 are the primary
/// inputs; gate i (two fan-ins) defines signal inputs+i.  outputs[r] is
/// the signal driving output bit r; kGroundSignal denotes constant 0.
struct XorNetwork {
  static constexpr std::uint32_t kGroundSignal = 0xffffffffU;

  struct Gate {
    std::uint32_t a;
    std::uint32_t b;
  };

  std::uint32_t inputs = 0;
  std::vector<Gate> gates;
  std::vector<std::uint32_t> outputs;

  [[nodiscard]] std::size_t gate_count() const { return gates.size(); }

  /// Longest input-to-output path measured in XOR gates.
  [[nodiscard]] unsigned depth() const;

  /// Evaluates the network on the packed input word (bit i = input i).
  [[nodiscard]] std::uint64_t eval(std::uint64_t in) const;
};

/// The m x m GF(2) matrix of the map x -> c * x in the given field
/// (column j is c * z^j in the polynomial basis).
[[nodiscard]] MatrixGF2 multiplier_matrix(const GF2m& field, Elem c);

/// Synthesizes any GF(2)-linear map (rows x cols matrix) as an XOR
/// network, one balanced XOR tree per output row, no sharing.
[[nodiscard]] XorNetwork synthesize_naive(const MatrixGF2& matrix);

/// Greedy common-subexpression elimination (Paar): repeatedly
/// materializes the signal pair co-occurring in the most rows.  Always
/// produces a network with gate count <= the naive one.
[[nodiscard]] XorNetwork synthesize_cse(const MatrixGF2& matrix);

/// Gate counts for the full PRT feedback function
/// w = sum_j g_j * r_j over GF(2^m) with k coefficient multipliers:
/// the multipliers (CSE-optimized) plus (k-1) word-wide XOR adders.
struct FeedbackCost {
  std::size_t multiplier_gates = 0;
  std::size_t adder_gates = 0;
  [[nodiscard]] std::size_t total() const {
    return multiplier_gates + adder_gates;
  }
};

[[nodiscard]] FeedbackCost feedback_cost(const GF2m& field,
                                         const std::vector<Elem>& coeffs);

}  // namespace prt::gf
