#include "core/pi_iteration.hpp"

#include <algorithm>
#include <cassert>

namespace prt::core {

PiTester::PiTester(gf::GF2m field, std::vector<gf::Elem> g)
    : lfsr_(std::move(field), std::move(g)) {}

void PiTester::enable_misr(gf::Poly2 poly) {
  assert(poly_degree(poly) >= static_cast<int>(field().m()));
  misr_poly_ = poly;
}

std::vector<gf::Elem> PiTester::expected_fin(
    mem::Addr n, std::span<const gf::Elem> init) const {
  assert(n > k());
  lfsr::WordLfsr model = lfsr_;
  model.seed(init);
  model.jump(n - k());
  return {model.state().begin(), model.state().end()};
}

std::vector<gf::Elem> PiTester::expected_image(mem::Addr n,
                                               const PiConfig& config) const {
  assert(config.init.size() == k());
  lfsr::WordLfsr model = lfsr_;
  model.seed(config.init);
  const std::vector<gf::Elem> seq = model.sequence(n);
  const Trajectory traj =
      Trajectory::make(config.trajectory, n, config.seed);
  std::vector<gf::Elem> image(n, 0);
  for (mem::Addr q = 0; q < n; ++q) image[traj.at(q)] = seq[q];
  return image;
}

bool PiTester::ring_closes(mem::Addr n) const {
  assert(n > k());
  return (n - k()) % period() == 0;
}

PiResult PiTester::run(mem::Memory& memory, const PiConfig& config) const {
  const mem::Addr n = memory.size();
  const unsigned kk = k();
  assert(memory.width() == field().m());
  assert(n > kk);
  assert(config.init.size() == kk);

  const Trajectory traj = Trajectory::make(config.trajectory, n, config.seed);
  PiResult result;
  lfsr::Misr misr(misr_poly_ != 0 ? misr_poly_ : gf::Poly2{0b111});
  lfsr::Misr misr_golden = misr;

  // Model for the expected read stream (fault-free sequence values).
  lfsr::WordLfsr model = lfsr_;
  model.seed(config.init);
  const std::vector<gf::Elem> golden = model.sequence(n);

  // Initialization: write d0..d_{k-1} into the first k visited cells.
  for (unsigned j = 0; j < kk; ++j) {
    memory.write(traj.at(j), config.init[j], 0);
    ++result.writes;
  }

  // Sweep: window reads + feedback write (Eq. 1).
  std::vector<gf::Elem> window(kk);
  for (mem::Addr q = 0; q + kk < n; ++q) {
    for (unsigned j = 0; j < kk; ++j) {
      const mem::Word raw = memory.read(traj.at(q + j), 0);
      window[j] = static_cast<gf::Elem>(raw);
      ++result.reads;
      if (misr_poly_ != 0) {
        misr.shift(raw);
        misr_golden.shift(golden[q + j]);
      }
    }
    const gf::Elem fb = lfsr_.feedback(window);
    memory.write(traj.at(q + kk), fb, 0);
    ++result.writes;
  }

  // Verdict: read back the last k visited cells as the observed Fin,
  // and re-read the Init cells (paper §2: "comparing initial Init and
  // final Fin states") — the latter catches seed-cell corruptions that
  // happen after their only sweep read.
  result.fin.resize(kk);
  for (unsigned j = 0; j < kk; ++j) {
    const mem::Word raw = memory.read(traj.at(n - kk + j), 0);
    result.fin[j] = static_cast<gf::Elem>(raw);
    ++result.reads;
    if (misr_poly_ != 0) {
      misr.shift(raw);
      misr_golden.shift(golden[n - kk + j]);
    }
  }
  result.init_readback.resize(kk);
  for (unsigned j = 0; j < kk; ++j) {
    const mem::Word raw = memory.read(traj.at(j), 0);
    result.init_readback[j] = static_cast<gf::Elem>(raw);
    ++result.reads;
    if (misr_poly_ != 0) {
      misr.shift(raw);
      misr_golden.shift(golden[j]);
    }
  }
  result.fin_expected = expected_fin(n, config.init);
  result.pass = result.fin == result.fin_expected &&
                std::equal(result.init_readback.begin(),
                           result.init_readback.end(), config.init.begin());

  if (config.verify_pass) {
    if (config.pause_ticks != 0) memory.advance_time(config.pause_ticks);
    const std::vector<gf::Elem> image = expected_image(n, config);
    for (mem::Addr a = 0; a < n; ++a) {
      const mem::Word raw = memory.read(a, 0);
      ++result.reads;
      if (static_cast<gf::Elem>(raw) != image[a]) {
        ++result.verify_mismatches;
      }
    }
    result.pass = result.pass && result.verify_mismatches == 0;
  }
  if (misr_poly_ != 0) {
    result.misr = misr.state();
    result.misr_expected = misr_golden.state();
    result.misr_pass = result.misr == result.misr_expected;
  }
  return result;
}

}  // namespace prt::core
