#include "lfsr/lfsr.hpp"

#include <algorithm>
#include <cassert>

namespace prt::lfsr {

WordLfsr::WordLfsr(gf::GF2m field, std::vector<gf::Elem> g)
    : field_(std::move(field)), g_(std::move(g)) {
  assert(g_.size() >= 2);
  assert(g_.front() != 0 && "g0 must be non-zero (x must be invertible)");
  assert(g_.back() != 0 && "gk must be non-zero (degree must be k)");
  for (gf::Elem c : g_) {
    assert(c < field_.size());
    (void)c;
  }
  state_.assign(k(), 0);
  if (!state_.empty()) state_.back() = 1;  // default non-degenerate seed
}

void WordLfsr::seed(std::span<const gf::Elem> seed) {
  assert(seed.size() == k());
  state_.assign(seed.begin(), seed.end());
}

gf::Elem WordLfsr::feedback(std::span<const gf::Elem> window) const {
  assert(window.size() == k());
  gf::Elem acc = 0;
  // s[t+k] = sum_{j=1..k} g[j] * s[t+k-j]; window is oldest-first so
  // s[t+k-j] = window[k-j].
  for (unsigned j = 1; j <= k(); ++j) {
    acc = field_.add(acc, field_.mul(g_[j], window[k() - j]));
  }
  return acc;
}

gf::Elem WordLfsr::step() {
  const gf::Elem next = feedback(state_);
  std::rotate(state_.begin(), state_.begin() + 1, state_.end());
  state_.back() = next;
  return next;
}

std::vector<gf::Elem> WordLfsr::sequence(std::size_t n) {
  std::vector<gf::Elem> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && i < state_.size(); ++i) {
    out.push_back(state_[i]);
  }
  while (out.size() < n) out.push_back(step());
  return out;
}

std::optional<std::uint64_t> WordLfsr::cycle_length(std::uint64_t cap) const {
  WordLfsr probe = *this;
  const std::vector<gf::Elem> start = probe.state_;
  for (std::uint64_t t = 1; t <= cap; ++t) {
    probe.step();
    if (probe.state_ == start) return t;
  }
  return std::nullopt;
}

std::uint64_t WordLfsr::algebraic_period() const {
  return gf::order_of_x(field_, gf::PolyGF2m(g_));
}

std::uint64_t WordLfsr::max_period() const {
  std::uint64_t p = 1;
  for (unsigned i = 0; i < k(); ++i) p *= field_.size();
  return p - 1;
}

bool WordLfsr::is_irreducible() const {
  return gf::is_irreducible(field_, gf::PolyGF2m(g_));
}

bool WordLfsr::is_primitive() const {
  return gf::is_primitive(field_, gf::PolyGF2m(g_));
}

gf::MatrixGF2 WordLfsr::transition_matrix_gf2() const {
  const unsigned mk = m() * k();
  assert(mk <= 64 && "packed state must fit one word");
  gf::MatrixGF2 t(mk, mk);
  // One step maps (s0,...,s_{k-1}) to (s1,...,s_{k-1}, f(s)).  Build the
  // matrix column-by-column from the action on basis states.
  for (unsigned col = 0; col < mk; ++col) {
    WordLfsr probe = *this;
    std::vector<gf::Elem> basis(k(), 0);
    basis[col / m()] = gf::Elem{1} << (col % m());
    probe.seed(basis);
    probe.step();
    const std::uint64_t image = pack_state(probe.state_);
    for (unsigned row = 0; row < mk; ++row) {
      if ((image >> row) & 1U) t.set(row, col, true);
    }
  }
  return t;
}

void WordLfsr::jump(std::uint64_t t) {
  const gf::MatrixGF2 step_t = transition_matrix_gf2().pow(t);
  const std::uint64_t image = step_t.mul_vec64(pack_state(state_));
  state_ = unpack_state(image);
}

std::uint64_t WordLfsr::pack_state(std::span<const gf::Elem> s) const {
  assert(s.size() == k() && m() * k() <= 64);
  std::uint64_t bits = 0;
  for (unsigned j = 0; j < k(); ++j) {
    bits |= static_cast<std::uint64_t>(s[j]) << (j * m());
  }
  return bits;
}

std::vector<gf::Elem> WordLfsr::unpack_state(std::uint64_t bits) const {
  std::vector<gf::Elem> s(k());
  const std::uint64_t mask = (std::uint64_t{1} << m()) - 1;
  for (unsigned j = 0; j < k(); ++j) {
    s[j] = static_cast<gf::Elem>((bits >> (j * m())) & mask);
  }
  return s;
}

WordLfsr fig1a_bom_lfsr() {
  return WordLfsr(gf::GF2m(0b11 /* z + 1: GF(2) */),
                  std::vector<gf::Elem>{1, 1, 1});
}

WordLfsr fig1b_wom_lfsr() {
  return WordLfsr(gf::GF2m(0b10011 /* z^4 + z + 1 */),
                  std::vector<gf::Elem>{1, 2, 2});
}

}  // namespace prt::lfsr
