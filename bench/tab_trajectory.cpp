// Reproduces the §2/§3 trajectory-control claims:
//  * the LFSR trajectory (ascending / descending / random) is a test
//    control factor — measured here as coverage of adjacent coupling
//    faults per trajectory choice;
//  * intra-word faults are tested "by parallel application of a
//    pi-testing for BOM ... with (1) parallel or (2) random
//    trajectories" — both modes are measured on an intra-word fault
//    universe.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/fault_sim.hpp"
#include "core/intra_word.hpp"
#include "mem/fault_universe.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;
using analysis::CampaignOptions;

void print_direction_table() {
  std::printf(
      "== coupling-fault coverage per trajectory (single pi-iteration, "
      "solid-1 background over zeroed array) ==\n");
  const mem::Addr n = 64;
  // Ordered adjacent CFin pairs, both orientations.
  std::vector<mem::Fault> universe;
  for (mem::Addr c = 0; c + 1 < n; ++c) {
    universe.push_back(mem::Fault::cf_in({c, 0}, {c + 1, 0}));
    universe.push_back(mem::Fault::cf_in({c + 1, 0}, {c, 0}));
  }
  CampaignOptions opt;
  opt.n = n;

  Table t({"trajectory", "aggressor = victim+1 %", "aggressor = victim-1 %",
           "total %"});
  t.set_align(0, Align::kLeft);
  for (auto traj :
       {core::TrajectoryKind::kAscending, core::TrajectoryKind::kDescending,
        core::TrajectoryKind::kRandom}) {
    core::PrtScheme s;
    s.field_modulus = 0b11;
    core::SchemeIteration it;
    it.g = {1, 0, 1};
    it.config.init = {1, 1};
    it.config.trajectory = traj;
    it.config.seed = 7;
    s.iterations = {it};
    const auto algo = analysis::prt_algorithm(s);

    std::uint64_t det_up = 0, det_down = 0;
    const std::uint64_t half = universe.size() / 2;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      mem::FaultyRam ram(n, 1);
      ram.inject(universe[i]);
      const bool detected = algo(ram);
      // Even indices: aggressor above victim; odd: below.
      if (detected) (i % 2 == 0 ? det_up : det_down) += 1;
    }
    t.add(core::to_string(traj),
          format_fixed(100.0 * static_cast<double>(det_up) /
                           static_cast<double>(half), 1),
          format_fixed(100.0 * static_cast<double>(det_down) /
                           static_cast<double>(half), 1),
          format_fixed(100.0 * static_cast<double>(det_up + det_down) /
                           static_cast<double>(universe.size()), 1));
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "\nshape: the within-sweep detection window sits one position\n"
      "*after* the victim, so ascending catches aggressor = victim+1,\n"
      "descending the mirror, and a random permutation splits both at\n"
      "roughly half each (plus boundary windows).\n\n");
}

void print_intra_word_table() {
  std::printf("== §2 intra-word testing: parallel vs random trajectories ==\n");
  const mem::Addr n = 64;
  const unsigned m = 8;
  mem::UniverseOptions uopt;
  uopt.single_cell = false;
  uopt.read_logic = false;
  uopt.coupling = true;
  uopt.bridges = false;
  uopt.address_decoder = false;
  uopt.coupling_pair_limit = 0;  // no inter-cell pairs
  uopt.intra_word = true;
  const auto universe = mem::make_universe(n, m, uopt);

  Table t({"mode", "word ops", "intra-word coverage %"});
  t.set_align(0, Align::kLeft);
  for (auto mode : {core::IntraWordMode::kParallelTrajectories,
                    core::IntraWordMode::kRandomTrajectories}) {
    std::uint64_t detected = 0;
    std::uint64_t ops = 0;
    for (const mem::Fault& f : universe) {
      mem::FaultyRam ram(n, m);
      ram.inject(f);
      core::IntraWordConfig cfg;
      cfg.mode = mode;
      cfg.seed = 5;
      const auto r = core::run_intra_word(ram, cfg);
      detected += r.pass ? 0 : 1;
      ops = r.reads + r.writes;
    }
    t.add(mode == core::IntraWordMode::kParallelTrajectories
              ? "parallel trajectories"
              : "random (independent) trajectories",
          ops,
          format_fixed(100.0 * static_cast<double>(detected) /
                           static_cast<double>(universe.size()), 1));
  }
  std::printf("%s\n", t.str().c_str());
}

void BM_IntraWordParallel(benchmark::State& state) {
  mem::SimRam ram(static_cast<mem::Addr>(state.range(0)), 8);
  core::IntraWordConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_intra_word(ram, cfg));
  }
}
BENCHMARK(BM_IntraWordParallel)->Arg(1 << 10)->Arg(1 << 14);

void BM_IntraWordRandom(benchmark::State& state) {
  mem::SimRam ram(static_cast<mem::Addr>(state.range(0)), 8);
  core::IntraWordConfig cfg;
  cfg.mode = core::IntraWordMode::kRandomTrajectories;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_intra_word(ram, cfg));
  }
}
BENCHMARK(BM_IntraWordRandom)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

int main(int argc, char** argv) {
  print_direction_table();
  print_intra_word_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
