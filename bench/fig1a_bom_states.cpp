// Reproduces Fig. 1a of the paper: the expected states of bit-oriented
// memory cells after a pi-test iteration with g(x) = 1 + x + x^2 over
// GF(2), and the ring closure when the automaton advances a whole
// number of periods.  Also benchmarks single-port BOM pi-iteration
// throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pi_iteration.hpp"
#include "mem/sram.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;

core::PiTester bom_tester() {
  return core::PiTester(gf::GF2m(0b11), {1, 1, 1});
}

void print_figure() {
  std::printf(
      "== Fig. 1a: pi-test iteration on a BOM, g(x) = 1 + x + x^2 ==\n");
  const core::PiTester tester = bom_tester();
  std::printf("LFSR period: %llu (primitive: %s)\n",
              static_cast<unsigned long long>(tester.period()),
              tester.g().size() == 3 ? "yes" : "?");

  for (const auto& init : {std::vector<gf::Elem>{1, 1},
                           std::vector<gf::Elem>{0, 1}}) {
    mem::SimRam ram(11, 1);
    core::PiConfig cfg;
    cfg.init = init;
    const core::PiResult r = tester.run(ram, cfg);
    std::printf("Init = (%u,%u)  memory image:", init[0], init[1]);
    for (mem::Addr a = 0; a < ram.size(); ++a) {
      std::printf(" %u", ram.peek(a));
    }
    std::printf("  Fin = (%u,%u)  Fin* = (%u,%u)  %s\n", r.fin[0], r.fin[1],
                r.fin_expected[0], r.fin_expected[1],
                r.pass ? "PASS" : "FAIL");
  }

  // Ring closure: (n - k) multiple of the period 3.
  Table t({"n", "(n-2) mod 3", "ring closes", "Fin == Init"});
  for (mem::Addr n : {5u, 6u, 7u, 8u, 11u, 32u, 3074u}) {
    mem::SimRam ram(n, 1);
    core::PiConfig cfg;
    cfg.init = {0, 1};
    const core::PiResult r = tester.run(ram, cfg);
    t.add(n, (n - 2) % 3, tester.ring_closes(n),
          r.fin == cfg.init);
  }
  std::printf("\n%s\n", t.str().c_str());
}

void BM_PiIterationBom(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 1);
  const core::PiTester tester = bom_tester();
  core::PiConfig cfg;
  cfg.init = {1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tester.run(ram, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);  // ops per run
}
BENCHMARK(BM_PiIterationBom)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_ExpectedFinJumpAhead(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  const core::PiTester tester = bom_tester();
  const std::vector<gf::Elem> init{1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tester.expected_fin(n, init));
  }
}
BENCHMARK(BM_ExpectedFinJumpAhead)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
