// Tests for the MISR response compactor (lfsr/misr).
#include "lfsr/misr.hpp"

#include <gtest/gtest.h>

namespace prt::lfsr {
namespace {

TEST(Misr, StartsAtZero) {
  Misr m(0b10011);
  EXPECT_EQ(m.state(), 0u);
  EXPECT_EQ(m.width(), 4u);
}

TEST(Misr, ZeroInputZeroStateStaysZero) {
  Misr m(0b10011);
  for (int i = 0; i < 20; ++i) m.shift(0);
  EXPECT_EQ(m.state(), 0u);
}

TEST(Misr, SingleInputIsRemembered) {
  Misr m(0b10011);
  m.shift(0b0001);
  EXPECT_EQ(m.state(), 0b0001u);
}

TEST(Misr, ShiftIsLinear) {
  // MISR(a) XOR MISR(b) == MISR(a XOR b) over whole streams.
  Misr ma(0b10011);
  Misr mb(0b10011);
  Misr mab(0b10011);
  const std::uint64_t sa[] = {1, 7, 3, 15, 8, 2};
  const std::uint64_t sb[] = {9, 0, 5, 12, 1, 6};
  for (int i = 0; i < 6; ++i) {
    ma.shift(sa[i]);
    mb.shift(sb[i]);
    mab.shift(sa[i] ^ sb[i]);
  }
  EXPECT_EQ(ma.state() ^ mb.state(), mab.state());
}

TEST(Misr, DifferentStreamsDifferentSignatures) {
  Misr a(0b10011);
  Misr b(0b10011);
  a.shift(1);
  a.shift(2);
  b.shift(2);
  b.shift(1);
  EXPECT_NE(a.state(), b.state());  // order matters
}

TEST(Misr, SingleBitErrorAlwaysDetectedWithinWidthWindow) {
  // A single flipped input word always changes the signature (the
  // error polynomial is a monomial, never a multiple of p).
  const std::uint64_t stream[] = {5, 11, 0, 7, 9, 14, 3, 8};
  for (int pos = 0; pos < 8; ++pos) {
    for (unsigned bit = 0; bit < 4; ++bit) {
      Misr good(0b10011);
      Misr bad(0b10011);
      for (int i = 0; i < 8; ++i) {
        good.shift(stream[i]);
        bad.shift(i == pos ? stream[i] ^ (1u << bit) : stream[i]);
      }
      EXPECT_NE(good.state(), bad.state()) << "pos=" << pos;
    }
  }
}

TEST(Misr, ResetRestoresSeed) {
  Misr m(0b10011);
  m.shift(9);
  m.reset(0b0101);
  EXPECT_EQ(m.state(), 0b0101u);
  m.reset();
  EXPECT_EQ(m.state(), 0u);
}

TEST(Misr, AbsorbMatchesShiftLoop) {
  Misr a(0x11b);
  Misr b(0x11b);
  const std::vector<std::uint64_t> stream{0x12, 0x34, 0x56, 0x78};
  a.absorb(stream);
  for (auto w : stream) b.shift(w);
  EXPECT_EQ(a.state(), b.state());
}

TEST(Misr, WideMisr) {
  Misr m(0x1002b);  // width 16
  EXPECT_EQ(m.width(), 16u);
  m.shift(0xffff);
  m.shift(0x0001);
  EXPECT_NE(m.state(), 0u);
  EXPECT_LE(m.state(), 0xffffu);
}

TEST(Misr, StateNeverExceedsWidthMask) {
  Misr m(0b10011);
  for (std::uint64_t i = 0; i < 100; ++i) {
    m.shift(i * 0x9e3779b9ULL);
    EXPECT_LT(m.state(), 16u);
  }
}

}  // namespace
}  // namespace prt::lfsr
