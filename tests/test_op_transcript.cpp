// Op-transcript compiler and replay (core/op_transcript.hpp,
// march::make_march_transcript).
//
// The load-bearing property: a compiled transcript replay must issue
// the *exact* operation stream of the live oracle-driven run — same
// ops, same addresses, same values, same pauses, in the same order —
// for any packable scheme and any March test, because the campaign
// engines swap the live loops for replays and promise bit-identical
// CampaignResults.  A RecordingRam captures both streams and the tests
// diff them op for op over randomized schemes, every standard March
// test, both backgrounds and n in {17, 64, 256}.  On top of the
// stream identity, the replays' verdicts and abort op accounting must
// match the live references on faulty memories (including the
// scalar-vs-packed March abort-ops parity).
#include "core/op_transcript.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/march_campaign.hpp"
#include "core/prt_engine.hpp"
#include "core/prt_packed.hpp"
#include "march/march_library.hpp"
#include "march/march_runner.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt {
namespace {

std::uint64_t next_rand(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

/// One recorded memory operation (reads record the returned value,
/// writes the written value, pauses the tick count).
struct RecordedOp {
  char kind;  // 'r', 'w', 'p'
  mem::Addr addr;
  std::uint64_t value;
  bool operator==(const RecordedOp&) const = default;
};

/// A 1-bit-wide memory that records its whole operation stream — the
/// probe both the live run and the transcript replay are driven
/// against.
class RecordingRam final : public mem::Memory {
 public:
  explicit RecordingRam(mem::Addr n) : data_(n, 0) {}

  [[nodiscard]] mem::Addr size() const override {
    return static_cast<mem::Addr>(data_.size());
  }
  [[nodiscard]] unsigned width() const override { return 1; }
  [[nodiscard]] unsigned ports() const override { return 1; }

  mem::Word read(mem::Addr addr, unsigned) override {
    const mem::Word v = data_[addr];
    ops.push_back({'r', addr, v});
    return v;
  }
  void write(mem::Addr addr, mem::Word value, unsigned) override {
    data_[addr] = value & 1U;
    ops.push_back({'w', addr, value & 1U});
  }
  void advance_time(std::uint64_t ticks) override {
    ops.push_back({'p', 0, ticks});
  }
  [[nodiscard]] mem::AccessStats stats(unsigned) const override { return {}; }
  void reset_stats() override {}

  std::vector<RecordedOp> ops;

 private:
  std::vector<mem::Word> data_;
};

void expect_same_stream(const std::vector<RecordedOp>& live,
                        const std::vector<RecordedOp>& replay,
                        const std::string& label) {
  ASSERT_EQ(live.size(), replay.size()) << label;
  for (std::size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ(live[i].kind, replay[i].kind) << label << " op " << i;
    ASSERT_EQ(live[i].addr, replay[i].addr) << label << " op " << i;
    ASSERT_EQ(live[i].value, replay[i].value) << label << " op " << i;
  }
}

/// Live oracle-driven run vs transcript replay on fault-free memories:
/// the streams must be identical op for op, and the analytic
/// read/write totals must match the live counters.
void expect_prt_transcript_identity(const core::PrtScheme& scheme,
                                    mem::Addr n, const std::string& label) {
  const core::PrtOracle oracle = core::make_prt_oracle(scheme, n);
  const core::OpTranscript t = core::make_op_transcript(scheme, oracle);
  RecordingRam live(n);
  const core::PrtVerdict lv =
      core::run_prt(live, scheme, oracle, {.record_iterations = false});
  RecordingRam replay(n);
  const core::PrtVerdict rv = core::run_prt_transcript(replay, t);
  expect_same_stream(live.ops, replay.ops, label);
  EXPECT_TRUE(lv.pass && lv.misr_pass) << label;
  EXPECT_TRUE(rv.pass && rv.misr_pass) << label;
  EXPECT_EQ(lv.reads, rv.reads) << label;
  EXPECT_EQ(lv.writes, rv.writes) << label;
  EXPECT_EQ(rv.ops(), t.total_ops()) << label;
}

/// A randomized packable scheme: k in {2, 3}, random GF(2) generator
/// (g0 = gk = 1), random seeds, trajectory and verify/pause/MISR
/// configuration — the property-test input space.
core::PrtScheme random_packable_scheme(std::uint64_t& x) {
  core::PrtScheme scheme;
  scheme.name = "random";
  const std::size_t iterations = 2 + next_rand(x) % 3;
  for (std::size_t i = 0; i < iterations; ++i) {
    core::SchemeIteration it;
    const unsigned k = 2 + next_rand(x) % 2;
    it.g.assign(k + 1, 0);
    it.g.front() = 1;
    it.g.back() = 1;
    for (unsigned j = 1; j < k; ++j) it.g[j] = next_rand(x) & 1;
    for (unsigned j = 0; j < k; ++j) {
      it.config.init.push_back(static_cast<gf::Elem>(next_rand(x) & 1));
    }
    switch (next_rand(x) % 3) {
      case 0: it.config.trajectory = core::TrajectoryKind::kAscending; break;
      case 1: it.config.trajectory = core::TrajectoryKind::kDescending; break;
      default:
        it.config.trajectory = core::TrajectoryKind::kRandom;
        it.config.seed = next_rand(x);
        break;
    }
    if (next_rand(x) & 1) {
      it.config.verify_pass = true;
      if (next_rand(x) & 1) it.config.pause_ticks = 1 + next_rand(x) % 500;
    }
    scheme.iterations.push_back(std::move(it));
  }
  if (next_rand(x) & 1) scheme.misr_poly = 0b1011;  // z^3 + z + 1
  return scheme;
}

TEST(OpTranscript, ReplayOpForOpIdenticalOnCanonicalSchemes) {
  for (mem::Addr n : {17u, 64u, 256u}) {
    expect_prt_transcript_identity(core::standard_scheme_bom(n), n,
                                   "PRT-3 n=" + std::to_string(n));
    expect_prt_transcript_identity(core::extended_scheme_bom(n), n,
                                   "PRT-ext n=" + std::to_string(n));
    expect_prt_transcript_identity(core::retention_scheme(n, 1, 5000), n,
                                   "retention n=" + std::to_string(n));
  }
}

TEST(OpTranscript, ReplayOpForOpIdenticalOnRandomPackableSchemes) {
  std::uint64_t x = 0x7EA5C217;
  for (int round = 0; round < 12; ++round) {
    const core::PrtScheme scheme = random_packable_scheme(x);
    ASSERT_TRUE(core::prt_scheme_packable(scheme));
    for (mem::Addr n : {17u, 64u, 256u}) {
      expect_prt_transcript_identity(
          scheme, n,
          "random round " + std::to_string(round) + " n=" + std::to_string(n));
    }
  }
}

/// The scalar replay must reproduce run_prt's verdict and op counts on
/// *faulty* memories too — including the kinds that stay on the scalar
/// campaign path — with and without early abort.
TEST(OpTranscript, ScalarReplayMatchesLiveRunOnFaults) {
  const mem::Addr n = 64;
  const core::PrtScheme scheme = core::extended_scheme_bom(n);
  const core::PrtOracle oracle = core::make_prt_oracle(scheme, n);
  const core::OpTranscript t = core::make_op_transcript(scheme, oracle);
  std::vector<mem::Fault> universe = mem::classical_universe(n);
  universe.push_back(mem::Fault::af_multi_access(3, 40));
  universe.push_back(mem::Fault::retention({5, 0}, 1, 100));
  universe.push_back(mem::Fault::npsf_static({17, 0}, 0b0000, 1, 8));
  mem::FaultyRam live(n, 1);
  mem::FaultyRam replay(n, 1);
  for (const mem::Fault& f : universe) {
    for (bool abort : {false, true}) {
      const core::PrtRunOptions opts{.early_abort = abort,
                                     .record_iterations = false};
      live.reset(f);
      const core::PrtVerdict lv = core::run_prt(live, scheme, oracle, opts);
      replay.reset(f);
      const core::PrtVerdict rv = core::run_prt_transcript(replay, t, opts);
      ASSERT_EQ(lv.detected(), rv.detected()) << f.describe();
      ASSERT_EQ(lv.reads, rv.reads) << f.describe() << " abort=" << abort;
      ASSERT_EQ(lv.writes, rv.writes) << f.describe() << " abort=" << abort;
      ASSERT_EQ(live.total_stats().total(), replay.total_stats().total())
          << f.describe() << " abort=" << abort;
    }
  }
}

// --- March transcripts --------------------------------------------------

TEST(MarchTranscript, ReplayOpForOpIdenticalOnStandardTests) {
  const std::vector<march::MarchTest> tests = {
      march::march_x(),  march::march_y(),  march::march_c_minus(),
      march::march_a(),  march::march_b(),  march::march_sr(),
      march::march_lr(), march::march_ss(), march::march_g()};
  for (const march::MarchTest& test : tests) {
    for (mem::Addr n : {17u, 64u, 256u}) {
      for (bool bg : {false, true}) {
        const core::OpTranscript t = march::make_march_transcript(test, n, bg);
        RecordingRam live(n);
        const march::MarchResult lv =
            march::run_march(test, live, bg ? 1U : 0U);
        RecordingRam replay(n);
        const march::MarchResult rv = march::run_march_transcript(replay, t);
        const std::string label =
            test.name + " n=" + std::to_string(n) + " bg=" + (bg ? "1" : "0");
        expect_same_stream(live.ops, replay.ops, label);
        EXPECT_EQ(lv.fail, rv.fail) << label;
        EXPECT_EQ(lv.ops, rv.ops) << label;
        EXPECT_EQ(rv.ops, t.total_ops()) << label;
      }
    }
  }
}

/// March early abort: the packed per-lane analytic op accounting must
/// equal the abort-aware scalar run_march reference, fault by fault,
/// and verdicts must be unchanged.
TEST(MarchTranscript, AbortOpsParityScalarVsPacked) {
  const mem::Addr n = 48;
  const std::vector<march::MarchTest> tests = {
      march::march_c_minus(), march::march_y(), march::march_g()};
  const std::vector<mem::Fault> universe = mem::classical_universe(n);
  for (const march::MarchTest& test : tests) {
    const core::OpTranscript t =
        march::make_march_transcript(test, n, /*background=*/false);
    mem::FaultyRam scalar(n, 1);
    mem::PackedFaultRam packed(n);
    for (std::size_t base = 0; base < universe.size();
         base += mem::PackedFaultRam::kLanes) {
      packed.reset();
      const std::size_t lanes =
          std::min<std::size_t>(mem::PackedFaultRam::kLanes,
                                universe.size() - base);
      std::uint64_t scalar_detected = 0;
      std::uint64_t scalar_ops = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const mem::Fault& f = universe[base + lane];
        ASSERT_TRUE(mem::lane_compatible(f)) << f.describe();
        packed.add_fault(f);
        scalar.reset(f);
        const march::MarchResult r =
            march::run_march(test, scalar, 0, 100'000, {.early_abort = true});
        scalar_detected |= std::uint64_t{r.fail} << lane;
        scalar_ops += r.ops;
      }
      const march::MarchPackedVerdict v =
          march::run_march_packed(packed, t, {.early_abort = true});
      ASSERT_EQ(v.detected & packed.active_mask(), scalar_detected)
          << test.name << " batch at " << base;
      ASSERT_EQ(v.scalar_ops, scalar_ops) << test.name << " batch at " << base;
    }
  }
}

/// Abort-aware March campaigns: coverage and escapes unchanged, ops
/// shrink identically on the packed and scalar paths, thread counts
/// and packing permuted.
TEST(MarchTranscript, AbortCampaignBitIdenticalScalarVsPacked) {
  const mem::Addr n = 96;
  const auto universe = mem::classical_universe(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto test = march::march_c_minus();
  const analysis::CampaignResult scalar_abort = analysis::run_march_campaign(
      universe, test, opt,
      {.threads = 1, .parallel = false, .packed = false, .early_abort = true});
  const analysis::CampaignResult packed_abort = analysis::run_march_campaign(
      universe, test, opt,
      {.threads = 3, .parallel = true, .packed = true, .early_abort = true});
  EXPECT_EQ(scalar_abort.overall, packed_abort.overall);
  EXPECT_EQ(scalar_abort.by_class, packed_abort.by_class);
  EXPECT_EQ(scalar_abort.escapes, packed_abort.escapes);
  EXPECT_EQ(scalar_abort.ops, packed_abort.ops);
  // The abort runs must also keep the non-abort verdicts (only ops
  // shrink).
  const analysis::CampaignResult full = analysis::run_march_campaign(
      universe, test, opt, {.threads = 2});
  EXPECT_EQ(full.overall, packed_abort.overall);
  EXPECT_EQ(full.escapes, packed_abort.escapes);
  EXPECT_LT(packed_abort.ops, full.ops);
}

}  // namespace
}  // namespace prt
