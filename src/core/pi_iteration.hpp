// The pi-test iteration — Eq. (1) of the paper.
//
//   pi-iteration = { c(w d0 .. d_{k-1});
//                    sweep_q ( r a_q, ..., r a_{q+k-1},
//                              w a_{q+k} = sum_j g_j * r_{a_{q+k-j}} ) }
//
// The memory array traces the state sequence of the virtual LFSR with
// generator g(x) over GF(2^m) along the chosen trajectory.  Each
// sub-iteration issues k reads and one write; with the final Init/Fin
// read-back a single-port iteration costs exactly 3n operations for
// k = 2 (paper §3: O(3n)).  The verdict compares the observed final
// state Fin (read back from the last k visited cells) with the
// model-predicted Fin*, and the re-read Init cells with the seed —
// "comparing initial Init and final Fin states" (paper §2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/trajectory.hpp"
#include "gf/gf2m.hpp"
#include "lfsr/lfsr.hpp"
#include "lfsr/misr.hpp"
#include "mem/memory.hpp"

namespace prt::core {

/// Per-iteration test data background: the initial values d and the
/// trajectory, the second and third control factors of §3.
struct PiConfig {
  std::vector<gf::Elem> init;  // k seed values, oldest first
  TrajectoryKind trajectory = TrajectoryKind::kAscending;
  std::uint64_t seed = 0;      // random-trajectory seed
  /// Appends a read-only ascending sweep comparing every cell against
  /// the model-predicted image (+n ops, making the iteration ~4n).
  /// Catches corruptions that outlast the sweep but are overwritten
  /// unread by the next iteration — idempotent coupling faults in the
  /// non-window orientation and decoder multi-access aliasing (see
  /// extended_scheme_* and EXPERIMENTS.md).
  bool verify_pass = false;
  /// Idle ticks inserted between the sweep and the verify pass —
  /// the classic write/pause/read pattern for data-retention faults.
  /// Only meaningful with verify_pass (the sweep itself re-reads every
  /// cell immediately after writing it).
  std::uint64_t pause_ticks = 0;
};

/// Outcome of one pi-iteration.
struct PiResult {
  bool pass = false;
  std::vector<gf::Elem> fin;           // observed (read back)
  std::vector<gf::Elem> fin_expected;  // Fin* from the LFSR model
  /// Read-back of the first k visited cells at the end of the sweep —
  /// the "Init" side of the paper's "comparing initial Init and final
  /// Fin states"; catches corruptions of the seed cells after their
  /// only sweep read.  Expected value is the written init itself
  /// (pass accounts for it).
  std::vector<gf::Elem> init_readback;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Scheduling cycles on a single-port memory: one per operation.
  [[nodiscard]] std::uint64_t cycles() const { return reads + writes; }
  /// MISR signature over the read stream (observed / expected); only
  /// meaningful when the engine was built with a MISR polynomial.
  std::uint64_t misr = 0;
  std::uint64_t misr_expected = 0;
  bool misr_pass = true;
  /// Mismatching cells found by the verify pass (0 when disabled).
  std::uint64_t verify_mismatches = 0;
};

/// Everything about one pi-iteration that does NOT depend on the memory
/// under test: the trajectory permutation, the model-predicted Fin*,
/// the fault-free image (when a verify pass will read it) and the
/// golden MISR signature over the read stream.  Fault-simulation
/// campaigns build one oracle per SchemeIteration and reuse it for
/// every fault, so the per-fault hot loop re-derives nothing — see
/// analysis/campaign_engine.  An oracle is immutable after
/// construction and safe to share across threads.
struct PiOracle {
  mem::Addr n = 0;                     // array size the oracle was built for
  Trajectory trajectory;               // visiting order for the config
  std::vector<gf::Elem> fin_expected;  // Fin* (k elements)
  /// Fault-free memory image after the sweep, indexed by address.
  /// Empty unless the config has verify_pass set (only the verify pass
  /// reads it).
  std::vector<gf::Elem> image;
  /// Golden MISR signature over the full read stream (sweep windows,
  /// Fin read-back, Init read-back); 0 when the tester has no MISR.
  std::uint64_t misr_expected = 0;
};

/// Binds the virtual-LFSR structure (factor 1 of §3: the field p(z) and
/// generator g(x)) and runs pi-iterations against memories.
class PiTester {
 public:
  /// Precondition: g describes a valid LFSR (see WordLfsr) over `field`.
  PiTester(gf::GF2m field, std::vector<gf::Elem> g);

  /// Enables the optional MISR read-stream compaction (DESIGN.md §6).
  /// `poly` is a GF(2) polynomial of degree in [1, 63]; a degree below
  /// field.m() folds only the low deg(poly) bits of each read word
  /// into the signature (both golden and observed streams fold
  /// identically, so the verdict stays sound — only the aliasing
  /// probability grows).
  void enable_misr(gf::Poly2 poly);
  [[nodiscard]] bool misr_enabled() const { return misr_poly_ != 0; }

  [[nodiscard]] const gf::GF2m& field() const { return lfsr_.field(); }
  [[nodiscard]] unsigned k() const { return lfsr_.k(); }
  [[nodiscard]] const std::vector<gf::Elem>& g() const { return lfsr_.g(); }

  /// The feedback combination sum_j g_j * window[k-j] a sub-iteration
  /// writes (window oldest-first).  Exposed for the multi-port
  /// schedulers.
  [[nodiscard]] gf::Elem feedback_of(std::span<const gf::Elem> window) const {
    return lfsr_.feedback(window);
  }

  /// Runs one pi-iteration.  Preconditions: memory.width() == m of the
  /// field, memory.size() > k, config.init.size() == k.
  PiResult run(mem::Memory& memory, const PiConfig& config) const;

  /// Precomputes the memory-independent side of an iteration (see
  /// PiOracle).  Preconditions as for run().
  [[nodiscard]] PiOracle make_oracle(mem::Addr n, const PiConfig& config) const;

  /// Runs one pi-iteration against a precomputed oracle: no trajectory
  /// construction, no golden-sequence replay, no LFSR jump-ahead in the
  /// hot path.  Preconditions: as for run(), plus oracle built by this
  /// tester (same g, same MISR setting) for this n and config.
  PiResult run(mem::Memory& memory, const PiConfig& config,
               const PiOracle& oracle) const;

  /// Fin* for an n-cell sweep from the given seed: the LFSR state after
  /// n - k steps, computed by jump-ahead in O(log n).
  [[nodiscard]] std::vector<gf::Elem> expected_fin(
      mem::Addr n, std::span<const gf::Elem> init) const;

  /// The full fault-free memory image after the iteration, indexed by
  /// cell address (inverts the trajectory mapping).
  [[nodiscard]] std::vector<gf::Elem> expected_image(
      mem::Addr n, const PiConfig& config) const;

  /// True when the iteration "closes the ring": Fin == Init, which
  /// happens iff the automaton advances a whole number of periods,
  /// i.e. (n - k) mod period == 0 (paper Fig. 1b; the paper phrases it
  /// as the array size being a multiple of the LFSR period).
  [[nodiscard]] bool ring_closes(mem::Addr n) const;

  /// Period of the virtual automaton (order of x modulo g).
  [[nodiscard]] std::uint64_t period() const {
    return lfsr_.algebraic_period();
  }

 private:
  lfsr::WordLfsr lfsr_;
  gf::Poly2 misr_poly_ = 0;
};

}  // namespace prt::core
