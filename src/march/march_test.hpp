// March test representation and notation.
//
// The paper's §1 recalls the standard notation of [1]:
//   MarchA = {c(w0); up(r0,w1); down(r1,w0)}
// where up/down/c traverse the address space ascending, descending or in
// either order, and wd/rd write or read-and-verify the data value d.
// This module provides the data model, a parser for that notation (with
// ASCII arrows "^"/"v"/"c" or UTF-8 double-arrows), and a printer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace prt::march {

/// Address traversal order of one March element.
enum class Order : std::uint8_t {
  kUp,        // ascending addresses
  kDown,      // descending addresses
  kEither,    // "don't care" (executed ascending)
};

/// One primitive operation inside a March element.
struct MarchOp {
  enum class Type : std::uint8_t { kRead, kWrite } type;
  /// Data index: 0 or 1 in the classic notation.  Word-oriented runs
  /// map index 0 to the selected background and 1 to its complement.
  unsigned data;

  [[nodiscard]] bool is_read() const { return type == Type::kRead; }
  bool operator==(const MarchOp&) const = default;
};

/// One March element: an address order plus an operation sequence
/// applied completely at each address before moving on — or a delay
/// element ("Del" in the literature, e.g. March G), a single pause of
/// the whole test used to expose data-retention faults.
struct MarchElement {
  Order order = Order::kEither;
  std::vector<MarchOp> ops;
  bool is_delay = false;  // "Del": ops empty, one pause, no sweep

  bool operator==(const MarchElement&) const = default;
};

/// A delay element.
[[nodiscard]] inline MarchElement delay_element() {
  MarchElement e;
  e.is_delay = true;
  return e;
}

/// A complete March test.
struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  /// Number of operations per address-sweep pass, i.e. the classic
  /// "xn" complexity coefficient (MarchA's {c(w0); up(r0w1); down(r1w0)}
  /// has coefficient 5).
  [[nodiscard]] std::size_t ops_per_cell() const;

  /// Total operations on an n-cell memory.
  [[nodiscard]] std::uint64_t total_ops(std::uint64_t n) const {
    return ops_per_cell() * n;
  }

  bool operator==(const MarchTest&) const = default;
};

/// Renders in the formal notation, ASCII flavour:
/// "{c(w0);^(r0,w1);v(r1,w0)}".
[[nodiscard]] std::string to_string(const MarchTest& test);

/// Structural fingerprint: the notation rendering, which encodes every
/// element's order, operation sequence, data indices and delay marker.
/// Two tests with equal fingerprints compile to identical transcripts
/// for any (n, background) — the March cache-key contract of
/// analysis::OracleCache.  The display name is deliberately excluded.
[[nodiscard]] std::string test_fingerprint(const MarchTest& test);

/// Parses the formal notation.  Accepts "^", "v", "c" and the UTF-8
/// arrows "⇑", "⇓", "⇕" as order symbols; operations "r0 r1 w0 w1"
/// separated by optional commas/spaces; the standalone element "Del"
/// denotes a retention pause; elements separated by ';' and wrapped in
/// '{...}'.  Returns nullopt with no partial result on any syntax
/// error.
[[nodiscard]] std::optional<MarchTest> parse_march(std::string_view text,
                                                   std::string name = "");

}  // namespace prt::march
