#include "gf/gf2_poly.hpp"

#include <cassert>
#include <string>

#include "util/bitops.hpp"

namespace prt::gf {

Poly2 clmul(Poly2 a, Poly2 b) {
  Poly2 acc = 0;
  while (b != 0) {
    if (b & 1) acc ^= a;
    a <<= 1;
    b >>= 1;
  }
  return acc;
}

Poly2 poly_mod(Poly2 a, Poly2 p) {
  assert(p != 0);
  const int dp = poly_degree(p);
  int da = poly_degree(a);
  while (da >= dp) {
    a ^= p << (da - dp);
    da = poly_degree(a);
  }
  return a;
}

Poly2 poly_div(Poly2 a, Poly2 p) {
  assert(p != 0);
  const int dp = poly_degree(p);
  Poly2 q = 0;
  int da = poly_degree(a);
  while (da >= dp) {
    q |= Poly2{1} << (da - dp);
    a ^= p << (da - dp);
    da = poly_degree(a);
  }
  return q;
}

Poly2 poly_gcd(Poly2 a, Poly2 b) {
  while (b != 0) {
    const Poly2 r = poly_mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

Poly2 mulmod(Poly2 a, Poly2 b, Poly2 p) {
  return poly_mod(clmul(a, b), p);
}

Poly2 powmod(Poly2 a, std::uint64_t e, Poly2 p) {
  Poly2 result = poly_mod(1, p);
  a = poly_mod(a, p);
  while (e != 0) {
    if (e & 1) result = mulmod(result, a, p);
    a = mulmod(a, a, p);
    e >>= 1;
  }
  return result;
}

Poly2 pow_x_pow2(unsigned k, Poly2 p) {
  Poly2 r = poly_mod(2, p);  // x
  for (unsigned i = 0; i < k; ++i) r = mulmod(r, r, p);
  return r;
}

bool is_irreducible(Poly2 p) {
  const int deg = poly_degree(p);
  if (deg < 1) return false;
  if (deg == 1) return true;
  // Constant term must be 1, otherwise z divides p.
  if ((p & 1) == 0) return false;
  const auto m = static_cast<unsigned>(deg);
  // Rabin: x^(2^m) == x (mod p), and for every prime q | m,
  // gcd(x^(2^(m/q)) - x, p) == 1.
  if (pow_x_pow2(m, p) != poly_mod(2, p)) return false;
  for (std::uint64_t q : distinct_prime_factors(m)) {
    const Poly2 h = pow_x_pow2(static_cast<unsigned>(m / q), p) ^ 2U;
    if (poly_gcd(h, p) != 1) return false;
  }
  return true;
}

std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t d = 2; d * d <= n; d += (d == 2 ? 1 : 2)) {
    if (n % d == 0) {
      out.push_back(d);
      while (n % d == 0) n /= d;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

std::uint64_t order_of_x(Poly2 p) {
  const int deg = poly_degree(p);
  assert(deg >= 1 && deg <= 31);
  assert(is_irreducible(p));
  const std::uint64_t group = (std::uint64_t{1} << deg) - 1;
  std::uint64_t t = group;
  for (std::uint64_t q : distinct_prime_factors(group)) {
    while (t % q == 0 && powmod(2, t / q, p) == 1) t /= q;
  }
  return t;
}

bool is_primitive(Poly2 p) {
  const int deg = poly_degree(p);
  if (deg < 1 || deg > 31) return false;
  // x must be a unit modulo p (rules out p = z, whose residue of x
  // is 0 even though z is irreducible).
  if ((p & 1) == 0) return false;
  if (!is_irreducible(p)) return false;
  const std::uint64_t group = (std::uint64_t{1} << deg) - 1;
  return order_of_x(p) == group;
}

Poly2 first_irreducible(unsigned m) {
  assert(m >= 1 && m <= 31);
  const Poly2 top = Poly2{1} << m;
  for (Poly2 p = top; p < (top << 1); ++p) {
    if (is_irreducible(p)) return p;
  }
  assert(false && "irreducible polynomial of every degree exists");
  return 0;
}

Poly2 first_primitive(unsigned m) {
  assert(m >= 1 && m <= 31);
  const Poly2 top = Poly2{1} << m;
  for (Poly2 p = top | 1; p < (top << 1); p += 2) {
    if (is_primitive(p)) return p;
  }
  assert(false && "primitive polynomial of every degree exists");
  return 0;
}

std::vector<Poly2> irreducibles_of_degree(unsigned m) {
  assert(m >= 1 && m <= 16);
  std::vector<Poly2> out;
  const Poly2 top = Poly2{1} << m;
  for (Poly2 p = top; p < (top << 1); ++p) {
    if (is_irreducible(p)) out.push_back(p);
  }
  return out;
}

std::string poly_to_string(Poly2 p, char var) {
  if (p == 0) return "0";
  std::string out;
  for (int i = poly_degree(p); i >= 0; --i) {
    if (((p >> i) & 1) == 0) continue;
    if (!out.empty()) out += " + ";
    if (i == 0) {
      out += '1';
    } else if (i == 1) {
      out += var;
    } else {
      out += var;
      out += '^';
      out += std::to_string(i);
    }
  }
  return out;
}

std::optional<Poly2> poly_from_string(std::string_view text, char var) {
  Poly2 acc = 0;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  };
  bool expect_term = true;
  while (true) {
    skip_ws();
    if (i >= text.size()) break;
    if (!expect_term) {
      if (text[i] != '+') return std::nullopt;
      ++i;
      expect_term = true;
      continue;
    }
    // Parse one term: "1", "<var>", or "<var>^<k>".
    if (text[i] == '1') {
      acc ^= 1;
      ++i;
    } else if (text[i] == var) {
      ++i;
      unsigned deg = 1;
      if (i < text.size() && text[i] == '^') {
        ++i;
        if (i >= text.size() || text[i] < '0' || text[i] > '9') {
          return std::nullopt;
        }
        deg = 0;
        while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
          deg = deg * 10 + static_cast<unsigned>(text[i] - '0');
          if (deg > 62) return std::nullopt;
          ++i;
        }
      }
      acc ^= Poly2{1} << deg;
    } else {
      return std::nullopt;
    }
    expect_term = false;
  }
  if (expect_term) return std::nullopt;  // empty input or trailing '+'
  return acc;
}

}  // namespace prt::gf
