// Tests for utility components (util/*).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/bitops.hpp"
#include "util/crc32.hpp"
#include "util/fail_point.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace prt {
namespace {

// --- bitops ---------------------------------------------------------------

TEST(Bitops, Parity) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b11), 0u);
  EXPECT_EQ(parity64(~0ULL), 0u);
  EXPECT_EQ(parity64(0x8000000000000001ULL), 0u);
  EXPECT_EQ(parity64(0x8000000000000000ULL), 1u);
}

TEST(Bitops, BitOfAndWithBit) {
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(with_bit(0, 3, 1), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, 0), 0b1011u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(Bitops, PolyDegree) {
  EXPECT_EQ(poly_degree(0), -1);
  EXPECT_EQ(poly_degree(1), 0);
  EXPECT_EQ(poly_degree(0b10011), 4);
  EXPECT_EQ(poly_degree(1ULL << 63), 63);
}

TEST(Bitops, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bitops, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  Xoshiro256 c(43);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2() != c();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RoughUniformity) {
  Xoshiro256 rng(11);
  std::array<int, 4> bucket{};
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++bucket[rng.below(4)];
  for (int b : bucket) {
    EXPECT_NEAR(b, draws / 4, draws / 40);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Xoshiro256 rng(3);
  shuffle(v.begin(), v.end(), rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

// --- table ---------------------------------------------------------------

TEST(TableTest, RendersHeaderSeparatorRows) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("beta", 2.5);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(TableTest, AlignmentPadsCorrectly) {
  Table t({"h"});
  t.set_align(0, Align::kLeft);
  t.add_row({"x"});
  t.add_row({"xxxx"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| x    |"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add(1, 2);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TableTest, BoolCells) {
  Table t({"flag"});
  t.add(true);
  t.add(false);
  const std::string s = t.str();
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_NE(s.find("no"), std::string::npos);
}

TEST(TableTest, ScientificForExtremes) {
  EXPECT_NE(Table::to_cell(1e-9).find("e"), std::string::npos);
  EXPECT_NE(Table::to_cell(3.5e12).find("e"), std::string::npos);
  EXPECT_EQ(Table::to_cell(0.0), "0.000");
}

TEST(Formatting, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(100.0, 0), "100");
}

TEST(Formatting, FormatPow2Ratio) {
  EXPECT_EQ(format_pow2_ratio(0.25), "2^-2.0");
  EXPECT_EQ(format_pow2_ratio(1.0), "2^0.0");
  EXPECT_EQ(format_pow2_ratio(0.0), "0");
}

// --- fail points ----------------------------------------------------------

TEST(FailPoint, DisarmedHitIsANoOp) {
  util::FailPoint::hit("nothing.armed");  // must not throw
  EXPECT_EQ(util::FailPoint::hits("nothing.armed"), 0u);
}

TEST(FailPoint, SkipAndFiresSchedule) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.point", {.skip = 2, .fires = 1});
  util::FailPoint::hit("test.point");  // hit 0: skipped
  util::FailPoint::hit("test.point");  // hit 1: skipped
  EXPECT_THROW(util::FailPoint::hit("test.point"), util::FailPointError);
  util::FailPoint::hit("test.point");  // hit 3: past the fire window
  EXPECT_EQ(util::FailPoint::hits("test.point"), 4u);
}

TEST(FailPoint, UnboundedFiresAndDisarm) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.unbounded", {.fires = -1});
  EXPECT_THROW(util::FailPoint::hit("test.unbounded"), util::FailPointError);
  EXPECT_THROW(util::FailPoint::hit("test.unbounded"), util::FailPointError);
  util::FailPoint::disarm("test.unbounded");
  util::FailPoint::hit("test.unbounded");  // disarmed: no-op
}

TEST(FailPoint, DelayActionSleeps) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.delay",
                       {.action = util::FailPoint::Action::kDelay,
                        .fires = 1,
                        .delay = std::chrono::milliseconds(10)});
  const auto start = std::chrono::steady_clock::now();
  util::FailPoint::hit("test.delay");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(9));
}

// --- fail point spec strings ----------------------------------------------

TEST(FailPointSpec, PlainThrowFiresOnce) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.throw=throw");
  EXPECT_THROW(util::FailPoint::hit("spec.throw"), util::FailPointError);
  util::FailPoint::hit("spec.throw");  // fires defaults to 1
}

TEST(FailPointSpec, SkipAndFiresModifiers) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.sched=throw:skip=2:fires=1");
  util::FailPoint::hit("spec.sched");
  util::FailPoint::hit("spec.sched");
  EXPECT_THROW(util::FailPoint::hit("spec.sched"), util::FailPointError);
  util::FailPoint::hit("spec.sched");
  EXPECT_EQ(util::FailPoint::hits("spec.sched"), 4u);
}

TEST(FailPointSpec, ModifierOrderIsFree) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.order=throw:fires=-1:skip=1");
  util::FailPoint::hit("spec.order");
  EXPECT_THROW(util::FailPoint::hit("spec.order"), util::FailPointError);
  EXPECT_THROW(util::FailPoint::hit("spec.order"), util::FailPointError);
}

TEST(FailPointSpec, DelayActionParsesMilliseconds) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.delay=delay(10):fires=1");
  const auto start = std::chrono::steady_clock::now();
  util::FailPoint::hit("spec.delay");
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(9));
}

TEST(FailPointSpec, MalformedSpecsThrowInvalidArgument) {
  util::FailPointScope scope;
  // Missing '=' separator.
  EXPECT_THROW(util::FailPoint::arm_spec("no-separator"),
               std::invalid_argument);
  // Empty name.
  EXPECT_THROW(util::FailPoint::arm_spec("=throw"), std::invalid_argument);
  // Unknown action.
  EXPECT_THROW(util::FailPoint::arm_spec("p=explode"), std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p="), std::invalid_argument);
  // Malformed skip counts: non-numeric, empty, trailing junk, negative.
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=x"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip="),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=1junk"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=-1"),
               std::invalid_argument);
  // Malformed fires counts.
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:fires=many"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:fires="),
               std::invalid_argument);
  // Malformed delay payloads.
  EXPECT_THROW(util::FailPoint::arm_spec("p=delay()"), std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=delay(abc)"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=delay(5"), std::invalid_argument);
  // Unknown / duplicate modifiers.
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=1:skip=2"),
               std::invalid_argument);
  // A rejected spec must arm nothing.
  util::FailPoint::hit("p");
  EXPECT_EQ(util::FailPoint::hits("p"), 0u);
  // Malformed partial_write payloads.
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write()"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write(abc)"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write(-1)"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write(5"),
               std::invalid_argument);
}

TEST(FailPointSpec, PartialWriteParsesByteCount) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.partial=partial_write(120):skip=1:fires=1");
  EXPECT_FALSE(util::FailPoint::poll("spec.partial").has_value());  // skipped
  const std::optional<util::FailPoint::Config> fired =
      util::FailPoint::poll("spec.partial");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, util::FailPoint::Action::kPartialWrite);
  EXPECT_EQ(fired->bytes, 120u);
  EXPECT_FALSE(util::FailPoint::poll("spec.partial").has_value());  // spent
  EXPECT_EQ(util::FailPoint::hits("spec.partial"), 3u);
}

TEST(FailPoint, PollSharesScheduleWithHit) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.poll", {.skip = 1, .fires = 1});
  EXPECT_FALSE(util::FailPoint::poll("test.never.armed").has_value());
  util::FailPoint::hit("test.poll");  // hit 0: skipped
  const std::optional<util::FailPoint::Config> fired =
      util::FailPoint::poll("test.poll");  // hit 1: fires
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, util::FailPoint::Action::kThrow);
  util::FailPoint::hit("test.poll");  // hit 2: past the window
}

TEST(FailPoint, PartialWriteAtPlainHitDegradesToThrow) {
  // A site without a byte stream cannot honor kPartialWrite; failing
  // hard beats silently ignoring the injection.
  util::FailPointScope scope;
  util::FailPoint::arm("test.pw",
                       {.action = util::FailPoint::Action::kPartialWrite,
                        .fires = 1,
                        .bytes = 10});
  EXPECT_THROW(util::FailPoint::hit("test.pw"), util::FailPointError);
}

// --- crc32 ----------------------------------------------------------------

TEST(Crc32, MatchesKnownVectorsAndDetectsFlips) {
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0x00000000u);
  const std::string payload = "shard 3 ops 120 overall 9 10";
  std::string flipped = payload;
  flipped[10] ^= 0x01;
  EXPECT_NE(util::crc32(payload), util::crc32(flipped));
}

// --- stop tokens ----------------------------------------------------------

TEST(StopToken, DefaultTokenNeverStops) {
  const util::StopToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), util::StopReason::kNone);
}

TEST(StopToken, RequestStopLatchesCancelled) {
  util::StopSource source;
  const util::StopToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), util::StopReason::kCancelled);
}

TEST(StopToken, DeadlineTripsAndLatches) {
  util::StopSource source;
  source.set_deadline_after(std::chrono::milliseconds(5));
  const util::StopToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), util::StopReason::kDeadline);
  // First cause wins: a later cancel does not overwrite the reason.
  source.request_stop();
  EXPECT_EQ(token.reason(), util::StopReason::kDeadline);
}

TEST(StopToken, CancelBeforeDeadlineReportsCancelled) {
  util::StopSource source;
  source.set_deadline_after(std::chrono::hours(1));
  source.request_stop();
  EXPECT_TRUE(source.stop_requested());
  EXPECT_EQ(source.token().reason(), util::StopReason::kCancelled);
}

TEST(StopToken, RequestStopCarriesExplicitReason) {
  util::StopSource source;
  source.request_stop(util::StopReason::kStalled);
  EXPECT_TRUE(source.stop_requested());
  EXPECT_EQ(source.token().reason(), util::StopReason::kStalled);
  // First cause wins.
  source.request_stop(util::StopReason::kCancelled);
  EXPECT_EQ(source.token().reason(), util::StopReason::kStalled);
}

TEST(StopToken, ChildObservesParentStop) {
  util::StopSource parent;
  util::StopSource child(parent.token());
  EXPECT_FALSE(child.token().stop_requested());
  parent.request_stop();
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), util::StopReason::kCancelled);
  // The parent's reason latches into the child: a later local stop
  // with a different reason does not overwrite it.
  child.request_stop(util::StopReason::kStalled);
  EXPECT_EQ(child.token().reason(), util::StopReason::kCancelled);
}

TEST(StopToken, ChildStopDoesNotPropagateToParent) {
  util::StopSource parent;
  util::StopSource child(parent.token());
  child.request_stop(util::StopReason::kStalled);
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), util::StopReason::kStalled);
  EXPECT_FALSE(parent.token().stop_requested());
  EXPECT_EQ(parent.token().reason(), util::StopReason::kNone);
}

TEST(StopToken, ParentDeadlinePropagatesToChild) {
  util::StopSource parent;
  parent.set_deadline_after(std::chrono::milliseconds(5));
  util::StopSource child(parent.token());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), util::StopReason::kDeadline);
}

// --- watchdog -------------------------------------------------------------

TEST(Watchdog, ExpiresOverdueWatchExactlyOnce) {
  util::Watchdog dog;
  std::atomic<int> fired{0};
  (void)dog.watch(std::chrono::milliseconds(5), [&] { ++fired; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(dog.expirations(), 1u);
  // An expired entry is gone; it never fires again.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(fired.load(), 1);
}

TEST(Watchdog, UnwatchBeforeBudgetSuppressesCallback) {
  util::Watchdog dog;
  std::atomic<int> fired{0};
  const util::Watchdog::Id id =
      dog.watch(std::chrono::seconds(60), [&] { ++fired; });
  dog.unwatch(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(dog.expirations(), 0u);
}

TEST(Watchdog, TracksManyWatchesIndependently) {
  util::Watchdog dog;
  std::atomic<int> fast_fired{0};
  std::atomic<int> slow_fired{0};
  (void)dog.watch(std::chrono::milliseconds(5), [&] { ++fast_fired; });
  const util::Watchdog::Id slow =
      dog.watch(std::chrono::seconds(60), [&] { ++slow_fired; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fast_fired.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fast_fired.load(), 1);
  EXPECT_EQ(slow_fired.load(), 0);
  dog.unwatch(slow);
  EXPECT_EQ(dog.expirations(), 1u);
}

TEST(Watchdog, CancelsAStalledStopTokenAttempt) {
  // The service-layer composition in miniature: a watchdog trips a
  // per-attempt child token with kStalled while the parent stays live.
  util::Watchdog dog;
  util::StopSource request;
  util::StopSource attempt(request.token());
  (void)dog.watch(std::chrono::milliseconds(5), [attempt] {
    attempt.request_stop(util::StopReason::kStalled);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!attempt.token().stop_requested() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(attempt.token().stop_requested());
  EXPECT_EQ(attempt.token().reason(), util::StopReason::kStalled);
  EXPECT_FALSE(request.token().stop_requested());
}

// --- thread pool exception safety -----------------------------------------

TEST(ThreadPool, ThrowingTaskDoesNotWedgeWaitIdle) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      if (i == 3) throw std::runtime_error("task crashed");
      ++ran;
    });
  }
  pool.wait_idle();  // must not deadlock on the thrown task
  EXPECT_EQ(ran.load(), 7);
  const std::exception_ptr error = pool.take_unhandled_error();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  // The error was consumed.
  EXPECT_EQ(pool.take_unhandled_error(), nullptr);
}

TEST(ThreadPool, ShutdownWithThrowingTasksMidQueueIsClean) {
  // Destroying the pool with a queue of tasks, some of which throw,
  // must neither std::terminate (exception escaping a worker) nor
  // deadlock the destructor (skipped active_ decrement).
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran, i] {
        if (i % 5 == 0) throw std::runtime_error("mid-queue crash");
        ++ran;
      });
    }
    // No wait_idle(): the destructor drains the queue itself.
  }
  EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPool, FailPointInjectedTaskCrashIsCaptured) {
  util::FailPointScope scope;
  util::FailPoint::arm("thread_pool.task", {.skip = 1, .fires = 1});
  util::ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  pool.wait_idle();
  // Exactly the second task was replaced by the injected crash.
  EXPECT_EQ(ran.load(), 3);
  EXPECT_NE(pool.take_unhandled_error(), nullptr);
}

// The next three tests pin the invariants that live in atomics (or in
// exchange-under-lock protocols) the thread-safety annotations cannot
// express — the "patterns the analysis can't see" audit (DESIGN.md
// §12): each has a `//` invariant comment at the declaration site and
// a regression test here.

TEST(StopToken, ConcurrentObserversAgreeOnOneReason) {
  // StopState.reason is a CAS latch: when a deadline expiry and an
  // explicit cancel race, exactly one cause wins and every observer —
  // on any thread, at any later time — reports that same cause.
  for (int round = 0; round < 20; ++round) {
    util::StopSource source;
    // A deadline already in the past: the first poll will try to latch
    // kDeadline while the cancel thread tries to latch kCancelled.
    source.set_deadline_after(std::chrono::nanoseconds(1));
    std::atomic<int> observed_cancelled{0};
    std::atomic<int> observed_deadline{0};
    {
      util::ThreadPool pool(4);
      pool.submit([&] { source.request_stop(); });
      for (int i = 0; i < 3; ++i) {
        pool.submit([&] {
          const util::StopToken token = source.token();
          while (!token.stop_requested()) {
          }
          if (token.reason() == util::StopReason::kCancelled) {
            ++observed_cancelled;
          } else if (token.reason() == util::StopReason::kDeadline) {
            ++observed_deadline;
          }
        });
      }
      pool.wait_idle();
    }
    // Every observer saw *some* latched reason, and they all agree.
    EXPECT_EQ(observed_cancelled.load() + observed_deadline.load(), 3);
    EXPECT_TRUE(observed_cancelled.load() == 0 ||
                observed_deadline.load() == 0)
        << "observers disagreed on the stop cause";
    // The source itself reports the same winner afterwards.
    const util::StopReason final_reason = source.token().reason();
    EXPECT_EQ(final_reason == util::StopReason::kCancelled,
              observed_cancelled.load() == 3);
  }
}

TEST(ThreadPool, ConcurrentTakeUnhandledErrorHandsOutExactlyOnce) {
  // take_unhandled_error() is exchange-under-lock: with several
  // threads racing to collect after a crash, exactly one receives the
  // exception and the rest see nullptr — the error is neither
  // duplicated nor dropped.
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("lone crash"); });
  pool.wait_idle();
  std::atomic<int> got_error{0};
  {
    util::ThreadPool takers(4);
    for (int i = 0; i < 4; ++i) {
      takers.submit([&] {
        if (pool.take_unhandled_error() != nullptr) ++got_error;
      });
    }
    takers.wait_idle();
  }
  EXPECT_EQ(got_error.load(), 1);
}

TEST(ErrorCollector, FirstErrorWinsUnderConcurrentGuards) {
  // ErrorCollector::guard is noexcept and captures the *first*
  // exception in completion order; later failures are dropped, never
  // torn.  rethrow_if_any takes the lock, so a collector polled while
  // guards still run is safe (it just may not see stragglers).
  util::ErrorCollector errors;
  {
    util::ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&errors, i] {
        errors.guard([i] {
          throw std::runtime_error("crash " + std::to_string(i));
        });
      });
    }
    pool.wait_idle();
  }
  EXPECT_THROW(errors.rethrow_if_any(), std::runtime_error);
  // Idempotent: the captured error is kept, not consumed.
  EXPECT_THROW(errors.rethrow_if_any(), std::runtime_error);
}

TEST(ThreadPool, ParallelForChunksStillRethrowsGuardedErrors) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_chunks(
          100,
          [](unsigned, std::size_t begin, std::size_t) {
            if (begin == 0) throw std::invalid_argument("chunk failed");
          }),
      std::invalid_argument);
  // The pool survives for subsequent work.
  std::atomic<int> ran{0};
  pool.parallel_for_chunks(8, [&ran](unsigned, std::size_t begin,
                                     std::size_t end) {
    ran += static_cast<int>(end - begin);
  });
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace prt
