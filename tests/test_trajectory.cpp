// Tests for address trajectories (core/trajectory).
#include "core/trajectory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace prt::core {
namespace {

TEST(Trajectory, AscendingIsIdentity) {
  const Trajectory t = Trajectory::make(TrajectoryKind::kAscending, 8);
  for (mem::Addr q = 0; q < 8; ++q) EXPECT_EQ(t.at(q), q);
}

TEST(Trajectory, DescendingIsReverse) {
  const Trajectory t = Trajectory::make(TrajectoryKind::kDescending, 8);
  for (mem::Addr q = 0; q < 8; ++q) EXPECT_EQ(t.at(q), 7 - q);
}

TEST(Trajectory, RandomIsAPermutation) {
  const Trajectory t = Trajectory::make(TrajectoryKind::kRandom, 100, 5);
  std::vector<mem::Addr> sorted = t.order();
  std::sort(sorted.begin(), sorted.end());
  std::vector<mem::Addr> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(sorted, expected);
}

TEST(Trajectory, RandomDeterministicPerSeed) {
  const Trajectory a = Trajectory::make(TrajectoryKind::kRandom, 64, 9);
  const Trajectory b = Trajectory::make(TrajectoryKind::kRandom, 64, 9);
  const Trajectory c = Trajectory::make(TrajectoryKind::kRandom, 64, 10);
  EXPECT_EQ(a.order(), b.order());
  EXPECT_NE(a.order(), c.order());
}

TEST(Trajectory, RandomActuallyShuffles) {
  const Trajectory t = Trajectory::make(TrajectoryKind::kRandom, 64, 1);
  const Trajectory asc = Trajectory::make(TrajectoryKind::kAscending, 64);
  EXPECT_NE(t.order(), asc.order());
}

TEST(Trajectory, SizeOne) {
  const Trajectory t = Trajectory::make(TrajectoryKind::kRandom, 1, 3);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.at(0), 0u);
}

TEST(Trajectory, ToStringNames) {
  EXPECT_STREQ(to_string(TrajectoryKind::kAscending), "ascending");
  EXPECT_STREQ(to_string(TrajectoryKind::kDescending), "descending");
  EXPECT_STREQ(to_string(TrajectoryKind::kRandom), "random");
}

}  // namespace
}  // namespace prt::core
