// Cross-module integration tests: the full PRT stack against the March
// baselines on shared fault universes — the end-to-end story of the
// paper's evaluation, with the reproduced claim split into
//  * the classical model {SAF, TF, AF-none/wrong, adjacent CFin,
//    adjacent CFst (partial), bridges} reached by the pure 3-iteration
//    scheme, and
//  * the full van de Goor model (adds CFid, WDF, read-logic, AF-multi)
//    reached by the extended scheme with verify passes.
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "analysis/fault_sim.hpp"
#include "analysis/tdb_search.hpp"
#include "core/prt_multiport.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"

namespace prt {
namespace {

using analysis::CampaignOptions;
using analysis::run_campaign;

TEST(Integration, Prt3FullCoverageOnClassicalModel) {
  // The reproduced §3 headline on the classical fault model: three pure
  // pi-iterations detect every fault.
  for (mem::Addr n : {32u, 33u}) {
    const auto universe = mem::classical_universe(n);
    CampaignOptions opt;
    opt.n = n;
    const auto r = run_campaign(
        universe, analysis::prt_algorithm(core::standard_scheme_bom(n)),
        opt);
    EXPECT_EQ(r.overall.detected, r.overall.total)
        << "n=" << n << " escapes: " << r.escapes.size();
  }
}

TEST(Integration, ExtendedFullCoverageOnFullModel) {
  for (mem::Addr n : {18u, 32u}) {
    const auto universe = mem::van_de_goor_universe(n);
    CampaignOptions opt;
    opt.n = n;
    const auto r = run_campaign(
        universe, analysis::prt_algorithm(core::extended_scheme_bom(n)),
        opt);
    EXPECT_EQ(r.overall.detected, r.overall.total)
        << "n=" << n << " escapes: " << r.escapes.size();
  }
}

TEST(Integration, CoverageMonotoneOverIterations) {
  const mem::Addr n = 32;
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  double prev = 0;
  for (unsigned iters = 1; iters <= 3; ++iters) {
    const auto r = run_campaign(
        universe,
        analysis::prt_algorithm_prefix(core::standard_scheme_bom(n), iters),
        opt);
    EXPECT_GE(r.overall.percent(), prev - 1e-9) << iters;
    prev = r.overall.percent();
  }
  EXPECT_DOUBLE_EQ(prev, 100.0);
}

TEST(Integration, MarchCMinusAlsoFullOnClassicalModel) {
  const mem::Addr n = 32;
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  const auto r = run_campaign(
      universe, analysis::march_algorithm(march::march_c_minus()), opt);
  EXPECT_DOUBLE_EQ(r.overall.percent(), 100.0);
}

TEST(Integration, MatsWeakerThanPrt3) {
  const mem::Addr n = 32;
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  const auto mats =
      run_campaign(universe, analysis::march_algorithm(march::mats()), opt);
  const auto prt3 = run_campaign(
      universe, analysis::prt_algorithm(core::standard_scheme_bom(n)), opt);
  EXPECT_LT(mats.overall.percent(), prt3.overall.percent());
}

TEST(Integration, WomExtendedCoversSingleCellAndIntraWord) {
  const mem::Addr n = 24;
  const unsigned m = 4;
  mem::UniverseOptions uopt;
  uopt.coupling = false;
  uopt.bridges = false;
  uopt.address_decoder = false;
  uopt.intra_word = true;
  auto universe = mem::make_universe(n, m, uopt);
  CampaignOptions opt;
  opt.n = n;
  opt.m = m;
  const auto r = run_campaign(
      universe, analysis::prt_algorithm(core::extended_scheme_wom(n, m)),
      opt);
  EXPECT_DOUBLE_EQ(r.by_class.at(mem::FaultClass::kSaf).percent(), 100.0);
  EXPECT_DOUBLE_EQ(r.by_class.at(mem::FaultClass::kTf).percent(), 100.0);
  // Word-level backgrounds leave a slice of the intra-word CFid
  // variants to the dedicated bit-plane tester (core/intra_word).
  EXPECT_GT(r.overall.percent(), 90.0);
}

TEST(Integration, DualPortSchemeSameCoverageAsSinglePort) {
  // Fig. 2 speeds the iteration up; it must not lose detection.  SOF is
  // excluded: its sense-amp history is per-port, so port scheduling
  // legitimately changes which history bit a read echoes.
  const mem::Addr n = 24;
  auto universe = mem::single_cell_universe(n, 1, false);
  for (mem::Addr c = 0; c < n; ++c) {
    universe.push_back(mem::Fault::rdf({c, 0}));
    universe.push_back(mem::Fault::drdf({c, 0}));
    universe.push_back(mem::Fault::irf({c, 0}));
  }
  CampaignOptions opt;
  opt.n = n;
  opt.ports = 2;
  const core::PiTester tester(gf::GF2m(0b11), {1, 0, 1});

  auto make_configs = [] {
    std::vector<core::PiConfig> cfgs(3);
    cfgs[0].init = {1, 1};
    cfgs[1].init = {0, 0};
    cfgs[1].trajectory = core::TrajectoryKind::kDescending;
    cfgs[2].init = {0, 1};
    return cfgs;
  };
  auto dual_algo = [&](mem::Memory& mry) {
    bool bad = false;
    for (const auto& cfg : make_configs()) {
      bad |= !run_pi_dualport(mry, tester, cfg).pass;
    }
    return bad;
  };
  auto single_algo = [&](mem::Memory& mry) {
    bool bad = false;
    for (const auto& cfg : make_configs()) {
      bad |= !tester.run(mry, cfg).pass;
    }
    return bad;
  };

  const auto dual = run_campaign(universe, dual_algo, opt);
  const auto single = run_campaign(universe, single_algo, opt);
  EXPECT_EQ(dual.overall.detected, single.overall.detected);
}

TEST(Integration, OpCountRatioMatchesPaper) {
  // One pi-iteration is 3n; the 3-iteration scheme is 9n, below March
  // C-'s 10n, and a single iteration is far below.
  const mem::Addr n = 1024;
  EXPECT_EQ(core::prt_ops(n, 2, 1), 3u * n);
  EXPECT_EQ(core::prt_ops(n, 2, 3), 9u * n);
  EXPECT_EQ(march::march_c_minus().total_ops(n), 10u * n);
  EXPECT_LT(core::prt_ops(n, 2, 3), march::march_c_minus().total_ops(n));
}

TEST(Integration, SearchedTdbMatchesHandSchemeOnClassicalModel) {
  const mem::Addr n = 16;
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  const gf::GF2m f(0b11);
  const auto pool = analysis::default_candidates(f, {1, 1, 1});
  const auto searched = analysis::search_tdb(f, pool, universe, opt, 3);
  const auto hand = run_campaign(
      universe, analysis::prt_algorithm(core::standard_scheme_bom(n)), opt);
  EXPECT_GE(searched.coverage_by_iterations.back() + 1e-9,
            hand.overall.percent());
}

TEST(Integration, MisrAddsNoFalsePositives) {
  core::PrtScheme s = core::standard_scheme_wom(64, 4);
  s.misr_poly = 0b100011101;
  mem::SimRam ram(64, 4);
  EXPECT_FALSE(core::run_prt(ram, s).detected());
}

TEST(Integration, EndToEndReportRenders) {
  const mem::Addr n = 16;
  const auto universe = mem::van_de_goor_universe(n);
  CampaignOptions opt;
  opt.n = n;
  std::vector<analysis::NamedResult> rows;
  rows.push_back(
      {"PRT-3",
       run_campaign(universe,
                    analysis::prt_algorithm(core::standard_scheme_bom(n)),
                    opt)});
  rows.push_back(
      {"PRT-ext",
       run_campaign(universe,
                    analysis::prt_algorithm(core::extended_scheme_bom(n)),
                    opt)});
  rows.push_back(
      {"March C-",
       run_campaign(universe,
                    analysis::march_algorithm(march::march_c_minus()),
                    opt)});
  const Table t = analysis::coverage_table(rows);
  EXPECT_GT(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 5u);
}

}  // namespace
}  // namespace prt
