// Executes March tests against a Memory and reports detection.
//
// A March test detects a fault when any read returns a value different
// from the expected data.  For word-oriented memories the classic {0,1}
// data indices are expanded over a set of data backgrounds; the
// standard log2(m)+1 backgrounds (solid, checkerboard, double-stripe,
// ...) are provided.
#pragma once

#include <cstdint>
#include <vector>

#include "march/march_test.hpp"
#include "mem/memory.hpp"

namespace prt::march {

/// Outcome of one March run.
struct MarchResult {
  bool fail = false;          // any read mismatched
  std::uint64_t mismatches = 0;
  std::uint64_t ops = 0;      // reads + writes actually issued
  // First mismatch, valid when fail:
  mem::Addr first_addr = 0;
  mem::Word first_expected = 0;
  mem::Word first_actual = 0;
};

/// Runs `test` over the whole address space of `memory` with data
/// index 0 = `background`, index 1 = ~background.  Each "Del" element
/// advances the memory's virtual time by `delay_ticks` (data-retention
/// faults decay against that clock).
[[nodiscard]] MarchResult run_march(const MarchTest& test,
                                    mem::Memory& memory,
                                    mem::Word background = 0,
                                    std::uint64_t delay_ticks = 100'000);

/// Runs the test once per background and merges the results (a fault is
/// detected if any background run fails).
[[nodiscard]] MarchResult run_march_backgrounds(
    const MarchTest& test, mem::Memory& memory,
    const std::vector<mem::Word>& backgrounds);

/// The standard data backgrounds for an m-bit word: solid 0,
/// checkerboard 0101.., double stripe 0011.., quad stripe 00001111..,
/// etc — ceil(log2(m)) + 1 words.  m = 1 yields just {0}.
[[nodiscard]] std::vector<mem::Word> standard_backgrounds(unsigned m);

}  // namespace prt::march
