// Internal shard-loop scaffolding under the generic campaign driver
// (campaign_driver.hpp): per-fault tallying, the 64-lane batching loop
// with its escape re-sort, and the pool fan-out with the
// order-deterministic merge.  Keeping every campaign type on one copy
// of this machinery is what keeps their bit-identical-to-serial
// guarantees in lockstep — fix it here, all paths get it.
//
// Header is internal to analysis/ (included via campaign_driver.hpp
// by the campaign .cpp files only); the public surfaces are
// campaign_engine.hpp, march_campaign.hpp and campaign_suite.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "mem/packed_fault_ram.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis::detail {

/// Records one fault's verdict into the shard result (class + overall
/// counters, escape index on a miss).
inline void tally_fault(CampaignResult& out,
                        std::span<const mem::Fault> universe, std::size_t i,
                        bool detected) {
  auto& cls = out.by_class[mem::fault_class(universe[i].kind)];
  ++cls.total;
  ++out.overall.total;
  if (detected) {
    ++cls.detected;
    ++out.overall.detected;
  } else {
    out.escapes.push_back(i);
  }
}

/// All-scalar shard loop: run_scalar(i) -> detected, charging its own
/// ops to `out`.  Polls `stop` per fault; returns false (shard
/// abandoned — `out` is partial and must be discarded) once a stop is
/// observed, true when the shard ran to completion.  A
/// default-constructed token never stops, so the poll is one null
/// check on the non-cancellable paths.
template <typename RunScalar>
bool scalar_shard(std::span<const mem::Fault> universe, std::size_t begin,
                  std::size_t end, CampaignResult& out,
                  RunScalar&& run_scalar, const util::StopToken& stop = {}) {
  for (std::size_t i = begin; i < end; ++i) {
    if (stop.stop_requested()) return false;
    tally_fault(out, universe, i, run_scalar(i));
    ++out.scalar_faults;
  }
  return true;
}

/// Lane-batched shard loop: compatible faults ride the packed ram
/// kLanes at a time (64 for the LaneWord instantiation, 256/512 for
/// the wide words), the rest run scalar in place.  run_batch(packed)
/// runs one flushed batch and returns {detected lane word, ops to
/// charge for the whole batch}; run_scalar(i) -> detected as above.
/// Escapes are gathered out of order and sorted once — counts and op
/// sums are order-independent, so the shard output is bit-identical to
/// the all-scalar loop *and* to itself at any other lane width (the
/// per-lane verdicts are width-invariant; only the sched telemetry
/// records which width ran).  Polls `stop` per fault, same contract as
/// scalar_shard (false = shard abandoned, discard `out`).
template <typename W, typename RunBatch, typename RunScalar>
bool lane_batched_shard(std::span<const mem::Fault> universe,
                        std::size_t begin, std::size_t end,
                        mem::PackedFaultRamT<W>& packed, CampaignResult& out,
                        RunBatch&& run_batch, RunScalar&& run_scalar,
                        const util::StopToken& stop = {}) {
  constexpr unsigned kLanes = mem::PackedFaultRamT<W>::kLanes;
  std::array<std::size_t, kLanes> batch_index{};
  auto flush = [&]() {
    const unsigned lanes = packed.lanes_used();
    if (lanes == 0) return;
    const auto [detected, ops] = run_batch(packed);
    out.ops += ops;
    out.packed_faults += lanes;
    if constexpr (mem::is_wide_lane_word_v<W>) out.sched.wide_faults += lanes;
    out.sched.max_lanes = std::max(out.sched.max_lanes, kLanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      tally_fault(out, universe, batch_index[lane],
                  mem::lane_test(detected, lane));
    }
    packed.reset();
  };
  for (std::size_t i = begin; i < end; ++i) {
    if (stop.stop_requested()) return false;
    if (mem::lane_compatible(universe[i], packed.width())) {
      batch_index[packed.add_fault(universe[i])] = i;
      if (packed.lanes_used() == kLanes) flush();
    } else {
      tally_fault(out, universe, i, run_scalar(i));
      ++out.scalar_faults;
    }
  }
  flush();
  std::sort(out.escapes.begin(), out.escapes.end());
  return true;
}

/// Pool fan-out with the order-deterministic merge: splits
/// [0, universe_size) into fixed-size batches of `batch_size` faults,
/// fans them out over `pool` (created lazily, `workers` wide) with the
/// work-stealing scheduler (util::ThreadPool::parallel_for_batches),
/// and merges per-batch results in batch-index order.  Falls back to
/// one inline shard when parallelism is off or pointless.
/// run_shard(begin, end, out) -> bool fills one shard (false = the
/// shard observed `stop` and abandoned; its partial output is
/// discarded).  Shards that completed before the stop still count:
/// their ranges ascend even when non-contiguous, so the partial merge
/// is an exact tally over exactly the covered faults.
///
/// Determinism: batch boundaries depend only on (universe_size,
/// batch_size) — never on the worker count or who stole what — and
/// the merge folds them in index order, so the merged CampaignResult
/// is bit-identical at any thread count.  The scheduler's stolen-batch
/// telemetry lands in result.sched (batches = completed batches,
/// steals from the pool's counters), which equality ignores.
template <typename RunShard>
CampaignOutcome run_sharded(std::size_t universe_size, unsigned workers,
                            bool parallel, std::size_t batch_size,
                            std::unique_ptr<util::ThreadPool>& pool,
                            RunShard&& run_shard,
                            const util::StopToken& stop = {}) {
  CampaignOutcome out;
  if (!parallel || workers == 1 || universe_size < 2) {
    out.shards_total = 1;
    CampaignResult result;
    if (run_shard(std::size_t{0}, universe_size, result)) {
      result.sched.batches = 1;
      out.result = std::move(result);
      out.shards_done = 1;
    }
  } else {
    if (!pool) pool = std::make_unique<util::ThreadPool>(workers);
    if (batch_size == 0) batch_size = 1;
    const std::size_t nbatches =
        (universe_size + batch_size - 1) / batch_size;
    out.shards_total = nbatches;
    std::vector<CampaignResult> shards(nbatches);
    // Completion flags are unsigned char, not vector<bool>: each batch
    // writes only its own slot, which bit-packing would turn into a
    // data race on the shared byte.
    std::vector<unsigned char> done(nbatches, 0);
    const util::StealCounters counters = pool->parallel_for_batches(
        universe_size, batch_size,
        [&](std::size_t batch, std::size_t begin, std::size_t end) {
          done[batch] = run_shard(begin, end, shards[batch]) ? 1 : 0;
        });
    std::vector<CampaignResult> completed;
    completed.reserve(nbatches);
    for (std::size_t s = 0; s < nbatches; ++s) {
      if (done[s] != 0) {
        completed.push_back(std::move(shards[s]));
        ++out.shards_done;
      }
    }
    out.result = merge_results(completed);
    // Batch count is deterministic (completed batches); the steal
    // count is genuine timing telemetry and varies run to run.
    out.result.sched.batches = out.shards_done;
    out.result.sched.steals = counters.steals;
  }
  out.status = out.shards_done == out.shards_total
                   ? RunStatus::kComplete
                   : status_from(stop.reason());
  return out;
}

}  // namespace prt::analysis::detail
