// Capability-annotated synchronization primitives.
//
// Clang Thread Safety Analysis (-Wthread-safety) proves lock
// discipline at compile time: every field annotated GUARDED_BY(mu) is
// only touched with `mu` held, every function annotated REQUIRES(mu)
// is only called with `mu` held, and a forgotten unlock is a compile
// error.  The analysis only sees mutexes whose operations carry the
// capability attributes, so this header wraps std::mutex /
// std::condition_variable in annotated `util::Mutex` / `util::CondVar`
// and the whole concurrency stack (thread_pool, fail_point,
// oracle_cache, campaign_service) declares its locks through them.
// The project lint (scripts/run_lint.py) flags raw std::mutex /
// std::condition_variable declarations anywhere else in src/, so new
// concurrent code lands annotated by construction.
//
// The attributes compile away to nothing on compilers without
// thread-safety analysis (gcc): the wrappers are zero-cost veneers and
// the annotated tree builds identically everywhere.  CI's lint lane
// builds with clang `-Wthread-safety -Werror`, which is where the
// proofs actually run.  See DESIGN.md §12.
//
// Three deliberate analysis gaps, shared by every TSA deployment:
//  * condition-variable waits release and reacquire the mutex inside
//    wait(); the analysis treats the lock as continuously held, which
//    is exactly the invariant the *caller* relies on (the predicate
//    and the post-wait code run under the lock).  Wait predicates must
//    be written as explicit `while (!pred) cv.wait(lock)` loops — a
//    lambda predicate is analyzed as a separate unannotated function
//    and would warn on every guarded-field access.
//  * atomics intentionally bypass the analysis (they are their own
//    synchronization); fields that pair an atomic fast path with a
//    mutex-guarded slow path document the protocol with an invariant
//    comment instead (see fail_point.cpp's armed-count).
//  * data published before threads exist (constructor state,
//    setup-then-fan-out fields) is safe via happens-before rather than
//    mutual exclusion; such fields carry an invariant comment naming
//    the publication point (see campaign_service.cpp ServiceRequest).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// --- attribute macros -----------------------------------------------
// Names follow the canonical mutex.h from the Clang Thread Safety
// Analysis documentation, prefixed PRT_ to stay out of other
// libraries' way.

#if defined(__clang__) && (!defined(SWIG))
#define PRT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRT_THREAD_ANNOTATION(x)  // no-op: analysis is clang-only
#endif

#define PRT_CAPABILITY(x) PRT_THREAD_ANNOTATION(capability(x))
#define PRT_SCOPED_CAPABILITY PRT_THREAD_ANNOTATION(scoped_lockable)
#define PRT_GUARDED_BY(x) PRT_THREAD_ANNOTATION(guarded_by(x))
#define PRT_PT_GUARDED_BY(x) PRT_THREAD_ANNOTATION(pt_guarded_by(x))
#define PRT_ACQUIRE(...) \
  PRT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PRT_RELEASE(...) \
  PRT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PRT_TRY_ACQUIRE(...) \
  PRT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PRT_REQUIRES(...) \
  PRT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PRT_EXCLUDES(...) PRT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PRT_RETURN_CAPABILITY(x) PRT_THREAD_ANNOTATION(lock_returned(x))
#define PRT_NO_THREAD_SAFETY_ANALYSIS \
  PRT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace prt::util {

/// Annotated std::mutex.  Declare shared state as
/// `T field PRT_GUARDED_BY(mutex_);` and take the lock with MutexLock;
/// clang then rejects any unlocked access to `field` at compile time.
class PRT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PRT_ACQUIRE() { m_.lock(); }
  void unlock() PRT_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() PRT_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// The wrapped mutex, for interop with std condition variables.
  /// Locking through it bypasses the analysis — only MutexLock and
  /// CondVar may touch it.
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock over a util::Mutex — the std::unique_lock of the
/// annotated world.  Scoped-capability: clang knows the capability is
/// held from construction to destruction (or between explicit
/// Unlock()/Lock() pairs) and releases it on every exit path.
class PRT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PRT_ACQUIRE(mutex)
      : mutex_(mutex), lock_(mutex.native()) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() PRT_RELEASE() = default;

  /// Manual unlock before scope exit (e.g. to run a slow call outside
  /// the critical section).  The destructor handles the unlocked case.
  void Unlock() PRT_RELEASE() { lock_.unlock(); }

  /// Re-acquire after Unlock().
  void Lock() PRT_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with util::Mutex.  wait() requires the
/// lock (enforced via the MutexLock it takes); write predicates as
/// explicit while-loops at the call site so guarded-field reads stay
/// inside the analyzed, lock-holding function:
///
///   MutexLock lock(mutex_);
///   while (!done_) cv_.wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks, reacquires before
  /// returning.  From the caller's (and the analysis') point of view
  /// the capability is held across the call — which is the contract
  /// the surrounding while-loop relies on.
  void wait(MutexLock& lock) PRT_REQUIRES(lock.mutex_) {
    cv_.wait(lock.lock_);
  }

  /// Timed wait (same capability contract as wait()).  Returns
  /// std::cv_status::timeout when `rel_time` elapsed; spurious wakeups
  /// are possible either way, so callers re-check their predicate in
  /// the surrounding while-loop exactly as with wait().
  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& rel_time)
      PRT_REQUIRES(lock.mutex_) {
    return cv_.wait_for(lock.lock_, rel_time);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace prt::util
