// Tests for dense GF(2) matrices (gf/matrix_gf2).
#include "gf/matrix_gf2.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace prt::gf {
namespace {

MatrixGF2 random_matrix(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  MatrixGF2 m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, rng.chance(1, 2));
    }
  }
  return m;
}

TEST(MatrixGF2, GetSetRoundTrip) {
  MatrixGF2 m(3, 70);  // spans two words per row
  m.set(1, 0, true);
  m.set(1, 69, true);
  m.set(2, 64, true);
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 69));
  EXPECT_TRUE(m.get(2, 64));
  EXPECT_FALSE(m.get(0, 0));
  m.set(1, 69, false);
  EXPECT_FALSE(m.get(1, 69));
}

TEST(MatrixGF2, IdentityIsIdentity) {
  const MatrixGF2 id = MatrixGF2::identity(8);
  EXPECT_TRUE(id.is_identity());
  const MatrixGF2 m = random_matrix(8, 8, 1);
  EXPECT_EQ(id.mul(m), m);
  EXPECT_EQ(m.mul(id), m);
}

TEST(MatrixGF2, MultiplicationAssociative) {
  const MatrixGF2 a = random_matrix(6, 5, 2);
  const MatrixGF2 b = random_matrix(5, 7, 3);
  const MatrixGF2 c = random_matrix(7, 4, 4);
  EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
}

TEST(MatrixGF2, MulVec64MatchesMul) {
  const MatrixGF2 a = random_matrix(10, 10, 5);
  const MatrixGF2 b = random_matrix(10, 10, 6);
  const MatrixGF2 ab = a.mul(b);
  for (std::uint64_t x = 0; x < 1024; x += 37) {
    EXPECT_EQ(ab.mul_vec64(x), a.mul_vec64(b.mul_vec64(x)));
  }
}

TEST(MatrixGF2, MulVecWideVector) {
  const MatrixGF2 m = random_matrix(5, 100, 7);
  std::vector<std::uint64_t> v(2, 0);
  v[0] = 0xdeadbeefcafebabeULL;
  v[1] = 0x123456789abcdefULL;
  const auto y = m.mul_vec(v);
  for (std::size_t r = 0; r < 5; ++r) {
    unsigned expected = 0;
    for (std::size_t c = 0; c < 100; ++c) {
      if (m.get(r, c)) expected ^= static_cast<unsigned>((v[c / 64] >> (c % 64)) & 1U);
    }
    EXPECT_EQ((y[0] >> r) & 1U, expected) << "row " << r;
  }
}

TEST(MatrixGF2, PowMatchesRepeatedMul) {
  const MatrixGF2 m = random_matrix(6, 6, 8);
  MatrixGF2 acc = MatrixGF2::identity(6);
  for (unsigned e = 0; e < 10; ++e) {
    EXPECT_EQ(m.pow(e), acc) << "e=" << e;
    acc = acc.mul(m);
  }
}

TEST(MatrixGF2, PowZeroIsIdentity) {
  EXPECT_TRUE(random_matrix(4, 4, 9).pow(0).is_identity());
}

TEST(MatrixGF2, TransposeInvolution) {
  const MatrixGF2 m = random_matrix(5, 9, 10);
  EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(MatrixGF2, TransposeOfProduct) {
  const MatrixGF2 a = random_matrix(4, 6, 11);
  const MatrixGF2 b = random_matrix(6, 3, 12);
  EXPECT_EQ(a.mul(b).transpose(), b.transpose().mul(a.transpose()));
}

TEST(MatrixGF2, RankOfIdentity) {
  EXPECT_EQ(MatrixGF2::identity(12).rank(), 12u);
}

TEST(MatrixGF2, RankOfZero) { EXPECT_EQ(MatrixGF2(5, 5).rank(), 0u); }

TEST(MatrixGF2, RankDuplicateRows) {
  MatrixGF2 m(3, 4);
  m.set(0, 0, true);
  m.set(0, 2, true);
  m.set(1, 0, true);
  m.set(1, 2, true);  // row 1 == row 0
  m.set(2, 1, true);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(MatrixGF2, InverseTimesSelfIsIdentity) {
  // Build an invertible matrix: identity plus strictly-upper random.
  MatrixGF2 m = MatrixGF2::identity(8);
  Xoshiro256 rng(13);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = r + 1; c < 8; ++c) {
      m.set(r, c, rng.chance(1, 2));
    }
  }
  const MatrixGF2 inv = m.inverse();
  ASSERT_EQ(inv.rows(), 8u);
  EXPECT_TRUE(m.mul(inv).is_identity());
  EXPECT_TRUE(inv.mul(m).is_identity());
}

TEST(MatrixGF2, SingularHasNoInverse) {
  MatrixGF2 m(4, 4);
  m.set(0, 0, true);
  m.set(1, 0, true);  // rank 1
  EXPECT_EQ(m.inverse().rows(), 0u);
}

TEST(MatrixGF2, XorRow) {
  MatrixGF2 m(2, 65);
  m.set(0, 64, true);
  m.set(1, 0, true);
  m.xor_row(1, 0);
  EXPECT_TRUE(m.get(1, 64));
  EXPECT_TRUE(m.get(1, 0));
  m.xor_row(1, 0);
  EXPECT_FALSE(m.get(1, 64));
}

}  // namespace
}  // namespace prt::gf
