// Oracle-backed, thread-parallel fault-simulation campaign engine for
// PRT schemes.
//
// run_campaign (fault_sim.hpp) evaluates an arbitrary TestAlgorithm
// serially; this engine is the fast path for the common case where the
// algorithm is a PRT scheme.  Since PR 5 it is a thin facade over the
// generic analysis::CampaignDriver (campaign_driver.hpp) instantiated
// with the PRT workload — MarchCampaign is the same driver with the
// March workload, and CampaignSuite fans one request over a grid of
// configurations on the same machinery:
//
//  * everything a scheme derives from its own structure — trajectory
//    permutations, golden LFSR sequences, expected images, Fin*
//    states, golden MISR signatures, and the compiled core::
//    OpTranscript — is fetched from the process-wide, thread-safe
//    analysis::OracleCache, built exactly once per (scheme, n) and
//    shared read-only by every fault, every worker and every engine;
//  * the fault universe is sharded over a worker pool in contiguous
//    index ranges and merged in shard order, so the output is
//    bit-identical to the serial reference at any thread count;
//  * each worker owns one FaultyRam and rewinds it with reset(fault) —
//    no allocation, no LFSR re-derivation in the per-fault loop;
//  * for GF(2) bit-oriented campaigns every hot loop is a tight replay
//    of the cached transcript: the scalar fallback runs
//    core::run_prt_transcript (devirtualized FaultyRam) and
//    lane-compatible faults are batched 64 per sweep onto a bit-packed
//    mem::PackedFaultRam via run_prt_packed, with early abort
//    composing through per-lane mismatch retirement.
//
// See DESIGN.md §7/§8/§9/§10 and bench/bench_campaign.cpp.
#pragma once

#include <memory>
#include <span>

#include "analysis/fault_sim.hpp"
#include "core/prt_engine.hpp"

namespace prt::analysis {

namespace detail {
class PrtWorkload;
template <typename Workload>
class CampaignDriver;
}  // namespace detail

struct EngineOptions {
  /// Worker count; 0 defers to the PRT_THREADS environment override,
  /// then the hardware concurrency (util::default_worker_count).
  unsigned threads = 0;
  /// Fan the universe out over the pool.  Off = one shard, inline on
  /// the calling thread (still oracle-backed and allocation-free).
  bool parallel = true;
  /// Reuse the precomputed PrtOracle per fault.  Turning this off
  /// re-derives the scheme per fault like the legacy path — only
  /// useful as a bench baseline.
  bool use_oracle = true;
  /// Stop each fault's run at the first failing iteration.  Verdicts
  /// (and therefore coverage numbers and escapes) are unchanged;
  /// CampaignResult::ops shrinks.  Composes with `packed`: packed
  /// batches retire lanes as their mismatch latches and stop when the
  /// detected mask saturates, with op accounting still bit-identical
  /// to the scalar early-abort path (core/prt_packed).  Keep off when
  /// the campaign's read/write counts must reflect complete runs.
  bool early_abort = false;
  /// Evaluate lane-compatible faults (single-bit SAF/TF/WDF, the
  /// read-logic kinds, the two-cell CFin/CFid/CFst/bridge kinds, the
  /// decoder kinds, static NPSF neighbourhoods and retention faults)
  /// 64 per sweep on a bit-packed mem::PackedFaultRam
  /// (core/prt_packed).  Applies whenever the campaign word width
  /// equals the scheme's field degree — GF(2) bit-oriented and
  /// GF(2^m) word-oriented schemes alike (the word path rides m bit
  /// planes per cell).  Results stay bit-identical to the all-scalar
  /// reference; the rare residue (e.g. degenerate CFst trigger
  /// states, victim bits beyond the word width) falls back per fault.
  /// Ignored (everything scalar) when the scheme is not packable or
  /// use_oracle is off.
  bool packed = true;
  /// Lane width of the packed sweeps: 64 (one std::uint64_t lane
  /// word), 256 or 512 (SIMD-wide mem::WideWord lanes — profitable
  /// when the build vectorizes them, see the PRT_SIMD CMake option),
  /// or 0 to defer to mem::default_lane_width() (the PRT_LANES
  /// environment override, else 256 on PRT_SIMD builds, else 64).
  /// Per-batch the driver falls back to 64 whenever a batch cannot
  /// fill at least half the wide lanes.  Verdicts, coverage, escapes
  /// and op accounting are bit-identical at every width — only
  /// throughput and the CampaignResult::sched telemetry change.
  unsigned lane_width = 0;
};

class CampaignEngine {
 public:
  /// Fetches the per-(scheme, n) artifacts from OracleCache::global()
  /// (building them on first use).  Throws std::invalid_argument on
  /// malformed options (validate_campaign_options).  Precondition:
  /// opt.n exceeds the scheme's register length k; opt.m equals the
  /// scheme field's m.
  CampaignEngine(core::PrtScheme scheme, const CampaignOptions& opt,
                 const EngineOptions& engine = {});
  ~CampaignEngine();
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  [[nodiscard]] const core::PrtScheme& scheme() const;
  [[nodiscard]] const core::PrtOracle& oracle() const;

  /// Simulates every fault of the universe.  Identical CampaignResult
  /// to run_campaign(universe, prt_algorithm(scheme), opt) regardless
  /// of thread count.  Not safe to call concurrently on one engine
  /// (workers share the engine's pool); distinct engines are
  /// independent.
  [[nodiscard]] CampaignResult run(std::span<const mem::Fault> universe) const;

  /// Cancellable run: shard loops poll `stop` per fault, interrupted
  /// shards are discarded whole, and the outcome carries the merge of
  /// the completed shards plus why the run ended (CampaignOutcome in
  /// fault_sim.hpp).  With a never-stopping token the result is
  /// bit-identical to run().
  [[nodiscard]] CampaignOutcome run(std::span<const mem::Fault> universe,
                                    const util::StopToken& stop) const;

 private:
  std::unique_ptr<detail::CampaignDriver<detail::PrtWorkload>> driver_;
};

/// Convenience: one-shot engine run with default engine options.
[[nodiscard]] CampaignResult run_prt_campaign(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const CampaignOptions& opt, const EngineOptions& engine = {});

}  // namespace prt::analysis
