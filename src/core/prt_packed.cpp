#include "core/prt_packed.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/bitops.hpp"

namespace prt::core {

bool prt_scheme_packable(const PrtScheme& scheme) {
  if (scheme.field_modulus != 0b11) return false;  // GF(2) only
  if (scheme.iterations.empty()) return false;
  for (const SchemeIteration& it : scheme.iterations) {
    if (it.g.size() < 2) return false;
    // The transcript's feedback-selection mask covers windows up to 64
    // positions wide (every real scheme uses k = 2).
    if (it.g.size() > 65) return false;
    for (const gf::Elem c : it.g) {
      if (c > 1) return false;
    }
    if (it.config.init.size() != it.g.size() - 1) return false;
    for (const gf::Elem d : it.config.init) {
      if (d > 1) return false;
    }
  }
  return true;
}

PackedVerdict run_prt_packed(mem::PackedFaultRam& ram,
                             const OpTranscript& t,
                             const PackedRunOptions& options,
                             PackedScratch& scratch) {
  assert(!t.iterations.empty());
  assert(t.n == ram.size());
  const mem::Addr n = t.n;
  const bool use_misr = t.misr_poly != 0;
  const unsigned misr_width =
      use_misr ? static_cast<unsigned>(poly_degree(t.misr_poly)) : 0;
  if (scratch.misr.size() < misr_width) scratch.misr.resize(misr_width);
  mem::LaneWord* misr = scratch.misr.data();

  const mem::LaneWord active = ram.active_mask();
  PackedVerdict verdict;
  mem::LaneWord mismatch = 0;
  // Active lanes whose mismatch has not latched yet; a detected lane
  // is retired immediately (its verdict is final), and the run stops
  // once every active lane is retired.
  mem::LaneWord pending = active;

  for (const PrtIterSpan& it : t.iterations) {
    const OpRec* traj = t.recs.data() + it.traj_begin;
    const unsigned kk = it.k;
    // 64 independent MISRs, bit-sliced: state bit b of all lanes lives
    // in misr[b], so one shift costs O(width) lane-wide XORs instead
    // of 64 scalar shifts.  Mirrors lfsr::Misr::shift exactly.
    if (use_misr) std::fill_n(misr, misr_width, mem::LaneWord{0});
    auto misr_shift = [&](mem::LaneWord input) {
      const mem::LaneWord msb = misr[misr_width - 1];
      for (unsigned b = misr_width; b-- > 1;) {
        misr[b] = misr[b - 1] ^ (((t.misr_poly >> b) & 1U) ? msb : 0);
      }
      misr[0] = (((t.misr_poly & 1U) != 0) ? msb : 0) ^ input;
    };

    // Initialization: broadcast the seed values to every lane.
    for (unsigned j = 0; j < kk; ++j) {
      ram.write(traj[j].addr, mem::lane_broadcast(traj[j].golden));
    }

    // Sweep: each lane's feedback is the XOR of its own window reads
    // selected by the transcript's feedback mask (Eq. 1 over GF(2)),
    // accumulated inline — no window buffer.  Nothing latches during
    // the sweep, so there is no abort point inside it.
    for (mem::Addr q = 0; q + kk < n; ++q) {
      mem::LaneWord fb = 0;
      for (unsigned j = 0; j < kk; ++j) {
        const mem::LaneWord w = ram.read(traj[q + j].addr);
        if (use_misr) misr_shift(w);
        if ((it.fb_mask >> j) & 1U) fb ^= w;
      }
      ram.write(traj[q + kk].addr, fb);
    }

    // Verdict: Fin read-back against Fin*, Init re-read against the
    // seed — any deviating lane is detected.
    for (unsigned j = 0; j < kk; ++j) {
      const mem::LaneWord raw = ram.read(traj[n - kk + j].addr);
      mismatch |= raw ^ mem::lane_broadcast(traj[n - kk + j].golden);
      if (use_misr) misr_shift(raw);
    }
    for (unsigned j = 0; j < kk; ++j) {
      const mem::LaneWord raw = ram.read(traj[j].addr);
      mismatch |= raw ^ mem::lane_broadcast(traj[j].golden);
      if (use_misr) misr_shift(raw);
    }

    if (it.has_verify) {
      // No lane-compatible fault is clock-dependent, so the pause only
      // mirrors the scalar control flow.
      if (it.pause_ticks != 0) ram.advance_time(it.pause_ticks);
      const OpRec* img = t.recs.data() + it.verify_begin;
      for (mem::Addr a = 0; a < n; ++a) {
        mismatch |= ram.read(img[a].addr) ^ mem::lane_broadcast(img[a].golden);
        // Once every pending lane has latched, the rest of the verify
        // pass cannot change any verdict (the latch is monotone and
        // verify reads do not feed the MISR) — skip it.  The reported
        // ops stay the scalar-equivalent complete-iteration count.
        if (options.early_abort && (pending & ~mismatch) == 0) break;
      }
    }
    if (use_misr) {
      // Lanes whose signature differs from the golden scalar signature.
      for (unsigned b = 0; b < misr_width; ++b) {
        mismatch |= misr[b] ^ mem::lane_broadcast(
                                  static_cast<unsigned>((it.misr_expected >> b) & 1U));
      }
    }

    if (options.early_abort) {
      // Lanes that latched this iteration ran, scalar-equivalently,
      // every iteration up to and including this one — the
      // transcript's abort-op prefix sum.
      const mem::LaneWord newly = pending & mismatch;
      verdict.scalar_ops +=
          static_cast<std::uint64_t>(std::popcount(newly)) * it.ops_end();
      pending &= ~mismatch;
      if (pending == 0) {
        verdict.detected = mismatch;
        return verdict;
      }
    }
  }
  // Remaining lanes (all active lanes when early_abort is off) ran the
  // complete scheme.
  const mem::LaneWord full = options.early_abort ? pending : active;
  verdict.scalar_ops +=
      static_cast<std::uint64_t>(std::popcount(full)) * t.total_ops();
  verdict.detected = mismatch;
  return verdict;
}

PackedVerdict run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle,
                             const PackedRunOptions& options) {
  assert(prt_scheme_packable(scheme));
  assert(oracle.n == ram.size());
  const OpTranscript transcript = make_op_transcript(scheme, oracle);
  PackedScratch scratch;
  return run_prt_packed(ram, transcript, options, scratch);
}

std::uint64_t run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle) {
  return run_prt_packed(ram, scheme, oracle, PackedRunOptions{}).detected;
}

}  // namespace prt::core
