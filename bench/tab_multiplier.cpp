// Reproduces the §2 claim: "It's proposed an algorithm to design the
// optimal scheme of multiplication by a constant in GF.  Multiplier by
// a constant contains only XOR-gates."  Ablation: naive per-row
// synthesis vs greedy common-subexpression elimination (Paar), gate
// counts and depths across fields and constants.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gf/const_mult.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;

void print_tables() {
  std::printf("== constant-multiplier XOR synthesis, naive vs CSE ==\n");
  Table t({"field", "constants", "naive gates (avg)", "CSE gates (avg)",
           "saving %", "max depth naive", "max depth CSE"});
  t.set_align(0, Align::kLeft);
  for (unsigned m : {4u, 6u, 8u, 10u}) {
    const gf::GF2m field = gf::GF2m::standard(m);
    std::uint64_t naive_total = 0;
    std::uint64_t cse_total = 0;
    unsigned naive_depth = 0;
    unsigned cse_depth = 0;
    const gf::Elem limit = static_cast<gf::Elem>(
        m <= 8 ? field.size() : 256u);  // sample large fields
    for (gf::Elem c = 1; c < limit; ++c) {
      const gf::MatrixGF2 mat = gf::multiplier_matrix(field, c);
      const gf::XorNetwork naive = gf::synthesize_naive(mat);
      const gf::XorNetwork cse = gf::synthesize_cse(mat);
      naive_total += naive.gate_count();
      cse_total += cse.gate_count();
      naive_depth = std::max(naive_depth, naive.depth());
      cse_depth = std::max(cse_depth, cse.depth());
    }
    const double count = limit - 1;
    t.add("GF(2^" + std::to_string(m) + ")",
          static_cast<std::uint64_t>(count),
          format_fixed(static_cast<double>(naive_total) / count, 2),
          format_fixed(static_cast<double>(cse_total) / count, 2),
          format_fixed(100.0 * (1.0 - static_cast<double>(cse_total) /
                                          static_cast<double>(naive_total)),
                       1),
          naive_depth, cse_depth);
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("== the paper's feedback w = 2*r1 + 2*r2 over GF(2^4) ==\n");
  const gf::GF2m f4(0b10011);
  const gf::XorNetwork mul2 =
      gf::synthesize_cse(gf::multiplier_matrix(f4, 2));
  const gf::FeedbackCost cost = gf::feedback_cost(f4, {1, 2, 2});
  Table b({"block", "XOR gates"});
  b.set_align(0, Align::kLeft);
  b.add("multiply-by-2 (one instance)", mul2.gate_count());
  b.add("both coefficient multipliers", cost.multiplier_gates);
  b.add("word adder", cost.adder_gates);
  b.add("TOTAL feedback", cost.total());
  std::printf("%s\n", b.str().c_str());
}

void BM_SynthesizeCseGf256(benchmark::State& state) {
  const gf::GF2m field = gf::GF2m::standard(8);
  const gf::MatrixGF2 mat = gf::multiplier_matrix(
      field, static_cast<gf::Elem>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::synthesize_cse(mat));
  }
}
BENCHMARK(BM_SynthesizeCseGf256)->Arg(0x53)->Arg(0xff);

void BM_SynthesizeNaiveGf256(benchmark::State& state) {
  const gf::GF2m field = gf::GF2m::standard(8);
  const gf::MatrixGF2 mat = gf::multiplier_matrix(
      field, static_cast<gf::Elem>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::synthesize_naive(mat));
  }
}
BENCHMARK(BM_SynthesizeNaiveGf256)->Arg(0x53)->Arg(0xff);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
