#include "util/table.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace prt {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {}

void Table::set_align(std::size_t col, Align align) {
  assert(col < aligns_.size());
  aligns_[col] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) {
  char buf[64];
  if (v != 0.0 && (std::fabs(v) < 1e-3 || std::fabs(v) >= 1e7)) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      out << ' ';
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << row[c];
      if (aligns_[c] == Align::kLeft) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_pow2_ratio(double ratio) {
  char buf[64];
  if (ratio <= 0) return "0";
  const double log2v = std::log2(ratio);
  std::snprintf(buf, sizeof buf, "2^%.1f", log2v);
  return buf;
}

}  // namespace prt
