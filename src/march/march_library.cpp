#include "march/march_library.hpp"

#include <cassert>

namespace prt::march {

namespace {

/// All canonical tests are written in the ASCII notation and parsed by
/// our own parser — the parser is therefore exercised on every use and
/// the definitions stay readable side-by-side with the literature.
MarchTest from_notation(const char* name, const char* notation) {
  auto test = parse_march(notation, name);
  assert(test && "canonical March notation must parse");
  return std::move(*test);
}

}  // namespace

MarchTest mats() {
  return from_notation("MATS", "{c(w0);c(r0,w1);c(r1)}");
}

MarchTest mats_plus() {
  return from_notation("MATS+", "{c(w0);^(r0,w1);v(r1,w0)}");
}

MarchTest mats_pp() {
  return from_notation("MATS++", "{c(w0);^(r0,w1);v(r1,w0,r0)}");
}

MarchTest march_x() {
  return from_notation("March X", "{c(w0);^(r0,w1);v(r1,w0);c(r0)}");
}

MarchTest march_y() {
  return from_notation("March Y", "{c(w0);^(r0,w1,r1);v(r1,w0,r0);c(r0)}");
}

MarchTest march_c_minus() {
  return from_notation(
      "March C-",
      "{c(w0);^(r0,w1);^(r1,w0);v(r0,w1);v(r1,w0);c(r0)}");
}

MarchTest march_a() {
  return from_notation(
      "March A",
      "{c(w0);^(r0,w1,w0,w1);^(r1,w0,w1);v(r1,w0,w1,w0);v(r0,w1,w0)}");
}

MarchTest march_b() {
  return from_notation(
      "March B",
      "{c(w0);^(r0,w1,r1,w0,r0,w1);^(r1,w0,w1);v(r1,w0,w1,w0);"
      "v(r0,w1,w0)}");
}

MarchTest march_sr() {
  return from_notation(
      "March SR",
      "{v(w0);^(r0,w1,r1,w0);^(r0,r0);^(w1);v(r1,w0,r0,w1);v(r1,r1)}");
}

MarchTest march_lr() {
  return from_notation(
      "March LR",
      "{c(w0);v(r0,w1);^(r1,w0,r0,w1);^(r1,w0);^(r0,w1,r1,w0);^(r0)}");
}

MarchTest march_ss() {
  return from_notation(
      "March SS",
      "{c(w0);^(r0,r0,w0,r0,w1);^(r1,r1,w1,r1,w0);v(r0,r0,w0,r0,w1);"
      "v(r1,r1,w1,r1,w0);c(r0)}");
}

MarchTest march_g() {
  return from_notation(
      "March G",
      "{c(w0);^(r0,w1,r1,w0,r0,w1);^(r1,w0,w1);v(r1,w0,w1,w0);"
      "v(r0,w1,w0);Del;c(r0,w1,r1);Del;c(r1,w0,r0)}");
}

MarchTest paper_march_a() {
  return from_notation("MarchA (paper §1)", "{c(w0);^(r0,w1);v(r1,w0)}");
}

std::vector<MarchTest> all_march_tests() {
  return {mats(),     mats_plus(),     mats_pp(), march_x(),
          march_y(),  march_c_minus(), march_a(), march_b(),
          march_sr(), march_lr(),      march_ss(), march_g()};
}

}  // namespace prt::march
