// Polynomials with coefficients in GF(2^m).  These describe the
// word-oriented virtual LFSR of the paper: g(x) = 1 + 2x + 2x^2 over
// GF(2^4) is the Fig. 1b generator.  Supports the arithmetic needed to
// (a) check irreducibility/primitivity of g(x) over the extension field
// and (b) compute the LFSR period (order of x modulo g).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gf/gf2m.hpp"

namespace prt::gf {

/// A polynomial over GF(2^m): coeffs[i] is the coefficient of x^i.
/// Invariant (normalized): empty == zero polynomial, otherwise the
/// leading coefficient is non-zero.
struct PolyGF2m {
  std::vector<Elem> coeffs;

  PolyGF2m() = default;
  explicit PolyGF2m(std::vector<Elem> c) : coeffs(std::move(c)) {
    normalize();
  }

  /// Degree; -1 for the zero polynomial.
  [[nodiscard]] int degree() const {
    return static_cast<int>(coeffs.size()) - 1;
  }
  [[nodiscard]] bool is_zero() const { return coeffs.empty(); }
  /// Coefficient of x^i (0 beyond the stored degree).
  // GCC 12's -Warray-bounds mis-models the guarded vector access under
  // heavy inlining (upstream PR 107852 family); the index is provably
  // bounded by the size() check.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
  [[nodiscard]] Elem at(std::size_t i) const {
    return i < coeffs.size() ? coeffs.data()[i] : 0;
  }
#pragma GCC diagnostic pop
  /// Drops leading zero coefficients to restore the invariant.
  void normalize() {
    while (!coeffs.empty() && coeffs.back() == 0) coeffs.pop_back();
  }

  bool operator==(const PolyGF2m&) const = default;
};

[[nodiscard]] PolyGF2m poly_add(const GF2m& f, const PolyGF2m& a,
                                const PolyGF2m& b);
[[nodiscard]] PolyGF2m poly_mul(const GF2m& f, const PolyGF2m& a,
                                const PolyGF2m& b);
/// Remainder of a modulo g; precondition: !g.is_zero().
[[nodiscard]] PolyGF2m poly_mod(const GF2m& f, PolyGF2m a, const PolyGF2m& g);
[[nodiscard]] PolyGF2m poly_gcd(const GF2m& f, PolyGF2m a, PolyGF2m b);
/// (a*b) mod g.
[[nodiscard]] PolyGF2m poly_mulmod(const GF2m& f, const PolyGF2m& a,
                                   const PolyGF2m& b, const PolyGF2m& g);
/// a^e mod g.
[[nodiscard]] PolyGF2m poly_powmod(const GF2m& f, PolyGF2m a, std::uint64_t e,
                                   const PolyGF2m& g);
/// Scales a by the non-zero constant c.
[[nodiscard]] PolyGF2m poly_scale(const GF2m& f, const PolyGF2m& a, Elem c);
/// Divides by the leading coefficient so the result is monic.
[[nodiscard]] PolyGF2m poly_make_monic(const GF2m& f, const PolyGF2m& a);
/// Evaluates a at point x0.
[[nodiscard]] Elem poly_eval(const GF2m& f, const PolyGF2m& a, Elem x0);

/// True if g (degree >= 1) is irreducible over GF(2^m).  Generalized
/// Rabin test over GF(q), q = 2^m.
[[nodiscard]] bool is_irreducible(const GF2m& f, const PolyGF2m& g);

/// Multiplicative order of x modulo g: the smallest t > 0 with
/// x^t == 1 (mod g).  This is the period of the non-degenerate state
/// sequence of an LFSR with characteristic polynomial g.  Requires a
/// non-zero constant term (otherwise x is not invertible and the result
/// is 0).  For irreducible g the order is computed analytically from the
/// factorization of q^k - 1; otherwise by bounded brute force
/// (cap = brute_force_cap, 0 result if exceeded).
[[nodiscard]] std::uint64_t order_of_x(const GF2m& f, const PolyGF2m& g,
                                       std::uint64_t brute_force_cap =
                                           (std::uint64_t{1} << 24));

/// True if g is primitive over GF(2^m): irreducible of degree k with
/// order of x equal to q^k - 1 (maximal-length LFSR).
[[nodiscard]] bool is_primitive(const GF2m& f, const PolyGF2m& g);

/// Finds an irreducible degree-k polynomial over GF(2^m) with a
/// non-zero constant term, by deterministic enumeration; primitive if
/// `primitive` is set.  Returns nullopt only if the (finite) search
/// space is exhausted, which cannot happen for valid (m, k).
[[nodiscard]] std::optional<PolyGF2m> find_irreducible(
    const GF2m& f, unsigned k, bool primitive = false);

/// Renders as "1 + 2x + 2x^2" (coefficients in hex, paper style).
[[nodiscard]] std::string poly_to_string(const GF2m& f, const PolyGF2m& g,
                                         char var = 'x');

}  // namespace prt::gf
