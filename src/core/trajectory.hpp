// Address trajectories for pi-test iterations.
//
// The paper (§3) lists the LFSR trajectory as the third controllable
// factor of pi-testing: deterministic (ascending / descending address
// order) or random (cells visited in a pseudo-random order produced by
// a small programmable hardware block, which we model as a seeded
// permutation).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/memory.hpp"

namespace prt::core {

enum class TrajectoryKind : std::uint8_t {
  kAscending,
  kDescending,
  kRandom,
};

[[nodiscard]] const char* to_string(TrajectoryKind k);

/// A concrete visiting order over n addresses: position q in the sweep
/// accesses cell order()[q].
class Trajectory {
 public:
  /// Builds the order for `kind` over [0, n).  `seed` matters only for
  /// kRandom (Fisher-Yates permutation from a deterministic RNG).
  static Trajectory make(TrajectoryKind kind, mem::Addr n,
                         std::uint64_t seed = 0);

  [[nodiscard]] TrajectoryKind kind() const { return kind_; }
  [[nodiscard]] mem::Addr size() const {
    return static_cast<mem::Addr>(order_.size());
  }
  [[nodiscard]] mem::Addr at(mem::Addr position) const {
    return order_[position];
  }
  [[nodiscard]] const std::vector<mem::Addr>& order() const { return order_; }

 private:
  TrajectoryKind kind_ = TrajectoryKind::kAscending;
  std::vector<mem::Addr> order_;
};

}  // namespace prt::core
