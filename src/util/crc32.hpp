// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// The campaign service's v2 checkpoint format guards every record line
// with this checksum so the loader can distinguish "valid prefix of an
// interrupted write" from "valid record" byte-for-byte — the salvage
// path (DESIGN.md §13) keeps exactly the records whose CRC verifies
// and discards everything after the first mismatch.  Table-driven,
// constexpr throughout: usable in tests on string literals at compile
// time, and costs one 1 KiB table in the binary.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace prt::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the
/// zlib/PNG convention, so external tools can re-verify checkpoints).
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = detail::kCrc32Table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

static_assert(crc32("123456789") == 0xCBF43926u,
              "CRC-32 check value (IEEE) must match the reference");

}  // namespace prt::util
