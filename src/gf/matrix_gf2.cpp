#include "gf/matrix_gf2.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace prt::gf {

MatrixGF2::MatrixGF2(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), words_(rows * ((cols + 63) / 64), 0) {}

MatrixGF2 MatrixGF2::identity(std::size_t n) {
  MatrixGF2 m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

bool MatrixGF2::get(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return (row(r)[c / 64] >> (c % 64)) & 1U;
}

void MatrixGF2::set(std::size_t r, std::size_t c, bool v) {
  assert(r < rows_ && c < cols_);
  const std::uint64_t mask = std::uint64_t{1} << (c % 64);
  if (v) {
    row(r)[c / 64] |= mask;
  } else {
    row(r)[c / 64] &= ~mask;
  }
}

void MatrixGF2::xor_row(std::size_t dst, std::size_t src) {
  assert(dst < rows_ && src < rows_);
  for (std::size_t w = 0; w < wpr(); ++w) row(dst)[w] ^= row(src)[w];
}

MatrixGF2 MatrixGF2::mul(const MatrixGF2& rhs) const {
  assert(cols_ == rhs.rows_);
  MatrixGF2 out(rows_, rhs.cols_);
  // Row-major accumulation: out.row(r) ^= rhs.row(c) wherever (r,c) set.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (!get(r, c)) continue;
      for (std::size_t w = 0; w < out.wpr(); ++w) {
        out.row(r)[w] ^= rhs.row(c)[w];
      }
    }
  }
  return out;
}

std::vector<std::uint64_t> MatrixGF2::mul_vec(
    const std::vector<std::uint64_t>& v) const {
  assert(v.size() >= wpr());
  std::vector<std::uint64_t> out((rows_ + 63) / 64, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < wpr(); ++w) acc ^= row(r)[w] & v[w];
    out[r / 64] |= std::uint64_t{parity64(acc)} << (r % 64);
  }
  return out;
}

std::uint64_t MatrixGF2::mul_vec64(std::uint64_t x) const {
  assert(cols_ <= 64 && rows_ <= 64);
  std::uint64_t out = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    out |= std::uint64_t{parity64(row(r)[0] & x)} << r;
  }
  return out;
}

MatrixGF2 MatrixGF2::pow(std::uint64_t e) const {
  assert(rows_ == cols_);
  MatrixGF2 result = identity(rows_);
  MatrixGF2 base = *this;
  while (e != 0) {
    if (e & 1) result = result.mul(base);
    base = base.mul(base);
    e >>= 1;
  }
  return result;
}

MatrixGF2 MatrixGF2::transpose() const {
  MatrixGF2 out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (get(r, c)) out.set(c, r, true);
    }
  }
  return out;
}

std::size_t MatrixGF2::rank() const {
  MatrixGF2 work = *this;
  std::size_t rank = 0;
  for (std::size_t c = 0; c < cols_ && rank < rows_; ++c) {
    std::size_t pivot = rank;
    while (pivot < rows_ && !work.get(pivot, c)) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t w = 0; w < wpr(); ++w) {
        std::swap(work.row(pivot)[w], work.row(rank)[w]);
      }
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != rank && work.get(r, c)) work.xor_row(r, rank);
    }
    ++rank;
  }
  return rank;
}

MatrixGF2 MatrixGF2::inverse() const {
  assert(rows_ == cols_);
  MatrixGF2 work = *this;
  MatrixGF2 inv = identity(rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    std::size_t pivot = c;
    while (pivot < rows_ && !work.get(pivot, c)) ++pivot;
    if (pivot == rows_) return {};  // singular
    if (pivot != c) {
      for (std::size_t w = 0; w < wpr(); ++w) {
        std::swap(work.row(pivot)[w], work.row(c)[w]);
        std::swap(inv.row(pivot)[w], inv.row(c)[w]);
      }
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != c && work.get(r, c)) {
        work.xor_row(r, c);
        inv.xor_row(r, c);
      }
    }
  }
  return inv;
}

bool MatrixGF2::is_identity() const {
  if (rows_ != cols_) return false;
  return *this == identity(rows_);
}

}  // namespace prt::gf
