// Thread-safe, build-once memoization of golden-run artifacts.
//
// Everything a campaign derives from the workload alone — the
// PrtOracle, the scheme's packability, the compiled core::OpTranscript
// (PRT and March flavours) — depends only on (scheme, n) or on
// (march test, n, background, delay) and is immutable once built.
// Before this cache each CampaignEngine / MarchCampaign built its own
// copy in its constructor, so a multi-size sweep, a port sweep at one
// size, or simply two engines over the same scheme recompiled the same
// golden run from scratch.  OracleCache hoists that memoization out of
// the engines:
//
//  * keys are structural fingerprints (core::scheme_fingerprint,
//    march::test_fingerprint) plus the run geometry, so renamed but
//    structurally identical workloads share entries and distinct
//    structures never alias;
//  * the first requester of a key builds the entry *outside* the cache
//    lock while concurrent requesters of the same key block on a
//    shared future — exactly one build per key, even under concurrent
//    engine construction (pinned by tests/test_campaign_suite.cpp);
//    concurrent requesters of different keys build in parallel;
//  * entries are handed out as shared_ptr<const ...>: engines keep
//    their artifacts alive independently of the cache (clear() cannot
//    invalidate a running campaign).
//
// Engines and the suite share the process-wide instance (global());
// tests and benches that need cold-start timings construct their own
// or clear() the global one.  See DESIGN.md §10.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/op_transcript.hpp"
#include "core/prt_engine.hpp"
#include "march/march_runner.hpp"
#include "util/annotations.hpp"

namespace prt::analysis {

class OracleCache {
 public:
  /// Everything derivable from (scheme, n): the memoized oracle, the
  /// scheme's lane-packability, and — iff packable — the compiled
  /// replay transcript.  Immutable after construction.
  struct PrtEntry {
    core::PrtOracle oracle;
    /// core::prt_scheme_packable(scheme): the scheme runs bit-parallel
    /// (GF(2), XOR feedback).  Campaign packing additionally requires
    /// m == 1 — a per-campaign fact that stays outside the cache.
    bool packable = false;
    /// Compiled golden op stream; empty unless `packable`.
    core::OpTranscript transcript;
  };

  /// Everything derivable from (test, n, background, delay_ticks): the
  /// compiled March transcript.  Immutable after construction.
  struct MarchEntry {
    core::OpTranscript transcript;
  };

  OracleCache() = default;
  OracleCache(const OracleCache&) = delete;
  OracleCache& operator=(const OracleCache&) = delete;

  /// Returns the entry for (scheme, n), building it exactly once per
  /// key.  Blocks only when another thread is already building the
  /// same key.  Precondition (as for make_prt_oracle): n exceeds every
  /// iteration's register length k.
  [[nodiscard]] std::shared_ptr<const PrtEntry> prt(
      const core::PrtScheme& scheme, mem::Addr n);

  /// Returns the entry for (test, n, background, delay_ticks),
  /// building it exactly once per key.
  [[nodiscard]] std::shared_ptr<const MarchEntry> march(
      const march::MarchTest& test, mem::Addr n, bool background,
      std::uint64_t delay_ticks = march::kDefaultDelayTicks);

  /// Number of entries actually built (not lookups) — the
  /// one-build-per-key test hook and the bench's cache-hit telemetry.
  [[nodiscard]] std::size_t prt_builds() const { return prt_builds_; }
  [[nodiscard]] std::size_t march_builds() const { return march_builds_; }

  /// Cached entry count (both kinds).
  [[nodiscard]] std::size_t size() const;

  /// Drops every cached entry (outstanding shared_ptrs stay valid).
  /// Benches use this to measure cold-start construction costs.
  void clear();

  /// The process-wide instance every engine and suite shares.
  [[nodiscard]] static OracleCache& global();

 private:
  template <typename Entry>
  using Slot = std::shared_future<std::shared_ptr<const Entry>>;
  template <typename Entry>
  using SlotMap = std::unordered_map<std::string, Slot<Entry>>;

  /// find-or-start-building: the common lock protocol of prt()/march().
  /// Takes the map as a pointer-to-member (not a reference) so the
  /// guarded field is only ever dereferenced under mutex_ inside —
  /// passing `prt_` by reference unlocked would itself be a
  /// -Wthread-safety-reference violation.
  template <typename Entry, typename Build>
  std::shared_ptr<const Entry> lookup(SlotMap<Entry> OracleCache::*map,
                                      std::string key,
                                      std::atomic<std::size_t>& builds,
                                      Build&& build) PRT_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  SlotMap<PrtEntry> prt_ PRT_GUARDED_BY(mutex_);
  SlotMap<MarchEntry> march_ PRT_GUARDED_BY(mutex_);
  std::atomic<std::size_t> prt_builds_{0};
  std::atomic<std::size_t> march_builds_{0};
};

}  // namespace prt::analysis
