// Tests for March notation, library and runner (march/*) — the
// baseline the paper positions PRT against.
#include <gtest/gtest.h>

#include "march/march_library.hpp"
#include "march/march_runner.hpp"
#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

namespace prt::march {
namespace {

// --- notation -----------------------------------------------------------

TEST(Parse, PaperMarchA) {
  // The exact example from §1 of the paper (ASCII arrows).
  const auto t = parse_march("{c(w0);^(r0,w1);v(r1,w0)}", "MarchA");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->elements.size(), 3u);
  EXPECT_EQ(t->elements[0].order, Order::kEither);
  EXPECT_EQ(t->elements[1].order, Order::kUp);
  EXPECT_EQ(t->elements[2].order, Order::kDown);
  EXPECT_EQ(t->ops_per_cell(), 5u);
}

TEST(Parse, Utf8Arrows) {
  const auto t = parse_march("{⇕(w0);⇑(r0,w1);⇓(r1,w0)}");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->elements[1].order, Order::kUp);
  EXPECT_EQ(t->elements[2].order, Order::kDown);
}

TEST(Parse, SeparatorsOptional) {
  const auto a = parse_march("{^(r0w1)}");
  const auto b = parse_march("{^(r0,w1)}");
  const auto c = parse_march("{ ^ ( r0 , w1 ) }");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->elements, b->elements);
  EXPECT_EQ(b->elements, c->elements);
}

TEST(Parse, RejectsMalformed) {
  EXPECT_FALSE(parse_march(""));
  EXPECT_FALSE(parse_march("{}"));
  EXPECT_FALSE(parse_march("{^()}"));
  EXPECT_FALSE(parse_march("{^(r2)}"));      // data must be 0/1
  EXPECT_FALSE(parse_march("{^(x0)}"));      // unknown op
  EXPECT_FALSE(parse_march("{^(r0)"));       // unbalanced
  EXPECT_FALSE(parse_march("^(r0)"));        // missing braces
  EXPECT_FALSE(parse_march("{^(r0)} junk"));  // trailing garbage
  EXPECT_FALSE(parse_march("{(r0)}"));       // missing order
}

TEST(Notation, RoundTrip) {
  for (const MarchTest& t : all_march_tests()) {
    const auto reparsed = parse_march(to_string(t), t.name);
    ASSERT_TRUE(reparsed.has_value()) << t.name;
    EXPECT_EQ(reparsed->elements, t.elements) << t.name;
  }
}

// --- library complexity ----------------------------------------------------

struct Complexity {
  const char* name;
  std::size_t ops_per_cell;
};

class MarchComplexity : public ::testing::TestWithParam<Complexity> {};

TEST_P(MarchComplexity, OpsPerCellMatchLiterature) {
  for (const MarchTest& t : all_march_tests()) {
    if (t.name == GetParam().name) {
      EXPECT_EQ(t.ops_per_cell(), GetParam().ops_per_cell);
      EXPECT_EQ(t.total_ops(1024), GetParam().ops_per_cell * 1024);
      return;
    }
  }
  FAIL() << "unknown test " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Library, MarchComplexity,
    ::testing::Values(Complexity{"MATS", 4}, Complexity{"MATS+", 5},
                      Complexity{"MATS++", 6}, Complexity{"March X", 6},
                      Complexity{"March Y", 8}, Complexity{"March C-", 10},
                      Complexity{"March A", 15}, Complexity{"March B", 17},
                      Complexity{"March SR", 14}, Complexity{"March LR", 14},
                      Complexity{"March SS", 22}));

TEST(Library, PaperMarchAIsMatsPlus) {
  EXPECT_EQ(to_string(paper_march_a()), to_string(mats_plus()));
}

TEST(Library, MarchGHasTwoDelayElements) {
  const MarchTest g = march_g();
  unsigned delays = 0;
  for (const auto& e : g.elements) delays += e.is_delay ? 1 : 0;
  EXPECT_EQ(delays, 2u);
  EXPECT_EQ(g.ops_per_cell(), 23u);
}

TEST(Parse, DelayElement) {
  const auto t = parse_march("{c(w0);Del;c(r0)}");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->elements.size(), 3u);
  EXPECT_TRUE(t->elements[1].is_delay);
  EXPECT_FALSE(t->elements[0].is_delay);
  // Round-trips through the printer.
  EXPECT_EQ(to_string(*t), "{c(w0);Del;c(r0)}");
}

TEST(Runner, DelayElementAdvancesVirtualTimeOnly) {
  mem::SimRam ram(8, 1);
  const auto t = parse_march("{c(w0);Del;c(r0)}");
  ASSERT_TRUE(t.has_value());
  const MarchResult r = run_march(*t, ram, 0, 12345);
  EXPECT_FALSE(r.fail);
  EXPECT_EQ(r.ops, 16u);  // the Del contributes no memory operation
}

// --- runner ---------------------------------------------------------------

TEST(Runner, PassesOnFaultFreeMemory) {
  mem::SimRam ram(64, 1);
  for (const MarchTest& t : all_march_tests()) {
    EXPECT_FALSE(run_march(t, ram).fail) << t.name;
  }
}

TEST(Runner, PassesOnFaultFreeWordMemoryAllBackgrounds) {
  mem::SimRam ram(32, 8);
  const auto bgs = standard_backgrounds(8);
  for (const MarchTest& t : all_march_tests()) {
    EXPECT_FALSE(run_march_backgrounds(t, ram, bgs).fail) << t.name;
  }
}

TEST(Runner, OpCountMatchesFormula) {
  mem::SimRam ram(128, 1);
  const MarchResult r = run_march(march_c_minus(), ram);
  EXPECT_EQ(r.ops, 10u * 128);
  EXPECT_EQ(ram.total_stats().total(), 10u * 128);
}

TEST(Runner, DetectsSaf) {
  mem::FaultyRam ram(64, 1);
  ram.inject(mem::Fault::saf({17, 0}, 0));
  const MarchResult r = run_march(mats_plus(), ram);
  EXPECT_TRUE(r.fail);
  EXPECT_EQ(r.first_addr, 17u);
  EXPECT_EQ(r.first_expected, 1u);
  EXPECT_EQ(r.first_actual, 0u);
}

TEST(Runner, DetectsBothSafPolarities) {
  for (unsigned v : {0u, 1u}) {
    mem::FaultyRam ram(16, 1);
    ram.inject(mem::Fault::saf({5, 0}, v));
    EXPECT_TRUE(run_march(mats_plus(), ram).fail) << "stuck-at-" << v;
  }
}

TEST(Runner, MatsMissesSomeAddressFaultsButMatsPlusCatchesThem) {
  // Classic result: MATS detects SAFs; MATS+ adds AF coverage.
  mem::FaultyRam ram(16, 1);
  ram.inject(mem::Fault::af_wrong_access(3, 4));
  EXPECT_TRUE(run_march(mats_plus(), ram).fail);
}

TEST(Runner, MarchCMinusDetectsUnlinkedCfIn) {
  for (mem::Addr a : {0u, 7u, 15u}) {
    for (mem::Addr v : {3u, 8u, 14u}) {
      if (a == v) continue;
      mem::FaultyRam ram(16, 1);
      ram.inject(mem::Fault::cf_in({v, 0}, {a, 0}));
      EXPECT_TRUE(run_march(march_c_minus(), ram).fail)
          << "a=" << a << " v=" << v;
    }
  }
}

TEST(Runner, MarchCMinusDetectsAllCfIdVariants) {
  for (bool up : {true, false}) {
    for (unsigned forced : {0u, 1u}) {
      mem::FaultyRam ram(16, 1);
      ram.inject(mem::Fault::cf_id({9, 0}, {2, 0}, up, forced));
      EXPECT_TRUE(run_march(march_c_minus(), ram).fail)
          << "up=" << up << " forced=" << forced;
    }
  }
}

TEST(Runner, MatsPlusMissesSomeCouplingFaults) {
  // MATS+ is not a coupling-fault test; find at least one escape to
  // confirm the detection machinery is not trivially flagging
  // everything.
  unsigned escapes = 0;
  for (mem::Addr a = 0; a < 8; ++a) {
    for (mem::Addr v = 0; v < 8; ++v) {
      if (a == v) continue;
      mem::FaultyRam ram(8, 1);
      ram.inject(mem::Fault::cf_id({v, 0}, {a, 0}, true, 1));
      if (!run_march(mats_plus(), ram).fail) ++escapes;
    }
  }
  EXPECT_GT(escapes, 0u);
}

TEST(Runner, DetectsTransitionFaults) {
  for (bool up : {true, false}) {
    mem::FaultyRam ram(16, 1);
    ram.inject(mem::Fault::tf({6, 0}, up));
    EXPECT_TRUE(run_march(march_c_minus(), ram).fail) << "up=" << up;
  }
}

TEST(Runner, MarchYDetectsLinkedTfBetterThanMarchX) {
  // Sanity: both detect a plain TF; March Y reads after the write.
  mem::FaultyRam ram(16, 1);
  ram.inject(mem::Fault::tf({6, 0}, true));
  EXPECT_TRUE(run_march(march_y(), ram).fail);
}

TEST(Runner, WordOrientedIntraWordCouplingNeedsBackgrounds) {
  // Intra-word CFin between bits 0 and 1 of cell 3: solid backgrounds
  // write both bits the same value, so the checkerboard background is
  // the one that exposes it.
  mem::FaultyRam ram(16, 8);
  ram.inject(mem::Fault::cf_in({3, 1}, {3, 0}));
  const bool solid_only =
      run_march_backgrounds(march_c_minus(), ram, {0}).fail;
  mem::FaultyRam ram2(16, 8);
  ram2.inject(mem::Fault::cf_in({3, 1}, {3, 0}));
  const bool with_checker =
      run_march_backgrounds(march_c_minus(), ram2,
                            standard_backgrounds(8))
          .fail;
  EXPECT_TRUE(with_checker);
  (void)solid_only;  // solid-only detection is model-dependent
}

TEST(Runner, DescendingElementVisitsReverseOrder) {
  // A CFid with aggressor > victim in ascending order is the classic
  // case needing the descending element; March C- has both.
  mem::FaultyRam ram(16, 1);
  ram.inject(mem::Fault::cf_id({2, 0}, {13, 0}, true, 1));
  EXPECT_TRUE(run_march(march_c_minus(), ram).fail);
}

TEST(Backgrounds, StandardSetShape) {
  EXPECT_EQ(standard_backgrounds(1), (std::vector<mem::Word>{0}));
  EXPECT_EQ(standard_backgrounds(4),
            (std::vector<mem::Word>{0b0000, 0b1010, 0b1100}));
  EXPECT_EQ(standard_backgrounds(8).size(), 4u);  // 0, 0xAA, 0xCC, 0xF0
  EXPECT_EQ(standard_backgrounds(8)[1], 0xAAu);
  EXPECT_EQ(standard_backgrounds(8)[2], 0xCCu);
  EXPECT_EQ(standard_backgrounds(8)[3], 0xF0u);
}

TEST(Runner, MismatchCountsAccumulate) {
  mem::FaultyRam ram(8, 1);
  ram.inject(mem::Fault::saf({1, 0}, 0));
  const MarchResult r = run_march(march_c_minus(), ram);
  EXPECT_TRUE(r.fail);
  EXPECT_GE(r.mismatches, 1u);
}

}  // namespace
}  // namespace prt::march
