// Tests for fault-universe enumeration (mem/fault_universe).
#include "mem/fault_universe.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

namespace prt::mem {
namespace {

TEST(SingleCellUniverse, CountsMatch) {
  // 9 kinds per bit with read logic, 5 without.
  EXPECT_EQ(single_cell_universe(8, 1, true).size(), 8u * 9);
  EXPECT_EQ(single_cell_universe(8, 1, false).size(), 8u * 5);
  EXPECT_EQ(single_cell_universe(4, 4, true).size(), 4u * 4 * 9);
}

TEST(SingleCellUniverse, EveryCellBitCovered) {
  const auto u = single_cell_universe(4, 2, false);
  std::set<std::pair<Addr, unsigned>> seen;
  for (const Fault& f : u) seen.insert({f.victim.cell, f.victim.bit});
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SelectPairs, ExhaustiveWhenSmall) {
  const auto pairs = select_pairs(5, 1000, 42);
  EXPECT_EQ(pairs.size(), 20u);  // 5*4 ordered pairs
  std::set<std::pair<Addr, Addr>> seen(pairs.begin(), pairs.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto& [a, v] : pairs) EXPECT_NE(a, v);
}

TEST(SelectPairs, SampledWhenLarge) {
  const auto pairs = select_pairs(1000, 128, 42);
  EXPECT_EQ(pairs.size(), 128u);
  for (const auto& [a, v] : pairs) {
    EXPECT_NE(a, v);
    EXPECT_LT(a, 1000u);
    EXPECT_LT(v, 1000u);
  }
}

TEST(SelectPairs, DeterministicForSeed) {
  EXPECT_EQ(select_pairs(100, 50, 7), select_pairs(100, 50, 7));
  EXPECT_NE(select_pairs(100, 50, 7), select_pairs(100, 50, 8));
}

TEST(CouplingUniverse, NineFaultsPerPair) {
  const std::vector<std::pair<Addr, Addr>> pairs{{0, 1}, {2, 3}};
  const auto u = coupling_universe(pairs, 0);
  EXPECT_EQ(u.size(), 18u);
  for (const Fault& f : u) {
    EXPECT_TRUE(is_coupling(f.kind));
    EXPECT_NE(f.victim.cell, f.aggressor.cell);
  }
}

TEST(MakeUniverse, AllSectionsPresent) {
  UniverseOptions opt;
  opt.npsf = true;
  const auto u = make_universe(16, 1, opt);
  std::set<FaultClass> classes;
  for (const Fault& f : u) classes.insert(fault_class(f.kind));
  EXPECT_TRUE(classes.count(FaultClass::kSaf));
  EXPECT_TRUE(classes.count(FaultClass::kTf));
  EXPECT_TRUE(classes.count(FaultClass::kReadLogic));
  EXPECT_TRUE(classes.count(FaultClass::kCfIn));
  EXPECT_TRUE(classes.count(FaultClass::kCfId));
  EXPECT_TRUE(classes.count(FaultClass::kCfSt));
  EXPECT_TRUE(classes.count(FaultClass::kBridge));
  EXPECT_TRUE(classes.count(FaultClass::kAf));
  EXPECT_TRUE(classes.count(FaultClass::kNpsf));
}

TEST(MakeUniverse, SectionsCanBeDisabled) {
  UniverseOptions opt;
  opt.single_cell = false;
  opt.coupling = false;
  opt.bridges = false;
  opt.address_decoder = false;
  const auto u = make_universe(16, 1, opt);
  EXPECT_TRUE(u.empty());
}

TEST(MakeUniverse, IntraWordFaultsOnlyForWom) {
  UniverseOptions opt;
  opt.single_cell = false;
  opt.address_decoder = false;
  opt.bridges = false;
  opt.coupling = true;
  opt.intra_word = true;
  const auto bom = make_universe(4, 1, opt);
  for (const Fault& f : bom) {
    EXPECT_EQ(f.victim.bit, 0u);
    EXPECT_EQ(f.aggressor.bit, 0u);
  }
  const auto wom = make_universe(4, 4, opt);
  bool has_intra = false;
  for (const Fault& f : wom) {
    if (is_coupling(f.kind) && f.victim.cell == f.aggressor.cell) {
      has_intra = true;
      EXPECT_NE(f.victim.bit, f.aggressor.bit);
    }
  }
  EXPECT_TRUE(has_intra);
}

TEST(MakeUniverse, AddressFaultsReferenceValidCells) {
  UniverseOptions opt;
  const auto u = make_universe(8, 1, opt);
  for (const Fault& f : u) {
    EXPECT_LT(f.victim.cell, 8u);
    if (is_address_fault(f.kind) && f.kind != FaultKind::kAfNoAccess) {
      EXPECT_LT(f.alias, 8u);
      EXPECT_NE(f.alias, f.victim.cell);
    }
  }
}

TEST(MakeUniverse, NpsfOnlyInteriorCells) {
  UniverseOptions opt;
  opt.single_cell = false;
  opt.coupling = false;
  opt.bridges = false;
  opt.address_decoder = false;
  opt.npsf = true;
  opt.npsf_grid_cols = 4;
  const auto u = make_universe(16, 1, opt);
  EXPECT_FALSE(u.empty());
  for (const Fault& f : u) {
    const Addr row = f.victim.cell / 4;
    const Addr col = f.victim.cell % 4;
    EXPECT_GT(row, 0u);
    EXPECT_GT(col, 0u);
    EXPECT_LT(col, 3u);
    EXPECT_LT(f.victim.cell + 4, 16u);
  }
}

TEST(MakeUniverse, RejectsMalformedExplicitNpsfGrid) {
  UniverseOptions opt;
  opt.npsf = true;
  // A 1-cell-wide grid has no interior victims.
  opt.npsf_grid_cols = 1;
  EXPECT_THROW(make_universe(16, 1, opt), std::invalid_argument);
  // A width that does not divide n leaves a ragged last row; the
  // message must name the offending value.
  opt.npsf_grid_cols = 5;
  try {
    (void)make_universe(16, 1, opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("npsf_grid_cols = 5"), std::string::npos) << what;
    EXPECT_NE(what.find("16"), std::string::npos) << what;
  }
  // The square-ish default (cols = 0) never throws, even when no
  // divisor exists: it picks the smallest cols with cols*cols >= n.
  opt.npsf_grid_cols = 0;
  EXPECT_NO_THROW((void)make_universe(17, 1, opt));
}

}  // namespace
}  // namespace prt::mem
