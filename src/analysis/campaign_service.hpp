// Long-lived campaign execution service.
//
// CampaignEngine / MarchCampaign / CampaignSuite are synchronous: the
// caller blocks for the whole campaign and an interrupted process
// loses everything.  CampaignService is the async, fault-tolerant
// layer the ROADMAP's campaign-as-a-service milestone calls for:
//
//  * requests (a PRT scheme or March test + options + universe) are
//    admitted onto one shared worker pool with a bounded in-flight
//    window — submissions past the bound are rejected immediately
//    with kRejected instead of queueing without bound;
//  * every request carries a cooperative StopToken: cancel() and the
//    per-request deadline stop the shard loops at the next fault
//    boundary, and the request resolves to a *partial* outcome — the
//    exact merge of the shards that completed (kPartialCancelled /
//    kPartialDeadline), never a torn result;
//  * progress is checkpointed at shard granularity: every
//    `checkpoint_every` completed shards the service atomically
//    rewrites a checkpoint file (fingerprint + shard partition +
//    per-shard results).  A resumed request re-validates the
//    fingerprint — workload structure, geometry, run options and the
//    universe itself — adopts the recorded partition, and its final
//    result is bit-identical to an uninterrupted run;
//  * a shard task that throws is retried up to `max_retries` times;
//    exhaustion fails that request (kFailed, error preserved) and
//    winds down its remaining shards without touching other requests
//    or the pool.  util::FailPoint hooks in the pool, the oracle
//    cache, the shard tasks and the checkpoint writer let tests drive
//    each of these paths deterministically.
//
// See DESIGN.md §11 and tests/test_campaign_service.cpp.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "core/prt_engine.hpp"
#include "march/march_runner.hpp"

namespace prt::analysis {

namespace detail {
struct ServiceRequest;
}  // namespace detail

struct ServiceOptions {
  /// Worker count for the one shared pool; 0 defers to the
  /// PRT_THREADS environment override, then the hardware concurrency.
  unsigned threads = 0;
  /// Admission bound: submissions while this many requests are
  /// in flight (queued or running) are rejected with kRejected.
  std::size_t max_inflight = 64;
  /// Retries per shard task before the request fails.
  int max_retries = 2;
};

/// How a service request resolved.
enum class RequestStatus : std::uint8_t {
  /// Every shard ran; result is bit-identical to a synchronous run.
  kComplete,
  /// cancel() stopped the run; result covers the completed shards.
  kPartialCancelled,
  /// The deadline stopped the run; result covers the completed shards.
  kPartialDeadline,
  /// Setup failed or a shard exhausted its retries; see `error`.
  kFailed,
  /// Rejected at admission (in-flight bound); no work was done.
  kRejected,
};

[[nodiscard]] std::string to_string(RequestStatus status);

/// One campaign request.  Exactly one of `scheme` / `march_test` must
/// be set.  The universe is owned by the request (the service runs it
/// asynchronously after submit() returns).
struct CampaignRequest {
  std::optional<core::PrtScheme> scheme;
  std::optional<march::MarchTest> march_test;
  CampaignOptions options;
  /// Engine knobs, same semantics as EngineOptions/MarchEngineOptions.
  bool packed = true;
  bool early_abort = false;
  std::vector<mem::Fault> universe;
  /// Shard partition size; 0 = one shard per pool worker.  A resumed
  /// request always adopts the partition recorded in the checkpoint.
  std::size_t shards = 0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Completed shards between checkpoint rewrites (>= 1).  A final
  /// checkpoint is always flushed when a checkpointed request ends
  /// incomplete, so cancel-then-resume loses nothing.
  std::size_t checkpoint_every = 1;
  /// Load `checkpoint_path` and skip its completed shards.  A missing
  /// checkpoint file means a fresh run; a checkpoint whose fingerprint
  /// does not match this request fails it (kFailed) rather than
  /// silently merging results from a different campaign.
  bool resume = false;
  /// Wall-clock budget measured from submit(); zero = none.
  std::chrono::nanoseconds deadline{0};
};

/// Resolved outcome of one request.
struct RequestOutcome {
  RequestStatus status = RequestStatus::kFailed;
  /// Exact merge of the completed shards (all of them on kComplete).
  CampaignResult result;
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  /// Shards whose results were adopted from the checkpoint.
  std::size_t shards_resumed = 0;
  /// Human-readable failure cause (kFailed only).
  std::string error;
};

class CampaignService {
 public:
  explicit CampaignService(const ServiceOptions& options = {});
  /// Blocks until every in-flight request has resolved.
  ~CampaignService();
  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  class Ticket {
   public:
    /// A default ticket holds no request: done() is true, cancel() is
    /// a no-op and wait() throws std::logic_error.
    Ticket() = default;
    /// Blocks until the request resolves; idempotent.  On an lvalue
    /// ticket the reference is valid for the ticket's lifetime; on a
    /// temporary ticket (`service.submit(...).wait()`) the outcome is
    /// returned by value so it outlives the ticket.
    [[nodiscard]] const RequestOutcome& wait() const&;
    [[nodiscard]] RequestOutcome wait() &&;
    /// True once the outcome is available (wait() will not block).
    [[nodiscard]] bool done() const;
    /// Requests cooperative cancellation; shard loops stop at the next
    /// fault boundary.  No-op once the request resolved.
    void cancel() const;

   private:
    friend class CampaignService;
    explicit Ticket(std::shared_ptr<detail::ServiceRequest> request);
    std::shared_ptr<detail::ServiceRequest> request_;
  };

  /// Validates and admits a request.  Never blocks on campaign work:
  /// past the in-flight bound (or on a malformed request) the returned
  /// ticket is already resolved with kRejected / kFailed.
  [[nodiscard]] Ticket submit(CampaignRequest request);

  /// Blocks until every request submitted so far has resolved.
  void wait_all();

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t partial = 0;
    std::uint64_t failed = 0;
    std::uint64_t shard_retries = 0;
    std::uint64_t checkpoint_writes = 0;
    std::uint64_t checkpoint_failures = 0;
    std::uint64_t shards_resumed = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prt::analysis
