// Behavioural tests for every fault model (mem/fault_injector).
#include "mem/fault_injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prt::mem {
namespace {

// --- stuck-at faults ---------------------------------------------------

TEST(Saf, StuckAtZeroIgnoresWritesOfOne) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({3, 0}, 0));
  ram.write(3, 1, 0);
  EXPECT_EQ(ram.read(3, 0), 0u);
}

TEST(Saf, StuckAtOneIgnoresWritesOfZero) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({3, 0}, 1));
  ram.write(3, 0, 0);
  EXPECT_EQ(ram.read(3, 0), 1u);
}

TEST(Saf, OnlyTheFaultyBitSticks) {
  FaultyRam ram(8, 4);
  ram.inject(Fault::saf({2, 1}, 1));
  ram.write(2, 0b0000, 0);
  EXPECT_EQ(ram.read(2, 0), 0b0010u);
  ram.write(2, 0b1101, 0);
  EXPECT_EQ(ram.read(2, 0), 0b1111u);
}

TEST(Saf, HoldsFromInjectionBeforeAnyWrite) {
  // A stuck-at victim holds its value from the moment the defect
  // exists: a read that precedes every write already sees it.
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({3, 0}, 1));
  EXPECT_EQ(ram.peek(3), 1u);
  EXPECT_EQ(ram.read(3, 0), 1u);
  FaultyRam ram0(8, 1);
  ram0.poke(5, 1);
  ram0.inject(Fault::saf({5, 0}, 0));
  EXPECT_EQ(ram0.read(5, 0), 0u);
}

TEST(Saf, HoldsThroughRetentionDecay) {
  // A retention fault decaying towards 1 cannot move a stuck-at-0 bit.
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({2, 0}, 0));
  ram.inject(Fault::retention({2, 0}, /*decays_to=*/1, /*delay_ticks=*/2));
  ram.write(2, 0, 0);
  ram.advance_time(10);
  EXPECT_EQ(ram.read(2, 0), 0u);
}

TEST(Saf, InjectionClampReappliesStaticConditions) {
  // The injection-time clamp is a state perturbation: a previously
  // injected static condition (here a wired-OR bridge) must be
  // re-applied immediately, not first on the next write — and the
  // result must not depend on the injection order.
  FaultyRam ram(8, 1);
  ram.inject(Fault::bridge({2, 0}, {3, 0}, /*wired_and=*/false));
  ram.inject(Fault::saf({2, 0}, 1));
  EXPECT_EQ(ram.peek(2), 1u);
  EXPECT_EQ(ram.read(3, 0), 1u);  // bridge ties cell 3 to 1 OR 0
  FaultyRam swapped(8, 1);
  swapped.inject(Fault::saf({2, 0}, 1));
  swapped.inject(Fault::bridge({2, 0}, {3, 0}, /*wired_and=*/false));
  EXPECT_EQ(swapped.read(3, 0), 1u);
}

TEST(Saf, HoldsThroughMultiAccessWiredAndRead) {
  // The stuck value participates in the wired-AND of a multi-access
  // read even when the stuck cell was never written.
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({6, 0}, 1));
  ram.inject(Fault::af_multi_access(2, 6));
  ram.poke(2, 1);
  EXPECT_EQ(ram.read(2, 0), 1u);  // 1 AND 1 (cell 6 stuck at 1 unwritten)
}

TEST(Saf, OtherCellsUnaffected) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({3, 0}, 0));
  ram.write(2, 1, 0);
  ram.write(4, 1, 0);
  EXPECT_EQ(ram.read(2, 0), 1u);
  EXPECT_EQ(ram.read(4, 0), 1u);
}

// --- transition faults --------------------------------------------------

TEST(Tf, UpTransitionFails) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::tf({1, 0}, /*up=*/true));
  ram.write(1, 0, 0);
  ram.write(1, 1, 0);  // 0 -> 1 fails
  EXPECT_EQ(ram.read(1, 0), 0u);
}

TEST(Tf, DownTransitionFails) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::tf({1, 0}, /*up=*/false));
  ram.poke(1, 1);
  ram.write(1, 0, 0);  // 1 -> 0 fails
  EXPECT_EQ(ram.read(1, 0), 1u);
}

TEST(Tf, UpFaultStillAllowsDown) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::tf({1, 0}, /*up=*/true));
  ram.poke(1, 1);
  ram.write(1, 0, 0);
  EXPECT_EQ(ram.read(1, 0), 0u);
}

TEST(Tf, NonTransitionWriteUnaffected) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::tf({1, 0}, /*up=*/true));
  ram.poke(1, 1);
  ram.write(1, 1, 0);
  EXPECT_EQ(ram.read(1, 0), 1u);
}

// --- write disturb ------------------------------------------------------

TEST(Wdf, NonTransitionWriteFlips) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::wdf({5, 0}));
  ram.poke(5, 0);
  ram.write(5, 0, 0);  // 0 -> 0 disturbs to 1
  EXPECT_EQ(ram.read(5, 0), 1u);
}

TEST(Wdf, TransitionWriteWorks) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::wdf({5, 0}));
  ram.poke(5, 0);
  ram.write(5, 1, 0);
  EXPECT_EQ(ram.read(5, 0), 1u);
}

// --- read-logic faults ----------------------------------------------------

TEST(Rdf, ReadFlipsAndReturnsFlipped) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::rdf({2, 0}));
  ram.poke(2, 1);
  EXPECT_EQ(ram.read(2, 0), 0u);  // returns the flipped value
  EXPECT_EQ(ram.peek(2), 0u);     // and the cell flipped
}

TEST(Drdf, ReadReturnsOldButFlipsCell) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::drdf({2, 0}));
  ram.poke(2, 1);
  EXPECT_EQ(ram.read(2, 0), 1u);  // deceptive: correct value returned
  EXPECT_EQ(ram.peek(2), 0u);     // cell flipped behind the reader
}

TEST(Irf, ReadInvertedCellIntact) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::irf({2, 0}));
  ram.poke(2, 1);
  EXPECT_EQ(ram.read(2, 0), 0u);
  EXPECT_EQ(ram.peek(2), 1u);
}

TEST(Sof, ReadReturnsSenseAmpHistory) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::sof({4, 0}));
  ram.poke(3, 1);
  ram.poke(4, 0);
  ram.read(3, 0);                 // history becomes 1
  EXPECT_EQ(ram.read(4, 0), 1u);  // open cell echoes history, not 0
  ram.poke(5, 0);
  ram.read(5, 0);                 // history becomes 0
  ram.poke(4, 1);
  EXPECT_EQ(ram.read(4, 0), 0u);
}

TEST(Sof, HistoryIsPerPort) {
  FaultyRam ram(8, 1, 2);
  ram.inject(Fault::sof({4, 0}));
  ram.poke(3, 1);
  ram.read(3, 0);  // port 0 history = 1
  ram.poke(2, 0);
  ram.read(2, 1);  // port 1 history = 0
  ram.poke(4, 0);
  EXPECT_EQ(ram.read(4, 0), 1u);
  ram.poke(4, 1);
  EXPECT_EQ(ram.read(4, 1), 0u);
}

// --- coupling faults -----------------------------------------------------

TEST(CfIn, AggressorTransitionInvertsVictim) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_in({2, 0}, {5, 0}));
  ram.poke(2, 1);
  ram.poke(5, 0);
  ram.write(5, 1, 0);  // up transition on aggressor
  EXPECT_EQ(ram.peek(2), 0u);
  ram.write(5, 0, 0);  // down transition also inverts
  EXPECT_EQ(ram.peek(2), 1u);
}

TEST(CfIn, NonTransitionWriteDoesNotFire) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_in({2, 0}, {5, 0}));
  ram.poke(2, 1);
  ram.poke(5, 1);
  ram.write(5, 1, 0);
  EXPECT_EQ(ram.peek(2), 1u);
}

TEST(CfId, UpTransitionForcesVictim) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_id({1, 0}, {6, 0}, /*up=*/true, /*forced=*/1));
  ram.poke(1, 0);
  ram.poke(6, 0);
  ram.write(6, 1, 0);
  EXPECT_EQ(ram.peek(1), 1u);
}

TEST(CfId, WrongDirectionDoesNotFire) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_id({1, 0}, {6, 0}, /*up=*/true, /*forced=*/1));
  ram.poke(1, 0);
  ram.poke(6, 1);
  ram.write(6, 0, 0);  // down transition; fault wants up
  EXPECT_EQ(ram.peek(1), 0u);
}

TEST(CfId, DownVariantForcesZero) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_id({1, 0}, {6, 0}, /*up=*/false, /*forced=*/0));
  ram.poke(1, 1);
  ram.poke(6, 1);
  ram.write(6, 0, 0);
  EXPECT_EQ(ram.peek(1), 0u);
}

TEST(CfId, IdempotentWhenVictimAlreadyForcedValue) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_id({1, 0}, {6, 0}, /*up=*/true, /*forced=*/1));
  ram.poke(1, 1);
  ram.poke(6, 0);
  ram.write(6, 1, 0);
  EXPECT_EQ(ram.peek(1), 1u);
}

TEST(CfSt, VictimForcedWhileAggressorInState) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_st({3, 0}, {0, 0}, /*when=*/1, /*forced=*/0));
  ram.write(0, 1, 0);  // aggressor enters trigger state
  ram.write(3, 1, 0);  // write 1 to victim: forced back to 0
  EXPECT_EQ(ram.read(3, 0), 0u);
  ram.write(0, 0, 0);  // aggressor leaves trigger state
  ram.write(3, 1, 0);
  EXPECT_EQ(ram.read(3, 0), 1u);
}

TEST(CfSt, IntraWordStateCoupling) {
  FaultyRam ram(4, 4);
  ram.inject(Fault::cf_st({2, 3}, {2, 0}, /*when=*/1, /*forced=*/1));
  ram.write(2, 0b0001, 0);  // bit0 = 1 triggers: bit3 forced to 1
  EXPECT_EQ(ram.read(2, 0), 0b1001u);
  ram.write(2, 0b0000, 0);  // trigger released
  EXPECT_EQ(ram.read(2, 0), 0b0000u);
}

// --- bridges --------------------------------------------------------------

TEST(Bridge, WiredAndTiesBothCells) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::bridge({1, 0}, {2, 0}, /*wired_and=*/true));
  ram.write(1, 1, 0);
  ram.write(2, 0, 0);
  EXPECT_EQ(ram.peek(1), 0u);  // 1 AND 0
  EXPECT_EQ(ram.peek(2), 0u);
}

TEST(Bridge, WiredOrTiesBothCells) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::bridge({1, 0}, {2, 0}, /*wired_and=*/false));
  ram.write(1, 0, 0);
  ram.write(2, 1, 0);
  EXPECT_EQ(ram.peek(1), 1u);  // 0 OR 1
  EXPECT_EQ(ram.peek(2), 1u);
}

TEST(Bridge, AgreeingValuesUndisturbed) {
  // With both cells already equal the tie changes nothing.  (They must
  // be set atomically: under the standard wired-AND model a sequential
  // 1-write against a 0 neighbour is immediately pulled back down.)
  FaultyRam ram(8, 1);
  ram.inject(Fault::bridge({1, 0}, {2, 0}, /*wired_and=*/true));
  ram.poke(1, 1);
  ram.poke(2, 1);
  ram.write(1, 1, 0);
  EXPECT_EQ(ram.peek(1), 1u);
  EXPECT_EQ(ram.peek(2), 1u);
  ram.write(2, 0, 0);  // now both collapse to 0
  EXPECT_EQ(ram.peek(1), 0u);
  EXPECT_EQ(ram.peek(2), 0u);
}

// --- address decoder faults -------------------------------------------------

TEST(Af, NoAccessReadsZeroWritesLost) {
  FaultyRam ram(8, 4);
  ram.inject(Fault::af_no_access(3));
  ram.write(3, 0xF, 0);
  EXPECT_EQ(ram.peek(3), 0u);     // write lost
  ram.poke(3, 0xA);
  EXPECT_EQ(ram.read(3, 0), 0u);  // floating bus reads zero
}

TEST(Af, WrongAccessHitsOtherCell) {
  FaultyRam ram(8, 4);
  ram.inject(Fault::af_wrong_access(3, 5));
  ram.write(3, 0x9, 0);
  EXPECT_EQ(ram.peek(3), 0u);
  EXPECT_EQ(ram.peek(5), 0x9u);
  EXPECT_EQ(ram.read(3, 0), 0x9u);  // reads cell 5
}

TEST(Af, MultiAccessWritesBothReadsWiredAnd) {
  FaultyRam ram(8, 4);
  ram.inject(Fault::af_multi_access(2, 6));
  ram.write(2, 0xC, 0);
  EXPECT_EQ(ram.peek(2), 0xCu);
  EXPECT_EQ(ram.peek(6), 0xCu);
  ram.poke(6, 0xA);
  EXPECT_EQ(ram.read(2, 0), 0xC & 0xAu);
}

TEST(Af, UnaffectedAddressesNormal) {
  FaultyRam ram(8, 4);
  ram.inject(Fault::af_wrong_access(3, 5));
  ram.write(4, 0x7, 0);
  EXPECT_EQ(ram.read(4, 0), 0x7u);
}

// --- NPSF ---------------------------------------------------------------

TEST(Npsf, PatternForcesBaseCell) {
  // 4x4 grid; victim cell 5 (row 1, col 1) with neighbours
  // N=1, E=6, S=9, W=4.  Pattern 0b1111 (all ones) forces victim to 0.
  FaultyRam ram(16, 1);
  ram.inject(Fault::npsf_static({5, 0}, 0b1111, /*forced=*/0, 4));
  ram.write(5, 1, 0);
  EXPECT_EQ(ram.peek(5), 1u);  // neighbourhood not yet matching
  ram.write(1, 1, 0);
  ram.write(6, 1, 0);
  ram.write(9, 1, 0);
  ram.write(4, 1, 0);  // completes the pattern
  EXPECT_EQ(ram.peek(5), 0u);
}

TEST(Npsf, WrongPatternDoesNotFire) {
  FaultyRam ram(16, 1);
  ram.inject(Fault::npsf_static({5, 0}, 0b1111, /*forced=*/0, 4));
  ram.write(5, 1, 0);
  ram.write(1, 1, 0);
  ram.write(6, 1, 0);
  ram.write(9, 1, 0);  // W stays 0: pattern 0b1110
  EXPECT_EQ(ram.peek(5), 1u);
}

// --- cascades & multiple faults ---------------------------------------------

TEST(Cascade, CouplingChainPropagates) {
  // Aggressor 0 -> victim 1; victim 1 is aggressor for victim 2.
  FaultyRam ram(8, 1);
  ram.inject(Fault::cf_id({1, 0}, {0, 0}, /*up=*/true, /*forced=*/1));
  ram.inject(Fault::cf_id({2, 0}, {1, 0}, /*up=*/true, /*forced=*/1));
  ram.write(0, 1, 0);
  EXPECT_EQ(ram.peek(1), 1u);
  EXPECT_EQ(ram.peek(2), 1u);  // fired by victim 1's own transition
}

TEST(Cascade, MutualInversionTerminates) {
  // Two CFin faults coupling a pair both ways must not loop forever.
  FaultyRam ram(4, 1);
  ram.inject(Fault::cf_in({0, 0}, {1, 0}));
  ram.inject(Fault::cf_in({1, 0}, {0, 0}));
  ram.write(1, 1, 0);  // fires inversion of 0, which fires back...
  SUCCEED();           // reaching here means the cascade cap worked
}

TEST(MultiFault, SafVictimWinsOverCoupling) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({1, 0}, 0));
  ram.inject(Fault::cf_id({1, 0}, {0, 0}, /*up=*/true, /*forced=*/1));
  ram.write(0, 1, 0);  // tries to force victim to 1
  EXPECT_EQ(ram.peek(1), 0u);
}

TEST(Injector, StatsCountLogicalAccesses) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::af_multi_access(0, 4));
  ram.write(0, 1, 0);  // one logical write (two physical)
  ram.read(0, 0);
  EXPECT_EQ(ram.stats(0).writes, 1u);
  EXPECT_EQ(ram.stats(0).reads, 1u);
}

TEST(Injector, ClearFaultsRestoresGoldenBehaviour) {
  FaultyRam ram(8, 1);
  ram.inject(Fault::saf({1, 0}, 0));
  ram.clear_faults();
  ram.write(1, 1, 0);
  EXPECT_EQ(ram.read(1, 0), 1u);
}

TEST(Injector, FaultFreeMatchesSimRamOnRandomTraffic) {
  FaultyRam faulty(32, 4);
  SimRam golden(32, 4);
  std::uint64_t x = 12345;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Addr a = static_cast<Addr>((x >> 32) % 32);
    if (x & 1) {
      const Word v = static_cast<Word>((x >> 16) & 0xF);
      faulty.write(a, v, 0);
      golden.write(a, v, 0);
    } else {
      ASSERT_EQ(faulty.read(a, 0), golden.read(a, 0)) << "step " << i;
    }
  }
}

// --- precondition enforcement (release builds included) -----------------

TEST(Inject, ThrowsOnMalformedFaults) {
  FaultyRam ram(8, 2);
  EXPECT_THROW(ram.inject(Fault::saf({8, 0}, 1)), std::invalid_argument);
  EXPECT_THROW(ram.inject(Fault::saf({0, 2}, 1)), std::invalid_argument);
  EXPECT_THROW(ram.inject(Fault::cf_in({1, 0}, {9, 0})),
               std::invalid_argument);
  EXPECT_THROW(ram.inject(Fault::cf_in({1, 0}, {1, 0})),
               std::invalid_argument);
  EXPECT_THROW(ram.inject(Fault::af_wrong_access(1, 8)),
               std::invalid_argument);
  EXPECT_THROW(ram.inject(Fault::af_multi_access(1, 99)),
               std::invalid_argument);
  EXPECT_THROW(ram.inject(Fault::retention({1, 0}, 1, /*delay_ticks=*/0)),
               std::invalid_argument);
  // Nothing was recorded by the rejected injections.
  EXPECT_TRUE(ram.faults().empty());
  EXPECT_NO_THROW(ram.inject(Fault::saf({7, 1}, 1)));
}

TEST(Ctor, RejectsUnsupportedGeometry) {
  // The per-port stats/sense-amp arrays hold 4 entries; anything else
  // would index out of bounds in release builds.
  EXPECT_THROW(FaultyRam(8, 1, 0), std::invalid_argument);
  EXPECT_THROW(FaultyRam(8, 1, 3), std::invalid_argument);
  EXPECT_THROW(FaultyRam(8, 1, 5), std::invalid_argument);
  EXPECT_THROW(FaultyRam(8, 0, 1), std::invalid_argument);
  EXPECT_THROW(FaultyRam(8, 33, 1), std::invalid_argument);
  EXPECT_THROW(FaultyRam(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(SimRam(8, 1, 8), std::invalid_argument);
  EXPECT_NO_THROW(FaultyRam(8, 32, 4));
}

TEST(FaultDescribe, MentionsKindAndCells) {
  const Fault f = Fault::cf_in({3, 0}, {7, 1});
  const std::string d = f.describe();
  EXPECT_NE(d.find("CFin"), std::string::npos);
  EXPECT_NE(d.find("(3,0)"), std::string::npos);
  EXPECT_NE(d.find("(7,1)"), std::string::npos);
}

TEST(FaultClassMap, EveryKindHasAClass) {
  EXPECT_EQ(fault_class(FaultKind::kSaf0), FaultClass::kSaf);
  EXPECT_EQ(fault_class(FaultKind::kTfDown), FaultClass::kTf);
  EXPECT_EQ(fault_class(FaultKind::kSof), FaultClass::kReadLogic);
  EXPECT_EQ(fault_class(FaultKind::kCfIdUp1), FaultClass::kCfId);
  EXPECT_EQ(fault_class(FaultKind::kBridgeOr), FaultClass::kBridge);
  EXPECT_EQ(fault_class(FaultKind::kAfMultiAccess), FaultClass::kAf);
  EXPECT_EQ(fault_class(FaultKind::kNpsfStatic), FaultClass::kNpsf);
}

}  // namespace
}  // namespace prt::mem
