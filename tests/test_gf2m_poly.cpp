// Tests for polynomials over GF(2^m) (gf/gf2m_poly) — the layer that
// certifies the paper's g(x) = 1 + 2x + 2x^2 as irreducible/primitive
// over GF(2^4) and computes LFSR periods.
#include "gf/gf2m_poly.hpp"

#include <gtest/gtest.h>

namespace prt::gf {
namespace {

GF2m paper_field() { return GF2m(0b10011); }  // GF(16), p = z^4+z+1

PolyGF2m paper_g() { return PolyGF2m({1, 2, 2}); }  // 1 + 2x + 2x^2

TEST(PolyGF2mBasic, NormalizationDropsLeadingZeros) {
  PolyGF2m p({1, 2, 0, 0});
  EXPECT_EQ(p.degree(), 1);
  EXPECT_EQ(p.at(0), 1u);
  EXPECT_EQ(p.at(5), 0u);
  EXPECT_TRUE(PolyGF2m({0, 0}).is_zero());
}

TEST(PolyGF2mBasic, AddIsXorOfCoefficients) {
  const GF2m f = paper_field();
  const PolyGF2m a({1, 2, 3});
  const PolyGF2m b({3, 2, 1});
  EXPECT_EQ(poly_add(f, a, b), PolyGF2m({2, 0, 2}));
  // a + a = 0 in characteristic 2.
  EXPECT_TRUE(poly_add(f, a, a).is_zero());
}

TEST(PolyGF2mBasic, MulDegreeAdds) {
  const GF2m f = paper_field();
  const PolyGF2m a({1, 1});     // 1 + x
  const PolyGF2m b({2, 0, 1});  // 2 + x^2
  const PolyGF2m prod = poly_mul(f, a, b);
  EXPECT_EQ(prod.degree(), 3);
  // (1+x)(2+x^2) = 2 + 2x + x^2 + x^3.
  EXPECT_EQ(prod, PolyGF2m({2, 2, 1, 1}));
}

TEST(PolyGF2mBasic, MulByZeroIsZero) {
  const GF2m f = paper_field();
  EXPECT_TRUE(poly_mul(f, paper_g(), PolyGF2m{}).is_zero());
}

TEST(PolyGF2mBasic, ModReducesBelowDivisor) {
  const GF2m f = paper_field();
  const PolyGF2m g = paper_g();
  PolyGF2m big({5, 6, 7, 8, 9});
  const PolyGF2m r = poly_mod(f, big, g);
  EXPECT_LT(r.degree(), g.degree());
}

TEST(PolyGF2mBasic, DivisionInvariant) {
  const GF2m f = paper_field();
  const PolyGF2m g = paper_g();
  // For random-ish a: a mod g added to a multiple of g reproduces a.
  const PolyGF2m a({7, 3, 9, 12, 1});
  const PolyGF2m r = poly_mod(f, a, g);
  // a - r must be divisible by g (difference == sum in char 2).
  const PolyGF2m diff = poly_add(f, a, r);
  EXPECT_TRUE(poly_mod(f, diff, g).is_zero());
}

TEST(PolyGF2mBasic, MakeMonic) {
  const GF2m f = paper_field();
  const PolyGF2m monic = poly_make_monic(f, paper_g());
  EXPECT_EQ(monic.coeffs.back(), 1u);
  // Monic version has the same roots: check proportionality by
  // re-scaling back.
  EXPECT_EQ(poly_scale(f, monic, 2), paper_g());
}

TEST(PolyGF2mBasic, EvalHorner) {
  const GF2m f = paper_field();
  const PolyGF2m g = paper_g();
  // g(0) = 1; g(1) = 1 + 2 + 2 = 1.
  EXPECT_EQ(poly_eval(f, g, 0), 1u);
  EXPECT_EQ(poly_eval(f, g, 1), 1u);
}

TEST(PolyGF2mBasic, GcdOfCoprime) {
  const GF2m f = paper_field();
  const PolyGF2m g = paper_g();
  const PolyGF2m x({0, 1});
  const PolyGF2m gcd = poly_gcd(f, g, x);
  EXPECT_EQ(gcd.degree(), 0);
}

TEST(PolyGF2mIrreducible, PaperGeneratorIsIrreducible) {
  // The paper: "g(x) = 1 + 2x + 2x^2 ... is irreducible in the field
  // GF(2^4)".
  EXPECT_TRUE(is_irreducible(paper_field(), paper_g()));
}

TEST(PolyGF2mIrreducible, PaperGeneratorIsPrimitive) {
  EXPECT_TRUE(is_primitive(paper_field(), paper_g()));
}

TEST(PolyGF2mIrreducible, IrreducibleHasNoRoots) {
  const GF2m f = paper_field();
  const PolyGF2m g = paper_g();
  for (Elem a = 0; a < 16; ++a) {
    EXPECT_NE(poly_eval(f, g, a), 0u) << "root at " << +a;
  }
}

TEST(PolyGF2mIrreducible, ProductOfLinearsIsReducible) {
  const GF2m f = paper_field();
  // (x + 3)(x + 5) expanded: x^2 + (3+5)x + 15 = x^2 + 6x + 15... in
  // GF(16): 3*5 = ?  Compute via the field to stay honest.
  const Elem c0 = f.mul(3, 5);
  const PolyGF2m reducible({c0, f.add(3, 5), 1});
  EXPECT_FALSE(is_irreducible(f, reducible));
}

TEST(PolyGF2mIrreducible, DetectsRootlessReducibleQuartic) {
  // Over GF(2) (via m=1 field z+1): x^4+x^2+1 = (x^2+x+1)^2 has no
  // roots but is reducible — Rabin must not be fooled.
  const GF2m f2(0b11);
  const PolyGF2m p({1, 0, 1, 0, 1});
  EXPECT_FALSE(is_irreducible(f2, p));
}

TEST(PolyGF2mIrreducible, AgreesWithGf2LayerForM1) {
  const GF2m f2(0b11);
  // x^4 + x + 1 over GF(2).
  EXPECT_TRUE(is_irreducible(f2, PolyGF2m({1, 1, 0, 0, 1})));
  // x^4 + x^2 + x + 1 = (x+1)(x^3+x^2+1)? evaluate: has root 1.
  EXPECT_FALSE(is_irreducible(f2, PolyGF2m({1, 1, 1, 0, 1})));
}

TEST(PolyGF2mOrder, PaperGeneratorHasPeriod255) {
  // Fig. 1b: the virtual word-oriented LFSR closes its ring after 255
  // states (GF(16), k = 2: q^k - 1 = 255).
  EXPECT_EQ(order_of_x(paper_field(), paper_g()), 255u);
}

TEST(PolyGF2mOrder, CheckerboardGeneratorHasPeriod2) {
  // g(x) = 1 + x^2 (reducible): x^2 = 1 mod g, so the order is 2.
  EXPECT_EQ(order_of_x(paper_field(), PolyGF2m({1, 0, 1})), 2u);
  EXPECT_EQ(order_of_x(GF2m(0b11), PolyGF2m({1, 0, 1})), 2u);
}

TEST(PolyGF2mOrder, ZeroConstantTermMeansNoOrder) {
  EXPECT_EQ(order_of_x(paper_field(), PolyGF2m({0, 1, 1})), 0u);
}

TEST(PolyGF2mOrder, BomFig1aGeneratorHasPeriod3) {
  // g(x) = 1 + x + x^2 over GF(2).
  EXPECT_EQ(order_of_x(GF2m(0b11), PolyGF2m({1, 1, 1})), 3u);
}

TEST(PolyGF2mOrder, OrderMatchesBruteForceOverGf4) {
  const GF2m f(0b111);  // GF(4)
  // Sweep all monic degree-2 polynomials with non-zero constant term.
  for (Elem c0 = 1; c0 < 4; ++c0) {
    for (Elem c1 = 0; c1 < 4; ++c1) {
      const PolyGF2m g({c0, c1, 1});
      const std::uint64_t analytic = order_of_x(f, g);
      // Brute force.
      PolyGF2m cur({0, 1});
      cur = poly_mod(f, cur, g);
      const PolyGF2m one({1});
      std::uint64_t t = 0;
      PolyGF2m acc = cur;
      for (t = 1; t < 1000; ++t) {
        if (acc == one) break;
        acc = poly_mulmod(f, acc, cur, g);
      }
      EXPECT_EQ(analytic, t) << "c0=" << +c0 << " c1=" << +c1;
    }
  }
}

TEST(PolyGF2mFind, FindsPrimitiveQuadraticOverEveryField) {
  for (unsigned m : {2u, 3u, 4u, 8u}) {
    const GF2m f = GF2m::standard(m);
    const auto g = find_irreducible(f, 2, /*primitive=*/true);
    ASSERT_TRUE(g.has_value()) << "m=" << m;
    EXPECT_TRUE(is_primitive(f, *g));
    std::uint64_t full = static_cast<std::uint64_t>(f.size()) * f.size() - 1;
    EXPECT_EQ(order_of_x(f, *g), full);
  }
}

TEST(PolyGF2mFind, FindsPlainIrreducibleCubic) {
  const GF2m f = GF2m::standard(4);
  const auto g = find_irreducible(f, 3, /*primitive=*/false);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->degree(), 3);
  EXPECT_TRUE(is_irreducible(f, *g));
}

TEST(PolyGF2mToString, PaperStyle) {
  const GF2m f = paper_field();
  EXPECT_EQ(poly_to_string(f, paper_g()), "1 + 2x + 2x^2");
  EXPECT_EQ(poly_to_string(f, PolyGF2m({0, 1})), "x");
  EXPECT_EQ(poly_to_string(f, PolyGF2m({10, 0, 12})), "A + Cx^2");
  EXPECT_EQ(poly_to_string(f, PolyGF2m{}), "0");
}

}  // namespace
}  // namespace prt::gf
