#include "util/fail_point.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace prt::util {

namespace {

struct Armed {
  FailPoint::Config config;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Armed> points;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Count of armed points — the disarmed fast path in hit() is one
/// relaxed load of this, so production runs never touch the registry
/// lock.
std::atomic<std::size_t>& armed_count() {
  static std::atomic<std::size_t> count{0};
  return count;
}

}  // namespace

void FailPoint::arm(const std::string& name, const Config& config) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.points.insert_or_assign(name, Armed{config, 0});
  (void)it;
  if (inserted) armed_count().fetch_add(1, std::memory_order_release);
}

void FailPoint::disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  if (r.points.erase(name) != 0) {
    armed_count().fetch_sub(1, std::memory_order_release);
  }
}

void FailPoint::disarm_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  armed_count().fetch_sub(r.points.size(), std::memory_order_release);
  r.points.clear();
}

std::uint64_t FailPoint::hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

void FailPoint::hit(const char* name) {
  if (armed_count().load(std::memory_order_acquire) == 0) return;
  Config config;
  bool fire = false;
  {
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    const auto it = r.points.find(name);
    if (it == r.points.end()) return;
    Armed& armed = it->second;
    const std::uint64_t hit_index = armed.hits++;
    const auto skip = static_cast<std::uint64_t>(armed.config.skip);
    fire = hit_index >= skip &&
           (armed.config.fires < 0 ||
            hit_index < skip + static_cast<std::uint64_t>(armed.config.fires));
    config = armed.config;
  }
  if (!fire) return;
  switch (config.action) {
    case Action::kThrow:
      throw FailPointError(std::string("fail point '") + name + "' fired");
    case Action::kDelay:
      std::this_thread::sleep_for(config.delay);
      break;
  }
}

}  // namespace prt::util
