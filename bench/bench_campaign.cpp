// Campaign-engine micro-benchmark: the seed's serial per-fault path
// (fresh FaultyRam + full scheme re-derivation per fault) against the
// oracle-backed engine, its parallel fan-out, early-abort, and the
// word-packed SIMD fault lanes — the perf trajectory behind the
// CampaignEngine overhaul (DESIGN.md §7) and the bit-lane packing
// (DESIGN.md §8).
//
// Two universe families are measured and written to
// BENCH_campaign.json:
//
//  * the shared classical universe (SAF/TF/CFin/bridge/AF), where only
//    the 4n single-cell faults ride the packed lanes and the rest stay
//    scalar — the mixed-workload picture;
//  * the lane-compatible single-cell universe (SAF/TF/WDF + read
//    logic, 9n faults, every one packable), where the packed path's
//    64-faults-per-sweep gain is undiluted — the acceptance number is
//    packed vs the PR 1 oracle+parallel path here.
//
// Every configuration of a section runs the same universe slice and is
// parity-checked against the section's first configuration, so the
// ratios stay apples-to-apples and a model divergence aborts the
// bench.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "core/prt_engine.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"

namespace {

using namespace prt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The seed code path, reproduced verbatim as the baseline: one heap
/// FaultyRam per fault, prefilled cell by cell, and run_prt re-deriving
/// trajectory/golden sequence/Fin*/image per fault.
analysis::CampaignResult seed_serial_campaign(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const analysis::CampaignOptions& opt) {
  analysis::CampaignResult result;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    mem::FaultyRam ram(opt.n, opt.m, opt.ports);
    for (mem::Addr a = 0; a < opt.n; ++a) ram.poke(a, 0);
    ram.inject(universe[i]);
    const bool detected = core::run_prt(ram, scheme).detected();
    result.ops += ram.total_stats().total();
    auto& cls = result.by_class[mem::fault_class(universe[i].kind)];
    ++cls.total;
    ++result.overall.total;
    if (detected) {
      ++cls.detected;
      ++result.overall.detected;
    } else {
      result.escapes.push_back(i);
    }
  }
  return result;
}

/// Caps a universe by stride-sampling so the fault-family mix of the
/// full universe is preserved — a plain resize() would keep only the
/// leading single-cell faults and silently turn a mixed section into
/// a fully lane-compatible one.
std::vector<mem::Fault> cap_universe(std::vector<mem::Fault> universe,
                                     std::size_t cap) {
  if (universe.size() <= cap) return universe;
  std::vector<mem::Fault> sampled;
  sampled.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    sampled.push_back(universe[i * universe.size() / cap]);
  }
  return sampled;
}

struct ConfigTiming {
  std::string name;
  double seconds = 0;
  std::uint64_t ops = 0;
  double coverage = 0;
};

struct SectionReport {
  std::string universe;
  std::string scheme;
  mem::Addr n = 0;
  std::size_t faults = 0;
  std::vector<ConfigTiming> configs;
  /// Ratio of the oracle+parallel config's time to the packed config's
  /// time (0 when the section has neither) — the headline lane-packing
  /// gain.
  double packed_vs_parallel = 0;
  [[nodiscard]] double speedup_vs_baseline(std::size_t idx) const {
    return configs[idx].seconds > 0
               ? configs[0].seconds / configs[idx].seconds
               : 0.0;
  }
};

class SectionRunner {
 public:
  SectionRunner(SectionReport& report,
                std::span<const mem::Fault> universe,
                const core::PrtScheme& scheme,
                const analysis::CampaignOptions& opt)
      : report_(report), universe_(universe), scheme_(scheme), opt_(opt) {
    std::printf("%s universe, n = %u, %zu faults, scheme %s\n",
                report_.universe.c_str(), report_.n, universe_.size(),
                scheme_.name.c_str());
  }

  void seed_serial() {
    record("serial (seed path)",
           [&] { return seed_serial_campaign(universe_, scheme_, opt_); });
  }

  void engine(const std::string& name, const analysis::EngineOptions& eng) {
    // Early abort legitimately shrinks the op count; every other
    // config must reproduce the baseline ops bit-for-bit.
    record(
        name,
        [&] {
          return analysis::run_prt_campaign(universe_, scheme_, opt_, eng);
        },
        /*ops_exempt=*/eng.early_abort);
  }

  void finish() {
    double parallel_secs = 0, packed_secs = 0;
    for (std::size_t i = 0; i < report_.configs.size(); ++i) {
      std::printf("  %-28s %.2fx vs %s\n", report_.configs[i].name.c_str(),
                  report_.speedup_vs_baseline(i),
                  report_.configs[0].name.c_str());
      if (report_.configs[i].name == "oracle+parallel") {
        parallel_secs = report_.configs[i].seconds;
      }
      if (report_.configs[i].name == "oracle+parallel+packed") {
        packed_secs = report_.configs[i].seconds;
      }
    }
    if (parallel_secs > 0 && packed_secs > 0) {
      report_.packed_vs_parallel = parallel_secs / packed_secs;
      std::printf("  packed vs oracle+parallel: %.2fx\n",
                  report_.packed_vs_parallel);
    }
    std::printf("\n");
  }

 private:
  template <typename Run>
  void record(const std::string& name, Run&& run, bool ops_exempt = false) {
    const auto start = Clock::now();
    const analysis::CampaignResult r = run();
    const double secs = seconds_since(start);
    if (report_.configs.empty()) {
      reference_ = r;
    } else if (!(r.overall == reference_.overall &&
                 r.by_class == reference_.by_class &&
                 r.escapes == reference_.escapes &&
                 (ops_exempt || r.ops == reference_.ops))) {
      std::fprintf(stderr, "PARITY VIOLATION in config %s at n=%u\n",
                   name.c_str(), report_.n);
      std::exit(1);
    }
    report_.configs.push_back({name, secs, r.ops, r.overall.percent()});
    std::printf("  %-28s %8.3f s   %12llu ops   %6.2f %% coverage\n",
                name.c_str(), secs,
                static_cast<unsigned long long>(r.ops), r.overall.percent());
  }

  SectionReport& report_;
  std::span<const mem::Fault> universe_;
  const core::PrtScheme& scheme_;
  analysis::CampaignOptions opt_;
  analysis::CampaignResult reference_;
};

analysis::EngineOptions engine_opts(bool parallel, bool packed,
                                    bool early_abort = false) {
  analysis::EngineOptions eng;
  eng.parallel = parallel;
  eng.packed = packed;
  eng.early_abort = early_abort;
  return eng;
}

/// Classical universe: the PR 1 ladder (seed serial -> oracle ->
/// parallel -> abort) plus the packed config — mixed workload, only the
/// SAF/TF share rides the lanes.
SectionReport bench_classical(mem::Addr n, std::size_t fault_cap) {
  const auto universe = cap_universe(mem::classical_universe(n), fault_cap);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report{.universe = "classical",
                       .scheme = scheme.name,
                       .n = n,
                       .faults = universe.size()};
  SectionRunner run(report, universe, scheme, opt);
  run.seed_serial();
  run.engine("oracle", engine_opts(false, false));
  run.engine("oracle+parallel", engine_opts(true, false));
  run.engine("oracle+parallel+abort", engine_opts(true, false, true));
  run.engine("oracle+parallel+packed", engine_opts(true, true));
  run.finish();
  return report;
}

/// Lane-compatible universe: every fault is packable, so the packed
/// config shows the undiluted 64-faults-per-sweep gain over the PR 1
/// oracle+parallel path (the acceptance ratio).
SectionReport bench_lane_compatible(mem::Addr n, const core::PrtScheme& scheme,
                                    std::size_t fault_cap) {
  const auto universe =
      cap_universe(mem::single_cell_universe(n, 1, /*read_logic=*/true),
                   fault_cap);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report{.universe = "single-cell (lane-compatible)",
                       .scheme = scheme.name,
                       .n = n,
                       .faults = universe.size()};
  SectionRunner run(report, universe, scheme, opt);
  run.engine("oracle", engine_opts(false, false));
  run.engine("oracle+parallel", engine_opts(true, false));
  run.engine("oracle+parallel+packed", engine_opts(true, true));
  run.finish();
  return report;
}

void write_json(const std::vector<SectionReport>& reports,
                unsigned hardware_threads) {
  std::ofstream out("BENCH_campaign.json");
  out << "{\n"
      << "  \"bench\": \"campaign\",\n"
      << "  \"hardware_concurrency\": " << hardware_threads << ",\n"
      << "  \"sections\": [\n";
  for (std::size_t s = 0; s < reports.size(); ++s) {
    const SectionReport& r = reports[s];
    out << "    {\n      \"universe\": \"" << r.universe
        << "\",\n      \"scheme\": \"" << r.scheme << "\",\n      \"n\": "
        << r.n << ",\n      \"faults\": " << r.faults
        << ",\n      \"packed_vs_parallel\": " << r.packed_vs_parallel
        << ",\n      \"configs\": [\n";
    for (std::size_t c = 0; c < r.configs.size(); ++c) {
      const ConfigTiming& t = r.configs[c];
      out << "        {\"name\": \"" << t.name << "\", \"seconds\": "
          << t.seconds << ", \"ops\": " << t.ops << ", \"coverage\": "
          << t.coverage << ", \"speedup_vs_baseline\": "
          << r.speedup_vs_baseline(c) << "}"
          << (c + 1 < r.configs.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (s + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick caps every universe for smoke runs (CI, 1-core boxes).
  std::size_t cap_small = static_cast<std::size_t>(-1);
  std::size_t cap_large = 4096;
  std::size_t cap_lane = 16384;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      cap_small = 512;
      cap_large = 512;
      cap_lane = 512;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("campaign engine bench — %u hardware thread(s)\n\n", hw);
  std::vector<SectionReport> reports;
  reports.push_back(bench_classical(256, cap_small));
  reports.push_back(bench_classical(1024, cap_small));
  reports.push_back(bench_classical(4096, cap_large));
  reports.push_back(
      bench_lane_compatible(1024, core::extended_scheme_bom(1024), cap_small));
  reports.push_back(
      bench_lane_compatible(4096, core::standard_scheme_bom(4096), cap_lane));
  write_json(reports, hw);
  std::printf("wrote BENCH_campaign.json\n");
  return 0;
}
