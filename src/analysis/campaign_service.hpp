// Long-lived campaign execution service.
//
// CampaignEngine / MarchCampaign / CampaignSuite are synchronous: the
// caller blocks for the whole campaign and an interrupted process
// loses everything.  CampaignService is the async, fault-tolerant
// layer the ROADMAP's campaign-as-a-service milestone calls for:
//
//  * requests (a PRT scheme or March test + options + universe) are
//    admitted into per-class (high / normal / batch) bounded queues —
//    a submission past its class bound is rejected immediately with
//    kRejected instead of queueing without bound.  Dispatch drains
//    strictly by class, FIFO within a class, onto one shared worker
//    pool with a bounded running window (max_running).  A deadline-
//    aware load-shedder resolves queued requests whose remaining
//    deadline can no longer cover their estimated cost (a per-
//    (workload-kind, n) EWMA of observed shard latencies) with
//    kShedded at dispatch time, before any oracle work is spent on
//    guaranteed-partial results;
//  * every request carries a cooperative StopToken: cancel() and the
//    per-request deadline stop the shard loops at the next fault
//    boundary, and the request resolves to a *partial* outcome — the
//    exact merge of the shards that completed (kPartialCancelled /
//    kPartialDeadline), never a torn result;
//  * a shard watchdog (util/watchdog.hpp) cancels any shard attempt
//    exceeding `stall_budget` via a per-attempt child StopToken
//    (StopReason::kStalled) and folds the stall into the bounded-retry
//    path: a wedged shard becomes a retried shard, not a wedged
//    request;
//  * progress is checkpointed at shard granularity: every
//    `checkpoint_every` completed shards the service durably rewrites
//    a version-headered, per-record CRC32-guarded checkpoint file
//    (fingerprint + shard partition + per-shard results; format v2,
//    DESIGN.md §13).  A resumed request re-validates the fingerprint —
//    workload structure, geometry, run options and the universe
//    itself — adopts the recorded partition, and its final result is
//    bit-identical to an uninterrupted run.  A torn or corrupted
//    checkpoint is *salvaged*: the longest CRC-valid record prefix is
//    adopted and the rest recomputed (counted in
//    stats().checkpoint_salvaged); only a genuine fingerprint mismatch
//    hard-fails the request;
//  * a shard task that throws is retried up to `max_retries` times;
//    exhaustion fails that request (kFailed, error preserved) and
//    winds down its remaining shards without touching other requests
//    or the pool.  util::FailPoint hooks in the pool, the oracle
//    cache, the shard tasks and the checkpoint writer let tests drive
//    each of these paths deterministically.
//
// See DESIGN.md §11/§13 and tests/test_campaign_service.cpp,
// tests/test_checkpoint_recovery.cpp.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "core/prt_engine.hpp"
#include "march/march_runner.hpp"

namespace prt::analysis {

namespace detail {
struct ServiceRequest;
}  // namespace detail

/// Admission class of a request.  Dispatch drains high before normal
/// before batch, FIFO within a class; each class has its own queue
/// bound in ServiceOptions.
enum class RequestPriority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kBatch = 2,
};

[[nodiscard]] std::string to_string(RequestPriority priority);

struct ServiceOptions {
  /// Worker count for the one shared pool; 0 defers to the
  /// PRT_THREADS environment override, then the hardware concurrency.
  unsigned threads = 0;
  /// Dispatch window: requests orchestrating/running concurrently.
  /// Further admitted requests wait in their class queue.
  std::size_t max_running = 8;
  /// Per-class admission bounds: a submission while its class queue
  /// already holds this many waiting requests is rejected with
  /// kRejected.  0 means "no queueing" — reject whenever the running
  /// window is full.
  std::size_t queue_bound_high = 16;
  std::size_t queue_bound_normal = 32;
  std::size_t queue_bound_batch = 64;
  /// Retries per shard task before the request fails.
  int max_retries = 2;
  /// Watchdog budget per shard *attempt*; an attempt exceeding it is
  /// cancelled (kStalled) and retried like a thrown shard.  0
  /// disables the watchdog.
  std::chrono::nanoseconds stall_budget{0};
  /// If nonzero, applied to OracleCache::global()'s byte budget at
  /// service construction (the cache is process-wide, so the last
  /// constructed service wins).  0 leaves the budget untouched.
  std::size_t cache_budget_bytes = 0;
};

/// How a service request resolved.
enum class RequestStatus : std::uint8_t {
  /// Every shard ran; result is bit-identical to a synchronous run.
  kComplete,
  /// cancel() stopped the run; result covers the completed shards.
  kPartialCancelled,
  /// The deadline stopped the run; result covers the completed shards.
  kPartialDeadline,
  /// Setup failed or a shard exhausted its retries; see `error`.
  kFailed,
  /// Rejected at admission (class queue bound); no work was done.
  kRejected,
  /// Shed at dispatch: the remaining deadline could not cover the
  /// estimated cost, so no work was started; see `error` for the
  /// estimate.  Distinct from kPartialDeadline — a shed request
  /// burned no pool time.
  kShedded,
};

[[nodiscard]] std::string to_string(RequestStatus status);

/// One campaign request.  Exactly one of `scheme` / `march_test` must
/// be set.  The universe is owned by the request (the service runs it
/// asynchronously after submit() returns).
struct CampaignRequest {
  std::optional<core::PrtScheme> scheme;
  std::optional<march::MarchTest> march_test;
  CampaignOptions options;
  /// Engine knobs, same semantics as EngineOptions/MarchEngineOptions.
  bool packed = true;
  bool early_abort = false;
  std::vector<mem::Fault> universe;
  /// Admission class; see RequestPriority.
  RequestPriority priority = RequestPriority::kNormal;
  /// Shard partition size; 0 = one shard per pool worker.  A resumed
  /// request always adopts the partition recorded in the checkpoint.
  std::size_t shards = 0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Completed shards between checkpoint rewrites (>= 1).  A final
  /// checkpoint is always flushed when a checkpointed request ends
  /// incomplete, so cancel-then-resume loses nothing.
  std::size_t checkpoint_every = 1;
  /// Load `checkpoint_path` and skip its completed shards.  A missing
  /// checkpoint file means a fresh run; a torn or corrupted one is
  /// salvaged (longest valid record prefix, rest recomputed); a
  /// checkpoint whose fingerprint does not match this request fails it
  /// (kFailed) rather than silently merging results from a different
  /// campaign.
  bool resume = false;
  /// Wall-clock budget measured from submit(); zero = none.  Queued
  /// time counts against it, and the load-shedder may resolve the
  /// request kShedded at dispatch if the remainder cannot cover the
  /// estimated run cost.
  std::chrono::nanoseconds deadline{0};
};

/// Resolved outcome of one request.
struct RequestOutcome {
  RequestStatus status = RequestStatus::kFailed;
  /// Exact merge of the completed shards (all of them on kComplete).
  CampaignResult result;
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  /// Shards whose results were adopted from the checkpoint.
  std::size_t shards_resumed = 0;
  /// Human-readable failure cause (kFailed / kRejected / kShedded).
  std::string error;
};

class CampaignService {
 public:
  explicit CampaignService(const ServiceOptions& options = {});
  /// Blocks until every admitted request has resolved.
  ~CampaignService();
  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  class Ticket {
   public:
    /// A default ticket holds no request: done() is true, cancel() is
    /// a no-op and wait() throws std::logic_error.
    Ticket() = default;
    /// Blocks until the request resolves; idempotent.  On an lvalue
    /// ticket the reference is valid for the ticket's lifetime; on a
    /// temporary ticket (`service.submit(...).wait()`) the outcome is
    /// returned by value so it outlives the ticket.
    [[nodiscard]] const RequestOutcome& wait() const&;
    [[nodiscard]] RequestOutcome wait() &&;
    /// True once the outcome is available (wait() will not block).
    [[nodiscard]] bool done() const;
    /// Requests cooperative cancellation; shard loops stop at the next
    /// fault boundary (a still-queued request resolves partial with no
    /// shards run).  No-op once the request resolved.
    void cancel() const;

   private:
    friend class CampaignService;
    explicit Ticket(std::shared_ptr<detail::ServiceRequest> request);
    std::shared_ptr<detail::ServiceRequest> request_;
  };

  /// Validates and admits a request.  Never blocks on campaign work:
  /// past the class queue bound (or on a malformed request) the
  /// returned ticket is already resolved with kRejected / kFailed.
  [[nodiscard]] Ticket submit(CampaignRequest request);

  /// Blocks until every request admitted so far has resolved.
  void wait_all();

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shedded = 0;
    std::uint64_t completed = 0;
    std::uint64_t partial = 0;
    std::uint64_t failed = 0;
    std::uint64_t shard_retries = 0;
    /// Shard attempts cancelled by the stall watchdog.
    std::uint64_t shard_stalls = 0;
    /// Dispatch tallies rolled up over every resolved request: faults
    /// that rode a packed lane batch vs the scalar per-fault path
    /// (CampaignResult::packed_faults / scalar_faults), plus the
    /// packed subset that rode a wider-than-64 SIMD lane word
    /// (CampaignResult::sched.wide_faults).
    std::uint64_t packed_faults = 0;
    std::uint64_t scalar_faults = 0;
    std::uint64_t wide_faults = 0;
    std::uint64_t checkpoint_writes = 0;
    std::uint64_t checkpoint_failures = 0;
    /// Resume loads that had to salvage a torn/corrupt checkpoint.
    std::uint64_t checkpoint_salvaged = 0;
    std::uint64_t shards_resumed = 0;
    /// Current queue depths / running window occupancy.
    std::uint64_t queued_high = 0;
    std::uint64_t queued_normal = 0;
    std::uint64_t queued_batch = 0;
    std::uint64_t running = 0;
    /// OracleCache::global() counters (process-wide — every service
    /// and engine in the process shares the cache).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prt::analysis
