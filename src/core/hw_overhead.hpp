// Hardware-overhead model for on-chip PRT (paper §4).
//
// "To implement pi-test technique for 2P memories an additional
//  hardware overhead on RAM chip area is need: 'conversion' of the
//  existent address registers into counters and a specific XOR-logic.
//  The ponder of the hardware overhead in comparison with the memory
//  capacity is of an order < 2^-20."
//
// The model counts transistors for every BIST block the schemes need —
// address-register-to-counter conversion, the window registers, the
// constant-multiplier XOR networks (from gf/const_mult synthesis), the
// word adders, the Fin comparator and a small control FSM — and relates
// them to the transistor count of the cell array.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/const_mult.hpp"
#include "gf/gf2m.hpp"

namespace prt::core {

/// Transistor-cost constants (conservative static-CMOS counts).
struct CostModel {
  unsigned transistors_per_cell = 6;   // 6T SRAM bit cell
  unsigned transistors_per_xor2 = 6;
  unsigned transistors_per_and2 = 6;
  unsigned transistors_per_or2 = 6;
  unsigned transistors_per_dff = 24;
  unsigned control_fsm_transistors = 240;  // small fixed sequencer
};

/// Breakdown of the BIST overhead for a given PRT configuration.
struct OverheadReport {
  std::uint64_t counter_transistors = 0;    // address reg -> counter
  std::uint64_t window_transistors = 0;     // k m-bit window registers
  std::uint64_t feedback_transistors = 0;   // multipliers + adders
  std::uint64_t comparator_transistors = 0; // Fin vs Fin*
  std::uint64_t control_transistors = 0;
  std::uint64_t memory_transistors = 0;     // n * m cell bits

  [[nodiscard]] std::uint64_t bist_total() const {
    return counter_transistors + window_transistors +
           feedback_transistors + comparator_transistors +
           control_transistors;
  }
  /// The paper's "ponder": overhead / capacity.
  [[nodiscard]] double ratio() const {
    return static_cast<double>(bist_total()) /
           static_cast<double>(memory_transistors);
  }
};

/// Computes the overhead for a PRT engine over GF(2^m) with generator
/// coefficients g (g0..gk) on an n-cell, m-bit, `ports`-port memory.
/// Multi-port schemes convert one address register per port.
[[nodiscard]] OverheadReport estimate_overhead(
    const gf::GF2m& field, const std::vector<gf::Elem>& g, std::uint64_t n,
    unsigned ports = 1, const CostModel& cost = {});

}  // namespace prt::core
