// Tests for the analytic Markov detection model (analysis/markov).
#include "analysis/markov.hpp"

#include <gtest/gtest.h>

namespace prt::analysis {
namespace {

TEST(Markov, ProbabilitiesAreProbabilities) {
  MarkovParams p;
  for (auto cls : {mem::FaultClass::kSaf, mem::FaultClass::kTf,
                   mem::FaultClass::kWdf, mem::FaultClass::kReadLogic,
                   mem::FaultClass::kCfIn, mem::FaultClass::kCfId,
                   mem::FaultClass::kCfSt, mem::FaultClass::kBridge,
                   mem::FaultClass::kAf, mem::FaultClass::kNpsf}) {
    const double pi = per_iteration_detection(cls, p);
    EXPECT_GE(pi, 0.0) << to_string(cls);
    EXPECT_LE(pi, 1.0) << to_string(cls);
  }
}

TEST(Markov, KnownValues) {
  MarkovParams p;
  p.n = 128;
  p.m = 1;
  EXPECT_DOUBLE_EQ(per_iteration_detection(mem::FaultClass::kSaf, p), 0.5);
  EXPECT_DOUBLE_EQ(per_iteration_detection(mem::FaultClass::kTf, p), 0.25);
  EXPECT_DOUBLE_EQ(per_iteration_detection(mem::FaultClass::kCfIn, p),
                   0.5 / 128);
  EXPECT_DOUBLE_EQ(per_iteration_detection(mem::FaultClass::kAf, p),
                   2.0 / 128);
}

TEST(Markov, CumulativeGrowsWithIterations) {
  MarkovParams p;
  for (auto cls : {mem::FaultClass::kSaf, mem::FaultClass::kTf,
                   mem::FaultClass::kCfSt}) {
    double prev = 0.0;
    for (unsigned i = 1; i <= 5; ++i) {
      const double c = cumulative_detection(cls, p, i);
      EXPECT_GT(c, prev) << to_string(cls) << " i=" << i;
      prev = c;
    }
  }
}

TEST(Markov, CumulativeFormulaMatchesClosedForm) {
  MarkovParams p;
  const double pi = per_iteration_detection(mem::FaultClass::kTf, p);
  EXPECT_DOUBLE_EQ(cumulative_detection(mem::FaultClass::kTf, p, 3),
                   1.0 - (1.0 - pi) * (1.0 - pi) * (1.0 - pi));
}

TEST(Markov, ReadLogicNearCertain) {
  MarkovParams p;
  EXPECT_GT(per_iteration_detection(mem::FaultClass::kReadLogic, p), 0.9);
}

TEST(Markov, CouplingRatesScaleWithArraySize) {
  MarkovParams small;
  small.n = 32;
  MarkovParams large;
  large.n = 1024;
  EXPECT_GT(per_iteration_detection(mem::FaultClass::kCfIn, small),
            per_iteration_detection(mem::FaultClass::kCfIn, large));
}

TEST(Markov, AfWindowRateShrinksWithArraySize) {
  MarkovParams small;
  small.n = 32;
  MarkovParams large;
  large.n = 1024;
  EXPECT_GT(per_iteration_detection(mem::FaultClass::kAf, small),
            per_iteration_detection(mem::FaultClass::kAf, large));
}

TEST(Markov, ThreeIterationsPushStaticFaultsAbove85Percent) {
  // The §3 "high resolution" statement: the big single-cell classes
  // are nearly certain after 3 iterations even under the pessimistic
  // random-TDB model.
  MarkovParams p;
  EXPECT_GT(cumulative_detection(mem::FaultClass::kSaf, p, 3), 0.85);
  EXPECT_GT(cumulative_detection(mem::FaultClass::kWdf, p, 3), 0.85);
  EXPECT_GT(cumulative_detection(mem::FaultClass::kReadLogic, p, 3), 0.99);
}

}  // namespace
}  // namespace prt::analysis
