#include "analysis/fault_sim.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace prt::analysis {

void validate_campaign_options(const CampaignOptions& opt) {
  // Every message names the offending value — a service log line must
  // identify the bad request without a debugger.
  if (opt.n < 1) {
    throw std::invalid_argument("CampaignOptions: n must be >= 1 (got " +
                                std::to_string(opt.n) + ")");
  }
  if (opt.m < 1 || opt.m > 32) {
    throw std::invalid_argument("CampaignOptions: m must be in [1, 32] (got " +
                                std::to_string(opt.m) + ")");
  }
  if (opt.ports != 1 && opt.ports != 2 && opt.ports != 4) {
    throw std::invalid_argument(
        "CampaignOptions: ports must be 1, 2 or 4 (got " +
        std::to_string(opt.ports) + ")");
  }
}

CampaignResult merge_results(std::span<const CampaignResult> shards) {
  CampaignResult merged;
  for (const CampaignResult& shard : shards) {
    for (const auto& [cls, cov] : shard.by_class) {
      auto& acc = merged.by_class[cls];
      acc.detected += cov.detected;
      acc.total += cov.total;
    }
    merged.overall.detected += shard.overall.detected;
    merged.overall.total += shard.overall.total;
    merged.ops += shard.ops;
    merged.packed_faults += shard.packed_faults;
    merged.scalar_faults += shard.scalar_faults;
    merged.sched.batches += shard.sched.batches;
    merged.sched.steals += shard.sched.steals;
    merged.sched.wide_faults += shard.sched.wide_faults;
    merged.sched.max_lanes = std::max(merged.sched.max_lanes,
                                      shard.sched.max_lanes);
    merged.escapes.insert(merged.escapes.end(), shard.escapes.begin(),
                          shard.escapes.end());
  }
  return merged;
}

CampaignResult run_campaign(std::span<const mem::Fault> universe,
                            const TestAlgorithm& test,
                            const CampaignOptions& opt) {
  validate_campaign_options(opt);
  CampaignResult result;
  // One RAM for the whole campaign, rewound per fault: reset() restores
  // the exact just-constructed all-zero state without reallocating the
  // array.
  mem::FaultyRam ram(opt.n, opt.m, opt.ports);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    ram.reset(universe[i]);
    const bool detected = test(ram);
    result.ops += ram.total_stats().total();
    ++result.scalar_faults;
    auto& cls = result.by_class[mem::fault_class(universe[i].kind)];
    ++cls.total;
    ++result.overall.total;
    if (detected) {
      ++cls.detected;
      ++result.overall.detected;
    } else {
      result.escapes.push_back(i);
    }
  }
  return result;
}

TestAlgorithm march_algorithm(march::MarchTest test) {
  return [test = std::move(test)](mem::Memory& memory) {
    const auto bgs = march::standard_backgrounds(memory.width());
    return march::run_march_backgrounds(test, memory, bgs).fail;
  };
}

TestAlgorithm prt_algorithm(core::PrtScheme scheme) {
  // The oracle depends only on (scheme, n), so it is derived lazily on
  // the first memory of each size and reused for every subsequent run —
  // each copy of the returned std::function carries its own cache, so
  // copies stay independent (and a single copy is not thread-safe,
  // matching run_campaign's serial contract).
  return [scheme = std::move(scheme),
          oracles = std::map<mem::Addr, core::PrtOracle>{}](
             mem::Memory& memory) mutable {
    auto [it, inserted] = oracles.try_emplace(memory.size());
    if (inserted) it->second = core::make_prt_oracle(scheme, memory.size());
    const core::PrtRunOptions opts{.early_abort = false,
                                   .record_iterations = false};
    return core::run_prt(memory, scheme, it->second, opts).detected();
  };
}

TestAlgorithm prt_algorithm_prefix(core::PrtScheme scheme,
                                   std::size_t iterations) {
  if (iterations < 1 || iterations > scheme.iterations.size()) {
    throw std::invalid_argument(
        "prt_algorithm_prefix: iterations must be in [1, " +
        std::to_string(scheme.iterations.size()) + "], got " +
        std::to_string(iterations));
  }
  scheme.iterations.resize(iterations);
  return prt_algorithm(std::move(scheme));
}

}  // namespace prt::analysis
