// Reproduces the §3/§4 time-complexity claims: a pi-test iteration is
// O(3n) on a single-port memory and 2n cycles on a two-port memory;
// March baselines run 4n..22n.  Operation counts are *measured* from
// the memory's access counters, not computed from formulas.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/prt_engine.hpp"
#include "core/prt_multiport.hpp"
#include "march/march_library.hpp"
#include "march/march_runner.hpp"
#include "mem/sram.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;

void print_ops_table() {
  std::printf("== measured operations per algorithm (BOM) ==\n");
  Table t({"algorithm", "formula", "n=1024", "n=4096", "n=16384",
           "ops per cell"});
  t.set_align(0, Align::kLeft);
  t.set_align(1, Align::kLeft);

  auto add_march = [&](const march::MarchTest& test) {
    std::vector<std::string> row{test.name,
                                 std::to_string(test.ops_per_cell()) + "n"};
    for (mem::Addr n : {1024u, 4096u, 16384u}) {
      mem::SimRam ram(n, 1);
      (void)march::run_march(test, ram);
      row.push_back(std::to_string(ram.total_stats().total()));
    }
    row.push_back(std::to_string(test.ops_per_cell()));
    t.add_row(std::move(row));
  };

  auto add_prt = [&](const char* name, unsigned iters) {
    std::vector<std::string> row{name, std::to_string(3 * iters) + "n"};
    for (mem::Addr n : {1024u, 4096u, 16384u}) {
      mem::SimRam ram(n, 1);
      core::PrtScheme s = core::standard_scheme_bom(n);
      s.iterations.resize(iters);
      (void)core::run_prt(ram, s);
      row.push_back(std::to_string(ram.total_stats().total()));
    }
    row.push_back(std::to_string(3 * iters));
    t.add_row(std::move(row));
  };

  add_prt("PRT pi-iteration", 1);
  add_prt("PRT-3", 3);
  add_march(march::mats());
  add_march(march::mats_plus());
  add_march(march::mats_pp());
  add_march(march::march_x());
  add_march(march::march_y());
  add_march(march::march_c_minus());
  add_march(march::march_sr());
  add_march(march::march_lr());
  add_march(march::march_a());
  add_march(march::march_b());
  add_march(march::march_ss());
  std::printf("%s\n", t.str().c_str());
}

void print_cycles_table() {
  std::printf("== pi-iteration scheduling cycles by port count ==\n");
  Table t({"ports", "scheme", "cycles(n=4096)", "cycles/n"});
  t.set_align(1, Align::kLeft);
  const mem::Addr n = 4096;
  const core::PiTester tester(gf::GF2m(0b11), {1, 1, 1});
  core::PiConfig cfg;
  cfg.init = {1, 1};

  mem::SimRam r1(n, 1, 1);
  const auto single = tester.run(r1, cfg);
  t.add(1, "serial r,r,w (§3: O(3n))", single.cycles(),
        format_fixed(static_cast<double>(single.cycles()) / n, 3));

  mem::SimRam r2(n, 1, 2);
  const auto dual = core::run_pi_dualport(r2, tester, cfg);
  t.add(2, "Fig. 2 parallel reads (§4: 2n)", dual.cycles,
        format_fixed(static_cast<double>(dual.cycles) / n, 3));

  mem::SimRam r4(n, 1, 4);
  const auto quad = core::run_pi_quadport(r4, tester, cfg);
  t.add(4, "single-LFSR fused r,r,w", quad.cycles,
        format_fixed(static_cast<double>(quad.cycles) / n, 3));

  mem::SimRam r4b(n, 1, 4);
  const auto multi = core::run_pi_multilfsr(r4b, tester, cfg);
  t.add(4, "dual-LFSR halves", multi.cycles,
        format_fixed(static_cast<double>(multi.cycles) / n, 3));

  std::printf("%s\n", t.str().c_str());
}

void BM_MarchCMinus(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 1);
  const march::MarchTest test = march::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(march::run_march(test, ram));
  }
  state.SetItemsProcessed(state.iterations() * test.total_ops(n));
}
BENCHMARK(BM_MarchCMinus)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Prt3(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 1);
  const core::PrtScheme scheme = core::standard_scheme_bom(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_prt(ram, scheme));
  }
  state.SetItemsProcessed(state.iterations() * core::prt_ops(n, 2, 3));
}
BENCHMARK(BM_Prt3)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

int main(int argc, char** argv) {
  print_ops_table();
  print_cycles_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
