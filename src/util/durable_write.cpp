#include "util/durable_write.hpp"

#include <cstdio>
#include <stdexcept>

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace prt::util {

#if defined(_WIN32)

// Portability fallback: plain buffered write + rename.  No directory
// fsync exists on this platform; the linux CI lanes run the durable
// path below.
void durable_replace_file(const std::string& path,
                          const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    out << contents;
    out.flush();
    if (!out) throw std::runtime_error("durable write failed: " + tmp);
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("durable rename failed: " + path);
  }
}

#else

namespace {

[[noreturn]] void throw_errno(const char* step, const std::string& path) {
  throw std::runtime_error(std::string("durable write: ") + step +
                           " failed for " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

void durable_replace_file(const std::string& path,
                          const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  std::size_t off = 0;
  while (off < contents.size()) {
    const ::ssize_t w =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write", tmp);
    }
    off += static_cast<std::size_t>(w);
  }
  // fsync BEFORE rename: once the new name is visible it must point at
  // fully-persisted data, or a crash after the rename loses both the
  // old and the new checkpoint.
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync", tmp);
  }
  if (::close(fd) != 0) throw_errno("close", tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename", path);
  }
  // fsync the directory so the rename (the namespace change) is itself
  // durable — without it a crash can resurrect the old file name.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? std::string("/")
                                            : path.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) throw_errno("open directory", dir);
  if (::fsync(dfd) != 0) {
    ::close(dfd);
    throw_errno("fsync directory", dir);
  }
  if (::close(dfd) != 0) throw_errno("close directory", dir);
}

#endif

}  // namespace prt::util
