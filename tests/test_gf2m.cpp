// Unit and property tests for the GF(2^m) field (gf/gf2m).
#include "gf/gf2m.hpp"

#include <gtest/gtest.h>

namespace prt::gf {
namespace {

TEST(GF2mBasic, Gf2ViaZPlusOne) {
  const GF2m f(0b11);
  EXPECT_EQ(f.m(), 1u);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.mul(1, 1), 1u);
  EXPECT_EQ(f.mul(1, 0), 0u);
  EXPECT_EQ(f.add(1, 1), 0u);
  EXPECT_EQ(f.inv(1), 1u);
}

TEST(GF2mBasic, PaperFieldGf16) {
  // p(z) = 1 + z + z^4, the paper's Fig. 1b field.
  const GF2m f(0b10011);
  EXPECT_EQ(f.m(), 4u);
  EXPECT_EQ(f.size(), 16u);
  EXPECT_EQ(f.group_order(), 15u);
  EXPECT_TRUE(f.z_is_primitive());
}

TEST(GF2mBasic, KnownProductsInGf16) {
  const GF2m f(0b10011);
  // z * z = z^2; z^3 * z = z^4 = z + 1 (reduction).
  EXPECT_EQ(f.mul(2, 2), 4u);
  EXPECT_EQ(f.mul(8, 2), 3u);
  // (z+1)(z^3+1) = z^4+z^3+z+1 = (z+1) + z^3 + z + 1 = z^3.
  EXPECT_EQ(f.mul(3, 9), 8u);
}

TEST(GF2mBasic, AesFieldSpotChecks) {
  // GF(2^8) with the AES modulus; 0x57 * 0x83 = 0xc1 (FIPS-197 example).
  const GF2m f(0x11b);
  EXPECT_EQ(f.mul(0x57, 0x83), 0xc1u);
  EXPECT_EQ(f.mul(0x57, 0x13), 0xfeu);
}

TEST(GF2mBasic, StandardFieldIsPrimitive) {
  for (unsigned m = 1; m <= 12; ++m) {
    EXPECT_TRUE(GF2m::standard(m).z_is_primitive()) << "m=" << m;
  }
}

TEST(GF2mBasic, NonPrimitiveModulusStillAField) {
  // z^4+z^3+z^2+z+1 is irreducible but z has order 5.
  const GF2m f(0b11111);
  EXPECT_FALSE(f.z_is_primitive());
  EXPECT_EQ(f.order(2), 5u);
  // Field operations still behave: spot-check an inverse.
  for (Elem a = 1; a < 16; ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "a=" << +a;
  }
}

TEST(GF2mBasic, ToHex) {
  const GF2m f(0b10011);
  EXPECT_EQ(f.to_hex(0), "0");
  EXPECT_EQ(f.to_hex(6), "6");
  EXPECT_EQ(f.to_hex(15), "F");
}

TEST(GF2mLog, LogExpRoundTrip) {
  const GF2m f(0b10011);
  for (Elem a = 1; a < 16; ++a) {
    EXPECT_EQ(f.exp(f.log(a)), a);
  }
}

TEST(GF2mLog, LogOfProductIsSumOfLogs) {
  const GF2m f(0b10011);
  for (Elem a = 1; a < 16; ++a) {
    for (Elem b = 1; b < 16; ++b) {
      EXPECT_EQ(f.log(f.mul(a, b)),
                (f.log(a) + f.log(b)) % f.group_order());
    }
  }
}

TEST(GF2mOrder, OrderDividesGroupOrder) {
  const GF2m f(0b10011);
  for (Elem a = 1; a < 16; ++a) {
    EXPECT_EQ(f.group_order() % f.order(a), 0u);
    EXPECT_EQ(f.pow(a, f.order(a)), 1u);
  }
}

TEST(GF2mPow, SquareAndMultiplyAgreesWithRepeated) {
  const GF2m f(0b1011);  // GF(8)
  for (Elem a = 0; a < 8; ++a) {
    Elem acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(f.pow(a, e), acc) << "a=" << +a << " e=" << e;
      acc = f.mul(acc, a);
    }
  }
}

TEST(GF2mPow, FermatLittleTheorem) {
  const GF2m f(0b10011);
  for (Elem a = 1; a < 16; ++a) {
    EXPECT_EQ(f.pow(a, 15), 1u);
    EXPECT_EQ(f.pow(a, 16), a);  // a^(q-1) * a
  }
}

// Field-axiom property sweep, parameterized over the degree.
class FieldAxioms : public ::testing::TestWithParam<unsigned> {
 protected:
  GF2m field() const { return GF2m::standard(GetParam()); }
};

TEST_P(FieldAxioms, MultiplicationAssociative) {
  const GF2m f = field();
  const Elem q = static_cast<Elem>(f.size());
  for (Elem a = 0; a < q; ++a) {
    for (Elem b = 0; b < q; ++b) {
      for (Elem c = 0; c < q; c += 3) {
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, MultiplicationCommutative) {
  const GF2m f = field();
  const Elem q = static_cast<Elem>(f.size());
  for (Elem a = 0; a < q; ++a) {
    for (Elem b = a; b < q; ++b) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    }
  }
}

TEST_P(FieldAxioms, DistributesOverAddition) {
  const GF2m f = field();
  const Elem q = static_cast<Elem>(f.size());
  for (Elem a = 0; a < q; ++a) {
    for (Elem b = 0; b < q; ++b) {
      for (Elem c = 0; c < q; c += 3) {
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, EveryNonZeroElementInvertible) {
  const GF2m f = field();
  for (Elem a = 1; a < f.size(); ++a) {
    const Elem ia = f.inv(a);
    EXPECT_NE(ia, 0u);
    EXPECT_EQ(f.mul(a, ia), 1u);
    EXPECT_EQ(f.div(f.mul(a, 7 % f.size() ? 7 % f.size() : 1), a),
              7 % f.size() ? 7 % f.size() : 1);
  }
}

TEST_P(FieldAxioms, NoZeroDivisors) {
  const GF2m f = field();
  for (Elem a = 1; a < f.size(); ++a) {
    for (Elem b = 1; b < f.size(); ++b) {
      EXPECT_NE(f.mul(a, b), 0u);
    }
  }
}

TEST_P(FieldAxioms, MultiplicationMatchesPolynomialDefinition) {
  // Log-table path must agree with direct carry-less mul + reduction.
  const GF2m f = field();
  for (Elem a = 0; a < f.size(); ++a) {
    for (Elem b = 0; b < f.size(); ++b) {
      EXPECT_EQ(f.mul(a, b),
                static_cast<Elem>(mulmod(a, b, f.modulus())));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, FieldAxioms,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u));

}  // namespace
}  // namespace prt::gf
