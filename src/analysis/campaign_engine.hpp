// Oracle-backed, thread-parallel fault-simulation campaign engine.
//
// run_campaign (fault_sim.hpp) evaluates an arbitrary TestAlgorithm
// serially; this engine is the fast path for the common case where the
// algorithm is a PRT scheme.  It exploits the fact that everything a
// scheme derives from its own structure — trajectory permutations,
// golden LFSR sequences, expected images, expected Fin states, golden
// MISR signatures — is independent of the injected fault:
//
//  * the whole derivation is done once per (scheme, n) as a PrtOracle
//    and shared read-only by every fault and every worker;
//  * the fault universe is sharded over a hardware-concurrency-sized
//    worker pool (util/thread_pool.hpp) in contiguous index ranges,
//    and the per-shard partial results are merged in shard order, so
//    the output is bit-identical to the serial reference;
//  * each worker owns exactly one FaultyRam and rewinds it with the
//    reset(fault) fast path instead of constructing and prefilling a
//    fresh memory per fault, so the per-fault loop performs no
//    allocation and no LFSR re-derivation;
//  * for GF(2) bit-oriented campaigns, the golden run is additionally
//    compiled once into a flat core::OpTranscript (cached next to the
//    oracle) and every hot loop is a tight replay over it: the scalar
//    fallback runs core::run_prt_transcript (devirtualized FaultyRam,
//    no oracle indirection), and lane-compatible faults (single-cell
//    kinds, the two-cell CFin/CFid/CFst/bridge kinds and the decoder
//    kinds) are batched 64 per sweep onto a bit-packed
//    mem::PackedFaultRam via the transcript run_prt_packed
//    (core/prt_packed), so one memory sweep evaluates up to 64 faults
//    — the remaining (retention, NPSF) faults take the scalar path
//    and the merged result stays bit-identical.  Early abort composes
//    with the packed path via per-lane mismatch retirement.
//
// See DESIGN.md §7/§8/§9 for the architecture and
// bench/bench_campaign.cpp for the measured speedups.
#pragma once

#include <memory>
#include <span>

#include "analysis/fault_sim.hpp"
#include "core/op_transcript.hpp"
#include "core/prt_engine.hpp"

namespace prt::util {
class ThreadPool;
}

namespace prt::analysis {

struct EngineOptions {
  /// Worker count; 0 defers to the PRT_THREADS environment override,
  /// then the hardware concurrency (util::default_worker_count).
  unsigned threads = 0;
  /// Fan the universe out over the pool.  Off = one shard, inline on
  /// the calling thread (still oracle-backed and allocation-free).
  bool parallel = true;
  /// Reuse the precomputed PrtOracle per fault.  Turning this off
  /// re-derives the scheme per fault like the legacy path — only
  /// useful as a bench baseline.
  bool use_oracle = true;
  /// Stop each fault's run at the first failing iteration.  Verdicts
  /// (and therefore coverage numbers and escapes) are unchanged;
  /// CampaignResult::ops shrinks.  Composes with `packed`: packed
  /// batches retire lanes as their mismatch latches and stop when the
  /// detected mask saturates, with op accounting still bit-identical
  /// to the scalar early-abort path (core/prt_packed).  Keep off when
  /// the campaign's read/write counts must reflect complete runs.
  bool early_abort = false;
  /// Evaluate lane-compatible faults (single-bit SAF/TF/WDF, the
  /// read-logic kinds, the two-cell CFin/CFid/CFst/bridge kinds on
  /// bit plane 0, and the decoder kinds) 64 per sweep on a bit-packed
  /// mem::PackedFaultRam (core/prt_packed) when the scheme is a
  /// GF(2)/m = 1 scheme.  NPSF and retention faults fall back to the
  /// scalar per-fault path, and results stay bit-identical to the
  /// all-scalar reference.  Ignored (everything scalar) when the
  /// scheme is not packable or use_oracle is off.
  bool packed = true;
};

class CampaignEngine {
 public:
  /// Builds the per-scheme oracle once.  Precondition: opt.n exceeds
  /// the scheme's register length k; opt.m equals the scheme field's m.
  CampaignEngine(core::PrtScheme scheme, const CampaignOptions& opt,
                 const EngineOptions& engine = {});
  ~CampaignEngine();
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  [[nodiscard]] const core::PrtScheme& scheme() const { return scheme_; }
  [[nodiscard]] const core::PrtOracle& oracle() const { return oracle_; }

  /// Simulates every fault of the universe.  Identical CampaignResult
  /// to run_campaign(universe, prt_algorithm(scheme), opt) regardless
  /// of thread count.  Not safe to call concurrently on one engine
  /// (workers share the engine's pool); distinct engines are
  /// independent.
  [[nodiscard]] CampaignResult run(std::span<const mem::Fault> universe) const;

 private:
  void run_shard(std::span<const mem::Fault> universe, std::size_t begin,
                 std::size_t end, CampaignResult& out) const;

  /// True when this engine's runs may route lane-compatible faults
  /// through the packed path (scheme + options both allow it).
  [[nodiscard]] bool packed_enabled() const;

  core::PrtScheme scheme_;
  CampaignOptions opt_;
  EngineOptions engine_;
  core::PrtOracle oracle_;
  bool scheme_packable_ = false;
  /// Compiled golden op stream (core/op_transcript.hpp), built once
  /// per (scheme, n) next to the oracle when the scheme is a GF(2)
  /// bit scheme; empty otherwise.  Both the packed batches and the
  /// scalar fallback replay it.
  core::OpTranscript transcript_;
  /// Worker pool, spun up on the first parallel run() and reused —
  /// repeated campaigns (benches, multi-universe sweeps) pay thread
  /// spawn/join once, not per call.
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

/// Folds shard results produced over contiguous ascending fault-index
/// ranges back into one CampaignResult, in shard order — the merge that
/// makes the parallel path bit-identical to the serial one.
[[nodiscard]] CampaignResult merge_results(
    std::span<const CampaignResult> shards);

/// Convenience: one-shot engine run with default engine options.
[[nodiscard]] CampaignResult run_prt_campaign(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const CampaignOptions& opt, const EngineOptions& engine = {});

}  // namespace prt::analysis
