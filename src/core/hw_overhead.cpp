#include "core/hw_overhead.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace prt::core {

OverheadReport estimate_overhead(const gf::GF2m& field,
                                 const std::vector<gf::Elem>& g,
                                 std::uint64_t n, unsigned ports,
                                 const CostModel& cost) {
  assert(g.size() >= 2 && n > g.size() - 1);
  const unsigned m = field.m();
  const unsigned k = static_cast<unsigned>(g.size() - 1);
  const unsigned addr_bits = ceil_log2(n);

  OverheadReport report;

  // Address register -> binary counter: one half-adder (XOR + AND) per
  // address bit, per converted port register.
  report.counter_transistors =
      static_cast<std::uint64_t>(ports) * addr_bits *
      (cost.transistors_per_xor2 + cost.transistors_per_and2);

  // k window registers of m bits hold the read operands between the
  // read and write phases of a sub-iteration.
  report.window_transistors =
      static_cast<std::uint64_t>(k) * m * cost.transistors_per_dff;

  // Feedback network: CSE-optimized constant multipliers + word adders.
  const gf::FeedbackCost fb = gf::feedback_cost(field, g);
  report.feedback_transistors =
      static_cast<std::uint64_t>(fb.total()) * cost.transistors_per_xor2;

  // Fin comparator: m*k XORs into an OR-reduction tree, plus the m*k
  // flip-flops holding the expected Fin* (loaded by the controller).
  const std::uint64_t fin_bits = std::uint64_t{m} * k;
  report.comparator_transistors =
      fin_bits * cost.transistors_per_xor2 +
      (fin_bits - 1) * cost.transistors_per_or2 +
      fin_bits * cost.transistors_per_dff;

  report.control_transistors = cost.control_fsm_transistors;

  report.memory_transistors =
      n * static_cast<std::uint64_t>(m) * cost.transistors_per_cell;
  return report;
}

}  // namespace prt::core
