// Cross-module property tests.
//
// The two load-bearing properties of any BIST scheme:
//  1. *No false positives* — on a fault-free memory, every scheme in
//     every configuration must pass (a self-test that cries wolf is
//     unusable silicon);
//  2. *Linearity of error propagation* — the pi-test is GF-linear, so
//     the Fin corruption of a write error is the XOR of the
//     corruptions of its bit components (the property underlying the
//     Markov model's "activation == detection" step).
#include <gtest/gtest.h>

#include "core/bist_controller.hpp"
#include "core/intra_word.hpp"
#include "core/prt_engine.hpp"
#include "core/prt_multiport.hpp"
#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"
#include "util/rng.hpp"

namespace prt {
namespace {

// --- property 1: no false positives --------------------------------

struct Geometry {
  mem::Addr n;
  unsigned m;
};

class NoFalsePositives : public ::testing::TestWithParam<Geometry> {};

TEST_P(NoFalsePositives, StandardScheme) {
  const auto [n, m] = GetParam();
  mem::SimRam ram(n, m);
  const core::PrtScheme scheme = m == 1 ? core::standard_scheme_bom(n)
                                        : core::standard_scheme_wom(n, m);
  EXPECT_FALSE(core::run_prt(ram, scheme).detected());
}

TEST_P(NoFalsePositives, ExtendedScheme) {
  const auto [n, m] = GetParam();
  mem::SimRam ram(n, m);
  const core::PrtScheme scheme = m == 1 ? core::extended_scheme_bom(n)
                                        : core::extended_scheme_wom(n, m);
  EXPECT_FALSE(core::run_prt(ram, scheme).detected());
}

TEST_P(NoFalsePositives, RandomizedIterations) {
  const auto [n, m] = GetParam();
  const gf::GF2m field = m == 1 ? gf::GF2m(0b11) : gf::GF2m::standard(m);
  Xoshiro256 rng(n * 31 + m);
  for (int trial = 0; trial < 25; ++trial) {
    mem::SimRam ram(n, m);
    core::PrtScheme s;
    s.field_modulus = field.modulus();
    core::SchemeIteration it;
    // Random generator: checkerboard or a random invertible pair.
    if (rng.chance(1, 2)) {
      it.g = {1, 0, 1};
    } else {
      it.g = {1, static_cast<gf::Elem>(rng.below(field.size())),
              static_cast<gf::Elem>(1 + rng.below(field.size() - 1))};
    }
    it.config.init = {static_cast<gf::Elem>(rng.below(field.size())),
                      static_cast<gf::Elem>(rng.below(field.size()))};
    it.config.trajectory = static_cast<core::TrajectoryKind>(rng.below(3));
    it.config.seed = rng();
    it.config.verify_pass = rng.chance(1, 2);
    s.iterations = {it};
    if (rng.chance(1, 4)) s.misr_poly = 0b1000011;
    EXPECT_FALSE(core::run_prt(ram, s).detected())
        << "n=" << n << " m=" << m << " trial=" << trial;
  }
}

TEST_P(NoFalsePositives, MultiPortSchemes) {
  const auto [n, m] = GetParam();
  const gf::GF2m field = m == 1 ? gf::GF2m(0b11) : gf::GF2m::standard(m);
  const auto g = m == 4 && field.modulus() == 0b10011
                     ? std::vector<gf::Elem>{1, 2, 2}
                     : std::vector<gf::Elem>{1, 1, 1};
  const core::PiTester tester(field, g);
  core::PiConfig cfg;
  cfg.init = {0, 1};
  mem::SimRam r2(n, m, 2);
  EXPECT_TRUE(core::run_pi_dualport(r2, tester, cfg).pass);
  mem::SimRam r4(n, m, 4);
  EXPECT_TRUE(core::run_pi_quadport(r4, tester, cfg).pass);
  if (n / 2 > 2) {
    mem::SimRam r4b(n, m, 4);
    EXPECT_TRUE(core::run_pi_multilfsr(r4b, tester, cfg).pass);
  }
}

TEST_P(NoFalsePositives, BistControllerAllTrajectories) {
  const auto [n, m] = GetParam();
  const gf::GF2m field = m == 1 ? gf::GF2m(0b11) : gf::GF2m::standard(m);
  for (auto traj :
       {core::TrajectoryKind::kAscending, core::TrajectoryKind::kDescending,
        core::TrajectoryKind::kRandom}) {
    mem::SimRam ram(n, m);
    core::BistController ctrl(field, {1, 1, 1}, {1, 1},
                              core::Trajectory::make(traj, n, 99));
    EXPECT_TRUE(ctrl.run(ram)) << core::to_string(traj);
  }
}

TEST_P(NoFalsePositives, IntraWordModes) {
  const auto [n, m] = GetParam();
  if (m < 2) GTEST_SKIP() << "intra-word testing needs m >= 2";
  for (auto mode : {core::IntraWordMode::kParallelTrajectories,
                    core::IntraWordMode::kRandomTrajectories}) {
    mem::SimRam ram(n, m);
    core::IntraWordConfig cfg;
    cfg.mode = mode;
    cfg.seed = 3;
    EXPECT_TRUE(core::run_intra_word(ram, cfg).pass);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, NoFalsePositives,
    ::testing::Values(Geometry{16, 1}, Geometry{17, 1}, Geometry{64, 1},
                      Geometry{255, 1}, Geometry{16, 4}, Geometry{63, 4},
                      Geometry{32, 8}, Geometry{24, 16}),
    [](const ::testing::TestParamInfo<Geometry>& geometry) {
      std::string name = "n";
      name += std::to_string(geometry.param.n);
      name += 'm';
      name += std::to_string(geometry.param.m);
      return name;
    });

// --- property 2: linear error propagation ----------------------------

/// Runs a pi-iteration during which the cell at `victim` is forcibly
/// XORed with `delta` right after its sweep write, and returns the
/// packed Fin error relative to the clean run.
std::uint64_t fin_error_for_delta(mem::Addr victim, gf::Elem delta) {
  const gf::GF2m field(0b10011);
  const core::PiTester tester(field, {1, 2, 2});
  core::PiConfig cfg;
  cfg.init = {0, 1};
  const mem::Addr n = 64;

  mem::SimRam clean(n, 4);
  const core::PiResult base = tester.run(clean, cfg);

  // Manual sweep replication with the injected delta (simulating a
  // one-shot disturbance between the victim's write and its reads).
  mem::SimRam ram(n, 4);
  core::Trajectory traj =
      core::Trajectory::make(core::TrajectoryKind::kAscending, n);
  ram.write(0, cfg.init[0], 0);
  ram.write(1, cfg.init[1], 0);
  if (victim <= 1) ram.poke(victim, ram.peek(victim) ^ delta);
  std::vector<gf::Elem> window(2);
  for (mem::Addr q = 0; q + 2 < n; ++q) {
    window[0] = static_cast<gf::Elem>(ram.read(q, 0));
    window[1] = static_cast<gf::Elem>(ram.read(q + 1, 0));
    const gf::Elem fb = tester.feedback_of(window);
    ram.write(q + 2, fb, 0);
    if (q + 2 == victim) ram.poke(victim, ram.peek(victim) ^ delta);
  }
  const std::uint64_t fin =
      ram.peek(n - 2) | (static_cast<std::uint64_t>(ram.peek(n - 1)) << 4);
  const std::uint64_t fin_base =
      base.fin[0] | (static_cast<std::uint64_t>(base.fin[1]) << 4);
  return fin ^ fin_base;
}

TEST(LinearPropagation, FinErrorIsLinearInTheInjectedDelta) {
  for (mem::Addr victim : {2u, 17u, 40u, 61u}) {
    for (gf::Elem d1 : {1u, 2u, 9u}) {
      for (gf::Elem d2 : {4u, 5u}) {
        const auto e1 = fin_error_for_delta(victim, d1);
        const auto e2 = fin_error_for_delta(victim, d2);
        const auto e12 =
            fin_error_for_delta(victim, static_cast<gf::Elem>(d1 ^ d2));
        EXPECT_EQ(e12, e1 ^ e2)
            << "victim " << victim << " d1 " << d1 << " d2 " << d2;
      }
    }
  }
}

TEST(LinearPropagation, SingleDeltaNeverAliases) {
  // A non-zero disturbance anywhere always corrupts Fin: the error
  // state evolves through a non-singular LFSR and cannot return to
  // zero — the "activation == detection" step of the Markov model.
  for (mem::Addr victim = 2; victim + 2 < 64; victim += 3) {
    for (gf::Elem delta = 1; delta < 16; delta += 5) {
      EXPECT_NE(fin_error_for_delta(victim, delta), 0u)
          << "victim " << victim << " delta " << delta;
    }
  }
}

}  // namespace
}  // namespace prt
