#include "core/op_transcript.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "core/prt_packed.hpp"
#include "gf/const_mult.hpp"
#include "lfsr/lfsr.hpp"

namespace prt::core {

OpTranscript make_op_transcript(const PrtScheme& scheme,
                                const PrtOracle& oracle) {
  assert(prt_scheme_packable(scheme));
  assert(oracle.iterations.size() == scheme.iterations.size());
  const mem::Addr n = oracle.n;
  const gf::GF2m field(scheme.field_modulus);

  OpTranscript t;
  t.n = n;
  t.misr_poly = scheme.misr_poly;
  t.width = field.m();
  std::size_t rec_count = 0;
  for (const SchemeIteration& it : scheme.iterations) {
    rec_count += n + (it.config.verify_pass ? n : 0);
  }
  t.recs.resize(rec_count);
  t.iterations.reserve(scheme.iterations.size());

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < scheme.iterations.size(); ++i) {
    const SchemeIteration& it = scheme.iterations[i];
    const PiOracle& orc = oracle.iterations[i];
    const unsigned kk = static_cast<unsigned>(it.g.size() - 1);
    // A malformed scheme must fail loudly in release campaigns too
    // (same precedent as FaultyRam::inject): n <= k would underflow
    // the sweep bounds and silently corrupt every verdict.
    if (kk < 1 || kk > 64 || n <= kk) {
      throw std::invalid_argument(
          "make_op_transcript: need 1 <= k <= 64 < n, got k = " +
          std::to_string(kk) + ", n = " + std::to_string(n));
    }
    assert(orc.trajectory.size() == n);
    assert(orc.fin_expected.size() == kk);
    assert(!it.config.verify_pass || orc.image.size() == n);

    PrtIterSpan span;
    span.k = kk;
    span.traj_begin = cursor;
    // The golden sequence in sweep order: seq[0..k) is the seed, the
    // rest the virtual LFSR's output — everything the Fin/Init
    // read-back compares against lives at its own trajectory position.
    lfsr::WordLfsr model(field, it.g);
    model.seed(it.config.init);
    const std::vector<gf::Elem> seq = model.sequence(n);
    const Trajectory& traj = orc.trajectory;
    for (mem::Addr q = 0; q < n; ++q) {
      t.recs[cursor + q] = {traj.at(q), seq[q]};
    }
    // The read-back goldens (sequence tail) equal the oracle's
    // jump-ahead Fin* by construction — the live path compares against
    // the oracle, so pin the equivalence in debug builds.
    for (unsigned j = 0; j < kk; ++j) {
      assert(t.recs[cursor + n - kk + j].golden == orc.fin_expected[j]);
    }
    cursor += n;

    span.has_verify = it.config.verify_pass;
    span.verify_begin = cursor;
    if (it.config.verify_pass) {
      for (mem::Addr a = 0; a < n; ++a) {
        t.recs[cursor + a] = {a, orc.image[a]};
      }
      cursor += n;
    }

    // Feedback selection: window position j carries the read of
    // trajectory position q + j, which the generator taps as g[k - j].
    for (unsigned j = 0; j < kk; ++j) {
      if (it.g[kk - j] != 0) span.fb_mask |= std::uint64_t{1} << j;
    }
    // Over GF(2^m) each tap multiplies by the constant g[k - j] — a
    // GF(2)-linear map, compiled to its m x m bit matrix so both
    // replays evaluate it with XORs only (the paper's own argument for
    // constant multipliers in the BIST hardware).
    if (t.width > 1) {
      span.tap_rows.assign(static_cast<std::size_t>(kk) * t.width, 0);
      for (unsigned j = 0; j < kk; ++j) {
        const gf::Elem c = it.g[kk - j];
        if (c == 0) continue;
        const gf::MatrixGF2 mtx = gf::multiplier_matrix(field, c);
        for (unsigned r = 0; r < t.width; ++r) {
          std::uint32_t row = 0;
          for (unsigned p = 0; p < t.width; ++p) {
            if (mtx.get(r, p)) row |= std::uint32_t{1} << p;
          }
          span.tap_rows[static_cast<std::size_t>(j) * t.width + r] = row;
        }
      }
    }
    span.misr_expected = orc.misr_expected;
    span.pause_ticks = it.config.pause_ticks;

    // Abort-op prefix sums: a scalar single-port run of this iteration
    // issues k seed writes, (n - k) windows of k reads + 1 feedback
    // write, 2k read-back reads, and n verify reads when enabled.
    t.total_writes += kk + (n - kk);
    t.total_reads += static_cast<std::uint64_t>(n - kk) * kk + 2 * kk +
                     (it.config.verify_pass ? n : 0);
    span.reads_end = t.total_reads;
    span.writes_end = t.total_writes;
    t.iterations.push_back(span);
  }
  assert(cursor == t.recs.size());
  return t;
}

}  // namespace prt::core
