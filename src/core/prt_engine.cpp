#include "core/prt_engine.hpp"

#include <cassert>

#include "gf/gf2m_poly.hpp"

namespace prt::core {

PrtOracle make_prt_oracle(const PrtScheme& scheme, mem::Addr n) {
  assert(!scheme.iterations.empty());
  const gf::GF2m field(scheme.field_modulus);
  PrtOracle oracle;
  oracle.n = n;
  oracle.testers.reserve(scheme.iterations.size());
  oracle.iterations.reserve(scheme.iterations.size());
  for (const SchemeIteration& iter : scheme.iterations) {
    PiTester tester(field, iter.g);
    if (scheme.misr_poly != 0) tester.enable_misr(scheme.misr_poly);
    oracle.iterations.push_back(tester.make_oracle(n, iter.config));
    oracle.testers.push_back(std::move(tester));
  }
  return oracle;
}

std::string scheme_fingerprint(const PrtScheme& scheme) {
  // Serializes exactly the inputs of make_prt_oracle /
  // make_op_transcript; `name` is display-only and excluded.
  std::string fp = "p=" + std::to_string(scheme.field_modulus) +
                   ";misr=" + std::to_string(scheme.misr_poly);
  for (const SchemeIteration& iter : scheme.iterations) {
    fp += ";g=";
    for (const gf::Elem c : iter.g) fp += std::to_string(c) + ",";
    fp += "d=";
    for (const gf::Elem d : iter.config.init) fp += std::to_string(d) + ",";
    fp += "t=" + std::to_string(static_cast<int>(iter.config.trajectory)) +
          ",s=" + std::to_string(iter.config.seed) +
          ",v=" + std::to_string(iter.config.verify_pass ? 1 : 0) +
          ",z=" + std::to_string(iter.config.pause_ticks);
  }
  return fp;
}

PrtVerdict run_prt(mem::Memory& memory, const PrtScheme& scheme) {
  return run_prt(memory, scheme, make_prt_oracle(scheme, memory.size()));
}

PrtVerdict run_prt(mem::Memory& memory, const PrtScheme& scheme,
                   const PrtOracle& oracle, const PrtRunOptions& options) {
  assert(!scheme.iterations.empty());
  assert(oracle.testers.size() == scheme.iterations.size());
  assert(oracle.n == memory.size());
  PrtVerdict verdict;
  for (std::size_t i = 0; i < scheme.iterations.size(); ++i) {
    PiResult r = oracle.testers[i].run(memory, scheme.iterations[i].config,
                                       oracle.iterations[i]);
    verdict.pass = verdict.pass && r.pass;
    verdict.misr_pass = verdict.misr_pass && r.misr_pass;
    verdict.reads += r.reads;
    verdict.writes += r.writes;
    if (options.record_iterations) verdict.iterations.push_back(std::move(r));
    if (options.early_abort && verdict.detected()) break;
  }
  return verdict;
}

namespace {

/// Iterations 1/2 of the reconstructed TDB: the degenerate two-term
/// generator g(x) = 1 + x^2 replays the seed pair periodically, giving
/// an address-checkerboard background (period 2).
std::vector<gf::Elem> checkerboard_g() { return {1, 0, 1}; }

SchemeIteration make_iteration(std::vector<gf::Elem> g,
                               std::vector<gf::Elem> init,
                               TrajectoryKind traj) {
  SchemeIteration it;
  it.g = std::move(g);
  it.config.init = std::move(init);
  it.config.trajectory = traj;
  return it;
}

PrtScheme standard_scheme(mem::Addr n, const gf::GF2m& field) {
  assert(n > 2);
  (void)n;
  const gf::Elem mask = field.size() - 1;  // all-ones word
  PrtScheme scheme;
  scheme.field_modulus = field.modulus();

  // Iteration 1 — solid-1 ascending: every cell makes an up-transition
  // (from the power-up/previous-test zero state) and is read right
  // after; adjacent aggressors fire inside the ascending detection
  // window.
  scheme.iterations.push_back(make_iteration(
      checkerboard_g(), {mask, mask}, TrajectoryKind::kAscending));

  // Iteration 2 — solid-0 descending: every cell makes a down-
  // transition; the reversed traversal covers the opposite
  // aggressor/victim orientation.
  scheme.iterations.push_back(make_iteration(
      checkerboard_g(), {0, 0}, TrajectoryKind::kDescending));

  // Iteration 3 — checkerboard ascending: neighbouring cells differ,
  // which exposes stuck-open (sense-amp history) faults, wrong-cell
  // decoder faults and bridges between cells of equal solid value.
  scheme.iterations.push_back(make_iteration(
      checkerboard_g(), {0, mask}, TrajectoryKind::kAscending));
  return scheme;
}

}  // namespace

PrtScheme standard_scheme_bom(mem::Addr n) {
  const gf::GF2m field(0b11);  // GF(2), represented as GF(2)[z]/(z+1)
  PrtScheme scheme = standard_scheme(n, field);
  scheme.name = "PRT-3 BOM";
  return scheme;
}

PrtScheme standard_scheme_wom(mem::Addr n, unsigned m, gf::Poly2 p) {
  assert(m >= 2 && m <= 16);
  if (p == 0) p = gf::first_primitive(m);
  const gf::GF2m field(p);
  PrtScheme scheme = standard_scheme(n, field);
  scheme.name = "PRT-3 WOM";
  return scheme;
}

namespace {

/// Shared construction of the extended scheme over an arbitrary field:
/// per traversal direction, a solid-1/solid-0 pair (universal (up,1) /
/// (down,0) aggressor-victim combinations for idempotent coupling),
/// the checkerboard triple (the remaining (up,0)/(down,1) combos per
/// cell parity), and a maximal-length iteration (read-logic faults and
/// background variety); plus two random-trajectory maximal-length
/// iterations that decorrelate decoder aliasing distances from the
/// short background periods.
PrtScheme extended_scheme(const gf::GF2m& field, std::vector<gf::Elem> g3) {
  const gf::Elem mask = field.size() - 1;
  PrtScheme scheme;
  scheme.field_modulus = field.modulus();
  const std::vector<gf::Elem> chk = {1, 0, 1};
  auto add = [&](std::vector<gf::Elem> g, std::vector<gf::Elem> init,
                 TrajectoryKind traj, std::uint64_t seed = 0) {
    SchemeIteration it;
    it.g = std::move(g);
    it.config.init = std::move(init);
    it.config.trajectory = traj;
    it.config.seed = seed;
    it.config.verify_pass = true;
    scheme.iterations.push_back(std::move(it));
  };
  for (auto traj :
       {TrajectoryKind::kAscending, TrajectoryKind::kDescending}) {
    // A leading solid-0 normalizes the image so the following solid-1
    // sweep makes *every* cell rise with its neighbours already at the
    // new value — the universal (up,1) aggressor/victim combination.
    add(chk, {0, 0}, traj);        // solid 0 (also: WDF on 0-cells)
    add(chk, {mask, mask}, traj);  // solid 1: all up edges
    add(chk, {0, 0}, traj);        // solid 0: all down edges
    add(chk, {0, mask}, traj);     // checkerboard
    add(chk, {mask, 0}, traj);     // anti-checkerboard
    add(chk, {0, mask}, traj);     // checkerboard again (down edges)
    add(g3, {0, 1}, traj);         // maximal-length background
    add(g3, {1, 0}, traj);         // phase-shifted maximal-length
  }
  add(g3, {1, 1}, TrajectoryKind::kRandom, /*seed=*/0x51u);
  add(g3, {1, 2 % field.size()}, TrajectoryKind::kRandom, /*seed=*/0xA7u);
  return scheme;
}

}  // namespace

PrtScheme extended_scheme_bom(mem::Addr n) {
  (void)n;
  const gf::GF2m field(0b11);
  PrtScheme scheme = extended_scheme(field, {1, 1, 1});
  scheme.name = "PRT-ext BOM";
  return scheme;
}

PrtScheme extended_scheme_wom(mem::Addr n, unsigned m, gf::Poly2 p) {
  (void)n;
  assert(m >= 2 && m <= 16);
  if (p == 0) p = gf::first_primitive(m);
  const gf::GF2m field(p);
  std::vector<gf::Elem> g3;
  if (m == 4 && p == 0b10011) {
    g3 = {1, 2, 2};
  } else {
    const auto found =
        gf::find_irreducible(field, /*k=*/2, /*primitive=*/true);
    assert(found.has_value());
    g3 = found->coeffs;
  }
  PrtScheme scheme = extended_scheme(field, std::move(g3));
  scheme.name = "PRT-ext WOM";
  return scheme;
}

PrtScheme retention_scheme(mem::Addr n, unsigned m,
                           std::uint64_t pause_ticks, gf::Poly2 p) {
  assert(n > 2 && m >= 1 && m <= 16);
  (void)n;
  if (p == 0) p = m == 1 ? gf::Poly2{0b11} : gf::first_primitive(m);
  const gf::GF2m field(p);
  const gf::Elem mask = field.size() - 1;
  PrtScheme scheme;
  scheme.field_modulus = p;
  scheme.name = "PRT retention";
  for (gf::Elem background : {mask, gf::Elem{0}}) {
    SchemeIteration it;
    it.g = {1, 0, 1};
    it.config.init = {background, background};
    it.config.verify_pass = true;
    it.config.pause_ticks = pause_ticks;
    scheme.iterations.push_back(std::move(it));
  }
  return scheme;
}

std::uint64_t prt_ops(mem::Addr n, unsigned k, unsigned iterations) {
  assert(n > k);
  // k init writes + (n-k) sub-iterations of k reads + 1 write + k Fin
  // reads + k Init re-reads; for k = 2 this is exactly 3n.
  const std::uint64_t per_iter =
      k + static_cast<std::uint64_t>(n - k) * (k + 1) + 2 * k;
  return per_iter * iterations;
}

}  // namespace prt::core
