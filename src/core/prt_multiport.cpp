#include "core/prt_multiport.hpp"

#include <cassert>

namespace prt::core {

namespace {

/// Reads the last k visited cells as the observed Fin and re-reads the
/// first k (Init) cells, one cycle per port-parallel group of reads;
/// appends the Init read-back verdict into `init_ok`.
void capture_fin_and_init(mem::Memory& memory, const Trajectory& traj,
                          unsigned k, unsigned port_group,
                          std::span<const gf::Elem> init,
                          MultiPortResult& result, bool& init_ok) {
  const mem::Addr n = traj.size();
  result.fin.resize(k);
  for (unsigned j = 0; j < k; j += port_group) {
    for (unsigned p = 0; p < port_group && j + p < k; ++p) {
      result.fin[j + p] = static_cast<gf::Elem>(
          memory.read(traj.at(n - k + j + p), p));
      ++result.reads;
    }
    ++result.cycles;
  }
  for (unsigned j = 0; j < k; j += port_group) {
    for (unsigned p = 0; p < port_group && j + p < k; ++p) {
      const auto got =
          static_cast<gf::Elem>(memory.read(traj.at(j + p), p));
      init_ok = init_ok && got == init[j + p];
      ++result.reads;
    }
    ++result.cycles;
  }
}

}  // namespace

MultiPortResult run_pi_dualport(mem::Memory& memory, const PiTester& tester,
                                const PiConfig& config) {
  assert(memory.ports() >= 2);
  assert(memory.width() == tester.field().m());
  const unsigned k = tester.k();
  const mem::Addr n = memory.size();
  assert(n > k);
  assert(config.init.size() == k);
  assert(k == 2 && "the Fig. 2 schedule pairs the two window reads");

  const Trajectory traj = Trajectory::make(config.trajectory, n, config.seed);
  MultiPortResult result;

  // Init writes: both seed cells in one cycle, one per port.
  memory.write(traj.at(0), config.init[0], 0);
  memory.write(traj.at(1), config.init[1], 1);
  result.writes += 2;
  ++result.cycles;

  // Sub-iterations: cycle A reads the window on ports 0/1, cycle B
  // writes the feedback on port 0.
  std::vector<gf::Elem> window(k);
  for (mem::Addr q = 0; q + k < n; ++q) {
    window[0] = static_cast<gf::Elem>(memory.read(traj.at(q), 0));
    window[1] = static_cast<gf::Elem>(memory.read(traj.at(q + 1), 1));
    result.reads += 2;
    ++result.cycles;
    memory.write(traj.at(q + k), tester.feedback_of(window), 0);
    ++result.writes;
    ++result.cycles;
  }

  bool init_ok = true;
  capture_fin_and_init(memory, traj, k, /*port_group=*/2, config.init,
                       result, init_ok);
  result.fin_expected = tester.expected_fin(n, config.init);
  result.pass = result.fin == result.fin_expected && init_ok;
  return result;
}

MultiPortResult run_pi_quadport(mem::Memory& memory, const PiTester& tester,
                                const PiConfig& config) {
  assert(memory.ports() >= 3);
  assert(memory.width() == tester.field().m());
  const unsigned k = tester.k();
  const mem::Addr n = memory.size();
  assert(n > k && k == 2);
  assert(config.init.size() == k);

  const Trajectory traj = Trajectory::make(config.trajectory, n, config.seed);
  MultiPortResult result;

  memory.write(traj.at(0), config.init[0], 0);
  memory.write(traj.at(1), config.init[1], 1);
  result.writes += 2;
  ++result.cycles;

  // One cycle per sub-iteration: reads on ports 0/1, write on port 2
  // (write-after-read within the cycle; all three addresses differ).
  std::vector<gf::Elem> window(k);
  for (mem::Addr q = 0; q + k < n; ++q) {
    window[0] = static_cast<gf::Elem>(memory.read(traj.at(q), 0));
    window[1] = static_cast<gf::Elem>(memory.read(traj.at(q + 1), 1));
    result.reads += 2;
    memory.write(traj.at(q + k), tester.feedback_of(window), 2);
    ++result.writes;
    ++result.cycles;
  }

  bool init_ok = true;
  capture_fin_and_init(memory, traj, k, /*port_group=*/2, config.init,
                       result, init_ok);
  result.fin_expected = tester.expected_fin(n, config.init);
  result.pass = result.fin == result.fin_expected && init_ok;
  return result;
}

MultiPortResult run_pi_multilfsr(mem::Memory& memory, const PiTester& tester,
                                 const PiConfig& config) {
  assert(memory.ports() == 4);
  assert(memory.width() == tester.field().m());
  const unsigned k = tester.k();
  const mem::Addr n = memory.size();
  assert(k == 2);
  const mem::Addr half = n / 2;
  assert(half > k);
  assert(config.init.size() == k);

  // Two trajectories: one per half, same kind (random halves use
  // decorrelated seeds).
  const Trajectory t0 =
      Trajectory::make(config.trajectory, half, config.seed);
  const Trajectory t1 = Trajectory::make(config.trajectory, n - half,
                                         config.seed ^ 0x9e3779b9U);
  auto addr1 = [&](mem::Addr q) { return half + t1.at(q); };

  MultiPortResult result;

  // Init both halves: 4 writes, one per port, single cycle.
  memory.write(t0.at(0), config.init[0], 0);
  memory.write(t0.at(1), config.init[1], 1);
  memory.write(addr1(0), config.init[0], 2);
  memory.write(addr1(1), config.init[1], 3);
  result.writes += 4;
  ++result.cycles;

  // Fig. 2 schedule replicated per half: read cycle (4 parallel reads),
  // write cycle (2 parallel writes).
  const mem::Addr steps = std::max(half, n - half) - k;
  std::vector<gf::Elem> w0(k);
  std::vector<gf::Elem> w1(k);
  for (mem::Addr q = 0; q < steps; ++q) {
    const bool live0 = q + k < half;
    const bool live1 = q + k < n - half;
    if (live0) {
      w0[0] = static_cast<gf::Elem>(memory.read(t0.at(q), 0));
      w0[1] = static_cast<gf::Elem>(memory.read(t0.at(q + 1), 1));
      result.reads += 2;
    }
    if (live1) {
      w1[0] = static_cast<gf::Elem>(memory.read(addr1(q), 2));
      w1[1] = static_cast<gf::Elem>(memory.read(addr1(q + 1), 3));
      result.reads += 2;
    }
    ++result.cycles;
    if (live0) {
      memory.write(t0.at(q + k), tester.feedback_of(w0), 0);
      ++result.writes;
    }
    if (live1) {
      memory.write(addr1(q + k), tester.feedback_of(w1), 2);
      ++result.writes;
    }
    ++result.cycles;
  }

  // Fin capture plus Init re-read: both halves in parallel, two reads
  // per cycle per half.
  const auto fin_expected0 = tester.expected_fin(half, config.init);
  const auto fin_expected1 =
      tester.expected_fin(n - half, config.init);
  result.fin.resize(2 * k);
  bool init_ok = true;
  for (unsigned j = 0; j < k; ++j) {
    result.fin[j] =
        static_cast<gf::Elem>(memory.read(t0.at(half - k + j), 0));
    result.fin[k + j] = static_cast<gf::Elem>(
        memory.read(addr1(n - half - k + j), 2));
    result.reads += 2;
    ++result.cycles;
  }
  for (unsigned j = 0; j < k; ++j) {
    init_ok = init_ok &&
              static_cast<gf::Elem>(memory.read(t0.at(j), 0)) ==
                  config.init[j];
    init_ok = init_ok &&
              static_cast<gf::Elem>(memory.read(addr1(j), 2)) ==
                  config.init[j];
    result.reads += 2;
    ++result.cycles;
  }
  result.fin_expected = fin_expected0;
  result.fin_expected.insert(result.fin_expected.end(),
                             fin_expected1.begin(), fin_expected1.end());
  result.pass = result.fin == result.fin_expected && init_ok;
  return result;
}

}  // namespace prt::core
