// Word-packed SIMD fault lanes (mem/packed_fault_ram, core/prt_packed,
// and the lane-batching layer in analysis/campaign_engine).
//
// The load-bearing property is bit-identity: every lane of the packed
// ram must behave exactly like a scalar FaultyRam holding that lane's
// single fault, and the packed campaign path must reproduce the serial
// scalar CampaignResult — coverage, per-class counts, escape indices
// and op totals — on any universe.
#include "core/prt_packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt {
namespace {

std::uint64_t next_rand(std::uint64_t& x) {
  x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  return x ^ (x >> 29);
}

void expect_identical(const analysis::CampaignResult& a,
                      const analysis::CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

// --- lane compatibility ------------------------------------------------

TEST(LaneCompatible, SingleBitKindsRideLanesOthersDoNot) {
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::saf({3, 0}, 0)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::saf({3, 0}, 1)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::tf({3, 0}, true)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::tf({3, 0}, false)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::wdf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::rdf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::drdf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::irf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::sof({3, 0})));
  // Two-cell coupling faults ride a lane too: the aggressor/victim
  // pair lives in one lane's memory.
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_in({1, 0}, {2, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_id({1, 0}, {2, 0}, true, 1)));
  EXPECT_TRUE(
      mem::lane_compatible(mem::Fault::cf_id({1, 0}, {2, 0}, false, 0)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_st({1, 0}, {2, 0}, 0, 1)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_st({1, 0}, {2, 0}, 1, 0)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::bridge({1, 0}, {2, 0}, true)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::bridge({1, 0}, {2, 0}, false)));
  // Decoder faults ride too: one fault per lane means the remap
  // touches exactly one address and at most one alias cell.
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::af_no_access(1)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::af_wrong_access(1, 2)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::af_multi_access(1, 2)));
  // Pattern and clock-dependent faults stay scalar.
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::npsf_static({5, 0}, 0xF, 0, 4)));
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::retention({1, 0}, 1, 8)));
  // The packed array models a 1-bit-wide memory: bit planes > 0 do not
  // ride, on either end of the pair.
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::saf({3, 1}, 0)));
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::cf_in({1, 1}, {2, 0})));
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::cf_in({1, 0}, {2, 1})));
  // A CFst trigger state beyond {0, 1} never matches a stored bit —
  // FaultyRam treats it as inert, so it stays on the scalar path.
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::cf_st({1, 0}, {2, 0}, 2, 1)));
}

TEST(PackedFaultRam, RejectsIncompatibleAndOverflowingFaults) {
  mem::PackedFaultRam ram(8);
  EXPECT_THROW(ram.add_fault(mem::Fault::retention({1, 0}, 1, 8)),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::saf({8, 0}, 1)),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::cf_in({1, 0}, {8, 0})),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::cf_in({1, 0}, {1, 0})),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::af_wrong_access(1, 8)),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::af_multi_access(1, 8)),
               std::invalid_argument);
  for (unsigned i = 0; i < mem::PackedFaultRam::kLanes; ++i) {
    EXPECT_EQ(ram.add_fault(mem::Fault::saf({i % 8, 0}, 1)), i);
  }
  EXPECT_THROW(ram.add_fault(mem::Fault::saf({0, 0}, 0)), std::length_error);
}

TEST(PackedFaultRam, StuckAtClampsFromInjectionLikeFaultyRam) {
  mem::PackedFaultRam packed(8);
  const unsigned lane = packed.add_fault(mem::Fault::saf({3, 0}, 1));
  // Before any write, the stuck-at-1 lane already reads 1.
  EXPECT_EQ((packed.read(3) >> lane) & 1U, 1U);
  mem::FaultyRam scalar(8, 1);
  scalar.inject(mem::Fault::saf({3, 0}, 1));
  EXPECT_EQ(scalar.read(3, 0), 1U);
}

// --- per-lane differential check against FaultyRam ---------------------

TEST(PackedFaultRam, EveryLaneMatchesScalarFaultyRamOnRandomTraffic) {
  const mem::Addr n = 24;
  // 64 faults cycling through every lane-compatible kind and cell.
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::BitRef v{i % n, 0};
    switch (i % 9) {
      case 0: faults.push_back(mem::Fault::saf(v, 0)); break;
      case 1: faults.push_back(mem::Fault::saf(v, 1)); break;
      case 2: faults.push_back(mem::Fault::tf(v, true)); break;
      case 3: faults.push_back(mem::Fault::tf(v, false)); break;
      case 4: faults.push_back(mem::Fault::wdf(v)); break;
      case 5: faults.push_back(mem::Fault::rdf(v)); break;
      case 6: faults.push_back(mem::Fault::drdf(v)); break;
      case 7: faults.push_back(mem::Fault::irf(v)); break;
      case 8: faults.push_back(mem::Fault::sof(v)); break;
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  std::uint64_t x = 0xC0FFEE;
  for (int step = 0; step < 4000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// Coupling lanes: every two-cell kind across varied aggressor/victim
// pairs must match a scalar FaultyRam holding that one fault, op for
// op, under random traffic.
TEST(PackedFaultRam, EveryCouplingLaneMatchesScalarFaultyRam) {
  const mem::Addr n = 24;
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::BitRef a{i % n, 0};
    const mem::BitRef v{(i + 1 + i % 5) % n, 0};
    switch (i % 11) {
      case 0: faults.push_back(mem::Fault::cf_in(v, a)); break;
      case 1: faults.push_back(mem::Fault::cf_id(v, a, true, 0)); break;
      case 2: faults.push_back(mem::Fault::cf_id(v, a, true, 1)); break;
      case 3: faults.push_back(mem::Fault::cf_id(v, a, false, 0)); break;
      case 4: faults.push_back(mem::Fault::cf_id(v, a, false, 1)); break;
      case 5: faults.push_back(mem::Fault::cf_st(v, a, 0, 0)); break;
      case 6: faults.push_back(mem::Fault::cf_st(v, a, 0, 1)); break;
      case 7: faults.push_back(mem::Fault::cf_st(v, a, 1, 0)); break;
      case 8: faults.push_back(mem::Fault::cf_st(v, a, 1, 1)); break;
      case 9: faults.push_back(mem::Fault::bridge(v, a, true)); break;
      case 10: faults.push_back(mem::Fault::bridge(v, a, false)); break;
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  // Injection-time condition enforcement (CFst1 on a zero aggressor
  // forces the victim immediately) must match before any traffic.
  for (mem::Addr addr = 0; addr < n; ++addr) {
    const mem::LaneWord got = packed.peek(addr);
    for (unsigned lane = 0; lane < scalars.size(); ++lane) {
      ASSERT_EQ((got >> lane) & 1U, scalars[lane]->peek(addr))
          << "post-inject cell " << addr << " lane " << lane << " ("
          << faults[lane].describe() << ")";
    }
  }
  std::uint64_t x = 0xBADC0DE;
  for (int step = 0; step < 6000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// Decoder lanes: the three AF kinds across varied address/alias pairs
// must match a scalar FaultyRam holding that one fault, op for op,
// under random traffic (no-access reads zeros and drops writes,
// wrong-access redirects both, multi-access opens both cells and
// wires reads AND).
TEST(PackedFaultRam, EveryDecoderLaneMatchesScalarFaultyRam) {
  const mem::Addr n = 24;
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::Addr a = i % n;
    const mem::Addr alias = (i + 1 + i % 7) % n;
    switch (i % 3) {
      case 0: faults.push_back(mem::Fault::af_no_access(a)); break;
      case 1: faults.push_back(mem::Fault::af_wrong_access(a, alias)); break;
      case 2: faults.push_back(mem::Fault::af_multi_access(a, alias)); break;
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  std::uint64_t x = 0xDEC0DE;
  for (int step = 0; step < 6000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// --- packed PRT evaluation ---------------------------------------------

TEST(RunPrtPacked, SchemePackability) {
  EXPECT_TRUE(core::prt_scheme_packable(core::standard_scheme_bom(16)));
  EXPECT_TRUE(core::prt_scheme_packable(core::extended_scheme_bom(16)));
  EXPECT_TRUE(
      core::prt_scheme_packable(core::retention_scheme(16, 1, 100)));
  // Word-oriented schemes need GF(2^m) multiplies per lane.
  EXPECT_FALSE(core::prt_scheme_packable(core::standard_scheme_wom(16, 4)));
}

// One full batch of lane-compatible faults on a tiny array: each
// lane's detected bit must equal the scalar oracle-backed run_prt
// verdict for that fault alone.
void check_packed_verdicts_on(const core::PrtScheme& scheme, mem::Addr n,
                              const std::vector<mem::Fault>& universe) {
  ASSERT_LE(universe.size(), mem::PackedFaultRam::kLanes);
  const auto oracle = core::make_prt_oracle(scheme, n);
  mem::PackedFaultRam packed(n);
  for (const mem::Fault& f : universe) packed.add_fault(f);
  const std::uint64_t detected =
      core::run_prt_packed(packed, scheme, oracle) & packed.active_mask();
  mem::FaultyRam scalar(n, 1);
  for (unsigned lane = 0; lane < universe.size(); ++lane) {
    scalar.reset(universe[lane]);
    const core::PrtRunOptions opts{.early_abort = false,
                                   .record_iterations = false};
    const bool expected =
        core::run_prt(scalar, scheme, oracle, opts).detected();
    EXPECT_EQ(((detected >> lane) & 1U) != 0, expected)
        << "lane " << lane << " (" << universe[lane].describe() << ")";
    // A packed batch runs the complete scheme, so its op count matches
    // the scalar per-fault cost.
    EXPECT_EQ(packed.ops(), scalar.total_stats().total());
  }
}

void check_packed_verdicts(const core::PrtScheme& scheme, mem::Addr n) {
  check_packed_verdicts_on(
      scheme, n, mem::single_cell_universe(n, 1, /*read_logic=*/true));
}

/// All 9 CFin/CFid/CFst variants on 7 ascending adjacent pairs — 63
/// faults, one batch.
std::vector<mem::Fault> small_coupling_universe(mem::Addr n) {
  std::vector<std::pair<mem::Addr, mem::Addr>> pairs;
  for (mem::Addr c = 0; c < 7 && c + 1 < n; ++c) pairs.emplace_back(c, c + 1);
  return mem::coupling_universe(pairs, /*bit=*/0);
}

TEST(RunPrtPacked, LaneVerdictsMatchScalarStandardScheme) {
  check_packed_verdicts(core::standard_scheme_bom(7), 7);
}

TEST(RunPrtPacked, LaneVerdictsMatchScalarExtendedScheme) {
  check_packed_verdicts(core::extended_scheme_bom(7), 7);
}

TEST(RunPrtPacked, LaneVerdictsMatchScalarWithMisr) {
  core::PrtScheme scheme = core::standard_scheme_bom(7);
  scheme.misr_poly = 0b100101;  // degree-5 signature over the read stream
  check_packed_verdicts(scheme, 7);
}

TEST(RunPrtPacked, CouplingLaneVerdictsMatchScalarStandardScheme) {
  check_packed_verdicts_on(core::standard_scheme_bom(16), 16,
                           small_coupling_universe(16));
}

TEST(RunPrtPacked, CouplingLaneVerdictsMatchScalarExtendedScheme) {
  check_packed_verdicts_on(core::extended_scheme_bom(16), 16,
                           small_coupling_universe(16));
}

// Per-lane early abort: the detected mask is unchanged and the
// reported scalar-equivalent op count reproduces exactly what
// run_prt(..., {.early_abort = true}) issues per fault.
TEST(RunPrtPacked, EarlyAbortKeepsVerdictsAndMatchesScalarAbortOps) {
  const mem::Addr n = 16;
  for (const bool misr : {false, true}) {
    core::PrtScheme scheme = core::extended_scheme_bom(n);
    if (misr) scheme.misr_poly = 0b1000011;
    const auto oracle = core::make_prt_oracle(scheme, n);
    auto universe = mem::single_cell_universe(n, 1, /*read_logic=*/true);
    const auto coupling = small_coupling_universe(n);
    universe.insert(universe.end(), coupling.begin(), coupling.end());
    mem::FaultyRam scalar(n, 1);
    for (std::size_t base = 0; base < universe.size();
         base += mem::PackedFaultRam::kLanes) {
      const std::size_t count = std::min<std::size_t>(
          mem::PackedFaultRam::kLanes, universe.size() - base);
      mem::PackedFaultRam packed(n);
      for (std::size_t j = 0; j < count; ++j) {
        packed.add_fault(universe[base + j]);
      }
      mem::PackedFaultRam packed_abort(n);
      for (std::size_t j = 0; j < count; ++j) {
        packed_abort.add_fault(universe[base + j]);
      }
      const auto full =
          core::run_prt_packed(packed, scheme, oracle, {.early_abort = false});
      const auto abort = core::run_prt_packed(packed_abort, scheme, oracle,
                                              {.early_abort = true});
      EXPECT_EQ(full.detected & packed.active_mask(),
                abort.detected & packed_abort.active_mask());
      std::uint64_t scalar_abort_ops = 0;
      for (std::size_t j = 0; j < count; ++j) {
        scalar.reset(universe[base + j]);
        const core::PrtRunOptions opts{.early_abort = true,
                                       .record_iterations = false};
        (void)core::run_prt(scalar, scheme, oracle, opts);
        scalar_abort_ops += scalar.total_stats().total();
      }
      EXPECT_EQ(abort.scalar_ops, scalar_abort_ops)
          << "batch at " << base << " misr=" << misr;
    }
  }
}

// --- campaign-level parity (the acceptance criterion) -------------------

analysis::CampaignResult serial_scalar_reference(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const analysis::CampaignOptions& opt) {
  return analysis::run_campaign(universe, analysis::prt_algorithm(scheme),
                                opt);
}

TEST(PackedCampaign, BitIdenticalToSerialScalarOnClassical256) {
  const mem::Addr n = 256;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (unsigned threads : {1u, 4u}) {
    analysis::EngineOptions eng;
    eng.threads = threads;
    eng.packed = true;
    expect_identical(reference,
                     analysis::run_prt_campaign(universe, scheme, opt, eng));
  }
}

TEST(PackedCampaign, BitIdenticalToSerialScalarOnClassical1024) {
  const mem::Addr n = 1024;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::standard_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.packed = true;
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

// The van de Goor universe interleaves packed (single-cell, read-logic)
// and scalar (coupling, decoder) faults within every shard, exercising
// the escape re-sort and the per-class merge.
TEST(PackedCampaign, BitIdenticalToSerialScalarOnVanDeGoor) {
  const mem::Addr n = 48;
  const auto universe = mem::van_de_goor_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.threads = 3;  // uneven shards split batches at arbitrary points
  eng.packed = true;
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

// --- early abort composed with packing ---------------------------------

void expect_identical_verdicts(const analysis::CampaignResult& a,
                               const analysis::CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
}

/// The packed+abort engine must (a) reproduce the scalar early-abort
/// engine bit-for-bit *including ops*, and (b) reproduce the no-abort
/// reference's verdicts, coverage and escapes.
void check_abort_composition(std::span<const mem::Fault> universe,
                             const core::PrtScheme& scheme,
                             const analysis::CampaignOptions& opt,
                             const analysis::CampaignResult& reference) {
  analysis::EngineOptions scalar_abort;
  scalar_abort.threads = 2;
  scalar_abort.packed = false;
  scalar_abort.early_abort = true;
  analysis::EngineOptions packed_abort = scalar_abort;
  packed_abort.packed = true;
  const auto a =
      analysis::run_prt_campaign(universe, scheme, opt, scalar_abort);
  const auto b =
      analysis::run_prt_campaign(universe, scheme, opt, packed_abort);
  expect_identical(a, b);
  expect_identical_verdicts(reference, b);
  EXPECT_LE(b.ops, reference.ops);
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalOnClassical256) {
  const mem::Addr n = 256;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalOnClassical1024) {
  const mem::Addr n = 1024;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::standard_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalOnVanDeGoor) {
  const mem::Addr n = 48;
  const auto universe = mem::van_de_goor_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalWithMisr) {
  const mem::Addr n = 64;
  const auto universe = mem::van_de_goor_universe(n);
  core::PrtScheme scheme = core::standard_scheme_bom(n);
  scheme.misr_poly = 0b1000011;  // degree-6
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, MisrEnabledCampaignStaysBitIdentical) {
  const mem::Addr n = 64;
  const auto universe = mem::single_cell_universe(n, 1, /*read_logic=*/true);
  core::PrtScheme scheme = core::standard_scheme_bom(n);
  scheme.misr_poly = 0b1000011;  // degree-6
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.packed = true;
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

// Word-oriented campaigns must transparently fall back to scalar.
TEST(PackedCampaign, WomCampaignFallsBackToScalar) {
  const mem::Addr n = 24;
  const unsigned m = 4;
  const auto universe = mem::single_cell_universe(n, m, /*read_logic=*/false);
  const auto scheme = core::standard_scheme_wom(n, m);
  analysis::CampaignOptions opt;
  opt.n = n;
  opt.m = m;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.packed = true;  // ignored: the scheme is not packable
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

}  // namespace
}  // namespace prt
