// Stall supervisor: fires a callback when watched work overruns its
// budget.
//
// The campaign service's failure model before this existed was "a
// shard either finishes, throws, or observes its stop token" — a shard
// that simply *hangs* (wedged I/O, a pathological input, an armed
// kDelay fail point standing in for both) stalled its request forever
// and pinned a pool worker.  The Watchdog closes that hole: callers
// register a deadline per unit of work (`watch`), deregister on
// completion (`unwatch`), and a single supervisor thread invokes the
// expiry callback for anything still registered past its deadline.
// The campaign service's callback trips a per-attempt StopToken with
// StopReason::kStalled, converting "wedged shard" into "cancelled
// attempt" and letting the existing bounded-retry path take over (see
// DESIGN.md §13).
//
// Semantics chosen for that use:
//  * Callbacks run on the supervisor thread, outside the Watchdog
//    lock — they may call watch()/unwatch() but must be cheap and must
//    not block (tripping a StopSource is one CAS).
//  * An expired entry is removed before its callback runs; expiry and
//    unwatch() race benignly — at most one of them wins, and a
//    callback firing for work that *just* completed is harmless for
//    idempotent callbacks like a stop-token trip.
//  * The destructor joins the supervisor; callbacks registered and not
//    yet expired never fire after destruction.  Callers must therefore
//    destroy the Watchdog before anything a callback captures (in
//    practice callbacks capture shared_ptr-backed StopSources by
//    value, which makes them self-contained).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"

namespace prt::util {

class Watchdog {
 public:
  using Id = std::uint64_t;

  Watchdog() { supervisor_ = std::thread([this] { loop(); }); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    supervisor_.join();
  }

  /// Registers work with `budget` from now; if not unwatch()ed before
  /// the budget elapses, `on_expire` runs once on the supervisor
  /// thread.  Returns the handle to pass to unwatch().
  Id watch(std::chrono::nanoseconds budget, std::function<void()> on_expire)
      PRT_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    Id id = 0;
    {
      MutexLock lock(mutex_);
      id = next_id_++;
      entries_.emplace(id, Entry{deadline, std::move(on_expire)});
    }
    wake_.notify_all();
    return id;
  }

  /// Deregisters; a no-op if the entry already expired (its callback
  /// ran or is about to run).
  void unwatch(Id id) PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    entries_.erase(id);
  }

  /// Total callbacks fired over the watchdog's lifetime.
  [[nodiscard]] std::uint64_t expirations() const PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return expired_count_;
  }

 private:
  struct Entry {
    std::chrono::steady_clock::time_point deadline;
    std::function<void()> on_expire;
  };

  void loop() PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    for (;;) {
      if (stopping_) return;
      const auto now = std::chrono::steady_clock::now();
      // Sweep: collect everything expired (removing it so expiry is
      // once-only), remember the earliest remaining deadline.  The
      // entry map is keyed by registration id, not deadline — watch
      // counts are small (one per in-flight shard attempt) so a linear
      // sweep beats maintaining a second index.
      std::vector<std::function<void()>> expired;
      auto next_deadline = std::chrono::steady_clock::time_point::max();
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.deadline <= now) {
          expired.push_back(std::move(it->second.on_expire));
          it = entries_.erase(it);
        } else {
          next_deadline = std::min(next_deadline, it->second.deadline);
          ++it;
        }
      }
      if (!expired.empty()) {
        expired_count_ += expired.size();
        lock.Unlock();
        for (const auto& fire : expired) fire();
        lock.Lock();
        continue;  // re-evaluate stopping_/deadlines after the gap
      }
      if (entries_.empty()) {
        wake_.wait(lock);
      } else {
        wake_.wait_for(lock, next_deadline - now);
      }
    }
  }

  std::thread supervisor_;
  mutable Mutex mutex_;
  CondVar wake_;
  std::map<Id, Entry> entries_ PRT_GUARDED_BY(mutex_);
  Id next_id_ PRT_GUARDED_BY(mutex_) = 1;
  bool stopping_ PRT_GUARDED_BY(mutex_) = false;
  std::uint64_t expired_count_ PRT_GUARDED_BY(mutex_) = 0;
};

}  // namespace prt::util
