// ASCII table formatter used by the benchmark harness and the analysis
// reports so every experiment prints rows in a uniform, paper-like shape.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace prt {

/// Column alignment inside a Table cell.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with padded, aligned
/// columns.  Intended for small result tables (tens of rows), not bulk
/// data.
class Table {
 public:
  /// Creates a table with the given column headers.  All rows added later
  /// must have exactly headers.size() cells.
  explicit Table(std::vector<std::string> headers);

  /// Sets per-column alignment; default is kRight for every column.
  void set_align(std::size_t col, Align align);

  /// Appends one row.  Precondition: cells.size() == column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each argument with to_cell() and appends.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  /// Renders the table (header, separator, rows) to a string.
  [[nodiscard]] std::string str() const;

  /// Renders to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  /// Renders the table as CSV (no padding), for machine consumption.
  [[nodiscard]] std::string csv() const;

  // --- cell formatting helpers -------------------------------------
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v with `digits` significant decimal places (fixed notation).
std::string format_fixed(double v, int digits);

/// Formats a ratio as "2^-k"-style when it is a (near) power of two,
/// otherwise scientific; used by the hardware-overhead tables.
std::string format_pow2_ratio(double ratio);

}  // namespace prt
