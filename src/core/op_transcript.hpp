// Cached op-transcript replay: compile a (scheme, n) golden run into a
// flat op stream and make every hot loop a tight replay.
//
// A fault campaign replays the *same* deterministic golden operation
// stream per (scheme, n) — or per (march_test, n, background) — against
// thousands of faults.  The live engines (PiTester::run,
// march::run_march) re-derive that stream op by op on every run:
// trajectory lookups, oracle vector indirection, per-op branching on
// the scheme structure, feedback through WordLfsr::feedback.  An
// OpTranscript is the stream compiled once: a flat, cache-friendly
// array of {addr, golden} records plus per-iteration checkpoints
// (expected MISR signature, pause ticks, feedback mask, and the
// abort-op prefix sums that make per-lane early-abort op accounting
// analytic).  The replay loops then stream through contiguous records
// with no oracle indirection and no per-op dispatch:
//
//  * run_prt_transcript (below, a template so the memory type
//    devirtualizes) replays the scheme against any mem::Memory with a
//    detection verdict and op accounting identical to
//    run_prt(memory, scheme, oracle, options) — every fault family
//    rides the packed lanes now, so this scalar replay serves as the
//    campaigns' differential reference and the rare-escape fallback
//    (e.g. degenerate CFst trigger states);
//  * core::run_prt_packed (prt_packed.hpp) replays it against a
//    64-lane mem::PackedFaultRam;
//  * march::run_march_packed (march/march_runner.hpp) replays a March
//    transcript compiled by march::make_march_transcript.
//
// Campaigns build one transcript next to their memoized oracles
// (analysis::CampaignEngine / analysis::MarchCampaign) and share it
// read-only across workers; it is immutable after construction.
// Bit-identical results to the live paths are enforced by the parity
// suites (tests/test_op_transcript.cpp op-for-op, plus the campaign
// parity tests).  See DESIGN.md §9.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/prt_engine.hpp"
#include "lfsr/misr.hpp"

namespace prt::core {

/// One compiled operation: the cell it touches and the golden value
/// associated with that position (seed value for init writes, golden
/// LFSR sequence value for sweep positions — which doubles as the
/// expected Fin/Init read-back — expected image bit for verify-pass
/// reads, expected data for March reads/writes).
struct OpRec {
  mem::Addr addr = 0;
  gf::Elem golden = 0;
};

/// Checkpoint of one compiled PRT iteration: spans into
/// OpTranscript::recs plus everything the replay needs between the
/// flat loops.
struct PrtIterSpan {
  /// recs[traj_begin .. traj_begin + n): the trajectory in visiting
  /// order.  Records [0, k) are the seed writes (golden = seed, also
  /// the expected Init re-read), the sweep slides k-wide read windows
  /// over the whole span, and records [n - k, n) carry Fin* as golden.
  std::size_t traj_begin = 0;
  /// recs[verify_begin .. verify_begin + n): the verify pass, address
  /// ascending, golden = fault-free image bit.  Only when has_verify.
  std::size_t verify_begin = 0;
  bool has_verify = false;
  /// Register length k of this iteration's generator.
  unsigned k = 0;
  /// Feedback selection: bit j set means window position j (the read
  /// of trajectory position q + j) feeds the feedback write — bit j
  /// corresponds to a non-zero generator coefficient g[k - j].  Over
  /// GF(2) the tap is a plain XOR of the read; wider fields also need
  /// tap_rows below.
  std::uint64_t fb_mask = 0;
  /// GF(2^m) tap matrices, empty for GF(2) schemes.  Multiplying by
  /// the constant g[k - j] is GF(2)-linear, so tap j is an m x m bit
  /// matrix: tap_rows[j * m + r] is the mask of input bit planes XORed
  /// into output plane r (row r of gf::multiplier_matrix(field,
  /// g[k - j])).  The packed word replay applies it lane-parallel
  /// (plane XORs), the scalar replay via per-row parity.
  std::vector<std::uint32_t> tap_rows;
  /// Golden MISR signature over this iteration's read stream (sweep
  /// windows, Fin read-back, Init re-read); 0 when MISR is disabled.
  std::uint64_t misr_expected = 0;
  /// Idle ticks between the sweep and the verify pass.
  std::uint64_t pause_ticks = 0;
  /// Reads/writes a scalar single-port run has issued once this
  /// iteration completes (cumulative over iterations) — the abort-op
  /// prefix sums: a fault whose first failing iteration is this one
  /// costs exactly ops_end under early abort.
  std::uint64_t reads_end = 0;
  std::uint64_t writes_end = 0;
  [[nodiscard]] std::uint64_t ops_end() const { return reads_end + writes_end; }
};

/// One compiled March element (march::make_march_transcript): recs
/// [begin, end) hold the element's operations flattened in traversal
/// order, `period` ops per address, read_mask bit j set when op j of
/// each period is a read (golden = expected data bit) instead of a
/// write (golden = data bit to write).
struct MarchSegment {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint32_t period = 1;
  std::uint32_t read_mask = 0;
  /// A "Del" element: no records, one advance_time(delay_ticks).
  bool is_delay = false;
};

/// A compiled golden op stream.  Exactly one of `iterations` (PRT) or
/// `march` (March) is non-empty.
struct OpTranscript {
  mem::Addr n = 0;
  std::vector<OpRec> recs;
  // --- PRT side ---
  std::vector<PrtIterSpan> iterations;
  gf::Poly2 misr_poly = 0;  // 0 = MISR disabled
  /// Field degree m of the scheme: every golden value and memory word
  /// is an m-bit quantity.  1 for GF(2) (and for all March
  /// transcripts); word-oriented schemes carry their real width so the
  /// replays pick the word path.
  unsigned width = 1;
  // --- March side ---
  std::vector<MarchSegment> march;
  std::uint64_t delay_ticks = 0;
  /// Reads + writes of one complete scalar replay (the non-abort
  /// per-fault op cost).
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  [[nodiscard]] std::uint64_t total_ops() const {
    return total_reads + total_writes;
  }
};

/// Compiles `scheme` against `oracle` (built by make_prt_oracle(scheme,
/// n)) into a flat transcript.  Preconditions: prt_scheme_packable
/// (structurally sane over GF(2^m), m <= 16 — GF(2) taps degenerate to
/// the XOR mask, wider fields get per-tap bit matrices) and every
/// iteration's k <= 64 (the fb_mask width).
[[nodiscard]] OpTranscript make_op_transcript(const PrtScheme& scheme,
                                              const PrtOracle& oracle);

/// Scalar transcript replay: issues the exact operation stream of
/// run_prt(memory, scheme, oracle, {.early_abort, .record_iterations =
/// false}) against any memory and returns an identical verdict
/// (detected(), reads, writes — with early_abort, complete iterations
/// up to and including the first failing one).  A template so the
/// concrete memory type's read/write devirtualize in the campaign hot
/// loop.
template <typename MemoryT>
[[nodiscard]] PrtVerdict run_prt_transcript(MemoryT& memory,
                                            const OpTranscript& t,
                                            const PrtRunOptions& options = {}) {
  PrtVerdict verdict;
  const mem::Addr n = t.n;
  const bool use_misr = t.misr_poly != 0;
  lfsr::Misr misr(use_misr ? t.misr_poly : gf::Poly2{0b111});
  for (const PrtIterSpan& it : t.iterations) {
    const OpRec* traj = t.recs.data() + it.traj_begin;
    const unsigned kk = it.k;
    bool fail = false;
    misr.reset();

    // Initialization: seed writes.
    for (unsigned j = 0; j < kk; ++j) {
      memory.write(traj[j].addr, traj[j].golden, 0);
    }
    // Sweep: k-wide read windows, feedback write selected by fb_mask.
    // GF(2) taps XOR the read straight in; GF(2^m) taps apply the
    // constant-multiplier bit matrix row by row (parity per output
    // plane) — exactly WordLfsr::feedback's sum of g[k - j] * read.
    for (mem::Addr q = 0; q + kk < n; ++q) {
      mem::Word fb = 0;
      for (unsigned j = 0; j < kk; ++j) {
        const mem::Word raw = memory.read(traj[q + j].addr, 0);
        if (use_misr) misr.shift(raw);
        if ((it.fb_mask >> j) & 1U) {
          if (it.tap_rows.empty()) {
            fb ^= raw;
          } else {
            const std::uint32_t* rows =
                it.tap_rows.data() + static_cast<std::size_t>(j) * t.width;
            mem::Word prod = 0;
            for (unsigned r = 0; r < t.width; ++r) {
              prod |= static_cast<mem::Word>(
                          static_cast<unsigned>(std::popcount(rows[r] & raw)) &
                          1U)
                      << r;
            }
            fb ^= prod;
          }
        }
      }
      memory.write(traj[q + kk].addr, fb, 0);
    }
    // Fin read-back against Fin*, Init re-read against the seed.
    for (unsigned j = 0; j < kk; ++j) {
      const mem::Word raw = memory.read(traj[n - kk + j].addr, 0);
      if (use_misr) misr.shift(raw);
      fail |= raw != traj[n - kk + j].golden;
    }
    for (unsigned j = 0; j < kk; ++j) {
      const mem::Word raw = memory.read(traj[j].addr, 0);
      if (use_misr) misr.shift(raw);
      fail |= raw != traj[j].golden;
    }
    // Verify pass: every cell against the fault-free image.
    if (it.has_verify) {
      if (it.pause_ticks != 0) memory.advance_time(it.pause_ticks);
      const OpRec* img = t.recs.data() + it.verify_begin;
      for (mem::Addr a = 0; a < n; ++a) {
        fail |= memory.read(img[a].addr, 0) != img[a].golden;
      }
    }
    verdict.pass = verdict.pass && !fail;
    if (use_misr && misr.state() != it.misr_expected) {
      verdict.misr_pass = false;
    }
    verdict.reads = it.reads_end;
    verdict.writes = it.writes_end;
    if (options.early_abort && verdict.detected()) break;
  }
  return verdict;
}

}  // namespace prt::core
