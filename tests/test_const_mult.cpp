// Tests for constant-multiplier XOR-network synthesis (gf/const_mult) —
// the paper's "optimal scheme of multiplication by a constant in GF".
#include "gf/const_mult.hpp"

#include <gtest/gtest.h>

namespace prt::gf {
namespace {

TEST(MultiplierMatrix, MultiplyByOneIsIdentity) {
  const GF2m f(0b10011);
  EXPECT_TRUE(multiplier_matrix(f, 1).is_identity());
}

TEST(MultiplierMatrix, MatrixActionMatchesFieldMul) {
  const GF2m f(0b10011);
  for (Elem c = 0; c < 16; ++c) {
    const MatrixGF2 mat = multiplier_matrix(f, c);
    for (Elem x = 0; x < 16; ++x) {
      EXPECT_EQ(mat.mul_vec64(x), f.mul(c, x)) << "c=" << +c << " x=" << +x;
    }
  }
}

TEST(MultiplierMatrix, NonZeroConstantGivesInvertibleMatrix) {
  const GF2m f = GF2m::standard(8);
  for (Elem c : {1u, 2u, 3u, 0x53u, 0xffu}) {
    EXPECT_EQ(multiplier_matrix(f, c).rank(), 8u) << "c=" << c;
  }
  EXPECT_EQ(multiplier_matrix(f, 0).rank(), 0u);
}

TEST(XorNetwork, EvalOfEmptyNetworkIsGround) {
  XorNetwork net;
  net.inputs = 4;
  net.outputs = {XorNetwork::kGroundSignal, 0, 1, 2};
  EXPECT_EQ(net.eval(0b1111), 0b1110u);
  EXPECT_EQ(net.depth(), 0u);
}

TEST(SynthesizeNaive, RealizesTheMatrix) {
  const GF2m f(0b10011);
  for (Elem c = 1; c < 16; ++c) {
    const MatrixGF2 mat = multiplier_matrix(f, c);
    const XorNetwork net = synthesize_naive(mat);
    for (Elem x = 0; x < 16; ++x) {
      EXPECT_EQ(net.eval(x), f.mul(c, x)) << "c=" << +c << " x=" << +x;
    }
  }
}

TEST(SynthesizeCse, RealizesTheMatrix) {
  const GF2m f(0b10011);
  for (Elem c = 1; c < 16; ++c) {
    const MatrixGF2 mat = multiplier_matrix(f, c);
    const XorNetwork net = synthesize_cse(mat);
    for (Elem x = 0; x < 16; ++x) {
      EXPECT_EQ(net.eval(x), f.mul(c, x)) << "c=" << +c << " x=" << +x;
    }
  }
}

TEST(SynthesizeCse, NeverWorseThanNaive) {
  for (unsigned m : {4u, 8u}) {
    const GF2m f = GF2m::standard(m);
    for (Elem c = 1; c < f.size(); ++c) {
      const MatrixGF2 mat = multiplier_matrix(f, c);
      EXPECT_LE(synthesize_cse(mat).gate_count(),
                synthesize_naive(mat).gate_count())
          << "m=" << m << " c=" << +c;
    }
  }
}

TEST(SynthesizeCse, SharesCommonPairs) {
  // Matrix with rows {x0^x1^x2, x0^x1^x3}: naive needs 4 gates, CSE
  // materializes x0^x1 once -> 3 gates.
  MatrixGF2 mat(2, 4);
  mat.set(0, 0, true);
  mat.set(0, 1, true);
  mat.set(0, 2, true);
  mat.set(1, 0, true);
  mat.set(1, 1, true);
  mat.set(1, 3, true);
  EXPECT_EQ(synthesize_naive(mat).gate_count(), 4u);
  const XorNetwork cse = synthesize_cse(mat);
  EXPECT_EQ(cse.gate_count(), 3u);
  for (std::uint64_t x = 0; x < 16; ++x) {
    unsigned r0 = ((x >> 0) ^ (x >> 1) ^ (x >> 2)) & 1U;
    unsigned r1 = ((x >> 0) ^ (x >> 1) ^ (x >> 3)) & 1U;
    EXPECT_EQ(cse.eval(x), (static_cast<std::uint64_t>(r1) << 1) | r0);
  }
}

TEST(SynthesizeNaive, SingleTapRowNeedsNoGates) {
  // Multiplying by 1 is wiring only.
  const GF2m f(0b10011);
  const XorNetwork net = synthesize_naive(multiplier_matrix(f, 1));
  EXPECT_EQ(net.gate_count(), 0u);
  EXPECT_EQ(net.depth(), 0u);
}

TEST(XorNetworkDepth, BalancedTreeDepthIsLogarithmic) {
  // A row XORing 8 inputs must have depth 3 with balanced trees.
  MatrixGF2 mat(1, 8);
  for (std::size_t c = 0; c < 8; ++c) mat.set(0, c, true);
  const XorNetwork net = synthesize_naive(mat);
  EXPECT_EQ(net.gate_count(), 7u);
  EXPECT_EQ(net.depth(), 3u);
}

TEST(FeedbackCost, PaperGenerator) {
  // g = 1 + 2x + 2x^2 over GF(16): two multiplications by 2 plus one
  // word adder (4 XORs).  Multiplying by z in GF(16)/z^4+z+1 is one XOR
  // (bit3 folds into bits 0 and 1 -> matrix rows with 2 taps on two
  // rows): count whatever CSE finds, but the total must stay small and
  // the adder contributes exactly (2-1)*4.
  const GF2m f(0b10011);
  const FeedbackCost cost = feedback_cost(f, {1, 2, 2});
  EXPECT_EQ(cost.adder_gates, 4u);
  EXPECT_GT(cost.multiplier_gates, 0u);
  EXPECT_LE(cost.multiplier_gates, 8u);
}

TEST(FeedbackCost, UnitCoefficientsNeedOnlyAdders) {
  const GF2m f2(0b11);
  // BOM g = 1 + x + x^2: w = r1 ^ r2, one 1-bit adder.
  const FeedbackCost cost = feedback_cost(f2, {1, 1, 1});
  EXPECT_EQ(cost.multiplier_gates, 0u);
  EXPECT_EQ(cost.adder_gates, 1u);
  EXPECT_EQ(cost.total(), 1u);
}

TEST(FeedbackCost, CheckerboardGeneratorIsFree) {
  // g = 1 + x^2: w = r_oldest, pure wiring.
  const GF2m f2(0b11);
  const FeedbackCost cost = feedback_cost(f2, {1, 0, 1});
  EXPECT_EQ(cost.total(), 0u);
}

// Exhaustive verification sweep: every constant of GF(2^m) for several
// fields, both synthesizers, checked against field arithmetic.
class SynthesisSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SynthesisSweep, AllConstantsAllInputs) {
  const GF2m f = GF2m::standard(GetParam());
  for (Elem c = 0; c < f.size(); ++c) {
    const MatrixGF2 mat = multiplier_matrix(f, c);
    const XorNetwork naive = synthesize_naive(mat);
    const XorNetwork cse = synthesize_cse(mat);
    for (Elem x = 0; x < f.size(); ++x) {
      const Elem want = f.mul(c, x);
      ASSERT_EQ(naive.eval(x), want);
      ASSERT_EQ(cse.eval(x), want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, SynthesisSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace prt::gf
