#include "march/march_runner.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace prt::march {

namespace {

/// Applies one March element at a single address, updating the result.
void apply_ops(const MarchElement& elem, mem::Memory& memory,
               mem::Addr addr, mem::Word bg, MarchResult& result) {
  const mem::Word mask = memory.word_mask();
  for (const MarchOp& op : elem.ops) {
    const mem::Word data = (op.data == 0 ? bg : ~bg) & mask;
    if (op.is_read()) {
      const mem::Word got = memory.read(addr, 0);
      ++result.ops;
      if (got != data) {
        if (!result.fail) {
          result.first_addr = addr;
          result.first_expected = data;
          result.first_actual = got;
        }
        result.fail = true;
        ++result.mismatches;
      }
    } else {
      memory.write(addr, data, 0);
      ++result.ops;
    }
  }
}

}  // namespace

MarchResult run_march(const MarchTest& test, mem::Memory& memory,
                      mem::Word background, std::uint64_t delay_ticks) {
  MarchResult result;
  const mem::Addr n = memory.size();
  for (const MarchElement& elem : test.elements) {
    if (elem.is_delay) {
      memory.advance_time(delay_ticks);
      continue;
    }
    if (elem.order == Order::kDown) {
      for (mem::Addr i = n; i-- > 0;) {
        apply_ops(elem, memory, i, background, result);
      }
    } else {
      for (mem::Addr i = 0; i < n; ++i) {
        apply_ops(elem, memory, i, background, result);
      }
    }
  }
  return result;
}

std::uint64_t run_march_packed(const MarchTest& test,
                               mem::PackedFaultRam& ram, bool background,
                               std::uint64_t delay_ticks) {
  const mem::LaneWord zero_data = background ? ~mem::LaneWord{0} : 0;
  std::uint64_t mismatch = 0;
  const mem::Addr n = ram.size();
  // One element applied completely at one address, all lanes at once.
  auto apply_ops = [&](const MarchElement& elem, mem::Addr addr) {
    for (const MarchOp& op : elem.ops) {
      const mem::LaneWord data = op.data == 0 ? zero_data : ~zero_data;
      if (op.is_read()) {
        mismatch |= ram.read(addr) ^ data;
      } else {
        ram.write(addr, data);
      }
    }
  };
  for (const MarchElement& elem : test.elements) {
    if (elem.is_delay) {
      ram.advance_time(delay_ticks);
      continue;
    }
    if (elem.order == Order::kDown) {
      for (mem::Addr i = n; i-- > 0;) apply_ops(elem, i);
    } else {
      for (mem::Addr i = 0; i < n; ++i) apply_ops(elem, i);
    }
  }
  return mismatch;
}

MarchResult run_march_backgrounds(const MarchTest& test, mem::Memory& memory,
                                  const std::vector<mem::Word>& backgrounds) {
  assert(!backgrounds.empty());
  MarchResult merged;
  for (mem::Word bg : backgrounds) {
    const MarchResult r = run_march(test, memory, bg);
    merged.ops += r.ops;
    merged.mismatches += r.mismatches;
    if (r.fail && !merged.fail) {
      merged.fail = true;
      merged.first_addr = r.first_addr;
      merged.first_expected = r.first_expected;
      merged.first_actual = r.first_actual;
    }
  }
  return merged;
}

std::vector<mem::Word> standard_backgrounds(unsigned m) {
  assert(m >= 1 && m <= 32);
  std::vector<mem::Word> bgs{0};
  // Stripe widths 1, 2, 4, ... < m produce the checkerboard family.
  for (unsigned stripe = 1; stripe < m; stripe <<= 1) {
    mem::Word bg = 0;
    for (unsigned bit = 0; bit < m; ++bit) {
      if ((bit / stripe) & 1U) bg |= mem::Word{1} << bit;
    }
    bgs.push_back(bg);
  }
  return bgs;
}

}  // namespace prt::march
