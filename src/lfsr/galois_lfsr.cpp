#include "lfsr/galois_lfsr.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace prt::lfsr {

GaloisLfsr::GaloisLfsr(gf::Poly2 poly)
    : poly_(poly),
      width_(static_cast<unsigned>(poly_degree(poly))),
      taps_((poly ^ (gf::Poly2{1} << width_)) & low_mask(width_)) {
  assert(width_ >= 1 && width_ <= 63);
  assert((poly & 1) != 0 && "constant term required for a full cycle");
}

void GaloisLfsr::seed(std::uint64_t s) { state_ = s & low_mask(width_); }

unsigned GaloisLfsr::step() {
  const unsigned out = static_cast<unsigned>(state_ & 1U);
  state_ >>= 1;
  if (out) state_ ^= (taps_ >> 1) | (std::uint64_t{1} << (width_ - 1));
  return out;
}

std::uint64_t GaloisLfsr::cycle_length(std::uint64_t cap) const {
  GaloisLfsr probe = *this;
  const std::uint64_t start = probe.state_;
  for (std::uint64_t t = 1; t <= cap; ++t) {
    probe.step();
    if (probe.state_ == start) return t;
  }
  return 0;
}

}  // namespace prt::lfsr
