// Small bit-manipulation helpers shared across the library.
#pragma once

#include <bit>
#include <cstdint>

namespace prt {

/// Parity (XOR of all bits) of v: 1 if the popcount is odd.
constexpr std::uint32_t parity64(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::popcount(v) & 1);
}

/// Extracts bit `pos` of `v` as 0/1.
constexpr std::uint32_t bit_of(std::uint64_t v, unsigned pos) {
  return static_cast<std::uint32_t>((v >> pos) & 1U);
}

/// Returns v with bit `pos` forced to `value` (0 or 1).
constexpr std::uint64_t with_bit(std::uint64_t v, unsigned pos,
                                 std::uint32_t value) {
  const std::uint64_t mask = std::uint64_t{1} << pos;
  return value ? (v | mask) : (v & ~mask);
}

/// Mask with the low `n` bits set; n may be 0..64.
constexpr std::uint64_t low_mask(unsigned n) {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Degree of a GF(2) polynomial stored as a bit mask (bit i = coefficient
/// of x^i).  Degree of the zero polynomial is defined as -1.
constexpr int poly_degree(std::uint64_t p) {
  return p == 0 ? -1 : 63 - std::countl_zero(p);
}

/// True if v is a power of two (v != 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer ceil(log2(v)) for v >= 1.
constexpr unsigned ceil_log2(std::uint64_t v) {
  return v <= 1 ? 0
               : static_cast<unsigned>(64 - std::countl_zero(v - 1));
}

}  // namespace prt
