// Cycle-accurate model of the on-chip PRT BIST controller (§4).
//
// Where PiTester expresses the pi-iteration as an algorithm, this class
// models the *hardware* the paper's overhead argument counts: an
// address counter, k m-bit window registers, the feedback network
// synthesized as an actual XOR netlist (gf/const_mult — evaluated
// gate-by-gate, not with field arithmetic), and the Init/Fin
// comparator.  One clock() call performs exactly one memory operation,
// so the cycle count of a run *is* the §3 complexity measure, and
// equivalence with PiTester (tests/test_bist_controller.cpp) validates
// that the netlist view and the algebraic view agree everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trajectory.hpp"
#include "gf/const_mult.hpp"
#include "gf/gf2m.hpp"
#include "lfsr/lfsr.hpp"
#include "mem/memory.hpp"

namespace prt::core {

/// Controller FSM states, one memory operation per clock in every
/// state except kIdle/kDone.
enum class BistState : std::uint8_t {
  kIdle,      // not started
  kInit,      // writing the k seed cells
  kRead,      // filling the window registers (k reads per sub-iteration)
  kWrite,     // writing the feedback value
  kFinRead,   // reading back the last k cells
  kInitRead,  // re-reading the first k cells
  kDone,      // verdict valid
};

class BistController {
 public:
  /// Builds the controller for the virtual LFSR g (g0..gk) over the
  /// field, seeded with `init` (size k), sweeping the given trajectory.
  /// The expected Fin* register is pre-loaded from the LFSR model
  /// (in silicon it is loaded by the tester / computed by a shadow
  /// LFSR); the feedback network is the CSE-synthesized XOR netlist.
  BistController(gf::GF2m field, std::vector<gf::Elem> g,
                 std::vector<gf::Elem> init, Trajectory trajectory);

  [[nodiscard]] BistState state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == BistState::kDone; }
  /// Verdict; valid when done(): Init/Fin read-backs matched.
  [[nodiscard]] bool pass() const { return done() && pass_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Advances one clock: issues exactly one memory operation (or
  /// finishes).  Precondition: memory geometry matches the trajectory
  /// length and the field width.
  void clock(mem::Memory& memory);

  /// Convenience: clocks until done; returns pass().
  bool run(mem::Memory& memory);

  /// Number of XOR gates in the synthesized feedback netlist (the
  /// "specific XOR-logic" of §4).
  [[nodiscard]] std::size_t feedback_gates() const;

 private:
  /// Evaluates the feedback netlists on the window registers.
  [[nodiscard]] gf::Elem feedback_value() const;

  gf::GF2m field_;
  std::vector<gf::Elem> g_;
  unsigned k_;
  Trajectory trajectory_;
  std::vector<gf::Elem> init_;

  // Synthesized multiplier netlists per tap (empty network = wire for
  // coefficient 1, ground for coefficient 0).
  std::vector<gf::XorNetwork> tap_networks_;  // index j-1 for g_j

  // Datapath registers.
  std::vector<gf::Elem> window_;  // k window registers, oldest first
  std::vector<gf::Elem> fin_expected_;

  // FSM registers.
  BistState state_ = BistState::kIdle;
  mem::Addr position_ = 0;  // sweep position q
  unsigned phase_ = 0;      // sub-counter inside a state
  std::uint64_t cycles_ = 0;
  bool pass_ = true;
};

}  // namespace prt::core
