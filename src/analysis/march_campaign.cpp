#include "analysis/march_campaign.hpp"

#include <utility>

#include "analysis/campaign_shard.hpp"
#include "mem/fault_injector.hpp"
#include "mem/packed_fault_ram.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis {

MarchCampaign::MarchCampaign(march::MarchTest test,
                             const CampaignOptions& opt,
                             const MarchEngineOptions& engine)
    : test_(std::move(test)),
      opt_(opt),
      engine_(engine),
      backgrounds_(march::standard_backgrounds(opt.m)) {
  // m = 1 has the single background 0, so one compiled transcript
  // covers the whole background set march_algorithm runs.
  if (opt_.m == 1) {
    transcript_ =
        march::make_march_transcript(test_, opt_.n, /*background=*/false);
  }
}

MarchCampaign::~MarchCampaign() = default;

void MarchCampaign::run_shard(std::span<const mem::Fault> universe,
                              std::size_t begin, std::size_t end,
                              CampaignResult& out) const {
  mem::FaultyRam ram(opt_.n, opt_.m, opt_.ports);
  const march::MarchRunOptions run_opts{.early_abort = engine_.early_abort};
  auto run_scalar = [&](std::size_t i) {
    ram.reset(universe[i]);
    // m = 1 replays the compiled transcript (devirtualized FaultyRam,
    // no element/op re-derivation); wider words sweep the live
    // background set.
    const bool detected =
        opt_.m == 1
            ? march::run_march_transcript(ram, transcript_, run_opts).fail
            : march::run_march_backgrounds(test_, ram, backgrounds_, run_opts)
                  .fail;
    out.ops += ram.total_stats().total();
    return detected;
  };

  if (!packed_enabled()) {
    detail::scalar_shard(universe, begin, end, out, run_scalar);
    return;
  }

  mem::PackedFaultRam packed(opt_.n);
  auto run_batch = [&](mem::PackedFaultRam& batch) {
    const march::MarchPackedVerdict v =
        march::run_march_packed(batch, transcript_, run_opts);
    // scalar_ops reproduces, per lane, exactly what the scalar path
    // would have issued for that fault: everything up to and including
    // the first mismatching read under early_abort, the full test
    // otherwise.
    return std::pair{v.detected & batch.active_mask(), v.scalar_ops};
  };
  detail::lane_batched_shard(universe, begin, end, packed, out, run_batch,
                             run_scalar);
}

CampaignResult MarchCampaign::run(
    std::span<const mem::Fault> universe) const {
  const unsigned workers =
      engine_.threads != 0 ? engine_.threads : util::default_worker_count();
  return detail::run_sharded(
      universe.size(), workers, engine_.parallel, pool_,
      [&](std::size_t begin, std::size_t end, CampaignResult& out) {
        run_shard(universe, begin, end, out);
      });
}

CampaignResult run_march_campaign(std::span<const mem::Fault> universe,
                                  march::MarchTest test,
                                  const CampaignOptions& opt,
                                  const MarchEngineOptions& engine) {
  return MarchCampaign(std::move(test), opt, engine).run(universe);
}

}  // namespace prt::analysis
