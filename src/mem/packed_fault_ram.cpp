#include "mem/packed_fault_ram.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace prt::mem {

bool lane_compatible(const Fault& fault, unsigned width) {
  if (fault.victim.bit >= width) return false;
  switch (fault.kind) {
    case FaultKind::kSaf0:
    case FaultKind::kSaf1:
    case FaultKind::kTfUp:
    case FaultKind::kTfDown:
    case FaultKind::kWdf:
    case FaultKind::kRdf:
    case FaultKind::kDrdf:
    case FaultKind::kIrf:
    case FaultKind::kSof:
      return true;
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1:
      // A trigger state beyond {0, 1} can never match a stored bit;
      // FaultyRam treats such a fault as inert, so leave it on the
      // scalar reference path instead of teaching the lanes a
      // degenerate encoding.
      if (fault.state > 1) return false;
      [[fallthrough]];
    case FaultKind::kCfIn:
    case FaultKind::kCfIdUp0:
    case FaultKind::kCfIdUp1:
    case FaultKind::kCfIdDown0:
    case FaultKind::kCfIdDown1:
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr:
      // Both halves of the pair live on bit planes of the same lane.
      return fault.aggressor.bit < width;
    case FaultKind::kAfNoAccess:
    case FaultKind::kAfWrongAccess:
    case FaultKind::kAfMultiAccess:
      // One fault per lane: the remap touches exactly one address and
      // at most one alias cell — a per-lane scatter, like coupling.
      return true;
    case FaultKind::kNpsfStatic:
      // The 5-cell neighbourhood is per-lane metadata just like an
      // aggressor/victim pair; incomplete neighbourhoods (border
      // victim, no grid) are inert in FaultyRam and consume a lane
      // that simply never fires.
      return true;
    case FaultKind::kDrf:
      // Decay advances analytically on the packed clock; delay == 0 is
      // rejected at add_fault, mirroring FaultyRam::inject.
      return true;
    default:
      return false;
  }
}

template <typename W>
PackedFaultRamT<W>::PackedFaultRamT(Addr cells, unsigned width)
    : size_(cells),
      width_(width),
      data_(static_cast<std::size_t>(cells) * width, W{}),
      slot_of_site_(static_cast<std::size_t>(cells) * width, -1) {
  if (cells < 1) {
    throw std::invalid_argument("PackedFaultRam: cells must be >= 1");
  }
  if (width < 1 || width > kMaxWidth) {
    throw std::invalid_argument("PackedFaultRam: width must be in [1, 32]");
  }
  // A typical mixed batch touches a handful of sites per lane; the
  // wide instantiations cap the reserve so one batch ram stays a few
  // hundred KB and grows amortized past it instead.
  const std::size_t reserve = 6 * std::min<unsigned>(kLanes, 64);
  slots_.reserve(reserve);
  dirty_sites_.reserve(reserve);
}

template <typename W>
void PackedFaultRamT<W>::reset() {
  std::fill(data_.begin(), data_.end(), W{});
  for (const std::size_t site : dirty_sites_) slot_of_site_[site] = -1;
  slots_.clear();
  dirty_sites_.clear();
  forced1_ = W{};
  cfst_state1_ = W{};
  bridge_or_ = W{};
  npsf_lanes_ = W{};
  npat_.fill(W{});
  nval_.fill(W{});
  npsf_forced1_ = W{};
  drf_decay1_ = W{};
  drf_refreshed_.fill(0);
  drf_delay_.fill(0);
  lanes_used_ = 0;
  has_two_cell_ = false;
  has_af_ = false;
  has_npsf_ = false;
  has_drf_ = false;
  last_read_.fill(W{});
  reads_ = 0;
  writes_ = 0;
  idle_ticks_ = 0;
}

template <typename W>
typename PackedFaultRamT<W>::CellFaults& PackedFaultRamT<W>::slot_for(
    std::size_t site) {
  if (slot_of_site_[site] < 0) {
    slot_of_site_[site] = static_cast<std::int16_t>(slots_.size());
    slots_.emplace_back();
    dirty_sites_.push_back(site);
  }
  return slots_[static_cast<std::size_t>(slot_of_site_[site])];
}

template <typename W>
unsigned PackedFaultRamT<W>::add_fault(const Fault& fault) {
  if (!lane_compatible(fault, width_)) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: fault is not lane-compatible: " +
        fault.describe());
  }
  if (fault.victim.cell >= size_) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: victim out of range: " +
        fault.describe());
  }
  if (is_coupling(fault.kind)) {
    if (fault.aggressor.cell >= size_) {
      throw std::invalid_argument(
          "PackedFaultRam::add_fault: aggressor out of range: " +
          fault.describe());
    }
    if (fault.aggressor == fault.victim) {
      throw std::invalid_argument(
          "PackedFaultRam::add_fault: aggressor must differ from victim: " +
          fault.describe());
    }
  }
  if ((fault.kind == FaultKind::kAfWrongAccess ||
       fault.kind == FaultKind::kAfMultiAccess) &&
      fault.alias >= size_) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: alias out of range: " + fault.describe());
  }
  if (fault.kind == FaultKind::kDrf && fault.delay == 0) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: retention fault needs delay > 0: " +
        fault.describe());
  }
  if (lanes_used_ >= kLanes) {
    throw std::length_error("PackedFaultRam::add_fault: all lanes taken");
  }
  const unsigned lane = lanes_used_++;
  has_two_cell_ = has_two_cell_ || is_coupling(fault.kind);
  const W mask = lane_bit<W>(lane);
  const std::size_t vic = site_of(fault.victim.cell, fault.victim.bit);
  const std::size_t agg = site_of(fault.aggressor.cell, fault.aggressor.bit);
  // Forces a site's lane bit to `value`, the packed equivalent of
  // FaultyRam's injection-time condition enforcement.
  auto force_bit = [&](std::size_t site, unsigned value) {
    lane_assign(data_[site], lane, value != 0);
  };
  switch (fault.kind) {
    case FaultKind::kSaf0:
      slot_for(vic).saf0 |= mask;
      // Stuck-at victims hold from injection, matching FaultyRam.
      force_bit(vic, 0);
      break;
    case FaultKind::kSaf1:
      slot_for(vic).saf1 |= mask;
      force_bit(vic, 1);
      break;
    case FaultKind::kTfUp:
      slot_for(vic).tf_up |= mask;
      break;
    case FaultKind::kTfDown:
      slot_for(vic).tf_down |= mask;
      break;
    case FaultKind::kWdf:
      slot_for(vic).wdf |= mask;
      break;
    case FaultKind::kRdf:
      slot_for(vic).rdf |= mask;
      break;
    case FaultKind::kDrdf:
      slot_for(vic).drdf |= mask;
      break;
    case FaultKind::kIrf:
      slot_for(vic).irf |= mask;
      break;
    case FaultKind::kSof:
      slot_for(vic).sof |= mask;
      break;
    case FaultKind::kCfIn:
      slot_for(agg).cfin |= mask;
      lane_victim_[lane] = vic;
      break;
    case FaultKind::kCfIdUp0:
    case FaultKind::kCfIdUp1:
      slot_for(agg).cfid_up |= mask;
      lane_victim_[lane] = vic;
      if (fault.kind == FaultKind::kCfIdUp1) forced1_ |= mask;
      break;
    case FaultKind::kCfIdDown0:
    case FaultKind::kCfIdDown1:
      slot_for(agg).cfid_down |= mask;
      lane_victim_[lane] = vic;
      if (fault.kind == FaultKind::kCfIdDown1) forced1_ |= mask;
      break;
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1: {
      slot_for(agg).cfst_agg |= mask;
      slot_for(vic).cfst_vic |= mask;
      lane_victim_[lane] = vic;
      lane_aggressor_[lane] = agg;
      const unsigned forced = fault.kind == FaultKind::kCfSt1 ? 1U : 0U;
      if (forced) forced1_ |= mask;
      if (fault.state & 1U) cfst_state1_ |= mask;
      // A freshly injected state condition is enforced against the
      // current contents immediately (a defect's effect holds from the
      // moment it exists).
      if (lane_test(data_[agg], lane) == ((fault.state & 1U) != 0)) {
        force_bit(vic, forced);
      }
      break;
    }
    case FaultKind::kAfNoAccess:
    case FaultKind::kAfWrongAccess:
    case FaultKind::kAfMultiAccess: {
      // Decoder faults remap the whole word access, so the masks go on
      // every site of the faulty address.
      for (unsigned p = 0; p < width_; ++p) {
        CellFaults& s = slot_for(site_of(fault.victim.cell, p));
        if (fault.kind == FaultKind::kAfNoAccess) {
          s.af_no |= mask;
        } else if (fault.kind == FaultKind::kAfWrongAccess) {
          s.af_wrong |= mask;
        } else {
          s.af_multi |= mask;
        }
      }
      if (fault.kind != FaultKind::kAfNoAccess) {
        lane_victim_[lane] = fault.alias;  // alias *cell*, plane per access
      }
      has_af_ = true;
      break;
    }
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr: {
      slot_for(vic).bridge |= mask;
      slot_for(agg).bridge |= mask;
      lane_victim_[lane] = vic;
      lane_aggressor_[lane] = agg;
      const bool wired_or = fault.kind == FaultKind::kBridgeOr;
      if (wired_or) bridge_or_ |= mask;
      const bool a = lane_test(data_[vic], lane);
      const bool b = lane_test(data_[agg], lane);
      const unsigned tied =
          static_cast<unsigned>(wired_or ? (a || b) : (a && b));
      force_bit(vic, tied);
      force_bit(agg, tied);
      break;
    }
    case FaultKind::kNpsfStatic: {
      // Type-1 five-cell static NPSF.  An incomplete neighbourhood is
      // inert in FaultyRam (enforce_conditions breaks before the
      // pattern test), so the lane is consumed but registers nothing
      // and never mismatches.
      const Addr cols = fault.grid_cols;
      const Addr v = fault.victim.cell;
      bool inert = cols == 0 || fault.pattern > 15;
      if (!inert) {
        const Addr row = v / cols;
        const Addr col = v % cols;
        inert = row == 0 || col == 0 || col + 1 >= cols || v + cols >= size_;
      }
      if (inert) break;
      const unsigned plane = fault.victim.bit;
      const std::size_t north = site_of(v - cols, plane);
      const std::size_t east = site_of(v + 1, plane);
      const std::size_t south = site_of(v + cols, plane);
      const std::size_t west = site_of(v - 1, plane);
      slot_for(north).npsf_n |= mask;
      slot_for(east).npsf_e |= mask;
      slot_for(south).npsf_s |= mask;
      slot_for(west).npsf_w |= mask;
      slot_for(vic).npsf_vic |= mask;
      lane_victim_[lane] = vic;
      npsf_lanes_ |= mask;
      has_npsf_ = true;
      if (fault.state & 1U) npsf_forced1_ |= mask;
      // Pattern bits are (N << 3) | (E << 2) | (S << 1) | W, matching
      // FaultyRam::enforce_conditions.
      if (fault.pattern & 8U) npat_[0] |= mask;
      if (fault.pattern & 4U) npat_[1] |= mask;
      if (fault.pattern & 2U) npat_[2] |= mask;
      if (fault.pattern & 1U) npat_[3] |= mask;
      // Seed the neighbour-value caches from the current contents (the
      // lane is fresh, so its cache bits start clear) and enforce the
      // freshly injected condition immediately.
      if (lane_test(data_[north], lane)) nval_[0] |= mask;
      if (lane_test(data_[east], lane)) nval_[1] |= mask;
      if (lane_test(data_[south], lane)) nval_[2] |= mask;
      if (lane_test(data_[west], lane)) nval_[3] |= mask;
      const W mismatched = ((nval_[0] ^ npat_[0]) | (nval_[1] ^ npat_[1]) |
                            (nval_[2] ^ npat_[2]) | (nval_[3] ^ npat_[3])) &
                           mask;
      if (!lane_any(mismatched)) {
        force_bit(vic, static_cast<unsigned>(fault.state & 1U));
      }
      break;
    }
    case FaultKind::kDrf: {
      slot_for(vic).drf |= mask;
      lane_victim_[lane] = vic;
      // The charge is stamped with the current clock, like FaultyRam's
      // refreshed_at_.push_back(clock_) at inject.
      drf_refreshed_[lane] = clock();
      drf_delay_[lane] = fault.delay;
      if (fault.state & 1U) drf_decay1_ |= mask;
      has_drf_ = true;
      break;
    }
    default:
      break;  // unreachable: lane_compatible() filtered
  }
  return lane;
}

template <typename W>
void PackedFaultRamT<W>::read_word(Addr cell, W* out) {
  assert(cell < size_);
  ++reads_;
  const std::size_t base = static_cast<std::size_t>(cell) * width_;
  for (unsigned p = 0; p < width_; ++p) {
    const std::size_t site = base + p;
    const std::int16_t slot = slot_of_site_[site];
    W value;
    if (slot >= 0) {
      const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
      if (has_drf_ && lane_any(f.drf)) apply_retention(site, f.drf);
      value = data_[site];
      value ^= f.rdf;
      data_[site] = value ^ f.drdf;
      value ^= f.irf;
      value = (value & ~f.sof) | (last_read_[p] & f.sof);
      if (has_af_) {
        value &= ~f.af_no;
        if (lane_any(f.af_wrong | f.af_multi)) {
          value = apply_af_read(value, f, p);
        }
      }
    } else {
      value = data_[site];
    }
    out[p] = value;
  }
  // The sense-amp history updates with the whole returned word, after
  // every plane's patches (FaultyRam stores last_read_ once per read).
  for (unsigned p = 0; p < width_; ++p) last_read_[p] = out[p];
}

template <typename W>
void PackedFaultRamT<W>::write_word(Addr cell, const W* planes) {
  assert(cell < size_);
  ++writes_;
  const std::size_t base = static_cast<std::size_t>(cell) * width_;
  std::array<W, kMaxWidth> old{};
  std::array<W, kMaxWidth> landed{};
  bool any_slot = false;
  // Phase 1: land every plane (WDF/TF/SAF per site, decoder
  // suppression) without firing coupling, so intra-word aggressor
  // transitions see their victims' *new* values — all bits of a word
  // write switch together (FaultyRam::physical_write does the same).
  for (unsigned p = 0; p < width_; ++p) {
    const std::size_t site = base + p;
    const W o = data_[site];
    old[p] = o;
    W nb = planes[p];
    const std::int16_t slot = slot_of_site_[site];
    if (slot < 0) {
      data_[site] = nb;
      landed[p] = nb;
      continue;
    }
    any_slot = true;
    const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
    nb ^= f.wdf & ~(o ^ nb);
    nb &= ~(f.tf_up & ~o);
    nb |= f.tf_down & o;
    nb = (nb & ~f.saf0) | f.saf1;
    if (has_af_) {
      const W suppressed = f.af_no | f.af_wrong;
      nb = (nb & ~suppressed) | (o & suppressed);
      data_[site] = nb;
      if (lane_any(f.af_wrong | f.af_multi)) apply_af_write(planes[p], f, p);
    } else {
      data_[site] = nb;
    }
    landed[p] = nb;
    if (has_drf_ && lane_any(f.drf)) refresh_retention(f.drf);
  }
  if (!any_slot || !(has_two_cell_ || has_npsf_)) return;
  // Phase 2: coupling fires per plane in ascending order against the
  // landed values (not the post-coupling state — FaultyRam computes
  // its transition set from `old` vs `landed` too), then the NPSF
  // neighbourhood re-check runs for every touched site.
  for (unsigned p = 0; p < width_; ++p) {
    const std::size_t site = base + p;
    const std::int16_t slot = slot_of_site_[site];
    if (slot < 0) continue;
    const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
    if (has_two_cell_ && lane_any(f.coupling_any())) {
      apply_coupling(site, old[p], landed[p], f);
    }
  }
  if (has_npsf_) {
    for (unsigned p = 0; p < width_; ++p) {
      const std::size_t site = base + p;
      const std::int16_t slot = slot_of_site_[site];
      if (slot < 0) continue;
      const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
      if (lane_any(f.npsf_any())) apply_npsf(site, f);
    }
  }
}

template <typename W>
W PackedFaultRamT<W>::apply_af_read(W value, const CellFaults& f,
                                    unsigned plane) {
  // Per-lane scatter over the few decoder lanes remapping this cell.
  for_each_set_lane(f.af_wrong, [&](unsigned lane) {
    const W bit = lane_bit<W>(lane);
    const std::size_t alias =
        site_of(static_cast<Addr>(lane_victim_[lane]), plane);
    // Wrong access: the sense amp sees the alias cell.
    value = (value & ~bit) | (data_[alias] & bit);
  });
  for_each_set_lane(f.af_multi, [&](unsigned lane) {
    const W bit = lane_bit<W>(lane);
    const std::size_t alias =
        site_of(static_cast<Addr>(lane_victim_[lane]), plane);
    // Multi access: wired-AND of the addressed cell (already in
    // `value` — AF lanes carry no read-logic fault) and the alias.
    value &= ~bit | data_[alias];
  });
  return value;
}

template <typename W>
void PackedFaultRamT<W>::apply_af_write(const W& value, const CellFaults& f,
                                        unsigned plane) {
  for_each_set_lane(f.af_wrong | f.af_multi, [&](unsigned lane) {
    const W bit = lane_bit<W>(lane);
    const std::size_t alias =
        site_of(static_cast<Addr>(lane_victim_[lane]), plane);
    data_[alias] = (data_[alias] & ~bit) | (value & bit);
  });
}

template <typename W>
void PackedFaultRamT<W>::apply_retention(std::size_t site, const W& m) {
  const std::uint64_t now = clock();
  for_each_set_lane(m, [&](unsigned lane) {
    // Overflow-safe subtraction, same comparison FaultyRam uses; the
    // charge stamp is *not* refreshed, so the re-force is idempotent
    // until the next write.
    if (now - drf_refreshed_[lane] < drf_delay_[lane]) return;
    lane_assign(data_[site], lane, lane_test(drf_decay1_, lane));
  });
}

template <typename W>
void PackedFaultRamT<W>::refresh_retention(const W& m) {
  const std::uint64_t now = clock();
  for_each_set_lane(m, [&](unsigned lane) { drf_refreshed_[lane] = now; });
}

template <typename W>
void PackedFaultRamT<W>::apply_npsf(std::size_t site, const CellFaults& f) {
  // Refresh the direction caches for every lane whose neighbour is
  // this site, then match all lanes' patterns at once: a lane matches
  // when each cached neighbour value equals its pattern bit, i.e. when
  // it contributes no bit to any direction's XOR.
  const W v = data_[site];
  nval_[0] = (nval_[0] & ~f.npsf_n) | (v & f.npsf_n);
  nval_[1] = (nval_[1] & ~f.npsf_e) | (v & f.npsf_e);
  nval_[2] = (nval_[2] & ~f.npsf_s) | (v & f.npsf_s);
  nval_[3] = (nval_[3] & ~f.npsf_w) | (v & f.npsf_w);
  const W match =
      npsf_lanes_ & ~((nval_[0] ^ npat_[0]) | (nval_[1] ^ npat_[1]) |
                      (nval_[2] ^ npat_[2]) | (nval_[3] ^ npat_[3]));
  // Only lanes whose neighbourhood this write touched fire (FaultyRam's
  // `touched` test).  That is exact, not an optimisation: a lane whose
  // pattern already matched before this write had its victim forced
  // when the pattern last became true — nothing else can move an NPSF
  // lane's bits, because the lane holds no other fault.
  for_each_set_lane(match & f.npsf_any(), [&](unsigned lane) {
    const std::size_t vic = lane_victim_[lane];
    lane_assign(data_[vic], lane, lane_test(npsf_forced1_, lane));
  });
}

template <typename W>
void PackedFaultRamT<W>::apply_coupling(std::size_t site, const W& old,
                                        const W& now, const CellFaults& f) {
  // Per-lane scatter over the few lanes coupled to this site.  Lanes
  // are disjoint across the masks (one fault per lane), so the order
  // of the blocks is irrelevant.
  auto force = [&](std::size_t s, unsigned lane) {
    lane_assign(data_[s], lane, lane_test(forced1_, lane));
  };
  const W up = now & ~old;
  const W down = old & ~now;

  // CFin: any transition of this (aggressor) site inverts the victim.
  for_each_set_lane(f.cfin & (up | down), [&](unsigned lane) {
    data_[lane_victim_[lane]] ^= lane_bit<W>(lane);
  });

  // CFid: a matching-direction transition forces the victim.
  for_each_set_lane((f.cfid_up & up) | (f.cfid_down & down),
                    [&](unsigned lane) { force(lane_victim_[lane], lane); });

  // CFst, this site as aggressor: the condition is state-based, so it
  // is re-evaluated against the landed value on every write (matching
  // FaultyRam's enforce_conditions after each physical_write).
  for_each_set_lane(f.cfst_agg & ~(now ^ cfst_state1_),
                    [&](unsigned lane) { force(lane_victim_[lane], lane); });

  // CFst, this site as victim: a write under a holding condition is
  // forced straight back.
  for_each_set_lane(f.cfst_vic, [&](unsigned lane) {
    if (lane_test(data_[lane_aggressor_[lane]], lane) ==
        lane_test(cfst_state1_, lane)) {
      force(site, lane);
    }
  });

  // Bridge: tie both endpoints to the wired-AND/OR of their bits.
  for_each_set_lane(f.bridge, [&](unsigned lane) {
    const std::size_t other =
        site == lane_victim_[lane] ? lane_aggressor_[lane] : lane_victim_[lane];
    const bool a = lane_test(data_[site], lane);
    const bool b = lane_test(data_[other], lane);
    const bool tied = lane_test(bridge_or_, lane) ? (a || b) : (a && b);
    lane_assign(data_[site], lane, tied);
    lane_assign(data_[other], lane, tied);
  });
}

template class PackedFaultRamT<LaneWord>;
template class PackedFaultRamT<WideWord<4>>;
template class PackedFaultRamT<WideWord<8>>;

}  // namespace prt::mem
