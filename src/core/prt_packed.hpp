// Bit-parallel PRT evaluation over packed fault lanes.
//
// Over GF(2) every scheme value is a single bit, so the LFSR feedback
// sum_j g_j * window[k-j] degenerates to an XOR of the selected window
// entries — which is *lane-wise*: one lane-word XOR computes all
// packed memories' feedback at once, each from its own (possibly
// fault-corrupted) reads.  Word-oriented schemes (GF(2^m), m > 1) pack
// just as well: a cell is m bit planes, each constant-coefficient
// multiply is a GF(2)-linear map compiled into the transcript as an
// m x m tap matrix (PrtIterSpan::tap_rows), and the feedback becomes a
// handful of plane-wide XORs — the same XOR-only realization the paper
// proposes for the BIST hardware itself.  run_prt_packed replays the
// compiled op transcript of the scheme (core/op_transcript.hpp)
// against a mem::PackedFaultRamT: a tight stream over flat
// {addr, golden} records with no Trajectory::at(), no oracle
// indirection and no per-op dispatch, comparing each lane's observed
// Fin, Init read-back, verify-pass image and (bit-sliced) MISR
// signature against the golden values baked into the transcript,
// returning the per-lane detected mask.
//
// The whole replay is generic over the lane word W
// (mem/lane_word.hpp): the 64-lane std::uint64_t and the SIMD-width
// WideWord<4>/WideWord<8> share one definition, and a lane's verdict
// is identical at every width — the hot loop is pure lane-wise
// AND/OR/XOR, so widening the word only changes how many faults ride
// one sweep.
//
// Detection semantics per lane are identical to
// run_prt(FaultyRam, scheme, oracle).detected() for the same single
// fault — the parity tests in tests/test_packed_campaign.cpp and the
// lane-batching campaign layer (analysis/campaign_engine) rely on it.
//
// Per-lane early abort: a lane's mismatch latch is monotone, so the
// moment it is set the lane's verdict is final and the lane is retired
// from the pending mask.  With PackedRunOptions::early_abort the run
// stops as soon as every active lane is retired (at iteration
// boundaries, or mid-verify-pass once the mask saturates), and the
// reported scalar-equivalent op count reproduces exactly what
// run_prt(..., {.early_abort = true}) would have issued per lane:
// complete iterations up to and including the first failing one —
// analytic, from the transcript's per-iteration abort-op prefix sums.
#pragma once

#include <cstdint>
#include <vector>

#include "core/op_transcript.hpp"
#include "core/prt_engine.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt::core {

/// True when `scheme` can run bit-parallel: a structurally sane scheme
/// over GF(2^m) with m in [1, 16] — non-empty iterations, window width
/// k in [1, 64], seeds sized k, every coefficient and seed value a
/// field element.  GF(2) schemes replay on the single-plane hot loop;
/// word-oriented schemes (m > 1) ride m bit planes per cell, with each
/// constant-coefficient multiply compiled to its GF(2) tap matrix in
/// the transcript (tap_rows) so the feedback is still XOR-only.
/// Width-independent: packable means packable at any lane width.
[[nodiscard]] bool prt_scheme_packable(const PrtScheme& scheme);

struct PackedRunOptions {
  /// Retire lanes as their mismatch latches and stop the run once the
  /// detected mask saturates over the active lanes.  Detected masks
  /// are unchanged (the latch is monotone); scalar_ops shrinks to the
  /// per-lane scalar early-abort cost.
  bool early_abort = false;
};

/// Reusable replay scratch: the bit-sliced MISR state plus the word
/// path's plane buffers (read word, feedback accumulator — 2 * width
/// lane words; unused and unallocated on the GF(2) path, whose
/// feedback accumulates inline).  Campaign shard loops own one per
/// lane width and pass it to every batch instead of reallocating per
/// batch.
template <typename W>
struct PackedScratchT {
  std::vector<W> misr;
  std::vector<W> planes;
};

using PackedScratch = PackedScratchT<mem::LaneWord>;

/// Verdict of a packed run at lane width LaneTraits<W>::kLanes.
template <typename W>
struct PackedVerdictT {
  /// Lane L set means lane L's fault is detected.  Lanes beyond
  /// ram.lanes_used() simulate fault-free memories and never deviate,
  /// but callers should still AND with ram.active_mask().  Inspect
  /// single lanes through lane_detected() / mem::lane_test rather than
  /// shifting the raw word — the mask is width-generic.
  W detected{};
  /// Sum over the ram's *active* lanes of the ops a scalar
  /// run_prt(FaultyRam, scheme, oracle, {.early_abort}) would have
  /// issued for that lane's fault: complete iterations up to and
  /// including the first failing one under early_abort, the full
  /// scheme otherwise.  Campaigns charge this to CampaignResult::ops
  /// so packed accounting stays bit-identical to the scalar path.
  std::uint64_t scalar_ops = 0;

  /// Width-generic per-lane accessor: lane `lane`'s verdict.
  [[nodiscard]] bool lane_detected(unsigned lane) const {
    return mem::lane_test(detected, lane);
  }
  /// Number of detected lanes (callers AND with active_mask first when
  /// the ram is partially filled).
  [[nodiscard]] unsigned detected_count() const {
    return mem::lane_popcount(detected);
  }
};

using PackedVerdict = PackedVerdictT<mem::LaneWord>;

/// Replays a compiled PRT transcript against the packed ram — the
/// campaign hot loop, one instantiation per lane width.
/// Preconditions: transcript built by make_op_transcript for this
/// scheme with transcript.n == ram.size() and
/// transcript.width == ram.width().
template <typename W>
[[nodiscard]] PackedVerdictT<W> run_prt_packed(mem::PackedFaultRamT<W>& ram,
                                               const OpTranscript& transcript,
                                               const PackedRunOptions& options,
                                               PackedScratchT<W>& scratch);

extern template PackedVerdictT<mem::LaneWord> run_prt_packed(
    mem::PackedFaultRamT<mem::LaneWord>&, const OpTranscript&,
    const PackedRunOptions&, PackedScratchT<mem::LaneWord>&);
extern template PackedVerdictT<mem::WideWord<4>> run_prt_packed(
    mem::PackedFaultRamT<mem::WideWord<4>>&, const OpTranscript&,
    const PackedRunOptions&, PackedScratchT<mem::WideWord<4>>&);
extern template PackedVerdictT<mem::WideWord<8>> run_prt_packed(
    mem::PackedFaultRamT<mem::WideWord<8>>&, const OpTranscript&,
    const PackedRunOptions&, PackedScratchT<mem::WideWord<8>>&);

/// Oracle-based convenience overload: compiles the transcript on the
/// fly (one-shot callers, tests; 64-lane).  Preconditions:
/// prt_scheme_packable(scheme), oracle built by
/// make_prt_oracle(scheme, ram.size()).
[[nodiscard]] PackedVerdict run_prt_packed(mem::PackedFaultRam& ram,
                                           const PrtScheme& scheme,
                                           const PrtOracle& oracle,
                                           const PackedRunOptions& options);

/// Full-scheme convenience overload: returns just the detected mask of
/// a run without early abort (the packed op count ram.ops() then
/// equals the scalar per-fault op count of a complete run).
[[nodiscard]] std::uint64_t run_prt_packed(mem::PackedFaultRam& ram,
                                           const PrtScheme& scheme,
                                           const PrtOracle& oracle);

}  // namespace prt::core
