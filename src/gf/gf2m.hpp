// The finite field GF(2^m) in polynomial basis, constructed from an
// irreducible modulus p(z) over GF(2).  Elements are packed integers
// (bit i = coefficient of z^i), so "2" denotes the element z, matching
// the paper's notation g(x) = 1 + 2x + 2x^2 over GF(2^4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gf/gf2_poly.hpp"

namespace prt::gf {

/// A field element; only the low m bits are meaningful.
using Elem = std::uint32_t;

/// GF(2^m) with 1 <= m <= 16.  Construction validates irreducibility of
/// the modulus.  All operations are total on reduced elements
/// (value < 2^m); callers must not pass unreduced values.
class GF2m {
 public:
  /// Builds the field from an irreducible modulus.  Precondition:
  /// deg(modulus) in [1,16] and is_irreducible(modulus).
  explicit GF2m(Poly2 modulus);

  /// Convenience: the field GF(2^m) over the lexicographically first
  /// primitive polynomial of degree m.
  static GF2m standard(unsigned m);

  [[nodiscard]] unsigned m() const { return m_; }
  [[nodiscard]] Poly2 modulus() const { return modulus_; }
  /// Number of field elements, 2^m.
  [[nodiscard]] std::uint32_t size() const { return std::uint32_t{1} << m_; }
  /// Size of the multiplicative group, 2^m - 1.
  [[nodiscard]] std::uint32_t group_order() const { return size() - 1; }
  /// True if z generates the multiplicative group (modulus primitive).
  [[nodiscard]] bool z_is_primitive() const { return z_primitive_; }

  [[nodiscard]] Elem add(Elem a, Elem b) const { return a ^ b; }
  [[nodiscard]] Elem mul(Elem a, Elem b) const;
  /// a^e for integer e >= 0 (a != 0 when e == 0 yields 1; 0^0 == 1).
  [[nodiscard]] Elem pow(Elem a, std::uint64_t e) const;
  /// Multiplicative inverse; precondition a != 0.
  [[nodiscard]] Elem inv(Elem a) const;
  /// a / b; precondition b != 0.
  [[nodiscard]] Elem div(Elem a, Elem b) const { return mul(a, inv(b)); }

  /// Multiplicative order of a (smallest t > 0 with a^t = 1); a != 0.
  [[nodiscard]] std::uint32_t order(Elem a) const;

  /// Discrete log base z when z is primitive: z^log(a) == a, a != 0.
  /// Precondition: z_is_primitive().
  [[nodiscard]] std::uint32_t log(Elem a) const;
  /// z^k (k reduced modulo the group order).  Precondition:
  /// z_is_primitive().
  [[nodiscard]] Elem exp(std::uint32_t k) const;

  /// Hex rendering of an element, as in the paper's Fig. 1b
  /// (e.g. element z^2+z of GF(2^4) prints as "6").
  [[nodiscard]] std::string to_hex(Elem a) const;

  bool operator==(const GF2m& other) const {
    return modulus_ == other.modulus_;
  }

 private:
  Poly2 modulus_;
  unsigned m_;
  bool z_primitive_;
  // Log/antilog tables, built only when z is primitive (empty otherwise).
  std::vector<Elem> exp_table_;        // exp_table_[k] = z^k, k < 2^m-1
  std::vector<std::uint32_t> log_table_;  // log_table_[a] = k, a != 0
};

}  // namespace prt::gf
