#!/usr/bin/env python3
"""Project lint wall: clang-tidy + the determinism/concurrency lints.

Two layers (DESIGN.md §12):

  1. clang-tidy over compile_commands.json with the repo's .clang-tidy
     profile (bugprone-*, concurrency-*, performance-*, narrowing
     conversions, a tuned modernize subset).
  2. Custom project lints that encode invariants generic tooling
     cannot know:
       * raw std::mutex / std::condition_variable declarations outside
         src/util/annotations.hpp — all locking must go through the
         capability-annotated util::Mutex wrappers so clang's
         -Wthread-safety analysis sees it;
       * iteration over std::unordered_map / std::unordered_set in the
         result-merge paths (src/analysis/) — merge order must be
         index-ordered or the "bit-identical at any thread count"
         guarantee dies; iterate a sorted structure or indices instead;
       * rand() / srand() / time() / std::random_device in src/ —
         util::rng (seeded xoshiro256**) is the only sanctioned
         randomness source; wall-clock and libc randomness break run
         reproducibility;
       * bare rename(...) / std::filesystem::rename in src/ outside
         src/util/durable_write.cpp — a plain rename has no fsync of
         the file or its directory, so a crash can lose or tear the
         replacement; file replacement must go through
         util::durable_replace_file;
       * raw uint64 lane arithmetic (1ULL <<, std::popcount,
         std::countr_zero, ~0ULL, ...) in the packed fault-path files
         (packed_fault_ram.*, prt_packed.*, march_runner.*) outside
         src/mem/lane_word.hpp — those files are generic over the lane
         word (64/256/512 lanes) and must use the width-generic
         helpers, or the WideWord instantiations silently break.

Exit status is non-zero when any layer reports a finding.

Local iteration: `scripts/run_lint.py --changed-only` lints only files
that differ from the merge-base with main, and clang-tidy is skipped
with a notice when no binary is available (CI passes --require-tidy so
the wall cannot silently lose that layer there).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Preference order for the tidy binary; CI pins the version explicitly
# via --tidy-binary so a toolchain bump there is a reviewed change.
TIDY_CANDIDATES = ["clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                   "clang-tidy-15", "clang-tidy-14", "clang-tidy"]

# Files the custom lints read.
SRC_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")
# The one file allowed to name the raw primitives: it defines the
# annotated wrappers around them.
MUTEX_ALLOWLIST = {os.path.join("src", "util", "annotations.hpp")}
# Result-merge layer: everything that folds per-shard/per-fault
# results must iterate in deterministic order.
MERGE_PATH_PREFIXES = (os.path.join("src", "analysis") + os.sep,)
# The one sanctioned rename path: write tmp, fsync, rename, fsync the
# directory (util::durable_replace_file).
RENAME_ALLOWLIST = {os.path.join("src", "util", "durable_write.cpp")}
# The packed fault-path files, generic over the lane word W
# (mem/lane_word.hpp): raw uint64 lane arithmetic in them silently
# pins the code to 64 lanes and breaks the WideWord instantiations.
LANE_WORD_FILE_RE = re.compile(
    r"(?:^|[\\/])(?:packed_fault_ram|prt_packed|march_runner)\.(?:hpp|cpp)$")
# The one file allowed raw lane bit twiddling: it defines the helpers.
LANE_WORD_ALLOWLIST = {os.path.join("src", "mem", "lane_word.hpp")}

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(?:_any)?)\b")
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(.*)\)\s*[{]?")
NONDETERMINISM_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand)\s*\(|\bstd::random_device\b|\btime\s*\(")
# \b keeps identifiers like durable_rename-style names ('_' is a word
# character) out while catching rename(, ::rename( and
# std::filesystem::rename.
BARE_RENAME_RE = re.compile(r"\bstd::filesystem::rename\b|\brename\s*\(")
# Raw uint64 lane-word idioms: single-lane shifts, popcounts,
# trailing-zero scans and all-ones masks.  Inside the packed files
# these must go through the width-generic lane helpers
# (mem::lane_bit/lane_test/lane_popcount/for_each_set_lane/...).
RAW_LANE_ARITH_RE = re.compile(
    r"\b1ULL\s*<<|\b(?:std::)?uint64_t\{\s*1\s*\}\s*<<|"
    r"\bstd::popcount\s*\(|\bstd::countr_zero\s*\(|\bstd::countl_zero\s*\(|"
    r"~0ULL\b|~(?:std::)?uint64_t\{\s*0\s*\}")


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, keeping
    line structure so findings report real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def lint_raw_mutex(rel_path: str, clean: str) -> list[str]:
    if rel_path in MUTEX_ALLOWLIST or not rel_path.startswith("src" + os.sep):
        return []
    findings = []
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = RAW_MUTEX_RE.search(line)
        if m:
            findings.append(
                f"{rel_path}:{lineno}: raw std::{m.group(1)} — declare locks "
                f"through the annotated util::Mutex/util::CondVar wrappers "
                f"(src/util/annotations.hpp) so -Wthread-safety can check "
                f"the discipline")
    return findings


def lint_unordered_iteration(rel_path: str, clean: str) -> list[str]:
    if not rel_path.startswith(MERGE_PATH_PREFIXES):
        return []
    unordered_names: set[str] = set()
    unordered_types: set[str] = set()
    for m in UNORDERED_ALIAS_RE.finditer(clean):
        unordered_types.add(m.group(1))
    for m in UNORDERED_DECL_RE.finditer(clean):
        unordered_names.add(m.group(1))
    if unordered_types:
        alias_decl = re.compile(
            r"\b(?:" + "|".join(sorted(unordered_types)) +
            r")\s*(?:<.*>)?\s+(\w+)")
        for m in alias_decl.finditer(clean):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return []
    findings = []
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        range_expr = m.group(1)
        for name in unordered_names:
            if re.search(r"\b" + re.escape(name) + r"\b", range_expr):
                findings.append(
                    f"{rel_path}:{lineno}: iteration over unordered "
                    f"container '{name}' in a result-merge path — "
                    f"unordered_map/set iteration order is "
                    f"implementation-defined, which breaks the "
                    f"bit-identical-merge guarantee; iterate indices or an "
                    f"ordered structure")
    return findings


def lint_nondeterminism(rel_path: str, clean: str) -> list[str]:
    if not rel_path.startswith("src" + os.sep):
        return []
    findings = []
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = NONDETERMINISM_RE.search(line)
        if m:
            findings.append(
                f"{rel_path}:{lineno}: '{m.group(0).strip()}' — wall-clock / "
                f"libc randomness in src/ breaks reproducibility; seed a "
                f"prt::Xoshiro256 (util/rng.hpp) instead")
    return findings


def lint_bare_rename(rel_path: str, clean: str) -> list[str]:
    if rel_path in RENAME_ALLOWLIST or not rel_path.startswith("src" + os.sep):
        return []
    findings = []
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = BARE_RENAME_RE.search(line)
        if m:
            findings.append(
                f"{rel_path}:{lineno}: bare '{m.group(0).strip()}' — a plain "
                f"rename is not crash-durable (no fsync of the file or its "
                f"directory); replace files through "
                f"util::durable_replace_file (src/util/durable_write.cpp), "
                f"the one sanctioned rename path")
    return findings


def lint_raw_lane_arith(rel_path: str, clean: str) -> list[str]:
    if rel_path in LANE_WORD_ALLOWLIST or \
            not rel_path.startswith("src" + os.sep) or \
            not LANE_WORD_FILE_RE.search(rel_path):
        return []
    findings = []
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = RAW_LANE_ARITH_RE.search(line)
        if m:
            findings.append(
                f"{rel_path}:{lineno}: raw uint64 lane arithmetic "
                f"'{m.group(0).strip()}' in a packed fault-path file — this "
                f"code is generic over the lane word (64/256/512 lanes); use "
                f"the width-generic helpers in mem/lane_word.hpp "
                f"(lane_bit/lane_test/lane_broadcast/lane_popcount/"
                f"for_each_set_lane) instead")
    return findings


CUSTOM_LINTS = (lint_raw_mutex, lint_unordered_iteration, lint_nondeterminism,
                lint_bare_rename, lint_raw_lane_arith)


def iter_source_files(changed: set[str] | None) -> list[str]:
    files = []
    for top in ("src", "tests", "bench", "examples"):
        for root, _dirs, names in os.walk(os.path.join(REPO_ROOT, top)):
            for name in sorted(names):
                if not name.endswith(SRC_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(root, name), REPO_ROOT)
                if changed is not None and rel not in changed:
                    continue
                files.append(rel)
    return sorted(files)


def run_custom_lints(changed: set[str] | None) -> list[str]:
    findings = []
    for rel in iter_source_files(changed):
        with open(os.path.join(REPO_ROOT, rel), encoding="utf-8") as f:
            clean = strip_comments(f.read())
        for lint in CUSTOM_LINTS:
            findings.extend(lint(rel, clean))
    return findings


def changed_files() -> set[str]:
    """Files differing from the merge-base with main (committed or
    not) — the --changed-only working set."""
    merge_base = None
    for base in ("origin/main", "origin/master", "main", "master"):
        proc = subprocess.run(["git", "merge-base", "HEAD", base],
                              capture_output=True, text=True, cwd=REPO_ROOT)
        if proc.returncode == 0:
            merge_base = proc.stdout.strip()
            break
    args = ["git", "diff", "--name-only"]
    if merge_base:
        args.append(merge_base)
    proc = subprocess.run(args, capture_output=True, text=True, cwd=REPO_ROOT,
                          check=True)
    return {line.strip() for line in proc.stdout.splitlines() if line.strip()}


def find_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for candidate in TIDY_CANDIDATES:
        if shutil.which(candidate):
            return candidate
    return None


def run_clang_tidy(tidy: str, build_dir: str, changed: set[str] | None,
                   jobs: int) -> int:
    db_path = os.path.join(build_dir, "compile_commands.json")
    with open(db_path, encoding="utf-8") as f:
        database = json.load(f)
    files = []
    for entry in database:
        path = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.startswith(".."):  # FetchContent deps etc.
            continue
        if not rel.startswith(("src" + os.sep, "tests" + os.sep,
                               "bench" + os.sep, "examples" + os.sep)):
            continue
        if changed is not None and rel not in changed:
            continue
        files.append(path)
    files = sorted(set(files))
    if not files:
        print("clang-tidy: no files in scope")
        return 0

    failures = 0

    def one(path: str) -> int:
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", path],
            capture_output=True, text=True, cwd=REPO_ROOT)
        if proc.returncode != 0 or "warning:" in proc.stdout or \
                "error:" in proc.stdout:
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            return 1
        return 0

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        failures = sum(pool.map(one, files))
    print(f"clang-tidy: {len(files)} file(s), {failures} with findings")
    return failures


# --- selftest --------------------------------------------------------
# The lint wall is itself test-covered: each custom lint must fire on a
# seeded violation and stay quiet on the sanctioned pattern.  CI runs
# this before the real lint, so a regex regression fails the lane
# instead of silently passing everything.

SELFTEST_CASES = [
    # (lint, relative path, snippet, expect_finding)
    (lint_raw_mutex, "src/util/thread_pool.hpp",
     "  std::mutex mutex_;\n", True),
    (lint_raw_mutex, "src/util/thread_pool.hpp",
     "  std::condition_variable cv_;\n", True),
    (lint_raw_mutex, "src/util/thread_pool.hpp",
     "  // std::mutex in a comment is fine\n  util::Mutex mutex_;\n", False),
    (lint_raw_mutex, "src/util/annotations.hpp",
     "  std::mutex m_;\n", False),
    (lint_raw_mutex, "tests/test_util.cpp",
     "  std::mutex test_local;\n", False),
    (lint_unordered_iteration, "src/analysis/fault_sim.cpp",
     "std::unordered_map<int, int> tallies;\n"
     "for (const auto& [k, v] : tallies) {\n", True),
    (lint_unordered_iteration, "src/analysis/oracle_cache.cpp",
     "using SlotMap = std::unordered_map<std::string, int>;\n"
     "SlotMap slots_;\n"
     "for (auto& s : slots_) {\n", True),
    (lint_unordered_iteration, "src/analysis/fault_sim.cpp",
     "std::map<int, int> by_class;\n"
     "for (const auto& [k, v] : by_class) {\n", False),
    (lint_unordered_iteration, "src/core/prt_engine.cpp",
     "std::unordered_map<int, int> local;\nfor (auto& s : local) {\n", False),
    (lint_nondeterminism, "src/util/rng.hpp",
     "  int x = rand();\n", True),
    (lint_nondeterminism, "src/mem/sram.cpp",
     "  std::random_device rd;\n", True),
    (lint_nondeterminism, "src/march/march_runner.cpp",
     "  auto t0 = time(nullptr);\n", True),
    (lint_nondeterminism, "src/march/march_runner.cpp",
     "  memory.advance_time(delay_ticks);\n", False),
    (lint_nondeterminism, "tests/test_util.cpp",
     "  int x = rand();\n", False),
    (lint_bare_rename, "src/analysis/campaign_service.cpp",
     "  std::rename(tmp.c_str(), path.c_str());\n", True),
    (lint_bare_rename, "src/analysis/campaign_service.cpp",
     "  std::filesystem::rename(tmp, path);\n", True),
    (lint_bare_rename, "src/mem/sram.cpp",
     "  ::rename(tmp, path);\n", True),
    (lint_bare_rename, "src/util/durable_write.cpp",
     "  std::rename(tmp.c_str(), path.c_str());\n", False),
    (lint_bare_rename, "src/analysis/campaign_service.cpp",
     "  util::durable_replace_file(path, text);\n", False),
    (lint_bare_rename, "tests/test_checkpoint_recovery.cpp",
     "  std::rename(a, b);\n", False),
    (lint_raw_lane_arith, "src/mem/packed_fault_ram.cpp",
     "  const auto mask = 1ULL << lane;\n", True),
    (lint_raw_lane_arith, "src/core/prt_packed.cpp",
     "  n += std::popcount(detected);\n", True),
    (lint_raw_lane_arith, "src/march/march_runner.cpp",
     "  const unsigned lane = std::countr_zero(pending);\n", True),
    (lint_raw_lane_arith, "src/mem/packed_fault_ram.hpp",
     "  const auto fill = ~std::uint64_t{0};\n", True),
    (lint_raw_lane_arith, "src/core/prt_packed.cpp",
     "  const W bit = mem::lane_bit<W>(lane);\n"
     "  if (mem::lane_test(detected, lane)) n += 1;\n", False),
    (lint_raw_lane_arith, "src/mem/lane_word.hpp",
     "  return std::uint64_t{1} << lane;\n", False),
    # Non-packed files keep their raw bit twiddling (MISR slicing,
    # decoder masks) — the lint is scoped to the lane-generic files.
    (lint_raw_lane_arith, "src/core/misr.cpp",
     "  const auto m = 1ULL << tap;\n", False),
    (lint_raw_lane_arith, "tests/test_packed_campaign.cpp",
     "  const auto m = 1ULL << lane;\n", False),
]


def selftest() -> int:
    failures = 0
    for lint, rel, snippet, expect in SELFTEST_CASES:
        findings = lint(rel.replace("/", os.sep), strip_comments(snippet))
        if bool(findings) != expect:
            failures += 1
            print(f"selftest FAIL: {lint.__name__} on {rel!r} expected "
                  f"finding={expect}, got {findings}")
    print(f"selftest: {len(SELFTEST_CASES)} cases, {failures} failures")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree with compile_commands.json")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files changed vs the merge-base "
                             "with main")
    parser.add_argument("--tidy-binary", default=None,
                        help="clang-tidy executable (default: newest found)")
    parser.add_argument("--no-tidy", action="store_true",
                        help="custom lints only")
    parser.add_argument("--require-tidy", action="store_true",
                        help="fail when clang-tidy (or the compile database) "
                             "is unavailable instead of skipping that layer")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--selftest", action="store_true",
                        help="run the custom lints against seeded "
                             "violations and exit")
    args = parser.parse_args()

    if args.selftest:
        return 1 if selftest() else 0

    changed = changed_files() if args.changed_only else None
    if changed is not None:
        print(f"--changed-only: {len(changed)} changed file(s)")

    failures = 0

    findings = run_custom_lints(changed)
    for finding in findings:
        print(finding)
    print(f"custom lint: {len(findings)} finding(s)")
    failures += len(findings)

    if not args.no_tidy:
        tidy = find_tidy(args.tidy_binary)
        db = os.path.join(REPO_ROOT, args.build_dir, "compile_commands.json")
        if tidy is None or not os.path.exists(db):
            missing = "clang-tidy binary" if tidy is None else db
            if args.require_tidy:
                print(f"ERROR: {missing} unavailable and --require-tidy set")
                return 1
            print(f"NOTE: {missing} unavailable — skipping the clang-tidy "
                  f"layer (custom lints still ran)")
        else:
            failures += run_clang_tidy(tidy, os.path.join(REPO_ROOT,
                                                          args.build_dir),
                                       changed, max(args.jobs, 1))

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
