// Lane-batched, thread-parallel March fault-simulation campaigns.
//
// run_campaign (fault_sim.hpp) evaluates march_algorithm serially, one
// FaultyRam run per fault; this campaign is the fast path for March
// coverage tables.  Since PR 5 it is a thin facade over the generic
// analysis::CampaignDriver (campaign_driver.hpp) instantiated with the
// March workload — the same driver, pool, shard loops and
// order-deterministic merge CampaignEngine runs on:
//
//  * for bit-oriented (m = 1) campaigns the golden March run is
//    compiled once per (test, n, background) into a flat
//    core::OpTranscript, cached in the process-wide
//    analysis::OracleCache and shared by every campaign over the same
//    test; lane-compatible faults (decoder kinds included) are batched
//    64 per sweep through the transcript march::run_march_packed, the
//    remaining (retention, NPSF) faults run the scalar
//    march::run_march_transcript (devirtualized FaultyRam), and the
//    merged CampaignResult — coverage, per-class counts, escapes and
//    op totals — is bit-identical to run_campaign(universe,
//    march_algorithm(test), opt).  Early abort composes with packing:
//    lanes retire at their first mismatching read with analytic
//    per-lane op accounting identical to the abort-aware scalar
//    run_march reference;
//  * word-oriented (m > 1) campaigns run entirely scalar over the
//    standard data backgrounds, still sharded over the pool.
//
// See DESIGN.md §8/§9/§10 and bench/bench_campaign.cpp's March
// section.
#pragma once

#include <memory>
#include <span>

#include "analysis/fault_sim.hpp"
#include "march/march_runner.hpp"

namespace prt::analysis {

namespace detail {
class MarchWorkload;
template <typename Workload>
class CampaignDriver;
}  // namespace detail

struct MarchEngineOptions {
  /// Worker count; 0 defers to the PRT_THREADS environment override,
  /// then the hardware concurrency (util::default_worker_count).
  unsigned threads = 0;
  /// Fan the universe out over the pool.  Off = one shard, inline on
  /// the calling thread.
  bool parallel = true;
  /// Batch lane-compatible faults 64 per March sweep on a bit-packed
  /// mem::PackedFaultRam when m = 1.  Results stay bit-identical to
  /// the all-scalar reference.
  bool packed = true;
  /// Stop each fault's run at its first mismatching read (and skip the
  /// remaining backgrounds after a failing run).  Verdicts, coverage
  /// and escapes are unchanged; CampaignResult::ops shrinks to the
  /// abort-aware scalar reference cost.  Composes with `packed`: lanes
  /// retire as their mismatch latches, with per-lane op accounting
  /// bit-identical to the scalar abort path (march/march_runner).
  bool early_abort = false;
  /// Lane width of the packed sweeps: 64, 256, 512, or 0 to defer to
  /// mem::default_lane_width().  Same contract as
  /// EngineOptions::lane_width — per-batch 64-lane fallback when a
  /// batch cannot fill half the wide lanes, bit-identical results at
  /// every width.
  unsigned lane_width = 0;
};

class MarchCampaign {
 public:
  /// Fetches the per-(test, n, background) transcript from
  /// OracleCache::global() when m = 1.  Throws std::invalid_argument
  /// on malformed options (validate_campaign_options) and on March
  /// tests with data indices outside {0, 1}.
  MarchCampaign(march::MarchTest test, const CampaignOptions& opt,
                const MarchEngineOptions& engine = {});
  ~MarchCampaign();
  MarchCampaign(const MarchCampaign&) = delete;
  MarchCampaign& operator=(const MarchCampaign&) = delete;

  [[nodiscard]] const march::MarchTest& test() const;

  /// Simulates every fault of the universe.  Identical CampaignResult
  /// to run_campaign(universe, march_algorithm(test), opt) regardless
  /// of thread count.  Not safe to call concurrently on one campaign
  /// (workers share its pool); distinct campaigns are independent.
  [[nodiscard]] CampaignResult run(std::span<const mem::Fault> universe) const;

  /// Cancellable run: shard loops poll `stop` per fault, interrupted
  /// shards are discarded whole, and the outcome carries the merge of
  /// the completed shards plus why the run ended (CampaignOutcome in
  /// fault_sim.hpp).  With a never-stopping token the result is
  /// bit-identical to run().
  [[nodiscard]] CampaignOutcome run(std::span<const mem::Fault> universe,
                                    const util::StopToken& stop) const;

 private:
  std::unique_ptr<detail::CampaignDriver<detail::MarchWorkload>> driver_;
};

/// Convenience: one-shot March campaign with default engine options.
[[nodiscard]] CampaignResult run_march_campaign(
    std::span<const mem::Fault> universe, march::MarchTest test,
    const CampaignOptions& opt, const MarchEngineOptions& engine = {});

}  // namespace prt::analysis
