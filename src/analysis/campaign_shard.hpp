// Internal shard-loop scaffolding under the generic campaign driver
// (campaign_driver.hpp): per-fault tallying, the 64-lane batching loop
// with its escape re-sort, and the pool fan-out with the
// order-deterministic merge.  Keeping every campaign type on one copy
// of this machinery is what keeps their bit-identical-to-serial
// guarantees in lockstep — fix it here, all paths get it.
//
// Header is internal to analysis/ (included via campaign_driver.hpp
// by the campaign .cpp files only); the public surfaces are
// campaign_engine.hpp, march_campaign.hpp and campaign_suite.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "mem/packed_fault_ram.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis::detail {

/// Records one fault's verdict into the shard result (class + overall
/// counters, escape index on a miss).
inline void tally_fault(CampaignResult& out,
                        std::span<const mem::Fault> universe, std::size_t i,
                        bool detected) {
  auto& cls = out.by_class[mem::fault_class(universe[i].kind)];
  ++cls.total;
  ++out.overall.total;
  if (detected) {
    ++cls.detected;
    ++out.overall.detected;
  } else {
    out.escapes.push_back(i);
  }
}

/// All-scalar shard loop: run_scalar(i) -> detected, charging its own
/// ops to `out`.  Polls `stop` per fault; returns false (shard
/// abandoned — `out` is partial and must be discarded) once a stop is
/// observed, true when the shard ran to completion.  A
/// default-constructed token never stops, so the poll is one null
/// check on the non-cancellable paths.
template <typename RunScalar>
bool scalar_shard(std::span<const mem::Fault> universe, std::size_t begin,
                  std::size_t end, CampaignResult& out,
                  RunScalar&& run_scalar, const util::StopToken& stop = {}) {
  for (std::size_t i = begin; i < end; ++i) {
    if (stop.stop_requested()) return false;
    tally_fault(out, universe, i, run_scalar(i));
    ++out.scalar_faults;
  }
  return true;
}

/// Lane-batched shard loop: compatible faults ride the packed ram 64
/// at a time, the rest run scalar in place.  run_batch(packed) runs
/// one flushed batch and returns {detected mask, ops to charge for the
/// whole batch}; run_scalar(i) -> detected as above.  Escapes are
/// gathered out of order and sorted once — counts and op sums are
/// order-independent, so the shard output is bit-identical to the
/// all-scalar loop.  Polls `stop` per fault, same contract as
/// scalar_shard (false = shard abandoned, discard `out`).
template <typename RunBatch, typename RunScalar>
bool lane_batched_shard(std::span<const mem::Fault> universe,
                        std::size_t begin, std::size_t end,
                        mem::PackedFaultRam& packed, CampaignResult& out,
                        RunBatch&& run_batch, RunScalar&& run_scalar,
                        const util::StopToken& stop = {}) {
  std::array<std::size_t, mem::PackedFaultRam::kLanes> batch_index{};
  auto flush = [&]() {
    const unsigned lanes = packed.lanes_used();
    if (lanes == 0) return;
    const auto [detected, ops] = run_batch(packed);
    out.ops += ops;
    out.packed_faults += lanes;
    for (unsigned lane = 0; lane < lanes; ++lane) {
      tally_fault(out, universe, batch_index[lane],
                  ((detected >> lane) & 1U) != 0);
    }
    packed.reset();
  };
  for (std::size_t i = begin; i < end; ++i) {
    if (stop.stop_requested()) return false;
    if (mem::lane_compatible(universe[i], packed.width())) {
      batch_index[packed.add_fault(universe[i])] = i;
      if (packed.lanes_used() == mem::PackedFaultRam::kLanes) flush();
    } else {
      tally_fault(out, universe, i, run_scalar(i));
      ++out.scalar_faults;
    }
  }
  flush();
  std::sort(out.escapes.begin(), out.escapes.end());
  return true;
}

/// Pool fan-out with the order-deterministic merge: shards
/// [0, universe_size) contiguously over `pool` (created lazily,
/// `workers` wide) and merges per-shard results in shard order.  Falls
/// back to one inline shard when parallelism is off or pointless.
/// run_shard(begin, end, out) -> bool fills one shard (false = the
/// shard observed `stop` and abandoned; its partial output is
/// discarded).  Shards that completed before the stop still count:
/// their ranges ascend even when non-contiguous, so the partial merge
/// is an exact tally over exactly the covered faults.
template <typename RunShard>
CampaignOutcome run_sharded(std::size_t universe_size, unsigned workers,
                            bool parallel,
                            std::unique_ptr<util::ThreadPool>& pool,
                            RunShard&& run_shard,
                            const util::StopToken& stop = {}) {
  CampaignOutcome out;
  if (!parallel || workers == 1 || universe_size < 2) {
    out.shards_total = 1;
    CampaignResult result;
    if (run_shard(std::size_t{0}, universe_size, result)) {
      out.result = std::move(result);
      out.shards_done = 1;
    }
  } else {
    if (!pool) pool = std::make_unique<util::ThreadPool>(workers);
    const auto shard_count =
        std::min<std::size_t>(pool->workers(), universe_size);
    out.shards_total = shard_count;
    std::vector<CampaignResult> shards(shard_count);
    // Completion flags are unsigned char, not vector<bool>: each chunk
    // writes only its own slot, which bit-packing would turn into a
    // data race on the shared byte.
    std::vector<unsigned char> done(shard_count, 0);
    pool->parallel_for_chunks(
        universe_size, [&](unsigned chunk, std::size_t begin, std::size_t end) {
          done[chunk] = run_shard(begin, end, shards[chunk]) ? 1 : 0;
        });
    std::vector<CampaignResult> completed;
    completed.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (done[s] != 0) {
        completed.push_back(std::move(shards[s]));
        ++out.shards_done;
      }
    }
    out.result = merge_results(completed);
  }
  out.status = out.shards_done == out.shards_total
                   ? RunStatus::kComplete
                   : status_from(stop.reason());
  return out;
}

}  // namespace prt::analysis::detail
