// Reproduces the §3 coverage claim: "all single and multi-cell memory
// faults are detected in 3 pi-test iterations with a specific TDB".
//
// Two universes are reported (DESIGN.md §2):
//  * the classical model {SAF, TF, adjacent CFin, bridges, AF} — fully
//    covered by the pure 3-iteration scheme, reproducing the claim's
//    shape;
//  * the full van de Goor model (adds WDF, RDF/DRDF/IRF/SOF, CFst,
//    4-variant CFid, multi-access AF) — where 3 pure iterations are
//    provably insufficient (late corruptions are overwritten unread)
//    and the extended scheme with verify passes reaches full coverage.
//
// March baselines (MATS+, March C-, March SS) anchor both tables.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/coverage.hpp"
#include "analysis/campaign_engine.hpp"
#include "analysis/fault_sim.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"

namespace {

using namespace prt;
using analysis::CampaignOptions;
using analysis::run_campaign;

void run_tables() {
  const mem::Addr n = 64;
  CampaignOptions opt;
  opt.n = n;

  {
    std::printf(
        "== §3 claim, classical model (n = %u): coverage vs iterations "
        "==\n",
        n);
    const auto universe = mem::classical_universe(n);
    std::vector<analysis::NamedResult> rows;
    for (unsigned iters = 1; iters <= 3; ++iters) {
      core::PrtScheme prefix = core::standard_scheme_bom(n);
      prefix.iterations.resize(iters);
      rows.push_back({"PRT-" + std::to_string(iters),
                      analysis::run_prt_campaign(universe, prefix, opt)});
    }
    rows.push_back(
        {"MATS+", run_campaign(universe,
                               analysis::march_algorithm(march::mats_plus()),
                               opt)});
    rows.push_back({"March C-",
                    run_campaign(universe,
                                 analysis::march_algorithm(
                                     march::march_c_minus()),
                                 opt)});
    std::printf("%s\n", analysis::coverage_table(rows).str().c_str());
  }

  {
    std::printf(
        "== full van de Goor model (n = %u): 3 pure iterations vs "
        "extended scheme ==\n",
        n);
    const auto universe = mem::van_de_goor_universe(n);
    std::vector<analysis::NamedResult> rows;
    rows.push_back({"PRT-3", analysis::run_prt_campaign(
                                 universe, core::standard_scheme_bom(n), opt)});
    rows.push_back({"PRT-ext",
                    analysis::run_prt_campaign(
                        universe, core::extended_scheme_bom(n), opt)});
    rows.push_back({"March C-",
                    run_campaign(universe,
                                 analysis::march_algorithm(
                                     march::march_c_minus()),
                                 opt)});
    rows.push_back({"March SS",
                    run_campaign(universe,
                                 analysis::march_algorithm(march::march_ss()),
                                 opt)});
    std::printf("%s\n", analysis::coverage_table(rows).str().c_str());
  }

  {
    const unsigned m = 4;
    std::printf(
        "== WOM (n = %u, m = %u, p = z^4+z+1): single-cell + intra-word "
        "==\n",
        n, m);
    mem::UniverseOptions uopt;
    uopt.coupling = false;
    uopt.bridges = false;
    uopt.address_decoder = true;
    uopt.intra_word = true;
    const auto universe = mem::make_universe(n, m, uopt);
    CampaignOptions wopt;
    wopt.n = n;
    wopt.m = m;
    std::vector<analysis::NamedResult> rows;
    rows.push_back({"PRT-3",
                    analysis::run_prt_campaign(
                        universe, core::standard_scheme_wom(n, m), wopt)});
    rows.push_back({"PRT-ext",
                    analysis::run_prt_campaign(
                        universe, core::extended_scheme_wom(n, m), wopt)});
    rows.push_back({"March C-",
                    run_campaign(universe,
                                 analysis::march_algorithm(
                                     march::march_c_minus()),
                                 wopt)});
    std::printf("%s\n", analysis::coverage_table(rows).str().c_str());
  }
}

void run_retention_table() {
  const mem::Addr n = 64;
  std::printf(
      "== data-retention faults (n = %u, decay delay 50k ticks) ==\n", n);
  std::vector<mem::Fault> universe;
  for (mem::Addr c = 0; c < n; ++c) {
    universe.push_back(mem::Fault::retention({c, 0}, 0, 50'000));
    universe.push_back(mem::Fault::retention({c, 0}, 1, 50'000));
  }
  CampaignOptions opt;
  opt.n = n;
  std::vector<analysis::NamedResult> rows;
  rows.push_back(
      {"PRT-3 (no pause)",
       run_campaign(universe,
                    analysis::prt_algorithm(core::standard_scheme_bom(n)),
                    opt)});
  rows.push_back(
      {"PRT retention",
       run_campaign(universe,
                    analysis::prt_algorithm(
                        core::retention_scheme(n, 1, 100'000)),
                    opt)});
  rows.push_back(
      {"March C- (no Del)",
       run_campaign(universe,
                    analysis::march_algorithm(march::march_c_minus()),
                    opt)});
  rows.push_back({"March G (Del=100k)",
                  run_campaign(universe,
                               [](mem::Memory& memory) {
                                 return march::run_march(march::march_g(),
                                                         memory, 0, 100'000)
                                     .fail;
                               },
                               opt)});
  std::printf("%s\n", analysis::coverage_table(rows).str().c_str());
}

void BM_CampaignClassical(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  const auto algo = analysis::prt_algorithm(core::standard_scheme_bom(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_campaign(universe, algo, opt));
  }
  state.SetItemsProcessed(state.iterations() * universe.size());
}
BENCHMARK(BM_CampaignClassical)->Arg(32)->Arg(64);

void BM_CampaignEngineClassical(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  const auto universe = mem::classical_universe(n);
  CampaignOptions opt;
  opt.n = n;
  const analysis::CampaignEngine engine(core::standard_scheme_bom(n), opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(universe));
  }
  state.SetItemsProcessed(state.iterations() * universe.size());
}
BENCHMARK(BM_CampaignEngineClassical)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  run_retention_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
