#include "util/fail_point.hpp"

#include <atomic>
#include <cstddef>
#include <thread>
#include <unordered_map>

#include "util/annotations.hpp"

namespace prt::util {

namespace {

struct Armed {
  FailPoint::Config config;
  std::uint64_t hits = 0;
};

struct Registry {
  Mutex mutex;
  std::unordered_map<std::string, Armed> points PRT_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Count of armed points — the disarmed fast path in hit() is one
/// relaxed load of this, so production runs never touch the registry
/// lock.
//
// Invariant (atomic fast path over mutex-guarded state, invisible to
// thread-safety analysis): armed_count() is only ever written while
// registry().mutex is held, and equals points.size() whenever that
// mutex is released.  hit() may read a stale zero and skip a point
// armed concurrently — benign, because arming happens-before the
// traffic a test injects into — but can never miss a point armed
// before the traffic started.
std::atomic<std::size_t>& armed_count() {
  static std::atomic<std::size_t> count{0};
  return count;
}

/// Parses a base-10 integer spanning exactly [begin, end) of `spec`;
/// anything else (empty, trailing junk, out of int range) is a
/// malformed count.
int parse_count(const std::string& spec, std::size_t begin, std::size_t end,
                const char* what) {
  const std::string digits = spec.substr(begin, end - begin);
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(digits, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;  // flag as malformed below
  }
  if (digits.empty() || consumed != digits.size()) {
    throw std::invalid_argument(std::string("fail point spec: malformed ") +
                                what + " count '" + digits + "' in '" + spec +
                                "'");
  }
  return value;
}

}  // namespace

void FailPoint::arm(const std::string& name, const Config& config) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  auto [it, inserted] = r.points.insert_or_assign(name, Armed{config, 0});
  (void)it;
  if (inserted) armed_count().fetch_add(1, std::memory_order_release);
}

void FailPoint::arm_spec(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("fail point spec: missing '=' in '" + spec +
                                "'");
  }
  const std::string name = spec.substr(0, eq);
  if (name.empty()) {
    throw std::invalid_argument("fail point spec: empty name in '" + spec +
                                "'");
  }

  // Action token: everything up to the first ':' modifier.
  std::size_t pos = eq + 1;
  std::size_t colon = spec.find(':', pos);
  const std::string action =
      spec.substr(pos, (colon == std::string::npos ? spec.size() : colon) -
                           pos);
  Config config;
  if (action == "throw") {
    config.action = Action::kThrow;
  } else if (action.rfind("delay(", 0) == 0 && action.back() == ')') {
    config.action = Action::kDelay;
    const std::size_t open = pos + 6;  // past "delay("
    const std::size_t close = pos + action.size() - 1;
    config.delay =
        std::chrono::milliseconds(parse_count(spec, open, close, "delay"));
  } else if (action.rfind("partial_write(", 0) == 0 && action.back() == ')') {
    config.action = Action::kPartialWrite;
    const std::size_t open = pos + 14;  // past "partial_write("
    const std::size_t close = pos + action.size() - 1;
    const int bytes = parse_count(spec, open, close, "partial_write");
    if (bytes < 0) {
      throw std::invalid_argument(
          "fail point spec: malformed partial_write count '" + action +
          "' in '" + spec + "'");
    }
    config.bytes = static_cast<std::size_t>(bytes);
  } else {
    throw std::invalid_argument(
        "fail point spec: unknown action '" + action + "' in '" + spec +
        "' (throw | delay(<ms>) | partial_write(<bytes>))");
  }

  bool saw_skip = false;
  bool saw_fires = false;
  while (colon != std::string::npos) {
    pos = colon + 1;
    colon = spec.find(':', pos);
    const std::size_t end = colon == std::string::npos ? spec.size() : colon;
    const std::string modifier = spec.substr(pos, end - pos);
    if (modifier.rfind("skip=", 0) == 0 && !saw_skip) {
      saw_skip = true;
      config.skip = parse_count(spec, pos + 5, end, "skip");
      if (config.skip < 0) {
        throw std::invalid_argument("fail point spec: malformed skip count '" +
                                    modifier + "' in '" + spec + "'");
      }
    } else if (modifier.rfind("fires=", 0) == 0 && !saw_fires) {
      saw_fires = true;
      config.fires = parse_count(spec, pos + 6, end, "fires");
    } else {
      throw std::invalid_argument("fail point spec: unknown modifier '" +
                                  modifier + "' in '" + spec +
                                  "' (skip=<n> | fires=<m>, once each)");
    }
  }
  arm(name, config);
}

void FailPoint::disarm(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  if (r.points.erase(name) != 0) {
    armed_count().fetch_sub(1, std::memory_order_release);
  }
}

void FailPoint::disarm_all() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  armed_count().fetch_sub(r.points.size(), std::memory_order_release);
  r.points.clear();
}

std::uint64_t FailPoint::hits(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

std::optional<FailPoint::Config> FailPoint::poll(const char* name) {
  if (armed_count().load(std::memory_order_acquire) == 0) return std::nullopt;
  Config config;
  bool fire = false;
  {
    Registry& r = registry();
    MutexLock lock(r.mutex);
    const auto it = r.points.find(name);
    if (it == r.points.end()) return std::nullopt;
    Armed& armed = it->second;
    const std::uint64_t hit_index = armed.hits++;
    const auto skip = static_cast<std::uint64_t>(armed.config.skip);
    fire = hit_index >= skip &&
           (armed.config.fires < 0 ||
            hit_index < skip + static_cast<std::uint64_t>(armed.config.fires));
    config = armed.config;
  }
  if (!fire) return std::nullopt;
  return config;
}

void FailPoint::hit(const char* name) {
  const std::optional<Config> fired = poll(name);
  if (!fired) return;
  switch (fired->action) {
    case Action::kThrow:
    case Action::kPartialWrite:  // plain sites cannot truncate; fail hard
      throw FailPointError(std::string("fail point '") + name + "' fired");
    case Action::kDelay:
      std::this_thread::sleep_for(fired->delay);
      break;
  }
}

}  // namespace prt::util
