#include "analysis/campaign_engine.hpp"

#include <cassert>
#include <utility>
#include <vector>

#include "analysis/campaign_shard.hpp"
#include "core/prt_packed.hpp"
#include "mem/fault_injector.hpp"
#include "mem/packed_fault_ram.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis {

CampaignEngine::CampaignEngine(core::PrtScheme scheme,
                               const CampaignOptions& opt,
                               const EngineOptions& engine)
    : scheme_(std::move(scheme)),
      opt_(opt),
      engine_(engine),
      oracle_(core::make_prt_oracle(scheme_, opt.n)),
      scheme_packable_(opt.m == 1 && core::prt_scheme_packable(scheme_)) {
  if (scheme_packable_) {
    transcript_ = core::make_op_transcript(scheme_, oracle_);
  }
}

CampaignEngine::~CampaignEngine() = default;

bool CampaignEngine::packed_enabled() const {
  return engine_.packed && engine_.use_oracle && scheme_packable_;
}

void CampaignEngine::run_shard(std::span<const mem::Fault> universe,
                               std::size_t begin, std::size_t end,
                               CampaignResult& out) const {
  mem::FaultyRam ram(opt_.n, opt_.m, opt_.ports);
  const core::PrtRunOptions run_opts{.early_abort = engine_.early_abort,
                                     .record_iterations = false};
  // Oracle-backed GF(2) campaigns replay the compiled transcript (no
  // oracle indirection, FaultyRam devirtualized); other configurations
  // keep the live paths.
  const bool use_transcript = engine_.use_oracle && scheme_packable_;
  auto run_scalar = [&](std::size_t i) {
    ram.reset(universe[i]);
    const bool detected =
        use_transcript
            ? core::run_prt_transcript(ram, transcript_, run_opts).detected()
        : engine_.use_oracle
            ? core::run_prt(ram, scheme_, oracle_, run_opts).detected()
            : core::run_prt(ram, scheme_).detected();
    out.ops += ram.total_stats().total();
    return detected;
  };

  if (!packed_enabled()) {
    detail::scalar_shard(universe, begin, end, out, run_scalar);
    return;
  }

  mem::PackedFaultRam packed(opt_.n);
  // Replay scratch hoisted out of the batch loop: one MISR state
  // buffer per shard, not one per 64-fault batch.
  core::PackedScratch scratch;
  auto run_batch = [&](mem::PackedFaultRam& batch) {
    const core::PackedRunOptions run{.early_abort = engine_.early_abort};
    const core::PackedVerdict v =
        core::run_prt_packed(batch, transcript_, run, scratch);
    // scalar_ops reproduces, per lane, exactly what the scalar path
    // would have issued for that fault (complete iterations until the
    // first failing one under early_abort, the full scheme otherwise).
    return std::pair{v.detected & batch.active_mask(), v.scalar_ops};
  };
  detail::lane_batched_shard(universe, begin, end, packed, out, run_batch,
                             run_scalar);
}

CampaignResult CampaignEngine::run(
    std::span<const mem::Fault> universe) const {
  const unsigned workers =
      engine_.threads != 0 ? engine_.threads : util::default_worker_count();
  return detail::run_sharded(
      universe.size(), workers, engine_.parallel, pool_,
      [&](std::size_t begin, std::size_t end, CampaignResult& out) {
        run_shard(universe, begin, end, out);
      });
}

CampaignResult merge_results(std::span<const CampaignResult> shards) {
  CampaignResult merged;
  for (const CampaignResult& shard : shards) {
    for (const auto& [cls, cov] : shard.by_class) {
      auto& acc = merged.by_class[cls];
      acc.detected += cov.detected;
      acc.total += cov.total;
    }
    merged.overall.detected += shard.overall.detected;
    merged.overall.total += shard.overall.total;
    merged.ops += shard.ops;
    merged.escapes.insert(merged.escapes.end(), shard.escapes.begin(),
                          shard.escapes.end());
  }
  return merged;
}

CampaignResult run_prt_campaign(std::span<const mem::Fault> universe,
                                const core::PrtScheme& scheme,
                                const CampaignOptions& opt,
                                const EngineOptions& engine) {
  return CampaignEngine(scheme, opt, engine).run(universe);
}

}  // namespace prt::analysis
