// Analytic detection model for pi-testing (paper §3: "Applying Markov
// chain analysis it was shown that pi-test iteration has a high
// resolution for most memory faults").
//
// Model.  During one pi-iteration every cell is written once and read
// k times; an error Δ present in a cell value obeys the same linear
// recurrence as the data (the writes compute correct functions of
// possibly-wrong reads), so the error state evolves as a non-singular
// LFSR from a non-zero seed and can never return to zero before the
// sweep ends: a single activated fault always corrupts Fin.  Detection
// probability per iteration therefore equals *activation* probability,
// and the per-fault behaviour across iterations is a two-state Markov
// chain (latent -> detected) with per-iteration transition p:
//
//     P(detected within i iterations) = 1 - (1 - p)^i.
//
// Activation probabilities under the random-TDB / random-trajectory
// assumption (each cell value an independent fair coin per iteration,
// each traversal a fresh permutation):
//   SAF      p = 1/2   (cell's fault-free value hits the opposite rail)
//   TF       p = 1/4   (previous value, new value must form the failing
//                       transition)
//   WDF      p = 1/2   (non-transition write)
//   RDF/DRDF/IRF  p = 1 (every read is wrong or flips the cell)
//   SOF      p = 3/4   (one of the two window reads differs from the
//                       sense-amp history bit)
//   CFst     p = 1/4   (aggressor in the trigger state at the victim's
//                       write x victim expected opposite of forced)
//   Bridge   p = 1 - (3/4)^4  (two writes x two partner epochs, each
//                       tripping at 1/4; see markov.cpp)
//   CFin     p = (1/2) / n  (aggressor must transition AND be visited
//                       exactly one position after the victim; later
//                       corruptions are overwritten unread, earlier
//                       ones are erased by the victim's own write)
//   CFid     p = (1/8) x ~4/n with 4 orientation variants averaged as
//            1/(2n)  (transition direction and forced-value conditions
//                       each halve the CFin rate; see markov.cpp)
//   AF       p = 2/n  (wrong-access is self-consistent outside the
//                       write-to-read window; see markov.cpp)
//
// These are deliberately coarse (that is what makes them checkable):
// bench/tab_markov compares them against an empirical campaign run
// with randomized TDBs and trajectories.
#pragma once

#include <cstdint>

#include "mem/fault.hpp"

namespace prt::analysis {

struct MarkovParams {
  mem::Addr n = 128;   // array size (enters the coupling-fault rates)
  unsigned m = 1;      // cell width
};

/// Per-iteration activation/detection probability p for the class.
[[nodiscard]] double per_iteration_detection(mem::FaultClass cls,
                                             const MarkovParams& params);

/// 1 - (1 - p)^iterations.
[[nodiscard]] double cumulative_detection(mem::FaultClass cls,
                                          const MarkovParams& params,
                                          unsigned iterations);

}  // namespace prt::analysis
