#include "march/march_runner.hpp"

#include <cassert>
#include <stdexcept>

#include "util/bitops.hpp"

namespace prt::march {

namespace {

/// Applies one March element at a single address, updating the result.
/// Returns false when an early abort fired (stop the whole run).
bool apply_ops(const MarchElement& elem, mem::Memory& memory,
               mem::Addr addr, mem::Word bg, const MarchRunOptions& options,
               MarchResult& result) {
  const mem::Word mask = memory.word_mask();
  for (const MarchOp& op : elem.ops) {
    const mem::Word data = (op.data == 0 ? bg : ~bg) & mask;
    if (op.is_read()) {
      const mem::Word got = memory.read(addr, 0);
      ++result.ops;
      if (got != data) {
        if (!result.fail) {
          result.first_addr = addr;
          result.first_expected = data;
          result.first_actual = got;
        }
        result.fail = true;
        ++result.mismatches;
        if (options.early_abort) return false;
      }
    } else {
      memory.write(addr, data, 0);
      ++result.ops;
    }
  }
  return true;
}

}  // namespace

MarchResult run_march(const MarchTest& test, mem::Memory& memory,
                      mem::Word background, std::uint64_t delay_ticks,
                      const MarchRunOptions& options) {
  MarchResult result;
  const mem::Addr n = memory.size();
  for (const MarchElement& elem : test.elements) {
    if (elem.is_delay) {
      memory.advance_time(delay_ticks);
      continue;
    }
    if (elem.order == Order::kDown) {
      for (mem::Addr i = n; i-- > 0;) {
        if (!apply_ops(elem, memory, i, background, options, result)) {
          return result;
        }
      }
    } else {
      for (mem::Addr i = 0; i < n; ++i) {
        if (!apply_ops(elem, memory, i, background, options, result)) {
          return result;
        }
      }
    }
  }
  return result;
}

core::OpTranscript make_march_transcript(const MarchTest& test, mem::Addr n,
                                         bool background,
                                         std::uint64_t delay_ticks) {
  // Malformed tests must fail loudly in release campaigns too (same
  // precedent as FaultyRam::inject): a silent mis-compiled read_mask
  // would corrupt coverage numbers instead of crashing.
  if (n < 1) {
    throw std::invalid_argument("make_march_transcript: n must be >= 1");
  }
  core::OpTranscript t;
  t.n = n;
  t.delay_ticks = delay_ticks;
  const gf::Elem bg = background ? 1 : 0;
  std::size_t rec_count = 0;
  for (const MarchElement& elem : test.elements) {
    if (!elem.is_delay) rec_count += elem.ops.size() * n;
  }
  t.recs.reserve(rec_count);
  t.march.reserve(test.elements.size());
  for (const MarchElement& elem : test.elements) {
    core::MarchSegment seg;
    seg.begin = t.recs.size();
    if (elem.is_delay) {
      seg.end = seg.begin;
      seg.is_delay = true;
      t.march.push_back(seg);
      continue;
    }
    if (elem.ops.empty() || elem.ops.size() > 32) {
      throw std::invalid_argument(
          "make_march_transcript: element needs 1..32 ops (read_mask "
          "width), got " +
          std::to_string(elem.ops.size()));
    }
    seg.period = static_cast<std::uint32_t>(elem.ops.size());
    for (std::uint32_t j = 0; j < seg.period; ++j) {
      if (elem.ops[j].is_read()) {
        seg.read_mask |= std::uint32_t{1} << j;
        t.total_reads += n;
      } else {
        t.total_writes += n;
      }
    }
    auto emit = [&](mem::Addr addr) {
      for (const MarchOp& op : elem.ops) {
        t.recs.push_back({addr, op.data == 0 ? bg : bg ^ 1U});
      }
    };
    if (elem.order == Order::kDown) {
      for (mem::Addr i = n; i-- > 0;) emit(i);
    } else {
      for (mem::Addr i = 0; i < n; ++i) emit(i);
    }
    seg.end = t.recs.size();
    t.march.push_back(seg);
  }
  return t;
}

template <typename W>
MarchPackedVerdictT<W> run_march_packed(mem::PackedFaultRamT<W>& ram,
                                        const core::OpTranscript& t,
                                        const MarchRunOptions& options) {
  assert(t.n == ram.size());
  const W active = ram.active_mask();
  MarchPackedVerdictT<W> verdict;
  W mismatch{};
  // Active lanes whose mismatch has not latched yet (early abort
  // retires lanes the moment they latch: a March verdict is monotone).
  W pending = active;
  std::uint64_t op_idx = 0;
  for (const core::MarchSegment& seg : t.march) {
    if (seg.is_delay) {
      ram.advance_time(t.delay_ticks);
      continue;
    }
    const core::OpRec* r = t.recs.data() + seg.begin;
    const core::OpRec* const end = t.recs.data() + seg.end;
    const std::uint32_t period = seg.period;
    const std::uint32_t read_mask = seg.read_mask;
    while (r != end) {
      for (std::uint32_t j = 0; j < period; ++j, ++r) {
        ++op_idx;
        if ((read_mask >> j) & 1U) {
          mismatch |= ram.read(r->addr) ^ mem::lane_broadcast<W>(r->golden);
          if (options.early_abort) {
            // A lane's scalar abort run stops at its first mismatching
            // read having issued exactly op_idx ops.
            const W newly = pending & mismatch;
            if (mem::lane_any(newly)) {
              verdict.scalar_ops +=
                  static_cast<std::uint64_t>(mem::lane_popcount(newly)) *
                  op_idx;
              pending &= ~newly;
              if (!mem::lane_any(pending)) {
                verdict.detected = mismatch;
                return verdict;
              }
            }
          }
        } else {
          ram.write(r->addr, mem::lane_broadcast<W>(r->golden));
        }
      }
    }
  }
  // Remaining lanes (all active lanes when early_abort is off) ran the
  // complete test.
  const W full = options.early_abort ? pending : active;
  verdict.scalar_ops +=
      static_cast<std::uint64_t>(mem::lane_popcount(full)) * t.total_ops();
  verdict.detected = mismatch;
  return verdict;
}

template MarchPackedVerdictT<mem::LaneWord> run_march_packed(
    mem::PackedFaultRamT<mem::LaneWord>&, const core::OpTranscript&,
    const MarchRunOptions&);
template MarchPackedVerdictT<mem::WideWord<4>> run_march_packed(
    mem::PackedFaultRamT<mem::WideWord<4>>&, const core::OpTranscript&,
    const MarchRunOptions&);
template MarchPackedVerdictT<mem::WideWord<8>> run_march_packed(
    mem::PackedFaultRamT<mem::WideWord<8>>&, const core::OpTranscript&,
    const MarchRunOptions&);

std::uint64_t run_march_packed(const MarchTest& test,
                               mem::PackedFaultRam& ram, bool background,
                               std::uint64_t delay_ticks) {
  const core::OpTranscript t =
      make_march_transcript(test, ram.size(), background, delay_ticks);
  return run_march_packed(ram, t, MarchRunOptions{}).detected;
}

MarchResult run_march_backgrounds(const MarchTest& test, mem::Memory& memory,
                                  const std::vector<mem::Word>& backgrounds,
                                  const MarchRunOptions& options) {
  assert(!backgrounds.empty());
  MarchResult merged;
  for (mem::Word bg : backgrounds) {
    const MarchResult r =
        run_march(test, memory, bg, kDefaultDelayTicks, options);
    merged.ops += r.ops;
    merged.mismatches += r.mismatches;
    if (r.fail && !merged.fail) {
      merged.fail = true;
      merged.first_addr = r.first_addr;
      merged.first_expected = r.first_expected;
      merged.first_actual = r.first_actual;
    }
    // The abort-aware reference stops the whole background sweep at
    // the first failing run.
    if (options.early_abort && merged.fail) break;
  }
  return merged;
}

std::vector<mem::Word> standard_backgrounds(unsigned m) {
  assert(m >= 1 && m <= 32);
  std::vector<mem::Word> bgs{0};
  // Stripe widths 1, 2, 4, ... < m produce the checkerboard family.
  for (unsigned stripe = 1; stripe < m; stripe <<= 1) {
    mem::Word bg = 0;
    for (unsigned bit = 0; bit < m; ++bit) {
      if ((bit / stripe) & 1U) bg |= mem::Word{1} << bit;
    }
    bgs.push_back(bg);
  }
  return bgs;
}

}  // namespace prt::march
