#include "analysis/oracle_cache.hpp"

#include <utility>

#include "core/prt_packed.hpp"
#include "util/fail_point.hpp"

namespace prt::analysis {

template <typename Entry, typename Build>
std::shared_ptr<const Entry> OracleCache::lookup(
    SlotMap<Entry> OracleCache::*map, std::string key,
    std::atomic<std::size_t>& builds, Build&& build) {
  // A failed build must never poison the key: the builder evicts its
  // slot before publishing the exception, so the next requester
  // rebuilds from scratch.  A waiter that was already blocked on the
  // failed slot retries the lookup once itself (becoming the new
  // builder if nobody beat it there) instead of just relaying a
  // failure that may have been transient; a second failure propagates.
  for (int attempt = 0;; ++attempt) {
    std::promise<std::shared_ptr<const Entry>> promise;
    Slot<Entry> slot;
    {
      util::MutexLock lock(mutex_);
      auto [it, inserted] = (this->*map).try_emplace(key);
      if (!inserted) {
        slot = it->second;  // someone else built / is building this key
      } else {
        it->second = promise.get_future().share();
      }
    }
    if (slot.valid()) {
      try {
        return slot.get();  // blocks only while building
      } catch (...) {
        if (attempt > 0) throw;
        continue;
      }
    }
    // First requester: build outside the lock so distinct keys build
    // concurrently and lookups of cached keys never wait on a build.
    // Tests inject build failures here to pin the eviction protocol.
    try {
      util::FailPoint::hit("oracle_cache.build");
      auto entry = std::make_shared<const Entry>(build());
      ++builds;
      promise.set_value(entry);
      return entry;
    } catch (...) {
      // Un-publish the failed slot so a later call can retry, and hand
      // the exception to this caller and to any concurrent waiter.
      {
        util::MutexLock lock(mutex_);
        (this->*map).erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
}

std::shared_ptr<const OracleCache::PrtEntry> OracleCache::prt(
    const core::PrtScheme& scheme, mem::Addr n) {
  std::string key =
      core::scheme_fingerprint(scheme) + "|n=" + std::to_string(n);
  return lookup(&OracleCache::prt_, std::move(key), prt_builds_, [&] {
    PrtEntry entry;
    entry.oracle = core::make_prt_oracle(scheme, n);
    entry.packable = core::prt_scheme_packable(scheme);
    if (entry.packable) {
      entry.transcript = core::make_op_transcript(scheme, entry.oracle);
    }
    return entry;
  });
}

std::shared_ptr<const OracleCache::MarchEntry> OracleCache::march(
    const march::MarchTest& test, mem::Addr n, bool background,
    std::uint64_t delay_ticks) {
  std::string key = march::test_fingerprint(test) + "|n=" + std::to_string(n) +
                    "|bg=" + (background ? "1" : "0") +
                    "|del=" + std::to_string(delay_ticks);
  return lookup(&OracleCache::march_, std::move(key), march_builds_, [&] {
    return MarchEntry{
        march::make_march_transcript(test, n, background, delay_ticks)};
  });
}

std::size_t OracleCache::size() const {
  util::MutexLock lock(mutex_);
  return prt_.size() + march_.size();
}

void OracleCache::clear() {
  util::MutexLock lock(mutex_);
  prt_.clear();
  march_.clear();
}

OracleCache& OracleCache::global() {
  static OracleCache cache;
  return cache;
}

}  // namespace prt::analysis
