#include "march/march_test.hpp"

namespace prt::march {

std::size_t MarchTest::ops_per_cell() const {
  std::size_t total = 0;
  for (const auto& e : elements) total += e.ops.size();
  return total;
}

std::string test_fingerprint(const MarchTest& test) {
  // The notation rendering already encodes every structural field one
  // per character (order symbol, r/w + data index, Del); the name is
  // display-only and excluded from the rendering's element part.
  return to_string(test);
}

std::string to_string(const MarchTest& test) {
  std::string out = "{";
  for (std::size_t i = 0; i < test.elements.size(); ++i) {
    const auto& e = test.elements[i];
    if (i != 0) out += ';';
    if (e.is_delay) {
      out += "Del";
      continue;
    }
    switch (e.order) {
      case Order::kUp: out += '^'; break;
      case Order::kDown: out += 'v'; break;
      case Order::kEither: out += 'c'; break;
    }
    out += '(';
    for (std::size_t j = 0; j < e.ops.size(); ++j) {
      if (j != 0) out += ',';
      out += e.ops[j].is_read() ? 'r' : 'w';
      out += static_cast<char>('0' + e.ops[j].data);
    }
    out += ')';
  }
  out += '}';
  return out;
}

namespace {

/// Cursor over the input with helpers; keeps the parser readable.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n')) {
      ++pos;
    }
  }
  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
  bool eat(char c) {
    if (!done() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  /// Consumes a UTF-8 sequence if it matches, returns success.
  bool eat_utf8(std::string_view seq) {
    if (text.substr(pos, seq.size()) == seq) {
      pos += seq.size();
      return true;
    }
    return false;
  }
};

std::optional<Order> parse_order(Cursor& cur) {
  cur.skip_ws();
  if (cur.eat('^') || cur.eat_utf8("⇑")) return Order::kUp;    // ⇑
  if (cur.eat('v') || cur.eat_utf8("⇓")) return Order::kDown;  // ⇓
  if (cur.eat('c') || cur.eat_utf8("⇕")) return Order::kEither;  // ⇕
  return std::nullopt;
}

std::optional<MarchElement> parse_element(Cursor& cur) {
  cur.skip_ws();
  if (cur.eat_utf8("Del") || cur.eat_utf8("DEL")) {
    return delay_element();
  }
  const auto order = parse_order(cur);
  if (!order) return std::nullopt;
  MarchElement elem;
  elem.order = *order;
  cur.skip_ws();
  if (!cur.eat('(')) return std::nullopt;
  while (true) {
    cur.skip_ws();
    if (cur.eat(')')) break;
    if (cur.done()) return std::nullopt;
    const char op = cur.peek();
    if (op != 'r' && op != 'w') return std::nullopt;
    ++cur.pos;
    cur.skip_ws();
    if (cur.done() || (cur.peek() != '0' && cur.peek() != '1')) {
      return std::nullopt;
    }
    const unsigned data = static_cast<unsigned>(cur.peek() - '0');
    ++cur.pos;
    elem.ops.push_back({op == 'r' ? MarchOp::Type::kRead
                                  : MarchOp::Type::kWrite,
                        data});
    cur.skip_ws();
    cur.eat(',');  // separators optional
  }
  if (elem.ops.empty()) return std::nullopt;
  return elem;
}

}  // namespace

std::optional<MarchTest> parse_march(std::string_view text,
                                     std::string name) {
  Cursor cur{text};
  cur.skip_ws();
  if (!cur.eat('{')) return std::nullopt;
  MarchTest test;
  test.name = std::move(name);
  while (true) {
    auto elem = parse_element(cur);
    if (!elem) return std::nullopt;
    test.elements.push_back(std::move(*elem));
    cur.skip_ws();
    if (cur.eat(';')) continue;
    if (cur.eat('}')) break;
    return std::nullopt;
  }
  cur.skip_ws();
  if (!cur.done()) return std::nullopt;
  if (test.elements.empty()) return std::nullopt;
  return test;
}

}  // namespace prt::march
