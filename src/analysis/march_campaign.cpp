#include "analysis/march_campaign.hpp"

#include <utility>

#include "analysis/campaign_driver.hpp"

namespace prt::analysis {

MarchCampaign::MarchCampaign(march::MarchTest test, const CampaignOptions& opt,
                             const MarchEngineOptions& engine)
    : driver_(detail::make_driver(std::move(test), opt, engine)) {}

MarchCampaign::~MarchCampaign() = default;

const march::MarchTest& MarchCampaign::test() const {
  return driver_->workload().test();
}

CampaignResult MarchCampaign::run(
    std::span<const mem::Fault> universe) const {
  return driver_->run(universe);
}

CampaignOutcome MarchCampaign::run(std::span<const mem::Fault> universe,
                                   const util::StopToken& stop) const {
  return driver_->run_stoppable(universe, stop);
}

CampaignResult run_march_campaign(std::span<const mem::Fault> universe,
                                  march::MarchTest test,
                                  const CampaignOptions& opt,
                                  const MarchEngineOptions& engine) {
  return MarchCampaign(std::move(test), opt, engine).run(universe);
}

}  // namespace prt::analysis
