// Thread-safe, build-once memoization of golden-run artifacts, with a
// budgeted LRU so a long-lived service cannot grow without bound.
//
// Everything a campaign derives from the workload alone — the
// PrtOracle, the scheme's packability, the compiled core::OpTranscript
// (PRT and March flavours) — depends only on (scheme, n) or on
// (march test, n, background, delay) and is immutable once built.
// Before this cache each CampaignEngine / MarchCampaign built its own
// copy in its constructor, so a multi-size sweep, a port sweep at one
// size, or simply two engines over the same scheme recompiled the same
// golden run from scratch.  OracleCache hoists that memoization out of
// the engines:
//
//  * keys are structural fingerprints (core::scheme_fingerprint,
//    march::test_fingerprint) plus the run geometry, so renamed but
//    structurally identical workloads share entries and distinct
//    structures never alias;
//  * the first requester of a key builds the entry *outside* the cache
//    lock while concurrent requesters of the same key block on a
//    shared future — exactly one build per key, even under concurrent
//    engine construction (pinned by tests/test_campaign_suite.cpp);
//    concurrent requesters of different keys build in parallel;
//  * entries are handed out as shared_ptr<const ...>: engines keep
//    their artifacts alive independently of the cache (clear() and
//    eviction cannot invalidate a running campaign);
//  * an optional byte budget (set_budget_bytes) bounds the resident
//    footprint: completed entries join an LRU list with an
//    approximate byte cost, and finishing a build evicts
//    least-recently-used entries until the total fits.  Over-budget
//    behaviour degrades to rebuild-on-miss — never to a failure.
//
// Engines and the suite share the process-wide instance (global());
// tests and benches that need cold-start timings construct their own
// or clear() the global one.  The campaign service surfaces the
// hit/miss/eviction counters through CampaignService::stats().  See
// DESIGN.md §10 and §13.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/op_transcript.hpp"
#include "core/prt_engine.hpp"
#include "march/march_runner.hpp"
#include "util/annotations.hpp"

namespace prt::analysis {

class OracleCache {
 public:
  /// Everything derivable from (scheme, n): the memoized oracle, the
  /// scheme's lane-packability, and — iff packable — the compiled
  /// replay transcript.  Immutable after construction.
  struct PrtEntry {
    core::PrtOracle oracle;
    /// core::prt_scheme_packable(scheme): the scheme runs bit-parallel
    /// (GF(2) on the single-plane hot loop, GF(2^m) over m bit planes
    /// with compiled tap matrices).  Campaign packing additionally
    /// requires the campaign word width to equal the scheme's field
    /// degree (transcript.width) — a per-campaign fact that stays
    /// outside the cache.
    bool packable = false;
    /// Compiled golden op stream; empty unless `packable`.
    core::OpTranscript transcript;
  };

  /// Everything derivable from (test, n, background, delay_ticks): the
  /// compiled March transcript.  Immutable after construction.
  struct MarchEntry {
    core::OpTranscript transcript;
  };

  /// Point-in-time counters (monotonic except entries/bytes, which are
  /// the current residency).  A lookup that finds an entry — built or
  /// still building — is a hit; one that starts a build is a miss.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  OracleCache() = default;
  OracleCache(const OracleCache&) = delete;
  OracleCache& operator=(const OracleCache&) = delete;

  /// Returns the entry for (scheme, n), building it exactly once per
  /// key.  Blocks only when another thread is already building the
  /// same key.  Precondition (as for make_prt_oracle): n exceeds every
  /// iteration's register length k.
  [[nodiscard]] std::shared_ptr<const PrtEntry> prt(
      const core::PrtScheme& scheme, mem::Addr n);

  /// Returns the entry for (test, n, background, delay_ticks),
  /// building it exactly once per key.
  [[nodiscard]] std::shared_ptr<const MarchEntry> march(
      const march::MarchTest& test, mem::Addr n, bool background,
      std::uint64_t delay_ticks = march::kDefaultDelayTicks);

  /// Number of entries actually built (not lookups) — the
  /// one-build-per-key test hook and the bench's cache-hit telemetry.
  [[nodiscard]] std::size_t prt_builds() const { return prt_builds_; }
  [[nodiscard]] std::size_t march_builds() const { return march_builds_; }

  /// Cached entry count (both kinds).
  [[nodiscard]] std::size_t size() const;

  /// Hit/miss/eviction counters plus current residency.
  [[nodiscard]] Stats stats() const;

  /// Sets the approximate resident-byte budget; 0 (the default) means
  /// unbounded.  Applies immediately: a shrink evicts down to the new
  /// budget before returning.  The budget bounds *cached* footprint
  /// only — entries handed out stay alive through their shared_ptrs.
  void set_budget_bytes(std::size_t budget);
  [[nodiscard]] std::size_t budget_bytes() const;

  /// Drops every cached entry (outstanding shared_ptrs stay valid).
  /// Benches use this to measure cold-start construction costs.
  void clear();

  /// The process-wide instance every engine and suite shares.
  [[nodiscard]] static OracleCache& global();

 private:
  /// LRU identity of a completed entry: which map ('p'/'m') + its key.
  using LruKey = std::pair<char, std::string>;

  template <typename Entry>
  struct Slot {
    std::shared_future<std::shared_ptr<const Entry>> future;
    /// Approximate footprint; 0 until the build completes.
    std::size_t bytes = 0;
    /// Position in lru_ (most-recent at front); only while in_lru.
    std::list<LruKey>::iterator lru_it{};
    bool in_lru = false;
  };
  template <typename Entry>
  using SlotMap = std::unordered_map<std::string, Slot<Entry>>;

  /// find-or-start-building: the common lock protocol of prt()/march().
  /// Takes the map as a pointer-to-member (not a reference) so the
  /// guarded field is only ever dereferenced under mutex_ inside —
  /// passing `prt_` by reference unlocked would itself be a
  /// -Wthread-safety-reference violation.  `kind` is the LRU tag for
  /// the map ('p' for prt_, 'm' for march_).
  template <typename Entry, typename Build>
  std::shared_ptr<const Entry> lookup(SlotMap<Entry> OracleCache::*map,
                                      char kind, std::string key,
                                      std::atomic<std::size_t>& builds,
                                      Build&& build) PRT_EXCLUDES(mutex_);

  /// Evicts LRU-tail entries until total_bytes_ fits budget_bytes_
  /// (no-op when the budget is 0).  Only completed entries are in the
  /// LRU, so in-flight builds are never evicted from under waiters.
  void evict_locked() PRT_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  SlotMap<PrtEntry> prt_ PRT_GUARDED_BY(mutex_);
  SlotMap<MarchEntry> march_ PRT_GUARDED_BY(mutex_);
  std::list<LruKey> lru_ PRT_GUARDED_BY(mutex_);
  std::size_t total_bytes_ PRT_GUARDED_BY(mutex_) = 0;
  std::size_t budget_bytes_ PRT_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ PRT_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ PRT_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ PRT_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> prt_builds_{0};
  std::atomic<std::size_t> march_builds_{0};
};

}  // namespace prt::analysis
