#include "mem/fault_universe.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace prt::mem {

std::vector<Fault> single_cell_universe(Addr n, unsigned m,
                                        bool read_logic) {
  std::vector<Fault> out;
  out.reserve(static_cast<std::size_t>(n) * m * (read_logic ? 9 : 5));
  for (Addr c = 0; c < n; ++c) {
    for (unsigned b = 0; b < m; ++b) {
      const BitRef v{c, b};
      out.push_back(Fault::saf(v, 0));
      out.push_back(Fault::saf(v, 1));
      out.push_back(Fault::tf(v, /*up=*/true));
      out.push_back(Fault::tf(v, /*up=*/false));
      out.push_back(Fault::wdf(v));
      if (read_logic) {
        out.push_back(Fault::rdf(v));
        out.push_back(Fault::drdf(v));
        out.push_back(Fault::irf(v));
        out.push_back(Fault::sof(v));
      }
    }
  }
  return out;
}

std::vector<std::pair<Addr, Addr>> select_pairs(Addr n, std::uint64_t limit,
                                                std::uint64_t seed) {
  std::vector<std::pair<Addr, Addr>> pairs;
  const std::uint64_t all = static_cast<std::uint64_t>(n) * (n - 1);
  if (all <= limit) {
    pairs.reserve(all);
    for (Addr a = 0; a < n; ++a) {
      for (Addr v = 0; v < n; ++v) {
        if (a != v) pairs.emplace_back(a, v);
      }
    }
    return pairs;
  }
  Xoshiro256 rng(seed);
  pairs.reserve(limit);
  for (std::uint64_t i = 0; i < limit; ++i) {
    const Addr a = static_cast<Addr>(rng.below(n));
    Addr v = static_cast<Addr>(rng.below(n - 1));
    if (v >= a) ++v;
    pairs.emplace_back(a, v);
  }
  return pairs;
}

std::vector<Fault> coupling_universe(
    const std::vector<std::pair<Addr, Addr>>& pairs, unsigned bit) {
  std::vector<Fault> out;
  out.reserve(pairs.size() * 9);
  for (const auto& [a, v] : pairs) {
    const BitRef agg{a, bit};
    const BitRef vic{v, bit};
    out.push_back(Fault::cf_in(vic, agg));
    out.push_back(Fault::cf_id(vic, agg, /*up=*/true, 0));
    out.push_back(Fault::cf_id(vic, agg, /*up=*/true, 1));
    out.push_back(Fault::cf_id(vic, agg, /*up=*/false, 0));
    out.push_back(Fault::cf_id(vic, agg, /*up=*/false, 1));
    out.push_back(Fault::cf_st(vic, agg, /*when=*/0, /*forced=*/1));
    out.push_back(Fault::cf_st(vic, agg, /*when=*/1, /*forced=*/0));
    out.push_back(Fault::cf_st(vic, agg, /*when=*/1, /*forced=*/1));
    out.push_back(Fault::cf_st(vic, agg, /*when=*/0, /*forced=*/0));
  }
  return out;
}

std::vector<Fault> classical_universe(Addr n) {
  assert(n >= 3);
  std::vector<Fault> u;
  u.reserve(static_cast<std::size_t>(n) * 12);
  for (Addr c = 0; c < n; ++c) {
    u.push_back(Fault::saf({c, 0}, 0));
    u.push_back(Fault::saf({c, 0}, 1));
    u.push_back(Fault::tf({c, 0}, /*up=*/true));
    u.push_back(Fault::tf({c, 0}, /*up=*/false));
  }
  for (Addr c = 0; c + 1 < n; ++c) {
    for (auto [a, v] : {std::pair<Addr, Addr>{c, c + 1}, {c + 1, c}}) {
      u.push_back(Fault::cf_in({v, 0}, {a, 0}));
    }
    u.push_back(Fault::bridge({c, 0}, {c + 1, 0}, /*wired_and=*/true));
    u.push_back(Fault::bridge({c, 0}, {c + 1, 0}, /*wired_and=*/false));
  }
  for (Addr a = 0; a < n; ++a) {
    u.push_back(Fault::af_no_access(a));
    u.push_back(Fault::af_wrong_access(a, a + 1 < n ? a + 1 : n - 2));
  }
  return u;
}

std::vector<Fault> van_de_goor_universe(Addr n) {
  assert(n >= 3);
  std::vector<Fault> u = single_cell_universe(n, 1, /*read_logic=*/true);
  for (Addr c = 0; c + 1 < n; ++c) {
    for (auto [a, v] : {std::pair<Addr, Addr>{c, c + 1}, {c + 1, c}}) {
      u.push_back(Fault::cf_in({v, 0}, {a, 0}));
      for (unsigned when : {0u, 1u}) {
        for (unsigned forced : {0u, 1u}) {
          u.push_back(Fault::cf_st({v, 0}, {a, 0}, when, forced));
        }
      }
      for (bool up : {true, false}) {
        for (unsigned forced : {0u, 1u}) {
          u.push_back(Fault::cf_id({v, 0}, {a, 0}, up, forced));
        }
      }
    }
    u.push_back(Fault::bridge({c, 0}, {c + 1, 0}, /*wired_and=*/true));
    u.push_back(Fault::bridge({c, 0}, {c + 1, 0}, /*wired_and=*/false));
  }
  for (Addr a = 0; a < n; ++a) {
    u.push_back(Fault::af_no_access(a));
    u.push_back(Fault::af_wrong_access(a, a + 1 < n ? a + 1 : n - 2));
    u.push_back(Fault::af_multi_access(a, (a + n / 2) % n));
  }
  return u;
}

std::vector<Fault> make_universe(Addr n, unsigned m,
                                 const UniverseOptions& opt) {
  assert(n >= 2);
  std::vector<Fault> out;

  if (opt.single_cell) {
    auto sc = single_cell_universe(n, m, opt.read_logic);
    out.insert(out.end(), sc.begin(), sc.end());
  }

  if (opt.coupling || opt.bridges) {
    const auto pairs = select_pairs(n, opt.coupling_pair_limit, opt.seed);
    if (opt.coupling) {
      auto cf = coupling_universe(pairs, /*bit=*/0);
      out.insert(out.end(), cf.begin(), cf.end());
    }
    if (opt.bridges) {
      for (const auto& [a, v] : pairs) {
        if (a < v) {  // unordered: one bridge per cell pair
          out.push_back(Fault::bridge({a, 0}, {v, 0}, /*wired_and=*/true));
          out.push_back(Fault::bridge({a, 0}, {v, 0}, /*wired_and=*/false));
        }
      }
    }
  }

  // Intra-word coupling: adjacent bit pairs inside each word.
  if (opt.intra_word && m > 1) {
    for (Addr c = 0; c < n; ++c) {
      for (unsigned b = 0; b + 1 < m; ++b) {
        const BitRef lo{c, b};
        const BitRef hi{c, b + 1};
        out.push_back(Fault::cf_in(hi, lo));
        out.push_back(Fault::cf_in(lo, hi));
        out.push_back(Fault::cf_id(hi, lo, /*up=*/true, 1));
        out.push_back(Fault::cf_id(lo, hi, /*up=*/false, 0));
        out.push_back(Fault::bridge(lo, hi, /*wired_and=*/true));
        out.push_back(Fault::bridge(lo, hi, /*wired_and=*/false));
      }
    }
  }

  if (opt.address_decoder) {
    for (Addr a = 0; a < n; ++a) {
      out.push_back(Fault::af_no_access(a));
      out.push_back(Fault::af_wrong_access(a, (a + 1) % n));
      out.push_back(Fault::af_multi_access(a, (a + n / 2) % n));
    }
  }

  if (opt.npsf) {
    Addr cols = opt.npsf_grid_cols;
    if (cols == 0) {
      cols = 1;
      while (cols * cols < n) ++cols;
    } else {
      // An explicit grid width must describe a real grid: a 1-cell-wide
      // strip has no interior cells (every victim sits on the west AND
      // east border, so the whole NPSF universe silently vanishes), and
      // a width that does not divide the cell count leaves a ragged
      // last row whose "south" neighbours do not exist.  Both are
      // configuration bugs, not universes — fail loudly with the value.
      if (cols == 1) {
        throw std::invalid_argument(
            "make_universe: npsf_grid_cols = 1 gives a 1-cell-wide grid "
            "with no interior victims");
      }
      if (n % cols != 0) {
        throw std::invalid_argument(
            "make_universe: npsf_grid_cols = " + std::to_string(cols) +
            " does not divide n = " + std::to_string(n) +
            " into whole grid rows");
      }
    }
    for (Addr c = 0; c < n; ++c) {
      const Addr row = c / cols;
      const Addr col = c % cols;
      if (row == 0 || col == 0 || col + 1 >= cols || c + cols >= n) {
        continue;
      }
      // Two representative patterns per cell keep the universe linear
      // in n (all 16 patterns x 2 values is x32 and adds little).
      out.push_back(Fault::npsf_static({c, 0}, 0b0000, 1, cols));
      out.push_back(Fault::npsf_static({c, 0}, 0b1111, 0, cols));
    }
  }

  return out;
}

}  // namespace prt::mem
