// Rendering of campaign results as report tables.
#pragma once

#include <string>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "util/table.hpp"

namespace prt::analysis {

/// A named campaign outcome (one algorithm / configuration).
struct NamedResult {
  std::string name;
  CampaignResult result;
};

/// Builds the coverage table: one row per fault class present in any
/// result, one column per algorithm, cells in percent; final row is the
/// overall coverage.
[[nodiscard]] Table coverage_table(const std::vector<NamedResult>& results);

}  // namespace prt::analysis
