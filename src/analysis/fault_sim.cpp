#include "analysis/fault_sim.hpp"

#include <cassert>

namespace prt::analysis {

CampaignResult run_campaign(std::span<const mem::Fault> universe,
                            const TestAlgorithm& test,
                            const CampaignOptions& opt) {
  CampaignResult result;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const mem::Fault& fault = universe[i];
    mem::FaultyRam ram(opt.n, opt.m, opt.ports);
    if (opt.prefill_zero) {
      for (mem::Addr a = 0; a < opt.n; ++a) ram.poke(a, 0);
    }
    ram.inject(fault);
    const bool detected = test(ram);
    auto& cls = result.by_class[mem::fault_class(fault.kind)];
    ++cls.total;
    ++result.overall.total;
    if (detected) {
      ++cls.detected;
      ++result.overall.detected;
    } else {
      result.escapes.push_back(i);
    }
  }
  return result;
}

TestAlgorithm march_algorithm(march::MarchTest test) {
  return [test = std::move(test)](mem::Memory& memory) {
    const auto bgs = march::standard_backgrounds(memory.width());
    return march::run_march_backgrounds(test, memory, bgs).fail;
  };
}

TestAlgorithm prt_algorithm(core::PrtScheme scheme) {
  return [scheme = std::move(scheme)](mem::Memory& memory) {
    return core::run_prt(memory, scheme).detected();
  };
}

TestAlgorithm prt_algorithm_prefix(core::PrtScheme scheme,
                                   std::size_t iterations) {
  assert(iterations >= 1 && iterations <= scheme.iterations.size());
  scheme.iterations.resize(iterations);
  return prt_algorithm(std::move(scheme));
}

}  // namespace prt::analysis
