// Sharded multi-configuration campaign suite.
//
// The paper's coverage and cost claims are sweeps — coverage vs.
// memory size, word width and port count — but one CampaignEngine /
// MarchCampaign evaluates exactly one (n, m, ports) point.
// CampaignSuite fans a single request out over a whole grid of
// configurations:
//
//  * one workload (a PRT scheme *factory*, since schemes are sized per
//    n, or one March test) plus a list of CampaignOptions and a
//    universe *generator* called once per configuration;
//  * every configuration's universe is generated, its golden
//    artifacts fetched from the shared analysis::OracleCache (so a
//    port sweep at one n compiles its oracle once, and repeated
//    sweeps recompile nothing), and its fault shards flattened with
//    every other configuration's onto ONE worker pool — small
//    configurations never serialize behind big ones and the pool is
//    spawned once per suite, not once per point;
//  * per-configuration shard results are merged in shard order, so
//    each configuration's CampaignResult is bit-identical to a
//    standalone CampaignEngine / MarchCampaign run over the same
//    universe, at any thread count (pinned by
//    tests/test_campaign_suite.cpp);
//  * the merged SuiteResult additionally carries the aggregate
//    coverage/ops rollup and renders the per-configuration coverage
//    table.
//
// See DESIGN.md §10 and bench/bench_campaign.cpp's suite section for
// the measured speedup over running the same grid as sequential
// engines.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "analysis/march_campaign.hpp"
#include "util/table.hpp"

namespace prt::analysis {

/// Builds the fault universe for one configuration; `index` is the
/// configuration's position in the requested grid, so callers with
/// pre-generated universes can return theirs directly instead of
/// reverse-matching options.  Called once per configuration, possibly
/// concurrently from pool workers (must be safe to call concurrently
/// with distinct arguments).
using UniverseGenerator = std::function<std::vector<mem::Fault>(
    const CampaignOptions&, std::size_t index)>;

/// Builds the PRT scheme for one configuration (schemes are sized per
/// n / m, e.g. core::extended_scheme_bom).  Same concurrency contract
/// as UniverseGenerator.
using SchemeFactory =
    std::function<core::PrtScheme(const CampaignOptions&)>;

/// One configuration's outcome inside a SuiteResult.
struct SuiteConfigResult {
  CampaignOptions options;
  /// Workload display name (scheme name / March test name).
  std::string workload;
  /// Universe size the generator produced for this configuration.
  std::size_t faults = 0;
  /// Bit-identical to a standalone engine run over the same universe.
  /// On a stopped run this is the exact tally over the configuration's
  /// completed shards only (interrupted shards are discarded whole).
  CampaignResult result;
  /// kComplete when every shard of this configuration finished; the
  /// stop cause otherwise.  A configuration the stop pre-empted before
  /// its universe was even generated reports 0 shards.
  RunStatus status = RunStatus::kComplete;
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
};

/// Merged outcome of a suite run: per-configuration results in request
/// order plus the aggregate coverage/ops rollup.
struct SuiteResult {
  std::vector<SuiteConfigResult> configs;
  /// kComplete when every configuration completed; the stop cause
  /// otherwise (the per-configuration statuses say which results are
  /// partial).
  RunStatus status = RunStatus::kComplete;
  /// Coverage summed over every configuration, per fault class and
  /// overall (escape indices stay per-configuration — they index each
  /// configuration's own universe).
  std::map<mem::FaultClass, ClassCoverage> by_class;
  ClassCoverage overall;
  /// Memory operations summed over every configuration's runs.
  std::uint64_t ops = 0;

  /// Renders the per-configuration coverage/ops table (one row per
  /// configuration plus the aggregate row).
  [[nodiscard]] Table table() const;
};

class CampaignSuite {
 public:
  /// PRT suite: `factory` is invoked once per configuration to size
  /// the scheme.  Engine options apply to every configuration
  /// (threads sizes the one shared pool).
  CampaignSuite(SchemeFactory factory, const EngineOptions& engine = {});
  /// March suite: one test drives every configuration.
  CampaignSuite(march::MarchTest test, const MarchEngineOptions& engine = {});
  ~CampaignSuite();
  CampaignSuite(const CampaignSuite&) = delete;
  CampaignSuite& operator=(const CampaignSuite&) = delete;

  /// Runs every configuration's campaign, flattening (configuration x
  /// shard) tasks onto one pool.  Throws std::invalid_argument on any
  /// malformed configuration (validate_campaign_options, checked
  /// up-front for every configuration before any work is scheduled).
  /// Not safe to call concurrently on one suite; distinct suites are
  /// independent.
  [[nodiscard]] SuiteResult run(std::span<const CampaignOptions> configs,
                                const UniverseGenerator& universe) const;

  /// Cancellable suite run: every shard task polls `stop`, interrupted
  /// shards are discarded whole, and each configuration's result is
  /// the exact merge of its completed shards (statuses on the config
  /// entries and the SuiteResult say what was cut short).  With a
  /// never-stopping token the result is bit-identical to run().
  [[nodiscard]] SuiteResult run(std::span<const CampaignOptions> configs,
                                const UniverseGenerator& universe,
                                const util::StopToken& stop) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: one-shot PRT suite run.
[[nodiscard]] SuiteResult run_prt_suite(
    std::span<const CampaignOptions> configs, SchemeFactory factory,
    const UniverseGenerator& universe, const EngineOptions& engine = {});

/// Convenience: one-shot March suite run.
[[nodiscard]] SuiteResult run_march_suite(
    std::span<const CampaignOptions> configs, march::MarchTest test,
    const UniverseGenerator& universe, const MarchEngineOptions& engine = {});

}  // namespace prt::analysis
