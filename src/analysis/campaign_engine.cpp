#include "analysis/campaign_engine.hpp"

#include <utility>

#include "analysis/campaign_driver.hpp"

namespace prt::analysis {

CampaignEngine::CampaignEngine(core::PrtScheme scheme,
                               const CampaignOptions& opt,
                               const EngineOptions& engine)
    : driver_(detail::make_driver(std::move(scheme), opt, engine)) {}

CampaignEngine::~CampaignEngine() = default;

const core::PrtScheme& CampaignEngine::scheme() const {
  return driver_->workload().scheme();
}

const core::PrtOracle& CampaignEngine::oracle() const {
  return driver_->workload().oracle();
}

CampaignResult CampaignEngine::run(
    std::span<const mem::Fault> universe) const {
  return driver_->run(universe);
}

CampaignOutcome CampaignEngine::run(std::span<const mem::Fault> universe,
                                    const util::StopToken& stop) const {
  return driver_->run_stoppable(universe, stop);
}

CampaignResult run_prt_campaign(std::span<const mem::Fault> universe,
                                const core::PrtScheme& scheme,
                                const CampaignOptions& opt,
                                const EngineOptions& engine) {
  return CampaignEngine(scheme, opt, engine).run(universe);
}

}  // namespace prt::analysis
