#include "analysis/campaign_service.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <iomanip>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/campaign_driver.hpp"
#include "analysis/oracle_cache.hpp"
#include "march/march_test.hpp"
#include "util/annotations.hpp"
#include "util/crc32.hpp"
#include "util/durable_write.hpp"
#include "util/fail_point.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace prt::analysis {

namespace {

// --- fingerprint ----------------------------------------------------
// FNV-1a over everything that determines a campaign's result: workload
// structure (scheme/test fingerprint), geometry, run options and the
// full universe.  A checkpoint is only ever merged into a request with
// the same fingerprint — resuming against a renamed-but-identical
// workload works, resuming against different faults cannot.

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void byte(unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void mix(const std::string& s) {
    mix(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
};

std::string request_fingerprint(const CampaignRequest& req) {
  Fnv1a f;
  if (req.scheme) {
    f.mix(std::string("prt"));
    f.mix(core::scheme_fingerprint(*req.scheme));
  } else {
    f.mix(std::string("march"));
    f.mix(march::test_fingerprint(*req.march_test));
  }
  f.mix(req.options.n);
  f.mix(req.options.m);
  f.mix(req.options.ports);
  f.mix(req.packed ? 1 : 0);
  f.mix(req.early_abort ? 1 : 0);
  f.mix(req.universe.size());
  for (const mem::Fault& fault : req.universe) {
    f.mix(static_cast<std::uint64_t>(fault.kind));
    f.mix(fault.victim.cell);
    f.mix(fault.victim.bit);
    f.mix(fault.aggressor.cell);
    f.mix(fault.aggressor.bit);
    f.mix(fault.state);
    f.mix(fault.alias);
    f.mix(fault.pattern);
    f.mix(fault.grid_cols);
    f.mix(fault.delay);
  }
  std::ostringstream hex;
  hex << std::hex << f.h;
  return hex.str();
}

// --- checkpoint file (format v2) ------------------------------------
// Plain text, integers only — parse(serialize(x)) is exact, which the
// resumed-equals-uninterrupted bit-identity guarantee rests on.  Every
// line after the version header carries its own CRC-32 so the loader
// can salvage the longest valid prefix of a torn or corrupted file
// (DESIGN.md §13):
//
//   prt-campaign-checkpoint v2
//   meta <crc32hex> fingerprint <fp> shards <total>
//   rec <crc32hex> shard <idx> ops <n> overall <d> <t> classes ...
//
// Each <crc32hex> is 8 lowercase hex digits over the rest of its line
// (the payload after "<crc32hex> ").  Replaced durably and atomically
// (util::durable_replace_file), so a *clean* crash leaves the previous
// checkpoint; the CRCs cover everything else (torn tails from
// power-loss on non-atomic media, bit rot, truncation in transit).

constexpr char kCheckpointHeader[] = "prt-campaign-checkpoint v2";

/// Loader guard against absurd (CRC-valid but foreign/crafted) shard
/// counts; real partitions are bounded by the universe size, which is
/// re-validated against the fingerprint after loading.
constexpr std::size_t kMaxCheckpointShards = std::size_t{1} << 24;

struct CheckpointShard {
  std::size_t index = 0;
  CampaignResult result;
};

struct Checkpoint {
  std::string fingerprint;
  std::size_t shards_total = 0;
  std::vector<CheckpointShard> shards;
};

std::string crc_hex(std::uint32_t crc) {
  std::ostringstream hex;
  hex << std::hex << std::setw(8) << std::setfill('0') << crc;
  return hex.str();
}

std::string shard_record_payload(const CheckpointShard& s) {
  std::ostringstream out;
  out << "shard " << s.index << " ops " << s.result.ops << " overall "
      << s.result.overall.detected << " " << s.result.overall.total
      << " classes " << s.result.by_class.size();
  for (const auto& [cls, cov] : s.result.by_class) {
    out << " " << static_cast<unsigned>(cls) << " " << cov.detected << " "
        << cov.total;
  }
  out << " escapes " << s.result.escapes.size();
  for (const std::size_t e : s.result.escapes) out << " " << e;
  out << " dispatch " << s.result.packed_faults << " "
      << s.result.scalar_faults;
  return out.str();
}

std::string serialize_checkpoint(const Checkpoint& cp) {
  std::ostringstream out;
  out << kCheckpointHeader << "\n";
  const std::string meta = "fingerprint " + cp.fingerprint + " shards " +
                           std::to_string(cp.shards_total);
  out << "meta " << crc_hex(util::crc32(meta)) << " " << meta << "\n";
  for (const CheckpointShard& s : cp.shards) {
    const std::string payload = shard_record_payload(s);
    out << "rec " << crc_hex(util::crc32(payload)) << " " << payload << "\n";
  }
  return out.str();
}

/// Validates "<tag> <crc32hex> <payload>" and returns the payload; any
/// structural or checksum mismatch is nullopt (the caller decides
/// whether that salvages or fails).
std::optional<std::string> checked_payload(const std::string& line,
                                           const std::string& tag) {
  const std::string prefix = tag + " ";
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  if (line.size() < prefix.size() + 10) return std::nullopt;
  if (line[prefix.size() + 8] != ' ') return std::nullopt;
  std::uint32_t want = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 8; ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    want = (want << 4) | digit;
  }
  std::string payload = line.substr(prefix.size() + 9);
  if (util::crc32(payload) != want) return std::nullopt;
  return payload;
}

/// Parses one CRC-verified record payload.  Returns false on any
/// malformation (wrong keyword, truncation, trailing junk) — the CRC
/// makes this unreachable for records we wrote, but the loader treats
/// parse failure exactly like a checksum failure: end of the valid
/// prefix.
bool parse_shard_record(const std::string& payload, CheckpointShard& s) {
  std::istringstream in(payload);
  std::string word;
  if (!(in >> word) || word != "shard") return false;
  if (!(in >> s.index)) return false;
  if (!(in >> word) || word != "ops") return false;
  if (!(in >> s.result.ops)) return false;
  if (!(in >> word) || word != "overall") return false;
  if (!(in >> s.result.overall.detected >> s.result.overall.total)) {
    return false;
  }
  if (!(in >> word) || word != "classes") return false;
  std::size_t classes = 0;
  if (!(in >> classes) || classes > 64) return false;
  for (std::size_t c = 0; c < classes; ++c) {
    unsigned cls = 0;
    ClassCoverage cov;
    if (!(in >> cls >> cov.detected >> cov.total)) return false;
    s.result.by_class[static_cast<mem::FaultClass>(cls)] = cov;
  }
  if (!(in >> word) || word != "escapes") return false;
  std::size_t escapes = 0;
  if (!(in >> escapes)) return false;
  for (std::size_t e = 0; e < escapes; ++e) {
    std::size_t idx = 0;
    if (!(in >> idx)) return false;
    s.result.escapes.push_back(idx);
  }
  // Dispatch tallies; absent in records written before the tallies
  // existed, which resume as 0/0 (telemetry only, never verdicts).
  if (in >> word) {
    if (word != "dispatch") return false;
    if (!(in >> s.result.packed_faults >> s.result.scalar_faults)) {
      return false;
    }
    if (in >> word) return false;  // trailing junk
  }
  return true;
}

/// Result of reading a checkpoint file for resume.
struct CheckpointLoad {
  /// The adopted checkpoint; nullopt = start fresh (file missing, or
  /// nothing before the records was usable).
  std::optional<Checkpoint> checkpoint;
  /// Corruption was detected and the valid prefix (possibly empty)
  /// was kept.  False for a missing file — that is a fresh run, not a
  /// salvage.
  bool salvaged = false;
  /// Record lines discarded at the corrupt tail.
  std::size_t records_dropped = 0;
};

/// Loads a v2 checkpoint, salvaging the longest valid prefix.
/// Decision table:
///   missing file                          -> fresh run
///   bad/old version header, bad meta CRC  -> fresh run, salvaged
///   record k fails CRC/parse/consistency  -> records [0, k), salvaged
/// Only the *caller* can hard-fail (fingerprint mismatch) — by the
/// time integrity is established, every remaining mismatch means "a
/// different campaign", never "corruption".
CheckpointLoad load_checkpoint(const std::string& path) {
  CheckpointLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string header;
  if (!std::getline(in, header) || header != kCheckpointHeader) {
    out.salvaged = true;
    return out;
  }
  std::string meta_line;
  std::optional<std::string> meta;
  if (std::getline(in, meta_line)) meta = checked_payload(meta_line, "meta");
  if (!meta) {
    out.salvaged = true;
    return out;
  }
  Checkpoint cp;
  {
    std::istringstream m(*meta);
    std::string word;
    std::string trailing;
    if (!(m >> word) || word != "fingerprint" || !(m >> cp.fingerprint) ||
        !(m >> word) || word != "shards" || !(m >> cp.shards_total) ||
        (m >> trailing) || cp.shards_total < 1 ||
        cp.shards_total > kMaxCheckpointShards) {
      out.salvaged = true;
      return out;
    }
  }
  std::vector<unsigned char> seen(cp.shards_total, 0);
  std::string line;
  while (std::getline(in, line)) {
    const std::optional<std::string> payload = checked_payload(line, "rec");
    CheckpointShard s;
    const bool ok = payload && parse_shard_record(*payload, s) &&
                    s.index < cp.shards_total && seen[s.index] == 0;
    if (!ok) {
      // End of the valid prefix: count this line and everything after
      // it as dropped, keep what verified.
      out.salvaged = true;
      ++out.records_dropped;
      while (std::getline(in, line)) ++out.records_dropped;
      break;
    }
    seen[s.index] = 1;
    cp.shards.push_back(std::move(s));
  }
  out.checkpoint = std::move(cp);
  return out;
}

/// Durable atomic replace: write `path + ".tmp"`, fsync it, rename it
/// over `path`, fsync the directory (util::durable_replace_file) — a
/// crash at any point leaves either the previous checkpoint or the new
/// one, fully persisted, never a torn or lost file.  The
/// "campaign_service.checkpoint" fail point sits in front so tests can
/// fail writes without touching the filesystem; its kPartialWrite
/// action *does* touch it, replacing the file with a truncated image
/// before failing — the deterministic stand-in for a torn tail on
/// media where the atomic-replace guarantees do not hold.
void write_checkpoint_file(const std::string& path, const std::string& text) {
  if (const std::optional<util::FailPoint::Config> fired =
          util::FailPoint::poll("campaign_service.checkpoint")) {
    switch (fired->action) {
      case util::FailPoint::Action::kThrow:
        throw util::FailPointError(
            "fail point 'campaign_service.checkpoint' fired");
      case util::FailPoint::Action::kDelay:
        std::this_thread::sleep_for(fired->delay);
        break;
      case util::FailPoint::Action::kPartialWrite:
        util::durable_replace_file(path, text.substr(0, fired->bytes));
        throw util::FailPointError(
            "fail point 'campaign_service.checkpoint' fired (partial write "
            "of " +
            std::to_string(fired->bytes) + " bytes)");
    }
  }
  util::durable_replace_file(path, text);
}

std::string format_ms(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << seconds * 1e3 << " ms";
  return out.str();
}

}  // namespace

std::string to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kComplete:
      return "complete";
    case RequestStatus::kPartialCancelled:
      return "partial (cancelled)";
    case RequestStatus::kPartialDeadline:
      return "partial (deadline)";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kShedded:
      return "shedded";
  }
  return "unknown";
}

std::string to_string(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kHigh:
      return "high";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kBatch:
      return "batch";
  }
  return "unknown";
}

// --- request state --------------------------------------------------

namespace detail {

/// Shared state of one request, owned jointly by the caller's Ticket,
/// the admission queue and every pool task working the request.  `mu`
/// guards all mutable fields.
struct ServiceRequest {
  // Invariant (publication, invisible to thread-safety analysis): the
  // setup fields come in two waves, each written before the state is
  // shared with anyone who reads them.  `req` and `deadline_at` are
  // written on the submitting thread before the request enters the
  // admission queue (queue push and every later read happen under the
  // service's `mu`, or on pool tasks that happen-after the push).
  // `run_shard`, `fingerprint` and `ranges` are written under `mu` by
  // orchestrate() before it submits any shard task and never again;
  // shard tasks read them without the lock, synchronized by the pool's
  // queue mutex (submit() happens-after the writes, task execution
  // happens-after submit()).  Guarding the reads would put the
  // type-erased run_shard call itself under `mu`, serializing every
  // shard.  `stop` is its own synchronization (atomics).
  CampaignRequest req;
  util::StopSource stop;
  /// Absolute deadline (steady clock) fixed at admission; only
  /// meaningful when req.deadline > 0.  The load-shedder compares the
  /// remaining budget against the cost estimate at dispatch.
  std::chrono::steady_clock::time_point deadline_at{};
  std::function<bool(std::span<const mem::Fault>, std::size_t, std::size_t,
                     CampaignResult&, const util::StopToken&)>
      run_shard;
  std::string fingerprint;
  /// The shard partition: contiguous ascending [begin, end) ranges.
  /// Fixed at orchestration (or adopted from the checkpoint) — the
  /// merge over it is what makes resume bit-identical.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;

  util::Mutex mu;
  util::CondVar cv;
  bool finished PRT_GUARDED_BY(mu) = false;
  RequestOutcome outcome PRT_GUARDED_BY(mu);
  std::vector<CampaignResult> results PRT_GUARDED_BY(mu);
  std::vector<unsigned char> done PRT_GUARDED_BY(mu);
  std::vector<int> attempts PRT_GUARDED_BY(mu);
  std::size_t outstanding PRT_GUARDED_BY(mu) = 0;
  std::size_t done_count PRT_GUARDED_BY(mu) = 0;
  std::size_t resumed_count PRT_GUARDED_BY(mu) = 0;
  std::size_t since_checkpoint PRT_GUARDED_BY(mu) = 0;
  bool failed PRT_GUARDED_BY(mu) = false;
  std::string error PRT_GUARDED_BY(mu);
};

}  // namespace detail

// --- ticket ---------------------------------------------------------

CampaignService::Ticket::Ticket(std::shared_ptr<detail::ServiceRequest> request)
    : request_(std::move(request)) {}

const RequestOutcome& CampaignService::Ticket::wait() const& {
  if (!request_) throw std::logic_error("wait() on a default Ticket");
  util::MutexLock lock(request_->mu);
  while (!request_->finished) request_->cv.wait(lock);
  // `outcome` is written once, before `finished` latches; handing the
  // reference out past the lock is safe because no writer runs again.
  return request_->outcome;
}

RequestOutcome CampaignService::Ticket::wait() && {
  // The outcome lives inside the request the ticket owns, so a
  // temporary ticket (`service.submit(...).wait()`) must hand the
  // outcome out by value — a reference would dangle the moment the
  // temporary is destroyed at the end of the full expression.
  return static_cast<const Ticket&>(*this).wait();
}

bool CampaignService::Ticket::done() const {
  if (!request_) return true;
  util::MutexLock lock(request_->mu);
  return request_->finished;
}

void CampaignService::Ticket::cancel() const {
  if (request_) request_->stop.request_stop();
}

// --- service --------------------------------------------------------

struct CampaignService::Impl {
  using Request = detail::ServiceRequest;

  static constexpr std::size_t kClasses = 3;
  /// EWMA weight of the newest shard-latency observation.
  static constexpr double kEwmaAlpha = 0.2;

  ServiceOptions options;
  util::ThreadPool pool;
  util::Watchdog watchdog;

  util::Mutex mu;
  util::CondVar all_done;
  /// Admission queues, one per RequestPriority, drained in class
  /// order then FIFO by dispatch_locked().
  std::array<std::deque<std::shared_ptr<Request>>, kClasses> queues
      PRT_GUARDED_BY(mu);
  /// Requests dispatched (orchestrating or running shards) and not yet
  /// resolved; bounded by options.max_running.
  std::size_t running PRT_GUARDED_BY(mu) = 0;
  /// Queued + running — what wait_all() waits out.
  std::size_t unresolved PRT_GUARDED_BY(mu) = 0;
  /// Per-(workload-kind, n) EWMA of observed successful-shard wall
  /// latency in seconds — the load-shedder's cost model.
  std::map<std::pair<char, mem::Addr>, double> shard_ewma PRT_GUARDED_BY(mu);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> shedded{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> partial{0};
  std::atomic<std::uint64_t> failed{0};
  /// Dispatch tallies summed over every resolved request's merged
  /// result (CampaignResult::packed_faults / scalar_faults).
  std::atomic<std::uint64_t> packed_faults{0};
  std::atomic<std::uint64_t> scalar_faults{0};
  std::atomic<std::uint64_t> wide_faults{0};
  std::atomic<std::uint64_t> shard_retries{0};
  std::atomic<std::uint64_t> shard_stalls{0};
  std::atomic<std::uint64_t> checkpoint_writes{0};
  std::atomic<std::uint64_t> checkpoint_failures{0};
  std::atomic<std::uint64_t> checkpoint_salvaged{0};
  std::atomic<std::uint64_t> shards_resumed{0};

  explicit Impl(const ServiceOptions& o) : options(o), pool(o.threads) {}

  [[nodiscard]] std::size_t queue_bound(RequestPriority priority) const {
    switch (priority) {
      case RequestPriority::kHigh:
        return options.queue_bound_high;
      case RequestPriority::kNormal:
        return options.queue_bound_normal;
      case RequestPriority::kBatch:
        return options.queue_bound_batch;
    }
    return 0;
  }

  /// Load-shedder: true when the request's remaining deadline cannot
  /// cover the estimated run cost (EWMA shard latency × dispatch
  /// waves).  Optimistic on purpose — no deadline, no estimate yet, or
  /// an empty universe all admit.
  bool should_shed_locked(const Request& r, std::string& why)
      PRT_REQUIRES(mu) {
    if (r.req.deadline.count() == 0) return false;
    const std::size_t total = r.req.universe.size();
    if (total == 0) return false;
    const double remaining =
        std::chrono::duration<double>(r.deadline_at -
                                      std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0.0) {
      why = "shed: deadline expired while queued (" +
            format_ms(-remaining) + " ago)";
      return true;
    }
    const auto it = shard_ewma.find(
        std::make_pair(r.req.march_test ? 'm' : 'p', r.req.options.n));
    if (it == shard_ewma.end()) return false;
    // Mirror for_each_chunk's clamp so the wave count matches the
    // partition orchestrate() would build.
    std::size_t shard_count = r.req.shards != 0 ? r.req.shards : pool.workers();
    shard_count = std::min(std::max<std::size_t>(shard_count, 1), total);
    const std::size_t workers = std::max<std::size_t>(pool.workers(), 1);
    const std::size_t waves = (shard_count + workers - 1) / workers;
    const double estimate = it->second * static_cast<double>(waves);
    if (estimate <= remaining) return false;
    why = "shed: estimated cost " + format_ms(estimate) +
          " (EWMA shard latency " + format_ms(it->second) + " x " +
          std::to_string(waves) + " wave(s)) exceeds remaining deadline " +
          format_ms(remaining);
    return true;
  }

  /// Feeds the shedder's cost model from an observed successful shard.
  void observe_shard_latency(const Request& r, double seconds)
      PRT_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    const auto key =
        std::make_pair(r.req.march_test ? 'm' : 'p', r.req.options.n);
    auto [it, inserted] = shard_ewma.try_emplace(key, seconds);
    if (!inserted) {
      it->second = kEwmaAlpha * seconds + (1.0 - kEwmaAlpha) * it->second;
    }
  }

  /// Drains the admission queues — strictly by class, FIFO within one —
  /// into the running window, shedding doomed requests instead of
  /// dispatching them.  Callers hold `mu`; runs after every admission
  /// and every release.
  void dispatch_locked() PRT_REQUIRES(mu) {
    while (running < options.max_running) {
      std::shared_ptr<Request> next;
      for (auto& queue : queues) {
        if (!queue.empty()) {
          next = std::move(queue.front());
          queue.pop_front();
          break;
        }
      }
      if (!next) return;
      std::string shed_reason;
      if (should_shed_locked(*next, shed_reason)) {
        ++shedded;
        --unresolved;
        {
          // Lock order: service mu (held) before request mu — the only
          // nesting direction anywhere (release()/run_shard_task take
          // mu only after dropping the request lock).
          util::MutexLock request_lock(next->mu);
          next->outcome.status = RequestStatus::kShedded;
          next->outcome.error = std::move(shed_reason);
          next->finished = true;
          next->cv.notify_all();
        }
        all_done.notify_all();
        continue;
      }
      ++running;
      pool.submit([this, r = std::move(next)] { orchestrate(r); });
    }
  }

  /// Serializes the current progress into the checkpoint file.
  /// Throws on write failure (callers count it and carry on — a
  /// failed checkpoint must never fail the campaign).
  void write_checkpoint_locked(Request& r) PRT_REQUIRES(r.mu) {
    Checkpoint cp;
    cp.fingerprint = r.fingerprint;
    cp.shards_total = r.ranges.size();
    for (std::size_t s = 0; s < r.ranges.size(); ++s) {
      if (r.done[s] != 0) cp.shards.push_back({s, r.results[s]});
    }
    write_checkpoint_file(r.req.checkpoint_path, serialize_checkpoint(cp));
  }

  /// Resolves the request: merges the completed shards (in shard
  /// order — ranges ascend, so the partial merge is exact), fixes the
  /// status, flushes or removes the checkpoint, wakes waiters.
  void finalize_locked(Request& r) PRT_REQUIRES(r.mu) {
    RequestOutcome& out = r.outcome;
    out.shards_total = r.ranges.size();
    out.shards_done = r.done_count;
    out.shards_resumed = r.resumed_count;
    if (r.failed) {
      out.status = RequestStatus::kFailed;
      out.error = r.error;
    } else if (r.done_count == r.ranges.size()) {
      out.status = RequestStatus::kComplete;
    } else {
      switch (r.stop.token().reason()) {
        case util::StopReason::kCancelled:
          out.status = RequestStatus::kPartialCancelled;
          break;
        case util::StopReason::kDeadline:
          out.status = RequestStatus::kPartialDeadline;
          break;
        case util::StopReason::kStalled:
          // Watchdog stalls trip per-attempt child tokens, never the
          // request token; reaching here means a bug upstream.
          out.status = RequestStatus::kFailed;
          out.error = "internal: request token stopped with kStalled";
          break;
        case util::StopReason::kNone:
          out.status = RequestStatus::kFailed;
          out.error = "internal: shards incomplete without a stop cause";
          break;
      }
    }
    if (!r.req.checkpoint_path.empty()) {
      if (out.status == RequestStatus::kComplete) {
        std::remove(r.req.checkpoint_path.c_str());
      } else if (r.done_count > 0) {
        // Final flush so an interrupted request resumes from its last
        // completed shard, not its last cadence point.  Skipped when
        // nothing completed (e.g. a fingerprint mismatch) — never
        // clobber an existing checkpoint with an empty one.  Must run
        // before the merge below moves the per-shard results out.
        try {
          write_checkpoint_locked(r);
          ++checkpoint_writes;
        } catch (...) {
          ++checkpoint_failures;
        }
      }
    }
    std::vector<CampaignResult> merged;
    merged.reserve(r.done_count);
    for (std::size_t s = 0; s < r.ranges.size(); ++s) {
      if (r.done[s] != 0) merged.push_back(std::move(r.results[s]));
    }
    out.result = merge_results(merged);
    packed_faults += out.result.packed_faults;
    scalar_faults += out.result.scalar_faults;
    wide_faults += out.result.sched.wide_faults;
    switch (out.status) {
      case RequestStatus::kComplete:
        ++completed;
        break;
      case RequestStatus::kPartialCancelled:
      case RequestStatus::kPartialDeadline:
        ++partial;
        break;
      default:
        ++failed;
        break;
    }
    r.finished = true;
    r.cv.notify_all();
  }

  /// Drops one running slot (after a dispatched request resolved) and
  /// pulls the next queued request into the window.
  void release() PRT_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    --running;
    --unresolved;
    dispatch_locked();
    all_done.notify_all();
  }

  /// One shard's pool task: runs the shard under a per-attempt child
  /// stop token supervised by the watchdog, records the result, writes
  /// the cadence checkpoint, retries on an exception or a stall
  /// (bounded), finalizes when it was the last outstanding task.  The
  /// "campaign_service.shard" fail point models a worker crash (throw)
  /// or a wedged worker (delay + stall budget).
  void run_shard_task(const std::shared_ptr<Request>& r, std::size_t s) {
    const auto [begin, end] = r->ranges[s];
    CampaignResult result;
    bool completed_shard = false;
    bool threw = false;
    std::string what;
    // The child token: the watchdog cancels *this attempt* (kStalled)
    // without touching the request token; a request-level cancel or
    // deadline still reaches the shard loop through the parent link.
    util::StopSource attempt_stop{r->stop.token()};
    std::optional<util::Watchdog::Id> watch;
    if (options.stall_budget.count() > 0) {
      watch = watchdog.watch(options.stall_budget, [attempt_stop] {
        attempt_stop.request_stop(util::StopReason::kStalled);
      });
    }
    const auto attempt_start = std::chrono::steady_clock::now();
    try {
      util::FailPoint::hit("campaign_service.shard");
      completed_shard = r->run_shard(r->req.universe, begin, end, result,
                                     attempt_stop.token());
    } catch (const std::exception& e) {
      threw = true;
      what = e.what();
    } catch (...) {
      threw = true;
      what = "unknown error";
    }
    if (watch) watchdog.unwatch(*watch);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - attempt_start)
                               .count();

    // A stall is "the attempt token tripped kStalled while the request
    // itself is still live".  Fold it into the retry path: a wedged
    // shard becomes a retried shard, not a wedged request.
    if (!completed_shard && !threw &&
        attempt_stop.token().reason() == util::StopReason::kStalled &&
        !r->stop.token().stop_requested()) {
      ++shard_stalls;
      threw = true;
      what = "stalled: attempt exceeded the stall budget (" +
             format_ms(std::chrono::duration<double>(options.stall_budget)
                           .count()) +
             ")";
    }
    if (completed_shard) observe_shard_latency(*r, seconds);

    bool resolved = false;
    {
      util::MutexLock lock(r->mu);
      if (threw) {
        ++r->attempts[s];
        const bool retry = !r->failed && !r->stop.stop_requested() &&
                           r->attempts[s] <= options.max_retries;
        if (retry) {
          ++shard_retries;
          lock.Unlock();
          // Resubmit instead of looping in place: the retried shard
          // goes to the back of the queue, so one flaky shard cannot
          // starve other requests' tasks.
          pool.submit([this, r, s] { run_shard_task(r, s); });
          return;  // outstanding unchanged — the retry owns the slot
        }
        if (!r->failed) {
          r->failed = true;
          r->error = "shard " + std::to_string(s) + " failed after " +
                     std::to_string(r->attempts[s]) + " attempt(s): " + what;
          // Wind down this request's remaining shards promptly; other
          // requests have their own tokens and are untouched.
          r->stop.request_stop();
        }
      } else if (completed_shard) {
        r->results[s] = std::move(result);
        r->done[s] = 1;
        ++r->done_count;
        ++r->since_checkpoint;
        if (!r->req.checkpoint_path.empty() &&
            r->done_count < r->ranges.size() &&
            r->since_checkpoint >= r->req.checkpoint_every) {
          r->since_checkpoint = 0;
          try {
            write_checkpoint_locked(*r);
            ++checkpoint_writes;
          } catch (...) {
            // Checkpointing is best-effort durability; the campaign
            // itself keeps running.
            ++checkpoint_failures;
          }
        }
      }
      // else: the shard observed the stop token and abandoned — its
      // partial tallies are discarded, the slot stays not-done.
      if (--r->outstanding == 0) {
        finalize_locked(*r);
        resolved = true;
      }
    }
    if (resolved) release();
  }

  /// The per-request setup task: builds the driver (oracle-cache
  /// builds happen here, not on the submitting thread), fingerprints
  /// the request, loads/validates/salvages the checkpoint, fixes the
  /// shard partition and fans the pending shards out.  Holds r->mu for
  /// the whole setup: no shard task exists yet, so the lock is
  /// uncontended except for tickets polling done(), and holding it
  /// lets the analysis prove every write to the guarded state.  Shard
  /// tasks submitted at the end block on r->mu at most until this
  /// scope exits.
  void orchestrate(const std::shared_ptr<Request>& r) {
    bool resolved = false;
    util::MutexLock lock(r->mu);
    try {
      CampaignRequest& req = r->req;
      if (r->stop.token().stop_requested()) {
        // Dead on arrival (cancelled or deadline-expired while
        // queued): fix the partition cheaply — no driver build, no
        // oracle work, no checkpoint read — and resolve partial with
        // zero shards run.
        const std::size_t shard_count =
            req.shards != 0 ? req.shards : pool.workers();
        util::for_each_chunk(
            req.universe.size(), shard_count,
            [&](unsigned, std::size_t begin, std::size_t end) {
              r->ranges.emplace_back(begin, end);
            });
        r->results.resize(r->ranges.size());
        r->done.assign(r->ranges.size(), 0);
        r->attempts.assign(r->ranges.size(), 0);
        finalize_locked(*r);
        resolved = true;
        lock.Unlock();
        if (resolved) release();
        return;
      }
      if (req.scheme) {
        const EngineOptions engine{.threads = 1,
                                   .parallel = false,
                                   .use_oracle = true,
                                   .early_abort = req.early_abort,
                                   .packed = req.packed};
        std::shared_ptr<detail::PrtDriver> driver =
            detail::make_driver(*req.scheme, req.options, engine);
        r->run_shard = [driver = std::move(driver)](
                           std::span<const mem::Fault> universe,
                           std::size_t begin, std::size_t end,
                           CampaignResult& out, const util::StopToken& stop) {
          return driver->run_shard(universe, begin, end, out, stop);
        };
      } else {
        const MarchEngineOptions engine{.threads = 1,
                                        .parallel = false,
                                        .packed = req.packed,
                                        .early_abort = req.early_abort};
        std::shared_ptr<detail::MarchDriver> driver =
            detail::make_driver(*req.march_test, req.options, engine);
        r->run_shard = [driver = std::move(driver)](
                           std::span<const mem::Fault> universe,
                           std::size_t begin, std::size_t end,
                           CampaignResult& out, const util::StopToken& stop) {
          return driver->run_shard(universe, begin, end, out, stop);
        };
      }
      r->fingerprint = request_fingerprint(req);

      std::size_t shard_count =
          req.shards != 0 ? req.shards : pool.workers();
      std::optional<Checkpoint> cp;
      if (req.resume) {
        CheckpointLoad loaded = load_checkpoint(req.checkpoint_path);
        if (loaded.salvaged) ++checkpoint_salvaged;
        cp = std::move(loaded.checkpoint);
        if (cp) {
          if (cp->fingerprint != r->fingerprint) {
            throw std::runtime_error(
                "checkpoint fingerprint mismatch: " + req.checkpoint_path +
                " records a different campaign (workload, options or "
                "universe changed; checkpoint " +
                cp->fingerprint + ", request " + r->fingerprint + ")");
          }
          if (cp->shards_total < 1 ||
              cp->shards_total > std::max<std::size_t>(req.universe.size(),
                                                       1)) {
            throw std::runtime_error(
                "malformed checkpoint (shard count " +
                std::to_string(cp->shards_total) + " for a " +
                std::to_string(req.universe.size()) + "-fault universe): " +
                req.checkpoint_path);
          }
          // Adopt the recorded partition — merging checkpointed shard
          // results is only bit-identical over the partition they were
          // produced under.
          shard_count = cp->shards_total;
        }
      }
      util::for_each_chunk(req.universe.size(), shard_count,
                           [&](unsigned, std::size_t begin, std::size_t end) {
                             r->ranges.emplace_back(begin, end);
                           });
      if (cp && cp->shards_total != r->ranges.size()) {
        throw std::runtime_error("malformed checkpoint (partition): " +
                                 req.checkpoint_path);
      }
      r->results.resize(r->ranges.size());
      r->done.assign(r->ranges.size(), 0);
      r->attempts.assign(r->ranges.size(), 0);
      if (cp) {
        for (CheckpointShard& s : cp->shards) {
          if (s.index >= r->ranges.size() || r->done[s.index] != 0) {
            throw std::runtime_error("malformed checkpoint (shard index " +
                                     std::to_string(s.index) + "): " +
                                     req.checkpoint_path);
          }
          r->results[s.index] = std::move(s.result);
          r->done[s.index] = 1;
        }
        r->done_count = r->resumed_count = cp->shards.size();
        shards_resumed += cp->shards.size();
      }

      std::vector<std::size_t> pending;
      for (std::size_t s = 0; s < r->ranges.size(); ++s) {
        if (r->done[s] == 0) pending.push_back(s);
      }
      if (pending.empty()) {
        finalize_locked(*r);
        resolved = true;
      } else {
        r->outstanding = pending.size();
        for (const std::size_t s : pending) {
          pool.submit([this, r, s] { run_shard_task(r, s); });
        }
      }
    } catch (const std::exception& e) {
      r->failed = true;
      r->error = e.what();
      finalize_locked(*r);
      resolved = true;
    }
    lock.Unlock();
    if (resolved) release();
  }
};

CampaignService::CampaignService(const ServiceOptions& options)
    : impl_(std::make_unique<Impl>(options)) {
  if (options.cache_budget_bytes != 0) {
    OracleCache::global().set_budget_bytes(options.cache_budget_bytes);
  }
}

CampaignService::~CampaignService() { wait_all(); }

CampaignService::Ticket CampaignService::submit(CampaignRequest request) {
  auto r = std::make_shared<detail::ServiceRequest>();
  r->req = std::move(request);
  if (r->req.checkpoint_every == 0) r->req.checkpoint_every = 1;

  // Fail-fast validation on the submitting thread: a malformed request
  // resolves immediately instead of occupying a queue slot.  Every
  // message names the offending value.
  std::string invalid;
  if (static_cast<bool>(r->req.scheme) ==
      static_cast<bool>(r->req.march_test)) {
    invalid = std::string("exactly one of scheme / march_test must be set "
                          "(got ") +
              (r->req.scheme ? "both" : "neither") + ")";
  } else if (r->req.resume && r->req.checkpoint_path.empty()) {
    invalid = "resume requires a non-empty checkpoint_path";
  } else if (static_cast<std::uint8_t>(r->req.priority) >= Impl::kClasses) {
    invalid = "priority must be high, normal or batch (got " +
              std::to_string(static_cast<unsigned>(r->req.priority)) + ")";
  } else {
    try {
      validate_campaign_options(r->req.options);
    } catch (const std::exception& e) {
      invalid = e.what();
    }
  }
  if (!invalid.empty()) {
    // Still private to this thread; locked for the analysis' sake.
    util::MutexLock lock(r->mu);
    r->finished = true;
    r->outcome.status = RequestStatus::kFailed;
    r->outcome.error = std::move(invalid);
    ++impl_->failed;
    return Ticket(std::move(r));
  }

  std::string reject;
  {
    util::MutexLock lock(impl_->mu);
    const auto cls = static_cast<std::size_t>(r->req.priority);
    // The deadline clock starts at admission: queueing time counts
    // against the request's budget.  Written before the queue push
    // publishes the request.
    if (r->req.deadline.count() > 0) {
      r->stop.set_deadline_after(r->req.deadline);
      r->deadline_at = std::chrono::steady_clock::now() + r->req.deadline;
    }
    ++impl_->unresolved;
    impl_->queues[cls].push_back(r);
    impl_->dispatch_locked();
    // Backpressure: if the request is still waiting past its class
    // bound after the dispatch pass, revoke the admission.  (Checked
    // after dispatch, not before, so a free running slot always
    // admits — even with a zero bound.)
    auto& queue = impl_->queues[cls];
    if (!queue.empty() && queue.back() == r &&
        queue.size() > impl_->queue_bound(r->req.priority)) {
      queue.pop_back();
      --impl_->unresolved;
      impl_->all_done.notify_all();
      reject = "admission queue for class " + to_string(r->req.priority) +
               " is full (bound " +
               std::to_string(impl_->queue_bound(r->req.priority)) +
               ", running " + std::to_string(impl_->running) + "/" +
               std::to_string(impl_->options.max_running) + ")";
    }
  }
  if (!reject.empty()) {
    // Revoked before anyone else saw it — private again, locked for
    // the analysis' sake.
    util::MutexLock lock(r->mu);
    r->finished = true;
    r->outcome.status = RequestStatus::kRejected;
    r->outcome.error = std::move(reject);
    ++impl_->rejected;
    return Ticket(std::move(r));
  }
  ++impl_->accepted;
  return Ticket(std::move(r));
}

void CampaignService::wait_all() {
  util::MutexLock lock(impl_->mu);
  while (impl_->unresolved != 0) impl_->all_done.wait(lock);
}

CampaignService::Stats CampaignService::stats() const {
  Stats s;
  s.accepted = impl_->accepted.load();
  s.rejected = impl_->rejected.load();
  s.shedded = impl_->shedded.load();
  s.completed = impl_->completed.load();
  s.partial = impl_->partial.load();
  s.failed = impl_->failed.load();
  s.shard_retries = impl_->shard_retries.load();
  s.shard_stalls = impl_->shard_stalls.load();
  s.packed_faults = impl_->packed_faults.load();
  s.scalar_faults = impl_->scalar_faults.load();
  s.wide_faults = impl_->wide_faults.load();
  s.checkpoint_writes = impl_->checkpoint_writes.load();
  s.checkpoint_failures = impl_->checkpoint_failures.load();
  s.checkpoint_salvaged = impl_->checkpoint_salvaged.load();
  s.shards_resumed = impl_->shards_resumed.load();
  {
    util::MutexLock lock(impl_->mu);
    s.queued_high = impl_->queues[0].size();
    s.queued_normal = impl_->queues[1].size();
    s.queued_batch = impl_->queues[2].size();
    s.running = impl_->running;
  }
  const OracleCache::Stats cache = OracleCache::global().stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.cache_entries = cache.entries;
  s.cache_bytes = cache.bytes;
  return s;
}

}  // namespace prt::analysis
