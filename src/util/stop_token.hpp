// Cooperative cancellation with deadlines for long-running campaigns.
//
// A StopSource owns the stop state; the StopTokens it hands out are
// cheap shared views polled from worker loops.  Two stop causes exist
// and are distinguished so callers can report *why* a run ended early:
// an explicit request_stop() (user cancellation) and a wall-clock
// deadline (set_deadline_after).  A stop is sticky: once observed the
// reason latches, and every later poll is a single atomic load.
//
// A default-constructed StopToken has no state and never stops — the
// shape every pre-existing call site uses, so threading tokens through
// the campaign shard loops costs non-cancellable runs one null check
// per fault.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace prt::util {

enum class StopReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,
  kDeadline = 2,
};

namespace detail {
// Invariant (lock-free latch, invisible to thread-safety analysis —
// see util/annotations.hpp): `reason` transitions 0 -> nonzero exactly
// once, via compare_exchange with expected = 0, and is never written
// again; every writer (request_stop, the deadline poll in
// stop_requested) races through that one CAS, so concurrent cancel
// and deadline expiry latch a single winner and all observers agree
// on it forever after (pinned by StopToken.
// ConcurrentObserversAgreeOnOneReason).  `deadline` is
// monotonic-clock plumbing only: readers re-check `reason` before
// trusting it, so a racy deadline store can at worst delay — never
// un-latch — a stop.
struct StopState {
  std::atomic<std::uint8_t> reason{0};
  /// steady_clock time_since_epoch in its native rep; 0 = no deadline.
  std::atomic<std::int64_t> deadline{0};
};
}  // namespace detail

class StopToken {
 public:
  /// Stateless token: stop_requested() is always false.
  StopToken() = default;

  /// True once the source requested a stop or the deadline passed.
  /// Latches: the first deadline observation stores kDeadline so
  /// subsequent polls skip the clock read.
  [[nodiscard]] bool stop_requested() const {
    if (!state_) return false;
    if (state_->reason.load(std::memory_order_acquire) != 0) return true;
    const std::int64_t deadline =
        state_->deadline.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      std::uint8_t expected = 0;
      state_->reason.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(StopReason::kDeadline),
          std::memory_order_acq_rel);
      return true;
    }
    return false;
  }

  /// Why the stop happened; kNone while still running.  Polls the
  /// deadline like stop_requested() so the reported reason cannot lag
  /// an expired deadline.
  [[nodiscard]] StopReason reason() const {
    if (!state_ || !stop_requested()) return StopReason::kNone;
    return static_cast<StopReason>(
        state_->reason.load(std::memory_order_acquire));
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<detail::StopState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::StopState> state_;
};

class StopSource {
 public:
  StopSource() : state_(std::make_shared<detail::StopState>()) {}

  /// Requests cancellation.  First cause wins: a cancel after the
  /// deadline already latched keeps reporting kDeadline (and vice
  /// versa).
  void request_stop() const {
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(StopReason::kCancelled),
        std::memory_order_acq_rel);
  }

  /// Arms a wall-clock deadline `after` from now; tokens trip it
  /// lazily on their next poll.
  void set_deadline_after(std::chrono::nanoseconds after) const {
    const auto when = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(after);
    std::int64_t rep = when.time_since_epoch().count();
    if (rep == 0) rep = 1;  // 0 means "no deadline"
    state_->deadline.store(rep, std::memory_order_relaxed);
  }

  [[nodiscard]] StopToken token() const { return StopToken(state_); }
  [[nodiscard]] bool stop_requested() const {
    return token().stop_requested();
  }

 private:
  std::shared_ptr<detail::StopState> state_;
};

}  // namespace prt::util
