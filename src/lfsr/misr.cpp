#include "lfsr/misr.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace prt::lfsr {

Misr::Misr(gf::Poly2 poly)
    : poly_(poly),
      width_(static_cast<unsigned>(poly_degree(poly))),
      mask_(low_mask(width_)) {
  assert(width_ >= 1 && width_ <= 63);
}

void Misr::shift(std::uint64_t input) {
  const std::uint64_t msb = (state_ >> (width_ - 1)) & 1U;
  state_ = ((state_ << 1) & mask_);
  if (msb) state_ ^= poly_ & mask_;  // feedback taps (z^w folded in)
  state_ ^= input & mask_;
}

}  // namespace prt::lfsr
