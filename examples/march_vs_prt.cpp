// Head-to-head: pseudo-ring testing vs the March family.
//
// Runs a fault-simulation campaign over the classical and full fault
// universes and prints coverage and operation cost per algorithm —
// the practical trade-off the paper's §3 argues (O(3n) per iteration,
// 3 iterations for the targeted universe).
//
//   $ ./march_vs_prt [n]
#include <cstdio>
#include <cstdlib>

#include "analysis/coverage.hpp"
#include "analysis/fault_sim.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"

int main(int argc, char** argv) {
  using namespace prt;
  const mem::Addr n =
      argc > 1 ? static_cast<mem::Addr>(std::atoi(argv[1])) : 48;

  // Universe: every single-cell fault, adjacent coupling, decoder
  // faults — the realistic local-defect model.
  std::vector<mem::Fault> universe = mem::single_cell_universe(n, 1, true);
  for (mem::Addr c = 0; c + 1 < n; ++c) {
    for (auto [a, v] :
         {std::pair<mem::Addr, mem::Addr>{c, c + 1}, {c + 1, c}}) {
      universe.push_back(mem::Fault::cf_in({v, 0}, {a, 0}));
      universe.push_back(mem::Fault::cf_st({v, 0}, {a, 0}, 1, 0));
      universe.push_back(mem::Fault::cf_id({v, 0}, {a, 0}, true, 1));
    }
    universe.push_back(mem::Fault::bridge({c, 0}, {c + 1, 0}, true));
  }
  for (mem::Addr a = 0; a < n; ++a) {
    universe.push_back(mem::Fault::af_no_access(a));
    universe.push_back(
        mem::Fault::af_wrong_access(a, a + 1 < n ? a + 1 : n - 2));
  }
  std::printf("universe: %zu faults over n = %u cells\n\n", universe.size(),
              n);

  analysis::CampaignOptions opt;
  opt.n = n;

  struct Entry {
    std::string name;
    analysis::TestAlgorithm algo;
    std::uint64_t ops;
  };
  std::vector<Entry> entries;
  entries.push_back({"PRT-3 (9n)",
                     analysis::prt_algorithm(core::standard_scheme_bom(n)),
                     core::prt_ops(n, 2, 3)});
  entries.push_back(
      {"PRT-ext",
       analysis::prt_algorithm(core::extended_scheme_bom(n)),
       0});  // ops filled from a probe run below
  for (const auto& m :
       {march::mats_plus(), march::march_y(), march::march_c_minus(),
        march::march_ss()}) {
    entries.push_back({m.name + " (" + std::to_string(m.ops_per_cell()) +
                           "n)",
                       analysis::march_algorithm(m), m.total_ops(n)});
  }

  // Probe the extended scheme's op count on a healthy memory.
  {
    mem::SimRam probe(n, 1);
    entries[1].ops = core::run_prt(probe, core::extended_scheme_bom(n)).ops();
  }

  std::vector<analysis::NamedResult> rows;
  Table cost({"algorithm", "ops", "ops/cell"});
  cost.set_align(0, Align::kLeft);
  for (const Entry& e : entries) {
    rows.push_back({e.name, analysis::run_campaign(universe, e.algo, opt)});
    cost.add(e.name, e.ops,
             format_fixed(static_cast<double>(e.ops) / n, 1));
  }

  std::printf("%s\n", analysis::coverage_table(rows).str().c_str());
  std::printf("%s\n", cost.str().c_str());
  return 0;
}
