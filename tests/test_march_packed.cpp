// 64-lane March runner (march::run_march_packed) and the lane-batched
// March campaign wrapper (analysis::MarchCampaign).
//
// The load-bearing property mirrors the packed PRT path: every lane of
// a packed March sweep must reproduce run_march against a scalar
// FaultyRam holding that lane's single fault, and MarchCampaign must
// reproduce the serial run_campaign(march_algorithm) CampaignResult —
// coverage, per-class counts, escape indices and op totals — on any
// universe, any thread count, packed or scalar.
#include "march/march_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/march_campaign.hpp"
#include "march/march_library.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt {
namespace {

void expect_identical(const analysis::CampaignResult& a,
                      const analysis::CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

/// A 64-lane mix of every lane-compatible kind: single-cell, read
/// logic and the two-cell coupling/bridge kinds.
std::vector<mem::Fault> mixed_lane_universe(mem::Addr n) {
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::BitRef v{i % n, 0};
    const mem::BitRef a{(i + 1 + i % 3) % n, 0};
    switch (i % 16) {
      case 0: faults.push_back(mem::Fault::saf(v, 0)); break;
      case 1: faults.push_back(mem::Fault::saf(v, 1)); break;
      case 2: faults.push_back(mem::Fault::tf(v, true)); break;
      case 3: faults.push_back(mem::Fault::tf(v, false)); break;
      case 4: faults.push_back(mem::Fault::wdf(v)); break;
      case 5: faults.push_back(mem::Fault::rdf(v)); break;
      case 6: faults.push_back(mem::Fault::drdf(v)); break;
      case 7: faults.push_back(mem::Fault::irf(v)); break;
      case 8: faults.push_back(mem::Fault::sof(v)); break;
      case 9: faults.push_back(mem::Fault::cf_in(v, a)); break;
      case 10: faults.push_back(mem::Fault::cf_id(v, a, true, 1)); break;
      case 11: faults.push_back(mem::Fault::cf_id(v, a, false, 0)); break;
      case 12: faults.push_back(mem::Fault::cf_st(v, a, 1, 0)); break;
      case 13: faults.push_back(mem::Fault::cf_st(v, a, 0, 1)); break;
      case 14: faults.push_back(mem::Fault::bridge(v, a, true)); break;
      case 15: faults.push_back(mem::Fault::bridge(v, a, false)); break;
    }
  }
  return faults;
}

// --- per-lane parity of one packed sweep --------------------------------

/// Each lane's detected bit must equal run_march's fail verdict on a
/// scalar FaultyRam with the same fault, for both background bits, and
/// the packed op count must equal the scalar per-fault op count.
void check_march_lane_parity(std::span<const mem::Fault> faults,
                             const march::MarchTest& test, mem::Addr n) {
  for (const bool background : {false, true}) {
    mem::PackedFaultRam packed(n);
    for (const mem::Fault& f : faults) packed.add_fault(f);
    const std::uint64_t detected =
        march::run_march_packed(test, packed, background) &
        packed.active_mask();
    mem::FaultyRam scalar(n, 1);
    for (unsigned lane = 0; lane < faults.size(); ++lane) {
      scalar.reset(faults[lane]);
      const march::MarchResult r =
          march::run_march(test, scalar, background ? 1U : 0U);
      EXPECT_EQ(((detected >> lane) & 1U) != 0, r.fail)
          << test.name << " bg=" << background << " lane " << lane << " ("
          << faults[lane].describe() << ")";
      EXPECT_EQ(packed.ops(), scalar.total_stats().total());
    }
  }
}

TEST(RunMarchPacked, LaneVerdictsMatchScalarAcrossStandardTests) {
  const mem::Addr n = 16;
  for (const march::MarchTest& test :
       {march::mats_plus(), march::march_x(), march::march_y(),
        march::march_c_minus(), march::march_a(), march::march_b(),
        march::march_ss(), march::march_g()}) {
    check_march_lane_parity(mixed_lane_universe(n), test, n);
  }
}

/// A 64-lane mix of the pattern and clock-dependent kinds: static NPSF
/// neighbourhoods (interior, border-inert and no-grid-inert victims)
/// and retention lanes whose delays straddle the default Del tick.
std::vector<mem::Fault> npsf_retention_lane_universe(mem::Addr n) {
  const mem::Addr cols = 4;
  // Delays around march_runner's kDefaultDelayTicks = 100'000: decayed
  // by plain access clocking, by the first Del, only by the second Del,
  // and never.
  constexpr std::uint64_t kDelays[] = {200, 30'000, 99'999, 150'000,
                                       1'000'000'000};
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::BitRef v{i % n, 0};
    if (i % 2 == 0) {
      const mem::Addr grid = (i % 8 == 6) ? 0 : cols;  // some no-grid inert
      faults.push_back(
          mem::Fault::npsf_static(v, (i / 2) % 16, (i / 32) & 1, grid));
    } else {
      faults.push_back(
          mem::Fault::retention(v, (i / 2) & 1, kDelays[(i / 2) % 5]));
    }
  }
  return faults;
}

// The tentpole acceptance at the March layer: NPSF neighbourhood lanes
// and analytic retention lanes reproduce the scalar FaultyRam verdict
// per lane across the standard tests, including March G's Del elements
// (which advance the packed retention clock exactly like
// advance_time on the scalar ram).
TEST(RunMarchPacked, NpsfRetentionLanesMatchScalarAcrossStandardTests) {
  const mem::Addr n = 16;
  for (const march::MarchTest& test :
       {march::mats_plus(), march::march_c_minus(), march::march_ss(),
        march::march_g()}) {
    check_march_lane_parity(npsf_retention_lane_universe(n), test, n);
  }
}

// March G's delay elements issue no reads or writes — they only
// advance the virtual clock (which is what decays retention lanes);
// this pins the op accounting across a Del.
TEST(RunMarchPacked, DelayElementsIssueNoOps) {
  mem::PackedFaultRam packed(8);
  packed.add_fault(mem::Fault::saf({3, 0}, 1));
  const auto test = march::march_g();
  (void)march::run_march_packed(test, packed);
  EXPECT_EQ(packed.ops(), test.total_ops(8));
}

// Early abort over NPSF + retention lanes: identical verdicts to the
// full run, per-lane verdict parity with the scalar abort reference,
// and analytic per-lane op accounting equal to the scalar abort ops —
// for both backgrounds across memory sizes.
TEST(RunMarchPacked, NpsfRetentionAbortOpsMatchScalar) {
  const auto test = march::march_g();
  for (const mem::Addr n : {mem::Addr{17}, mem::Addr{64}, mem::Addr{256}}) {
    std::vector<mem::Fault> universe;
    constexpr std::uint64_t kDelays[] = {200, 30'000, 99'999, 150'000,
                                         1'000'000'000};
    for (mem::Addr c = 0; c < n; ++c) {
      universe.push_back(mem::Fault::npsf_static(
          {c, 0}, static_cast<unsigned>(c % 16),
          static_cast<unsigned>(c & 1), 4));
      universe.push_back(mem::Fault::retention(
          {c, 0}, static_cast<unsigned>(c & 1), kDelays[c % 5]));
    }
    for (const bool background : {false, true}) {
      const auto transcript = march::make_march_transcript(test, n, background);
      mem::FaultyRam scalar(n, 1);
      for (std::size_t base = 0; base < universe.size();
           base += mem::PackedFaultRam::kLanes) {
        const std::size_t lanes =
            std::min<std::size_t>(mem::PackedFaultRam::kLanes,
                                  universe.size() - base);
        mem::PackedFaultRam full_ram(n);
        mem::PackedFaultRam abort_ram(n);
        for (std::size_t j = 0; j < lanes; ++j) {
          full_ram.add_fault(universe[base + j]);
          abort_ram.add_fault(universe[base + j]);
        }
        const auto full = march::run_march_packed(full_ram, transcript, {});
        const auto abort =
            march::run_march_packed(abort_ram, transcript,
                                    {.early_abort = true});
        const std::uint64_t mask = full_ram.active_mask();
        EXPECT_EQ(full.detected & mask, abort.detected & mask)
            << "n=" << n << " bg=" << background << " batch at " << base;
        std::uint64_t scalar_abort_ops = 0;
        for (std::size_t j = 0; j < lanes; ++j) {
          scalar.reset(universe[base + j]);
          const auto r = march::run_march_transcript(scalar, transcript,
                                                     {.early_abort = true});
          scalar_abort_ops += r.ops;
          EXPECT_EQ(((abort.detected >> j) & 1U) != 0, r.fail)
              << "n=" << n << " bg=" << background << " lane " << j << " ("
              << universe[base + j].describe() << ")";
        }
        EXPECT_EQ(abort.scalar_ops, scalar_abort_ops)
            << "n=" << n << " bg=" << background << " batch at " << base;
      }
    }
  }
}

// --- campaign-level parity ----------------------------------------------

analysis::CampaignResult serial_reference(
    std::span<const mem::Fault> universe, const march::MarchTest& test,
    const analysis::CampaignOptions& opt) {
  return analysis::run_campaign(universe, analysis::march_algorithm(test),
                                opt);
}

void check_march_campaign_parity(std::span<const mem::Fault> universe,
                                 const march::MarchTest& test,
                                 const analysis::CampaignOptions& opt) {
  const auto reference = serial_reference(universe, test, opt);
  for (const bool packed : {false, true}) {
    for (const unsigned threads : {1u, 3u}) {
      analysis::MarchEngineOptions eng;
      eng.threads = threads;
      eng.packed = packed;
      expect_identical(
          reference, analysis::run_march_campaign(universe, test, opt, eng));
    }
  }
}

TEST(MarchCampaign, BitIdenticalToSerialScalarOnClassical256) {
  const mem::Addr n = 256;
  analysis::CampaignOptions opt;
  opt.n = n;
  check_march_campaign_parity(mem::classical_universe(n),
                              march::march_c_minus(), opt);
}

TEST(MarchCampaign, BitIdenticalToSerialScalarOnClassical1024) {
  const mem::Addr n = 1024;
  analysis::CampaignOptions opt;
  opt.n = n;
  check_march_campaign_parity(mem::classical_universe(n),
                              march::march_c_minus(), opt);
}

// The van de Goor universe interleaves packed (single-cell, read
// logic, coupling) and scalar (decoder) faults within every shard,
// exercising the escape re-sort and the per-class merge.
TEST(MarchCampaign, BitIdenticalToSerialScalarOnVanDeGoor) {
  const mem::Addr n = 64;
  analysis::CampaignOptions opt;
  opt.n = n;
  check_march_campaign_parity(mem::van_de_goor_universe(n), march::march_ss(),
                              opt);
}

// NPSF + retention universes ride the March lanes end to end: packed
// and scalar campaigns, serial and threaded, all bit-identical on a
// grid memory under March G's Del schedule.
TEST(MarchCampaign, NpsfRetentionBitIdenticalToSerialScalar) {
  const mem::Addr n = 48;
  std::vector<mem::Fault> universe;
  constexpr std::uint64_t kDelays[] = {200, 30'000, 99'999, 150'000,
                                       1'000'000'000};
  for (mem::Addr c = 0; c < n; ++c) {
    universe.push_back(mem::Fault::npsf_static(
        {c, 0}, static_cast<unsigned>(c % 16), static_cast<unsigned>(c & 1),
        4));
    universe.push_back(mem::Fault::retention(
        {c, 0}, static_cast<unsigned>(c & 1), kDelays[c % 5]));
  }
  analysis::CampaignOptions opt;
  opt.n = n;
  check_march_campaign_parity(universe, march::march_g(), opt);
}

// Word-oriented campaigns must transparently fall back to scalar (the
// packed array models a 1-bit memory) while still fanning out.
TEST(MarchCampaign, WomCampaignFallsBackToScalar) {
  const mem::Addr n = 32;
  const unsigned m = 4;
  const auto universe = mem::make_universe(
      n, m, {.coupling = false, .bridges = false, .npsf = false});
  analysis::CampaignOptions opt;
  opt.n = n;
  opt.m = m;
  check_march_campaign_parity(universe, march::march_c_minus(), opt);
}

// --- lane-width parity ---------------------------------------------------

// One WideWord<4> March sweep reproduces, lane for lane, the verdicts
// of the 64-lane sweeps over the same faults — the March layer's half
// of the tentpole parity (the PRT half lives in test_lane_word.cpp).
TEST(RunMarchPacked, WideSweepMatchesNarrowGroups) {
  const mem::Addr n = 16;
  std::vector<mem::Fault> universe;
  for (int rep = 0; rep < 3; ++rep) {
    const auto mixed = mixed_lane_universe(n);
    universe.insert(universe.end(), mixed.begin(), mixed.end());
  }
  ASSERT_GT(universe.size(), 64u);
  for (const march::MarchTest& test :
       {march::march_c_minus(), march::march_g()}) {
    for (const bool background : {false, true}) {
      const core::OpTranscript transcript =
          march::make_march_transcript(test, n, background);
      mem::PackedFaultRamT<mem::WideWord<4>> wide(n);
      for (const mem::Fault& f : universe) wide.add_fault(f);
      const auto wide_verdict =
          march::run_march_packed(wide, transcript, march::MarchRunOptions{});
      for (std::size_t base = 0; base < universe.size(); base += 64) {
        const std::size_t count =
            std::min<std::size_t>(64, universe.size() - base);
        mem::PackedFaultRam narrow(n);
        for (std::size_t j = 0; j < count; ++j) {
          narrow.add_fault(universe[base + j]);
        }
        const std::uint64_t detected =
            march::run_march_packed(test, narrow, background) &
            narrow.active_mask();
        for (unsigned lane = 0; lane < count; ++lane) {
          EXPECT_EQ(
              wide_verdict.lane_detected(static_cast<unsigned>(base) + lane),
              ((detected >> lane) & 1U) != 0)
              << test.name << " bg=" << background << " fault "
              << (base + lane) << " (" << universe[base + lane].describe()
              << ")";
        }
      }
    }
  }
}

// Campaign-level width sweep: bit-identical results at 64/256/512
// lanes x thread counts, with the wide telemetry engaging exactly when
// the shards can fill half the wide lanes.
TEST(MarchCampaign, BitIdenticalAcrossLaneWidthsAndThreadCounts) {
  const mem::Addr n = 256;
  const auto universe = mem::classical_universe(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_reference(universe, march::march_c_minus(), opt);
  for (const bool early_abort : {false, true}) {
    analysis::MarchEngineOptions ref_eng;
    ref_eng.threads = 1;
    ref_eng.packed = true;
    ref_eng.early_abort = early_abort;
    ref_eng.lane_width = 64;
    const auto width64_reference = analysis::run_march_campaign(
        universe, march::march_c_minus(), opt, ref_eng);
    if (!early_abort) expect_identical(reference, width64_reference);
    for (const unsigned lane_width : {256u, 512u}) {
      for (const unsigned threads : {1u, 2u, 4u}) {
        analysis::MarchEngineOptions eng;
        eng.threads = threads;
        eng.packed = true;
        eng.early_abort = early_abort;
        eng.lane_width = lane_width;
        const auto got = analysis::run_march_campaign(
            universe, march::march_c_minus(), opt, eng);
        expect_identical(width64_reference, got);
        EXPECT_EQ(got.ops, width64_reference.ops)
            << "width=" << lane_width << " threads=" << threads
            << " early_abort=" << early_abort;
        EXPECT_GT(got.sched.wide_faults, 0u)
            << "width=" << lane_width << " threads=" << threads;
        EXPECT_EQ(got.sched.max_lanes, lane_width);
      }
    }
  }
}

}  // namespace
}  // namespace prt
