// Tests for intra-word bit-plane pi-testing (core/intra_word).
#include "core/intra_word.hpp"

#include <gtest/gtest.h>

#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

namespace prt::core {
namespace {

TEST(PlaneInit, DistinctPhasesForNeighbourPlanes) {
  const std::vector<gf::Elem> g{1, 1, 1};
  const auto p0 = plane_init(g, 0);
  const auto p1 = plane_init(g, 1);
  const auto p2 = plane_init(g, 2);
  EXPECT_NE(p0, p1);
  EXPECT_NE(p1, p2);
  // Period 3: plane 3 wraps to plane 0's phase.
  EXPECT_EQ(plane_init(g, 3), p0);
}

TEST(IntraWord, ParallelModePassesFaultFree) {
  mem::SimRam ram(64, 8);
  IntraWordConfig cfg;
  const IntraWordResult r = run_intra_word(ram, cfg);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.fin.size(), 8u);
}

TEST(IntraWord, RandomModePassesFaultFree) {
  mem::SimRam ram(64, 8);
  IntraWordConfig cfg;
  cfg.mode = IntraWordMode::kRandomTrajectories;
  cfg.seed = 17;
  const IntraWordResult r = run_intra_word(ram, cfg);
  EXPECT_TRUE(r.pass);
}

TEST(IntraWord, ParallelModeUsesWordAccesses) {
  // One write per cell + k reads per sub-iteration: 3n - 2 word ops.
  const mem::Addr n = 100;
  mem::SimRam ram(n, 4);
  IntraWordConfig cfg;
  (void)run_intra_word(ram, cfg);
  EXPECT_EQ(ram.total_stats().total(), 3u * n - 2);
}

TEST(IntraWord, RandomModeCostsPerPlane) {
  // m independent masked sweeps: read-modify-write inflates the word
  // operation count by ~m x; hardware masks instead (documented).
  const mem::Addr n = 50;
  mem::SimRam ram(n, 4);
  IntraWordConfig cfg;
  cfg.mode = IntraWordMode::kRandomTrajectories;
  (void)run_intra_word(ram, cfg);
  EXPECT_GT(ram.total_stats().total(), 4u * (3 * n - 2) / 2);
}

TEST(IntraWord, DetectsIntraWordCfIn) {
  // Aggressor bit 0 -> victim bit 1 inside the word.  The coupling
  // fires when the aggressor plane writes a 1 over the zeroed array
  // (cells with c mod 3 in {1, 2} for the period-3 plane pattern).
  for (mem::Addr cell : {5u, 17u, 40u}) {
    mem::FaultyRam ram(64, 8);
    ram.inject(mem::Fault::cf_in({cell, 1}, {cell, 0}));
    IntraWordConfig cfg;
    EXPECT_FALSE(run_intra_word(ram, cfg).pass) << "cell " << cell;
  }
}

TEST(IntraWord, DetectsIntraWordBridge) {
  mem::FaultyRam ram(64, 8);
  ram.inject(mem::Fault::bridge({9, 2}, {9, 3}, /*wired_and=*/true));
  IntraWordConfig cfg;
  EXPECT_FALSE(run_intra_word(ram, cfg).pass);
}

TEST(IntraWord, DetectsPlaneSaf) {
  // Plane 3 wraps to phase 0 of the period-3 plane LFSR (pattern
  // 0,1,1), so cell 9 (9 mod 3 = 0) expects 0 there: stuck-at-1
  // activates.
  mem::FaultyRam ram(32, 4);
  ram.inject(mem::Fault::saf({9, 3}, 1));
  IntraWordConfig cfg;
  EXPECT_FALSE(run_intra_word(ram, cfg).pass);
}

TEST(IntraWord, RandomModeDetectsIntraWordCfSt) {
  // Detection in random mode is per-seed probabilistic (the condition
  // must hold while the victim plane visits the cell); a small seed
  // sweep must find it.
  bool detected = false;
  for (std::uint64_t seed = 0; seed < 8 && !detected; ++seed) {
    mem::FaultyRam ram(64, 4);
    ram.inject(mem::Fault::cf_st({5, 2}, {5, 0}, /*when=*/1, /*forced=*/1));
    IntraWordConfig cfg;
    cfg.mode = IntraWordMode::kRandomTrajectories;
    cfg.seed = seed;
    detected = !run_intra_word(ram, cfg).pass;
  }
  EXPECT_TRUE(detected);
}

TEST(IntraWord, FinMatchesPlaneLfsrPrediction) {
  mem::SimRam ram(37, 4);
  IntraWordConfig cfg;
  const IntraWordResult r = run_intra_word(ram, cfg);
  EXPECT_EQ(r.fin, r.fin_expected);
  // Spot-check plane 0 against an explicit BOM LFSR.
  lfsr::WordLfsr model(gf::GF2m(0b11), cfg.plane_g);
  const auto init = plane_init(cfg.plane_g, 0);
  model.seed(init);
  model.jump(37 - 2);
  const std::uint32_t packed =
      static_cast<std::uint32_t>(model.state()[0]) |
      (static_cast<std::uint32_t>(model.state()[1]) << 1);
  EXPECT_EQ(r.fin[0], packed);
}

TEST(IntraWord, WiderGeneratorSupported) {
  mem::SimRam ram(64, 4);
  IntraWordConfig cfg;
  cfg.plane_g = {1, 1, 0, 1};  // k = 3, period 7
  const IntraWordResult r = run_intra_word(ram, cfg);
  EXPECT_TRUE(r.pass);
}

}  // namespace
}  // namespace prt::core
