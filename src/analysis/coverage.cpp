#include "analysis/coverage.hpp"

#include <set>

namespace prt::analysis {

Table coverage_table(const std::vector<NamedResult>& results) {
  std::set<mem::FaultClass> classes;
  for (const auto& r : results) {
    for (const auto& [cls, cov] : r.result.by_class) classes.insert(cls);
  }
  std::vector<std::string> headers{"fault class", "faults"};
  for (const auto& r : results) headers.push_back(r.name + " %");
  Table table(std::move(headers));
  table.set_align(0, Align::kLeft);

  for (mem::FaultClass cls : classes) {
    std::vector<std::string> row{to_string(cls)};
    std::uint64_t total = 0;
    for (const auto& r : results) {
      auto it = r.result.by_class.find(cls);
      if (it != r.result.by_class.end()) total = it->second.total;
    }
    row.push_back(std::to_string(total));
    for (const auto& r : results) {
      auto it = r.result.by_class.find(cls);
      row.push_back(it == r.result.by_class.end()
                        ? std::string("-")
                        : format_fixed(it->second.percent(), 2));
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> overall{"TOTAL", ""};
  if (!results.empty()) {
    overall[1] = std::to_string(results.front().result.overall.total);
  }
  for (const auto& r : results) {
    overall.push_back(format_fixed(r.result.overall.percent(), 2));
  }
  table.add_row(std::move(overall));
  return table;
}

}  // namespace prt::analysis
