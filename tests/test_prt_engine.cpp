// Tests for the multi-iteration PRT engine and the reconstructed
// 3-iteration TDB (core/prt_engine).
#include "core/prt_engine.hpp"

#include <gtest/gtest.h>

#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

namespace prt::core {
namespace {

TEST(PrtScheme, StandardBomShape) {
  const PrtScheme s = standard_scheme_bom(64);
  ASSERT_EQ(s.iterations.size(), 3u);
  EXPECT_EQ(s.field_modulus, 0b11u);
  // All three iterations use the paper-sanctioned two-term generator
  // g = 1 + x^2: solid-1 up, solid-0 down, checkerboard.
  for (const auto& it : s.iterations) {
    EXPECT_EQ(it.g, (std::vector<gf::Elem>{1, 0, 1}));
    EXPECT_FALSE(it.config.verify_pass);  // pure O(3n) iterations
  }
  EXPECT_EQ(s.iterations[0].config.init, (std::vector<gf::Elem>{1, 1}));
  EXPECT_EQ(s.iterations[1].config.init, (std::vector<gf::Elem>{0, 0}));
  EXPECT_EQ(s.iterations[2].config.init, (std::vector<gf::Elem>{0, 1}));
  EXPECT_EQ(s.iterations[0].config.trajectory, TrajectoryKind::kAscending);
  EXPECT_EQ(s.iterations[1].config.trajectory, TrajectoryKind::kDescending);
  EXPECT_EQ(s.iterations[2].config.trajectory, TrajectoryKind::kAscending);
}

TEST(PrtScheme, ExtendedWomUsesPaperGeneratorForGf16) {
  const PrtScheme s = extended_scheme_wom(64, 4);
  EXPECT_EQ(s.field_modulus, 0b10011u);
  bool uses_paper_g = false;
  for (const auto& it : s.iterations) {
    uses_paper_g |= it.g == std::vector<gf::Elem>{1, 2, 2};
  }
  EXPECT_TRUE(uses_paper_g);
}

TEST(PrtScheme, StandardWomOtherWidths) {
  for (unsigned m : {2u, 8u}) {
    const PrtScheme s = standard_scheme_wom(64, m);
    const gf::GF2m field(s.field_modulus);
    EXPECT_EQ(field.m(), m);
    ASSERT_EQ(s.iterations.size(), 3u);
  }
}

TEST(PrtScheme, ExtendedSchemeEnablesVerifyPasses) {
  const PrtScheme s = extended_scheme_bom(64);
  EXPECT_GT(s.iterations.size(), 10u);
  for (const auto& it : s.iterations) {
    EXPECT_TRUE(it.config.verify_pass);
  }
}

TEST(PrtScheme, EveryCellAlternatesAcrossFirstTwoIterations) {
  // The core TF-activation property: the solid-1/solid-0 pair writes
  // complementary values into *every* cell, for even and odd sizes.
  for (mem::Addr n : {16u, 17u, 64u, 65u}) {
    const PrtScheme s = standard_scheme_bom(n);
    const gf::GF2m field(s.field_modulus);
    const PiTester t1(field, s.iterations[0].g);
    const PiTester t2(field, s.iterations[1].g);
    const auto img1 = t1.expected_image(n, s.iterations[0].config);
    const auto img2 = t2.expected_image(n, s.iterations[1].config);
    for (mem::Addr c = 0; c < n; ++c) {
      EXPECT_NE(img1[c], img2[c]) << "n=" << n << " cell " << c;
    }
  }
}

TEST(RunPrt, PassesOnFaultFreeBom) {
  mem::SimRam ram(64, 1);
  const PrtVerdict v = run_prt(ram, standard_scheme_bom(64));
  EXPECT_TRUE(v.pass);
  EXPECT_FALSE(v.detected());
  EXPECT_EQ(v.iterations.size(), 3u);
}

TEST(RunPrt, PassesOnFaultFreeWom) {
  mem::SimRam ram(100, 4);
  const PrtVerdict v = run_prt(ram, standard_scheme_wom(100, 4));
  EXPECT_TRUE(v.pass);
}

TEST(RunPrt, OpsMatchFormula) {
  // Each pure iteration costs exactly 3n ops (§3: O(3n)).
  mem::SimRam ram(128, 1);
  const PrtVerdict v = run_prt(ram, standard_scheme_bom(128));
  EXPECT_EQ(v.ops(), prt_ops(128, 2, 3));
  EXPECT_EQ(v.ops(), 3u * (3 * 128));
}

TEST(RunPrt, DetectsEverySafBothPolarities) {
  // §3 claim, SAF slice: all stuck-at faults detected in 3 iterations.
  for (mem::Addr cell = 0; cell < 32; ++cell) {
    for (unsigned v : {0u, 1u}) {
      mem::FaultyRam ram(32, 1);
      ram.inject(mem::Fault::saf({cell, 0}, v));
      EXPECT_TRUE(run_prt(ram, standard_scheme_bom(32)).detected())
          << "cell " << cell << " stuck-at-" << v;
    }
  }
}

TEST(RunPrt, DetectsEveryTransitionFault) {
  // The anti-checkerboard pair guarantees both transition directions.
  for (mem::Addr cell = 0; cell < 33; ++cell) {
    for (bool up : {true, false}) {
      mem::FaultyRam ram(33, 1);
      ram.inject(mem::Fault::tf({cell, 0}, up));
      EXPECT_TRUE(run_prt(ram, standard_scheme_bom(33)).detected())
          << "cell " << cell << " up=" << up;
    }
  }
}

TEST(RunPrt, StandardMissesSomeWdfExtendedCatchesAll) {
  // WDF needs a non-transition write; the 3-iteration scheme only has
  // those on half the cells (checkerboard zeros) — a structural limit
  // of 3 pure pi-iterations documented in EXPERIMENTS.md.  The
  // extended scheme covers every cell.
  unsigned std_misses = 0;
  for (mem::Addr cell = 0; cell < 16; ++cell) {
    mem::FaultyRam r1(16, 1);
    r1.inject(mem::Fault::wdf({cell, 0}));
    if (!run_prt(r1, standard_scheme_bom(16)).detected()) ++std_misses;
    mem::FaultyRam r2(16, 1);
    r2.inject(mem::Fault::wdf({cell, 0}));
    EXPECT_TRUE(run_prt(r2, extended_scheme_bom(16)).detected())
        << "cell " << cell;
  }
  EXPECT_GT(std_misses, 0u);
}

TEST(RunPrt, StandardDetectsDeceptiveAndIncorrectReads) {
  // DRDF and IRF corrupt the *second* window read, whose value enters
  // the two-term feedback.  (RDF flips twice between the two reads and
  // cancels under g = 1 + x^2 — it needs the extended scheme's
  // maximal-length iterations; see below.)
  for (mem::Addr cell = 0; cell < 16; ++cell) {
    for (int kind = 0; kind < 2; ++kind) {
      mem::FaultyRam ram(16, 1);
      const mem::BitRef v{cell, 0};
      switch (kind) {
        case 0: ram.inject(mem::Fault::drdf(v)); break;
        case 1: ram.inject(mem::Fault::irf(v)); break;
      }
      EXPECT_TRUE(run_prt(ram, standard_scheme_bom(16)).detected())
          << "cell " << cell << " kind " << kind;
    }
  }
}

TEST(RunPrt, ExtendedDetectsEveryRdf) {
  for (mem::Addr cell = 0; cell < 16; ++cell) {
    mem::FaultyRam ram(16, 1);
    ram.inject(mem::Fault::rdf({cell, 0}));
    EXPECT_TRUE(run_prt(ram, extended_scheme_bom(16)).detected())
        << "cell " << cell;
  }
}

TEST(RunPrt, ExtendedDetectsEverySof) {
  // Stuck-open cells echo the sense amp; solid backgrounds cannot see
  // them, the checkerboard/maximal-length iterations can.
  for (mem::Addr cell = 0; cell < 16; ++cell) {
    mem::FaultyRam ram(16, 1);
    ram.inject(mem::Fault::sof({cell, 0}));
    EXPECT_TRUE(run_prt(ram, extended_scheme_bom(16)).detected())
        << "cell " << cell;
  }
}

TEST(RunPrt, DetectsNoAccessAndWrongAccessDecoderFaults) {
  for (mem::Addr a = 0; a < 16; ++a) {
    mem::FaultyRam r1(16, 1);
    r1.inject(mem::Fault::af_no_access(a));
    EXPECT_TRUE(run_prt(r1, standard_scheme_bom(16)).detected()) << a;
    mem::FaultyRam r2(16, 1);
    r2.inject(mem::Fault::af_wrong_access(a, (a + 1) % 16));
    EXPECT_TRUE(run_prt(r2, standard_scheme_bom(16)).detected()) << a;
  }
}

TEST(RunPrt, ExtendedDetectsMultiAccessDecoderFaults) {
  // Multi-access aliasing self-heals within a sweep; the verify passes
  // of the extended scheme observe the lasting inconsistency.
  for (mem::Addr a = 0; a < 16; ++a) {
    mem::FaultyRam ram(16, 1);
    ram.inject(mem::Fault::af_multi_access(a, (a + 8) % 16));
    EXPECT_TRUE(run_prt(ram, extended_scheme_bom(16)).detected()) << a;
  }
}

TEST(RunPrt, DetectsAdjacentCouplingBothOrientations) {
  // Physically adjacent coupling faults (|a - v| = 1): the ascending
  // iteration catches aggressor = victim + 1, the descending one
  // aggressor = victim - 1.
  for (mem::Addr v = 1; v + 1 < 24; ++v) {
    for (int da : {-1, +1}) {
      const mem::Addr a = static_cast<mem::Addr>(v + da);
      mem::FaultyRam ram(24, 1);
      ram.inject(mem::Fault::cf_in({v, 0}, {a, 0}));
      EXPECT_TRUE(run_prt(ram, standard_scheme_bom(24)).detected())
          << "v=" << v << " da=" << da;
    }
  }
}

TEST(RunPrt, ExtendedDetectsStateCouplingRegardlessOfDistance) {
  for (mem::Addr a : {0u, 9u, 23u}) {
    for (mem::Addr v : {4u, 15u, 22u}) {
      if (a == v) continue;
      for (unsigned when : {0u, 1u}) {
        for (unsigned forced : {0u, 1u}) {
          mem::FaultyRam ram(24, 1);
          ram.inject(mem::Fault::cf_st({v, 0}, {a, 0}, when, forced));
          EXPECT_TRUE(run_prt(ram, extended_scheme_bom(24)).detected())
              << "a=" << a << " v=" << v << " when=" << when
              << " forced=" << forced;
        }
      }
    }
  }
}

TEST(RunPrt, ExtendedDetectsEveryAdjacentCfIdVariant) {
  // The 4-variant idempotent coupling faults need the full
  // solid/checkerboard edge schedule of the extended scheme.
  for (mem::Addr v = 1; v + 1 < 18; ++v) {
    for (int da : {-1, +1}) {
      const mem::Addr a = static_cast<mem::Addr>(v + da);
      for (bool up : {true, false}) {
        for (unsigned forced : {0u, 1u}) {
          mem::FaultyRam ram(18, 1);
          ram.inject(mem::Fault::cf_id({v, 0}, {a, 0}, up, forced));
          EXPECT_TRUE(run_prt(ram, extended_scheme_bom(18)).detected())
              << "v=" << v << " da=" << da << " up=" << up
              << " forced=" << forced;
        }
      }
    }
  }
}

TEST(RunPrt, StandardDetectsOddDistanceBridges) {
  // The checkerboard iteration drives bridged cells of odd distance to
  // opposite values.
  for (mem::Addr a : {0u, 5u}) {
    for (mem::Addr b : {11u, 22u}) {
      if (((b - a) % 2) == 0) continue;
      for (bool wired_and : {true, false}) {
        mem::FaultyRam ram(24, 1);
        ram.inject(mem::Fault::bridge({a, 0}, {b, 0}, wired_and));
        EXPECT_TRUE(run_prt(ram, standard_scheme_bom(24)).detected())
            << "a=" << a << " b=" << b << " and=" << wired_and;
      }
    }
  }
}

TEST(RunPrt, ExtendedDetectsBridgesAnyDistance) {
  for (mem::Addr a : {0u, 5u}) {
    for (mem::Addr b : {11u, 22u}) {
      for (bool wired_and : {true, false}) {
        mem::FaultyRam ram(24, 1);
        ram.inject(mem::Fault::bridge({a, 0}, {b, 0}, wired_and));
        EXPECT_TRUE(run_prt(ram, extended_scheme_bom(24)).detected())
            << "a=" << a << " b=" << b << " and=" << wired_and;
      }
    }
  }
}

TEST(RunPrt, WomExtendedDetectsIntraWordStateCoupling) {
  // Victim bit 3 forced while bit 0 of the same word is 1: needs a
  // background word with bit0 = 1, bit3 = 0, which the maximal-length
  // iterations provide (solid/checkerboard words have all bits equal).
  mem::FaultyRam ram(32, 4);
  ram.inject(mem::Fault::cf_st({5, 3}, {5, 0}, /*when=*/1, /*forced=*/1));
  EXPECT_TRUE(run_prt(ram, extended_scheme_wom(32, 4)).detected());
}

TEST(RunPrt, FewerIterationsDetectLess) {
  // A TF-down at a cell whose checkerboard value is 0 in iteration 1
  // needs the complementary iteration; truncated schemes must miss
  // some fault the full scheme catches.
  PrtScheme full = standard_scheme_bom(32);
  PrtScheme one = full;
  one.iterations.resize(1);
  unsigned misses_one = 0;
  unsigned misses_full = 0;
  for (mem::Addr cell = 0; cell < 32; ++cell) {
    for (bool up : {true, false}) {
      mem::FaultyRam r1(32, 1);
      r1.inject(mem::Fault::tf({cell, 0}, up));
      if (!run_prt(r1, one).detected()) ++misses_one;
      mem::FaultyRam r2(32, 1);
      r2.inject(mem::Fault::tf({cell, 0}, up));
      if (!run_prt(r2, full).detected()) ++misses_full;
    }
  }
  EXPECT_GT(misses_one, 0u);
  EXPECT_EQ(misses_full, 0u);
}

TEST(RunPrt, MisrOptionDoesNotFalseAlarm) {
  PrtScheme s = standard_scheme_bom(64);
  s.misr_poly = 0b1000011;
  mem::SimRam ram(64, 1);
  const PrtVerdict v = run_prt(ram, s);
  EXPECT_TRUE(v.pass);
  EXPECT_TRUE(v.misr_pass);
}

TEST(PrtOps, Formula) {
  EXPECT_EQ(prt_ops(100, 2, 1), 3u * 100);
  EXPECT_EQ(prt_ops(100, 2, 3), 9u * 100);
  // k = 3: 3 init + 4(n-3) sweep + 3 Fin + 3 Init re-reads.
  EXPECT_EQ(prt_ops(100, 3, 1), 3u + 4 * 97 + 6);
}

}  // namespace
}  // namespace prt::core
