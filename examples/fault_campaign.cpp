// Multi-configuration fault-injection campaign with per-class
// reporting and escape listing — the workflow a test engineer would
// use to qualify a PRT scheme across a whole family of memories.
//
// One CampaignSuite::run call sweeps the scheme over every requested
// memory size: the universe generator is invoked per configuration,
// golden oracles/transcripts come from the shared cache (one compile
// per size), all configurations' fault shards interleave on one worker
// pool, and each configuration's result is bit-identical to a
// standalone engine run.
//
//   $ ./fault_campaign [m] [n1 n2 ...]     (defaults: m = 1, n = 64 256)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "analysis/campaign_suite.hpp"
#include "mem/fault_universe.hpp"

namespace {

bool parse_unsigned(const char* arg, unsigned long& out) {
  // strtoul wraps negatives and overflow instead of failing, so both
  // are rejected explicitly; the 2^24-cell cap keeps a typo from
  // turning into a multi-gigabyte universe allocation.
  if (arg[0] == '-' || arg[0] == '\0') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoul(arg, &end, 10);
  return errno == 0 && end != arg && *end == '\0' && out >= 1 &&
         out <= (1UL << 24);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prt;
  unsigned long m = 1;
  std::vector<analysis::CampaignOptions> grid;
  if (argc > 1 && !parse_unsigned(argv[1], m)) {
    std::fprintf(stderr, "usage: %s [m] [n1 n2 ...]\n", argv[0]);
    return 2;
  }
  for (int i = 2; i < argc; ++i) {
    unsigned long n = 0;
    if (!parse_unsigned(argv[i], n)) {
      std::fprintf(stderr, "usage: %s [m] [n1 n2 ...]\n", argv[0]);
      return 2;
    }
    grid.push_back({.n = static_cast<mem::Addr>(n),
                    .m = static_cast<unsigned>(m)});
  }
  if (grid.empty()) {
    grid = {{.n = 64, .m = static_cast<unsigned>(m)},
            {.n = 256, .m = static_cast<unsigned>(m)}};
  }
  // Malformed geometry (e.g. m outside [1, 32]) is rejected by the
  // suite's central validation — report it instead of aborting.
  try {
    for (const analysis::CampaignOptions& opt : grid) {
      analysis::validate_campaign_options(opt);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\nusage: %s [m] [n1 n2 ...]\n", e.what(), argv[0]);
    return 2;
  }

  // Universes generated once up-front and handed to the suite by grid
  // index: the escape listing below indexes into these same vectors,
  // so it cannot drift from what the suite actually simulated.
  std::vector<std::vector<mem::Fault>> universes;
  for (const analysis::CampaignOptions& opt : grid) {
    mem::UniverseOptions uopt;
    uopt.single_cell = true;
    uopt.read_logic = true;
    uopt.coupling = true;
    uopt.bridges = true;
    uopt.address_decoder = true;
    uopt.intra_word = opt.m > 1;
    uopt.npsf = true;
    uopt.coupling_pair_limit = 2048;  // sample distant pairs
    universes.push_back(mem::make_universe(opt.n, opt.m, uopt));
  }
  const analysis::UniverseGenerator universe =
      [&](const analysis::CampaignOptions&, std::size_t i) {
        return universes[i];
      };

  // One call, the whole sweep: schemes sized per configuration,
  // oracles compiled once per (scheme, n), shards flattened onto one
  // pool.
  const analysis::SuiteResult suite = analysis::run_prt_suite(
      grid,
      [](const analysis::CampaignOptions& opt) {
        return opt.m == 1 ? core::extended_scheme_bom(opt.n)
                          : core::extended_scheme_wom(opt.n, opt.m);
      },
      universe);

  std::printf("%s\n", suite.table().str().c_str());

  for (std::size_t c = 0; c < suite.configs.size(); ++c) {
    const analysis::SuiteConfigResult& entry = suite.configs[c];
    const auto& escapes = entry.result.escapes;
    std::printf("n = %u: %zu escapes\n", entry.options.n, escapes.size());
    const std::size_t show = std::min<std::size_t>(escapes.size(), 10);
    for (std::size_t i = 0; i < show; ++i) {
      std::printf("  %s\n", universes[c][escapes[i]].describe().c_str());
    }
    if (escapes.size() > show) {
      std::printf("  ... and %zu more\n", escapes.size() - show);
    }
  }
  return 0;
}
