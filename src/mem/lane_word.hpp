// The lane-word abstraction under every packed fault path.
//
// A lane word is a fixed-width bundle of independent 1-bit lanes: bit
// L is lane L's value, and the packed fault models
// (mem::PackedFaultRamT, core::run_prt_packed, march::run_march_packed)
// evaluate one fault per lane with plain bitwise ops.  Two families
// model it:
//
//  * LaneWord (std::uint64_t) — the status-quo 64-lane word; every
//    lane op is one ALU instruction;
//  * WideWord<K> (std::array<std::uint64_t, K>) — 64*K lanes.  All its
//    operators are straight-line per-limb folds with no carries and no
//    cross-limb flow, exactly the shape the autovectorizer lowers to
//    one AVX2 (K = 4) or AVX-512 (K = 8) instruction per op when the
//    build enables those ISAs (the PRT_SIMD CMake option adds -mavx2;
//    plain builds still vectorize the folds at SSE2 width).
//
// Everything that touches raw lane-word bit twiddling — single-lane
// masks, broadcasts, popcounts, set-lane iteration — lives in the
// helpers below, and ONLY here: the packed simulation files are
// written against lane_broadcast / lane_bit / lane_test / ... so they
// compile unchanged at any width, and scripts/run_lint.py's lane-word
// lint flags raw uint64 lane arithmetic outside this header to keep
// the abstraction from eroding.
//
// Lane numbering of WideWord<K>: lane L lives in limb L / 64, bit
// L % 64 — limb 0 carries lanes [0, 64), limb 1 lanes [64, 128), etc,
// so the uint64_t word is bit-compatible with limb 0 and every
// lane-indexed structure (per-lane fault metadata, batch index maps)
// is width-agnostic.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <type_traits>

namespace prt::mem {

/// One bit per lane across the 64 packed memories — the narrow (and
/// default) lane word.
using LaneWord = std::uint64_t;

/// 64*K lanes as K carry-less uint64 limbs.  Bitwise ops are per-limb
/// folds the autovectorizer turns into full-width vector instructions;
/// there is deliberately no arithmetic (+, <<) on the whole word — the
/// packed models never need carries across lanes.
template <unsigned K>
struct WideWord {
  static_assert(K >= 2, "WideWord is the wider-than-64 path; use LaneWord");
  std::array<std::uint64_t, K> limb{};

  constexpr WideWord& operator&=(const WideWord& o) {
    for (unsigned k = 0; k < K; ++k) limb[k] &= o.limb[k];
    return *this;
  }
  constexpr WideWord& operator|=(const WideWord& o) {
    for (unsigned k = 0; k < K; ++k) limb[k] |= o.limb[k];
    return *this;
  }
  constexpr WideWord& operator^=(const WideWord& o) {
    for (unsigned k = 0; k < K; ++k) limb[k] ^= o.limb[k];
    return *this;
  }
  [[nodiscard]] friend constexpr WideWord operator&(WideWord a,
                                                    const WideWord& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator|(WideWord a,
                                                    const WideWord& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator^(WideWord a,
                                                    const WideWord& b) {
    a ^= b;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator~(WideWord a) {
    for (unsigned k = 0; k < K; ++k) a.limb[k] = ~a.limb[k];
    return a;
  }
  [[nodiscard]] friend constexpr bool operator==(const WideWord&,
                                                 const WideWord&) = default;
};

/// Lane count and identification of the supported lane-word types.
template <typename W>
struct LaneTraits;

template <>
struct LaneTraits<std::uint64_t> {
  static constexpr unsigned kLanes = 64;
};

template <unsigned K>
struct LaneTraits<WideWord<K>> {
  static constexpr unsigned kLanes = 64 * K;
};

template <typename W>
inline constexpr bool is_wide_lane_word_v = !std::is_same_v<W, std::uint64_t>;

/// Broadcasts one data/golden bit to every lane — the bridge between
/// scalar golden values and lane-parallel compares/writes, shared by
/// every packed replay.  The default keeps the historical
/// lane_broadcast(bit) call sites on the 64-lane word.
template <typename W = LaneWord>
[[nodiscard]] constexpr W lane_broadcast(unsigned bit) {
  const std::uint64_t fill = bit != 0 ? ~std::uint64_t{0} : std::uint64_t{0};
  if constexpr (is_wide_lane_word_v<W>) {
    W r{};
    for (std::uint64_t& l : r.limb) l = fill;
    return r;
  } else {
    return fill;
  }
}

/// The word with only lane `lane` set.  Precondition: lane <
/// LaneTraits<W>::kLanes.
template <typename W = LaneWord>
[[nodiscard]] constexpr W lane_bit(unsigned lane) {
  if constexpr (is_wide_lane_word_v<W>) {
    W r{};
    r.limb[lane / 64] = std::uint64_t{1} << (lane % 64);
    return r;
  } else {
    return std::uint64_t{1} << lane;
  }
}

/// Lane `lane`'s bit of `x`.
template <typename W>
[[nodiscard]] constexpr bool lane_test(const W& x, unsigned lane) {
  if constexpr (is_wide_lane_word_v<W>) {
    return ((x.limb[lane / 64] >> (lane % 64)) & 1U) != 0;
  } else {
    return ((x >> lane) & 1U) != 0;
  }
}

/// Sets (value = true) or clears lane `lane` of `x` in place.
template <typename W>
constexpr void lane_assign(W& x, unsigned lane, bool value) {
  if constexpr (is_wide_lane_word_v<W>) {
    const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
    std::uint64_t& l = x.limb[lane / 64];
    l = value ? (l | bit) : (l & ~bit);
  } else {
    const std::uint64_t bit = std::uint64_t{1} << lane;
    x = value ? (x | bit) : (x & ~bit);
  }
}

/// True when any lane of `x` is set — the width-generic `x != 0`.
template <typename W>
[[nodiscard]] constexpr bool lane_any(const W& x) {
  if constexpr (is_wide_lane_word_v<W>) {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : x.limb) acc |= l;
    return acc != 0;
  } else {
    return x != 0;
  }
}

/// Number of set lanes.
template <typename W>
[[nodiscard]] constexpr unsigned lane_popcount(const W& x) {
  if constexpr (is_wide_lane_word_v<W>) {
    unsigned n = 0;
    for (const std::uint64_t l : x.limb) {
      n += static_cast<unsigned>(std::popcount(l));
    }
    return n;
  } else {
    return static_cast<unsigned>(std::popcount(x));
  }
}

/// The low `count` lanes set (count == kLanes -> all lanes).
/// Precondition: count <= LaneTraits<W>::kLanes.
template <typename W = LaneWord>
[[nodiscard]] constexpr W lane_mask_low(unsigned count) {
  if constexpr (is_wide_lane_word_v<W>) {
    W r{};
    for (unsigned k = 0; count != 0 && k < static_cast<unsigned>(r.limb.size());
         ++k) {
      const unsigned take = count >= 64 ? 64 : count;
      r.limb[k] = take == 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << take) - 1;
      count -= take;
    }
    return r;
  } else {
    return count == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
  }
}

/// Calls fn(lane) for every set lane of `m`, ascending — the per-lane
/// scatter loop of the packed fault models (coupling fire, decoder
/// remaps, retention latches).  Also serves scalar tap/feedback masks:
/// any unsigned mask converts to the 64-lane word.
template <typename Fn>
inline void for_each_set_lane(std::uint64_t m, Fn&& fn) {
  while (m != 0) {
    fn(static_cast<unsigned>(std::countr_zero(m)));
    m &= m - 1;
  }
}

template <unsigned K, typename Fn>
inline void for_each_set_lane(const WideWord<K>& m, Fn&& fn) {
  for (unsigned k = 0; k < K; ++k) {
    std::uint64_t l = m.limb[k];
    while (l != 0) {
      fn(64U * k + static_cast<unsigned>(std::countr_zero(l)));
      l &= l - 1;
    }
  }
}

/// Default lane width for campaign dispatch: the PRT_LANES environment
/// override when set to 64, 256 or 512 (benches and CI pin it), else
/// 256 when the build compiled the SIMD path in (the PRT_SIMD CMake
/// option), else the status-quo 64.  Campaigns fall back to 64 per
/// batch anyway when a batch cannot fill half the wide lanes
/// (analysis/campaign_driver.hpp).
[[nodiscard]] inline unsigned default_lane_width() {
  if (const char* env = std::getenv("PRT_LANES")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && (v == 64 || v == 256 || v == 512)) {
      return static_cast<unsigned>(v);
    }
  }
#if defined(PRT_SIMD)
  return 256;
#else
  return 64;
#endif
}

}  // namespace prt::mem
