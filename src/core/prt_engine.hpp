// Multi-iteration pseudo-ring testing.
//
// §3 of the paper: at least 3 pi-test iterations with a specific test
// data background (TDB) detect all targeted single- and multi-cell
// faults.  A PrtScheme bundles the per-iteration LFSR structures and
// TDBs.  The paper's references [2]/[3] with the exact TDB are
// unavailable (DESIGN.md §2), so two schemes are reconstructed and
// validated by exhaustive fault simulation (tests/,
// bench/tab_fault_coverage):
//
//  * `standard_scheme_*` — 3 iterations of the pure O(3n) form, found
//    by exhaustive search over the (generator, seed, trajectory)
//    space: solid-1 ascending, solid-0 descending, checkerboard
//    ascending (all built on the paper-sanctioned two-term generator
//    g = 1 + x^2).  Measured: 100% of SAF, TF, adjacent CFin, bridges
//    and wrong/none decoder faults; CFst partial, CFid/WDF/read-logic
//    partial — see EXPERIMENTS.md for the precise table.
//
//  * `extended_scheme_*` — the longer sequence with per-iteration
//    verify passes that reaches 100% of the full van de Goor model
//    including 4-variant CFid, WDF, RDF/DRDF/IRF/SOF and multi-access
//    decoder faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pi_iteration.hpp"

namespace prt::core {

/// One scheme iteration: LFSR structure + TDB.
struct SchemeIteration {
  std::vector<gf::Elem> g;  // generator coefficients g0..gk
  PiConfig config;
};

/// A complete PRT scheme over one field.
struct PrtScheme {
  gf::Poly2 field_modulus = 0b11;  // p(z); default GF(2) = GF(2)[z]/(z+1)
  std::vector<SchemeIteration> iterations;
  /// Optional MISR polynomial (0 = disabled) applied to every
  /// iteration's read stream.
  gf::Poly2 misr_poly = 0;
  std::string name;
};

/// Verdict of a full scheme run.
struct PrtVerdict {
  bool pass = true;        // all iterations matched Fin*
  bool misr_pass = true;   // all MISR signatures matched (if enabled)
  std::vector<PiResult> iterations;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  [[nodiscard]] std::uint64_t ops() const { return reads + writes; }

  /// Detection verdict used by coverage campaigns: the scheme flags the
  /// memory as faulty if any iteration's Fin (or MISR, when enabled)
  /// deviates.
  [[nodiscard]] bool detected() const { return !pass || !misr_pass; }
};

/// Memoized per-scheme oracle: one PiTester and one PiOracle per
/// iteration, built exactly once per (scheme, n) and shared read-only
/// by every fault of a campaign — and, being immutable, by every
/// worker thread (analysis/campaign_engine).
struct PrtOracle {
  mem::Addr n = 0;
  std::vector<PiTester> testers;
  std::vector<PiOracle> iterations;
};

/// Precomputes the oracle for running `scheme` against n-cell memories.
/// Precondition: n > k of every iteration's generator.
[[nodiscard]] PrtOracle make_prt_oracle(const PrtScheme& scheme, mem::Addr n);

/// Structural fingerprint of a scheme: serializes every field the
/// oracle and op-transcript compilation depend on (field modulus, MISR
/// polynomial, per-iteration generator coefficients, seeds, trajectory
/// kind and seed, verify/pause settings).  Two schemes with equal
/// fingerprints compile to identical oracles and transcripts for any
/// n — the (scheme, n) cache-key contract of analysis::OracleCache.
/// The display name is deliberately excluded: a renamed scheme still
/// caches as itself.
[[nodiscard]] std::string scheme_fingerprint(const PrtScheme& scheme);

struct PrtRunOptions {
  /// Stop after the first failing iteration.  The verdict's detected()
  /// is unchanged (a scheme detects iff any iteration fails) but the
  /// skipped iterations issue no memory operations, so read/write
  /// counts no longer reflect a full run — campaigns that only need
  /// verdicts opt in, benches that report op counts must not.
  bool early_abort = false;
  /// Keep the per-iteration PiResults in the verdict.  Campaign hot
  /// loops turn this off to avoid retaining k-sized vectors per
  /// iteration per fault.
  bool record_iterations = true;
};

/// Runs every iteration of the scheme in order.
[[nodiscard]] PrtVerdict run_prt(mem::Memory& memory,
                                 const PrtScheme& scheme);

/// Oracle-backed run: no trajectory/golden-sequence/Fin* re-derivation
/// per call.  Precondition: oracle built by make_prt_oracle(scheme,
/// memory.size()).
[[nodiscard]] PrtVerdict run_prt(mem::Memory& memory,
                                 const PrtScheme& scheme,
                                 const PrtOracle& oracle,
                                 const PrtRunOptions& options = {});

/// The reconstructed 3-iteration TDB for a bit-oriented memory of n
/// cells (field GF(2), k = 2).
[[nodiscard]] PrtScheme standard_scheme_bom(mem::Addr n);

/// The reconstructed 3-iteration TDB for a word-oriented memory:
/// field GF(2^m) over `p` (pass 0 to use the first primitive polynomial
/// of degree m), k = 2.  The extended WOM scheme additionally uses the
/// paper's Fig. 1b generator g(x) = 1 + 2x + 2x^2 when
/// (m, p) = (4, z^4+z+1), else the first primitive quadratic.
[[nodiscard]] PrtScheme standard_scheme_wom(mem::Addr n, unsigned m,
                                            gf::Poly2 p = 0);

/// The extended PRT scheme: a longer iteration sequence (solid,
/// checkerboard and maximal-length backgrounds, both traversal
/// directions, plus random-trajectory iterations) that additionally
/// covers the 4-variant idempotent coupling faults (CFid) and
/// decoder multi-access faults whose aliasing distance resonates with
/// short background periods.  This goes beyond the paper's 3-iteration
/// claim — see EXPERIMENTS.md for the measured coverage of both.
[[nodiscard]] PrtScheme extended_scheme_bom(mem::Addr n);
[[nodiscard]] PrtScheme extended_scheme_wom(mem::Addr n, unsigned m,
                                            gf::Poly2 p = 0);

/// Retention-test scheme: two solid-background iterations (all-ones,
/// all-zeros) with a `pause_ticks` idle window between each sweep and
/// its verify pass — the write/pause/read pattern that exposes
/// data-retention faults of both decay polarities (the pure sweep
/// re-reads each cell within ~2 operations and can never wait out a
/// realistic decay delay).
[[nodiscard]] PrtScheme retention_scheme(mem::Addr n, unsigned m,
                                         std::uint64_t pause_ticks,
                                         gf::Poly2 p = 0);

/// Number of operations a single-port scheme issues on n cells:
/// iterations * (k init writes + (n-k)(k reads + 1 write) + k Fin reads
/// + k Init re-reads); for k = 2 that is exactly iterations * 3n — the
/// O(3n) of §3.
[[nodiscard]] std::uint64_t prt_ops(mem::Addr n, unsigned k,
                                    unsigned iterations);

}  // namespace prt::core
