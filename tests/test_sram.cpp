// Tests for the golden RAM model (mem/sram).
#include "mem/sram.hpp"

#include <gtest/gtest.h>

namespace prt::mem {
namespace {

TEST(SimRam, ReadBackAfterWrite) {
  SimRam ram(16, 8);
  ram.write(3, 0xAB, 0);
  EXPECT_EQ(ram.read(3, 0), 0xABu);
}

TEST(SimRam, InitializedToZero) {
  SimRam ram(8, 4);
  for (Addr a = 0; a < 8; ++a) EXPECT_EQ(ram.read(a, 0), 0u);
}

TEST(SimRam, WidthMaskApplied) {
  SimRam ram(4, 4);
  ram.write(0, 0xFF, 0);
  EXPECT_EQ(ram.read(0, 0), 0xFu);
  EXPECT_EQ(ram.word_mask(), 0xFu);
}

TEST(SimRam, FullWidth32) {
  SimRam ram(2, 32);
  ram.write(1, 0xDEADBEEF, 0);
  EXPECT_EQ(ram.read(1, 0), 0xDEADBEEFu);
  EXPECT_EQ(ram.word_mask(), 0xFFFFFFFFu);
}

TEST(SimRam, BitOrientedCell) {
  SimRam ram(4, 1);
  ram.write(2, 1, 0);
  ram.write(3, 0, 0);
  EXPECT_EQ(ram.read(2, 0), 1u);
  EXPECT_EQ(ram.read(3, 0), 0u);
}

TEST(SimRam, PortsShareStorage) {
  SimRam ram(8, 8, 2);
  ram.write(5, 0x42, 0);
  EXPECT_EQ(ram.read(5, 1), 0x42u);
  ram.write(5, 0x17, 1);
  EXPECT_EQ(ram.read(5, 0), 0x17u);
}

TEST(SimRam, StatsPerPort) {
  SimRam ram(8, 8, 2);
  ram.write(0, 1, 0);
  ram.read(0, 0);
  ram.read(0, 1);
  ram.read(0, 1);
  EXPECT_EQ(ram.stats(0).writes, 1u);
  EXPECT_EQ(ram.stats(0).reads, 1u);
  EXPECT_EQ(ram.stats(1).reads, 2u);
  EXPECT_EQ(ram.stats(1).writes, 0u);
  EXPECT_EQ(ram.total_stats().total(), 4u);
}

TEST(SimRam, ResetStats) {
  SimRam ram(4, 8);
  ram.write(0, 1, 0);
  ram.reset_stats();
  EXPECT_EQ(ram.total_stats().total(), 0u);
}

TEST(SimRam, PeekPokeBypassStats) {
  SimRam ram(4, 8);
  ram.poke(2, 0x55);
  EXPECT_EQ(ram.peek(2), 0x55u);
  EXPECT_EQ(ram.total_stats().total(), 0u);
}

TEST(SimRam, FillSetsEveryCell) {
  SimRam ram(16, 4);
  ram.fill(0xF);
  for (Addr a = 0; a < 16; ++a) EXPECT_EQ(ram.peek(a), 0xFu);
  ram.fill(0x30);  // masked to 0
  for (Addr a = 0; a < 16; ++a) EXPECT_EQ(ram.peek(a), 0u);
}

TEST(SimRam, ImageSnapshot) {
  SimRam ram(3, 8);
  ram.write(0, 1, 0);
  ram.write(1, 2, 0);
  ram.write(2, 3, 0);
  EXPECT_EQ(ram.image(), (std::vector<Word>{1, 2, 3}));
}

TEST(SimRam, QuadPortStats) {
  SimRam ram(8, 8, 4);
  for (unsigned p = 0; p < 4; ++p) ram.read(0, p);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(ram.stats(p).reads, 1u);
  }
}

}  // namespace
}  // namespace prt::mem
