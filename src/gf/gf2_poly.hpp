// Arithmetic on polynomials over GF(2), represented as 64-bit masks
// (bit i holds the coefficient of z^i).  This is the ground layer of the
// Galois-field stack: GF(2^m) field construction, irreducibility and
// primitivity checks, and LFSR period computation all build on it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace prt::gf {

/// A polynomial over GF(2) packed into a 64-bit mask; degree <= 62 so
/// products of reduced residues never overflow the carry-less multiply.
using Poly2 = std::uint64_t;

/// Carry-less (GF(2)) product of two polynomials.  Degrees must sum to
/// at most 63; callers reducing modulo a degree-m polynomial (m <= 31)
/// always satisfy this.
[[nodiscard]] Poly2 clmul(Poly2 a, Poly2 b);

/// Remainder of a modulo p (p != 0).
[[nodiscard]] Poly2 poly_mod(Poly2 a, Poly2 p);

/// Quotient of a divided by p (p != 0).
[[nodiscard]] Poly2 poly_div(Poly2 a, Poly2 p);

/// Greatest common divisor of two GF(2) polynomials.
[[nodiscard]] Poly2 poly_gcd(Poly2 a, Poly2 b);

/// (a * b) mod p with all operands already reduced mod p.
[[nodiscard]] Poly2 mulmod(Poly2 a, Poly2 b, Poly2 p);

/// a^e mod p by square-and-multiply (e is an ordinary integer).
[[nodiscard]] Poly2 powmod(Poly2 a, std::uint64_t e, Poly2 p);

/// x^(2^k) mod p via k repeated squarings (used by the Rabin test,
/// where the exponent 2^k may exceed 2^64).
[[nodiscard]] Poly2 pow_x_pow2(unsigned k, Poly2 p);

/// True if p (degree >= 1) is irreducible over GF(2).  Rabin's test.
[[nodiscard]] bool is_irreducible(Poly2 p);

/// True if p is primitive over GF(2): irreducible and z is a generator
/// of GF(2^deg p)^*.  Requires deg p <= 31.
[[nodiscard]] bool is_primitive(Poly2 p);

/// Multiplicative order of x modulo p for irreducible p (deg <= 31):
/// the smallest t > 0 with x^t = 1 (mod p).  This equals the period of
/// the maximal-length sequence iff p is primitive.
[[nodiscard]] std::uint64_t order_of_x(Poly2 p);

/// Prime factorization of n (trial division; n <= 2^62).  Returns the
/// distinct prime factors in increasing order.
[[nodiscard]] std::vector<std::uint64_t> distinct_prime_factors(
    std::uint64_t n);

/// The lexicographically smallest irreducible polynomial of degree m
/// (1 <= m <= 31), e.g. m=4 -> z^4+z+1 = 0x13.
[[nodiscard]] Poly2 first_irreducible(unsigned m);

/// The lexicographically smallest primitive polynomial of degree m.
[[nodiscard]] Poly2 first_primitive(unsigned m);

/// All irreducible polynomials of degree m, ascending (m <= 16 to keep
/// enumeration cheap).
[[nodiscard]] std::vector<Poly2> irreducibles_of_degree(unsigned m);

/// Renders p as a human-readable string, e.g. "z^4 + z + 1".
[[nodiscard]] std::string poly_to_string(Poly2 p, char var = 'z');

/// Parses strings like "z^4+z+1" or "1+z+z^4" (whitespace ignored).
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<Poly2> poly_from_string(std::string_view text,
                                                    char var = 'z');

}  // namespace prt::gf
