#include "core/pi_iteration.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace prt::core {

PiTester::PiTester(gf::GF2m field, std::vector<gf::Elem> g)
    : lfsr_(std::move(field), std::move(g)) {}

void PiTester::enable_misr(gf::Poly2 poly) {
  assert(poly_degree(poly) >= 1 && poly_degree(poly) <= 63);
  misr_poly_ = poly;
}

std::vector<gf::Elem> PiTester::expected_fin(
    mem::Addr n, std::span<const gf::Elem> init) const {
  assert(n > k());
  lfsr::WordLfsr model = lfsr_;
  model.seed(init);
  model.jump(n - k());
  return {model.state().begin(), model.state().end()};
}

std::vector<gf::Elem> PiTester::expected_image(mem::Addr n,
                                               const PiConfig& config) const {
  assert(config.init.size() == k());
  lfsr::WordLfsr model = lfsr_;
  model.seed(config.init);
  const std::vector<gf::Elem> seq = model.sequence(n);
  const Trajectory traj =
      Trajectory::make(config.trajectory, n, config.seed);
  std::vector<gf::Elem> image(n, 0);
  for (mem::Addr q = 0; q < n; ++q) image[traj.at(q)] = seq[q];
  return image;
}

bool PiTester::ring_closes(mem::Addr n) const {
  assert(n > k());
  return (n - k()) % period() == 0;
}

PiOracle PiTester::make_oracle(mem::Addr n, const PiConfig& config) const {
  const unsigned kk = k();
  assert(n > kk);
  assert(config.init.size() == kk);
  PiOracle oracle;
  oracle.n = n;
  oracle.trajectory = Trajectory::make(config.trajectory, n, config.seed);
  oracle.fin_expected = expected_fin(n, config.init);
  if (misr_poly_ == 0 && !config.verify_pass) return oracle;

  // Golden sequence in sweep order, shared by the image and the MISR
  // signature.
  lfsr::WordLfsr model = lfsr_;
  model.seed(config.init);
  const std::vector<gf::Elem> seq = model.sequence(n);
  if (config.verify_pass) {
    oracle.image.assign(n, 0);
    for (mem::Addr q = 0; q < n; ++q) {
      oracle.image[oracle.trajectory.at(q)] = seq[q];
    }
  }
  if (misr_poly_ != 0) {
    // Replay the fault-free read stream in the exact order run() reads
    // it: the k-wide sweep windows, the Fin read-back, the Init
    // re-read.  (The verify pass does not feed the MISR.)
    lfsr::Misr golden(misr_poly_);
    for (mem::Addr q = 0; q + kk < n; ++q) {
      for (unsigned j = 0; j < kk; ++j) golden.shift(seq[q + j]);
    }
    for (unsigned j = 0; j < kk; ++j) golden.shift(seq[n - kk + j]);
    for (unsigned j = 0; j < kk; ++j) golden.shift(seq[j]);
    oracle.misr_expected = golden.state();
  }
  return oracle;
}

PiResult PiTester::run(mem::Memory& memory, const PiConfig& config) const {
  return run(memory, config, make_oracle(memory.size(), config));
}

PiResult PiTester::run(mem::Memory& memory, const PiConfig& config,
                       const PiOracle& oracle) const {
  const mem::Addr n = memory.size();
  const unsigned kk = k();
  assert(memory.width() == field().m());
  assert(n > kk);
  assert(config.init.size() == kk);
  assert(oracle.n == n);
  assert(oracle.trajectory.size() == n);
  assert(oracle.fin_expected.size() == kk);
  assert(!config.verify_pass || oracle.image.size() == n);

  const Trajectory& traj = oracle.trajectory;
  PiResult result;
  lfsr::Misr misr(misr_poly_ != 0 ? misr_poly_ : gf::Poly2{0b111});

  // The sliding window lives on the stack for every practical k (the
  // schemes all use k = 2), so the sweep itself allocates nothing.
  gf::Elem window_buf[16];
  std::vector<gf::Elem> window_spill;
  gf::Elem* window = window_buf;
  if (kk > std::size(window_buf)) {
    window_spill.resize(kk);
    window = window_spill.data();
  }

  // Initialization: write d0..d_{k-1} into the first k visited cells.
  for (unsigned j = 0; j < kk; ++j) {
    memory.write(traj.at(j), config.init[j], 0);
    ++result.writes;
  }

  // Sweep: window reads + feedback write (Eq. 1).
  for (mem::Addr q = 0; q + kk < n; ++q) {
    for (unsigned j = 0; j < kk; ++j) {
      const mem::Word raw = memory.read(traj.at(q + j), 0);
      window[j] = static_cast<gf::Elem>(raw);
      ++result.reads;
      if (misr_poly_ != 0) misr.shift(raw);
    }
    const gf::Elem fb = lfsr_.feedback({window, kk});
    memory.write(traj.at(q + kk), fb, 0);
    ++result.writes;
  }

  // Verdict: read back the last k visited cells as the observed Fin,
  // and re-read the Init cells (paper §2: "comparing initial Init and
  // final Fin states") — the latter catches seed-cell corruptions that
  // happen after their only sweep read.
  result.fin.resize(kk);
  for (unsigned j = 0; j < kk; ++j) {
    const mem::Word raw = memory.read(traj.at(n - kk + j), 0);
    result.fin[j] = static_cast<gf::Elem>(raw);
    ++result.reads;
    if (misr_poly_ != 0) misr.shift(raw);
  }
  result.init_readback.resize(kk);
  for (unsigned j = 0; j < kk; ++j) {
    const mem::Word raw = memory.read(traj.at(j), 0);
    result.init_readback[j] = static_cast<gf::Elem>(raw);
    ++result.reads;
    if (misr_poly_ != 0) misr.shift(raw);
  }
  result.fin_expected = oracle.fin_expected;
  result.pass = result.fin == result.fin_expected &&
                std::equal(result.init_readback.begin(),
                           result.init_readback.end(), config.init.begin());

  if (config.verify_pass) {
    if (config.pause_ticks != 0) memory.advance_time(config.pause_ticks);
    for (mem::Addr a = 0; a < n; ++a) {
      const mem::Word raw = memory.read(a, 0);
      ++result.reads;
      if (static_cast<gf::Elem>(raw) != oracle.image[a]) {
        ++result.verify_mismatches;
      }
    }
    result.pass = result.pass && result.verify_mismatches == 0;
  }
  if (misr_poly_ != 0) {
    result.misr = misr.state();
    result.misr_expected = oracle.misr_expected;
    result.misr_pass = result.misr == result.misr_expected;
  }
  return result;
}

}  // namespace prt::core
