// Lane-batched, thread-parallel March fault-simulation campaigns.
//
// run_campaign (fault_sim.hpp) evaluates march_algorithm serially, one
// FaultyRam run per fault; this wrapper is the fast path for March
// coverage tables, sharing the CampaignEngine machinery (one worker
// pool, contiguous shards, order-deterministic merge) and the 64-lane
// packing of mem::PackedFaultRam:
//
//  * for bit-oriented (m = 1) campaigns the golden March run is
//    compiled once per (test, n, background) into a flat
//    core::OpTranscript (march::make_march_transcript) and every hot
//    loop replays it: lane-compatible faults (now including the
//    decoder kinds) are batched 64 per sweep through the transcript
//    march::run_march_packed, the remaining (retention, NPSF) faults
//    run the scalar
//    march::run_march_transcript (devirtualized FaultyRam), and the
//    shard's escape indices are re-sorted so the merged CampaignResult
//    — coverage, per-class counts, escapes and op totals — is
//    bit-identical to run_campaign(universe, march_algorithm(test),
//    opt).  Early abort composes with packing: lanes retire at their
//    first mismatching read with analytic per-lane op accounting
//    identical to the abort-aware scalar run_march reference;
//  * word-oriented (m > 1) campaigns run entirely scalar over the
//    standard data backgrounds, still sharded over the pool.
//
// See DESIGN.md §8/§9 and bench/bench_campaign.cpp's March section.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/fault_sim.hpp"
#include "core/op_transcript.hpp"
#include "march/march_runner.hpp"

namespace prt::util {
class ThreadPool;
}

namespace prt::analysis {

struct MarchEngineOptions {
  /// Worker count; 0 defers to the PRT_THREADS environment override,
  /// then the hardware concurrency (util::default_worker_count).
  unsigned threads = 0;
  /// Fan the universe out over the pool.  Off = one shard, inline on
  /// the calling thread.
  bool parallel = true;
  /// Batch lane-compatible faults 64 per March sweep on a bit-packed
  /// mem::PackedFaultRam when m = 1.  Results stay bit-identical to
  /// the all-scalar reference.
  bool packed = true;
  /// Stop each fault's run at its first mismatching read (and skip the
  /// remaining backgrounds after a failing run).  Verdicts, coverage
  /// and escapes are unchanged; CampaignResult::ops shrinks to the
  /// abort-aware scalar reference cost.  Composes with `packed`: lanes
  /// retire as their mismatch latches, with per-lane op accounting
  /// bit-identical to the scalar abort path (march/march_runner).
  bool early_abort = false;
};

class MarchCampaign {
 public:
  MarchCampaign(march::MarchTest test, const CampaignOptions& opt,
                const MarchEngineOptions& engine = {});
  ~MarchCampaign();
  MarchCampaign(const MarchCampaign&) = delete;
  MarchCampaign& operator=(const MarchCampaign&) = delete;

  [[nodiscard]] const march::MarchTest& test() const { return test_; }

  /// Simulates every fault of the universe.  Identical CampaignResult
  /// to run_campaign(universe, march_algorithm(test), opt) regardless
  /// of thread count.  Not safe to call concurrently on one campaign
  /// (workers share its pool); distinct campaigns are independent.
  [[nodiscard]] CampaignResult run(std::span<const mem::Fault> universe) const;

 private:
  void run_shard(std::span<const mem::Fault> universe, std::size_t begin,
                 std::size_t end, CampaignResult& out) const;

  [[nodiscard]] bool packed_enabled() const {
    return engine_.packed && opt_.m == 1;
  }

  march::MarchTest test_;
  CampaignOptions opt_;
  MarchEngineOptions engine_;
  /// standard_backgrounds(opt.m), the set march_algorithm sweeps.
  std::vector<mem::Word> backgrounds_;
  /// Compiled golden run per (test, n, background 0), built once when
  /// m = 1 (the only background that width sweeps); empty otherwise.
  /// Replayed by both the packed batches and the scalar fallback.
  core::OpTranscript transcript_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

/// Convenience: one-shot March campaign with default engine options.
[[nodiscard]] CampaignResult run_march_campaign(
    std::span<const mem::Fault> universe, march::MarchTest test,
    const CampaignOptions& opt, const MarchEngineOptions& engine = {});

}  // namespace prt::analysis
