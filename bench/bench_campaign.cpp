// Campaign-engine micro-benchmark: the seed's serial per-fault path
// (fresh FaultyRam + full scheme re-derivation per fault) against the
// oracle-backed engine, its parallel fan-out, early-abort, the
// word-packed SIMD fault lanes — now including two-cell coupling
// lanes and per-lane early abort (DESIGN.md §7/§8) — and the packed
// March campaign.
//
// Three universe families are measured and written to
// BENCH_campaign.json (and appended, one compact line per run, to
// BENCH_history.jsonl — the cross-PR perf trajectory):
//
//  * the shared classical universe (SAF/TF/CFin/bridge/AF), where
//    everything except the decoder faults now rides the packed lanes
//    and early abort composes with packing — the headline
//    packed_vs_parallel ratio compares the PR 1-era oracle+parallel
//    config against the fastest packed config;
//  * the lane-compatible single-cell universe (SAF/TF/WDF + read
//    logic, 9n faults, every one packable), where the packed path's
//    64-faults-per-sweep gain is undiluted;
//  * a measured-scaling grid: the same lane-compatible universe over
//    thread counts {1, 2, 4, 8} x packed lane widths {64, 256} on the
//    work-stealing batch scheduler, every cell parity-checked — the
//    curves CI records per run (with per-config steal counts and the
//    widest lane word used) to show the multicore and wide-lane gains
//    on real cores;
//  * a March campaign over the classical universe (March C-), where
//    the same lanes drive march::run_march_packed via
//    analysis::MarchCampaign — now with the abort-aware scalar
//    reference and the composed parallel+packed+abort config, whose
//    per-lane analytic op accounting must agree;
//  * a word-oriented (WOM, m = 4) single-cell universe with the
//    extended GF(16) scheme — the packed path now carries one bit
//    plane per field bit and feeds back through the transcript's
//    compiled tap matrices, so the 64-lane configs apply here too;
//  * a static-NPSF grid universe, where every lane evaluates its
//    4-cell neighbourhood trigger bit-parallel over the neighbour
//    lane words;
//  * a retention universe under a pause-tick scheme, where the packed
//    lanes decay analytically from pause-boundary checkpoints instead
//    of per-access scans;
//  * a dual-port classical universe (ports = 2): the PRT engines
//    drive port 0 only, so the packed lanes apply unchanged while the
//    scalar reference models the second port's sense amp.
//
// Every configuration of a section runs the same universe slice and is
// parity-checked against the section's first configuration (abort
// configs additionally against each other's op counts), so the ratios
// stay apples-to-apples and a model divergence aborts the bench.  Each
// section also reports packed_fraction — the share of faults the
// fastest dispatch routed onto the 64-lane path; with universal
// packing this is 1.0 for every universe family the bench runs, and
// scripts/check_bench_baseline.py --packed-full enforces exactly that.
//
// Flags: --quick caps every universe for smoke runs; --threads N pins
// the worker count (equivalent to PRT_THREADS=N in the environment).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "analysis/campaign_suite.hpp"
#include "analysis/march_campaign.hpp"
#include "analysis/oracle_cache.hpp"
#include "core/prt_engine.hpp"
#include "march/march_library.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"
#include "mem/lane_word.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace prt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Short git revision of the working tree, "unknown" outside a repo —
/// stamps every report so BENCH_history.jsonl lines map to commits.
std::string git_revision() {
  std::string rev = "unknown";
  if (FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, pipe)) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
      if (rev.empty()) rev = "unknown";
    }
    pclose(pipe);
  }
  return rev;
}

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// The seed code path, reproduced verbatim as the baseline: one heap
/// FaultyRam per fault, prefilled cell by cell, and run_prt re-deriving
/// trajectory/golden sequence/Fin*/image per fault.
analysis::CampaignResult seed_serial_campaign(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const analysis::CampaignOptions& opt) {
  analysis::CampaignResult result;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    mem::FaultyRam ram(opt.n, opt.m, opt.ports);
    for (mem::Addr a = 0; a < opt.n; ++a) ram.poke(a, 0);
    ram.inject(universe[i]);
    const bool detected = core::run_prt(ram, scheme).detected();
    result.ops += ram.total_stats().total();
    auto& cls = result.by_class[mem::fault_class(universe[i].kind)];
    ++cls.total;
    ++result.overall.total;
    if (detected) {
      ++cls.detected;
      ++result.overall.detected;
    } else {
      result.escapes.push_back(i);
    }
  }
  return result;
}

/// Caps a universe by stride-sampling so the fault-family mix of the
/// full universe is preserved — a plain resize() would keep only the
/// leading single-cell faults and silently turn a mixed section into
/// a fully lane-compatible one.
std::vector<mem::Fault> cap_universe(std::vector<mem::Fault> universe,
                                     std::size_t cap) {
  if (universe.size() <= cap) return universe;
  std::vector<mem::Fault> sampled;
  sampled.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    sampled.push_back(universe[i * universe.size() / cap]);
  }
  return sampled;
}

struct ConfigTiming {
  std::string name;
  double seconds = 0;
  std::uint64_t ops = 0;
  double coverage = 0;
  /// Scheduler telemetry of the run (CampaignResult::sched): batches
  /// executed by a worker other than their home worker, faults that
  /// rode a wider-than-64 lane word, and the widest lane word used.
  std::uint64_t steals = 0;
  std::uint64_t wide_faults = 0;
  unsigned max_lanes = 0;
};

struct SectionReport {
  std::string universe;
  std::string scheme;
  mem::Addr n = 0;
  std::size_t faults = 0;
  std::vector<ConfigTiming> configs;
  /// Headline lane-packing gain: the "oracle+parallel"-style config's
  /// time over the *fastest* packed config's time (abort now composes
  /// with packing, so the composed config counts); 0 when the section
  /// has no such pair.
  double packed_vs_parallel = 0;
  /// Same ratio restricted to the full-run packed config (no abort) —
  /// the PR 2-comparable number.
  double packed_vs_parallel_full_run = 0;
  /// Suite sections only: wall clock of the sequential per-point
  /// engines (each compiling its own golden artifacts, the pre-suite
  /// sweep cost) over the one CampaignSuite call; 0 elsewhere.
  double suite_vs_sequential = 0;
  /// Share of this section's faults that rode a 64-lane packed batch
  /// in the most-packed configuration (max over configs of
  /// packed_faults / total).  1.0 means zero scalar fallbacks.
  double packed_fraction = 0;
  [[nodiscard]] double speedup_vs_baseline(std::size_t idx) const {
    return configs[idx].seconds > 0
               ? configs[0].seconds / configs[idx].seconds
               : 0.0;
  }
};

class SectionRunner {
 public:
  SectionRunner(SectionReport& report,
                std::span<const mem::Fault> universe,
                const analysis::CampaignOptions& opt)
      : report_(report), universe_(universe), opt_(opt) {
    std::printf("%s universe, n = %u, %zu faults, %s\n",
                report_.universe.c_str(), report_.n, universe_.size(),
                report_.scheme.c_str());
  }

  template <typename Run>
  void record(const std::string& name, Run&& run, bool ops_exempt = false) {
    const auto start = Clock::now();
    const analysis::CampaignResult r = run();
    const double secs = seconds_since(start);
    bool parity = true;
    if (report_.configs.empty()) {
      reference_ = r;
    } else {
      parity = r.overall == reference_.overall &&
               r.by_class == reference_.by_class &&
               r.escapes == reference_.escapes &&
               (ops_exempt || r.ops == reference_.ops);
    }
    if (ops_exempt) {
      // All abort configs of a section must agree on the shrunk op
      // count — the packed per-lane accounting reproduces the scalar
      // abort path exactly.
      if (abort_ops_ == 0) {
        abort_ops_ = r.ops;
      } else if (r.ops != abort_ops_) {
        parity = false;
      }
    }
    if (!parity) {
      std::fprintf(stderr, "PARITY VIOLATION in config %s at n=%u\n",
                   name.c_str(), report_.n);
      std::exit(1);
    }
    if (r.overall.total > 0) {
      const double fraction = static_cast<double>(r.packed_faults) /
                              static_cast<double>(r.overall.total);
      if (fraction > report_.packed_fraction) {
        report_.packed_fraction = fraction;
      }
    }
    report_.configs.push_back({name, secs, r.ops, r.overall.percent(),
                               r.sched.steals, r.sched.wide_faults,
                               r.sched.max_lanes});
    std::printf("  %-30s %8.3f s   %12llu ops   %6.2f %% coverage\n",
                name.c_str(), secs,
                static_cast<unsigned long long>(r.ops), r.overall.percent());
  }

  void finish() {
    double parallel_secs = 0, packed_secs = 0, packed_abort_secs = 0;
    for (std::size_t i = 0; i < report_.configs.size(); ++i) {
      const std::string& name = report_.configs[i].name;
      std::printf("  %-30s %.2fx vs %s\n", name.c_str(),
                  report_.speedup_vs_baseline(i),
                  report_.configs[0].name.c_str());
      if (name == "oracle+parallel" || name == "parallel") {
        parallel_secs = report_.configs[i].seconds;
      } else if (name == "oracle+parallel+packed" ||
                 name == "parallel+packed") {
        packed_secs = report_.configs[i].seconds;
      } else if (name == "oracle+parallel+packed+abort" ||
                 name == "parallel+packed+abort") {
        packed_abort_secs = report_.configs[i].seconds;
      }
    }
    if (parallel_secs > 0 && packed_secs > 0) {
      report_.packed_vs_parallel_full_run = parallel_secs / packed_secs;
      double best = packed_secs;
      if (packed_abort_secs > 0 && packed_abort_secs < best) {
        best = packed_abort_secs;
      }
      report_.packed_vs_parallel = parallel_secs / best;
      std::printf("  packed vs parallel: %.2fx (full-run %.2fx)\n",
                  report_.packed_vs_parallel,
                  report_.packed_vs_parallel_full_run);
    }
    std::printf("\n");
  }

 private:
  SectionReport& report_;
  std::span<const mem::Fault> universe_;
  analysis::CampaignOptions opt_;
  analysis::CampaignResult reference_;
  std::uint64_t abort_ops_ = 0;
};

analysis::EngineOptions engine_opts(bool parallel, bool packed,
                                    bool early_abort = false) {
  analysis::EngineOptions eng;
  eng.parallel = parallel;
  eng.packed = packed;
  eng.early_abort = early_abort;
  return eng;
}

/// Classical universe: the PR 1 ladder (seed serial -> oracle ->
/// parallel -> abort) plus the packed configs.  Every fault family of
/// this universe — coupling, bridges and the decoder kinds included —
/// now rides the lanes, and packed+abort is the composed fast path.
SectionReport bench_classical(mem::Addr n, std::size_t fault_cap) {
  const auto universe = cap_universe(mem::classical_universe(n), fault_cap);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report;
  report.universe = "classical";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  auto engine = [&](const std::string& name,
                    const analysis::EngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_prt_campaign(universe, scheme, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  run.record("serial (seed path)",
             [&] { return seed_serial_campaign(universe, scheme, opt); });
  engine("oracle", engine_opts(false, false));
  engine("oracle+parallel", engine_opts(true, false));
  engine("oracle+parallel+abort", engine_opts(true, false, true));
  engine("oracle+parallel+packed", engine_opts(true, true));
  engine("oracle+parallel+packed+abort", engine_opts(true, true, true));
  run.finish();
  return report;
}

/// Lane-compatible universe: every fault is packable, so the packed
/// config shows the undiluted 64-faults-per-sweep gain over the PR 1
/// oracle+parallel path.
SectionReport bench_lane_compatible(mem::Addr n, const core::PrtScheme& scheme,
                                    std::size_t fault_cap) {
  const auto universe =
      cap_universe(mem::single_cell_universe(n, 1, /*read_logic=*/true),
                   fault_cap);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report;
  report.universe = "single-cell (lane-compatible)";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  auto engine = [&](const std::string& name,
                    const analysis::EngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_prt_campaign(universe, scheme, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  engine("oracle", engine_opts(false, false));
  engine("oracle+parallel", engine_opts(true, false));
  engine("oracle+parallel+packed", engine_opts(true, true));
  engine("oracle+parallel+packed+abort", engine_opts(true, true, true));
  run.finish();
  return report;
}

/// March campaign over the classical universe: serial run_campaign
/// baseline vs the sharded MarchCampaign, scalar and packed.
SectionReport bench_march(mem::Addr n, std::size_t fault_cap) {
  const auto universe = cap_universe(mem::classical_universe(n), fault_cap);
  const auto test = march::march_c_minus();
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report;
  report.universe = "classical (March)";
  report.scheme = test.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  run.record("serial (run_campaign)", [&] {
    return analysis::run_campaign(universe, analysis::march_algorithm(test),
                                  opt);
  });
  auto engine = [&](const std::string& name,
                    const analysis::MarchEngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_march_campaign(universe, test, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  engine("parallel", {.packed = false});
  engine("parallel+abort", {.packed = false, .early_abort = true});
  engine("parallel+packed", {.packed = true});
  // The composed fast path: per-lane retirement with analytic op
  // accounting that must equal the scalar abort reference above (the
  // ops_exempt cross-check enforces it at bench runtime).
  engine("parallel+packed+abort", {.packed = true, .early_abort = true});
  run.finish();
  return report;
}

/// Word-oriented universe: every fault lives on one of m = 4 bit
/// planes, the scheme runs over GF(16).  The packed lanes carry one
/// bit plane per field bit and feed back through the transcript's
/// compiled tap matrices, so the full packed ladder applies — the
/// scalar abort config stays ahead of packed+abort so the ops_exempt
/// cross-check pins the per-lane analytic accounting against it.
SectionReport bench_wom(mem::Addr n, std::size_t fault_cap) {
  const unsigned m = 4;
  const auto universe = cap_universe(
      mem::single_cell_universe(n, m, /*read_logic=*/true), fault_cap);
  const auto scheme = core::extended_scheme_wom(n, m);
  analysis::CampaignOptions opt;
  opt.n = n;
  opt.m = m;

  SectionReport report;
  report.universe = "single-cell (WOM m=4)";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  auto engine = [&](const std::string& name,
                    const analysis::EngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_prt_campaign(universe, scheme, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  run.record("serial (seed path)",
             [&] { return seed_serial_campaign(universe, scheme, opt); });
  engine("oracle", engine_opts(false, false));
  engine("oracle+parallel", engine_opts(true, false));
  engine("oracle+parallel+abort", engine_opts(true, false, true));
  engine("oracle+parallel+packed", engine_opts(true, true));
  engine("oracle+parallel+packed+abort", engine_opts(true, true, true));
  run.finish();
  return report;
}

/// Static-NPSF grid universe: two representative neighbourhood
/// patterns per interior cell of a cols-wide grid.  Each packed lane
/// evaluates its 4-cell trigger bit-parallel over the neighbour lane
/// words, so the whole family rides the lanes.
SectionReport bench_npsf(mem::Addr n, mem::Addr grid_cols,
                         std::size_t fault_cap) {
  mem::UniverseOptions uopt;
  uopt.single_cell = false;
  uopt.coupling = false;
  uopt.bridges = false;
  uopt.address_decoder = false;
  uopt.npsf = true;
  uopt.npsf_grid_cols = grid_cols;
  const auto universe = cap_universe(mem::make_universe(n, 1, uopt), fault_cap);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report;
  report.universe = "npsf (grid)";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  auto engine = [&](const std::string& name,
                    const analysis::EngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_prt_campaign(universe, scheme, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  engine("oracle", engine_opts(false, false));
  engine("oracle+parallel", engine_opts(true, false));
  engine("oracle+parallel+abort", engine_opts(true, false, true));
  engine("oracle+parallel+packed", engine_opts(true, true));
  engine("oracle+parallel+packed+abort", engine_opts(true, true, true));
  run.finish();
  return report;
}

/// Retention universe under a pause-tick scheme: delays straddle the
/// pause length, so some lanes decay at the first pause, some later,
/// some never.  The packed lanes decay analytically from pause-
/// boundary checkpoints instead of per-access scans.
SectionReport bench_retention(mem::Addr n, std::size_t fault_cap) {
  constexpr std::uint64_t kPauseTicks = 1000;
  constexpr std::uint64_t kDelays[] = {200, 900, 1500, 5000, 1'000'000'000};
  std::vector<mem::Fault> universe;
  universe.reserve(static_cast<std::size_t>(n) * 2);
  for (mem::Addr c = 0; c < n; ++c) {
    universe.push_back(mem::Fault::retention(
        {c, 0}, static_cast<unsigned>(c & 1), kDelays[c % 5]));
    universe.push_back(mem::Fault::retention(
        {c, 0}, static_cast<unsigned>(1 - (c & 1)), kDelays[(c + 2) % 5]));
  }
  universe = cap_universe(std::move(universe), fault_cap);
  const auto scheme = core::retention_scheme(n, 1, kPauseTicks);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report;
  report.universe = "retention (pause)";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  auto engine = [&](const std::string& name,
                    const analysis::EngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_prt_campaign(universe, scheme, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  engine("oracle", engine_opts(false, false));
  engine("oracle+parallel", engine_opts(true, false));
  engine("oracle+parallel+abort", engine_opts(true, false, true));
  engine("oracle+parallel+packed", engine_opts(true, true));
  engine("oracle+parallel+packed+abort", engine_opts(true, true, true));
  run.finish();
  return report;
}

/// Dual-port classical universe: the scalar reference simulates both
/// ports' sense-amp state while the PRT engines drive port 0 only, so
/// the packed lanes stay bit-identical (open ROADMAP item: grow the
/// campaign bench to multi-port schemes).
SectionReport bench_multiport(mem::Addr n, unsigned ports,
                              std::size_t fault_cap) {
  const auto universe = cap_universe(mem::classical_universe(n), fault_cap);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  opt.ports = ports;

  SectionReport report;
  report.universe = "classical (" + std::to_string(ports) + "-port)";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  auto engine = [&](const std::string& name,
                    const analysis::EngineOptions& eng) {
    run.record(
        name,
        [&] { return analysis::run_prt_campaign(universe, scheme, opt, eng); },
        /*ops_exempt=*/eng.early_abort);
  };
  engine("oracle", engine_opts(false, false));
  engine("oracle+parallel", engine_opts(true, false));
  // The scalar abort reference first, so the packed+abort config's
  // per-lane analytic op accounting is cross-checked against it.
  engine("oracle+parallel+abort", engine_opts(true, false, true));
  engine("oracle+parallel+packed", engine_opts(true, true));
  engine("oracle+parallel+packed+abort", engine_opts(true, true, true));
  run.finish();
  return report;
}

/// Measured multicore scaling: the same lane-compatible universe swept
/// over thread counts {1, 2, 4, 8} x packed lane widths {64, 256} on
/// the work-stealing batch scheduler.  Every cell is parity-checked
/// against the first (w64/t1), so the whole grid demonstrates the
/// tentpole determinism claim — bit-identical output at any (threads,
/// width) — while the timings show how much of it the hardware turns
/// into throughput (the speedup curves are only meaningful on a
/// multi-core runner; CI's bench smoke records them per run).
SectionReport bench_scaling(mem::Addr n, std::size_t fault_cap) {
  const auto universe = cap_universe(
      mem::single_cell_universe(n, 1, /*read_logic=*/true), fault_cap);
  const auto scheme = core::standard_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;

  SectionReport report;
  report.universe = "scaling (threads x lane width)";
  report.scheme = scheme.name;
  report.n = n;
  report.faults = universe.size();
  SectionRunner run(report, universe, opt);
  for (const unsigned lane_width : {64u, 256u}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      analysis::EngineOptions eng;
      eng.threads = threads;
      eng.parallel = true;
      eng.packed = true;
      eng.lane_width = lane_width;
      char name[32];
      std::snprintf(name, sizeof name, "w%u/t%u", lane_width, threads);
      run.record(name, [&] {
        return analysis::run_prt_campaign(universe, scheme, opt, eng);
      });
    }
  }
  run.finish();
  // The two headline curves: thread scaling at each width, and the
  // wide-lane gain at each thread count.
  auto seconds_of = [&](unsigned width, unsigned threads) {
    char name[32];
    std::snprintf(name, sizeof name, "w%u/t%u", width, threads);
    for (const ConfigTiming& c : report.configs) {
      if (c.name == name) return c.seconds;
    }
    return 0.0;
  };
  for (const unsigned width : {64u, 256u}) {
    const double t1 = seconds_of(width, 1);
    if (t1 <= 0) continue;
    std::printf("  scaling w%-3u:", width);
    for (const unsigned threads : {2u, 4u, 8u}) {
      const double tn = seconds_of(width, threads);
      std::printf("  %ut %.2fx", threads, tn > 0 ? t1 / tn : 0.0);
    }
    std::printf("\n");
  }
  const double w64t1 = seconds_of(64, 1);
  const double w256t1 = seconds_of(256, 1);
  if (w64t1 > 0 && w256t1 > 0) {
    std::printf("  wide lanes (w256 vs w64, 1t): %.2fx\n\n", w64t1 / w256t1);
  }
  return report;
}

/// Multi-configuration suite over the paper's sweep shape (classical
/// universes, n {256, 1024, 4096} x ports {1, 2, 4}; the oracle and
/// transcript depend on (scheme, n) only, so the three port points of
/// each n share one compile).  The same nine-point grid runs three
/// ways, every per-point result parity-checked:
///
///   * "engines sequential (cold)" — one standalone engine per point,
///     the golden-artifact cache cleared before each, reproducing the
///     pre-suite sweep cost (every engine compiles its own oracle and
///     transcript, nine compiles for the nine points);
///   * "engines sequential (cached)" — the same engines sharing the
///     process-wide OracleCache (three compiles, sequential runs);
///   * "suite (one call)" — one CampaignSuite::run over the grid: one
///     pool, (config x shard) tasks flattened, three compiles.
///
/// The headline suite_vs_sequential ratio is cold-engines over suite —
/// the cost a sweep paid before this subsystem existed vs. one call.
SectionReport bench_suite(std::size_t fault_cap) {
  std::vector<analysis::CampaignOptions> grid;
  for (const mem::Addr n : {256u, 1024u, 4096u}) {
    for (const unsigned ports : {1u, 2u, 4u}) {
      grid.push_back({.n = n, .m = 1, .ports = ports});
    }
  }
  std::vector<std::vector<mem::Fault>> universes;
  std::size_t total_faults = 0;
  for (const auto& opt : grid) {
    universes.push_back(cap_universe(mem::classical_universe(opt.n), fault_cap));
    total_faults += universes.back().size();
  }
  auto universe_for = [&](const analysis::CampaignOptions&, std::size_t i) {
    return universes[i];
  };
  auto factory = [](const analysis::CampaignOptions& opt) {
    return core::extended_scheme_bom(opt.n);
  };

  SectionReport report;
  report.universe = "classical (suite n x ports)";
  report.scheme = factory(grid[0]).name;
  report.faults = total_faults;
  std::printf("%s, %zu grid points, %zu faults, %s\n",
              report.universe.c_str(), grid.size(), total_faults,
              report.scheme.c_str());

  auto record = [&](const std::string& name, double secs,
                    const std::vector<analysis::CampaignResult>& results,
                    const std::vector<analysis::CampaignResult>& reference) {
    analysis::ClassCoverage overall;
    std::uint64_t ops = 0;
    std::uint64_t packed_faults = 0;
    std::uint64_t steals = 0;
    std::uint64_t wide_faults = 0;
    unsigned max_lanes = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!reference.empty() && !(results[i] == reference[i])) {
        std::fprintf(stderr,
                     "PARITY VIOLATION in suite config %s at grid point %zu\n",
                     name.c_str(), i);
        std::exit(1);
      }
      overall.detected += results[i].overall.detected;
      overall.total += results[i].overall.total;
      ops += results[i].ops;
      packed_faults += results[i].packed_faults;
      steals += results[i].sched.steals;
      wide_faults += results[i].sched.wide_faults;
      max_lanes = std::max(max_lanes, results[i].sched.max_lanes);
    }
    if (overall.total > 0) {
      const double fraction = static_cast<double>(packed_faults) /
                              static_cast<double>(overall.total);
      if (fraction > report.packed_fraction) {
        report.packed_fraction = fraction;
      }
    }
    report.configs.push_back({name, secs, ops, overall.percent(), steals,
                              wide_faults, max_lanes});
    std::printf("  %-30s %8.3f s   %12llu ops   %6.2f %% coverage\n",
                name.c_str(), secs, static_cast<unsigned long long>(ops),
                overall.percent());
  };

  // Sequential per-point engines, cold golden artifacts per engine.
  auto t0 = Clock::now();
  std::vector<analysis::CampaignResult> reference;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    analysis::OracleCache::global().clear();
    reference.push_back(
        analysis::run_prt_campaign(universes[i], factory(grid[i]), grid[i]));
  }
  const double secs_cold = seconds_since(t0);
  record("engines sequential (cold)", secs_cold, reference, {});

  // Sequential engines sharing the process-wide cache.
  analysis::OracleCache::global().clear();
  t0 = Clock::now();
  std::vector<analysis::CampaignResult> cached;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    cached.push_back(
        analysis::run_prt_campaign(universes[i], factory(grid[i]), grid[i]));
  }
  const double secs_cached = seconds_since(t0);
  record("engines sequential (cached)", secs_cached, cached, reference);

  // One suite call over the whole grid.
  analysis::OracleCache::global().clear();
  t0 = Clock::now();
  const analysis::SuiteResult suite =
      analysis::run_prt_suite(grid, factory, universe_for);
  const double secs_suite = seconds_since(t0);
  std::vector<analysis::CampaignResult> suite_results;
  for (const auto& entry : suite.configs) suite_results.push_back(entry.result);
  record("suite (one call)", secs_suite, suite_results, reference);

  if (secs_suite > 0) {
    report.suite_vs_sequential = secs_cold / secs_suite;
    std::printf("  suite vs sequential: %.2fx cold, %.2fx cached\n",
                report.suite_vs_sequential,
                secs_cached > 0 ? secs_cached / secs_suite : 0.0);
  }
  std::printf("%s\n", suite.table().str().c_str());
  return report;
}

void write_report(std::ostream& out, const std::vector<SectionReport>& reports,
                  const std::string& rev, const std::string& utc,
                  unsigned hardware_threads, unsigned workers, bool pretty) {
  // Field separator: newline-indented in pretty mode, a single space
  // in compact mode — never a trailing space before a newline.
  const char* nl = pretty ? "\n" : "";
  const char* sp = pretty ? "" : " ";
  auto indent = [&](int level) {
    return pretty ? std::string(static_cast<std::size_t>(level) * 2, ' ')
                  : std::string();
  };
  out << "{" << nl << indent(1) << "\"bench\": \"campaign\"," << sp << nl
      << indent(1) << "\"rev\": \"" << rev << "\"," << sp << nl << indent(1)
      << "\"utc\": \"" << utc << "\"," << sp << nl << indent(1)
      << "\"hardware_concurrency\": " << hardware_threads << "," << sp << nl
      << indent(1) << "\"threads\": " << workers << "," << sp << nl
      << indent(1) << "\"lane_width\": " << mem::default_lane_width() << ","
      << sp << nl << indent(1) << "\"sections\": [" << nl;
  for (std::size_t s = 0; s < reports.size(); ++s) {
    const SectionReport& r = reports[s];
    out << indent(2) << "{" << nl << indent(3) << "\"universe\": \""
        << r.universe << "\"," << sp << nl << indent(3) << "\"scheme\": \""
        << r.scheme << "\"," << sp << nl << indent(3) << "\"n\": " << r.n
        << "," << sp << nl << indent(3) << "\"faults\": " << r.faults << ","
        << sp << nl << indent(3)
        << "\"packed_vs_parallel\": " << r.packed_vs_parallel << "," << sp
        << nl << indent(3) << "\"packed_vs_parallel_full_run\": "
        << r.packed_vs_parallel_full_run << "," << sp << nl << indent(3)
        << "\"suite_vs_sequential\": " << r.suite_vs_sequential << "," << sp
        << nl << indent(3) << "\"packed_fraction\": " << r.packed_fraction
        << "," << sp << nl << indent(3) << "\"configs\": [" << nl;
    for (std::size_t c = 0; c < r.configs.size(); ++c) {
      const ConfigTiming& t = r.configs[c];
      out << indent(4) << "{\"name\": \"" << t.name
          << "\", \"seconds\": " << t.seconds << ", \"ops\": " << t.ops
          << ", \"coverage\": " << t.coverage
          << ", \"speedup_vs_baseline\": " << r.speedup_vs_baseline(c)
          << ", \"steals\": " << t.steals
          << ", \"wide_faults\": " << t.wide_faults
          << ", \"max_lanes\": " << t.max_lanes << "}"
          << (c + 1 < r.configs.size() ? "," : "") << nl;
    }
    out << indent(3) << "]" << nl << indent(2) << "}"
        << (s + 1 < reports.size() ? "," : "") << nl;
  }
  out << indent(1) << "]" << nl << "}" << (pretty ? "\n" : "");
}

}  // namespace

int main(int argc, char** argv) {
  // --quick caps every universe for smoke runs (CI, 1-core boxes);
  // --threads N pins the worker count for reproducible timings.
  std::size_t cap_small = static_cast<std::size_t>(-1);
  std::size_t cap_large = 4096;
  std::size_t cap_lane = 16384;
  // The suite sweep runs 9 grid points, so its per-point cap is
  // tighter than the single-point sections'.
  std::size_t cap_suite = 2048;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cap_small = 512;
      cap_large = 512;
      cap_lane = 512;
      cap_suite = 128;
    } else if (arg == "--threads" && i + 1 < argc) {
      // Same effect as PRT_THREADS=N: every pool sized 0 picks it up.
      // Validated here so a typo cannot silently record an unpinned
      // run into the perf trajectory.
      const char* value = argv[++i];
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 1 || parsed > 4096) {
        std::fprintf(stderr, "--threads expects an integer in [1, 4096], got '%s'\n",
                     value);
        return 2;
      }
      setenv("PRT_THREADS", value, /*overwrite=*/1);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N]\n", argv[0]);
      return 2;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned workers = util::default_worker_count();
  const std::string rev = git_revision();
  const std::string utc = utc_timestamp();
  std::printf(
      "campaign engine bench — rev %s, %u hardware thread(s), %u worker(s)\n\n",
      rev.c_str(), hw, workers);
  std::vector<SectionReport> reports;
  reports.push_back(bench_classical(256, cap_small));
  reports.push_back(bench_classical(1024, cap_small));
  reports.push_back(bench_classical(4096, cap_large));
  reports.push_back(
      bench_lane_compatible(1024, core::extended_scheme_bom(1024), cap_small));
  reports.push_back(
      bench_lane_compatible(4096, core::standard_scheme_bom(4096), cap_lane));
  reports.push_back(bench_scaling(1024, cap_small));
  reports.push_back(bench_march(1024, cap_small));
  reports.push_back(bench_march(4096, cap_large));
  reports.push_back(bench_wom(256, cap_small));
  reports.push_back(bench_npsf(1024, /*grid_cols=*/32, cap_small));
  reports.push_back(bench_retention(1024, cap_small));
  reports.push_back(bench_multiport(1024, /*ports=*/2, cap_small));
  // Last: the suite sweep clears the process-wide oracle cache for its
  // cold-vs-shared comparison, so it must not warm (or drain) any
  // other section's artifacts mid-measurement.
  reports.push_back(bench_suite(cap_suite));
  {
    std::ofstream out("BENCH_campaign.json");
    write_report(out, reports, rev, utc, hw, workers, /*pretty=*/true);
  }
  {
    // One compact line per run — the cross-PR perf trajectory.
    std::ofstream hist("BENCH_history.jsonl", std::ios::app);
    write_report(hist, reports, rev, utc, hw, workers, /*pretty=*/false);
    hist << "\n";
  }
  std::printf("wrote BENCH_campaign.json, appended BENCH_history.jsonl\n");
  return 0;
}
