// Functional fault models for RAM, after van de Goor ("Testing
// Semiconductor Memories", the paper's reference [1]).  Physical shorts
// and opens in the cell array, address decoder and read/write logic are
// abstracted to the standard single-cell, two-cell (coupling), decoder
// and read/write-logic fault classes the paper's coverage claims are
// stated over.
#pragma once

#include <cstdint>
#include <string>

#include "mem/memory.hpp"

namespace prt::mem {

enum class FaultKind : std::uint8_t {
  // --- single-cell array faults -----------------------------------
  kSaf0,       // stuck-at-0: the bit always reads/holds 0
  kSaf1,       // stuck-at-1
  kTfUp,       // transition fault: 0 -> 1 writes fail
  kTfDown,     // transition fault: 1 -> 0 writes fail
  kWdf,        // write disturb: a non-transition write flips the bit
  // --- read/write logic faults -------------------------------------
  kRdf,        // read destructive: read flips the bit, returns new value
  kDrdf,       // deceptive read destructive: returns old, flips the bit
  kIrf,        // incorrect read: returns inverted value, bit unchanged
  kSof,        // stuck-open cell: read returns the port's previous read
  // --- two-cell coupling faults ------------------------------------
  kCfIn,       // inversion coupling: aggressor transition inverts victim
  kCfIdUp0,    // idempotent: aggressor up-transition forces victim to 0
  kCfIdUp1,    //             aggressor up-transition forces victim to 1
  kCfIdDown0,  //             aggressor down-transition forces victim to 0
  kCfIdDown1,  //             aggressor down-transition forces victim to 1
  kCfSt0,      // state coupling: victim forced to 0 while aggressor == s
  kCfSt1,      // state coupling: victim forced to 1 while aggressor == s
  kBridgeAnd,  // wired-AND bridge between two bits
  kBridgeOr,   // wired-OR bridge between two bits
  // --- address decoder faults --------------------------------------
  kAfNoAccess,     // the address opens no cell (reads 0, writes lost)
  kAfWrongAccess,  // the address opens another cell instead
  kAfMultiAccess,  // the address opens its own cell and another one
  // --- neighbourhood pattern sensitive -----------------------------
  kNpsfStatic,  // victim forced to v while the 4 neighbours match a
                // pattern (type-1 five-cell neighbourhood)
  // --- time-dependent ------------------------------------------------
  kDrf,  // data retention: the bit decays to a value when not
         // refreshed (written) for `delay` operation-ticks
};

/// True for fault kinds involving a second (aggressor) cell.
[[nodiscard]] constexpr bool is_coupling(FaultKind k) {
  switch (k) {
    case FaultKind::kCfIn:
    case FaultKind::kCfIdUp0:
    case FaultKind::kCfIdUp1:
    case FaultKind::kCfIdDown0:
    case FaultKind::kCfIdDown1:
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1:
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr bool is_address_fault(FaultKind k) {
  return k == FaultKind::kAfNoAccess || k == FaultKind::kAfWrongAccess ||
         k == FaultKind::kAfMultiAccess;
}

/// Coarse class used by the coverage tables.
enum class FaultClass : std::uint8_t {
  kSaf,
  kTf,
  kWdf,
  kReadLogic,  // RDF / DRDF / IRF / SOF
  kCfIn,
  kCfId,
  kCfSt,
  kBridge,
  kAf,
  kNpsf,
  kRetention,  // DRF
};

[[nodiscard]] FaultClass fault_class(FaultKind k);
[[nodiscard]] std::string to_string(FaultKind k);
[[nodiscard]] std::string to_string(FaultClass c);

/// One bit of one memory cell.
struct BitRef {
  Addr cell = 0;
  unsigned bit = 0;

  bool operator==(const BitRef&) const = default;
};

/// A single injected defect.  Fields beyond `kind` and `victim` are
/// meaningful only for the kinds that use them:
///  * coupling kinds use `aggressor` (a different bit);
///  * kCfSt* uses `state` as the aggressor condition value;
///  * kAfWrongAccess / kAfMultiAccess use `alias` as the other cell;
///  * kNpsfStatic uses `pattern` (4 bits: N,E,S,W in a row-major grid
///    of `grid_cols` columns) and `state` as the forced value;
///  * kDrf uses `delay` (operation ticks until decay) and `state` as
///    the decayed value.
struct Fault {
  FaultKind kind = FaultKind::kSaf0;
  BitRef victim;
  BitRef aggressor;
  Word state = 0;
  Addr alias = 0;
  unsigned pattern = 0;
  Addr grid_cols = 0;
  std::uint64_t delay = 0;

  // --- factories ----------------------------------------------------
  static Fault saf(BitRef v, unsigned value) {
    return {value ? FaultKind::kSaf1 : FaultKind::kSaf0, v, {}, 0, 0, 0, 0};
  }
  static Fault tf(BitRef v, bool up) {
    return {up ? FaultKind::kTfUp : FaultKind::kTfDown, v, {}, 0, 0, 0, 0};
  }
  static Fault wdf(BitRef v) {
    return {FaultKind::kWdf, v, {}, 0, 0, 0, 0};
  }
  static Fault rdf(BitRef v) { return {FaultKind::kRdf, v, {}, 0, 0, 0, 0}; }
  static Fault drdf(BitRef v) {
    return {FaultKind::kDrdf, v, {}, 0, 0, 0, 0};
  }
  static Fault irf(BitRef v) { return {FaultKind::kIrf, v, {}, 0, 0, 0, 0}; }
  static Fault sof(BitRef v) { return {FaultKind::kSof, v, {}, 0, 0, 0, 0}; }
  static Fault cf_in(BitRef victim, BitRef aggressor) {
    return {FaultKind::kCfIn, victim, aggressor, 0, 0, 0, 0};
  }
  static Fault cf_id(BitRef victim, BitRef aggressor, bool up,
                     unsigned forced) {
    const FaultKind k = up ? (forced ? FaultKind::kCfIdUp1
                                     : FaultKind::kCfIdUp0)
                           : (forced ? FaultKind::kCfIdDown1
                                     : FaultKind::kCfIdDown0);
    return {k, victim, aggressor, 0, 0, 0, 0};
  }
  static Fault cf_st(BitRef victim, BitRef aggressor, unsigned when,
                     unsigned forced) {
    return {forced ? FaultKind::kCfSt1 : FaultKind::kCfSt0, victim,
            aggressor, when, 0, 0, 0};
  }
  static Fault bridge(BitRef a, BitRef b, bool wired_and) {
    return {wired_and ? FaultKind::kBridgeAnd : FaultKind::kBridgeOr, a, b,
            0, 0, 0, 0};
  }
  static Fault af_no_access(Addr addr) {
    return {FaultKind::kAfNoAccess, {addr, 0}, {}, 0, 0, 0, 0};
  }
  static Fault af_wrong_access(Addr addr, Addr instead) {
    return {FaultKind::kAfWrongAccess, {addr, 0}, {}, 0, instead, 0, 0};
  }
  static Fault af_multi_access(Addr addr, Addr also) {
    return {FaultKind::kAfMultiAccess, {addr, 0}, {}, 0, also, 0, 0};
  }
  static Fault npsf_static(BitRef victim, unsigned neighbour_pattern,
                           unsigned forced, Addr grid_cols) {
    return {FaultKind::kNpsfStatic, victim, {}, forced, 0,
            neighbour_pattern, grid_cols, 0};
  }
  static Fault retention(BitRef v, unsigned decays_to,
                         std::uint64_t delay_ticks) {
    return {FaultKind::kDrf, v, {}, decays_to, 0, 0, 0, delay_ticks};
  }

  /// Human-readable one-liner, e.g. "CFin v=(3,0) a=(7,0)".
  [[nodiscard]] std::string describe() const;
};

}  // namespace prt::mem
