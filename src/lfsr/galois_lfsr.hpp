// Galois (internal-XOR) configuration LFSR over GF(2).
//
// The paper's virtual automaton is a Fibonacci LFSR (lfsr/lfsr.hpp);
// hardware signature registers usually use the Galois form because the
// feedback XORs sit between stages (shorter critical path).  The two
// configurations generate the same m-sequence up to phase; this class
// provides the Galois form plus the cross-configuration equivalence
// used in tests and as a second reference for the MISR.
#pragma once

#include <cstdint>

#include "gf/gf2_poly.hpp"

namespace prt::lfsr {

/// w-bit Galois LFSR with characteristic polynomial p(z) over GF(2),
/// 1 <= deg p <= 63.  step() shifts right: the output bit (bit 0) is
/// the sequence; when it is 1 the tap mask is XORed into the state.
class GaloisLfsr {
 public:
  explicit GaloisLfsr(gf::Poly2 poly);

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] std::uint64_t state() const { return state_; }
  /// Precondition: seed != 0 for a non-degenerate sequence.
  void seed(std::uint64_t s);

  /// Produces the next output bit and advances the state.
  unsigned step();

  /// Sequence period from the current state (brute force, capped).
  [[nodiscard]] std::uint64_t cycle_length(
      std::uint64_t cap = (std::uint64_t{1} << 24)) const;

 private:
  gf::Poly2 poly_;
  unsigned width_;
  std::uint64_t taps_;  // p with the top bit dropped
  std::uint64_t state_ = 1;
};

}  // namespace prt::lfsr
