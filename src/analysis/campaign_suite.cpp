#include "analysis/campaign_suite.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "analysis/campaign_driver.hpp"

namespace prt::analysis {

namespace {

/// One configuration, prepared for scheduling: the generated universe
/// plus a type-erased shard runner over the configuration's driver.
/// The driver is owned by the closure so PRT and March configurations
/// flow through one schedule.
struct Prepared {
  std::vector<mem::Fault> universe;
  std::string name;
  std::function<bool(std::span<const mem::Fault>, std::size_t, std::size_t,
                     CampaignResult&, const util::StopToken&)>
      run_shard;
};

template <typename Driver>
Prepared prepared_from(std::shared_ptr<Driver> driver,
                       std::vector<mem::Fault> universe, std::string name) {
  Prepared p;
  p.universe = std::move(universe);
  p.name = std::move(name);
  p.run_shard = [driver = std::move(driver)](
                    std::span<const mem::Fault> faults, std::size_t begin,
                    std::size_t end, CampaignResult& out,
                    const util::StopToken& stop) {
    return driver->run_shard(faults, begin, end, out, stop);
  };
  return p;
}

std::string config_label(const CampaignOptions& opt) {
  std::string label = "n=" + std::to_string(opt.n);
  if (opt.m != 1) label += " m=" + std::to_string(opt.m);
  if (opt.ports != 1) label += " ports=" + std::to_string(opt.ports);
  return label;
}

}  // namespace

struct CampaignSuite::Impl {
  // Exactly one of the two workload kinds is set.
  SchemeFactory factory;
  std::optional<march::MarchTest> march_test;
  EngineOptions prt_engine;
  MarchEngineOptions march_engine;
  /// The one pool every configuration's shards flatten onto; spun up
  /// on the first parallel run() and reused across runs.
  mutable std::unique_ptr<util::ThreadPool> pool;

  [[nodiscard]] unsigned threads() const {
    return march_test ? march_engine.threads : prt_engine.threads;
  }
  [[nodiscard]] bool parallel() const {
    return march_test ? march_engine.parallel : prt_engine.parallel;
  }

  /// Generates the universe and builds the driver for one
  /// configuration — through the same detail::make_driver path the
  /// standalone engines use, so per-configuration behaviour (and the
  /// OracleCache reuse) is identical by construction.
  [[nodiscard]] Prepared prepare(const CampaignOptions& opt, std::size_t index,
                                 const UniverseGenerator& universe) const {
    if (march_test) {
      std::shared_ptr<detail::MarchDriver> driver =
          detail::make_driver(*march_test, opt, march_engine);
      std::string name = march_test->name;
      return prepared_from(std::move(driver), universe(opt, index),
                           std::move(name));
    }
    std::shared_ptr<detail::PrtDriver> driver =
        detail::make_driver(factory(opt), opt, prt_engine);
    std::string name = driver->workload().name();
    return prepared_from(std::move(driver), universe(opt, index),
                         std::move(name));
  }
};

CampaignSuite::CampaignSuite(SchemeFactory factory,
                             const EngineOptions& engine)
    : impl_(std::make_unique<Impl>()) {
  impl_->factory = std::move(factory);
  impl_->prt_engine = engine;
}

CampaignSuite::CampaignSuite(march::MarchTest test,
                             const MarchEngineOptions& engine)
    : impl_(std::make_unique<Impl>()) {
  impl_->march_test = std::move(test);
  impl_->march_engine = engine;
}

CampaignSuite::~CampaignSuite() = default;

SuiteResult CampaignSuite::run(std::span<const CampaignOptions> configs,
                               const UniverseGenerator& universe) const {
  // A default token never stops, so this is exactly the pre-
  // cancellation suite run (every status comes back kComplete).
  return run(configs, universe, util::StopToken());
}

SuiteResult CampaignSuite::run(std::span<const CampaignOptions> configs,
                               const UniverseGenerator& universe,
                               const util::StopToken& stop) const {
  // Every configuration's geometry is validated before any universe is
  // generated or any task scheduled — a malformed grid point fails the
  // whole request up-front instead of mid-flight on a worker.
  for (const CampaignOptions& opt : configs) validate_campaign_options(opt);

  const std::size_t count = configs.size();
  std::vector<Prepared> prepared(count);
  /// Per-configuration shard slots, merged in shard order — the same
  /// contiguous-ascending-ranges merge the standalone engines use, so
  /// each configuration's result is bit-identical to its standalone
  /// run no matter how the flattened schedule interleaved the work.
  std::vector<std::vector<CampaignResult>> shards(count);
  /// Per-shard completion flags (unsigned char, not vector<bool>: each
  /// task writes only its own slot, which bit-packing would turn into
  /// a data race) plus a per-configuration "universe was generated"
  /// flag — a stop can pre-empt a configuration before prepare().
  std::vector<std::vector<unsigned char>> done(count);
  std::vector<unsigned char> generated(count, 0);

  const unsigned workers = impl_->threads() != 0
                               ? impl_->threads()
                               : util::default_worker_count();
  if (!impl_->parallel() || workers == 1) {
    for (std::size_t c = 0; c < count; ++c) {
      if (stop.stop_requested()) break;
      prepared[c] = impl_->prepare(configs[c], c, universe);
      generated[c] = 1;
      shards[c].resize(1);
      done[c].assign(1, 0);
      done[c][0] = prepared[c].run_shard(prepared[c].universe, 0,
                                         prepared[c].universe.size(),
                                         shards[c][0], stop)
                       ? 1
                       : 0;
    }
  } else {
    if (!impl_->pool) impl_->pool = std::make_unique<util::ThreadPool>(workers);
    util::ThreadPool& pool = *impl_->pool;
    // Worker exceptions (universe generator, scheme factory, malformed
    // faults) are captured and rethrown on the caller after the whole
    // schedule drained — same contract as ThreadPool::
    // parallel_for_chunks.
    util::ErrorCollector errors;
    for (std::size_t c = 0; c < count; ++c) {
      // One prepare task per configuration; each fans its own shard
      // tasks out onto the same pool as soon as it is ready, so small
      // configurations interleave with big ones instead of waiting
      // for them.  The shard partition is util::for_each_chunk — the
      // same contiguous-ascending splitter parallel_for_chunks uses,
      // which the bit-identical shard-order merge relies on.
      pool.submit([&, c] {
        errors.guard([&] {
          if (stop.stop_requested()) return;
          prepared[c] = impl_->prepare(configs[c], c, universe);
          generated[c] = 1;
          const std::size_t total = prepared[c].universe.size();
          if (total == 0) return;
          const auto shard_count = std::min<std::size_t>(workers, total);
          shards[c].resize(shard_count);
          done[c].assign(shard_count, 0);
          util::for_each_chunk(
              total, workers,
              [&, c](unsigned s, std::size_t begin, std::size_t end) {
                pool.submit([&, c, s, begin, end] {
                  errors.guard([&] {
                    done[c][s] =
                        prepared[c].run_shard(prepared[c].universe, begin,
                                              end, shards[c][s], stop)
                            ? 1
                            : 0;
                  });
                });
              });
        });
      });
    }
    pool.wait_idle();
    errors.rethrow_if_any();
  }

  SuiteResult out;
  out.configs.reserve(count);
  bool all_complete = true;
  for (std::size_t c = 0; c < count; ++c) {
    SuiteConfigResult entry;
    entry.options = configs[c];
    entry.workload = prepared[c].name;
    entry.faults = prepared[c].universe.size();
    entry.shards_total = shards[c].size();
    std::vector<CampaignResult> completed;
    completed.reserve(shards[c].size());
    for (std::size_t s = 0; s < shards[c].size(); ++s) {
      if (done[c][s] != 0) completed.push_back(std::move(shards[c][s]));
    }
    entry.shards_done = completed.size();
    entry.result = merge_results(completed);
    const bool complete =
        generated[c] != 0 && entry.shards_done == entry.shards_total;
    entry.status =
        complete ? RunStatus::kComplete : status_from(stop.reason());
    all_complete = all_complete && complete;
    for (const auto& [cls, cov] : entry.result.by_class) {
      auto& acc = out.by_class[cls];
      acc.detected += cov.detected;
      acc.total += cov.total;
    }
    out.overall.detected += entry.result.overall.detected;
    out.overall.total += entry.result.overall.total;
    out.ops += entry.result.ops;
    out.configs.push_back(std::move(entry));
  }
  out.status =
      all_complete ? RunStatus::kComplete : status_from(stop.reason());
  return out;
}

Table SuiteResult::table() const {
  Table table({"config", "workload", "faults", "detected", "total",
               "coverage %", "ops"});
  table.set_align(0, Align::kLeft);
  table.set_align(1, Align::kLeft);
  for (const SuiteConfigResult& entry : configs) {
    table.add(config_label(entry.options), entry.workload, entry.faults,
              entry.result.overall.detected, entry.result.overall.total,
              entry.result.overall.percent(), entry.result.ops);
  }
  table.add("TOTAL", "", overall.total, overall.detected, overall.total,
            overall.percent(), ops);
  return table;
}

SuiteResult run_prt_suite(std::span<const CampaignOptions> configs,
                          SchemeFactory factory,
                          const UniverseGenerator& universe,
                          const EngineOptions& engine) {
  return CampaignSuite(std::move(factory), engine).run(configs, universe);
}

SuiteResult run_march_suite(std::span<const CampaignOptions> configs,
                            march::MarchTest test,
                            const UniverseGenerator& universe,
                            const MarchEngineOptions& engine) {
  return CampaignSuite(std::move(test), engine).run(configs, universe);
}

}  // namespace prt::analysis
