// Multi-port pi-testing schemes (paper §4 and Fig. 2).
//
// A two-port RAM performs two independent operations per cycle.  The
// Fig. 2 scheme issues both window reads of a sub-iteration
// simultaneously (one per port) and the feedback write in the following
// cycle, bringing a pi-iteration from 3n single-port cycles down to 2n
// (paper: "the time complexity of a pi-test iteration for the analyzed
// schemes is equal 2n").
//
// For four-port memories (the paper's "QuadPort DSE family") two
// schemes are provided:
//  * single-LFSR: reads on ports 0/1 and the write on port 2 share one
//    cycle — n cycles per iteration;
//  * multi-LFSR: the array splits into two halves tested concurrently
//    by two independent virtual LFSRs, each on its own port pair — also
//    ~n cycles but with two signatures and intra-half locality, useful
//    when the fault model calls for independent trajectories.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pi_iteration.hpp"

namespace prt::core {

/// Result of a multi-port iteration; `cycles` counts scheduling slots,
/// with all ports operating within a slot.
struct MultiPortResult {
  bool pass = false;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cycles = 0;
  std::vector<gf::Elem> fin;
  std::vector<gf::Elem> fin_expected;
};

/// Fig. 2 scheme on a 2-port memory.  Precondition: memory.ports() >= 2,
/// config/init as for PiTester::run.  Cycle budget: k init-write cycles
/// + (n - k) sub-iterations x 2 cycles (parallel reads; write) + Fin
/// read-back — 2n + O(1) for k = 2.
[[nodiscard]] MultiPortResult run_pi_dualport(mem::Memory& memory,
                                              const PiTester& tester,
                                              const PiConfig& config);

/// Quad-port single-LFSR scheme: reads and the feedback write of each
/// sub-iteration all happen in one cycle (write-after-read semantics
/// within the cycle), giving n + O(1) cycles.  Precondition:
/// memory.ports() >= 3.
[[nodiscard]] MultiPortResult run_pi_quadport(mem::Memory& memory,
                                              const PiTester& tester,
                                              const PiConfig& config);

/// Quad-port multi-LFSR scheme: two independent pi-iterations over the
/// two halves of the address space, scheduled concurrently (half 0 on
/// ports 0/1, half 1 on ports 2/3, writes interleaved on the next
/// cycle as in Fig. 2).  Returns one result whose fin/fin_expected are
/// the two halves' states concatenated; cycles ~= n.  Precondition:
/// memory.ports() == 4, memory.size() >= 2 * (k + 1).
[[nodiscard]] MultiPortResult run_pi_multilfsr(mem::Memory& memory,
                                               const PiTester& tester,
                                               const PiConfig& config);

}  // namespace prt::core
