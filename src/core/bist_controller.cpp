#include "core/bist_controller.hpp"

#include <cassert>

namespace prt::core {

BistController::BistController(gf::GF2m field, std::vector<gf::Elem> g,
                               std::vector<gf::Elem> init,
                               Trajectory trajectory)
    : field_(std::move(field)),
      g_(std::move(g)),
      k_(static_cast<unsigned>(g_.size() - 1)),
      trajectory_(std::move(trajectory)),
      init_(std::move(init)) {
  assert(g_.size() >= 2 && g_.front() != 0 && g_.back() != 0);
  assert(init_.size() == k_);
  assert(trajectory_.size() > k_);

  // Synthesize one netlist per feedback tap (coefficient 0 taps keep an
  // empty network whose outputs are grounded).
  tap_networks_.resize(k_);
  for (unsigned j = 1; j <= k_; ++j) {
    tap_networks_[j - 1] =
        gf::synthesize_cse(gf::multiplier_matrix(field_, g_[j]));
  }

  // Pre-load the expected-Fin register from the reference model.
  lfsr::WordLfsr model(field_, g_);
  model.seed(init_);
  model.jump(trajectory_.size() - k_);
  fin_expected_.assign(model.state().begin(), model.state().end());

  window_.assign(k_, 0);
  state_ = BistState::kInit;
}

gf::Elem BistController::feedback_value() const {
  // w = sum_j g_j * window[k-j], each product evaluated by the
  // synthesized XOR netlist, the sum by word-wide XOR.
  gf::Elem acc = 0;
  for (unsigned j = 1; j <= k_; ++j) {
    const gf::Elem operand = window_[k_ - j];
    acc = static_cast<gf::Elem>(
        acc ^ static_cast<gf::Elem>(tap_networks_[j - 1].eval(operand)));
  }
  return acc;
}

std::size_t BistController::feedback_gates() const {
  std::size_t gates = 0;
  std::size_t active = 0;
  for (unsigned j = 1; j <= k_; ++j) {
    if (g_[j] == 0) continue;
    ++active;
    gates += tap_networks_[j - 1].gate_count();
  }
  if (active > 1) gates += (active - 1) * field_.m();
  return gates;
}

void BistController::clock(mem::Memory& memory) {
  assert(memory.size() == trajectory_.size());
  assert(memory.width() == field_.m());
  const mem::Addr n = trajectory_.size();

  switch (state_) {
    case BistState::kIdle:
    case BistState::kDone:
      return;  // no operation

    case BistState::kInit:
      memory.write(trajectory_.at(phase_), init_[phase_], 0);
      ++cycles_;
      if (++phase_ == k_) {
        phase_ = 0;
        position_ = 0;
        state_ = BistState::kRead;
      }
      return;

    case BistState::kRead:
      window_[phase_] = static_cast<gf::Elem>(
          memory.read(trajectory_.at(position_ + phase_), 0));
      ++cycles_;
      if (++phase_ == k_) {
        phase_ = 0;
        state_ = BistState::kWrite;
      }
      return;

    case BistState::kWrite:
      memory.write(trajectory_.at(position_ + k_), feedback_value(), 0);
      ++cycles_;
      ++position_;
      state_ = position_ + k_ < n ? BistState::kRead : BistState::kFinRead;
      return;

    case BistState::kFinRead: {
      const auto got = static_cast<gf::Elem>(
          memory.read(trajectory_.at(n - k_ + phase_), 0));
      ++cycles_;
      pass_ = pass_ && got == fin_expected_[phase_];
      if (++phase_ == k_) {
        phase_ = 0;
        state_ = BistState::kInitRead;
      }
      return;
    }

    case BistState::kInitRead: {
      const auto got =
          static_cast<gf::Elem>(memory.read(trajectory_.at(phase_), 0));
      ++cycles_;
      pass_ = pass_ && got == init_[phase_];
      if (++phase_ == k_) {
        phase_ = 0;
        state_ = BistState::kDone;
      }
      return;
    }
  }
}

bool BistController::run(mem::Memory& memory) {
  while (!done()) clock(memory);
  return pass();
}

}  // namespace prt::core
