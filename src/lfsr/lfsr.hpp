// Word-oriented linear feedback shift registers over GF(2^m).
//
// This is the reference model of the paper's *virtual* automaton: a
// pi-test iteration makes the memory array trace exactly the state
// sequence of one of these LFSRs, so the expected final state Fin* is
// obtained by stepping (or jumping) this model.  m = 1 gives the
// bit-oriented LFSR of Fig. 1a; m > 1 with GF(2^m) coefficient
// multipliers gives the word-oriented LFSR of Fig. 1b.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/gf2m_poly.hpp"
#include "gf/matrix_gf2.hpp"

namespace prt::lfsr {

/// Fibonacci-configuration LFSR with generator polynomial
/// g(x) = g0 + g1 x + ... + gk x^k over GF(2^m), g0 != 0, gk != 0.
/// The produced sequence obeys s[t+k] = sum_{j=1..k} g[j] * s[t+k-j]
/// (the paper's sub-iteration (1): for g = 1 + x + x^2 this is
/// s[t+2] = s[t+1] XOR s[t]).
class WordLfsr {
 public:
  /// Precondition: g.size() >= 2 (degree >= 1), g.front() != 0,
  /// g.back() != 0, and every coefficient < field size.
  WordLfsr(gf::GF2m field, std::vector<gf::Elem> g);

  [[nodiscard]] const gf::GF2m& field() const { return field_; }
  /// Generator coefficients g0..gk.
  [[nodiscard]] const std::vector<gf::Elem>& g() const { return g_; }
  /// Register length k = deg g.
  [[nodiscard]] unsigned k() const {
    return static_cast<unsigned>(g_.size() - 1);
  }
  /// Stage width m in bits.
  [[nodiscard]] unsigned m() const { return field_.m(); }

  /// Current state s[t..t+k-1], oldest first.
  [[nodiscard]] std::span<const gf::Elem> state() const { return state_; }
  /// Resets to the given seed (oldest first).  Precondition:
  /// seed.size() == k().
  void seed(std::span<const gf::Elem> seed);

  /// Produces the next sequence element s[t+k] and shifts it in.
  gf::Elem step();

  /// The feedback value for an arbitrary window (oldest first), without
  /// touching the internal state — the exact combination a pi-test
  /// sub-iteration writes to memory.
  [[nodiscard]] gf::Elem feedback(std::span<const gf::Elem> window) const;

  /// First n sequence elements from the current state (the state itself
  /// provides the first k of them); the state advances by max(0, n-k).
  [[nodiscard]] std::vector<gf::Elem> sequence(std::size_t n);

  /// Period of the state cycle through the *current* state (brute force,
  /// capped; nullopt if the cap is exceeded).  For a primitive g and a
  /// non-zero state this equals max_period().
  [[nodiscard]] std::optional<std::uint64_t> cycle_length(
      std::uint64_t cap = (std::uint64_t{1} << 24)) const;

  /// Order of x modulo g — the period of the sequence for any state that
  /// excites the full recurrence; q^k - 1 iff g is primitive.
  [[nodiscard]] std::uint64_t algebraic_period() const;

  /// q^k - 1, the maximum possible period.
  [[nodiscard]] std::uint64_t max_period() const;

  [[nodiscard]] bool is_irreducible() const;
  [[nodiscard]] bool is_primitive() const;

  /// The k x k companion matrix over GF(2^m) of the recurrence, expanded
  /// to an (m*k) x (m*k) matrix over GF(2) acting on the packed state
  /// (element j occupies bits [j*m, (j+1)*m)).
  [[nodiscard]] gf::MatrixGF2 transition_matrix_gf2() const;

  /// Advances the state by t steps in O(log t) matrix operations.
  void jump(std::uint64_t t);

  /// Packs / unpacks a state vector into bits for matrix application.
  [[nodiscard]] std::uint64_t pack_state(
      std::span<const gf::Elem> s) const;
  [[nodiscard]] std::vector<gf::Elem> unpack_state(std::uint64_t bits) const;

 private:
  gf::GF2m field_;
  std::vector<gf::Elem> g_;
  std::vector<gf::Elem> state_;
};

/// Convenience: the bit-oriented LFSR of Fig. 1a, g(x) = 1 + x + x^2
/// over GF(2).
[[nodiscard]] WordLfsr fig1a_bom_lfsr();

/// Convenience: the word-oriented LFSR of Fig. 1b,
/// g(x) = 1 + 2x + 2x^2 over GF(2^4), p(z) = 1 + z + z^4.
[[nodiscard]] WordLfsr fig1b_wom_lfsr();

}  // namespace prt::lfsr
