// Bit-parallel PRT evaluation over packed fault lanes.
//
// Over GF(2) every scheme value is a single bit, so the LFSR feedback
// sum_j g_j * window[k-j] degenerates to an XOR of the selected window
// entries — which is *lane-wise*: one 64-bit XOR computes all 64
// packed memories' feedback at once, each from its own (possibly
// fault-corrupted) reads.  run_prt_packed replays the exact control
// flow of PiTester::run / run_prt against a mem::PackedFaultRam and
// compares each lane's observed Fin, Init read-back, verify-pass image
// and (bit-sliced) MISR signature against the shared PrtOracle
// goldens, returning the 64-bit detected mask.
//
// Detection semantics per lane are identical to
// run_prt(FaultyRam, scheme, oracle).detected() for the same single
// fault — the parity tests in tests/test_packed_campaign.cpp and the
// lane-batching campaign layer (analysis/campaign_engine) rely on it.
#pragma once

#include <cstdint>

#include "core/prt_engine.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt::core {

/// True when `scheme` can run bit-parallel: a GF(2) scheme (field
/// modulus z + 1), where every generator coefficient and seed value is
/// a single bit.  Word-oriented schemes (m > 1) need real GF(2^m)
/// multiplies per lane and stay scalar.
[[nodiscard]] bool prt_scheme_packable(const PrtScheme& scheme);

/// Runs every iteration of the scheme against the packed ram.  Returns
/// the mask of lanes whose observed behaviour (Fin, Init read-back,
/// verify pass, MISR signature) deviates from the golden run —
/// bit L set means lane L's fault is detected.  Lanes beyond
/// ram.lanes_used() simulate fault-free memories and never deviate,
/// but callers should still AND with ram.active_mask().
///
/// Preconditions: prt_scheme_packable(scheme), oracle built by
/// make_prt_oracle(scheme, ram.size()).  Always runs the full scheme
/// (no early abort), so the packed op count ram.ops() equals the
/// scalar per-fault op count of a complete run.
[[nodiscard]] std::uint64_t run_prt_packed(mem::PackedFaultRam& ram,
                                           const PrtScheme& scheme,
                                           const PrtOracle& oracle);

}  // namespace prt::core
