#include "gf/gf2m.hpp"

#include <cassert>
#include <cstdio>

#include "util/bitops.hpp"

namespace prt::gf {

GF2m::GF2m(Poly2 modulus)
    : modulus_(modulus),
      m_(static_cast<unsigned>(poly_degree(modulus))),
      z_primitive_(false) {
  assert(m_ >= 1 && m_ <= 16);
  assert((modulus & 1) != 0 &&
         "modulus needs a non-zero constant term (use z+1 for GF(2))");
  assert(is_irreducible(modulus));
  z_primitive_ = (m_ == 1) || (order_of_x(modulus) == group_order());
  if (z_primitive_) {
    exp_table_.resize(group_order());
    log_table_.assign(size(), 0);
    Elem cur = 1;
    for (std::uint32_t k = 0; k < group_order(); ++k) {
      exp_table_[k] = cur;
      log_table_[cur] = k;
      cur = static_cast<Elem>(mulmod(cur, 2, modulus_));
    }
    assert(cur == 1 && "z^(2^m-1) must close the cycle");
  }
}

GF2m GF2m::standard(unsigned m) { return GF2m(first_primitive(m)); }

Elem GF2m::mul(Elem a, Elem b) const {
  assert(a < size() && b < size());
  if (a == 0 || b == 0) return 0;
  if (z_primitive_) {
    const std::uint64_t k =
        std::uint64_t{log_table_[a]} + log_table_[b];
    return exp_table_[k >= group_order() ? k - group_order() : k];
  }
  return static_cast<Elem>(mulmod(a, b, modulus_));
}

Elem GF2m::pow(Elem a, std::uint64_t e) const {
  assert(a < size());
  if (e == 0) return 1;
  if (a == 0) return 0;
  if (z_primitive_) {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(log_table_[a]) * (e % group_order())) %
        group_order();
    return exp_table_[k];
  }
  return static_cast<Elem>(powmod(a, e, modulus_));
}

Elem GF2m::inv(Elem a) const {
  assert(a != 0 && a < size());
  if (z_primitive_) {
    const std::uint32_t k = log_table_[a];
    return exp_table_[k == 0 ? 0 : group_order() - k];
  }
  // a^(2^m - 2) = a^{-1} in GF(2^m).
  return static_cast<Elem>(powmod(a, group_order() - 1, modulus_));
}

std::uint32_t GF2m::order(Elem a) const {
  assert(a != 0 && a < size());
  std::uint32_t t = group_order();
  for (std::uint64_t q : distinct_prime_factors(t)) {
    while (t % q == 0 && pow(a, t / q) == 1) {
      t = static_cast<std::uint32_t>(t / q);
    }
  }
  return t;
}

std::uint32_t GF2m::log(Elem a) const {
  assert(z_primitive_ && a != 0 && a < size());
  return log_table_[a];
}

Elem GF2m::exp(std::uint32_t k) const {
  assert(z_primitive_);
  return exp_table_[k % group_order()];
}

std::string GF2m::to_hex(Elem a) const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%X", a);
  return buf;
}

}  // namespace prt::gf
