#include "mem/fault.hpp"

#include <sstream>

namespace prt::mem {

FaultClass fault_class(FaultKind k) {
  switch (k) {
    case FaultKind::kSaf0:
    case FaultKind::kSaf1:
      return FaultClass::kSaf;
    case FaultKind::kTfUp:
    case FaultKind::kTfDown:
      return FaultClass::kTf;
    case FaultKind::kWdf:
      return FaultClass::kWdf;
    case FaultKind::kRdf:
    case FaultKind::kDrdf:
    case FaultKind::kIrf:
    case FaultKind::kSof:
      return FaultClass::kReadLogic;
    case FaultKind::kCfIn:
      return FaultClass::kCfIn;
    case FaultKind::kCfIdUp0:
    case FaultKind::kCfIdUp1:
    case FaultKind::kCfIdDown0:
    case FaultKind::kCfIdDown1:
      return FaultClass::kCfId;
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1:
      return FaultClass::kCfSt;
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr:
      return FaultClass::kBridge;
    case FaultKind::kAfNoAccess:
    case FaultKind::kAfWrongAccess:
    case FaultKind::kAfMultiAccess:
      return FaultClass::kAf;
    case FaultKind::kNpsfStatic:
      return FaultClass::kNpsf;
    case FaultKind::kDrf:
      return FaultClass::kRetention;
  }
  return FaultClass::kSaf;  // unreachable
}

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kSaf0: return "SAF0";
    case FaultKind::kSaf1: return "SAF1";
    case FaultKind::kTfUp: return "TF-up";
    case FaultKind::kTfDown: return "TF-down";
    case FaultKind::kWdf: return "WDF";
    case FaultKind::kRdf: return "RDF";
    case FaultKind::kDrdf: return "DRDF";
    case FaultKind::kIrf: return "IRF";
    case FaultKind::kSof: return "SOF";
    case FaultKind::kCfIn: return "CFin";
    case FaultKind::kCfIdUp0: return "CFid<up,0>";
    case FaultKind::kCfIdUp1: return "CFid<up,1>";
    case FaultKind::kCfIdDown0: return "CFid<down,0>";
    case FaultKind::kCfIdDown1: return "CFid<down,1>";
    case FaultKind::kCfSt0: return "CFst<0>";
    case FaultKind::kCfSt1: return "CFst<1>";
    case FaultKind::kBridgeAnd: return "BF-and";
    case FaultKind::kBridgeOr: return "BF-or";
    case FaultKind::kAfNoAccess: return "AF-none";
    case FaultKind::kAfWrongAccess: return "AF-wrong";
    case FaultKind::kAfMultiAccess: return "AF-multi";
    case FaultKind::kNpsfStatic: return "NPSF-static";
    case FaultKind::kDrf: return "DRF";
  }
  return "?";
}

std::string to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kSaf: return "SAF";
    case FaultClass::kTf: return "TF";
    case FaultClass::kWdf: return "WDF";
    case FaultClass::kReadLogic: return "RDF/DRDF/IRF/SOF";
    case FaultClass::kCfIn: return "CFin";
    case FaultClass::kCfId: return "CFid";
    case FaultClass::kCfSt: return "CFst";
    case FaultClass::kBridge: return "Bridge";
    case FaultClass::kAf: return "AF";
    case FaultClass::kNpsf: return "NPSF";
    case FaultClass::kRetention: return "DRF";
  }
  return "?";
}

std::string Fault::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " v=(" << victim.cell << ',' << victim.bit << ')';
  if (is_coupling(kind)) {
    os << " a=(" << aggressor.cell << ',' << aggressor.bit << ')';
  }
  if (kind == FaultKind::kCfSt0 || kind == FaultKind::kCfSt1) {
    os << " when=" << state;
  }
  if (is_address_fault(kind) && kind != FaultKind::kAfNoAccess) {
    os << " alias=" << alias;
  }
  if (kind == FaultKind::kNpsfStatic) {
    os << " pattern=0x" << std::hex << pattern << std::dec
       << " forced=" << state;
  }
  if (kind == FaultKind::kDrf) {
    os << " decays_to=" << state << " after=" << delay;
  }
  return os.str();
}

}  // namespace prt::mem
