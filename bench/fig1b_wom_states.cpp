// Reproduces Fig. 1b of the paper: the expected states of word-oriented
// memory cells for g(x) = 1 + 2x + 2x^2 over GF(2^4), p(z) = 1 + z +
// z^4 — the sequence 0, 1, 2, 6, ... — and the ring closure "if the
// memory array size is multiple by the period of LFSR then virtual
// automaton will return to the initial state".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pi_iteration.hpp"
#include "gf/gf2m_poly.hpp"
#include "mem/sram.hpp"
#include "util/table.hpp"

namespace {

using namespace prt;

core::PiTester wom_tester() {
  return core::PiTester(gf::GF2m(0b10011), {1, 2, 2});
}

void print_figure() {
  const gf::GF2m field(0b10011);
  const gf::PolyGF2m g({1, 2, 2});
  std::printf("== Fig. 1b: pi-test iteration on a WOM ==\n");
  std::printf("p(z) = %s (primitive over GF(2): %s)\n",
              gf::poly_to_string(0b10011).c_str(),
              gf::is_primitive(0b10011) ? "yes" : "no");
  std::printf("g(x) = %s over GF(2^4): irreducible %s, primitive %s\n",
              gf::poly_to_string(field, g).c_str(),
              gf::is_irreducible(field, g) ? "yes" : "no",
              gf::is_primitive(field, g) ? "yes" : "no");
  std::printf("LFSR period (order of x mod g): %llu\n",
              static_cast<unsigned long long>(gf::order_of_x(field, g)));

  const core::PiTester tester = wom_tester();
  mem::SimRam ram(16, 4);
  core::PiConfig cfg;
  cfg.init = {0, 1};
  const core::PiResult r = tester.run(ram, cfg);
  std::printf("Init = (0,1)  first 16 cells (hex):");
  for (mem::Addr a = 0; a < 16; ++a) {
    std::printf(" %s", field.to_hex(ram.peek(a)).c_str());
  }
  std::printf("\n(paper prints 0 1 2 6 ... for the same configuration)\n");
  std::printf("verdict: %s\n", r.pass ? "PASS" : "FAIL");

  Table t({"n", "(n-2) mod 255", "ring closes", "Fin == Init"});
  for (mem::Addr n : {255u, 256u, 257u, 512u, 767u}) {
    mem::SimRam big(n, 4);
    const core::PiResult rr = tester.run(big, cfg);
    t.add(n, (n - 2) % 255, tester.ring_closes(n), rr.fin == cfg.init);
  }
  std::printf("\n%s\n", t.str().c_str());
}

void BM_PiIterationWom(benchmark::State& state) {
  const mem::Addr n = static_cast<mem::Addr>(state.range(0));
  mem::SimRam ram(n, 4);
  const core::PiTester tester = wom_tester();
  core::PiConfig cfg;
  cfg.init = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tester.run(ram, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_PiIterationWom)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Gf16Multiply(benchmark::State& state) {
  const gf::GF2m field(0b10011);
  gf::Elem x = 1;
  for (auto _ : state) {
    x = field.mul(x, 2) ^ 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Gf16Multiply);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
