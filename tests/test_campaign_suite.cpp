// Tests for the multi-configuration campaign suite
// (analysis/campaign_suite) and the shared golden-artifact cache
// (analysis/oracle_cache): per-configuration suite results must be
// bit-identical to standalone engine runs at any thread count, the
// cache must build exactly once per key under concurrency, and the
// unified driver must reject malformed CampaignOptions up-front.
#include "analysis/campaign_suite.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/oracle_cache.hpp"
#include "core/prt_engine.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"

namespace prt::analysis {
namespace {

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

std::vector<mem::Fault> classical_for(const CampaignOptions& opt,
                                      std::size_t /*index*/) {
  return mem::classical_universe(opt.n);
}

TEST(CampaignSuite, PrtConfigsBitIdenticalToStandaloneEngines) {
  const std::vector<CampaignOptions> configs = {
      {.n = 32}, {.n = 48, .ports = 2}, {.n = 24}};
  const SuiteResult suite = run_prt_suite(
      configs, [](const CampaignOptions& opt) {
        return core::extended_scheme_bom(opt.n);
      },
      classical_for);
  ASSERT_EQ(suite.configs.size(), configs.size());
  ClassCoverage overall;
  std::uint64_t ops = 0;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto universe = classical_for(configs[c], c);
    const CampaignResult standalone = run_prt_campaign(
        universe, core::extended_scheme_bom(configs[c].n), configs[c]);
    EXPECT_EQ(suite.configs[c].faults, universe.size());
    EXPECT_EQ(suite.configs[c].options.n, configs[c].n);
    expect_identical(standalone, suite.configs[c].result);
    overall.detected += standalone.overall.detected;
    overall.total += standalone.overall.total;
    ops += standalone.ops;
  }
  // The aggregate rollup is the sum of the per-configuration results.
  EXPECT_EQ(suite.overall, overall);
  EXPECT_EQ(suite.ops, ops);
  // The rendered table has one row per configuration plus the total.
  EXPECT_EQ(suite.table().rows(), configs.size() + 1);
}

TEST(CampaignSuite, PrtSuiteThreadCountInvariant) {
  const std::vector<CampaignOptions> configs = {{.n = 40}, {.n = 16}};
  auto factory = [](const CampaignOptions& opt) {
    return core::standard_scheme_bom(opt.n);
  };
  EngineOptions serial;
  serial.parallel = false;
  EngineOptions one;
  one.threads = 1;
  EngineOptions four;
  four.threads = 4;
  const SuiteResult a = run_prt_suite(configs, factory, classical_for, serial);
  const SuiteResult b = run_prt_suite(configs, factory, classical_for, one);
  const SuiteResult c = run_prt_suite(configs, factory, classical_for, four);
  ASSERT_EQ(a.configs.size(), configs.size());
  ASSERT_EQ(b.configs.size(), configs.size());
  ASSERT_EQ(c.configs.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(a.configs[i].result, b.configs[i].result);
    expect_identical(a.configs[i].result, c.configs[i].result);
  }
  EXPECT_EQ(a.overall, c.overall);
  EXPECT_EQ(a.ops, c.ops);
}

TEST(CampaignSuite, SuiteReusableAcrossRuns) {
  const std::vector<CampaignOptions> configs = {{.n = 24}, {.n = 32}};
  EngineOptions eng;
  eng.threads = 2;
  const CampaignSuite suite(
      [](const CampaignOptions& opt) {
        return core::standard_scheme_bom(opt.n);
      },
      eng);
  const SuiteResult first = suite.run(configs, classical_for);
  for (int round = 0; round < 2; ++round) {
    const SuiteResult again = suite.run(configs, classical_for);
    ASSERT_EQ(again.configs.size(), first.configs.size());
    for (std::size_t i = 0; i < first.configs.size(); ++i) {
      expect_identical(first.configs[i].result, again.configs[i].result);
    }
  }
}

TEST(CampaignSuite, MarchConfigsBitIdenticalToStandaloneCampaigns) {
  // Mixed grid: two bit-oriented points (transcript + packed path) and
  // a word-oriented one (scalar background sweep).
  const std::vector<CampaignOptions> configs = {
      {.n = 24}, {.n = 40, .ports = 2}, {.n = 16, .m = 2}};
  auto universe_for = [](const CampaignOptions& opt, std::size_t) {
    return opt.m == 1
               ? mem::classical_universe(opt.n)
               : mem::single_cell_universe(opt.n, opt.m, /*read_logic=*/true);
  };
  const auto test = march::march_c_minus();
  for (const bool early_abort : {false, true}) {
    MarchEngineOptions eng;
    eng.early_abort = early_abort;
    const SuiteResult suite = run_march_suite(configs, test, universe_for, eng);
    ASSERT_EQ(suite.configs.size(), configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto universe = universe_for(configs[c], c);
      const CampaignResult standalone =
          run_march_campaign(universe, test, configs[c], eng);
      expect_identical(standalone, suite.configs[c].result);
      EXPECT_EQ(suite.configs[c].workload, test.name);
    }
  }
}

TEST(CampaignSuite, EmptyGridAndEmptyUniverses) {
  const CampaignSuite suite([](const CampaignOptions& opt) {
    return core::standard_scheme_bom(opt.n);
  });
  const SuiteResult empty_grid =
      suite.run(std::span<const CampaignOptions>{}, classical_for);
  EXPECT_TRUE(empty_grid.configs.empty());
  EXPECT_EQ(empty_grid.overall.total, 0u);

  const std::vector<CampaignOptions> configs = {{.n = 24}};
  const SuiteResult empty_universe = suite.run(
      configs, [](const CampaignOptions&, std::size_t) {
        return std::vector<mem::Fault>{};
      });
  ASSERT_EQ(empty_universe.configs.size(), 1u);
  EXPECT_EQ(empty_universe.configs[0].faults, 0u);
  EXPECT_EQ(empty_universe.configs[0].result, CampaignResult{});
}

TEST(CampaignSuite, WorkerExceptionsPropagateAndSuiteStaysUsable) {
  const std::vector<CampaignOptions> configs = {{.n = 24}, {.n = 32}};
  EngineOptions eng;
  eng.threads = 3;
  const CampaignSuite suite(
      [](const CampaignOptions& opt) {
        return core::standard_scheme_bom(opt.n);
      },
      eng);
  // The generator blows up on one grid point, on a pool worker.
  EXPECT_THROW(
      (void)suite.run(
          configs,
          [](const CampaignOptions& opt,
             std::size_t) -> std::vector<mem::Fault> {
            if (opt.n == 32) throw std::runtime_error("boom");
            return mem::classical_universe(opt.n);
          }),
      std::runtime_error);
  // A malformed fault inside one configuration's universe surfaces too
  // (FaultyRam::inject's std::invalid_argument contract).
  EXPECT_THROW(
      (void)suite.run(configs,
                      [](const CampaignOptions& opt, std::size_t) {
                        auto u = mem::classical_universe(opt.n);
                        if (opt.n == 24) {
                          u.push_back(mem::Fault::saf({opt.n + 9, 0}, 1));
                        }
                        return u;
                      }),
      std::invalid_argument);
  // The pool survives a throwing run.
  const SuiteResult ok = suite.run(configs, classical_for);
  EXPECT_EQ(ok.configs.size(), configs.size());
}

// --- OracleCache ----------------------------------------------------

TEST(OracleCache, BuildsOncePerKeyUnderConcurrentLookups) {
  OracleCache cache;
  const auto scheme = core::extended_scheme_bom(64);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const OracleCache::PrtEntry>> entries(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { entries[t] = cache.prt(scheme, /*n=*/64); });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(cache.prt_builds(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(entries[0], entries[t]);  // one shared entry, not copies
  }
  EXPECT_EQ(entries[0]->oracle.n, 64u);
  EXPECT_TRUE(entries[0]->packable);
  EXPECT_FALSE(entries[0]->transcript.recs.empty());

  // A different key builds separately; the same key never rebuilds.
  (void)cache.prt(scheme, /*n=*/32);
  EXPECT_EQ(cache.prt_builds(), 2u);
  (void)cache.prt(scheme, /*n=*/64);
  EXPECT_EQ(cache.prt_builds(), 2u);
  EXPECT_EQ(cache.size(), 2u);

  // clear() drops entries but outstanding pointers stay valid.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(entries[0]->oracle.n, 64u);
  (void)cache.prt(scheme, /*n=*/64);
  EXPECT_EQ(cache.prt_builds(), 3u);
}

TEST(OracleCache, MarchKeysSplitOnBackgroundAndDelay) {
  OracleCache cache;
  const auto test = march::march_c_minus();
  const auto a = cache.march(test, 32, /*background=*/false);
  const auto b = cache.march(test, 32, /*background=*/false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cache.march_builds(), 1u);
  (void)cache.march(test, 32, /*background=*/true);
  (void)cache.march(test, 32, /*background=*/false, /*delay_ticks=*/123);
  (void)cache.march(test, 64, /*background=*/false);
  EXPECT_EQ(cache.march_builds(), 4u);
  // A renamed but structurally identical test shares the entry.
  auto renamed = test;
  renamed.name = "renamed";
  (void)cache.march(renamed, 32, /*background=*/false);
  EXPECT_EQ(cache.march_builds(), 4u);
}

TEST(OracleCache, OneBuildUnderConcurrentEngineConstruction) {
  // Engines share OracleCache::global(): constructing several engines
  // for one never-before-seen (scheme, n) concurrently must compile
  // the oracle exactly once.
  const auto scheme = core::retention_scheme(53, 1, /*pause_ticks=*/7);
  CampaignOptions opt;
  opt.n = 53;
  const std::size_t before = OracleCache::global().prt_builds();
  constexpr int kThreads = 6;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] { CampaignEngine engine(scheme, opt); });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(OracleCache::global().prt_builds(), before + 1);
}

// --- central CampaignOptions validation -----------------------------

TEST(CampaignValidation, RejectsMalformedGeometryOnEveryEntryPath) {
  const auto scheme = core::standard_scheme_bom(64);
  const auto test = march::march_c_minus();
  const auto universe = mem::classical_universe(64);
  const std::vector<CampaignOptions> bad = {
      {.n = 0},                    // empty memory
      {.n = 64, .m = 0},           // zero width
      {.n = 64, .m = 33},          // wider than the SimRam word
      {.n = 64, .ports = 3},       // per-port arrays are sized 1/2/4
  };
  for (const CampaignOptions& opt : bad) {
    EXPECT_THROW((void)validate_campaign_options(opt), std::invalid_argument);
    EXPECT_THROW(CampaignEngine(scheme, opt), std::invalid_argument);
    EXPECT_THROW(MarchCampaign(test, opt), std::invalid_argument);
    EXPECT_THROW(
        (void)run_campaign(universe, march_algorithm(test), opt),
        std::invalid_argument);
    const std::vector<CampaignOptions> grid = {{.n = 64}, opt};
    EXPECT_THROW((void)run_march_suite(grid, test,
                                       [](const CampaignOptions& o,
                                          std::size_t) {
                                         return mem::classical_universe(o.n);
                                       }),
                 std::invalid_argument);
  }
  EXPECT_NO_THROW(validate_campaign_options({.n = 64, .m = 32, .ports = 4}));
}

TEST(CampaignValidation, RejectsMarchDataIndexOutsideNotation) {
  // A hand-built test with a data index the {0, 1} background
  // expansion cannot represent must be rejected up-front, not run with
  // silently aliased data.
  march::MarchTest bad;
  bad.name = "bad";
  march::MarchElement elem;
  elem.ops.push_back({march::MarchOp::Type::kWrite, 2});
  bad.elements.push_back(elem);
  CampaignOptions opt;
  opt.n = 16;
  EXPECT_THROW(MarchCampaign(bad, opt), std::invalid_argument);
}

}  // namespace
}  // namespace prt::analysis
