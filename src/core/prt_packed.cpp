#include "core/prt_packed.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace prt::core {

bool prt_scheme_packable(const PrtScheme& scheme) {
  // Any field the scheme factories produce packs: GF(2) on the
  // single-plane hot loop, GF(2^m) up to m = 16 on m bit planes with
  // compiled tap matrices.  The checks left are structural sanity —
  // the same malformed-scheme shapes make_op_transcript would trip on.
  const int degree = poly_degree(scheme.field_modulus);
  if (degree < 1 || degree > 16) return false;
  const gf::Elem field_size = gf::Elem{1} << degree;
  if (scheme.iterations.empty()) return false;
  for (const SchemeIteration& it : scheme.iterations) {
    if (it.g.size() < 2) return false;
    // The transcript's feedback-selection mask covers windows up to 64
    // positions wide (every real scheme uses k = 2 or 3).
    if (it.g.size() > 65) return false;
    for (const gf::Elem c : it.g) {
      if (c >= field_size) return false;
    }
    if (it.config.init.size() != it.g.size() - 1) return false;
    for (const gf::Elem d : it.config.init) {
      if (d >= field_size) return false;
    }
  }
  return true;
}

namespace {

/// Word path (m > 1): every cell is m bit planes, goldens broadcast
/// per plane, the feedback evaluated through the transcript's compiled
/// tap matrices, and the MISR fed the whole read word bit-sliced —
/// exactly lfsr::Misr::shift, which folds input bit b into state bit b.
/// Structure and abort accounting mirror the single-plane loop below.
template <typename W>
PackedVerdictT<W> run_prt_packed_word(mem::PackedFaultRamT<W>& ram,
                                      const OpTranscript& t,
                                      const PackedRunOptions& options,
                                      PackedScratchT<W>& scratch) {
  const mem::Addr n = t.n;
  const unsigned m = t.width;
  const bool use_misr = t.misr_poly != 0;
  const unsigned misr_width =
      use_misr ? static_cast<unsigned>(poly_degree(t.misr_poly)) : 0;
  if (scratch.misr.size() < misr_width) scratch.misr.resize(misr_width);
  if (scratch.planes.size() < 2 * static_cast<std::size_t>(m)) {
    scratch.planes.resize(2 * static_cast<std::size_t>(m));
  }
  W* misr = scratch.misr.data();
  W* w = scratch.planes.data();       // read word, one per plane
  W* fb = scratch.planes.data() + m;  // feedback accumulator

  const W active = ram.active_mask();
  PackedVerdictT<W> verdict;
  W mismatch{};
  W pending = active;

  auto broadcast_write = [&](mem::Addr addr, gf::Elem golden) {
    for (unsigned b = 0; b < m; ++b) {
      w[b] = mem::lane_broadcast<W>(static_cast<unsigned>((golden >> b) & 1U));
    }
    ram.write_word(addr, w);
  };
  auto compare = [&](mem::Addr addr, gf::Elem golden) {
    ram.read_word(addr, w);
    for (unsigned b = 0; b < m; ++b) {
      mismatch |= w[b] ^ mem::lane_broadcast<W>(
                             static_cast<unsigned>((golden >> b) & 1U));
    }
  };

  for (const PrtIterSpan& it : t.iterations) {
    const OpRec* traj = t.recs.data() + it.traj_begin;
    const unsigned kk = it.k;
    if (use_misr) std::fill_n(misr, misr_width, W{});
    // Bit-sliced MISR shift of an m-bit input word: register shift
    // first, then fold input plane b into state plane b (Misr::shift
    // XORs the whole masked input word into the state).
    auto misr_shift = [&](const W* input) {
      const W msb = misr[misr_width - 1];
      for (unsigned b = misr_width; b-- > 1;) {
        misr[b] = misr[b - 1] ^ (((t.misr_poly >> b) & 1U) ? msb : W{});
      }
      misr[0] = ((t.misr_poly & 1U) != 0) ? msb : W{};
      const unsigned fold = std::min(m, misr_width);
      for (unsigned b = 0; b < fold; ++b) misr[b] ^= input[b];
    };

    // Initialization: broadcast the seed words to every lane.
    for (unsigned j = 0; j < kk; ++j) {
      broadcast_write(traj[j].addr, traj[j].golden);
    }

    // Sweep: per tap, feedback plane r accumulates the XOR of the read
    // planes selected by tap matrix row r (constant multiply over
    // GF(2^m) as plane-wide XORs); the field addition across taps is
    // plane-wise XOR too.
    for (mem::Addr q = 0; q + kk < n; ++q) {
      std::fill_n(fb, m, W{});
      for (unsigned j = 0; j < kk; ++j) {
        ram.read_word(traj[q + j].addr, w);
        if (use_misr) misr_shift(w);
        if ((it.fb_mask >> j) & 1U) {
          const std::uint32_t* rows =
              it.tap_rows.data() + static_cast<std::size_t>(j) * m;
          for (unsigned r = 0; r < m; ++r) {
            W acc{};
            // The tap-matrix row is a scalar plane-selection mask, but
            // it iterates through the same set-lane walker as the lane
            // masks so no raw bit twiddling leaks out of
            // mem/lane_word.hpp.
            mem::for_each_set_lane(static_cast<std::uint64_t>(rows[r]),
                                   [&](unsigned p) { acc ^= w[p]; });
            fb[r] ^= acc;
          }
        }
      }
      ram.write_word(traj[q + kk].addr, fb);
    }

    // Verdict: Fin read-back against Fin*, Init re-read against the
    // seed — any lane deviating in any plane is detected.
    for (unsigned j = 0; j < kk; ++j) {
      ram.read_word(traj[n - kk + j].addr, w);
      for (unsigned b = 0; b < m; ++b) {
        mismatch |= w[b] ^ mem::lane_broadcast<W>(static_cast<unsigned>(
                               (traj[n - kk + j].golden >> b) & 1U));
      }
      if (use_misr) misr_shift(w);
    }
    for (unsigned j = 0; j < kk; ++j) {
      ram.read_word(traj[j].addr, w);
      for (unsigned b = 0; b < m; ++b) {
        mismatch |= w[b] ^ mem::lane_broadcast<W>(
                               static_cast<unsigned>((traj[j].golden >> b) & 1U));
      }
      if (use_misr) misr_shift(w);
    }

    if (it.has_verify) {
      // The pause advances the packed clock so retention lanes decay
      // analytically at the first verify read past the boundary.
      if (it.pause_ticks != 0) ram.advance_time(it.pause_ticks);
      const OpRec* img = t.recs.data() + it.verify_begin;
      for (mem::Addr a = 0; a < n; ++a) {
        compare(img[a].addr, img[a].golden);
        if (options.early_abort && !mem::lane_any(pending & ~mismatch)) break;
      }
    }
    if (use_misr) {
      for (unsigned b = 0; b < misr_width; ++b) {
        mismatch |= misr[b] ^ mem::lane_broadcast<W>(static_cast<unsigned>(
                                  (it.misr_expected >> b) & 1U));
      }
    }

    if (options.early_abort) {
      const W newly = pending & mismatch;
      verdict.scalar_ops +=
          static_cast<std::uint64_t>(mem::lane_popcount(newly)) * it.ops_end();
      pending &= ~mismatch;
      if (!mem::lane_any(pending)) {
        verdict.detected = mismatch;
        return verdict;
      }
    }
  }
  const W full = options.early_abort ? pending : active;
  verdict.scalar_ops +=
      static_cast<std::uint64_t>(mem::lane_popcount(full)) * t.total_ops();
  verdict.detected = mismatch;
  return verdict;
}

}  // namespace

template <typename W>
PackedVerdictT<W> run_prt_packed(mem::PackedFaultRamT<W>& ram,
                                 const OpTranscript& t,
                                 const PackedRunOptions& options,
                                 PackedScratchT<W>& scratch) {
  assert(!t.iterations.empty());
  assert(t.n == ram.size());
  assert(t.width == ram.width());
  if (t.width > 1) return run_prt_packed_word(ram, t, options, scratch);
  const mem::Addr n = t.n;
  const bool use_misr = t.misr_poly != 0;
  const unsigned misr_width =
      use_misr ? static_cast<unsigned>(poly_degree(t.misr_poly)) : 0;
  if (scratch.misr.size() < misr_width) scratch.misr.resize(misr_width);
  W* misr = scratch.misr.data();

  const W active = ram.active_mask();
  PackedVerdictT<W> verdict;
  W mismatch{};
  // Active lanes whose mismatch has not latched yet; a detected lane
  // is retired immediately (its verdict is final), and the run stops
  // once every active lane is retired.
  W pending = active;

  for (const PrtIterSpan& it : t.iterations) {
    const OpRec* traj = t.recs.data() + it.traj_begin;
    const unsigned kk = it.k;
    // The lanes' independent MISRs, bit-sliced: state bit b of all
    // lanes lives in misr[b], so one shift costs O(width) lane-wide
    // XORs instead of per-lane scalar shifts.  Mirrors
    // lfsr::Misr::shift exactly.
    if (use_misr) std::fill_n(misr, misr_width, W{});
    auto misr_shift = [&](const W& input) {
      const W msb = misr[misr_width - 1];
      for (unsigned b = misr_width; b-- > 1;) {
        misr[b] = misr[b - 1] ^ (((t.misr_poly >> b) & 1U) ? msb : W{});
      }
      misr[0] = ((((t.misr_poly & 1U) != 0) ? msb : W{})) ^ input;
    };

    // Initialization: broadcast the seed values to every lane.
    for (unsigned j = 0; j < kk; ++j) {
      ram.write(traj[j].addr, mem::lane_broadcast<W>(traj[j].golden));
    }

    // Sweep: each lane's feedback is the XOR of its own window reads
    // selected by the transcript's feedback mask (Eq. 1 over GF(2)),
    // accumulated inline — no window buffer.  Nothing latches during
    // the sweep, so there is no abort point inside it.
    for (mem::Addr q = 0; q + kk < n; ++q) {
      W fb{};
      for (unsigned j = 0; j < kk; ++j) {
        const W w = ram.read(traj[q + j].addr);
        if (use_misr) misr_shift(w);
        if ((it.fb_mask >> j) & 1U) fb ^= w;
      }
      ram.write(traj[q + kk].addr, fb);
    }

    // Verdict: Fin read-back against Fin*, Init re-read against the
    // seed — any deviating lane is detected.
    for (unsigned j = 0; j < kk; ++j) {
      const W raw = ram.read(traj[n - kk + j].addr);
      mismatch |= raw ^ mem::lane_broadcast<W>(traj[n - kk + j].golden);
      if (use_misr) misr_shift(raw);
    }
    for (unsigned j = 0; j < kk; ++j) {
      const W raw = ram.read(traj[j].addr);
      mismatch |= raw ^ mem::lane_broadcast<W>(traj[j].golden);
      if (use_misr) misr_shift(raw);
    }

    if (it.has_verify) {
      // The pause advances the packed clock: retention lanes decay
      // analytically at the first verify read past the boundary.
      if (it.pause_ticks != 0) ram.advance_time(it.pause_ticks);
      const OpRec* img = t.recs.data() + it.verify_begin;
      for (mem::Addr a = 0; a < n; ++a) {
        mismatch |=
            ram.read(img[a].addr) ^ mem::lane_broadcast<W>(img[a].golden);
        // Once every pending lane has latched, the rest of the verify
        // pass cannot change any verdict (the latch is monotone and
        // verify reads do not feed the MISR) — skip it.  The reported
        // ops stay the scalar-equivalent complete-iteration count.
        if (options.early_abort && !mem::lane_any(pending & ~mismatch)) break;
      }
    }
    if (use_misr) {
      // Lanes whose signature differs from the golden scalar signature.
      for (unsigned b = 0; b < misr_width; ++b) {
        mismatch |= misr[b] ^ mem::lane_broadcast<W>(static_cast<unsigned>(
                                  (it.misr_expected >> b) & 1U));
      }
    }

    if (options.early_abort) {
      // Lanes that latched this iteration ran, scalar-equivalently,
      // every iteration up to and including this one — the
      // transcript's abort-op prefix sum.
      const W newly = pending & mismatch;
      verdict.scalar_ops +=
          static_cast<std::uint64_t>(mem::lane_popcount(newly)) * it.ops_end();
      pending &= ~mismatch;
      if (!mem::lane_any(pending)) {
        verdict.detected = mismatch;
        return verdict;
      }
    }
  }
  // Remaining lanes (all active lanes when early_abort is off) ran the
  // complete scheme.
  const W full = options.early_abort ? pending : active;
  verdict.scalar_ops +=
      static_cast<std::uint64_t>(mem::lane_popcount(full)) * t.total_ops();
  verdict.detected = mismatch;
  return verdict;
}

template PackedVerdictT<mem::LaneWord> run_prt_packed(
    mem::PackedFaultRamT<mem::LaneWord>&, const OpTranscript&,
    const PackedRunOptions&, PackedScratchT<mem::LaneWord>&);
template PackedVerdictT<mem::WideWord<4>> run_prt_packed(
    mem::PackedFaultRamT<mem::WideWord<4>>&, const OpTranscript&,
    const PackedRunOptions&, PackedScratchT<mem::WideWord<4>>&);
template PackedVerdictT<mem::WideWord<8>> run_prt_packed(
    mem::PackedFaultRamT<mem::WideWord<8>>&, const OpTranscript&,
    const PackedRunOptions&, PackedScratchT<mem::WideWord<8>>&);

PackedVerdict run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle,
                             const PackedRunOptions& options) {
  assert(prt_scheme_packable(scheme));
  assert(oracle.n == ram.size());
  const OpTranscript transcript = make_op_transcript(scheme, oracle);
  PackedScratch scratch;
  return run_prt_packed(ram, transcript, options, scratch);
}

std::uint64_t run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle) {
  return run_prt_packed(ram, scheme, oracle, PackedRunOptions{}).detected;
}

}  // namespace prt::core
