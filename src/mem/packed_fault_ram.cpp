#include "mem/packed_fault_ram.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace prt::mem {

bool lane_compatible(const Fault& fault) {
  if (fault.victim.bit != 0) return false;
  switch (fault.kind) {
    case FaultKind::kSaf0:
    case FaultKind::kSaf1:
    case FaultKind::kTfUp:
    case FaultKind::kTfDown:
    case FaultKind::kWdf:
    case FaultKind::kRdf:
    case FaultKind::kDrdf:
    case FaultKind::kIrf:
    case FaultKind::kSof:
      return true;
    default:
      return false;
  }
}

PackedFaultRam::PackedFaultRam(Addr cells)
    : size_(cells), data_(cells, 0), slot_of_cell_(cells, -1) {
  if (cells < 1) {
    throw std::invalid_argument("PackedFaultRam: cells must be >= 1");
  }
  slots_.reserve(kLanes);
  dirty_cells_.reserve(kLanes);
}

void PackedFaultRam::reset() {
  std::fill(data_.begin(), data_.end(), LaneWord{0});
  for (const Addr cell : dirty_cells_) slot_of_cell_[cell] = -1;
  slots_.clear();
  dirty_cells_.clear();
  lanes_used_ = 0;
  last_read_ = 0;
  reads_ = 0;
  writes_ = 0;
}

PackedFaultRam::CellFaults& PackedFaultRam::slot_for(Addr cell) {
  if (slot_of_cell_[cell] < 0) {
    slot_of_cell_[cell] = static_cast<std::int16_t>(slots_.size());
    slots_.emplace_back();
    dirty_cells_.push_back(cell);
  }
  return slots_[static_cast<std::size_t>(slot_of_cell_[cell])];
}

unsigned PackedFaultRam::add_fault(const Fault& fault) {
  if (!lane_compatible(fault)) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: fault is not lane-compatible: " +
        fault.describe());
  }
  if (fault.victim.cell >= size_) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: victim out of range: " +
        fault.describe());
  }
  if (lanes_used_ >= kLanes) {
    throw std::length_error("PackedFaultRam::add_fault: all 64 lanes taken");
  }
  const unsigned lane = lanes_used_++;
  const LaneWord mask = LaneWord{1} << lane;
  CellFaults& f = slot_for(fault.victim.cell);
  switch (fault.kind) {
    case FaultKind::kSaf0:
      f.saf0 |= mask;
      // Stuck-at victims hold from injection, matching FaultyRam.
      data_[fault.victim.cell] &= ~mask;
      break;
    case FaultKind::kSaf1:
      f.saf1 |= mask;
      data_[fault.victim.cell] |= mask;
      break;
    case FaultKind::kTfUp:
      f.tf_up |= mask;
      break;
    case FaultKind::kTfDown:
      f.tf_down |= mask;
      break;
    case FaultKind::kWdf:
      f.wdf |= mask;
      break;
    case FaultKind::kRdf:
      f.rdf |= mask;
      break;
    case FaultKind::kDrdf:
      f.drdf |= mask;
      break;
    case FaultKind::kIrf:
      f.irf |= mask;
      break;
    case FaultKind::kSof:
      f.sof |= mask;
      break;
    default:
      break;  // unreachable: lane_compatible() filtered
  }
  return lane;
}

LaneWord PackedFaultRam::read(Addr addr) {
  assert(addr < size_);
  ++reads_;
  LaneWord value = data_[addr];
  const std::int16_t slot = slot_of_cell_[addr];
  if (slot >= 0) {
    const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
    // RDF: the cell flips and the sense amp sees the flipped value.
    value ^= f.rdf;
    // DRDF: the correct value is returned, the cell flips behind the
    // reader's back.
    data_[addr] = value ^ f.drdf;
    // IRF: inverted data on the bus, cell untouched.
    value ^= f.irf;
    // SOF: the open cell echoes the sense amp's previous read.
    value = (value & ~f.sof) | (last_read_ & f.sof);
  }
  last_read_ = value;
  return value;
}

void PackedFaultRam::write(Addr addr, LaneWord value) {
  assert(addr < size_);
  ++writes_;
  const LaneWord old = data_[addr];
  LaneWord nb = value;
  const std::int16_t slot = slot_of_cell_[addr];
  if (slot >= 0) {
    // The per-kind masks are lane-disjoint (one fault per lane), so the
    // sequential updates below never interact across kinds.
    const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
    nb ^= f.wdf & ~(old ^ nb);   // WDF: non-transition write disturbs
    nb &= ~(f.tf_up & ~old);     // TF up: 0 -> 1 writes fail
    nb |= f.tf_down & old;       // TF down: 1 -> 0 writes fail
    nb = (nb & ~f.saf0) | f.saf1;
  }
  data_[addr] = nb;
}

}  // namespace prt::mem
