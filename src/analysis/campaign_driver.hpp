// The one generic campaign driver both public campaign types are
// instances of.
//
// CampaignEngine (PRT schemes) and MarchCampaign (March tests) used to
// each own a copy of the same machinery: option plumbing, oracle /
// transcript construction, a lazily spun-up worker pool, the
// scalar-vs-lane-batched shard loop and the packed-enabled predicate.
// This header collapses that shape into one core:
//
//   CampaignDriver<Workload>  — options validation, the lazy pool, the
//     sharded run() and the per-shard scalar/packed dispatch, written
//     once over the campaign_shard.hpp loops;
//   PrtWorkload / MarchWorkload — the only parts that differ: how the
//     golden artifacts are fetched from the analysis::OracleCache, how
//     one fault runs scalar, how one 64-lane batch runs packed, and
//     whether the workload is lane-packable at all.
//
// The public classes in campaign_engine.hpp / march_campaign.hpp are
// thin facades over a driver instance; their results are bit-identical
// to what the pre-unification engines produced (the parity suites in
// tests/ pin this).  CampaignSuite (campaign_suite.hpp) drives the
// same workloads shard-by-shard on its own flattened schedule.
//
// Header is internal to analysis/ (included by the campaign .cpp files
// only); the public surfaces are campaign_engine.hpp,
// march_campaign.hpp and campaign_suite.hpp.  See DESIGN.md §10.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "analysis/campaign_engine.hpp"
#include "analysis/campaign_shard.hpp"
#include "analysis/march_campaign.hpp"
#include "analysis/oracle_cache.hpp"
#include "core/prt_packed.hpp"
#include "march/march_runner.hpp"
#include "mem/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis::detail {

/// The engine-option shape shared by every campaign type.
/// EngineOptions / MarchEngineOptions translate into this (plus their
/// workload-specific knobs, which live in the workload).
struct DriverOptions {
  /// Worker count; 0 defers to the PRT_THREADS environment override,
  /// then the hardware concurrency (util::default_worker_count).
  unsigned threads = 0;
  /// Fan the universe out over the pool.  Off = one shard, inline on
  /// the calling thread.
  bool parallel = true;
  /// Batch lane-compatible faults one lane-word sweep at a time on a
  /// bit-packed mem::PackedFaultRamT when the workload permits
  /// (Workload::packable()).  Results stay bit-identical to the
  /// all-scalar path.
  bool packed = true;
  /// Stop each fault's run at its first failure.  Verdicts, coverage
  /// and escapes are unchanged; CampaignResult::ops shrinks to the
  /// abort-aware scalar reference cost (packed lanes retire with
  /// analytic per-lane op accounting).
  bool early_abort = false;
  /// Packed lane width: 64, 256, 512, or 0 for
  /// mem::default_lane_width().  Per shard the driver dispatches the
  /// widest word the shard's fault range can fill at least half of,
  /// falling back to 64 otherwise; every width produces bit-identical
  /// results (the instantiations share one templated replay), so this
  /// knob moves only throughput and sched telemetry.  Validated by the
  /// driver constructor.
  unsigned lane_width = 0;
};

/// PRT-scheme workload: golden artifacts from OracleCache::prt, scalar
/// runs over the transcript replay (GF(2)) or the live oracle path,
/// packed batches over core::run_prt_packed.
class PrtWorkload {
 public:
  /// `use_oracle` off re-derives the scheme per fault like the legacy
  /// path (bench baseline only).  Throws std::invalid_argument on
  /// malformed `opt` (validate_campaign_options).
  PrtWorkload(core::PrtScheme scheme, const CampaignOptions& opt,
              bool early_abort, bool use_oracle, OracleCache& cache)
      : scheme_(std::move(scheme)),
        early_abort_(early_abort),
        use_oracle_(use_oracle) {
    validate_campaign_options(opt);
    entry_ = cache.prt(scheme_, opt.n);
    // Lane batching needs the campaign word width to equal the
    // scheme's field degree: the packed ram then carries one bit plane
    // per field bit and the transcript's tap matrices line up.
    packable_ = entry_->packable && entry_->transcript.width == opt.m;
  }

  /// Per-shard mutable state: one rewindable FaultyRam and the packed
  /// replay scratches (one per lane width the dispatch may pick; the
  /// unused ones never allocate — PackedScratchT vectors grow on first
  /// use), owned by exactly one worker at a time.
  struct ShardState {
    explicit ShardState(const CampaignOptions& opt)
        : ram(opt.n, opt.m, opt.ports) {}
    mem::FaultyRam ram;
    core::PackedScratchT<mem::LaneWord> scratch64;
    core::PackedScratchT<mem::WideWord<4>> scratch256;
    core::PackedScratchT<mem::WideWord<8>> scratch512;
    template <typename W>
    core::PackedScratchT<W>& scratch() {
      if constexpr (std::is_same_v<W, mem::WideWord<8>>) {
        return scratch512;
      } else if constexpr (std::is_same_v<W, mem::WideWord<4>>) {
        return scratch256;
      } else {
        return scratch64;
      }
    }
  };

  /// Lane batching permitted: oracle-backed runs whose word width
  /// matches the scheme's field degree (GF(2) and GF(2^m) alike).
  [[nodiscard]] bool packable() const { return use_oracle_ && packable_; }

  /// Runs one fault scalar; returns detected, charges its ops.
  bool run_fault(ShardState& s, const mem::Fault& fault,
                 std::uint64_t& ops) const {
    s.ram.reset(fault);
    const core::PrtRunOptions run{.early_abort = early_abort_,
                                  .record_iterations = false};
    // Oracle-backed packable runs replay the compiled transcript (no
    // oracle indirection, FaultyRam devirtualized); other
    // configurations keep the live paths.
    const bool detected =
        use_oracle_ && packable_
            ? core::run_prt_transcript(s.ram, entry_->transcript, run)
                  .detected()
        : use_oracle_
            ? core::run_prt(s.ram, scheme_, entry_->oracle, run).detected()
            : core::run_prt(s.ram, scheme_).detected();
    ops += s.ram.total_stats().total();
    return detected;
  }

  /// Runs one flushed lane batch at the batch's width; returns
  /// {detected lane word, ops to charge for the whole batch} —
  /// scalar_ops reproduces, per lane, exactly what the scalar path
  /// would have issued for that fault.
  template <typename W>
  std::pair<W, std::uint64_t> run_batch(
      ShardState& s, mem::PackedFaultRamT<W>& batch) const {
    const core::PackedRunOptions run{.early_abort = early_abort_};
    const core::PackedVerdictT<W> v = core::run_prt_packed(
        batch, entry_->transcript, run, s.template scratch<W>());
    return {v.detected & batch.active_mask(), v.scalar_ops};
  }

  [[nodiscard]] const core::PrtScheme& scheme() const { return scheme_; }
  [[nodiscard]] const core::PrtOracle& oracle() const {
    return entry_->oracle;
  }
  [[nodiscard]] const std::string& name() const { return scheme_.name; }

 private:
  core::PrtScheme scheme_;
  std::shared_ptr<const OracleCache::PrtEntry> entry_;
  bool early_abort_;
  bool use_oracle_;
  bool packable_ = false;
};

/// March-test workload: transcript from OracleCache::march when the
/// campaign is bit-oriented, the live background sweep otherwise.
class MarchWorkload {
 public:
  /// Throws std::invalid_argument on malformed `opt` and on March
  /// tests whose data indices fall outside the {0, 1} notation (a
  /// data index the background expansion cannot represent).
  MarchWorkload(march::MarchTest test, const CampaignOptions& opt,
                bool early_abort, OracleCache& cache)
      : test_(std::move(test)),
        early_abort_(early_abort),
        bit_oriented_(opt.m == 1) {
    validate_campaign_options(opt);
    for (const march::MarchElement& elem : test_.elements) {
      for (const march::MarchOp& op : elem.ops) {
        if (op.data > 1) {
          throw std::invalid_argument(
              "MarchCampaign: op data index must be 0 or 1, got " +
              std::to_string(op.data));
        }
      }
    }
    backgrounds_ = march::standard_backgrounds(opt.m);
    // standard_backgrounds' contract: every background fits the m-bit
    // word.  A wider word would silently mis-expand data index 1
    // (~background) — reject it here, not in a worker thread.
    for (const mem::Word bg : backgrounds_) {
      if (opt.m < 32 && (bg >> opt.m) != 0) {
        throw std::invalid_argument(
            "MarchCampaign: background " + std::to_string(bg) +
            " wider than the m = " + std::to_string(opt.m) + " word");
      }
    }
    // m = 1 has the single background 0, so one compiled transcript
    // covers the whole background set march_algorithm runs.
    if (bit_oriented_) {
      entry_ = cache.march(test_, opt.n, /*background=*/false);
    }
  }

  struct ShardState {
    explicit ShardState(const CampaignOptions& opt)
        : ram(opt.n, opt.m, opt.ports) {}
    mem::FaultyRam ram;
  };

  [[nodiscard]] bool packable() const { return bit_oriented_; }

  bool run_fault(ShardState& s, const mem::Fault& fault,
                 std::uint64_t& ops) const {
    s.ram.reset(fault);
    const march::MarchRunOptions run{.early_abort = early_abort_};
    // m = 1 replays the compiled transcript (devirtualized FaultyRam,
    // no element/op re-derivation); wider words sweep the live
    // background set.
    const bool detected =
        bit_oriented_
            ? march::run_march_transcript(s.ram, entry_->transcript, run).fail
            : march::run_march_backgrounds(test_, s.ram, backgrounds_, run)
                  .fail;
    ops += s.ram.total_stats().total();
    return detected;
  }

  template <typename W>
  std::pair<W, std::uint64_t> run_batch(ShardState&,
                                        mem::PackedFaultRamT<W>& batch) const {
    const march::MarchRunOptions run{.early_abort = early_abort_};
    const march::MarchPackedVerdictT<W> v =
        march::run_march_packed(batch, entry_->transcript, run);
    return {v.detected & batch.active_mask(), v.scalar_ops};
  }

  [[nodiscard]] const march::MarchTest& test() const { return test_; }
  [[nodiscard]] const std::string& name() const { return test_.name; }

 private:
  march::MarchTest test_;
  std::vector<mem::Word> backgrounds_;
  std::shared_ptr<const OracleCache::MarchEntry> entry_;
  bool early_abort_;
  bool bit_oriented_;
};

/// The generic driver: validated options, lazy pool, sharded fan-out
/// with the order-deterministic merge, per-shard scalar/packed
/// dispatch.  Workload supplies the four campaign-type-specific hooks
/// (ShardState, packable, run_fault, run_batch).
template <typename Workload>
class CampaignDriver {
 public:
  /// Throws std::invalid_argument when drv.lane_width is not one of
  /// {0, 64, 256, 512} — before any worker or memory is constructed,
  /// like validate_campaign_options.
  CampaignDriver(Workload workload, const CampaignOptions& opt,
                 const DriverOptions& drv)
      : workload_(std::move(workload)), opt_(opt), drv_(drv) {
    if (drv.lane_width != 0 && drv.lane_width != 64 &&
        drv.lane_width != 256 && drv.lane_width != 512) {
      throw std::invalid_argument(
          "CampaignDriver: lane_width must be 0, 64, 256 or 512, got " +
          std::to_string(drv.lane_width));
    }
  }

  CampaignDriver(const CampaignDriver&) = delete;
  CampaignDriver& operator=(const CampaignDriver&) = delete;

  /// True when runs may route lane-compatible faults through the
  /// packed path (workload + options both allow it).
  [[nodiscard]] bool packed_enabled() const {
    return drv_.packed && workload_.packable();
  }

  /// The lane width runs request: the explicit option, else
  /// mem::default_lane_width().  Shards still fall back to 64 when
  /// their fault range cannot fill half the wide lanes (run_shard).
  [[nodiscard]] unsigned effective_lane_width() const {
    return drv_.lane_width != 0 ? drv_.lane_width
                                : mem::default_lane_width();
  }

  /// Fills one shard over universe indices [begin, end).  Stateless
  /// across calls (fresh ShardState per shard), so any contiguous
  /// ascending partition merges — in shard order — to the same
  /// CampaignResult; CampaignSuite and CampaignService call this
  /// directly on their own schedules.  Polls `stop` per fault; returns
  /// false (discard `out`, it is partial) once a stop is observed.
  ///
  /// Width dispatch: the widest requested lane word the range can fill
  /// at least half of — a 512-lane sweep needs >= 256 faults in the
  /// range, a 256-lane sweep >= 128 — else the 64-lane word (wide
  /// words on a thin batch would burn whole-word XORs on mostly-empty
  /// lanes).  The choice is per shard and verdict-neutral: all
  /// instantiations share one templated replay, so `out` is
  /// bit-identical whichever word runs.
  bool run_shard(std::span<const mem::Fault> universe, std::size_t begin,
                 std::size_t end, CampaignResult& out,
                 const util::StopToken& stop = {}) const {
    if (packed_enabled()) {
      const std::size_t range = end - begin;
      const unsigned width = effective_lane_width();
      if (width >= 512 && range >= 256) {
        return run_shard_impl<mem::WideWord<8>>(universe, begin, end, out,
                                                stop);
      }
      if (width >= 256 && range >= 128) {
        return run_shard_impl<mem::WideWord<4>>(universe, begin, end, out,
                                                stop);
      }
    }
    return run_shard_impl<mem::LaneWord>(universe, begin, end, out, stop);
  }

  /// Simulates every fault of the universe; identical CampaignResult
  /// regardless of thread count.  Not safe to call concurrently on one
  /// driver (workers share its pool); distinct drivers are
  /// independent.
  [[nodiscard]] CampaignResult run(
      std::span<const mem::Fault> universe) const {
    // A default token never stops, so the outcome is always complete
    // and its result bit-identical to the pre-cancellation driver.
    return run_stoppable(universe, util::StopToken()).result;
  }

  /// Cancellable run: shards poll `stop` per fault, interrupted shards
  /// are discarded whole, and the outcome carries the merge of the
  /// completed shards plus why the run ended (fault_sim.hpp
  /// CampaignOutcome).  Same concurrency contract as run().
  [[nodiscard]] CampaignOutcome run_stoppable(
      std::span<const mem::Fault> universe,
      const util::StopToken& stop) const {
    const unsigned workers =
        drv_.threads != 0 ? drv_.threads : util::default_worker_count();
    // Steal-queue batch = 4 lane sweeps at the requested width: big
    // enough that per-batch ShardState construction amortizes, small
    // enough (vs universe/workers chunks) that idle workers find
    // batches to steal — and every batch above the fallback threshold
    // fills its wide lanes.  Boundaries depend only on universe size
    // and this constant, so results stay bit-identical at any thread
    // count.
    const std::size_t batch =
        static_cast<std::size_t>(effective_lane_width()) * 4;
    return run_sharded(
        universe.size(), workers, drv_.parallel, batch, pool_,
        [&](std::size_t begin, std::size_t end, CampaignResult& out) {
          return run_shard(universe, begin, end, out, stop);
        },
        stop);
  }

  [[nodiscard]] const Workload& workload() const { return workload_; }
  [[nodiscard]] const CampaignOptions& options() const { return opt_; }
  [[nodiscard]] const DriverOptions& driver_options() const { return drv_; }

 private:
  /// The width-concrete shard loop behind run_shard's dispatch.
  template <typename W>
  bool run_shard_impl(std::span<const mem::Fault> universe, std::size_t begin,
                      std::size_t end, CampaignResult& out,
                      const util::StopToken& stop) const {
    typename Workload::ShardState state(opt_);
    auto run_scalar = [&](std::size_t i) {
      return workload_.run_fault(state, universe[i], out.ops);
    };
    if (!packed_enabled()) {
      return scalar_shard(universe, begin, end, out, run_scalar, stop);
    }
    mem::PackedFaultRamT<W> packed(opt_.n, opt_.m);
    auto run_batch = [&](mem::PackedFaultRamT<W>& batch) {
      return workload_.run_batch(state, batch);
    };
    return lane_batched_shard(universe, begin, end, packed, out, run_batch,
                              run_scalar, stop);
  }

  Workload workload_;
  CampaignOptions opt_;
  DriverOptions drv_;
  /// Worker pool, spun up on the first parallel run() and reused —
  /// repeated campaigns pay thread spawn/join once, not per call.
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

using PrtDriver = CampaignDriver<PrtWorkload>;
using MarchDriver = CampaignDriver<MarchWorkload>;

/// The one construction path every public campaign surface goes
/// through (CampaignEngine, MarchCampaign, CampaignSuite): translate
/// the public option struct, build the workload against the shared
/// cache, wrap it in a driver.
[[nodiscard]] inline DriverOptions to_driver_options(
    const EngineOptions& engine) {
  return {.threads = engine.threads,
          .parallel = engine.parallel,
          .packed = engine.packed,
          .early_abort = engine.early_abort,
          .lane_width = engine.lane_width};
}

[[nodiscard]] inline DriverOptions to_driver_options(
    const MarchEngineOptions& engine) {
  return {.threads = engine.threads,
          .parallel = engine.parallel,
          .packed = engine.packed,
          .early_abort = engine.early_abort,
          .lane_width = engine.lane_width};
}

[[nodiscard]] inline std::unique_ptr<PrtDriver> make_driver(
    core::PrtScheme scheme, const CampaignOptions& opt,
    const EngineOptions& engine) {
  return std::make_unique<PrtDriver>(
      PrtWorkload(std::move(scheme), opt, engine.early_abort,
                  engine.use_oracle, OracleCache::global()),
      opt, to_driver_options(engine));
}

[[nodiscard]] inline std::unique_ptr<MarchDriver> make_driver(
    march::MarchTest test, const CampaignOptions& opt,
    const MarchEngineOptions& engine) {
  return std::make_unique<MarchDriver>(
      MarchWorkload(std::move(test), opt, engine.early_abort,
                    OracleCache::global()),
      opt, to_driver_options(engine));
}

}  // namespace prt::analysis::detail
