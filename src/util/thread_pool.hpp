// Small fixed-size worker pool for fan-out/fan-in workloads.
//
// The fault-simulation campaigns (analysis/campaign_engine) shard a
// fault universe over a hardware-concurrency-sized pool and merge the
// per-worker partial results in shard order, so parallel output is
// bit-identical to the serial path.  The pool is deliberately minimal:
// fixed worker count, a mutex-guarded task queue, and a blocking
// `parallel_for_chunks` helper that fans N items out as W contiguous
// chunks — no futures, no work stealing.
//
// Lock discipline is machine-checked: every shared field is
// GUARDED_BY the pool mutex and CI's clang lane compiles this header
// with -Wthread-safety -Werror (see util/annotations.hpp).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/fail_point.hpp"

namespace prt::util {

/// First-exception collector for task fan-outs: workers run their
/// bodies through guard(), the submitting thread rethrows after the
/// fan-out drains.  An exception escaping a worker thread would
/// otherwise std::terminate the process.  Shared by
/// ThreadPool::parallel_for_chunks and the campaign suite's flattened
/// schedule (analysis/campaign_suite).
class ErrorCollector {
 public:
  /// Runs fn, capturing the first exception (in completion order).
  template <typename Fn>
  void guard(Fn&& fn) noexcept {
    try {
      fn();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  /// Rethrows the captured exception, if any.  Safe to call while
  /// guarded tasks may still be running, but only a call that
  /// happens-after every guard() (e.g. after wait_idle()) is
  /// guaranteed to observe their exceptions.
  void rethrow_if_any() {
    std::exception_ptr error;
    {
      MutexLock lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mutex_;
  std::exception_ptr error_ PRT_GUARDED_BY(mutex_);
};

/// Splits [0, total) into `parts` contiguous ascending chunks — dense
/// chunk indices, sizes differing by at most one — and calls
/// fn(chunk, begin, end) for each, synchronously.  This is THE
/// partition shape every campaign merge relies on (contiguous
/// ascending ranges folded in chunk order are what make parallel
/// results bit-identical to serial ones); keep every fan-out on this
/// one splitter.  parts is clamped to [1, total]; total = 0 calls
/// nothing.
template <typename Fn>
void for_each_chunk(std::size_t total, std::size_t parts, Fn&& fn) {
  if (total == 0) return;
  const std::size_t w = std::min(std::max<std::size_t>(parts, 1), total);
  const std::size_t base = total / w;
  const std::size_t extra = total % w;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t end = begin + base + (i < extra ? 1 : 0);
    fn(static_cast<unsigned>(i), begin, end);
    begin = end;
  }
}

/// Default worker count for pools and campaign fan-out: the
/// PRT_THREADS environment variable when set to a positive integer
/// (benches and CI pin it for reproducible runs), else the hardware
/// concurrency, minimum 1.
[[nodiscard]] inline unsigned default_worker_count() {
  if (const char* env = std::getenv("PRT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class ThreadPool {
 public:
  /// `workers == 0` sizes the pool to default_worker_count() (the
  /// PRT_THREADS override, else the hardware concurrency, minimum 1).
  explicit ThreadPool(unsigned workers = 0) {
    if (workers == 0) workers = default_worker_count();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues a task.  Tasks must not themselves block on the pool.
  /// A task that throws does not kill the worker or wedge wait_idle():
  /// the first escaped exception is captured (take_unhandled_error())
  /// and the worker keeps draining — structured fan-outs that need
  /// their errors rethrown on the submitter wrap tasks in an
  /// ErrorCollector instead (parallel_for_chunks does).
  void submit(std::function<void()> task) PRT_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      tasks_.push(std::move(task));
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void wait_idle() PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!tasks_.empty() || active_ != 0) idle_.wait(lock);
  }

  /// Returns (and clears) the first exception that escaped a raw
  /// submit() task, if any.  Call after wait_idle() when the caller
  /// wants to surface unguarded task failures instead of dropping
  /// them.
  //
  // Invariant (exchange-under-lock, beyond what GUARDED_BY states):
  // `unhandled_` is first-write-wins (workers only store into a null
  // slot) and exactly-once on the way out — concurrent takers race
  // through this one exchange, so one of them receives the exception
  // and the rest see nullptr; the error is never duplicated or
  // dropped (pinned by ThreadPool.
  // ConcurrentTakeUnhandledErrorHandsOutExactlyOnce).
  [[nodiscard]] std::exception_ptr take_unhandled_error()
      PRT_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return std::exchange(unhandled_, nullptr);
  }

  /// Splits [0, total) into one contiguous chunk per worker and runs
  /// `fn(chunk_index, begin, end)` on the pool, blocking until all
  /// chunks are done.  Chunk `i` covers a contiguous, ascending index
  /// range, and chunk indices are dense in [0, chunks), so callers can
  /// merge per-chunk results deterministically regardless of which
  /// worker ran them or in which order they finished.  If any chunk
  /// throws, the first exception (in completion order) is rethrown on
  /// the calling thread after every chunk has finished — an exception
  /// escaping a worker thread would otherwise std::terminate the
  /// process.
  void parallel_for_chunks(
      std::size_t total,
      const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
    ErrorCollector errors;
    for_each_chunk(total, workers(),
                   [&](unsigned i, std::size_t begin, std::size_t end) {
                     submit([&fn, &errors, i, begin, end] {
                       errors.guard([&] { fn(i, begin, end); });
                     });
                   });
    wait_idle();
    errors.rethrow_if_any();
  }

 private:
  void worker_loop() PRT_EXCLUDES(mutex_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!stopping_ && tasks_.empty()) wake_.wait(lock);
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
        ++active_;
      }
      // A throwing task must neither std::terminate the worker nor
      // skip the active_ decrement (which would deadlock wait_idle()
      // and the destructor with tasks still queued).  The "fail point"
      // hook lets tests inject exactly that throw into an otherwise
      // well-behaved task stream.
      try {
        FailPoint::hit("thread_pool.task");
        task();
      } catch (...) {
        MutexLock lock(mutex_);
        if (!unhandled_) unhandled_ = std::current_exception();
      }
      {
        MutexLock lock(mutex_);
        --active_;
      }
      idle_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar wake_;
  CondVar idle_;
  std::queue<std::function<void()>> tasks_ PRT_GUARDED_BY(mutex_);
  std::size_t active_ PRT_GUARDED_BY(mutex_) = 0;
  bool stopping_ PRT_GUARDED_BY(mutex_) = false;
  std::exception_ptr unhandled_ PRT_GUARDED_BY(mutex_);
};

}  // namespace prt::util
