// Fault-universe generation for coverage campaigns.
//
// The paper's §3 claim ("all single and multi-cell memory faults are
// detected in 3 pi-test iterations") is evaluated by exhaustively
// enumerating the standard single-cell universe and the two-cell
// coupling universe, plus decoder faults; larger configurations are
// sampled deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/fault.hpp"
#include "util/rng.hpp"

namespace prt::mem {

/// Options shaping the enumerated universe.
struct UniverseOptions {
  bool single_cell = true;     // SAF, TF, WDF
  bool read_logic = true;      // RDF, DRDF, IRF, SOF
  bool coupling = true;        // CFin, CFid, CFst
  bool bridges = true;         // wired-AND/OR
  bool address_decoder = true; // AF x 3 kinds
  bool npsf = false;           // static NPSF (grid memories only)
  /// Enumerate all ordered aggressor/victim cell pairs when
  /// n*(n-1) <= coupling_pair_limit, otherwise sample this many pairs.
  std::uint64_t coupling_pair_limit = 1 << 16;
  /// For word-oriented memories, also generate *intra-word* coupling
  /// faults (aggressor and victim bits inside the same cell).
  bool intra_word = true;
  /// Grid width for NPSF neighbourhoods (0 = square-ish default).  An
  /// explicit width must be >= 2 and divide n into whole rows;
  /// make_universe throws std::invalid_argument (naming the value)
  /// otherwise — a 1-cell-wide grid has no interior victims and a
  /// ragged last row has no south neighbours.
  Addr npsf_grid_cols = 0;
  /// Seed for any sampling.
  std::uint64_t seed = 0x5eedf00dULL;
};

/// Enumerates the fault universe for an n x m memory.  Throws
/// std::invalid_argument on a malformed explicit NPSF grid width (see
/// UniverseOptions::npsf_grid_cols).
[[nodiscard]] std::vector<Fault> make_universe(Addr n, unsigned m,
                                               const UniverseOptions& opt);

/// Single-cell faults only (SAF/TF/WDF + read logic), every cell/bit.
[[nodiscard]] std::vector<Fault> single_cell_universe(Addr n, unsigned m,
                                                      bool read_logic);

/// All inter-cell coupling faults on bit plane 0 for every ordered pair
/// from the given pair list.
[[nodiscard]] std::vector<Fault> coupling_universe(
    const std::vector<std::pair<Addr, Addr>>& pairs, unsigned bit);

/// Deterministic pair selection: exhaustive if small, sampled otherwise.
[[nodiscard]] std::vector<std::pair<Addr, Addr>> select_pairs(
    Addr n, std::uint64_t limit, std::uint64_t seed);

/// The classical fault model the paper's §3 claim is stated over
/// (DESIGN.md §2): SAF, TF, adjacent-cell CFin, adjacent bridges, and
/// no-access / wrong-access decoder faults, on bit plane 0 of a
/// bit-oriented memory.  O(n) faults.
[[nodiscard]] std::vector<Fault> classical_universe(Addr n);

/// The full van de Goor single+two-cell model (DESIGN.md §2): adds
/// WDF, the read-logic faults (RDF/DRDF/IRF/SOF), 4-variant CFst and
/// CFid on adjacent pairs, and multi-access decoder faults.  Still
/// O(n) faults (adjacent pairs only; make_universe enumerates the
/// all-pairs variant).
[[nodiscard]] std::vector<Fault> van_de_goor_universe(Addr n);

}  // namespace prt::mem
