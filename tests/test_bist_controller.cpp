// Tests for the cycle-accurate BIST controller (core/bist_controller):
// the netlist-level hardware view must agree with the algorithmic
// PiTester everywhere.
#include "core/bist_controller.hpp"

#include <gtest/gtest.h>

#include "core/pi_iteration.hpp"
#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

namespace prt::core {
namespace {

BistController make_bom(mem::Addr n, std::vector<gf::Elem> init,
                        TrajectoryKind traj = TrajectoryKind::kAscending) {
  return BistController(gf::GF2m(0b11), {1, 1, 1}, std::move(init),
                        Trajectory::make(traj, n));
}

BistController make_wom(mem::Addr n, std::vector<gf::Elem> init,
                        TrajectoryKind traj = TrajectoryKind::kAscending) {
  return BistController(gf::GF2m(0b10011), {1, 2, 2}, std::move(init),
                        Trajectory::make(traj, n));
}

TEST(BistController, PassesOnHealthyMemory) {
  mem::SimRam ram(64, 4);
  BistController ctrl = make_wom(64, {0, 1});
  EXPECT_TRUE(ctrl.run(ram));
  EXPECT_TRUE(ctrl.done());
}

TEST(BistController, OneOperationPerClock) {
  mem::SimRam ram(32, 1);
  BistController ctrl = make_bom(32, {1, 1});
  std::uint64_t last_total = 0;
  while (!ctrl.done()) {
    ctrl.clock(ram);
    const std::uint64_t total = ram.total_stats().total();
    EXPECT_EQ(total, last_total + 1);
    last_total = total;
  }
  EXPECT_EQ(ctrl.cycles(), last_total);
}

TEST(BistController, CyclesAreExactly3n) {
  mem::SimRam ram(100, 1);
  BistController ctrl = make_bom(100, {1, 1});
  ctrl.run(ram);
  EXPECT_EQ(ctrl.cycles(), 300u);
}

TEST(BistController, ClockAfterDoneIsNoOp) {
  mem::SimRam ram(16, 1);
  BistController ctrl = make_bom(16, {1, 1});
  ctrl.run(ram);
  const std::uint64_t cycles = ctrl.cycles();
  ctrl.clock(ram);
  EXPECT_EQ(ctrl.cycles(), cycles);
}

TEST(BistController, MemoryImageMatchesPiTester) {
  for (auto traj : {TrajectoryKind::kAscending, TrajectoryKind::kDescending,
                    TrajectoryKind::kRandom}) {
    mem::SimRam hw(77, 4);
    mem::SimRam sw(77, 4);
    BistController ctrl(gf::GF2m(0b10011), {1, 2, 2}, {3, 9},
                        Trajectory::make(traj, 77, 42));
    ctrl.run(hw);
    const PiTester tester(gf::GF2m(0b10011), {1, 2, 2});
    PiConfig cfg;
    cfg.init = {3, 9};
    cfg.trajectory = traj;
    cfg.seed = 42;
    tester.run(sw, cfg);
    EXPECT_EQ(hw.image(), sw.image()) << to_string(traj);
  }
}

TEST(BistController, VerdictMatchesPiTesterOnFaults) {
  // The netlist evaluation and the field arithmetic must return the
  // same verdict for every single-cell fault.
  const PiTester tester(gf::GF2m(0b10011), {1, 2, 2});
  PiConfig cfg;
  cfg.init = {0, 1};
  for (mem::Addr cell = 0; cell < 24; ++cell) {
    for (unsigned value : {0u, 1u}) {
      mem::FaultyRam hw(24, 4);
      mem::FaultyRam sw(24, 4);
      hw.inject(mem::Fault::saf({cell, 1}, value));
      sw.inject(mem::Fault::saf({cell, 1}, value));
      BistController ctrl = make_wom(24, {0, 1});
      const bool hw_pass = ctrl.run(hw);
      const bool sw_pass = tester.run(sw, cfg).pass;
      EXPECT_EQ(hw_pass, sw_pass) << "cell " << cell << " v " << value;
    }
  }
}

TEST(BistController, DetectsRdfViaNetlist) {
  mem::FaultyRam ram(32, 4);
  ram.inject(mem::Fault::rdf({11, 2}));
  BistController ctrl = make_wom(32, {0, 1});
  EXPECT_FALSE(ctrl.run(ram));
}

TEST(BistController, FeedbackGateCountMatchesCostModel) {
  const gf::GF2m field(0b10011);
  BistController ctrl = make_wom(16, {0, 1});
  const gf::FeedbackCost cost = gf::feedback_cost(field, {1, 2, 2});
  EXPECT_EQ(ctrl.feedback_gates(), cost.total());
}

TEST(BistController, StateSequence) {
  mem::SimRam ram(8, 1);
  BistController ctrl = make_bom(8, {1, 1});
  EXPECT_EQ(ctrl.state(), BistState::kInit);
  ctrl.clock(ram);
  ctrl.clock(ram);  // both init writes done
  EXPECT_EQ(ctrl.state(), BistState::kRead);
  ctrl.clock(ram);
  ctrl.clock(ram);  // window full
  EXPECT_EQ(ctrl.state(), BistState::kWrite);
  ctrl.clock(ram);
  EXPECT_EQ(ctrl.state(), BistState::kRead);
  while (!ctrl.done()) ctrl.clock(ram);
  EXPECT_TRUE(ctrl.pass());
}

TEST(BistController, DegreeThreeGenerator) {
  mem::SimRam ram(20, 1);
  BistController ctrl(gf::GF2m(0b11), {1, 1, 0, 1}, {1, 0, 0},
                      Trajectory::make(TrajectoryKind::kAscending, 20));
  EXPECT_TRUE(ctrl.run(ram));
  // 3 init + 4*(n-3) sweep + 3 fin + 3 init re-reads.
  EXPECT_EQ(ctrl.cycles(), 3u + 4 * 17 + 6);
}

TEST(BistController, DescendingRingClosure) {
  mem::SimRam ram(257, 4);
  BistController ctrl = make_wom(257, {0, 1}, TrajectoryKind::kDescending);
  EXPECT_TRUE(ctrl.run(ram));
  // Ring closes: the last-visited cells (addresses 1, 0) hold Init.
  EXPECT_EQ(ram.peek(1), 0u);
  EXPECT_EQ(ram.peek(0), 1u);
}

}  // namespace
}  // namespace prt::core
