#include "mem/sram.hpp"

namespace prt::mem {

SimRam::SimRam(Addr cells, unsigned width_bits, unsigned port_count)
    : size_(cells),
      width_(width_bits),
      ports_(port_count),
      data_(cells, 0) {
  assert(cells >= 1);
  assert(width_bits >= 1 && width_bits <= 32);
  assert(port_count == 1 || port_count == 2 || port_count == 4);
}

Word SimRam::read(Addr addr, unsigned port) {
  assert(addr < size_ && port < ports_);
  ++stats_[port].reads;
  return data_[addr];
}

void SimRam::write(Addr addr, Word value, unsigned port) {
  assert(addr < size_ && port < ports_);
  ++stats_[port].writes;
  data_[addr] = value & word_mask();
}

void SimRam::fill(Word value) {
  const Word v = value & word_mask();
  for (auto& cell : data_) cell = v;
}

}  // namespace prt::mem
