#include "core/trajectory.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace prt::core {

const char* to_string(TrajectoryKind k) {
  switch (k) {
    case TrajectoryKind::kAscending: return "ascending";
    case TrajectoryKind::kDescending: return "descending";
    case TrajectoryKind::kRandom: return "random";
  }
  return "?";
}

Trajectory Trajectory::make(TrajectoryKind kind, mem::Addr n,
                            std::uint64_t seed) {
  Trajectory t;
  t.kind_ = kind;
  t.order_.resize(n);
  std::iota(t.order_.begin(), t.order_.end(), mem::Addr{0});
  switch (kind) {
    case TrajectoryKind::kAscending:
      break;
    case TrajectoryKind::kDescending:
      std::reverse(t.order_.begin(), t.order_.end());
      break;
    case TrajectoryKind::kRandom: {
      Xoshiro256 rng(seed);
      shuffle(t.order_.begin(), t.order_.end(), rng);
      break;
    }
  }
  return t;
}

}  // namespace prt::core
