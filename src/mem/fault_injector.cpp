#include "mem/fault_injector.hpp"

#include <cassert>
#include <stdexcept>

namespace prt::mem {

namespace {
constexpr int kMaxCascadeDepth = 8;
}

FaultyRam::FaultyRam(Addr cells, unsigned width_bits, unsigned port_count)
    : ram_(cells, width_bits, port_count) {}

void FaultyRam::inject(const Fault& fault) {
  // Malformed universes must fail loudly in release campaigns too, so
  // these are runtime throws, not asserts (same precedent as
  // prt_algorithm_prefix).
  if (fault.victim.cell >= size() || fault.victim.bit >= width()) {
    throw std::invalid_argument("FaultyRam::inject: victim out of range: " +
                                fault.describe());
  }
  if (is_coupling(fault.kind)) {
    if (fault.aggressor.cell >= size() || fault.aggressor.bit >= width()) {
      throw std::invalid_argument(
          "FaultyRam::inject: aggressor out of range: " + fault.describe());
    }
    if (fault.aggressor == fault.victim) {
      throw std::invalid_argument(
          "FaultyRam::inject: aggressor must differ from victim: " +
          fault.describe());
    }
  }
  if (is_address_fault(fault.kind) && fault.kind != FaultKind::kAfNoAccess &&
      fault.alias >= size()) {
    throw std::invalid_argument("FaultyRam::inject: alias out of range: " +
                                fault.describe());
  }
  if (fault.kind == FaultKind::kDrf && fault.delay == 0) {
    throw std::invalid_argument(
        "FaultyRam::inject: retention fault needs delay > 0: " +
        fault.describe());
  }
  faults_.push_back(fault);
  refreshed_at_.push_back(clock_);
  has_address_fault_ = has_address_fault_ || is_address_fault(fault.kind);
  has_retention_fault_ =
      has_retention_fault_ || fault.kind == FaultKind::kDrf;
  // A defect's effect holds from the moment it exists, not only from
  // the first write it observes — and regardless of injection order:
  //  * stuck-at victims are clamped to their stuck value now (the
  //    write path and set_bit cascades clamp on their own), and the
  //    clamp is a state perturbation, so static conditions touching
  //    the cell are re-applied;
  //  * a freshly injected static condition (bridge tie, CFst, NPSF)
  //    is enforced against the current state immediately.
  // Dynamic (transition-triggered) couplings do not fire — a defect
  // appearing is not a write edge.
  switch (fault.kind) {
    case FaultKind::kSaf0:
    case FaultKind::kSaf1:
      enforce_saf(fault.victim.cell);
      enforce_conditions(fault.victim.cell, 0);
      break;
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1:
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr:
    case FaultKind::kNpsfStatic:
      enforce_conditions(fault.victim.cell, 0);
      break;
    default:
      break;
  }
}

DecodedAccess FaultyRam::decode(Addr addr) const {
  DecodedAccess acc;
  acc.cells[0] = addr;
  acc.count = 1;
  if (!has_address_fault_) return acc;
  for (const Fault& f : faults_) {
    if (!is_address_fault(f.kind) || f.victim.cell != addr) continue;
    switch (f.kind) {
      case FaultKind::kAfNoAccess:
        acc.count = 0;
        return acc;
      case FaultKind::kAfWrongAccess:
        acc.cells[0] = f.alias;
        acc.count = 1;
        return acc;
      case FaultKind::kAfMultiAccess:
        acc.cells[1] = f.alias;
        acc.count = 2;
        return acc;
      default:
        break;
    }
  }
  return acc;
}

void FaultyRam::enforce_saf(Addr cell) {
  for (const Fault& f : faults_) {
    if (f.victim.cell != cell) continue;
    if (f.kind == FaultKind::kSaf0) {
      ram_.poke(cell, ram_.peek(cell) & ~(Word{1} << f.victim.bit));
    } else if (f.kind == FaultKind::kSaf1) {
      ram_.poke(cell, ram_.peek(cell) | (Word{1} << f.victim.bit));
    }
  }
}

void FaultyRam::enforce_conditions(Addr cell, int depth) {
  if (depth > kMaxCascadeDepth) return;
  for (const Fault& f : faults_) {
    switch (f.kind) {
      case FaultKind::kCfSt0:
      case FaultKind::kCfSt1: {
        // Victim forced while the aggressor bit sits in the trigger
        // state; re-check whenever either the aggressor's cell (state
        // change) or the victim's cell (write under the condition) was
        // touched.
        if (f.aggressor.cell != cell && f.victim.cell != cell) break;
        if (stored_bit(f.aggressor.cell, f.aggressor.bit) != f.state) break;
        const unsigned forced = f.kind == FaultKind::kCfSt1 ? 1U : 0U;
        if (stored_bit(f.victim.cell, f.victim.bit) != forced) {
          set_bit(f.victim.cell, f.victim.bit, forced, depth + 1);
        }
        break;
      }
      case FaultKind::kBridgeAnd:
      case FaultKind::kBridgeOr: {
        if (f.victim.cell != cell && f.aggressor.cell != cell) break;
        const unsigned a = stored_bit(f.victim.cell, f.victim.bit);
        const unsigned b = stored_bit(f.aggressor.cell, f.aggressor.bit);
        const unsigned tied =
            f.kind == FaultKind::kBridgeAnd ? (a & b) : (a | b);
        if (a != tied) {
          set_bit(f.victim.cell, f.victim.bit, tied, depth + 1);
        }
        if (b != tied) {
          set_bit(f.aggressor.cell, f.aggressor.bit, tied, depth + 1);
        }
        break;
      }
      case FaultKind::kNpsfStatic: {
        // Type-1 (five-cell) static NPSF on a grid of f.grid_cols
        // columns: when the N,E,S,W neighbours (same bit plane) match
        // the 4-bit pattern, the base cell is forced to f.state.
        const Addr cols = f.grid_cols;
        if (cols == 0) break;
        const Addr v = f.victim.cell;
        const Addr row = v / cols;
        const Addr col = v % cols;
        if (row == 0 || col == 0 || col + 1 >= cols ||
            v + cols >= size()) {
          break;  // border cells have no full neighbourhood
        }
        const Addr north = v - cols;
        const Addr east = v + 1;
        const Addr south = v + cols;
        const Addr west = v - 1;
        const bool touched = cell == north || cell == east ||
                             cell == south || cell == west || cell == v;
        if (!touched) break;
        const unsigned actual =
            (stored_bit(north, f.victim.bit) << 3) |
            (stored_bit(east, f.victim.bit) << 2) |
            (stored_bit(south, f.victim.bit) << 1) |
            stored_bit(west, f.victim.bit);
        if (actual != f.pattern) break;
        const unsigned forced = static_cast<unsigned>(f.state & 1U);
        if (stored_bit(v, f.victim.bit) != forced) {
          set_bit(v, f.victim.bit, forced, depth + 1);
        }
        break;
      }
      default:
        break;
    }
  }
}

void FaultyRam::set_bit(Addr cell, unsigned bit, unsigned value, int depth) {
  if (depth > kMaxCascadeDepth) return;
  const unsigned old = stored_bit(cell, bit);
  // Stuck-at victims never move.
  for (const Fault& f : faults_) {
    if (f.victim.cell == cell && f.victim.bit == bit) {
      if (f.kind == FaultKind::kSaf0) value = 0;
      if (f.kind == FaultKind::kSaf1) value = 1;
    }
  }
  if (old == value) return;
  Word w = ram_.peek(cell);
  w = value ? (w | (Word{1} << bit)) : (w & ~(Word{1} << bit));
  ram_.poke(cell, w);
  fire_transition(cell, bit, value == 1, depth);
  enforce_conditions(cell, depth);
}

void FaultyRam::fire_transition(Addr cell, unsigned bit, bool up,
                                int depth) {
  if (depth > kMaxCascadeDepth) return;
  for (const Fault& f : faults_) {
    if (!is_coupling(f.kind)) continue;
    if (f.aggressor.cell != cell || f.aggressor.bit != bit) continue;
    switch (f.kind) {
      case FaultKind::kCfIn: {
        const unsigned cur = stored_bit(f.victim.cell, f.victim.bit);
        set_bit(f.victim.cell, f.victim.bit, cur ^ 1U, depth + 1);
        break;
      }
      case FaultKind::kCfIdUp0:
        if (up) set_bit(f.victim.cell, f.victim.bit, 0, depth + 1);
        break;
      case FaultKind::kCfIdUp1:
        if (up) set_bit(f.victim.cell, f.victim.bit, 1, depth + 1);
        break;
      case FaultKind::kCfIdDown0:
        if (!up) set_bit(f.victim.cell, f.victim.bit, 0, depth + 1);
        break;
      case FaultKind::kCfIdDown1:
        if (!up) set_bit(f.victim.cell, f.victim.bit, 1, depth + 1);
        break;
      default:
        break;
    }
  }
  enforce_conditions(cell, depth);
}

void FaultyRam::physical_write(Addr cell, Word value) {
  // Phase 1: land the whole word (TF/WDF/SAF applied per bit) without
  // firing coupling, so intra-word aggressor transitions see their
  // victims' *new* values — all bits of a word write switch together.
  const Word old = ram_.peek(cell);
  Word landed = 0;
  for (unsigned bit = 0; bit < width(); ++bit) {
    const unsigned ob = (old >> bit) & 1U;
    unsigned nb = (value >> bit) & 1U;
    for (const Fault& f : faults_) {
      if (f.victim.cell != cell || f.victim.bit != bit) continue;
      switch (f.kind) {
        case FaultKind::kTfUp:
          if (ob == 0 && nb == 1) nb = 0;  // up-transition fails
          break;
        case FaultKind::kTfDown:
          if (ob == 1 && nb == 0) nb = 1;  // down-transition fails
          break;
        case FaultKind::kWdf:
          if (ob == nb) nb = ob ^ 1U;  // non-transition write disturbs
          break;
        case FaultKind::kSaf0:
          nb = 0;
          break;
        case FaultKind::kSaf1:
          nb = 1;
          break;
        default:
          break;
      }
    }
    landed |= Word{nb} << bit;
  }
  ram_.poke(cell, landed);

  // A write refreshes the charge of every retention victim in the cell.
  if (has_retention_fault_) {
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (faults_[i].kind == FaultKind::kDrf &&
          faults_[i].victim.cell == cell) {
        refreshed_at_[i] = clock_;
      }
    }
  }

  // Phase 2: fire coupling/condition effects for every actual bit
  // transition of this write.
  for (unsigned bit = 0; bit < width(); ++bit) {
    const unsigned ob = (old >> bit) & 1U;
    const unsigned nb = (landed >> bit) & 1U;
    if (ob != nb) fire_transition(cell, bit, nb == 1, 0);
  }
  enforce_conditions(cell, 0);
}

void FaultyRam::apply_retention(Addr cell) {
  if (!has_retention_fault_) return;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const Fault& f = faults_[i];
    if (f.kind != FaultKind::kDrf || f.victim.cell != cell) continue;
    if (clock_ - refreshed_at_[i] < f.delay) continue;
    const unsigned decayed = static_cast<unsigned>(f.state & 1U);
    if (stored_bit(cell, f.victim.bit) != decayed) {
      set_bit(cell, f.victim.bit, decayed, 0);
    }
  }
}

Word FaultyRam::physical_read(Addr cell, unsigned port) {
  apply_retention(cell);
  Word value = ram_.peek(cell);
  for (const Fault& f : faults_) {
    if (f.victim.cell != cell) continue;
    const unsigned bit = f.victim.bit;
    const unsigned stored = (value >> bit) & 1U;
    switch (f.kind) {
      case FaultKind::kRdf:
        // Cell flips; the sense amp sees the flipped value.
        set_bit(cell, bit, stored ^ 1U, 0);
        value = ram_.peek(cell);
        break;
      case FaultKind::kDrdf:
        // Correct value returned, cell flips behind the reader's back.
        set_bit(cell, bit, stored ^ 1U, 0);
        // `value` keeps the pre-flip bit.
        break;
      case FaultKind::kIrf:
        value ^= Word{1} << bit;  // inverted data, cell untouched
        break;
      case FaultKind::kSof: {
        // Open cell: the sense amp retains its previous value.
        const unsigned prev = (last_read_[port] >> bit) & 1U;
        value = prev ? (value | (Word{1} << bit))
                     : (value & ~(Word{1} << bit));
        break;
      }
      default:
        break;
    }
  }
  return value & word_mask();
}

Word FaultyRam::read(Addr addr, unsigned port) {
  assert(addr < size() && port < ports());
  ++stats_[port].reads;
  ++clock_;
  const DecodedAccess acc = decode(addr);
  Word value = 0;
  if (acc.count == 0) {
    value = 0;  // floating data bus modelled as reading zeros
  } else if (acc.count == 1) {
    value = physical_read(acc.cells[0], port);
  } else {
    // Multi-access read: wired-AND of the opened cells.
    value = physical_read(acc.cells[0], port) &
            physical_read(acc.cells[1], port);
  }
  last_read_[port] = value;
  return value;
}

void FaultyRam::write(Addr addr, Word value, unsigned port) {
  assert(addr < size() && port < ports());
  ++stats_[port].writes;
  ++clock_;
  const DecodedAccess acc = decode(addr);
  for (unsigned i = 0; i < acc.count; ++i) {
    physical_write(acc.cells[i], value & word_mask());
  }
}

}  // namespace prt::mem
