// Tests for the hardware-overhead model (core/hw_overhead) — the
// paper's §4 "< 2^-20" claim machinery.
#include "core/hw_overhead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prt::core {
namespace {

TEST(Overhead, AllComponentsPositive) {
  const gf::GF2m f(0b10011);
  const OverheadReport r = estimate_overhead(f, {1, 2, 2}, 1 << 20);
  EXPECT_GT(r.counter_transistors, 0u);
  EXPECT_GT(r.window_transistors, 0u);
  EXPECT_GT(r.feedback_transistors, 0u);
  EXPECT_GT(r.comparator_transistors, 0u);
  EXPECT_GT(r.control_transistors, 0u);
  EXPECT_EQ(r.memory_transistors, (std::uint64_t{1} << 20) * 4 * 6);
}

TEST(Overhead, BistCostIndependentOfCapacityExceptCounter) {
  const gf::GF2m f(0b10011);
  const OverheadReport small = estimate_overhead(f, {1, 2, 2}, 1 << 10);
  const OverheadReport large = estimate_overhead(f, {1, 2, 2}, 1 << 26);
  EXPECT_EQ(small.window_transistors, large.window_transistors);
  EXPECT_EQ(small.feedback_transistors, large.feedback_transistors);
  EXPECT_EQ(small.comparator_transistors, large.comparator_transistors);
  EXPECT_LT(small.counter_transistors, large.counter_transistors);
}

TEST(Overhead, RatioShrinksWithCapacity) {
  const gf::GF2m f(0b10011);
  double prev = 1.0;
  for (unsigned log_n = 10; log_n <= 30; log_n += 4) {
    const OverheadReport r =
        estimate_overhead(f, {1, 2, 2}, std::uint64_t{1} << log_n);
    EXPECT_LT(r.ratio(), prev) << "log n = " << log_n;
    prev = r.ratio();
  }
}

TEST(Overhead, PaperClaimBelow2PowMinus20ForLargeRam) {
  // §4: overhead ponder < 2^-20.  Holds for gigabit-class memories.
  const gf::GF2m f(0b10011);
  const OverheadReport r =
      estimate_overhead(f, {1, 2, 2}, std::uint64_t{1} << 28, /*ports=*/2);
  EXPECT_LT(r.ratio(), std::pow(2.0, -20.0));
}

TEST(Overhead, MultiPortCountsMoreCounters) {
  const gf::GF2m f(0b10011);
  const OverheadReport p1 = estimate_overhead(f, {1, 2, 2}, 1 << 16, 1);
  const OverheadReport p2 = estimate_overhead(f, {1, 2, 2}, 1 << 16, 2);
  EXPECT_EQ(p2.counter_transistors, 2 * p1.counter_transistors);
}

TEST(Overhead, UnitCoefficientGeneratorCheaperThanMultiplier) {
  const gf::GF2m f(0b10011);
  const OverheadReport cheap = estimate_overhead(f, {1, 1, 1}, 1 << 16);
  const OverheadReport costly = estimate_overhead(f, {1, 2, 2}, 1 << 16);
  EXPECT_LT(cheap.feedback_transistors, costly.feedback_transistors);
}

TEST(Overhead, BomFeedbackIsSingleXor) {
  const gf::GF2m f2(0b11);
  const OverheadReport r = estimate_overhead(f2, {1, 1, 1}, 1 << 16);
  CostModel cost;
  EXPECT_EQ(r.feedback_transistors, cost.transistors_per_xor2);
}

TEST(Overhead, CustomCostModelScales) {
  const gf::GF2m f(0b10011);
  CostModel doubled;
  doubled.transistors_per_cell = 12;
  const OverheadReport base = estimate_overhead(f, {1, 2, 2}, 1 << 16);
  const OverheadReport big =
      estimate_overhead(f, {1, 2, 2}, 1 << 16, 1, doubled);
  EXPECT_EQ(big.memory_transistors, 2 * base.memory_transistors);
}

TEST(Overhead, RatioFormula) {
  const gf::GF2m f(0b10011);
  const OverheadReport r = estimate_overhead(f, {1, 2, 2}, 1 << 12);
  EXPECT_DOUBLE_EQ(
      r.ratio(), static_cast<double>(r.bist_total()) /
                     static_cast<double>(r.memory_transistors));
}

}  // namespace
}  // namespace prt::core
