// Tests for the Galois-configuration LFSR (lfsr/galois_lfsr) and its
// equivalence with the paper's Fibonacci virtual automaton.
#include "lfsr/galois_lfsr.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lfsr/lfsr.hpp"
#include "util/bitops.hpp"

namespace prt::lfsr {
namespace {

TEST(GaloisLfsr, PeriodOfPrimitivePolynomialIsMaximal) {
  for (gf::Poly2 p : {0b111ULL, 0b1011ULL, 0b10011ULL, 0b100101ULL}) {
    GaloisLfsr l(p);
    l.seed(1);
    const auto w = static_cast<unsigned>(poly_degree(p));
    EXPECT_EQ(l.cycle_length(), (std::uint64_t{1} << w) - 1)
        << "p=" << p;
  }
}

TEST(GaloisLfsr, NonPrimitiveIrreducibleHasShorterPeriod) {
  GaloisLfsr l(0b11111);  // z^4+z^3+z^2+z+1, order 5
  l.seed(1);
  EXPECT_EQ(l.cycle_length(), 5u);
}

TEST(GaloisLfsr, ZeroStateIsFixed) {
  GaloisLfsr l(0b10011);
  l.seed(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(l.step(), 0u);
  EXPECT_EQ(l.state(), 0u);
}

TEST(GaloisLfsr, VisitsEveryNonZeroState) {
  GaloisLfsr l(0b10011);
  l.seed(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 15; ++i) {
    seen.insert(l.state());
    l.step();
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(GaloisLfsr, OutputSequenceMatchesFibonacciUpToPhase) {
  // Both configurations of the same primitive polynomial generate the
  // same m-sequence; find the phase within one period and compare a
  // full period after it.
  const gf::Poly2 p = 0b10011;  // z^4+z+1, period 15
  GaloisLfsr galois(p);
  galois.seed(1);
  std::vector<unsigned> gseq;
  for (int i = 0; i < 45; ++i) gseq.push_back(galois.step());

  // Fibonacci form with the *reciprocal* recurrence
  // s[t+4] = s[t+3] + s[t] (the right-shifting Galois register of p
  // generates the sequence of p's reciprocal polynomial).
  WordLfsr fib(gf::GF2m(0b11), {1, 1, 0, 0, 1});
  const std::vector<gf::Elem> seed{1, 0, 0, 0};
  fib.seed(seed);
  const auto fseq32 = fib.sequence(15 + 15);
  std::vector<unsigned> fseq(fseq32.begin(), fseq32.end());

  bool aligned = false;
  for (int phase = 0; phase < 15 && !aligned; ++phase) {
    bool match = true;
    for (int i = 0; i < 15; ++i) {
      if (gseq[static_cast<std::size_t>(phase + i)] !=
          fseq[static_cast<std::size_t>(i)]) {
        match = false;
        break;
      }
    }
    aligned = match;
  }
  EXPECT_TRUE(aligned);
}

TEST(GaloisLfsr, WidthAndStateMask) {
  GaloisLfsr l(0x11b);  // degree 8
  EXPECT_EQ(l.width(), 8u);
  l.seed(0xFFFF);
  EXPECT_EQ(l.state(), 0xFFu);  // masked to width
}

}  // namespace
}  // namespace prt::lfsr
