// Canonical March algorithms (van de Goor, the paper's reference [1]).
//
// These serve as the baselines the paper positions PRT against: their
// operation counts (4n..22n) anchor the complexity table and their
// fault coverage anchors the coverage table.  Note: the paper's §1
// example "MarchA = {c(w0); up(r0w1); down(r1w0)}" is, in the standard
// taxonomy, MATS+; we expose it under `paper_march_a()` as well.
#pragma once

#include <vector>

#include "march/march_test.hpp"

namespace prt::march {

[[nodiscard]] MarchTest mats();      // {c(w0); c(r0,w1); c(r1)}        4n
[[nodiscard]] MarchTest mats_plus(); // {c(w0); ^(r0,w1); v(r1,w0)}     5n
[[nodiscard]] MarchTest mats_pp();   // {c(w0); ^(r0,w1); v(r1,w0,r0)}  6n
[[nodiscard]] MarchTest march_x();   // 6n
[[nodiscard]] MarchTest march_y();   // 8n
[[nodiscard]] MarchTest march_c_minus();  // 10n
[[nodiscard]] MarchTest march_a();   // 15n
[[nodiscard]] MarchTest march_b();   // 17n
[[nodiscard]] MarchTest march_sr();  // 14n
[[nodiscard]] MarchTest march_lr();  // 14n
[[nodiscard]] MarchTest march_ss();  // 22n
[[nodiscard]] MarchTest march_g();   // 23n + 2 Del (retention pauses)

/// The exact test the paper's introduction writes as "MarchA".
[[nodiscard]] MarchTest paper_march_a();

/// Every algorithm above, for table sweeps.
[[nodiscard]] std::vector<MarchTest> all_march_tests();

}  // namespace prt::march
