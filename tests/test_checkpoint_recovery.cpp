// Crash-safety matrix for the v2 campaign checkpoint format
// (analysis/campaign_service): every corruption a torn write or bit
// rot can produce — truncated tail, flipped byte mid-record, foreign
// or old version header, empty file, and a fail-point-injected
// partial final flush — must either salvage the longest CRC-valid
// record prefix or start fresh, for PRT and March workloads alike,
// with the resumed result bit-identical to an uninterrupted run.
// Only a fingerprint mismatch (a *different* campaign, not a damaged
// one) may fail the request; no corruption may ever merge torn
// results.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "analysis/campaign_service.hpp"
#include "analysis/march_campaign.hpp"
#include "core/prt_engine.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"
#include "util/fail_point.hpp"

namespace prt::analysis {
namespace {

using util::FailPoint;
using util::FailPointScope;

constexpr mem::Addr kN = 24;
constexpr std::size_t kShards = 6;
/// Shard tasks allowed to complete before the injected crash — the
/// interrupted checkpoint holds exactly this many records (threads=1
/// runs shards in order; the final flush persists all of them).
constexpr std::size_t kDoneShards = 4;

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

std::string temp_checkpoint(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

CampaignRequest make_request(bool march) {
  CampaignRequest req;
  if (march) {
    req.march_test = march::march_c_minus();
  } else {
    req.scheme = core::extended_scheme_bom(kN);
  }
  req.options = {.n = kN};
  req.universe = mem::classical_universe(kN);
  req.shards = kShards;
  req.checkpoint_every = 1;
  return req;
}

CampaignResult reference_result(bool march) {
  const CampaignRequest req = make_request(march);
  return march ? run_march_campaign(req.universe, *req.march_test, req.options)
               : run_prt_campaign(req.universe, *req.scheme, req.options);
}

/// Runs a checkpointed campaign that crashes after kDoneShards shard
/// tasks, leaving a well-formed checkpoint with kDoneShards records.
void write_interrupted_checkpoint(bool march, const std::string& path) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.skip = static_cast<int>(kDoneShards), .fires = -1});
  CampaignService service({.threads = 1, .max_retries = 0});
  CampaignRequest req = make_request(march);
  req.checkpoint_path = path;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kFailed);
  ASSERT_EQ(out.shards_done, kDoneShards);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Resumes against `path` and requires: completion, exactly
/// `expect_resumed` shards adopted, a salvage counted, and a final
/// result bit-identical to the uninterrupted reference.
void expect_salvaged_resume(bool march, const std::string& path,
                            std::size_t expect_resumed) {
  CampaignService service({.threads = 1});
  CampaignRequest req = make_request(march);
  req.checkpoint_path = path;
  req.resume = true;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(out.shards_total, kShards);
  EXPECT_EQ(out.shards_resumed, expect_resumed);
  expect_identical(out.result, reference_result(march));
  EXPECT_EQ(service.stats().checkpoint_salvaged, 1u);
  EXPECT_EQ(service.stats().shards_resumed, expect_resumed);
}

void run_corruption_matrix(bool march) {
  const char* tag = march ? "march" : "prt";

  {
    SCOPED_TRACE("truncated tail");
    const std::string path =
        temp_checkpoint(std::string("ckpt_trunc_") + tag + ".ckpt");
    write_interrupted_checkpoint(march, path);
    std::string text = read_file(path);
    ASSERT_GT(text.size(), 10u);
    text.resize(text.size() - 10);  // tear the last record mid-line
    write_file(path, text);
    expect_salvaged_resume(march, path, kDoneShards - 1);
    std::remove(path.c_str());
  }

  {
    SCOPED_TRACE("flipped byte in a middle record");
    const std::string path =
        temp_checkpoint(std::string("ckpt_flip_") + tag + ".ckpt");
    write_interrupted_checkpoint(march, path);
    std::string text = read_file(path);
    // Lines: header, meta, then kDoneShards records.  Flip one byte in
    // the middle of the *second* record: its CRC fails, so the valid
    // prefix is exactly one record — the records after the flip are
    // intact but unreachable (prefix salvage never skips over damage).
    std::vector<std::size_t> starts;
    for (std::size_t pos = 0; pos != std::string::npos && pos < text.size();
         pos = text.find('\n', pos) + 1) {
      starts.push_back(pos);
      if (text.find('\n', pos) == std::string::npos) break;
    }
    ASSERT_GE(starts.size(), 4u);
    const std::size_t rec2 = starts[3];
    const std::size_t rec2_len = text.find('\n', rec2) - rec2;
    text[rec2 + rec2_len / 2] ^= 0x01;
    write_file(path, text);
    expect_salvaged_resume(march, path, 1);
    std::remove(path.c_str());
  }

  {
    SCOPED_TRACE("old version header");
    const std::string path =
        temp_checkpoint(std::string("ckpt_header_") + tag + ".ckpt");
    write_interrupted_checkpoint(march, path);
    std::string text = read_file(path);
    const std::size_t eol = text.find('\n');
    ASSERT_NE(eol, std::string::npos);
    text.replace(0, eol, "prt-campaign-checkpoint v1");
    write_file(path, text);
    // An unknown format carries nothing trustworthy: fresh run.
    expect_salvaged_resume(march, path, 0);
    std::remove(path.c_str());
  }

  {
    SCOPED_TRACE("empty file");
    const std::string path =
        temp_checkpoint(std::string("ckpt_empty_") + tag + ".ckpt");
    write_interrupted_checkpoint(march, path);
    write_file(path, "");
    expect_salvaged_resume(march, path, 0);
    std::remove(path.c_str());
  }

  {
    SCOPED_TRACE("fingerprint mismatch is a hard failure");
    const std::string path =
        temp_checkpoint(std::string("ckpt_fp_") + tag + ".ckpt");
    write_interrupted_checkpoint(march, path);
    CampaignService service({.threads = 1});
    CampaignRequest req = make_request(march);
    req.universe.pop_back();  // a *different* campaign, not a damaged one
    req.checkpoint_path = path;
    req.resume = true;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kFailed);
    EXPECT_NE(out.error.find("fingerprint"), std::string::npos);
    EXPECT_EQ(out.shards_done, 0u);
    EXPECT_EQ(service.stats().checkpoint_salvaged, 0u);
    std::remove(path.c_str());
  }
}

TEST(CheckpointRecovery, PrtCorruptionMatrix) { run_corruption_matrix(false); }
TEST(CheckpointRecovery, MarchCorruptionMatrix) {
  run_corruption_matrix(true);
}

// --- injected partial final write -----------------------------------

void run_partial_write_case(bool march, std::size_t torn_bytes,
                            std::size_t max_resumed) {
  SCOPED_TRACE("torn at " + std::to_string(torn_bytes) + " bytes");
  const std::string path = temp_checkpoint(
      std::string("ckpt_partial_") + (march ? "march" : "prt") + "_" +
      std::to_string(torn_bytes) + ".ckpt");
  {
    FailPointScope scope;
    FailPoint::arm("campaign_service.shard",
                   {.skip = static_cast<int>(kDoneShards), .fires = -1});
    // The cadence checkpoints (after shards 1..4) succeed; the final
    // flush — the write a real crash is most likely to tear, arriving
    // with the failure itself — is truncated at torn_bytes and fails.
    FailPoint::arm("campaign_service.checkpoint",
                   {.action = FailPoint::Action::kPartialWrite,
                    .skip = static_cast<int>(kDoneShards),
                    .fires = 1,
                    .bytes = torn_bytes});
    CampaignService service({.threads = 1, .max_retries = 0});
    CampaignRequest req = make_request(march);
    req.checkpoint_path = path;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kFailed);
    EXPECT_GE(service.stats().checkpoint_failures, 1u);
  }
  {
    // Whatever prefix survived the tear is salvaged; nothing torn is
    // ever merged (bit-identity is the proof).
    CampaignService service({.threads = 1});
    CampaignRequest req = make_request(march);
    req.checkpoint_path = path;
    req.resume = true;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kComplete);
    EXPECT_LE(out.shards_resumed, max_resumed);
    expect_identical(out.result, reference_result(march));
  }
  std::remove(path.c_str());
}

TEST(CheckpointRecovery, PartialFinalWriteTornMidMeta) {
  // 40 bytes: the header survives, the meta line is cut mid-CRC — the
  // salvage is a fresh run.
  run_partial_write_case(false, 40, 0);
}

TEST(CheckpointRecovery, PartialFinalWriteTornMidRecords) {
  // 200 bytes lands somewhere inside the record block: a strict
  // prefix of the four completed shards survives.
  run_partial_write_case(false, 200, kDoneShards - 1);
  run_partial_write_case(true, 200, kDoneShards - 1);
}

}  // namespace
}  // namespace prt::analysis
