// Tests for the async campaign service (analysis/campaign_service):
// complete runs bit-identical to the synchronous engines, cooperative
// cancellation / deadlines with exact partial results, shard-granular
// checkpoint/resume whose resumed results are bit-identical to
// uninterrupted runs (interrupting at *every* cadence point, PRT and
// March, packed and scalar, 1 and 4 threads), per-class priority
// admission with bounded queues and deadline-aware load shedding, the
// shard stall watchdog, bounded shard retry with request isolation,
// and the oracle cache's poisoned-entry eviction plus budgeted LRU —
// all driven deterministically through util::FailPoint.  (The
// checkpoint corruption/salvage matrix lives in
// tests/test_checkpoint_recovery.cpp.)
#include "analysis/campaign_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_suite.hpp"
#include "analysis/oracle_cache.hpp"
#include "core/prt_engine.hpp"
#include "march/march_library.hpp"
#include "mem/fault_universe.hpp"
#include "util/fail_point.hpp"
#include "util/stop_token.hpp"

namespace prt::analysis {
namespace {

using util::FailPoint;
using util::FailPointScope;

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

std::string temp_checkpoint(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

CampaignRequest prt_request(mem::Addr n) {
  CampaignRequest req;
  req.scheme = core::extended_scheme_bom(n);
  req.options = {.n = n};
  req.universe = mem::classical_universe(n);
  return req;
}

CampaignRequest march_request(mem::Addr n) {
  CampaignRequest req;
  req.march_test = march::march_c_minus();
  req.options = {.n = n};
  req.universe = mem::classical_universe(n);
  return req;
}

// --- complete runs --------------------------------------------------

TEST(CampaignService, PrtCompleteBitIdenticalToEngine) {
  const mem::Addr n = 32;
  CampaignRequest req = prt_request(n);
  const CampaignResult reference =
      run_prt_campaign(req.universe, *req.scheme, req.options);
  CampaignService service;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(out.shards_done, out.shards_total);
  expect_identical(out.result, reference);
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(CampaignService, MarchCompleteBitIdenticalToCampaign) {
  const mem::Addr n = 32;
  CampaignRequest req = march_request(n);
  const CampaignResult reference =
      run_march_campaign(req.universe, *req.march_test, req.options);
  CampaignService service;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  expect_identical(out.result, reference);
}

TEST(CampaignService, ConcurrentRequestsAllComplete) {
  CampaignService service;
  std::vector<CampaignService::Ticket> tickets;
  std::vector<CampaignResult> references;
  for (const mem::Addr n : {24, 32, 40}) {
    CampaignRequest req = prt_request(n);
    references.push_back(run_prt_campaign(req.universe, *req.scheme,
                                          req.options));
    tickets.push_back(service.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const RequestOutcome& out = tickets[i].wait();
    ASSERT_EQ(out.status, RequestStatus::kComplete);
    expect_identical(out.result, references[i]);
  }
  EXPECT_EQ(service.stats().completed, 3u);
}

TEST(CampaignService, EmptyUniverseCompletesEmpty) {
  CampaignRequest req = prt_request(24);
  req.universe.clear();
  CampaignService service;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  EXPECT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(out.result.overall.total, 0u);
  EXPECT_EQ(out.shards_total, 0u);
}

// Dispatch tallies roll up across resolved requests: a packed run of a
// fully lane-compatible universe tallies every fault as packed, a
// scalar run tallies every fault as scalar, and the service stats sum
// both.
TEST(CampaignService, StatsRollUpDispatchTallies) {
  const mem::Addr n = 32;
  CampaignService service;
  CampaignRequest packed_req = prt_request(n);
  const std::uint64_t total = packed_req.universe.size();
  packed_req.packed = true;
  const RequestOutcome& packed_out =
      service.submit(std::move(packed_req)).wait();
  ASSERT_EQ(packed_out.status, RequestStatus::kComplete);
  EXPECT_EQ(packed_out.result.packed_faults, total);
  EXPECT_EQ(packed_out.result.scalar_faults, 0u);
  {
    const auto stats = service.stats();
    EXPECT_EQ(stats.packed_faults, total);
    EXPECT_EQ(stats.scalar_faults, 0u);
  }
  CampaignRequest scalar_req = prt_request(n);
  scalar_req.packed = false;
  const RequestOutcome& scalar_out =
      service.submit(std::move(scalar_req)).wait();
  ASSERT_EQ(scalar_out.status, RequestStatus::kComplete);
  EXPECT_EQ(scalar_out.result.packed_faults, 0u);
  EXPECT_EQ(scalar_out.result.scalar_faults, total);
  {
    const auto stats = service.stats();
    EXPECT_EQ(stats.packed_faults, total);
    EXPECT_EQ(stats.scalar_faults, total);
  }
}

// --- admission / validation -----------------------------------------

TEST(CampaignService, MalformedRequestsFailFast) {
  CampaignService service;
  {
    CampaignRequest req;  // neither workload set
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    EXPECT_EQ(out.status, RequestStatus::kFailed);
  }
  {
    CampaignRequest req = prt_request(24);
    req.march_test = march::march_c_minus();  // both set
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    EXPECT_EQ(out.status, RequestStatus::kFailed);
  }
  {
    CampaignRequest req = prt_request(24);
    req.resume = true;  // no checkpoint_path
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    EXPECT_EQ(out.status, RequestStatus::kFailed);
  }
  {
    CampaignRequest req = prt_request(24);
    req.options.ports = 3;  // invalid geometry
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    EXPECT_EQ(out.status, RequestStatus::kFailed);
    EXPECT_FALSE(out.error.empty());
  }
  EXPECT_EQ(service.stats().accepted, 0u);
}

TEST(CampaignService, DefaultTicketIsInert) {
  CampaignService::Ticket ticket;
  EXPECT_TRUE(ticket.done());
  ticket.cancel();  // no-op
  EXPECT_THROW((void)ticket.wait(), std::logic_error);
}

TEST(CampaignService, BackpressureRejectsPastClassQueueBound) {
  FailPointScope scope;
  // Every shard task sleeps, so the first request reliably occupies
  // the single running slot while the second is submitted.  A zero
  // queue bound means "no queueing": the second submission is revoked
  // the moment dispatch leaves it waiting.
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(20)});
  CampaignService service(
      {.threads = 1, .max_running = 1, .queue_bound_normal = 0});
  CampaignService::Ticket first = service.submit(prt_request(24));
  CampaignService::Ticket second = service.submit(prt_request(24));
  const RequestOutcome& rejected = second.wait();
  EXPECT_EQ(rejected.status, RequestStatus::kRejected);
  EXPECT_NE(rejected.error.find("normal"), std::string::npos);
  EXPECT_TRUE(second.done());
  first.cancel();
  (void)first.wait();
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().accepted, 1u);
}

TEST(CampaignService, ZeroQueueBoundStillAdmitsIntoFreeSlot) {
  // The bound limits *waiting*, not admission: with the running window
  // free, a zero-bound class must still dispatch immediately.
  CampaignService service(
      {.threads = 1, .max_running = 1, .queue_bound_normal = 0});
  const RequestOutcome& out = service.submit(prt_request(24)).wait();
  EXPECT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(CampaignService, QueueBoundsArePerClass) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(60)});
  CampaignService service({.threads = 1,
                           .max_running = 1,
                           .queue_bound_high = 1,
                           .queue_bound_normal = 0,
                           .queue_bound_batch = 1});
  CampaignRequest blocker = prt_request(24);
  blocker.shards = 4;  // occupies the slot for >= 4 injected delays
  CampaignService::Ticket slot = service.submit(std::move(blocker));
  CampaignRequest b1 = prt_request(24);
  b1.priority = RequestPriority::kBatch;
  CampaignRequest b2 = prt_request(24);
  b2.priority = RequestPriority::kBatch;
  CampaignService::Ticket queued = service.submit(std::move(b1));
  const RequestOutcome& rejected = service.submit(std::move(b2)).wait();
  EXPECT_EQ(rejected.status, RequestStatus::kRejected);
  EXPECT_NE(rejected.error.find("batch"), std::string::npos);
  // The batch queue being full leaves the other classes untouched.
  CampaignRequest h = prt_request(24);
  h.priority = RequestPriority::kHigh;
  CampaignService::Ticket high = service.submit(std::move(h));
  EXPECT_EQ(service.stats().queued_high, 1u);
  EXPECT_EQ(service.stats().queued_batch, 1u);
  slot.cancel();
  high.cancel();
  queued.cancel();
  service.wait_all();
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().accepted, 3u);
}

TEST(CampaignService, DispatchDrainsHighBeforeBatch) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(60)});
  CampaignService service({.threads = 1, .max_running = 1});
  CampaignRequest blocker = prt_request(24);
  blocker.shards = 2;
  CampaignService::Ticket slot = service.submit(std::move(blocker));
  // Batch is queued *first*; high must still dispatch first.
  CampaignRequest batch = prt_request(24);
  batch.priority = RequestPriority::kBatch;
  batch.shards = 4;
  CampaignRequest high = prt_request(24);
  high.priority = RequestPriority::kHigh;
  high.shards = 1;
  CampaignService::Ticket batch_ticket = service.submit(std::move(batch));
  CampaignService::Ticket high_ticket = service.submit(std::move(high));
  EXPECT_EQ(service.stats().queued_high, 1u);
  EXPECT_EQ(service.stats().queued_batch, 1u);
  slot.cancel();
  (void)slot.wait();
  // max_running = 1: the batch request cannot even dispatch until the
  // high request fully resolves, so high completing while batch is
  // still pending proves the drain order (batch's first shard alone
  // sleeps 60 ms once it does start).
  const RequestOutcome& high_out = high_ticket.wait();
  EXPECT_EQ(high_out.status, RequestStatus::kComplete);
  EXPECT_FALSE(batch_ticket.done());
  batch_ticket.cancel();
  (void)batch_ticket.wait();
}

TEST(CampaignService, DispatchIsFifoWithinClass) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(60)});
  CampaignService service({.threads = 1, .max_running = 1});
  CampaignRequest blocker = prt_request(24);
  blocker.shards = 2;
  CampaignService::Ticket slot = service.submit(std::move(blocker));
  CampaignRequest a = prt_request(24);
  a.shards = 1;
  CampaignRequest b = prt_request(24);
  b.shards = 4;
  CampaignService::Ticket first = service.submit(std::move(a));
  CampaignService::Ticket second = service.submit(std::move(b));
  slot.cancel();
  (void)slot.wait();
  const RequestOutcome& out = first.wait();
  EXPECT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_FALSE(second.done());
  second.cancel();
  (void)second.wait();
}

// --- load shedding ---------------------------------------------------

TEST(CampaignService, QueuedRequestPastDeadlineIsShedded) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(60)});
  CampaignService service({.threads = 1, .max_running = 1});
  CampaignRequest blocker = prt_request(24);
  blocker.shards = 2;  // runs out naturally, holding the slot >= 120 ms
  CampaignService::Ticket slot = service.submit(std::move(blocker));
  CampaignRequest victim = prt_request(24);
  victim.deadline = std::chrono::milliseconds(30);
  CampaignService::Ticket ticket = service.submit(std::move(victim));
  (void)slot.wait();
  const RequestOutcome& out = ticket.wait();
  ASSERT_EQ(out.status, RequestStatus::kShedded);
  EXPECT_NE(out.error.find("expired"), std::string::npos);
  // Shed at dispatch: no partition was built, no shard ran.
  EXPECT_EQ(out.shards_total, 0u);
  EXPECT_EQ(out.result.overall.total, 0u);
  EXPECT_EQ(service.stats().shedded, 1u);
}

TEST(CampaignService, ShedderUsesLatencyEstimateAgainstDeadline) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(60)});
  CampaignService service({.threads = 1, .max_running = 1});
  // Warm the (prt, n=24) latency EWMA: two shards, >= 60 ms each.
  {
    CampaignRequest warm = prt_request(24);
    warm.shards = 2;
    const RequestOutcome& out = service.submit(std::move(warm)).wait();
    ASSERT_EQ(out.status, RequestStatus::kComplete);
  }
  // Blocker occupies the slot so the victim's shed decision happens at
  // dispatch, with ~60 ms of its 400 ms budget already spent.
  CampaignRequest blocker = prt_request(24);
  blocker.shards = 1;
  CampaignService::Ticket slot = service.submit(std::move(blocker));
  // 8 shards on 1 worker = 8 waves x ~60 ms EWMA >= 480 ms estimated,
  // against < 400 ms remaining: shed, before any oracle work.
  CampaignRequest victim = prt_request(24);
  victim.shards = 8;
  victim.deadline = std::chrono::milliseconds(400);
  CampaignService::Ticket ticket = service.submit(std::move(victim));
  (void)slot.wait();
  const RequestOutcome& out = ticket.wait();
  ASSERT_EQ(out.status, RequestStatus::kShedded);
  EXPECT_NE(out.error.find("estimated cost"), std::string::npos);
  EXPECT_EQ(service.stats().shedded, 1u);
}

TEST(CampaignService, ShedderAdmitsWhenDeadlineCoversEstimate) {
  // Same shape without the injected latency: the estimate comfortably
  // fits the deadline, so the request is admitted and completes.
  CampaignService service({.threads = 1, .max_running = 1});
  {
    CampaignRequest warm = prt_request(24);
    warm.shards = 2;
    ASSERT_EQ(service.submit(std::move(warm)).wait().status,
              RequestStatus::kComplete);
  }
  CampaignRequest req = prt_request(24);
  req.shards = 2;
  req.deadline = std::chrono::seconds(60);
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  EXPECT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(service.stats().shedded, 0u);
}

// --- shard stall watchdog --------------------------------------------

TEST(CampaignService, WatchdogCancelsStalledShardAndRetries) {
  FailPointScope scope;
  // One shard attempt wedges for 600 ms; the watchdog trips its
  // per-attempt token at 150 ms (kStalled) and the bounded retry
  // completes the campaign bit-identically.  A concurrent healthy
  // request on the same pool is unaffected.  (Budgets are generous:
  // a *healthy* shard here computes for a few ms, so only the wedged
  // attempt can plausibly cross 150 ms even on a loaded 1-core box.)
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = 1,
                  .delay = std::chrono::milliseconds(600)});
  CampaignRequest req = prt_request(32);
  CampaignRequest other = march_request(24);
  const CampaignResult reference =
      run_prt_campaign(req.universe, *req.scheme, req.options);
  const CampaignResult other_reference =
      run_march_campaign(other.universe, *other.march_test, other.options);
  CampaignService service({.threads = 2,
                           .max_retries = 1,
                           .stall_budget = std::chrono::milliseconds(150)});
  CampaignService::Ticket first = service.submit(std::move(req));
  CampaignService::Ticket second = service.submit(std::move(other));
  const RequestOutcome& out = first.wait();
  const RequestOutcome& other_out = second.wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  ASSERT_EQ(other_out.status, RequestStatus::kComplete);
  expect_identical(out.result, reference);
  expect_identical(other_out.result, other_reference);
  EXPECT_GE(service.stats().shard_stalls, 1u);
  EXPECT_GE(service.stats().shard_retries, 1u);
}

TEST(CampaignService, StallRetryExhaustionFailsRequest) {
  FailPointScope scope;
  // Every attempt wedges: retries exhaust and the request fails with
  // the stall named in the error, rather than hanging forever.
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(400)});
  CampaignService service({.threads = 1,
                           .max_retries = 0,
                           .stall_budget = std::chrono::milliseconds(100)});
  const RequestOutcome& out = service.submit(prt_request(24)).wait();
  ASSERT_EQ(out.status, RequestStatus::kFailed);
  EXPECT_NE(out.error.find("stalled"), std::string::npos);
  EXPECT_GE(service.stats().shard_stalls, 1u);
  // The service itself is healthy afterwards.
  FailPoint::disarm_all();
  EXPECT_EQ(service.submit(prt_request(24)).wait().status,
            RequestStatus::kComplete);
}

// --- cancellation / deadlines ---------------------------------------

TEST(CampaignService, CancellationYieldsIsolatedPartialResult) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(30)});
  CampaignService service({.threads = 1});
  CampaignRequest slow = prt_request(32);
  slow.shards = 8;
  const std::size_t universe_size = slow.universe.size();
  CampaignService::Ticket ticket = service.submit(std::move(slow));
  ticket.cancel();
  const RequestOutcome& out = ticket.wait();
  ASSERT_EQ(out.status, RequestStatus::kPartialCancelled);
  EXPECT_LT(out.shards_done, out.shards_total);
  // The partial result is an exact tally over the completed shards
  // only — never a torn count over a half-run shard.
  EXPECT_LE(out.result.overall.total, universe_size);
  EXPECT_TRUE(std::is_sorted(out.result.escapes.begin(),
                             out.result.escapes.end()));
  // A second request on the same service is unaffected.
  FailPoint::disarm_all();
  CampaignRequest healthy = prt_request(24);
  const CampaignResult reference =
      run_prt_campaign(healthy.universe, *healthy.scheme, healthy.options);
  const RequestOutcome& ok = service.submit(std::move(healthy)).wait();
  ASSERT_EQ(ok.status, RequestStatus::kComplete);
  expect_identical(ok.result, reference);
}

TEST(CampaignService, DeadlineYieldsPartialDeadline) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard",
                 {.action = FailPoint::Action::kDelay,
                  .fires = -1,
                  .delay = std::chrono::milliseconds(30)});
  CampaignService service({.threads = 1});
  CampaignRequest req = prt_request(32);
  req.shards = 8;
  req.deadline = std::chrono::milliseconds(1);
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kPartialDeadline);
  EXPECT_LT(out.shards_done, out.shards_total);
}

// --- worker failure / retry -----------------------------------------

TEST(CampaignService, ShardFailureRetriesToCompletion) {
  FailPointScope scope;
  // The first two shard-task attempts crash; retries finish the job.
  FailPoint::arm("campaign_service.shard", {.fires = 2});
  CampaignRequest req = prt_request(32);
  const CampaignResult reference =
      run_prt_campaign(req.universe, *req.scheme, req.options);
  CampaignService service({.max_retries = 2});
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  expect_identical(out.result, reference);
  EXPECT_EQ(service.stats().shard_retries, 2u);
}

TEST(CampaignService, RetryExhaustionFailsRequestButNotService) {
  FailPointScope scope;
  FailPoint::arm("campaign_service.shard", {.fires = -1});
  CampaignService service({.threads = 2, .max_retries = 1});
  const RequestOutcome& failed = service.submit(prt_request(24)).wait();
  ASSERT_EQ(failed.status, RequestStatus::kFailed);
  EXPECT_NE(failed.error.find("shard"), std::string::npos);
  EXPECT_GE(service.stats().shard_retries, 1u);
  // The worker that "crashed" was isolated: the pool and service keep
  // serving subsequent requests.
  FailPoint::disarm_all();
  CampaignRequest healthy = prt_request(24);
  const CampaignResult reference =
      run_prt_campaign(healthy.universe, *healthy.scheme, healthy.options);
  const RequestOutcome& ok = service.submit(std::move(healthy)).wait();
  ASSERT_EQ(ok.status, RequestStatus::kComplete);
  expect_identical(ok.result, reference);
}

// --- oracle cache poisoning (satellite) -----------------------------

TEST(OracleCachePoison, FailedBuildIsEvictedAndRebuilt) {
  FailPointScope scope;
  OracleCache cache;
  const core::PrtScheme scheme = core::extended_scheme_bom(32);
  FailPoint::arm("oracle_cache.build", {.fires = 1});
  EXPECT_THROW((void)cache.prt(scheme, 32), util::FailPointError);
  // The failed build must not leave a poisoned slot behind: the same
  // key rebuilds from scratch and succeeds.
  const auto entry = cache.prt(scheme, 32);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.prt_builds(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OracleCachePoison, ConcurrentWaitersRecoverAfterFailedBuild) {
  FailPointScope scope;
  OracleCache cache;
  const core::PrtScheme scheme = core::extended_scheme_bom(32);
  // Exactly one build fails; every concurrent requester must end up
  // with a real entry (waiters retry the lookup once themselves).
  FailPoint::arm("oracle_cache.build", {.fires = 1});
  std::vector<std::thread> threads;
  std::atomic<int> succeeded{0};
  std::atomic<int> threw{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      try {
        if (cache.prt(scheme, 32) != nullptr) ++succeeded;
      } catch (const util::FailPointError&) {
        ++threw;
      }
    });
  }
  for (auto& t : threads) t.join();
  // The injected failure surfaces at most on the thread that ran the
  // failing build; everyone else recovers via the rebuilt entry.
  EXPECT_LE(threw.load(), 1);
  EXPECT_GE(succeeded.load(), 7);
  EXPECT_EQ(cache.size(), 1u);
}

// --- oracle cache budget / LRU (tentpole) ---------------------------

TEST(OracleCacheEviction, HitMissCountersTrack) {
  OracleCache cache;
  const core::PrtScheme scheme = core::extended_scheme_bom(24);
  (void)cache.prt(scheme, 24);
  (void)cache.prt(scheme, 24);
  const OracleCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(OracleCacheEviction, BudgetEvictsLeastRecentlyUsed) {
  // Entry costs are deterministic per (scheme, n), so measure the
  // budget we need — two specific entries — in a throwaway cache.
  const core::PrtScheme s24 = core::extended_scheme_bom(24);
  const core::PrtScheme s32 = core::extended_scheme_bom(32);
  const core::PrtScheme s40 = core::extended_scheme_bom(40);
  std::size_t budget = 0;
  {
    OracleCache probe;
    (void)probe.prt(s24, 24);
    (void)probe.prt(s40, 40);
    budget = probe.stats().bytes;
  }
  OracleCache cache;
  cache.set_budget_bytes(budget);
  (void)cache.prt(s24, 24);
  (void)cache.prt(s32, 32);
  (void)cache.prt(s24, 24);  // touch 24: 32 is now least recent
  (void)cache.prt(s40, 40);  // over budget -> evicts exactly 32
  const OracleCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, budget);
  // The touched entry survived; the evicted one rebuilds on demand.
  const std::size_t builds = cache.prt_builds();
  (void)cache.prt(s24, 24);
  EXPECT_EQ(cache.prt_builds(), builds);
  (void)cache.prt(s32, 32);
  EXPECT_EQ(cache.prt_builds(), builds + 1);
}

TEST(OracleCacheEviction, TinyBudgetStillServesLookups) {
  // A budget below any single entry degenerates to "build, hand out,
  // evict immediately" — every lookup still succeeds, March included.
  OracleCache cache;
  cache.set_budget_bytes(1);
  const core::PrtScheme scheme = core::extended_scheme_bom(24);
  ASSERT_NE(cache.prt(scheme, 24), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  ASSERT_NE(cache.prt(scheme, 24), nullptr);  // rebuilt, not poisoned
  EXPECT_EQ(cache.prt_builds(), 2u);
  ASSERT_NE(cache.march(march::march_c_minus(), 24, true, 0), nullptr);
  const OracleCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_GE(s.evictions, 3u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(OracleCacheEviction, ShrinkingBudgetEvictsImmediately) {
  OracleCache cache;
  const core::PrtScheme scheme = core::extended_scheme_bom(24);
  (void)cache.prt(scheme, 24);
  ASSERT_EQ(cache.stats().entries, 1u);
  cache.set_budget_bytes(1);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Back to unbounded: entries stick again.
  cache.set_budget_bytes(0);
  (void)cache.prt(scheme, 24);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(CampaignService, StatsSurfaceOracleCacheCounters) {
  OracleCache::global().clear();
  CampaignService service;
  const RequestOutcome& out = service.submit(prt_request(24)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  const CampaignService::Stats s = service.stats();
  EXPECT_GE(s.cache_misses, 1u);
  EXPECT_GE(s.cache_entries, 1u);
  EXPECT_GT(s.cache_bytes, 0u);
}

TEST(CampaignService, OracleBuildFailureFailsRequestThenRecovers) {
  FailPointScope scope;
  OracleCache::global().clear();
  FailPoint::arm("oracle_cache.build", {.fires = 1});
  CampaignService service;
  CampaignRequest req = prt_request(48);
  CampaignRequest again = prt_request(48);
  const RequestOutcome& failed = service.submit(std::move(req)).wait();
  EXPECT_EQ(failed.status, RequestStatus::kFailed);
  // Eviction means the identical request now rebuilds and completes.
  const RequestOutcome& ok = service.submit(std::move(again)).wait();
  EXPECT_EQ(ok.status, RequestStatus::kComplete);
}

// --- checkpoint / resume --------------------------------------------

struct ResumeCase {
  bool march = false;
  bool packed = true;
  unsigned threads = 1;
};

/// Interrupt at every cadence point: for a fixed shard partition, run
/// once with the k-th shard-task attempt (and everything after it)
/// crashing, then resume from the checkpoint and require the merged
/// result to be bit-identical to the uninterrupted reference.
void run_resume_matrix(const ResumeCase& c) {
  SCOPED_TRACE(std::string(c.march ? "march" : "prt") +
               (c.packed ? " packed" : " scalar") + " threads=" +
               std::to_string(c.threads));
  const mem::Addr n = 24;
  const std::size_t kShards = 6;
  auto make_request = [&] {
    CampaignRequest req = c.march ? march_request(n) : prt_request(n);
    req.packed = c.packed;
    req.shards = kShards;
    return req;
  };
  CampaignRequest ref_req = make_request();
  const CampaignResult reference =
      c.march
          ? run_march_campaign(ref_req.universe, *ref_req.march_test,
                               ref_req.options,
                               {.packed = c.packed})
          : run_prt_campaign(ref_req.universe, *ref_req.scheme,
                             ref_req.options, {.packed = c.packed});

  for (std::size_t k = 0; k < kShards; ++k) {
    SCOPED_TRACE("interrupt after " + std::to_string(k) + " shards");
    FailPointScope scope;
    const std::string path = temp_checkpoint(
        "svc_resume_" + std::to_string(c.march) + std::to_string(c.packed) +
        std::to_string(c.threads) + "_" + std::to_string(k) + ".ckpt");
    CampaignService service({.threads = c.threads, .max_retries = 0});
    {
      // Let k shard tasks complete, crash every later attempt.
      FailPoint::arm("campaign_service.shard",
                     {.skip = static_cast<int>(k), .fires = -1});
      CampaignRequest req = make_request();
      req.checkpoint_path = path;
      req.checkpoint_every = 1;
      const RequestOutcome& out = service.submit(std::move(req)).wait();
      ASSERT_EQ(out.status, RequestStatus::kFailed);
      ASSERT_LT(out.shards_done, kShards);
    }
    FailPoint::disarm_all();
    {
      CampaignRequest req = make_request();
      req.checkpoint_path = path;
      req.resume = true;
      const RequestOutcome& out = service.submit(std::move(req)).wait();
      ASSERT_EQ(out.status, RequestStatus::kComplete);
      EXPECT_EQ(out.shards_total, kShards);
      expect_identical(out.result, reference);
    }
    std::remove(path.c_str());
  }
}

TEST(CampaignServiceResume, PrtPackedOneThread) {
  run_resume_matrix({.march = false, .packed = true, .threads = 1});
}
TEST(CampaignServiceResume, PrtPackedFourThreads) {
  run_resume_matrix({.march = false, .packed = true, .threads = 4});
}
TEST(CampaignServiceResume, PrtScalarOneThread) {
  run_resume_matrix({.march = false, .packed = false, .threads = 1});
}
TEST(CampaignServiceResume, PrtScalarFourThreads) {
  run_resume_matrix({.march = false, .packed = false, .threads = 4});
}
TEST(CampaignServiceResume, MarchPackedOneThread) {
  run_resume_matrix({.march = true, .packed = true, .threads = 1});
}
TEST(CampaignServiceResume, MarchPackedFourThreads) {
  run_resume_matrix({.march = true, .packed = true, .threads = 4});
}
TEST(CampaignServiceResume, MarchScalarOneThread) {
  run_resume_matrix({.march = true, .packed = false, .threads = 1});
}
TEST(CampaignServiceResume, MarchScalarFourThreads) {
  run_resume_matrix({.march = true, .packed = false, .threads = 4});
}

TEST(CampaignServiceResume, ResumeAcrossThreadCountsIsBitIdentical) {
  // Interrupted at 1 thread, resumed at 4: the checkpoint's partition
  // is adopted, so the merge stays bit-identical.
  FailPointScope scope;
  const std::string path = temp_checkpoint("svc_resume_cross_threads.ckpt");
  CampaignRequest ref_req = prt_request(24);
  const CampaignResult reference =
      run_prt_campaign(ref_req.universe, *ref_req.scheme, ref_req.options);
  {
    FailPoint::arm("campaign_service.shard", {.skip = 3, .fires = -1});
    CampaignService one({.threads = 1, .max_retries = 0});
    CampaignRequest req = prt_request(24);
    req.shards = 6;
    req.checkpoint_path = path;
    const RequestOutcome& out = one.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kFailed);
    ASSERT_GT(out.shards_done, 0u);
  }
  FailPoint::disarm_all();
  {
    CampaignService four({.threads = 4});
    CampaignRequest req = prt_request(24);
    req.shards = 6;
    req.checkpoint_path = path;
    req.resume = true;
    const RequestOutcome& out = four.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kComplete);
    EXPECT_GT(out.shards_resumed, 0u);
    expect_identical(out.result, reference);
  }
  std::remove(path.c_str());
}

TEST(CampaignServiceResume, CancelThenResumeIsBitIdentical) {
  FailPointScope scope;
  const std::string path = temp_checkpoint("svc_cancel_resume.ckpt");
  CampaignRequest ref_req = prt_request(32);
  const CampaignResult reference =
      run_prt_campaign(ref_req.universe, *ref_req.scheme, ref_req.options);
  {
    FailPoint::arm("campaign_service.shard",
                   {.action = FailPoint::Action::kDelay,
                    .fires = -1,
                    .delay = std::chrono::milliseconds(15)});
    CampaignService service({.threads = 1});
    CampaignRequest req = prt_request(32);
    req.shards = 8;
    req.checkpoint_path = path;
    CampaignService::Ticket ticket = service.submit(std::move(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ticket.cancel();
    const RequestOutcome& out = ticket.wait();
    ASSERT_EQ(out.status, RequestStatus::kPartialCancelled);
  }
  FailPoint::disarm_all();
  {
    CampaignService service({.threads = 4});
    CampaignRequest req = prt_request(32);
    req.shards = 8;
    req.checkpoint_path = path;
    req.resume = true;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kComplete);
    expect_identical(out.result, reference);
  }
  std::remove(path.c_str());
}

TEST(CampaignServiceResume, CompletedRunRemovesCheckpoint) {
  const std::string path = temp_checkpoint("svc_complete_removes.ckpt");
  CampaignService service;
  CampaignRequest req = prt_request(24);
  req.checkpoint_path = path;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "checkpoint should be removed on completion";
}

TEST(CampaignServiceResume, FingerprintMismatchFailsInsteadOfMerging) {
  FailPointScope scope;
  const std::string path = temp_checkpoint("svc_fp_mismatch.ckpt");
  {
    FailPoint::arm("campaign_service.shard", {.skip = 2, .fires = -1});
    CampaignService service({.threads = 1, .max_retries = 0});
    CampaignRequest req = prt_request(24);
    req.shards = 6;
    req.checkpoint_path = path;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kFailed);
    ASSERT_GT(out.shards_done, 0u);
  }
  FailPoint::disarm_all();
  CampaignService service;
  {
    // Different universe (one fault dropped) — must be rejected.
    CampaignRequest req = prt_request(24);
    req.universe.pop_back();
    req.shards = 6;
    req.checkpoint_path = path;
    req.resume = true;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kFailed);
    EXPECT_NE(out.error.find("fingerprint"), std::string::npos);
  }
  {
    // Different run options (early_abort changes op accounting).
    CampaignRequest req = prt_request(24);
    req.early_abort = true;
    req.shards = 6;
    req.checkpoint_path = path;
    req.resume = true;
    const RequestOutcome& out = service.submit(std::move(req)).wait();
    ASSERT_EQ(out.status, RequestStatus::kFailed);
    EXPECT_NE(out.error.find("fingerprint"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CampaignServiceResume, MalformedCheckpointSalvagesToFreshRun) {
  // A file that is not a checkpoint at all carries nothing salvageable
  // before the records: the run starts fresh (salvage counted) instead
  // of failing — crash-safety means corruption costs recomputation,
  // never the campaign.  The full corruption matrix (torn tails,
  // flipped bytes, partial final writes) lives in
  // tests/test_checkpoint_recovery.cpp.
  const std::string path = temp_checkpoint("svc_malformed.ckpt");
  {
    std::ofstream file(path);
    file << "not a checkpoint\n";
  }
  CampaignRequest req = prt_request(24);
  const CampaignResult reference =
      run_prt_campaign(req.universe, *req.scheme, req.options);
  CampaignService service;
  req.checkpoint_path = path;
  req.resume = true;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(out.shards_resumed, 0u);
  expect_identical(out.result, reference);
  EXPECT_EQ(service.stats().checkpoint_salvaged, 1u);
  std::remove(path.c_str());
}

TEST(CampaignServiceResume, MissingCheckpointMeansFreshRun) {
  const std::string path = temp_checkpoint("svc_missing.ckpt");
  CampaignRequest req = prt_request(24);
  const CampaignResult reference =
      run_prt_campaign(req.universe, *req.scheme, req.options);
  req.checkpoint_path = path;
  req.resume = true;
  CampaignService service;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  EXPECT_EQ(out.shards_resumed, 0u);
  expect_identical(out.result, reference);
}

TEST(CampaignServiceResume, CheckpointWriteFailureIsNonFatal) {
  FailPointScope scope;
  const std::string path = temp_checkpoint("svc_ckpt_fail.ckpt");
  FailPoint::arm("campaign_service.checkpoint", {.fires = -1});
  CampaignRequest req = prt_request(32);
  const CampaignResult reference =
      run_prt_campaign(req.universe, *req.scheme, req.options);
  req.shards = 6;
  req.checkpoint_path = path;
  CampaignService service;
  const RequestOutcome& out = service.submit(std::move(req)).wait();
  ASSERT_EQ(out.status, RequestStatus::kComplete);
  expect_identical(out.result, reference);
  EXPECT_GE(service.stats().checkpoint_failures, 1u);
}

// --- engine / suite cancellation (threaded StopToken) ---------------

TEST(StoppableRuns, EngineWithIdleTokenMatchesPlainRun) {
  const auto universe = mem::classical_universe(32);
  const CampaignOptions opt{.n = 32};
  CampaignEngine engine(core::extended_scheme_bom(32), opt);
  const CampaignResult plain = engine.run(universe);
  util::StopSource source;
  const CampaignOutcome outcome = engine.run(universe, source.token());
  ASSERT_EQ(outcome.status, RunStatus::kComplete);
  EXPECT_EQ(outcome.shards_done, outcome.shards_total);
  expect_identical(outcome.result, plain);
}

TEST(StoppableRuns, EnginePreCancelledTokenRunsNothing) {
  const auto universe = mem::classical_universe(32);
  CampaignEngine engine(core::extended_scheme_bom(32), {.n = 32});
  util::StopSource source;
  source.request_stop();
  const CampaignOutcome outcome = engine.run(universe, source.token());
  EXPECT_EQ(outcome.status, RunStatus::kCancelled);
  EXPECT_EQ(outcome.shards_done, 0u);
  EXPECT_EQ(outcome.result.overall.total, 0u);
}

TEST(StoppableRuns, MarchExpiredDeadlineReportsDeadline) {
  const auto universe = mem::classical_universe(32);
  MarchCampaign campaign(march::march_c_minus(), {.n = 32});
  util::StopSource source;
  source.set_deadline_after(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const CampaignOutcome outcome = campaign.run(universe, source.token());
  EXPECT_EQ(outcome.status, RunStatus::kDeadlineExpired);
  EXPECT_EQ(outcome.shards_done, 0u);
}

TEST(StoppableRuns, SuitePreCancelledTokenReportsPerConfigStatus) {
  const std::vector<CampaignOptions> configs = {{.n = 24}, {.n = 32}};
  CampaignSuite suite(
      [](const CampaignOptions& opt) {
        return core::extended_scheme_bom(opt.n);
      });
  util::StopSource source;
  source.request_stop();
  const SuiteResult result = suite.run(
      configs,
      [](const CampaignOptions& opt, std::size_t) {
        return mem::classical_universe(opt.n);
      },
      source.token());
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  ASSERT_EQ(result.configs.size(), configs.size());
  for (const SuiteConfigResult& entry : result.configs) {
    EXPECT_EQ(entry.status, RunStatus::kCancelled);
  }
  EXPECT_EQ(result.overall.total, 0u);
}

TEST(StoppableRuns, SuiteIdleTokenBitIdenticalToPlainRun) {
  const std::vector<CampaignOptions> configs = {{.n = 24}, {.n = 32}};
  auto factory = [](const CampaignOptions& opt) {
    return core::extended_scheme_bom(opt.n);
  };
  auto universe = [](const CampaignOptions& opt, std::size_t) {
    return mem::classical_universe(opt.n);
  };
  CampaignSuite suite(factory);
  const SuiteResult plain = suite.run(configs, universe);
  util::StopSource source;
  const SuiteResult stoppable = suite.run(configs, universe, source.token());
  EXPECT_EQ(stoppable.status, RunStatus::kComplete);
  ASSERT_EQ(stoppable.configs.size(), plain.configs.size());
  for (std::size_t c = 0; c < plain.configs.size(); ++c) {
    EXPECT_EQ(stoppable.configs[c].status, RunStatus::kComplete);
    expect_identical(stoppable.configs[c].result, plain.configs[c].result);
  }
  EXPECT_EQ(stoppable.overall, plain.overall);
}

}  // namespace
}  // namespace prt::analysis
